// flusim — a standalone clone of the paper's FLUSIM tool (§III-A).
//
// "As inputs, FLUSIM takes a cluster configuration, the mesh with the
// temporal level of each cell, a domain decomposition, and a scheduling
// strategy."  This executable takes exactly those four things:
//
//   ./flusim --mesh m.tmesh --partition p.tpart
//            --processes 6 --workers 4 --policy eager
//
// (generate the input files with partition_explorer/save_mesh, or pass
// --mesh cylinder to synthesise one and --partition-strategy mc_tl to
// partition on the fly). Outputs the makespan, per-process statistics,
// and optional SVG / chrome-trace files.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <optional>

#include "core/pipeline.hpp"
#include "mesh/generators.hpp"
#include "mesh/io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/io.hpp"
#include "partition/reorder.hpp"
#include "partition/strategy.hpp"
#include "runtime/perf_report.hpp"
#include "runtime/runtime.hpp"
#include "sim/analysis.hpp"
#include "sim/doctor.hpp"
#include "sim/measured.hpp"
#include "sim/messages.hpp"
#include "sim/simulate.hpp"
#include "sim/trace_json.hpp"
#include "sim/whatif.hpp"
#include "solver/euler.hpp"
#include "solver/layout.hpp"
#include "solver/transport.hpp"
#include "support/cli.hpp"
#include "support/gantt.hpp"
#include "support/simd.hpp"
#include "support/table.hpp"
#include "taskgraph/generate.hpp"
#include "verify/verifier.hpp"

int main(int argc, char** argv) {
  using namespace tamp;
  CliParser cli("flusim — emulate one solver iteration on a virtual cluster");
  cli.option("mesh", "cylinder",
             "mesh file (tamp-mesh) or generator name cylinder|cube|nozzle");
  cli.option("cells", "50000", "generated mesh size (generators only)");
  cli.option("partition", "",
             "partition file (tamp-partition); empty = partition on the fly");
  cli.option("partition-strategy", "mc_tl",
             "strategy when partitioning on the fly");
  cli.option("domains", "16", "domains when partitioning on the fly");
  cli.option("threads", "0",
             "partitioner threads; 0 = TAMP_PARTITION_THREADS env (default "
             "serial). Any value gives a bit-identical decomposition");
  cli.option("reorder", "none",
             "post-partition renumbering: none | locality (renumber cells "
             "and faces so every (domain, level, locality) class is one "
             "contiguous SFC-ordered range; schedule output is unchanged, "
             "solver sweeps get streaming kernels)");
  cli.option("simd", "",
             "SIMD tier for the solver streaming kernels: auto | avx2 | "
             "sse2 | scalar (default: TAMP_SIMD env, else auto; requests "
             "the CPU cannot run clamp down)");
  cli.option("processes", "4", "emulated MPI processes");
  cli.option("workers", "4", "workers per process; 0 = unbounded");
  cli.option("policy", "eager", "eager | lifo | cp | random");
  cli.option("comm-latency", "0", "latency per crossing edge (work units)");
  cli.option("iterations", "1", "iterations to emulate");
  cli.option("pipeline", "",
             "run the asynchronous iteration pipeline instead of the one-shot "
             "simulation: sync | overlap. A real solver advances --iterations "
             "iterations over an evolving mesh; overlap hides each "
             "iteration's evolve/repartition/taskgraph prep under the "
             "previous solve. Bitwise identical output in both modes");
  cli.option("pipeline-solver", "euler",
             "solver driven by --pipeline: euler | transport");
  cli.option("drift", "0.05",
             "per-iteration temporal-level drift for --pipeline");
  cli.option("patch", "auto",
             "task-graph production for --pipeline: off = rebuild every "
             "iteration, auto = diff-based patching with rebuild fallback "
             "(bit-identical to off), oracle = auto plus a per-iteration "
             "equivalence check against a from-scratch rebuild");
  cli.option("seed", "1", "seed for --pipeline evolve/repartition streams");
  cli.option("svg", "", "write a Gantt SVG here");
  cli.option("chrome-trace", "",
             "write a chrome://tracing JSON here (task spans merged with "
             "pipeline-phase spans when tracing is compiled in)");
  cli.option("metrics", "", "write a metrics JSON snapshot here");
  cli.flag("doctor",
           "diagnose the schedule: realized critical path, idle blame "
           "(dependency-wait vs starvation vs tail), doctor.* gauges");
  cli.option("doctor-csv", "",
             "write the per-(process x subiteration) blame breakdown here "
             "(with --execute: the measured run's breakdown)");
  cli.option("doctor-svg", "",
             "write the idle-blame heatmap SVG here (with --execute: the "
             "measured run's heatmap)");
  cli.flag("execute",
           "also run the graph for real on the threaded runtime (calibrated "
           "busy-spin bodies, flight recorder armed), diagnose the *measured* "
           "schedule, and report sim-vs-real divergence (divergence.* and "
           "doctor.measured.* gauges)");
  cli.option("spin-us", "5",
             "wall microseconds per cost unit for --execute task bodies");
  cli.option("execute-svg", "", "write the measured run's Gantt SVG here");
  cli.option("execute-chrome-trace", "",
             "write the measured run's chrome://tracing JSON here (task "
             "spans plus flight counter tracks: ready-queue depth, idle "
             "workers, steals)");
  cli.option("perf", "on",
             "hardware-counter attribution for --execute: on | clock | off. "
             "Degrades to clock-only or nothing where perf_event is denied; "
             "the TAMP_PERF env var caps it the same way");
  cli.flag("what-if",
           "replay the measured schedule with Coz-style per-class virtual "
           "speedups (k = 0.9 / 0.75 / 0.5) and rank task classes by "
           "predicted makespan savings (whatif.* gauges; implies --execute)");
  cli.flag("per-worker", "Gantt rows per worker instead of per process");
  cli.flag("verify-races",
           "instrumented mode: run one real Euler iteration under a sweep of "
           "adversarial schedules, record every task's cell/accumulator "
           "accesses, and report any conflicting pair the DAG leaves "
           "unordered (exit 2 if conflicts are found)");
  cli.option("verify-schedules", "4",
             "schedules swept by --verify-races (first is plain FIFO, the "
             "rest adversarial)");
  cli.option("verify-seed", "1", "base seed for the adversarial schedules");
  cli.option("verify-delay-us", "0",
             "max per-task dequeue jitter for the adversarial schedules "
             "(microseconds)");
  if (!cli.parse(argc, argv)) return 0;

  // Asking for a trace implies wanting the pipeline spans in it: arm the
  // session before any pipeline work runs.
  if (!cli.get("chrome-trace").empty() || !cli.get("metrics").empty())
    obs::set_tracing_enabled(true);

  try {
    // Seat the process-wide SIMD default before any solver is built so
    // every EulerSolver this run constructs (verify path included)
    // resolves against it.
    if (!cli.get("simd").empty())
      simd::set_default_request(simd::parse_request(cli.get("simd")));

    // --- inputs -------------------------------------------------------------
    mesh::Mesh m = [&] {
      const std::string name = cli.get("mesh");
      try {
        mesh::TestMeshSpec spec;
        spec.target_cells = static_cast<index_t>(cli.get_int("cells"));
        return mesh::make_test_mesh(mesh::parse_test_mesh_kind(name), spec);
      } catch (const precondition_error&) {
        return mesh::load_mesh(name);
      }
    }();

    // Verification runs the real Euler solver, so its temporal levels
    // (not the generator's synthetic ones) must be on the mesh before the
    // partitioner sees it.
    std::optional<solver::EulerSolver> euler;
    const auto init_euler = [&euler](mesh::Mesh& mm) {
      euler.emplace(mm);
      euler->initialize_uniform(1.0, {0.2, 0.1, 0.0}, 1.0);
      mesh::Vec3 lo = mm.cell_centroid(0), hi = lo, mean{};
      for (index_t c = 0; c < mm.num_cells(); ++c) {
        const mesh::Vec3 p = mm.cell_centroid(c);
        lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
        hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
        mean = mean + p;
      }
      mean = (1.0 / static_cast<double>(mm.num_cells())) * mean;
      euler->add_pulse(mean, std::max(0.2 * distance(lo, hi), 1e-3), 0.3);
    };
    // --- asynchronous iteration pipeline ------------------------------------
    if (!cli.get("pipeline").empty()) {
      if (!cli.get("partition").empty())
        throw precondition_error(
            "--pipeline repartitions incrementally every iteration; it is "
            "incompatible with a fixed --partition file");

      core::IterationPipelineConfig pcfg;
      pcfg.mode = core::parse_pipeline_mode(cli.get("pipeline"));
      pcfg.num_iterations =
          std::max(1, static_cast<int>(cli.get_int("iterations")));
      pcfg.drift = cli.get_double("drift");
      pcfg.strategy = partition::parse_strategy(cli.get("partition-strategy"));
      pcfg.ndomains = static_cast<part_t>(cli.get_int("domains"));
      pcfg.nprocesses = static_cast<part_t>(cli.get_int("processes"));
      pcfg.workers_per_process =
          std::max(1, static_cast<int>(cli.get_int("workers")));
      pcfg.threads = static_cast<int>(cli.get_int("threads"));
      pcfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      pcfg.patch = core::parse_patch_policy(cli.get("patch"));
      pcfg.fault = core::pipeline_fault_from_env();

      const bool races = cli.get_flag("verify-races");
      if (races) {
        pcfg.adversarial.enabled = true;
        pcfg.adversarial.seed =
            static_cast<std::uint64_t>(cli.get_int("verify-seed"));
        pcfg.adversarial.max_delay_seconds =
            cli.get_double("verify-delay-us") * 1e-6;
      }

      // Each iteration's body is instrumented against a fresh access log
      // (the task graph changes every iteration); the observer settles the
      // race verdict before the next snapshot is consumed. On a patched
      // snapshot only the dirty region (patched tasks + one dependency
      // hop) is recorded: the partial log is still checked against the
      // FULL graph's reachability, so the verdict is sound, while the
      // recording/merge cost scales with the drift instead of the mesh.
      // Untouched pairs are certified by the previous full verification
      // plus the patcher's bit-identity guarantee.
      std::shared_ptr<verify::AccessLog> plog;
      std::size_t race_conflicts = 0, race_pairs = 0;
      std::size_t region_recertified = 0, region_tasks_total = 0;
      std::function<runtime::TaskBody(runtime::TaskBody,
                                      const core::IterationSnapshot&)>
          wrap;
      if (races)
        wrap = [&plog, &region_recertified, &region_tasks_total](
                   runtime::TaskBody body,
                   const core::IterationSnapshot& snap) {
          plog = std::make_shared<verify::AccessLog>(snap.graph.num_tasks());
          const bool partial =
              snap.patch.patched &&
              snap.dirty_tasks.size() ==
                  static_cast<std::size_t>(snap.graph.num_tasks());
          if (!partial) return verify::instrument(body, *plog);
          auto region = std::make_shared<const std::vector<char>>(
              verify::region_closure(snap.graph, snap.dirty_tasks));
          ++region_recertified;
          for (const char r : *region) region_tasks_total += r != 0 ? 1 : 0;
          return runtime::TaskBody(
              [body = std::move(body), log = plog, region](index_t t) {
                if ((*region)[static_cast<std::size_t>(t)] != 0) {
                  const verify::TaskRecordScope scope(*log, t);
                  body(t);
                } else {
                  body(t);
                }
              });
        };

      std::optional<solver::TransportSolver> transport;
      core::SolverHooks hooks;
      const std::string solver_name = cli.get("pipeline-solver");
      if (solver_name == "euler") {
        init_euler(m);
        euler->assign_temporal_levels();
        hooks = core::euler_pipeline_hooks(*euler, wrap);
      } else if (solver_name == "transport") {
        transport.emplace(m);
        transport->initialize_uniform(0.0);
        mesh::Vec3 lo = m.cell_centroid(0), hi = lo, mean{};
        for (index_t c = 0; c < m.num_cells(); ++c) {
          const mesh::Vec3 p = m.cell_centroid(c);
          lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
          hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
          mean = mean + p;
        }
        mean = (1.0 / static_cast<double>(m.num_cells())) * mean;
        transport->add_blob(mean, std::max(0.2 * distance(lo, hi), 1e-3), 1.0);
        transport->assign_temporal_levels();
        hooks = core::transport_pipeline_hooks(*transport, wrap);
      } else {
        throw precondition_error("unknown --pipeline-solver '" + solver_name +
                                 "' (expected euler | transport)");
      }
      if (races)
        hooks.observer = [&](const core::IterationSnapshot& snap,
                             const runtime::ExecutionReport&) {
          const verify::RaceReport rep = verify::check_races(snap.graph, *plog);
          race_pairs += rep.pairs_checked;
          if (!rep.clean()) {
            std::cout << rep.summary(snap.graph);
            race_conflicts += rep.conflicts.size();
          }
          plog.reset();
        };

      const core::PipelineRunReport prun =
          core::run_iteration_pipeline(m, pcfg, hooks);

      std::cout << "pipeline: " << core::to_string(pcfg.mode) << " mode, "
                << pcfg.num_iterations << " iterations of " << solver_name
                << " on " << m.num_cells() << " cells;  " << pcfg.ndomains
                << " domains on " << pcfg.nprocesses << " process(es) x "
                << pcfg.workers_per_process << " workers\n";
      TablePrinter pt("per-iteration stages");
      pt.header({"iter", "prep ms", "solve ms", "cells changed", "migrated",
                 "max migration", "dirty", "graph"});
      for (const core::PipelineIterationStats& it : prun.iterations)
        pt.row({std::to_string(it.iteration),
                fmt_double((it.prep_end - it.prep_start) * 1e3, 2),
                fmt_double((it.solve_end - it.solve_start) * 1e3, 2),
                std::to_string(it.cells_changed),
                std::to_string(it.migrated_cells),
                fmt_percent(it.max_domain_migration),
                fmt_percent(it.dirty_fraction),
                it.graph_patched ? "patched" : "rebuilt"});
      pt.print(std::cout);
      sim::print_stage_overlap(std::cout, prun.overlap);

      if (!cli.get("metrics").empty())
        obs::save_text(
            obs::metrics_to_json(obs::Registry::instance().snapshot()),
            cli.get("metrics"));
      if (races) {
        std::cout << "verify: " << race_pairs << " pairs checked across "
                  << pcfg.num_iterations << " iteration graphs\n";
        if (region_recertified > 0)
          std::cout << "verify: " << region_recertified
                    << " patched graph(s) re-certified on their dirty "
                       "region only ("
                    << region_tasks_total << " region tasks recorded)\n";
        if (race_conflicts > 0) {
          std::cout << "verify: " << race_conflicts
                    << " unordered conflicting task pair(s)\n";
          return 2;
        }
        std::cout << "verify: clean — every conflicting access pair is "
                     "ordered by the task graph\n";
      }
      return 0;
    }

    if (cli.get_flag("verify-races")) {
      init_euler(m);
      euler->assign_temporal_levels();
    }

    part_t ndomains = 0;
    std::vector<part_t> domain_of_cell;
    if (!cli.get("partition").empty()) {
      domain_of_cell = partition::load_partition(cli.get("partition"), ndomains);
      if (domain_of_cell.size() != static_cast<std::size_t>(m.num_cells()))
        throw runtime_failure("partition file does not match the mesh");
    } else {
      partition::StrategyOptions sopts;
      sopts.strategy =
          partition::parse_strategy(cli.get("partition-strategy"));
      sopts.ndomains = static_cast<part_t>(cli.get_int("domains"));
      sopts.partitioner.num_threads = static_cast<int>(cli.get_int("threads"));
      const auto dd = partition::decompose(m, sopts);
      ndomains = dd.ndomains;
      domain_of_cell = dd.domain_of_cell;
    }

    // --- optional locality renumbering ------------------------------------
    if (partition::parse_reorder(cli.get("reorder")) ==
        partition::Reorder::locality) {
      auto rd = partition::reorder_for_locality(m, domain_of_cell, ndomains);
      m = std::move(rd.mesh);
      domain_of_cell = std::move(rd.domain_of_cell);
      // The solver binds to the pre-permutation mesh; rebuild it on the
      // renumbered one. Re-deriving the temporal levels is safe: the
      // per-cell CFL estimate only reads cell-local geometry and state,
      // both of which ride through the permutation unchanged.
      if (euler) {
        init_euler(m);
        euler->assign_temporal_levels();
      }
    }

    const auto nproc = static_cast<part_t>(cli.get_int("processes"));
    const auto d2p = partition::map_domains_to_processes(
        ndomains, nproc, partition::DomainMapping::block);

    // --- race verification ------------------------------------------------------
    if (euler) {
      const auto iter = euler->make_iteration_tasks(domain_of_cell, ndomains);
      verify::AccessLog log(iter.graph.num_tasks());
      const runtime::TaskBody instrumented =
          verify::instrument(iter.body, log);
      const auto schedules =
          std::max<long long>(1, cli.get_int("verify-schedules"));
      const solver::State before = euler->conserved_totals();
      runtime::RuntimeConfig rc;
      rc.num_processes = nproc;
      rc.workers_per_process =
          std::max(1, static_cast<int>(cli.get_int("workers")));
      for (long long k = 0; k < schedules; ++k) {
        // Schedule 0 is the production FIFO order; the rest draw random
        // ready-task picks (plus optional jitter) from distinct seeds.
        rc.adversarial.enabled = k > 0;
        rc.adversarial.seed =
            static_cast<std::uint64_t>(cli.get_int("verify-seed")) +
            static_cast<std::uint64_t>(k);
        rc.adversarial.max_delay_seconds =
            cli.get_double("verify-delay-us") * 1e-6;
        runtime::execute(iter.graph, d2p, rc, instrumented);
        euler->note_tasks_complete();
      }
      const solver::State after = euler->conserved_totals();
      const verify::RaceReport report = verify::check_races(iter.graph, log);
      std::cout << "verify: " << iter.graph.num_tasks() << " tasks, "
                << schedules << " schedules, " << report.accesses
                << " distinct accesses, " << report.pairs_checked
                << " pairs checked (simd "
                << simd::to_string(euler->simd_level()) << ")\n"
                << "conservation drift: mass "
                << std::abs(after[0] - before[0]) << "  energy "
                << std::abs(after[4] - before[4]) << '\n';
      if (!euler->state_is_finite())
        std::cout << "note: solver state went non-finite (synthetic test "
                     "meshes are not exactly closed, so the physics can "
                     "blow up); the race verdict below is unaffected — it "
                     "depends on access sets, not values\n";
      if (!report.clean()) {
        std::cout << report.summary(iter.graph);
        std::cout << "verify: " << report.conflicts.size()
                  << " unordered conflicting task pair(s)\n";
        return 2;
      }
      std::cout << "verify: clean — every conflicting access pair is "
                   "ordered by the task graph\n";
      return 0;
    }

    // --- task graph + simulation ----------------------------------------------
    taskgraph::GenerateOptions gopts;
    gopts.num_iterations = static_cast<int>(cli.get_int("iterations"));
    const auto graph =
        taskgraph::generate_task_graph(m, domain_of_cell, ndomains, gopts);

    sim::SimOptions simopts;
    simopts.cluster.num_processes = nproc;
    simopts.cluster.workers_per_process =
        static_cast<int>(cli.get_int("workers"));
    simopts.policy = sim::parse_policy(cli.get("policy"));
    simopts.comm.latency = cli.get_double("comm-latency");
    const sim::SimResult result = sim::simulate(graph, d2p, simopts);

    // --- report ----------------------------------------------------------------
    const auto msgs = sim::message_statistics(graph, d2p);
    std::cout << "mesh: " << m.num_cells() << " cells, "
              << static_cast<int>(m.max_level()) + 1 << " levels;  "
              << ndomains << " domains on " << nproc << " processes\n"
              << "tasks: " << graph.num_tasks()
              << "  dependencies: " << graph.num_dependencies()
              << "  critical path: " << fmt_double(graph.critical_path(), 0)
              << "\nmakespan: " << fmt_double(result.makespan, 0)
              << " work units   occupancy: " << fmt_percent(result.occupancy())
              << "\nmessages: " << fmt_count(msgs.messages)
              << " (volume " << fmt_count(msgs.volume) << " objects over "
              << msgs.process_pairs << " process pairs)\n";

    TablePrinter t("per-process");
    t.header({"process", "busy", "idle", "idle blocks", "longest block"});
    for (part_t p = 0; p < nproc; ++p) {
      const auto blocks = sim::idle_blocks(result, p);
      t.row({std::to_string(p),
             fmt_double(result.busy_per_process[static_cast<std::size_t>(p)], 0),
             fmt_percent(result.idle_fraction(p)),
             std::to_string(blocks.count), fmt_double(blocks.longest, 0)});
    }
    t.print(std::cout);

    const bool execute = cli.get_flag("execute") || cli.get_flag("what-if");
    const bool want_doctor = cli.get_flag("doctor") ||
                             !cli.get("doctor-csv").empty() ||
                             !cli.get("doctor-svg").empty();
    if (want_doctor) {
      const sim::DoctorReport doc = sim::diagnose(graph, result, simopts.comm);
      // Publish gauges before a --metrics snapshot is taken so the
      // doctor.* values land in the exported JSON for tamp-report.
      sim::publish_doctor_metrics(graph, doc);
      if (cli.get_flag("doctor")) sim::print_doctor_report(std::cout, graph, doc);
      // With --execute the CSV/SVG artifacts describe the measured run
      // (written below); without it they describe the simulation.
      if (!execute) {
        if (!cli.get("doctor-csv").empty())
          obs::save_text(sim::doctor_blame_csv(doc), cli.get("doctor-csv"));
        if (!cli.get("doctor-svg").empty())
          sim::write_doctor_heatmap_svg(doc, cli.get("doctor-svg"));
      }
    }

    // --- real execution + divergence ---------------------------------------
    if (execute) {
      runtime::RuntimeConfig rcfg;
      rcfg.num_processes = nproc;
      rcfg.workers_per_process =
          std::max(1, static_cast<int>(cli.get_int("workers")));
      rcfg.flight.enabled = true;
      const std::string perf_mode = cli.get("perf");
      rcfg.perf.enabled = perf_mode != "off";
      rcfg.perf.max_tier = perf_mode == "clock" ? obs::PerfTier::clock_only
                                                : obs::PerfTier::hardware;
      const double spin = cli.get_double("spin-us") * 1e-6;
      const runtime::ExecutionReport report = runtime::execute(
          graph, d2p, rcfg, runtime::make_synthetic_body(graph, spin));
      runtime::publish_execution_metrics(graph, report);

      std::cout << "measured: " << fmt_double(report.wall_seconds * 1e3, 2)
                << " ms wall   occupancy: " << fmt_percent(report.occupancy());
      if (report.flight) {
        const obs::FlightSummary fs = obs::summarize(*report.flight);
        std::cout << "   flight events: " << fs.events << " (" << fs.dropped
                  << " dropped, "
                  << report.flight->memory_bytes() / 1024 << " KiB rings)";
      } else {
        std::cout << "   flight recorder: compiled out";
      }
      std::cout << '\n';

      if (rcfg.perf.enabled) {
        const runtime::PerfProfile perf = runtime::aggregate_perf(graph, report);
        runtime::print_perf_profile(std::cout, perf);
        if (perf.live())
          std::cout << "streaming-traffic model for GB/s context: "
                    << fmt_double(
                           solver::streaming_bytes_per_cell_update(
                               solver::kNumVars), 0)
                    << " B/cell-update, "
                    << fmt_double(
                           solver::streaming_bytes_per_face_flux(
                               solver::kNumVars), 0)
                    << " B/face-flux\n";
      }

      if (want_doctor) {
        const sim::DoctorReport mdoc = sim::diagnose_measured(graph, report);
        sim::publish_doctor_metrics(graph, mdoc, "doctor.measured.");
        if (cli.get_flag("doctor")) {
          std::cout << "-- measured run --\n";
          sim::print_doctor_report(std::cout, graph, mdoc);
        }
        if (!cli.get("doctor-csv").empty())
          obs::save_text(sim::doctor_blame_csv(mdoc), cli.get("doctor-csv"));
        if (!cli.get("doctor-svg").empty())
          sim::write_doctor_heatmap_svg(mdoc, cli.get("doctor-svg"));
      }

      const sim::DivergenceReport div =
          sim::compare_sim_to_measured(graph, result, report, spin);
      sim::print_divergence_report(std::cout, div);
      sim::publish_divergence_metrics(div);

      if (cli.get_flag("what-if")) {
        const sim::WhatIfReport whatif = sim::what_if(graph, report);
        sim::print_whatif_report(std::cout, whatif);
        sim::publish_whatif_metrics(whatif);
      }

      if (!cli.get("execute-svg").empty())
        write_gantt_svg(report.gantt(graph, "flusim --execute (measured)"),
                        cli.get("execute-svg"));
      if (!cli.get("execute-chrome-trace").empty())
        sim::save_chrome_trace(sim::to_chrome_trace_merged(graph, report),
                               cli.get("execute-chrome-trace"));
    }

    if (!cli.get("svg").empty())
      write_gantt_svg(result.gantt(graph, cli.get_flag("per-worker"), "flusim"),
                      cli.get("svg"));
    if (!cli.get("chrome-trace").empty())
      sim::save_chrome_trace(sim::to_chrome_trace_merged(graph, result),
                             cli.get("chrome-trace"));
    if (!cli.get("metrics").empty())
      obs::save_text(obs::metrics_to_json(obs::Registry::instance().snapshot()),
                     cli.get("metrics"));
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "flusim: " << e.what() << '\n';
    return 1;
  }
}
