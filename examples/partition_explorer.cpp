// Partition explorer: an interactive-style CLI for studying how strategy,
// domain count and tolerance shape a decomposition — the tool you reach
// for before committing a production partitioning choice.
//
// Run:  ./partition_explorer --mesh cube --strategy mc_tl --domains 32
#include <iostream>

#include "graph/components.hpp"
#include "mesh/generators.hpp"
#include "mesh/io.hpp"
#include "partition/strategy.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace tamp;
  CliParser cli("partition_explorer — inspect a domain decomposition");
  cli.option("mesh", "cube", "cylinder | cube | nozzle | path to .tamp-mesh");
  cli.option("cells", "50000", "generated mesh size (ignored for files)");
  cli.option("strategy", "mc_tl", "sc_cells | sc_oc | mc_tl | hybrid");
  cli.option("domains", "32", "number of domains");
  cli.option("processes", "8", "processes (HYBRID first phase, mapping)");
  cli.option("tolerance", "0.05", "per-constraint balance tolerance");
  cli.option("seed", "1", "partitioner seed");
  cli.flag("save-partition", "write <mesh>_partition.csv with cell→domain");
  if (!cli.parse(argc, argv)) return 0;

  // Accept either a generator name or a mesh file produced by save_mesh().
  mesh::Mesh m = [&] {
    const std::string name = cli.get("mesh");
    try {
      mesh::TestMeshSpec spec;
      spec.target_cells = static_cast<index_t>(cli.get_int("cells"));
      return mesh::make_test_mesh(mesh::parse_test_mesh_kind(name), spec);
    } catch (const precondition_error&) {
      std::cout << "loading mesh file " << name << "\n";
      return mesh::load_mesh(name);
    }
  }();

  partition::StrategyOptions opts;
  opts.strategy = partition::parse_strategy(cli.get("strategy"));
  opts.ndomains = static_cast<part_t>(cli.get_int("domains"));
  opts.nprocesses = static_cast<part_t>(cli.get_int("processes"));
  opts.partitioner.tolerance = cli.get_double("tolerance");
  opts.partitioner.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto dd = partition::decompose(m, opts);

  std::cout << "mesh: " << m.num_cells() << " cells / " << m.num_faces()
            << " faces / " << static_cast<int>(m.max_level()) + 1
            << " levels;  strategy " << partition::to_string(opts.strategy)
            << ", " << opts.ndomains << " domains\n\n";

  TablePrinter t("per-domain census");
  std::vector<std::string> head{"domain"};
  for (level_t l = 0; l < dd.num_levels; ++l)
    head.push_back("t=" + std::to_string(l));
  head.push_back("cost");
  head.push_back("fragments");
  t.header(head);
  const auto fragments = graph::part_fragment_counts(
      m.dual_graph(), dd.domain_of_cell, dd.ndomains);
  for (part_t d = 0; d < dd.ndomains; ++d) {
    std::vector<std::string> row{std::to_string(d)};
    for (level_t l = 0; l < dd.num_levels; ++l)
      row.push_back(fmt_count(dd.cells_in(d, l)));
    row.push_back(fmt_count(dd.total_cost(d)));
    row.push_back(std::to_string(fragments[static_cast<std::size_t>(d)]));
    t.row(row);
  }
  t.print(std::cout);

  index_t extra = 0;
  for (const index_t f : fragments) extra += f - 1;
  std::cout << "edge cut: " << fmt_count(dd.edge_cut)
            << "   cost imbalance: " << fmt_double(dd.cost_imbalance(), 3)
            << "   level imbalance: " << fmt_double(dd.level_imbalance(), 3)
            << "   disconnected fragments: +" << extra
            << " (paper §IX: multi-criteria partitions fragment more)\n";

  if (cli.get_flag("save-partition")) {
    TablePrinter csv;
    csv.header({"cell", "domain"});
    for (index_t c = 0; c < m.num_cells(); ++c)
      csv.row({std::to_string(c),
               std::to_string(dd.domain_of_cell[static_cast<std::size_t>(c)])});
    csv.write_csv("partition.csv");
    std::cout << "cell→domain map written to partition.csv\n";
  }
  return 0;
}
