// Pollutant plume: the scalar transport solver in a realistic setting.
//
// A contaminant blob is released near the refined corner of a graded
// domain and advected/diffused downstream. The adaptive scheme updates
// the small source-region cells every subiteration and the coarse
// far-field rarely; the run executes as an MC_TL-partitioned task graph
// on the threaded runtime, and the invariant "inside + departed" is
// printed every iteration.
//
// Run:  ./pollutant_plume [--grid 20 --iterations 10]
#include <iostream>

#include "mesh/generators.hpp"
#include "partition/strategy.hpp"
#include "solver/transport.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace tamp;
  CliParser cli("pollutant_plume — adaptive scalar transport demo");
  cli.option("grid", "20", "cells per axis of the graded box");
  cli.option("iterations", "10", "iterations to run");
  cli.option("domains", "8", "domains for task execution");
  cli.option("wind", "1.0", "wind speed along +x");
  cli.option("diffusivity", "0.05", "turbulent diffusivity");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<index_t>(cli.get_int("grid"));
  mesh::Mesh m = mesh::make_graded_box_mesh(n, n, n, 1.12);

  solver::TransportConfig cfg;
  cfg.velocity = {cli.get_double("wind"), 0.0, 0.0};
  cfg.diffusivity = cli.get_double("diffusivity");
  solver::TransportSolver s(m, cfg);
  s.initialize_uniform(0.0);
  s.add_blob({1.5, 1.5, 1.5}, 1.0, 10.0);  // release near the fine corner
  s.assign_temporal_levels();

  std::cout << "graded box " << n << "^3, " << m.num_cells() << " cells, "
            << static_cast<int>(m.max_level()) + 1
            << " temporal levels; wind " << cli.get_double("wind")
            << ", D = " << cli.get_double("diffusivity") << "\n\n";

  const auto ndomains = static_cast<part_t>(cli.get_int("domains"));
  partition::StrategyOptions sopts;
  sopts.strategy = partition::Strategy::mc_tl;
  sopts.ndomains = ndomains;
  const auto dd = partition::decompose(m, sopts);
  const auto d2p = partition::map_domains_to_processes(
      ndomains, 2, partition::DomainMapping::block);
  runtime::RuntimeConfig rc;
  rc.num_processes = 2;
  rc.workers_per_process = 2;

  const double initial = s.total_scalar() + s.net_boundary_outflow();
  TablePrinter t("plume evolution (task-parallel, MC_TL decomposition)");
  t.header({"iter", "time", "peak", "inside", "departed", "invariant drift"});
  for (int it = 1; it <= static_cast<int>(cli.get_int("iterations")); ++it) {
    s.run_iteration_tasks(dd.domain_of_cell, ndomains, d2p, rc);
    const double inside = s.total_scalar();
    const double out = s.net_boundary_outflow();
    t.row({std::to_string(it), fmt_double(s.time(), 3),
           fmt_double(s.max_value(), 4), fmt_double(inside, 3),
           fmt_double(out, 3),
           fmt_double(std::abs(inside + out - initial) / initial, 15)});
  }
  t.print(std::cout);
  std::cout << "The plume spreads and exits downstream; the invariant "
               "(inside + departed) holds to rounding at every step.\n";
  return 0;
}
