// Task-graph anatomy: the paper's Fig 8 as a runnable example.
//
// Builds a tiny 3-level mesh, splits it into two domains with each
// strategy, and prints the first subiteration's phases and tasks so the
// structural difference is visible by eye:
//   * SC_OC  — domains specialise in one level, so most phases emit tasks
//     from a single domain;
//   * MC_TL  — every domain holds every level, so every phase emits tasks
//     from both domains (finer granularity, better occupancy).
// Also writes Graphviz DOT files of both graphs.
#include <fstream>
#include <iostream>

#include "mesh/generators.hpp"
#include "mesh/levels.hpp"
#include "partition/strategy.hpp"
#include "taskgraph/generate.hpp"

int main() {
  using namespace tamp;

  // A 8×4×1 lattice with a refinement gradient along x: levels 0,1,2.
  mesh::Mesh m = mesh::make_lattice_mesh(8, 4, 1);
  std::vector<double> field(static_cast<std::size_t>(m.num_cells()));
  for (index_t c = 0; c < m.num_cells(); ++c)
    field[static_cast<std::size_t>(c)] = m.cell_centroid(c).x;
  mesh::assign_levels_by_quantiles(m, field, {0.25, 0.375, 0.375});

  for (const auto strategy :
       {partition::Strategy::sc_oc, partition::Strategy::mc_tl}) {
    partition::StrategyOptions sopts;
    sopts.strategy = strategy;
    sopts.ndomains = 2;
    const auto dd = partition::decompose(m, sopts);

    std::cout << "=== " << partition::to_string(strategy) << " ===\n";
    for (part_t d = 0; d < 2; ++d) {
      std::cout << "domain " << d << " cells per level:";
      for (level_t l = 0; l < dd.num_levels; ++l)
        std::cout << "  t" << static_cast<int>(l) << "=" << dd.cells_in(d, l);
      std::cout << '\n';
    }

    const auto g = taskgraph::generate_task_graph(m, dd.domain_of_cell, 2);
    std::cout << g.num_tasks() << " tasks, " << g.num_dependencies()
              << " dependencies; first subiteration:\n";
    for (index_t t = 0; t < g.num_tasks(); ++t) {
      const auto& task = g.task(t);
      if (task.subiteration != 0) break;
      std::cout << "  task " << t << ": " << task.label() << "  <-";
      for (const index_t p : g.predecessors(t)) std::cout << ' ' << p;
      std::cout << '\n';
    }

    const std::string path =
        std::string("taskgraph_") + partition::to_string(strategy) + ".dot";
    std::ofstream(path) << g.to_dot();
    std::cout << "full graph written to " << path
              << "  (render: dot -Tsvg -O " << path << ")\n\n";
  }
  std::cout << "Note how MC_TL emits face+cell tasks from BOTH domains in "
               "every phase — Fig 8's 8-vs-2 task comparison.\n";
  return 0;
}
