// Quickstart: the five-step TAMP pipeline in ~60 lines.
//
//   1. build (or load) a finite-volume mesh with temporal levels,
//   2. decompose it into domains with a partitioning strategy,
//   3. generate the solver's task graph (Algorithm 1),
//   4. simulate its schedule on a cluster configuration,
//   5. compare strategies.
//
// Run:  ./quickstart
#include <iostream>

#include "core/pipeline.hpp"
#include "support/gantt.hpp"

int main() {
  using namespace tamp;

  // 1. A reduced CYLINDER mesh (the paper's 6.4M-cell test case, scaled
  //    down): graded cylindrical shells with 4 temporal levels whose
  //    populations match the paper's Table I.
  mesh::TestMeshSpec spec;
  spec.target_cells = 30'000;
  const mesh::Mesh m = mesh::make_cylinder_mesh(spec);
  std::cout << "mesh: " << m.num_cells() << " cells, " << m.num_faces()
            << " faces, " << static_cast<int>(m.max_level()) + 1
            << " temporal levels\n\n";

  // 2-4. One call runs decomposition, task generation and the FLUSIM-like
  //      schedule simulation. Try the paper's two strategies.
  for (const auto strategy :
       {partition::Strategy::sc_oc, partition::Strategy::mc_tl}) {
    core::RunConfig cfg;
    cfg.strategy = strategy;          // SC_OC: balance operating cost
    cfg.ndomains = 16;                // MC_TL: balance every level class
    cfg.nprocesses = 4;               // emulated MPI processes
    cfg.workers_per_process = 4;      // cores per process
    const core::RunOutcome out = core::run_on_mesh(m, cfg);

    std::cout << partition::to_string(strategy) << ": "
              << core::summarize(out) << '\n';

    // 5. Inspect the schedule as an ASCII Gantt chart: rows = processes,
    //    glyph = dominant subiteration, '.' = idle.
    std::cout << render_gantt_ascii(
                     out.sim.gantt(out.graph, false,
                                   partition::to_string(strategy)),
                     72)
              << '\n';
  }
  std::cout << "MC_TL's rows stay busy across all subiterations — that is "
               "the paper's contribution.\n";
  return 0;
}
