// Granularity advisor: pick the number of domains for a target machine —
// the paper's §IX perspective ("automatically determine the best domain
// granularity with respect to the target machine's number of cores").
//
// Run:  ./autotune_domains [--mesh nozzle --processes 8 --workers 4]
#include <iostream>

#include "core/autotune.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace tamp;
  CliParser cli("autotune_domains — choose domain granularity for a machine");
  cli.option("mesh", "cylinder", "cylinder | cube | nozzle");
  cli.option("cells", "60000", "mesh size");
  cli.option("processes", "8", "MPI processes of the target machine");
  cli.option("workers", "4", "cores per process");
  cli.option("strategy", "mc_tl", "partitioning strategy");
  cli.option("comm-latency", "20", "modelled latency per message (work units)");
  cli.option("task-overhead", "2", "modelled runtime cost per task");
  if (!cli.parse(argc, argv)) return 0;

  mesh::TestMeshSpec spec;
  spec.target_cells = static_cast<index_t>(cli.get_int("cells"));
  const mesh::Mesh m =
      mesh::make_test_mesh(mesh::parse_test_mesh_kind(cli.get("mesh")), spec);

  core::AutotuneOptions opts;
  opts.strategy = partition::parse_strategy(cli.get("strategy"));
  opts.nprocesses = static_cast<part_t>(cli.get_int("processes"));
  opts.workers_per_process = static_cast<int>(cli.get_int("workers"));
  opts.comm.latency = cli.get_double("comm-latency");
  opts.task_overhead = cli.get_double("task-overhead");
  const core::AutotuneResult r = core::suggest_domain_count(m, opts);

  std::cout << "machine: " << opts.nprocesses << " processes x "
            << opts.workers_per_process << " cores; mesh " << m.num_cells()
            << " cells; strategy " << partition::to_string(opts.strategy)
            << "\n\n";
  TablePrinter t("granularity sweep (comm-aware makespan decides)");
  t.header({"domains", "makespan", "ideal (no comm)", "messages",
            "occupancy", ""});
  for (const auto& row : r.sweep) {
    t.row({std::to_string(row.ndomains), fmt_double(row.makespan, 0),
           fmt_double(row.ideal_makespan, 0),
           fmt_count(row.cross_process_edges), fmt_percent(row.occupancy),
           row.ndomains == r.best_ndomains ? "<== pick" : ""});
  }
  t.print(std::cout);
  std::cout << "\nRecommended: " << r.best_ndomains << " domains ("
            << r.best_ndomains / opts.nprocesses
            << " per process). Finer decompositions keep improving the "
               "ideal schedule but lose it back to per-task overhead and "
               "message latency.\n";
  return 0;
}
