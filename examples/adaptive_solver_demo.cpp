// Adaptive finite-volume solver demo: a blast-like pressure pulse in a
// graded box, integrated with the temporal-level scheme and executed as a
// task graph on the threaded runtime — the full FLUSEPA-substitute stack.
//
// Prints per-iteration conservation and wavefront diagnostics so the
// adaptive machinery is observable: coarse far-field cells update 2^τ
// times less often yet all cells land on the same physical time.
//
// Run:  ./adaptive_solver_demo [--grid 24 --iterations 6]
#include <iostream>

#include "mesh/generators.hpp"
#include "partition/strategy.hpp"
#include "solver/euler.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace tamp;
  CliParser cli("adaptive_solver_demo — blast pulse with adaptive stepping");
  cli.option("grid", "24", "cells per axis of the graded box");
  cli.option("iterations", "6", "solver iterations to run");
  cli.option("domains", "8", "domains for the task-based execution");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<index_t>(cli.get_int("grid"));
  mesh::Mesh m = mesh::make_graded_box_mesh(n, n, n, 1.12);

  solver::EulerSolver s(m);
  s.initialize_uniform(1.0, {0, 0, 0}, 1.0);
  s.add_pulse({1.5, 1.5, 1.5}, 1.0, 0.4);  // blast at the refined corner
  s.assign_temporal_levels();

  std::cout << "graded box " << n << "^3: " << m.num_cells() << " cells, "
            << static_cast<int>(m.max_level()) + 1
            << " temporal levels, dt0 = " << s.dt0() << "\n";
  const auto census = mesh::level_census(m);
  for (level_t l = 0; l < census.num_levels(); ++l)
    std::cout << "  level " << static_cast<int>(l) << ": "
              << census.cells_per_level[static_cast<std::size_t>(l)]
              << " cells (updates every " << (1 << l) << " subiterations)\n";

  const auto ndomains = static_cast<part_t>(cli.get_int("domains"));
  partition::StrategyOptions sopts;
  sopts.strategy = partition::Strategy::mc_tl;
  sopts.ndomains = ndomains;
  const auto dd = partition::decompose(m, sopts);
  const auto d2p = partition::map_domains_to_processes(
      ndomains, 2, partition::DomainMapping::block);
  runtime::RuntimeConfig rcfg;
  rcfg.num_processes = 2;
  rcfg.workers_per_process = 2;

  const solver::State initial = s.conserved_totals();
  TablePrinter t("task-parallel adaptive integration");
  t.header({"iter", "time", "max density", "mass drift", "energy drift",
            "tasks run", "runtime occupancy"});
  const int iterations = static_cast<int>(cli.get_int("iterations"));
  for (int it = 1; it <= iterations; ++it) {
    const auto report =
        s.run_iteration_tasks(dd.domain_of_cell, ndomains, d2p, rcfg);
    const solver::State now = s.conserved_totals();
    t.row({std::to_string(it), fmt_double(s.time(), 4),
           fmt_double(s.max_density(), 4),
           fmt_double(std::abs(now[0] - initial[0]) / initial[0], 15),
           fmt_double(std::abs(now[4] - initial[4]) / initial[4], 15),
           std::to_string(report.spans.size()),
           fmt_percent(report.occupancy())});
  }
  t.print(std::cout);
  std::cout << "Mass/energy drift stays at rounding level: the per-side "
               "face accumulators make the adaptive scheme exactly "
               "conservative, even mid-subcycle.\n";
  return 0;
}
