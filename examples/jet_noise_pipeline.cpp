// Installed-jet-noise style workflow — the paper's motivating scenario.
//
// Mirrors how FLUSEPA is operated at Airbus on the PPRIME nozzle case:
// generate/load the nozzle mesh, decide a domain count from the target
// cluster, partition with the production strategy, inspect the predicted
// iteration schedule, and only then commit compute hours. The example
// compares the legacy SC_OC setup against MC_TL for a user-specified
// cluster and writes the trace pair an engineer would eyeball.
//
// Run:  ./jet_noise_pipeline [--cells 150000 --processes 8 --workers 8]
#include <iostream>

#include "core/pipeline.hpp"
#include "graph/components.hpp"
#include "support/cli.hpp"
#include "support/gantt.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace tamp;
  CliParser cli("jet_noise_pipeline — plan a PPRIME-style production run");
  cli.option("cells", "120000", "nozzle mesh size (cells)");
  cli.option("processes", "8", "MPI processes of the booking");
  cli.option("workers", "8", "cores per process");
  cli.option("domains-per-process", "4", "granularity knob");
  if (!cli.parse(argc, argv)) return 0;

  mesh::TestMeshSpec spec;
  spec.target_cells = static_cast<index_t>(cli.get_int("cells"));
  const mesh::Mesh nozzle = mesh::make_nozzle_mesh(spec);
  const auto nproc = static_cast<part_t>(cli.get_int("processes"));
  const auto ndom =
      nproc * static_cast<part_t>(cli.get_int("domains-per-process"));

  std::cout << "PPRIME-style nozzle: " << nozzle.num_cells() << " cells, "
            << static_cast<int>(nozzle.max_level()) + 1
            << " temporal levels; cluster: " << nproc << " processes x "
            << cli.get_int("workers") << " cores, " << ndom << " domains\n\n";

  TablePrinter t("predicted iteration (work units; lower is better)");
  t.header({"strategy", "makespan", "occupancy", "est. messages",
            "domain fragments"});
  core::RunOutcome outcomes[2];
  int i = 0;
  for (const auto strategy :
       {partition::Strategy::sc_oc, partition::Strategy::mc_tl}) {
    core::RunConfig cfg;
    cfg.strategy = strategy;
    cfg.ndomains = ndom;
    cfg.nprocesses = nproc;
    cfg.workers_per_process = static_cast<int>(cli.get_int("workers"));
    outcomes[i] = core::run_on_mesh(nozzle, cfg);
    const auto& out = outcomes[i];

    // Fragmentation check (paper §IX: constrained partitions tend to
    // produce disconnected domains → more interfaces).
    const auto fragments = graph::part_fragment_counts(
        nozzle.dual_graph(), out.decomposition.domain_of_cell, ndom);
    index_t extra_fragments = 0;
    for (const index_t f : fragments) extra_fragments += f - 1;

    t.row({partition::to_string(strategy), fmt_double(out.makespan(), 0),
           fmt_percent(out.occupancy()), fmt_count(out.comm_volume()),
           "+" + std::to_string(extra_fragments)});
    ++i;
  }
  t.print(std::cout);

  const double gain = 1.0 - outcomes[1].makespan() / outcomes[0].makespan();
  std::cout << "\nSwitching this booking to MC_TL saves "
            << fmt_percent(gain) << " of every iteration.\n";

  write_gantt_comparison_svg(
      outcomes[0].sim.gantt(outcomes[0].graph, false, "SC_OC plan"),
      outcomes[1].sim.gantt(outcomes[1].graph, false, "MC_TL plan"),
      "jet_noise_plan.svg");
  std::cout << "Schedule comparison written to jet_noise_plan.svg\n";
  return 0;
}
