#!/usr/bin/env bash
# What-if doctor gate: run a measured execution with the counter wrapper
# in clock-only mode (the portable tier every CI runner has), sweep the
# virtual-speedup replay, and gate the published whatif.* gauges with
# tamp-report against the committed ideal baseline. The contract pinned
# here:
#
#   * the k = 1.0 replay reproduces the measured makespan bit-exactly
#     (whatif.self_check_error must stay 0 — any drift means the replay
#     re-derived a timestamp it should have copied);
#   * the leverage table covers every task class of the fixed config
#     (whatif.classes / whatif.factors are structural, not timing);
#   * savings are never negative (monotonicity of the replay);
#   * no perf.* counter metric leaks from a run without hardware
#     counters — clock-only attribution must not masquerade as IPC.
#
# Timing-dependent gauges (makespans, per-class deltas) are presence-
# checked only; their values wobble with CI timeslicing.
#
#   tools/whatif_smoke.sh [build-dir]   (default: ./build)
#
# When $GITHUB_STEP_SUMMARY is set, the gate table is appended to it as
# GitHub-flavoured markdown.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"
FLUSIM="${BUILD}/examples/flusim"
REPORT="${BUILD}/tools/tamp-report"
OUT="$(mktemp -d)"
trap 'rm -rf "${OUT}"' EXIT

for bin in "${FLUSIM}" "${REPORT}"; do
  [[ -x "${bin}" ]] || { echo "whatif_smoke: missing ${bin} (build first)"; exit 2; }
done

# Fixed config: the class census (whatif.classes = 16) is a structural
# property of this mesh/partition, independent of machine speed.
TAMP_PERF=clock "${FLUSIM}" --mesh cube --cells 8000 --domains 8 \
  --processes 2 --workers 2 --what-if --perf clock \
  --metrics "${OUT}/whatif.json" | tee "${OUT}/whatif.txt"

# The ranked leverage table and an exact self-check must be in stdout.
grep -q "what-if: virtual speedup leverage" "${OUT}/whatif.txt" || {
  echo "whatif_smoke: FAIL — no leverage table in output"
  exit 1
}
grep -q "replay self-check error 0 s" "${OUT}/whatif.txt" || {
  echo "whatif_smoke: FAIL — k=1.0 replay is not bit-exact"
  exit 1
}
# Clock-only attribution (the CPU-time table) must have been printed.
grep -q "tier: clock_only" "${OUT}/whatif.txt" || {
  echo "whatif_smoke: FAIL — no clock-only attribution table"
  exit 1
}

# Schema presence: tamp-report treats missing metrics as SKIP, so keys
# are asserted here before the value gates run.
for key in "whatif.baseline_makespan_seconds" "whatif.measured_makespan_seconds" \
           "whatif.self_check_error" "whatif.classes" "whatif.factors" \
           "whatif.best.delta_seconds" "whatif.best.rel_delta" \
           "whatif.class.t0.cell.int.k50.rel_delta"; do
  grep -q "\"${key}\"" "${OUT}/whatif.json" || {
    echo "whatif_smoke: FAIL — metrics snapshot lacks ${key}"
    exit 1
  }
done

# The publication contract: a clock-only run carries no counter-shaped
# perf.* metrics (those exist only at the hardware tier).
if grep -q '"perf\.' "${OUT}/whatif.json"; then
  echo "whatif_smoke: FAIL — perf.* metrics leaked from a clock-only run"
  exit 1
fi

# Value gates ('=' replaces the default doctor rules — this snapshot's
# doctor gauges are not under test here).
RULES="=gauges.whatif.self_check_error:0.000000001:higher:abs"
RULES+=";gauges.whatif.classes:0.5:higher:abs"
RULES+=";gauges.whatif.classes:0.5:lower:abs"
RULES+=";gauges.whatif.factors:0.5:higher:abs"
RULES+=";gauges.whatif.factors:0.5:lower:abs"
RULES+=";gauges.whatif.best.rel_delta:0.000001:lower:abs"
"${REPORT}" "${ROOT}/bench/snapshots/whatif_baseline.json" "${OUT}/whatif.json" \
  --rule "${RULES}" --quiet --verdict "${OUT}/verdict.json" || {
  echo "whatif_smoke: FAIL — whatif gauge gate regressed"
  exit 1
}
grep -q '"regressed": false' "${OUT}/verdict.json" || {
  echo "whatif_smoke: FAIL — verdict JSON lacks \"regressed\": false"
  exit 1
}

# CI visibility: publish the gate table to the job summary as markdown.
if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
  {
    echo "## what-if smoke (virtual-speedup replay gate)"
    "${REPORT}" "${ROOT}/bench/snapshots/whatif_baseline.json" \
      "${OUT}/whatif.json" --rule "${RULES}" --quiet --format markdown
  } >> "${GITHUB_STEP_SUMMARY}" || true
fi

echo "whatif_smoke: OK"
