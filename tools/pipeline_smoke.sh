#!/usr/bin/env bash
# Asynchronous-pipeline gate: prove the overlapped iteration pipeline is
# *safe* before caring whether it is fast. The contract pinned here:
#
#   * sync and overlap modes produce bitwise-identical solver state at
#     every thread count (micro_overlap re-checks this in-process on
#     every rep; pipeline.bitwise_equal must be exactly 1);
#   * flusim --pipeline runs end-to-end in both modes and the per-
#     iteration mesh-evolution gauges (cells changed / migrated — pure
#     functions of the seed) agree between them;
#   * TAMP_PIPELINE_FAULT fault injection surfaces the injected error
#     once, with the stage:iteration tag intact, and exits non-zero;
#   * the overlap accounting survives: overlap_efficiency and
#     overlap_speedup at the t4 headline stay within a generous relative
#     band of the committed Release snapshot, and hidden prep seconds
#     stay positive.
#
# Wall-clock speedup is gated loosely on purpose: the committed baseline
# was measured on a single-core container (see DESIGN.md), where overlap
# can only reach parity — the speedup gate catches catastrophic
# serialization (a stalled handoff), not noise.
#
#   tools/pipeline_smoke.sh [build-dir]   (default: ./build)
#
# When $GITHUB_STEP_SUMMARY is set, the gate table is appended to it as
# GitHub-flavoured markdown.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"
FLUSIM="${BUILD}/examples/flusim"
OVERLAP="${BUILD}/bench/micro_overlap"
REPORT="${BUILD}/tools/tamp-report"
OUT="$(mktemp -d)"
trap 'rm -rf "${OUT}"' EXIT

for bin in "${FLUSIM}" "${OVERLAP}" "${REPORT}"; do
  [[ -x "${bin}" ]] || { echo "pipeline_smoke: missing ${bin} (build first)"; exit 2; }
done

# --- flusim end-to-end, both modes, same seed ---------------------------
"${FLUSIM}" --mesh cylinder --cells 8000 --pipeline sync --iterations 3 \
  --seed 7 --metrics "${OUT}/sync.json" | tee "${OUT}/sync.txt"
"${FLUSIM}" --mesh cylinder --cells 8000 --pipeline overlap --iterations 3 \
  --seed 7 --threads 2 --metrics "${OUT}/overlap.json" | tee "${OUT}/overlap.txt"

grep -q "stage overlap (sync mode" "${OUT}/sync.txt" || {
  echo "pipeline_smoke: FAIL — sync run printed no stage-overlap summary"
  exit 1
}
grep -q "stage overlap (overlap mode" "${OUT}/overlap.txt" || {
  echo "pipeline_smoke: FAIL — overlap run printed no stage-overlap summary"
  exit 1
}

# Mesh evolution is deterministic per (seed, iteration) — independent of
# pipeline mode. These gauges are integer-valued totals, so exact string
# equality in the snapshots is the cheap cross-mode determinism check.
for key in "pipeline.cells_changed.total" "pipeline.migrated_cells.total"; do
  s="$(grep "\"${key}\"" "${OUT}/sync.json")" || {
    echo "pipeline_smoke: FAIL — sync snapshot lacks ${key}"; exit 1; }
  o="$(grep "\"${key}\"" "${OUT}/overlap.json")" || {
    echo "pipeline_smoke: FAIL — overlap snapshot lacks ${key}"; exit 1; }
  [[ "${s}" == "${o}" ]] || {
    echo "pipeline_smoke: FAIL — ${key} differs across modes: ${s} vs ${o}"
    exit 1
  }
done

# --- fault injection: the injected error surfaces once, tagged ----------
if TAMP_PIPELINE_FAULT=taskgraph:1 "${FLUSIM}" --mesh cylinder --cells 8000 \
  --pipeline overlap --iterations 3 --seed 7 --threads 2 \
  > "${OUT}/fault.txt" 2>&1; then
  echo "pipeline_smoke: FAIL — injected fault did not fail the run"
  exit 1
fi
grep -q "injected pipeline fault at taskgraph:1" "${OUT}/fault.txt" || {
  echo "pipeline_smoke: FAIL — fault ran but the stage:iteration tag is gone"
  exit 1
}
[[ "$(grep -c "injected pipeline fault" "${OUT}/fault.txt")" == "1" ]] || {
  echo "pipeline_smoke: FAIL — injected fault surfaced more than once"
  exit 1
}

# --- the scaling matrix + in-process bitwise verdict --------------------
TAMP_BENCH_METRICS_DIR="${OUT}" "${OVERLAP}" --cells 12000 --iterations 4 \
  --reps 2 | tee "${OUT}/matrix.txt"
grep -q "bitwise identical across modes and thread counts: yes" \
  "${OUT}/matrix.txt" || {
  echo "pipeline_smoke: FAIL — modes diverged in the scaling matrix"
  exit 1
}

# Schema presence: tamp-report treats missing metrics as SKIP, so keys
# are asserted here before the value gates run.
for key in "pipeline.bitwise_equal" "pipeline.overlap_speedup.t4" \
           "pipeline.overlap_efficiency.t4" "pipeline.prep_hidden_seconds.t4" \
           "pipeline.overlap_speedup.t1" "pipeline.overlap_speedup.t8"; do
  grep -q "\"${key}\"" "${OUT}/micro_overlap.json" || {
    echo "pipeline_smoke: FAIL — metrics snapshot lacks ${key}"
    exit 1
  }
done

# Value gates ('=' replaces the default doctor rules). bitwise_equal is
# pinned exactly; the timing gauges get wide relative bands — the
# baseline host is single-core, CI runners are not, and neither side's
# absolute timings are stable.
RULES="=gauges.pipeline.bitwise_equal:0.1:lower:abs"
RULES+=";gauges.pipeline.bitwise_equal:0.1:higher:abs"
RULES+=";gauges.pipeline.overlap_speedup.t4:0.5:lower:rel"
RULES+=";gauges.pipeline.overlap_efficiency.t4:0.8:lower:rel"
RULES+=";gauges.pipeline.prep_hidden_seconds.t4:0.99:lower:rel"
"${REPORT}" "${ROOT}/bench/snapshots/micro_overlap.json" \
  "${OUT}/micro_overlap.json" \
  --rule "${RULES}" --quiet --verdict "${OUT}/verdict.json" || {
  echo "pipeline_smoke: FAIL — pipeline gauge gate regressed"
  exit 1
}
grep -q '"regressed": false' "${OUT}/verdict.json" || {
  echo "pipeline_smoke: FAIL — verdict JSON lacks \"regressed\": false"
  exit 1
}

# CI visibility: publish the gate table to the job summary as markdown.
if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
  {
    echo "## pipeline smoke (async overlap gate)"
    "${REPORT}" "${ROOT}/bench/snapshots/micro_overlap.json" \
      "${OUT}/micro_overlap.json" --rule "${RULES}" --quiet --format markdown
  } >> "${GITHUB_STEP_SUMMARY}" || true
fi

echo "pipeline_smoke: OK"
