#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrency-sensitive pieces: the
# lock-free trace buffers / metrics registry (test_obs) and the worker
# pool (test_runtime). Uses a separate build tree so it never disturbs
# the main ./build directory.
#
#   tools/tsan_check.sh [extra cmake args...]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-tsan"

cmake -S "${ROOT}" -B "${BUILD}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTAMP_TSAN=ON \
  -DTAMP_ENABLE_TRACING=ON \
  "$@"
cmake --build "${BUILD}" -j "$(nproc)" --target test_obs test_runtime

# Run the binaries directly (deterministic, no ctest discovery pass);
# TSan failures make the test runner exit non-zero.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
"${BUILD}/tests/test_obs"
"${BUILD}/tests/test_runtime"

echo "tsan_check: OK"
