#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrency-sensitive pieces: the
# lock-free trace buffers / metrics registry (test_obs), the simulator's
# worker pool (test_runtime), the flight recorder's per-worker rings
# (test_flight), the partitioner's work-stealing pool
# (test_thread_pool), the race verifier's instrumented solver runs under
# adversarial schedules (test_verify, test_verify_solver, flusim
# --verify-races), the SIMD lane tiers' adversarial equivalence suite
# (test_simd), and the parallel decomposition itself — the partition
# test binaries plus the doctor smoke workflow run with
# TAMP_PARTITION_THREADS=4 so every pool code path executes under TSan.
# Uses a separate build tree so it never disturbs the main ./build
# directory.
#
#   tools/tsan_check.sh [extra cmake args...]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-tsan"

cmake -S "${ROOT}" -B "${BUILD}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTAMP_TSAN=ON \
  -DTAMP_ENABLE_TRACING=ON \
  "$@"
cmake --build "${BUILD}" -j "$(nproc)" --target \
  test_obs test_runtime test_flight test_thread_pool test_partition \
  test_partition_properties test_reorder test_verify test_verify_solver \
  test_simd test_pipeline_async test_cache flusim tamp_report

# Run the binaries directly (deterministic, no ctest discovery pass);
# TSan failures make the test runner exit non-zero.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
"${BUILD}/tests/test_obs"
"${BUILD}/tests/test_runtime"
"${BUILD}/tests/test_flight"
"${BUILD}/tests/test_thread_pool"
"${BUILD}/tests/test_reorder"
"${BUILD}/tests/test_verify"
"${BUILD}/tests/test_verify_solver"
# The SIMD lane tiers under real threads: the equivalence suite runs its
# adversarial executions per runnable level, so TSan watches the
# lane-transposed kernels race (or not) against each other's ranges.
"${BUILD}/tests/test_simd"

# The asynchronous iteration pipeline: prep(i+1) runs on the pool's
# background class while solve(i) executes on the runtime's workers —
# TSan watches the snapshot handoff, the cancellation flag, and the
# planning-mesh/live-mesh split across the full mode x thread matrix
# (fault-injection drains included).
"${BUILD}/tests/test_pipeline_async"

# The shared decomposition cache: the concurrent hammer mixes hits,
# misses, single-flight joins, evictions and clears from several
# threads; TSan watches the mutex/condvar single-flight protocol and
# the shared_ptr value handoff across eviction.
"${BUILD}/tests/test_cache"

# The DAG-level race check itself, with the per-worker access buffers
# exercised by real threads + jitter: TSan watches the recorder while the
# checker proves the graph ordered every conflicting pair. Run both data
# layouts — the locality pass covers the range-annotated streaming
# kernels on the renumbered mesh.
"${BUILD}/examples/flusim" --mesh nozzle --cells 4000 \
  --verify-races --verify-schedules 2 --verify-delay-us 20
"${BUILD}/examples/flusim" --mesh nozzle --cells 4000 --reorder locality \
  --verify-races --verify-schedules 2 --verify-delay-us 20

# Overlapped pipeline + instrumented race verifier: the access recorder
# runs inside solve(i) while prep(i+1) mutates the planning mesh on a
# pool worker; TSan checks that the only shared state between the two is
# the immutable snapshot. Both solvers cross the handoff. The default
# --patch auto means these runs re-certify patched graphs on their dirty
# region; the oracle run additionally rebuilds and compares every patch.
"${BUILD}/examples/flusim" --mesh cylinder --cells 4000 --pipeline overlap \
  --iterations 3 --threads 2 --verify-races --verify-delay-us 20
"${BUILD}/examples/flusim" --mesh cylinder --cells 4000 --pipeline overlap \
  --pipeline-solver transport --iterations 3 --threads 2 --verify-races
"${BUILD}/examples/flusim" --mesh cylinder --cells 4000 --pipeline overlap \
  --patch oracle --iterations 3 --threads 2 --verify-races

# A recorded threaded execution: every worker pushes flight events into
# its ring while the emulated processes run concurrently, then the
# measured-run doctor and divergence report read the merged stream —
# TSan checks the record-then-read handoff end to end.
"${BUILD}/examples/flusim" --mesh cube --cells 4000 --domains 8 \
  --processes 2 --workers 2 --execute --doctor

# Per-thread counter groups + the what-if replay: every worker brackets
# each task with grouped perf reads (clock-only tier here — CI denies
# perf_event_open) while the main thread later aggregates the per-task
# deltas. TSan checks that bracket-then-aggregate handoff, at both the
# clock tier and the forced-off tier.
"${BUILD}/examples/flusim" --mesh cube --cells 4000 --domains 8 \
  --processes 2 --workers 2 --what-if --perf clock
TAMP_PERF=off "${BUILD}/examples/flusim" --mesh cube --cells 4000 \
  --domains 8 --processes 2 --workers 2 --execute --perf on

# Force the pool under every partition test, then through the full
# flusim → tamp-report smoke; bit-identical output keeps those passing.
export TAMP_PARTITION_THREADS=4
"${BUILD}/tests/test_partition"
"${BUILD}/tests/test_partition_properties"
"${ROOT}/tools/doctor_smoke.sh" "${BUILD}"

echo "tsan_check: OK"
