#!/usr/bin/env bash
# Repartitioning-service gate: the sustained-load bench (bench/
# micro_service) streams session starts from several meshes × drift
# seeds through ONE shared decomposition cache, and steady-state
# iterations through the task-graph patcher. The contract pinned here:
#
#   * a cache hit is bit-identical to recomputing, and every patched
#     graph carries the same fingerprint as a from-scratch rebuild
#     (service.bitwise_equal must be exactly 1 — the bench exits
#     non-zero otherwise);
#   * the cache actually serves: service.cache_hit_rate is a pure
#     function of the request plan (sessions × meshes), so it is gated
#     tightly against the committed Release snapshot;
#   * cache-warm prep stays ≥ 3× cheaper than cold (the bench enforces
#     the floor in-process via --min-speedup; the snapshot gate catches
#     slower erosion of warm_speedup and of the p50/p99 latency
#     distribution).
#
# Latency gauges get wide relative bands on purpose: the committed
# baseline is from a single-core container and CI runners differ — the
# gates catch a cold-path-on-every-request regression (p50 jumping from
# hash-lookup cost to full-decompose cost is orders of magnitude, not
# percent), not scheduler noise.
#
#   tools/service_smoke.sh [build-dir]   (default: ./build)
#
# When $GITHUB_STEP_SUMMARY is set, the gate table is appended to it as
# GitHub-flavoured markdown.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"
SERVICE="${BUILD}/bench/micro_service"
REPORT="${BUILD}/tools/tamp-report"
OUT="$(mktemp -d)"
trap 'rm -rf "${OUT}"' EXIT

for bin in "${SERVICE}" "${REPORT}"; do
  [[ -x "${bin}" ]] || { echo "service_smoke: missing ${bin} (build first)"; exit 2; }
done

# Same parameters as the committed snapshot (bench/snapshots/
# micro_service.json). The in-bench --min-speedup 3 floor is the
# issue's acceptance bar; exceeding it only helps.
TAMP_BENCH_METRICS_DIR="${OUT}" "${SERVICE}" --cells 16000 --meshes 3 \
  --sessions 6 --iterations 3 --min-speedup 3 | tee "${OUT}/service.txt"

grep -q "cache hit bit-identical to recompute: yes" "${OUT}/service.txt" || {
  echo "service_smoke: FAIL — cache hit diverged from recompute"
  exit 1
}

# Schema presence: tamp-report treats missing metrics as SKIP, so keys
# are asserted here before the value gates run.
for key in "service.prep_p50_ms" "service.prep_p99_ms" \
           "service.cache_hit_rate" "service.warm_speedup" \
           "service.patch_speedup" "service.bitwise_equal" \
           "partition.cache.hit_rate"; do
  grep -q "\"${key}\"" "${OUT}/micro_service.json" || {
    echo "service_smoke: FAIL — metrics snapshot lacks ${key}"
    exit 1
  }
done

# Value gates ('=' replaces the default doctor rules). bitwise_equal and
# the hit rate are deterministic → pinned tight; latency and speedup
# gauges get wide relative bands (see header).
RULES="=gauges.service.bitwise_equal:0.1:lower:abs"
RULES+=";gauges.service.bitwise_equal:0.1:higher:abs"
RULES+=";gauges.service.cache_hit_rate:0.02:lower:abs"
RULES+=";gauges.service.prep_p50_ms:4.0:higher:rel"
RULES+=";gauges.service.prep_p99_ms:4.0:higher:rel"
RULES+=";gauges.service.warm_speedup:0.8:lower:rel"
RULES+=";gauges.service.patch_speedup:0.8:lower:rel"
"${REPORT}" "${ROOT}/bench/snapshots/micro_service.json" \
  "${OUT}/micro_service.json" \
  --rule "${RULES}" --quiet --verdict "${OUT}/verdict.json" || {
  echo "service_smoke: FAIL — service gauge gate regressed"
  exit 1
}
grep -q '"regressed": false' "${OUT}/verdict.json" || {
  echo "service_smoke: FAIL — verdict JSON lacks \"regressed\": false"
  exit 1
}

# CI visibility: publish the gate table to the job summary as markdown.
if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
  {
    echo "## service smoke (repartitioning cache + patch gate)"
    "${REPORT}" "${ROOT}/bench/snapshots/micro_service.json" \
      "${OUT}/micro_service.json" --rule "${RULES}" --quiet --format markdown
  } >> "${GITHUB_STEP_SUMMARY}" || true
fi

echo "service_smoke: OK"
