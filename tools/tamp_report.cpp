// tamp-report — diff two tamp-metrics-v1 snapshots and gate on regressions.
//
//   tamp-report baseline.json candidate.json
//       [--threshold-makespan 0.05] [--threshold-occupancy 0.05]
//       [--threshold-p99 0.25] [--threshold-blame 0.05]
//       [--rule gauges.x:0.1:higher:rel ...] [--verdict out.json] [--all]
//
// Prints a human-readable diff table of every metric the two files
// share, evaluates the regression rule set (by default the doctor gate:
// makespan, occupancy, p99 task length, idle-blame shares), optionally
// writes a machine-readable tamp-verdict-v1 JSON, and exits non-zero
// when any rule regressed — the piece CI pipelines gate on.
//
// Exit codes: 0 = no regression, 1 = regression, 2 = usage/input error.
#include <cmath>
#include <iostream>
#include <sstream>

#include "obs/export.hpp"
#include "obs/report.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace tamp;

/// Parse one --rule spec: metric[:tolerance[:higher|lower[:rel|abs]]].
obs::RegressionRule parse_rule(const std::string& spec) {
  obs::RegressionRule rule;
  std::istringstream in(spec);
  std::string field;
  TAMP_EXPECTS(std::getline(in, field, ':') && !field.empty(),
               "empty --rule metric");
  rule.metric = field;
  if (std::getline(in, field, ':')) rule.tolerance = std::stod(field);
  if (std::getline(in, field, ':')) {
    TAMP_EXPECTS(field == "higher" || field == "lower",
                 "--rule direction must be higher|lower");
    rule.higher_is_worse = field == "higher";
  }
  if (std::getline(in, field, ':')) {
    TAMP_EXPECTS(field == "rel" || field == "abs",
                 "--rule mode must be rel|abs");
    rule.absolute = field == "abs";
  }
  return rule;
}

std::string fmt_change(double change, bool absolute) {
  std::ostringstream os;
  if (absolute)
    os << (change >= 0 ? "+" : "") << fmt_double(change, 4);
  else
    os << (change >= 0 ? "+" : "") << fmt_double(change * 100.0, 1) << "%";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "tamp-report — compare two tamp-metrics-v1 files (e.g. MC_TL vs "
      "SC_OC, or yesterday vs today) and fail on regressions");
  cli.positional("baseline", "reference metrics JSON (the good run)");
  cli.positional("candidate", "metrics JSON under test");
  cli.option("threshold-makespan", "0.05",
             "max relative doctor.makespan increase");
  cli.option("threshold-occupancy", "0.05",
             "max absolute doctor.occupancy decrease");
  cli.option("threshold-p99", "0.25",
             "max relative doctor.task_length p99 increase");
  cli.option("threshold-blame", "0.05",
             "max absolute increase of any doctor.blame.*_share");
  cli.option("rule", "",
             "extra gates, ';'-separated metric[:tol[:higher|lower[:rel|abs]]] "
             "specs (replaces the default doctor gates when prefixed with '=')");
  cli.option("verdict", "", "write the tamp-verdict-v1 JSON here");
  cli.option("format", "text",
             "output format: text (aligned console tables) | markdown "
             "(GitHub tables, for $GITHUB_STEP_SUMMARY)");
  cli.flag("all", "show every metric in the diff table, not only changes");
  cli.flag("quiet", "suppress the diff table, print only the verdict");
  try {
    if (!cli.parse(argc, argv)) return 0;

    const std::string format = cli.get("format");
    TAMP_EXPECTS(format == "text" || format == "markdown",
                 "--format must be text|markdown");
    const bool markdown = format == "markdown";
    const auto emit = [&](const TablePrinter& table) {
      if (markdown)
        table.print_markdown(std::cout);
      else
        table.print(std::cout);
    };

    const obs::MetricsFile baseline = obs::load_metrics_file(cli.get("baseline"));
    const obs::MetricsFile candidate =
        obs::load_metrics_file(cli.get("candidate"));

    // --- rule set -----------------------------------------------------------
    std::string rule_spec = cli.get("rule");
    std::vector<obs::RegressionRule> rules;
    const bool replace_defaults = !rule_spec.empty() && rule_spec[0] == '=';
    if (replace_defaults) rule_spec.erase(0, 1);
    if (!replace_defaults)
      rules = obs::default_doctor_rules(cli.get_double("threshold-makespan"),
                                        cli.get_double("threshold-occupancy"),
                                        cli.get_double("threshold-p99"),
                                        cli.get_double("threshold-blame"));
    std::istringstream specs(rule_spec);
    for (std::string spec; std::getline(specs, spec, ';');)
      if (!spec.empty()) rules.push_back(parse_rule(spec));

    // --- diff table ---------------------------------------------------------
    if (!cli.get_flag("quiet")) {
      TablePrinter diff("metrics diff (baseline → candidate)");
      diff.header({"metric", "unit", "baseline", "candidate", "change",
                   "direction"});
      std::size_t hidden = 0;
      const auto annotate = [](const std::string& name) {
        return obs::annotate_metric(name);
      };
      for (const auto& [name, base] : obs::flatten_metrics(baseline)) {
        const obs::MetricAnnotation ann = annotate(name);
        double cand = 0;
        if (!obs::lookup_metric(candidate, name, cand)) {
          diff.row({name, ann.unit, fmt_double(base, 4), "(absent)", "",
                    ann.direction_label()});
          continue;
        }
        if (std::abs(base) < 1e-12) {
          if (!cli.get_flag("all") && std::abs(cand) < 1e-12) {
            ++hidden;
            continue;
          }
          diff.row({name, ann.unit, fmt_double(base, 4), fmt_double(cand, 4),
                    std::abs(cand) < 1e-12 ? "" : "(from zero)",
                    ann.direction_label()});
          continue;
        }
        const double rel = (cand - base) / std::abs(base);
        if (!cli.get_flag("all") && std::abs(rel) < 1e-6) {
          ++hidden;
          continue;
        }
        diff.row({name, ann.unit, fmt_double(base, 4), fmt_double(cand, 4),
                  fmt_change(rel, false), ann.direction_label()});
      }
      for (const auto& [name, cand] : obs::flatten_metrics(candidate)) {
        const obs::MetricAnnotation ann = annotate(name);
        double base = 0;
        if (!obs::lookup_metric(baseline, name, base))
          diff.row({name, ann.unit, "(absent)", fmt_double(cand, 4), "",
                    ann.direction_label()});
      }
      emit(diff);
      if (hidden > 0)
        std::cout << hidden << " unchanged metrics hidden (--all shows them)\n";
      std::cout << '\n';
    }

    // --- verdict ------------------------------------------------------------
    const obs::ReportVerdict verdict =
        obs::compare_metrics(baseline, candidate, rules);
    TablePrinter gates("regression gates");
    gates.header({"metric", "baseline", "candidate", "change", "tolerance",
                  "status"});
    for (const obs::RuleFinding& f : verdict.findings) {
      if (f.missing) {
        gates.row({f.metric, "", "", "", "", "SKIP (missing)"});
        continue;
      }
      gates.row({f.metric, fmt_double(f.baseline, 4),
                 fmt_double(f.candidate, 4), fmt_change(f.change, f.absolute),
                 "±" + fmt_double(f.tolerance, 3) +
                     (f.absolute ? " abs" : " rel"),
                 f.regressed ? "REGRESSED" : "ok"});
    }
    emit(gates);

    if (!cli.get("verdict").empty())
      obs::save_text(obs::verdict_to_json(verdict), cli.get("verdict"));

    if (verdict.regressed()) {
      std::cout << (markdown ? "**verdict: REGRESSED** :x:\n"
                             : "verdict: REGRESSED\n");
      return 1;
    }
    std::cout << (markdown ? "**verdict: ok** :white_check_mark:\n"
                           : "verdict: ok\n");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "tamp-report: " << e.what() << '\n';
    return 2;
  }
}
