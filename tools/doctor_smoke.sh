#!/usr/bin/env bash
# End-to-end smoke test of the schedule-doctor workflow:
#
#   flusim --doctor --metrics  →  tamp-report baseline candidate
#
# Runs the seed CUBE mesh under the paper's two headline strategies and
# checks the regression gate in both directions: MC_TL as the candidate
# against an SC_OC baseline must pass (everything improves), SC_OC as
# the candidate against an MC_TL baseline must fail with a machine-
# readable "regressed": true verdict. Exercises exactly what CI gates on.
#
#   tools/doctor_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"
FLUSIM="${BUILD}/examples/flusim"
REPORT="${BUILD}/tools/tamp-report"
OUT="$(mktemp -d)"
trap 'rm -rf "${OUT}"' EXIT

for bin in "${FLUSIM}" "${REPORT}"; do
  [[ -x "${bin}" ]] || { echo "doctor_smoke: missing ${bin} (build first)"; exit 2; }
done

run_flusim() { # strategy
  "${FLUSIM}" --mesh cube --cells 8000 --partition-strategy "$1" \
    --domains 16 --processes 4 --workers 4 \
    --doctor --metrics "${OUT}/$1.json" \
    --doctor-csv "${OUT}/$1.csv" --doctor-svg "${OUT}/$1.svg" \
    > "${OUT}/$1.txt"
}
run_flusim mc_tl
run_flusim sc_oc

# The doctor must blame SC_OC's idleness on starvation louder than MC_TL's
# (the paper's level-imbalance signature, §IV / Fig 7).
starv() { grep -o '"doctor.blame.starvation_share": [0-9.eE+-]*' "$1" | awk '{print $2}'; }
SC=$(starv "${OUT}/sc_oc.json")
MC=$(starv "${OUT}/mc_tl.json")
awk -v sc="${SC}" -v mc="${MC}" 'BEGIN { exit !(sc > mc) }' || {
  echo "doctor_smoke: FAIL — SC_OC starvation share (${SC}) not above MC_TL (${MC})"
  exit 1
}

# Direction 1: MC_TL candidate vs SC_OC baseline — strictly better, exit 0.
# The two strategies build different task graphs, so loosen the p99
# task-length gate (it compares aggregation grain, not schedule quality).
if ! "${REPORT}" "${OUT}/sc_oc.json" "${OUT}/mc_tl.json" \
    --threshold-p99 2.0 --quiet; then
  echo "doctor_smoke: FAIL — MC_TL flagged as a regression of SC_OC"
  exit 1
fi

# Direction 2: SC_OC candidate vs MC_TL baseline — must regress (exit 1)
# and say so in the verdict JSON.
if "${REPORT}" "${OUT}/mc_tl.json" "${OUT}/sc_oc.json" \
    --threshold-p99 2.0 --quiet --verdict "${OUT}/verdict.json"; then
  echo "doctor_smoke: FAIL — SC_OC not flagged as a regression of MC_TL"
  exit 1
fi
grep -q '"regressed": true' "${OUT}/verdict.json" || {
  echo "doctor_smoke: FAIL — verdict JSON lacks \"regressed\": true"
  exit 1
}

# The side artifacts materialised.
for f in mc_tl.csv mc_tl.svg sc_oc.csv sc_oc.svg; do
  [[ -s "${OUT}/${f}" ]] || { echo "doctor_smoke: FAIL — empty ${f}"; exit 1; }
done
grep -q "diagnosis:" "${OUT}/sc_oc.txt" || {
  echo "doctor_smoke: FAIL — no diagnosis line in --doctor output"
  exit 1
}

echo "doctor_smoke: OK (starvation share sc_oc=${SC} > mc_tl=${MC})"
