#!/usr/bin/env bash
# Sim-vs-reality divergence gate: run the Fig 5 experiment (FLUSIM
# prediction vs a real threaded execution of the same task graph, flight
# recorder armed), export the divergence.* gauges, and gate them with
# tamp-report against the committed zero-drift baseline. A simulator (or
# runtime, or adapter) change that makes the prediction drift past the
# tolerances fails CI loudly instead of silently rotting Fig 5.
#
# Tolerances are deliberately generous: CI runners timeslice the emulated
# workers, so the *absolute* gap wobbles — the gate catches gross drift
# (broken adapter, runaway overhead, miscalibrated simulator), not noise.
#
#   tools/divergence_smoke.sh [build-dir]   (default: ./build)
#
# Environment:
#   DIVERGENCE_ARTIFACTS  directory for the Gantt SVG + Chrome trace
#                         (default: a temp dir; CI sets this and uploads)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"
FIG5="${BUILD}/bench/fig5_sim_vs_runtime"
REPORT="${BUILD}/tools/tamp-report"
OUT="$(mktemp -d)"
trap 'rm -rf "${OUT}"' EXIT
ARTIFACTS="${DIVERGENCE_ARTIFACTS:-${OUT}/artifacts}"

for bin in "${FIG5}" "${REPORT}"; do
  [[ -x "${bin}" ]] || { echo "divergence_smoke: missing ${bin} (build first)"; exit 2; }
done

# Small config: 2 emulated processes x 2 workers fits CI cores, and a
# large-ish spin keeps per-task runtime overhead amortised.
TAMP_BENCH_METRICS_DIR="${OUT}/metrics" "${FIG5}" \
  --scale 0.002 --domains 8 --processes 2 --workers 2 --spin-us 50 \
  --artifacts "${ARTIFACTS}" | tee "${OUT}/fig5.txt"

METRICS="${OUT}/metrics/fig5_sim_vs_runtime.json"
[[ -s "${METRICS}" ]] || { echo "divergence_smoke: FAIL — no metrics snapshot"; exit 1; }
grep -q "sim vs reality" "${OUT}/fig5.txt" || {
  echo "divergence_smoke: FAIL — no divergence report in fig5 output"
  exit 1
}

# The measured run's Chrome trace must have materialised (CI uploads it).
[[ -s "${ARTIFACTS}/fig5_runtime.trace.json" ]] || {
  echo "divergence_smoke: FAIL — missing fig5_runtime.trace.json"
  exit 1
}
grep -q '"ph"' "${ARTIFACTS}/fig5_runtime.trace.json" || {
  echo "divergence_smoke: FAIL — Chrome trace has no events"
  exit 1
}

# Absolute gates against the zero-drift baseline ('=' replaces the
# default doctor rules — this snapshot has no doctor.* gauges).
RULES="=gauges.divergence.makespan.abs_rel_gap:1.5:higher:abs"
RULES+=";gauges.divergence.idle_share.abs_gap:0.6:higher:abs"
RULES+=";gauges.divergence.subiteration.max_abs_idle_gap:0.95:higher:abs"
"${REPORT}" "${ROOT}/bench/snapshots/divergence_baseline.json" "${METRICS}" \
  --rule "${RULES}" --verdict "${OUT}/verdict.json" || {
  echo "divergence_smoke: FAIL — simulator drift exceeded tolerance"
  exit 1
}
grep -q '"regressed": false' "${OUT}/verdict.json" || {
  echo "divergence_smoke: FAIL — verdict JSON lacks \"regressed\": false"
  exit 1
}

# CI visibility: publish the gate table to the job summary as markdown.
if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
  {
    echo "## divergence smoke (sim-vs-reality gate)"
    "${REPORT}" "${ROOT}/bench/snapshots/divergence_baseline.json" \
      "${METRICS}" --rule "${RULES}" --quiet --format markdown
  } >> "${GITHUB_STEP_SUMMARY}" || true
fi

echo "divergence_smoke: OK"
