// Microbenchmarks of the observability layer's overhead — the numbers
// behind the "tracing costs nothing when off" claim:
//
//  * BM_PipelineTracing/0 vs /1: full run_on_mesh with the session
//    runtime-disabled vs enabled (whole-pipeline overhead);
//  * BM_TraceScopeDisabled: the per-site cost paid by instrumented code
//    when tracing is compiled in but switched off (one relaxed load);
//  * BM_TraceScopeEnabled / BM_HistogramRecord / BM_CounterAdd: the cost
//    actually paid while recording;
//  * BM_RegistryLookup: why hot loops must cache metric references.
//
// Build with -DTAMP_ENABLE_TRACING=OFF and rerun BM_PipelineTracing/0 to
// measure the compiled-out configuration against the baseline.
#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace tamp;

struct MeshFixture {
  mesh::Mesh m;
  MeshFixture()
      : m([] {
          mesh::TestMeshSpec spec;
          spec.target_cells = 20'000;
          return mesh::make_cylinder_mesh(spec);
        }()) {}
  static const MeshFixture& get() {
    static MeshFixture f;
    return f;
  }
};

void BM_PipelineTracing(benchmark::State& state) {
  const bool tracing_on = state.range(0) != 0;
  const auto& f = MeshFixture::get();
  core::RunConfig cfg;
  cfg.strategy = partition::Strategy::mc_tl;
  cfg.ndomains = 16;
  cfg.nprocesses = 4;
  cfg.workers_per_process = 4;
  obs::set_tracing_enabled(tracing_on);
  for (auto _ : state) {
    auto out = core::run_on_mesh(f.m, cfg);
    benchmark::DoNotOptimize(out.sim.makespan);
    if (tracing_on) {
      // Keep the session from growing unboundedly across iterations;
      // clearing is excluded from the measurement.
      state.PauseTiming();
      obs::TraceSession::instance().clear();
      state.ResumeTiming();
    }
  }
  obs::set_tracing_enabled(false);
  obs::TraceSession::instance().clear();
  state.SetItemsProcessed(state.iterations() * f.m.num_cells());
}
BENCHMARK(BM_PipelineTracing)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_TraceScopeDisabled(benchmark::State& state) {
  obs::set_tracing_enabled(false);
  for (auto _ : state) {
    TAMP_TRACE_SCOPE("bench/span");
  }
}
BENCHMARK(BM_TraceScopeDisabled);

void BM_TraceScopeEnabled(benchmark::State& state) {
  obs::set_tracing_enabled(true);
  std::size_t since_clear = 0;
  for (auto _ : state) {
    TAMP_TRACE_SCOPE("bench/span");
    if (++since_clear == 65536) {
      since_clear = 0;
      state.PauseTiming();
      obs::TraceSession::instance().clear();
      state.ResumeTiming();
    }
  }
  obs::set_tracing_enabled(false);
  obs::TraceSession::instance().clear();
}
BENCHMARK(BM_TraceScopeEnabled);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& c = obs::counter("bench.counter");
  for (auto _ : state) c.add();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram& h = obs::histogram("bench.histogram");
  double v = 1e-6;
  for (auto _ : state) {
    h.record(v);
    v = v < 1.0 ? v * 1.0001 : 1e-6;  // sweep buckets, stay predictable
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_RegistryLookup(benchmark::State& state) {
  obs::counter("bench.lookup");  // pre-register
  for (auto _ : state) {
    benchmark::DoNotOptimize(&obs::counter("bench.lookup"));
  }
}
BENCHMARK(BM_RegistryLookup);

}  // namespace

BENCHMARK_MAIN();
