// Microbenchmarks of the observability layer's overhead — the numbers
// behind the "tracing costs nothing when off" claim:
//
//  * BM_PipelineTracing/0 vs /1: full run_on_mesh with the session
//    runtime-disabled vs enabled (whole-pipeline overhead);
//  * BM_TraceScopeDisabled: the per-site cost paid by instrumented code
//    when tracing is compiled in but switched off (one relaxed load);
//  * BM_TraceScopeEnabled / BM_HistogramRecord / BM_CounterAdd: the cost
//    actually paid while recording;
//  * BM_RegistryLookup: why hot loops must cache metric references.
//
// Build with -DTAMP_ENABLE_TRACING=OFF and rerun BM_PipelineTracing/0 to
// measure the compiled-out configuration against the baseline.
//
// The flight-recorder section backs the runtime flight recorder's cost
// claims the same way:
//
//  * BM_FlightRingPush: raw ns/event of a ring store (the attached cost);
//  * BM_FlightRecordDetached: the TAMP_FLIGHT_RECORD macro with no
//    recorder attached (one null test — or literally nothing when
//    compiled out);
//  * BM_RuntimeFlightOverhead/0 vs /1: a full runtime::execute of a real
//    task graph with recording off vs on (the <2% end-to-end claim).
//
// The perf-counter section measures the cost the runtime pays per task
// for counter attribution: BM_PerfGroupRead (one grouped perf_event
// read at the strongest tier the environment grants, or one
// clock_gettime at the clock-only fallback) and
// BM_PerfGroupReadUnavailable (the disabled path).
//
// After the benchmarks run, main() re-measures the headline numbers
// directly and dumps them as obs.flight.* / obs.perf.* gauges
// (tamp-metrics-v1) under TAMP_BENCH_METRICS_DIR — the committed
// Release snapshot lives at bench/snapshots/micro_obs.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"
#include "runtime/runtime.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace tamp;

struct MeshFixture {
  mesh::Mesh m;
  MeshFixture()
      : m([] {
          mesh::TestMeshSpec spec;
          spec.target_cells = 20'000;
          return mesh::make_cylinder_mesh(spec);
        }()) {}
  static const MeshFixture& get() {
    static MeshFixture f;
    return f;
  }
};

void BM_PipelineTracing(benchmark::State& state) {
  const bool tracing_on = state.range(0) != 0;
  const auto& f = MeshFixture::get();
  core::RunConfig cfg;
  cfg.strategy = partition::Strategy::mc_tl;
  cfg.ndomains = 16;
  cfg.nprocesses = 4;
  cfg.workers_per_process = 4;
  obs::set_tracing_enabled(tracing_on);
  for (auto _ : state) {
    auto out = core::run_on_mesh(f.m, cfg);
    benchmark::DoNotOptimize(out.sim.makespan);
    if (tracing_on) {
      // Keep the session from growing unboundedly across iterations;
      // clearing is excluded from the measurement.
      state.PauseTiming();
      obs::TraceSession::instance().clear();
      state.ResumeTiming();
    }
  }
  obs::set_tracing_enabled(false);
  obs::TraceSession::instance().clear();
  state.SetItemsProcessed(state.iterations() * f.m.num_cells());
}
BENCHMARK(BM_PipelineTracing)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_TraceScopeDisabled(benchmark::State& state) {
  obs::set_tracing_enabled(false);
  for (auto _ : state) {
    TAMP_TRACE_SCOPE("bench/span");
  }
}
BENCHMARK(BM_TraceScopeDisabled);

void BM_TraceScopeEnabled(benchmark::State& state) {
  obs::set_tracing_enabled(true);
  std::size_t since_clear = 0;
  for (auto _ : state) {
    TAMP_TRACE_SCOPE("bench/span");
    if (++since_clear == 65536) {
      since_clear = 0;
      state.PauseTiming();
      obs::TraceSession::instance().clear();
      state.ResumeTiming();
    }
  }
  obs::set_tracing_enabled(false);
  obs::TraceSession::instance().clear();
}
BENCHMARK(BM_TraceScopeEnabled);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& c = obs::counter("bench.counter");
  for (auto _ : state) c.add();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram& h = obs::histogram("bench.histogram");
  double v = 1e-6;
  for (auto _ : state) {
    h.record(v);
    v = v < 1.0 ? v * 1.0001 : 1e-6;  // sweep buckets, stay predictable
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_RegistryLookup(benchmark::State& state) {
  obs::counter("bench.lookup");  // pre-register
  for (auto _ : state) {
    benchmark::DoNotOptimize(&obs::counter("bench.lookup"));
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_FlightRingPush(benchmark::State& state) {
  obs::FlightRing ring(obs::FlightRecorder::kDefaultRingCapacity);
  obs::FlightRing* rp = &ring;
  double t = 0;
  for (auto _ : state) {
    TAMP_FLIGHT_RECORD(rp, obs::FlightEventKind::task_begin, t, 7, 3);
    t += 1e-7;
  }
  benchmark::DoNotOptimize(ring.total_recorded());
}
BENCHMARK(BM_FlightRingPush);

void BM_FlightRecordDetached(benchmark::State& state) {
  obs::FlightRing* rp = nullptr;
  benchmark::DoNotOptimize(rp);
  double t = 0;
  for (auto _ : state) {
    TAMP_FLIGHT_RECORD(rp, obs::FlightEventKind::task_begin, t, 7, 3);
    t += 1e-7;
  }
  benchmark::DoNotOptimize(t);
}
BENCHMARK(BM_FlightRecordDetached);

void BM_PerfGroupRead(benchmark::State& state) {
  // Strongest tier this environment grants: hardware where perf_event
  // works (a grouped syscall read), clock_only elsewhere (one
  // clock_gettime). The tier is printed in the counters so runs on
  // different machines stay comparable.
  obs::PerfGroup group;
  obs::PerfSample s;
  for (auto _ : state) {
    group.read(s);
    benchmark::DoNotOptimize(s.thread_cpu_ns);
  }
  state.counters["tier"] = static_cast<double>(group.tier());
}
BENCHMARK(BM_PerfGroupRead);

void BM_PerfGroupReadUnavailable(benchmark::State& state) {
  // The forced-off path the runtime pays per task when perf recording is
  // disabled at runtime: a single tier test.
  obs::PerfGroup group(obs::PerfTier::unavailable);
  obs::PerfSample s;
  for (auto _ : state) benchmark::DoNotOptimize(group.read(s));
}
BENCHMARK(BM_PerfGroupReadUnavailable);

/// Shared task graph for the end-to-end overhead measurement: the
/// pipeline's real graph with fast synthetic bodies, so the measured
/// overhead covers every instrumentation site the production runtime has.
struct GraphFixture {
  core::RunOutcome out;
  GraphFixture()
      : out([] {
          core::RunConfig cfg;
          cfg.strategy = partition::Strategy::mc_tl;
          cfg.ndomains = 16;
          cfg.nprocesses = 2;
          cfg.workers_per_process = 2;
          return core::run_on_mesh(MeshFixture::get().m, cfg);
        }()) {}
  static const GraphFixture& get() {
    static GraphFixture f;
    return f;
  }
};

double run_graph_once(bool flight) {
  const auto& f = GraphFixture::get();
  runtime::RuntimeConfig cfg;
  cfg.num_processes = 2;
  cfg.workers_per_process = 2;
  cfg.flight.enabled = flight;
  const auto report = runtime::execute(
      f.out.graph, f.out.domain_to_process, cfg,
      runtime::make_synthetic_body(f.out.graph, 1e-7));
  return report.wall_seconds;
}

void BM_RuntimeFlightOverhead(benchmark::State& state) {
  const bool flight = state.range(0) != 0;
  for (auto _ : state) benchmark::DoNotOptimize(run_graph_once(flight));
}
BENCHMARK(BM_RuntimeFlightOverhead)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Direct re-measurement of the headline numbers as obs.flight.* gauges.
/// Deliberately outside google-benchmark so the values land in the
/// metrics registry for dump_bench_metrics / the committed snapshot.
void publish_flight_gauges() {
#if defined(TAMP_TRACING_ENABLED)
  obs::gauge("obs.flight.compiled").set(1);
#else
  obs::gauge("obs.flight.compiled").set(0);
#endif
  obs::gauge("obs.flight.bytes_per_event")
      .set(static_cast<double>(sizeof(obs::FlightEvent)));

  constexpr int kEvents = 1 << 20;
  {
    obs::FlightRing ring(obs::FlightRecorder::kDefaultRingCapacity);
    obs::FlightRing* rp = &ring;
    Stopwatch sw;
    for (int i = 0; i < kEvents; ++i)
      TAMP_FLIGHT_RECORD(rp, obs::FlightEventKind::task_begin, 1e-7 * i, i);
    // Compiled out, the loop above is empty and this measures ~0 ns —
    // exactly the claim the snapshot should carry for that build.
    benchmark::DoNotOptimize(ring.total_recorded());
    obs::gauge("obs.flight.ns_per_event.attached")
        .set(sw.seconds() * 1e9 / kEvents);
  }
  {
    obs::FlightRing* rp = nullptr;
    benchmark::DoNotOptimize(rp);
    Stopwatch sw;
    for (int i = 0; i < kEvents; ++i)
      TAMP_FLIGHT_RECORD(rp, obs::FlightEventKind::task_begin, 1e-7 * i, i);
    obs::gauge("obs.flight.ns_per_event.detached")
        .set(sw.seconds() * 1e9 / kEvents);
  }

  // End-to-end: median of repeated graph executions, recording off vs on.
  auto median_wall = [](bool flight) {
    std::array<double, 5> runs{};
    for (double& r : runs) r = run_graph_once(flight);
    std::sort(runs.begin(), runs.end());
    return runs[runs.size() / 2];
  };
  run_graph_once(false);  // warm-up (threads, page cache)
  const double off = median_wall(false);
  const double on = median_wall(true);
  obs::gauge("obs.flight.runtime_wall_seconds.off").set(off);
  obs::gauge("obs.flight.runtime_wall_seconds.on").set(on);
  obs::gauge("obs.flight.runtime_overhead_rel")
      .set(off > 0 ? on / off - 1.0 : 0.0);
}

/// Perf-counter read cost as obs.perf.* gauges. "attached" is the
/// strongest tier the environment grants (hardware: one grouped syscall
/// read; clock_only: one clock_gettime) — obs.perf.tier says which was
/// measured, so snapshots from perf-less CI runners are not mistaken for
/// syscall costs. "fallback" is the forced-unavailable path the runtime
/// pays per task when recording is disabled.
void publish_perf_gauges() {
  obs::gauge("obs.perf.tier")
      .set(static_cast<double>(obs::PerfGroup::probe()));
  constexpr int kReads = 1 << 16;
  {
    obs::PerfGroup group;
    obs::gauge("obs.perf.counters_valid").set(group.num_valid());
    obs::PerfSample s;
    Stopwatch sw;
    for (int i = 0; i < kReads; ++i) {
      group.read(s);
      benchmark::DoNotOptimize(s.thread_cpu_ns);
    }
    obs::gauge("obs.perf.ns_per_read.attached")
        .set(sw.seconds() * 1e9 / kReads);
  }
  {
    obs::PerfGroup group(obs::PerfTier::unavailable);
    obs::PerfSample s;
    Stopwatch sw;
    for (int i = 0; i < kReads; ++i) benchmark::DoNotOptimize(group.read(s));
    benchmark::DoNotOptimize(s.thread_cpu_ns);
    obs::gauge("obs.perf.ns_per_read.fallback")
        .set(sw.seconds() * 1e9 / kReads);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  publish_flight_gauges();
  publish_perf_gauges();
  tamp::bench::dump_bench_metrics("micro_obs");
  return 0;
}
