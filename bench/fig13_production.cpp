// Reproduces Fig 13: the production validation. The paper runs full
// FLUSEPA (real kernels, StarPU + MPI overheads, communication) on
// PPRIME_NOZZLE and still gains ~20 % with MC_TL.
//
// Our production stand-in executes the *real* finite-volume Euler kernels
// task-by-task through the threaded runtime on a geometrically consistent
// graded mesh, measures every task's actual duration, then replays those
// measured durations through the event simulator on the paper's cluster
// configuration (6 processes x 4 cores) with a non-zero communication
// model. This keeps real kernel cost variation (cache effects, per-level
// population differences) and overhead modelling in the comparison —
// the single-core box cannot time a genuinely parallel run.
#include "bench_common.hpp"
#include "runtime/runtime.hpp"
#include "solver/euler.hpp"
#include "support/gantt.hpp"

using namespace tamp;

namespace {

taskgraph::TaskGraph with_measured_costs(
    const taskgraph::TaskGraph& g,
    const std::vector<runtime::ExecutionReport::Span>& spans,
    double units_per_second) {
  std::vector<taskgraph::Task> tasks = g.tasks();
  std::vector<std::vector<index_t>> deps(tasks.size());
  for (index_t t = 0; t < g.num_tasks(); ++t) {
    const auto st = static_cast<std::size_t>(t);
    tasks[st].cost = std::max(
        (spans[st].end - spans[st].start) * units_per_second, 1e-9);
    deps[st].assign(g.predecessors(t).begin(), g.predecessors(t).end());
  }
  return taskgraph::TaskGraph(std::move(tasks), deps);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fig13_production — production-style validation (Fig 13)");
  bench::add_common_options(cli);
  cli.option("grid", "36", "graded production mesh resolution per axis");
  cli.option("domains", "12", "number of domains");
  cli.option("processes", "6", "MPI processes");
  cli.option("workers", "4", "cores per process");
  cli.option("comm-latency-us", "30", "per-message latency modelled, µs");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner(
      "Fig 13 — production run with real kernels + communication model",
      "paper: MC_TL keeps a ~20% gain inside production FLUSEPA, "
      "overheads included");

  const auto n = static_cast<index_t>(cli.get_int("grid"));
  const auto ndomains = static_cast<part_t>(cli.get_int("domains"));
  const auto nproc = static_cast<part_t>(cli.get_int("processes"));
  const int workers = static_cast<int>(cli.get_int("workers"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  TablePrinter t;
  t.header({"strategy", "measured kernel time", "simulated makespan",
            "occupancy", "tasks"});
  double makespans[2] = {0, 0};
  int row = 0;
  const std::string dir = bench::artifact_dir(cli);
  GanttTrace traces[2];

  for (const auto strategy :
       {partition::Strategy::sc_oc, partition::Strategy::mc_tl}) {
    // Fresh mesh + state per strategy so both see identical physics.
    mesh::Mesh m = mesh::make_graded_box_mesh(n, n, n, 1.06);
    solver::EulerSolver solver(m);
    solver.initialize_uniform(1.0, {0.05, 0, 0}, 1.0);
    solver.add_pulse({2.0, 2.0, 2.0}, 1.5, 0.15);
    solver.assign_temporal_levels();

    partition::StrategyOptions sopts;
    sopts.strategy = strategy;
    sopts.ndomains = ndomains;
    sopts.partitioner.seed = seed;
    const auto dd = partition::decompose(m, sopts);

    const auto graph =
        taskgraph::generate_task_graph(m, dd.domain_of_cell, ndomains);

    // Serial execution with real kernels, timing every task. The solver
    // regenerates the same deterministic task graph internally, so its
    // spans align with `graph`'s task ids. Three iterations are measured
    // and each task keeps its minimum duration — the standard defence
    // against timer noise on a shared machine (task costs depend on
    // object counts, not state values, so the minimum is representative).
    const std::vector<part_t> serial_map(
        static_cast<std::size_t>(ndomains), 0);
    runtime::RuntimeConfig rcfg;  // 1 process, 1 worker
    runtime::ExecutionReport report = solver.run_iteration_tasks(
        dd.domain_of_cell, ndomains, serial_map, rcfg);
    for (int rep = 1; rep < 3; ++rep) {
      const runtime::ExecutionReport again = solver.run_iteration_tasks(
          dd.domain_of_cell, ndomains, serial_map, rcfg);
      for (std::size_t t = 0; t < report.spans.size(); ++t) {
        const double d_old =
            report.spans[t].end - report.spans[t].start;
        const double d_new = again.spans[t].end - again.spans[t].start;
        if (d_new < d_old) {
          report.spans[t].start = 0;
          report.spans[t].end = d_new;
        } else {
          report.spans[t].start = 0;
          report.spans[t].end = d_old;
        }
      }
      report.wall_seconds = std::min(report.wall_seconds, again.wall_seconds);
    }

    // Replay measured durations on the paper's cluster with comm costs.
    const taskgraph::TaskGraph measured =
        with_measured_costs(graph, report.spans, 1e6);  // µs units
    sim::SimOptions simopts;
    simopts.cluster.num_processes = nproc;
    simopts.cluster.workers_per_process = workers;
    simopts.comm.latency = cli.get_double("comm-latency-us");
    simopts.comm.per_object = 0.002;  // µs per halo object
    const auto d2p = partition::map_domains_to_processes(
        ndomains, nproc, partition::DomainMapping::block);
    const sim::SimResult sr = sim::simulate(measured, d2p, simopts);

    makespans[row] = sr.makespan;
    traces[row] = sr.gantt(measured, true,
                           std::string(partition::to_string(strategy)) +
                               " (measured kernel costs + comm)");
    t.row({partition::to_string(strategy),
           fmt_double(report.wall_seconds * 1e3, 1) + " ms",
           fmt_double(sr.makespan / 1e3, 2) + " ms",
           fmt_percent(sr.occupancy()), fmt_count(graph.num_tasks())});
    ++row;
  }
  t.print(std::cout);
  const double gain = 1.0 - makespans[1] / makespans[0];
  std::cout << "MC_TL production-style gain: " << fmt_percent(gain)
            << " (paper: ~20%, overheads and communication included)\n";
  write_gantt_comparison_svg(traces[0], traces[1], dir + "/fig13_traces.svg");
  std::cout << "Traces in " << dir << "/fig13_traces.svg\n";
  bench::dump_bench_metrics("fig13_production");
  return 0;
}
