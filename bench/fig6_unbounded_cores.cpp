// Reproduces Fig 6: even with an unbounded number of cores per process,
// SC_OC-partitioned executions leave whole processes idle — proving the
// task-graph structure, not the scheduler, causes the imbalance (§III-C).
#include <algorithm>

#include "bench_common.hpp"
#include "sim/analysis.hpp"
#include "support/gantt.hpp"

using namespace tamp;

int main(int argc, char** argv) {
  CliParser cli(
      "fig6_unbounded_cores — idleness persists with unlimited cores "
      "(paper Fig 6)");
  bench::add_common_options(cli);
  cli.option("processes", "64", "MPI processes, one domain each");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig 6 — unbounded cores per process, 64 processes",
                "64 MPI processes, 1 domain each, unlimited cores: the "
                "eager schedule is optimal, yet processes still idle");

  const auto m = bench::make_bench_mesh(
      mesh::TestMeshKind::cylinder, cli.get_double("scale"),
      static_cast<std::uint64_t>(cli.get_int("seed")));
  const auto nproc = static_cast<part_t>(cli.get_int("processes"));

  core::RunConfig cfg;
  cfg.strategy = partition::Strategy::sc_oc;
  cfg.ndomains = nproc;
  cfg.nprocesses = nproc;
  cfg.workers_per_process = 0;  // unbounded (Fig 6's ideal configuration)
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const core::RunOutcome out = core::run_on_mesh(m, cfg);

  // Idle statistics per process: the signature of Fig 6 is a large group
  // of processes idle most of the iteration.
  std::vector<double> idle(static_cast<std::size_t>(nproc));
  for (part_t p = 0; p < nproc; ++p)
    idle[static_cast<std::size_t>(p)] = out.sim.idle_fraction(p);
  std::sort(idle.begin(), idle.end());

  TablePrinter t;
  t.header({"statistic", "value"});
  t.row({"makespan (work units)", fmt_double(out.makespan(), 0)});
  t.row({"critical path", fmt_double(out.graph.critical_path(), 0)});
  t.row({"median process idle", fmt_percent(idle[static_cast<std::size_t>(nproc / 2)])});
  t.row({"max process idle", fmt_percent(idle.back())});
  t.row({"processes idle > 50%",
         std::to_string(std::count_if(idle.begin(), idle.end(),
                                      [](double f) { return f > 0.5; }))});
  // The paper's phrase is "continuous blocks of inactivity": measure the
  // longest contiguous idle block of any process relative to makespan.
  simtime_t longest_block = 0;
  index_t with_big_block = 0;
  for (part_t p = 0; p < nproc; ++p) {
    const sim::IdleBlocks blocks = sim::idle_blocks(out.sim, p);
    longest_block = std::max(longest_block, blocks.longest);
    if (blocks.longest > 0.25 * out.makespan()) ++with_big_block;
  }
  t.row({"longest contiguous idle block",
         fmt_percent(longest_block / out.makespan()) + " of makespan"});
  t.row({"processes with a >25% idle block", std::to_string(with_big_block)});
  t.print(std::cout);

  const std::string dir = bench::artifact_dir(cli);
  const GanttTrace trace =
      out.sim.gantt(out.graph, false, "Fig 6: 64 proc, unbounded cores, SC_OC");
  write_gantt_svg(trace, dir + "/fig6_trace.svg");
  std::cout << "\nAggregated per-process trace (columns = time, '.' = "
               "idle, glyph = dominant subiteration):\n"
            << render_gantt_ascii(trace, 96)
            << "\nShape check: many rows show long idle stretches despite "
               "unlimited cores — scheduling cannot be the root cause.\n"
            << "Trace written to " << dir << "/fig6_trace.svg\n";
  bench::dump_bench_metrics("fig6_unbounded_cores");
  return 0;
}
