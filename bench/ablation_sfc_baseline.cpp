// Ablation adding the geometric baseline from the paper's related work:
// a Hilbert space-filling-curve partitioner (Zoltan-style / reference
// [1]). SFC balances its single weight perfectly and is far faster than
// multilevel partitioning, but knows nothing about temporal levels — its
// schedules behave like SC_OC's, underlining that MC_TL's gain comes from
// level awareness, not from partitioner quality.
#include "bench_common.hpp"
#include "partition/sfc.hpp"
#include "support/stopwatch.hpp"
#include "taskgraph/generate.hpp"

using namespace tamp;

int main(int argc, char** argv) {
  CliParser cli("ablation_sfc_baseline — geometric SFC vs multilevel");
  bench::add_common_options(cli);
  cli.option("domains", "64", "number of domains");
  cli.option("processes", "16", "MPI processes");
  cli.option("workers", "8", "cores per process");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("related work — Hilbert-SFC geometric baseline",
                "geometric methods (Zoltan, Cartesian-CFD SFC) ignore "
                "connectivity and temporal levels: fast and cost-balanced, "
                "but their task graphs starve like SC_OC's");

  const auto ndomains = static_cast<part_t>(cli.get_int("domains"));
  const auto nproc = static_cast<part_t>(cli.get_int("processes"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto m = bench::make_bench_mesh(mesh::TestMeshKind::cylinder,
                                        cli.get_double("scale"), seed);
  const auto d2p = partition::map_domains_to_processes(
      ndomains, nproc, partition::DomainMapping::block);
  const auto g_oc = partition::build_strategy_graph(m, partition::Strategy::sc_oc);
  const auto g_tl = partition::build_strategy_graph(m, partition::Strategy::mc_tl);

  TablePrinter t("CYLINDER, " + std::to_string(ndomains) + " domains");
  t.header({"partitioner", "time", "cut", "cost imb.", "level imb.",
            "makespan", "occupancy"});

  auto add_row = [&](const std::string& name,
                     const std::vector<part_t>& domains, double seconds) {
    const auto graph = taskgraph::generate_task_graph(m, domains, ndomains);
    sim::SimOptions simopts;
    simopts.cluster.num_processes = nproc;
    simopts.cluster.workers_per_process =
        static_cast<int>(cli.get_int("workers"));
    const auto sr = sim::simulate(graph, d2p, simopts);
    t.row({name, fmt_double(seconds, 2) + " s",
           fmt_count(partition::edge_cut(m.dual_graph(), domains)),
           fmt_double(partition::max_imbalance(g_oc, domains, ndomains), 2),
           fmt_double(partition::max_imbalance(g_tl, domains, ndomains), 2),
           fmt_double(sr.makespan, 0), fmt_percent(sr.occupancy())});
  };

  {
    ScopedTimer timer("bench.partition.seconds");
    const auto part = partition::sfc_partition_operating_cost(m, ndomains);
    add_row("SFC (Hilbert, OC weights)", part, timer.stop());
  }
  for (const auto strategy :
       {partition::Strategy::sc_oc, partition::Strategy::mc_tl}) {
    partition::StrategyOptions sopts;
    sopts.strategy = strategy;
    sopts.ndomains = ndomains;
    sopts.partitioner.seed = seed;
    ScopedTimer timer("bench.partition.seconds");
    const auto dd = partition::decompose(m, sopts);
    add_row(std::string("multilevel ") + partition::to_string(strategy),
            dd.domain_of_cell, timer.stop());
  }
  t.print(std::cout);
  std::cout << "Shape check: SFC is fastest with a fine cost balance but "
               "its level imbalance — and therefore makespan — lands in "
               "SC_OC territory; only MC_TL fixes the schedule.\n";
  bench::dump_bench_metrics("ablation_sfc_baseline");
  return 0;
}
