// Reproduces Fig 9: FLUSIM executions of CYLINDER and CUBE with 128
// domains on 16 processes x 32 cores — SC_OC (top) vs MC_TL (bottom)
// traces showing the ~2x acceleration.
#include "bench_common.hpp"
#include "sim/trace_json.hpp"
#include "support/gantt.hpp"

using namespace tamp;

int main(int argc, char** argv) {
  CliParser cli("fig9_speedup_traces — SC_OC vs MC_TL traces (paper Fig 9)");
  bench::add_common_options(cli);
  cli.option("domains", "128", "number of domains");
  cli.option("processes", "16", "MPI processes");
  cli.option("workers", "32", "cores per process");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig 9 — 128 domains on 16 processes x 32 cores",
                "acceleration factor ~2 on both CYLINDER and CUBE");

  const std::string dir = bench::artifact_dir(cli);
  TablePrinter t;
  t.header({"mesh", "SC_OC makespan", "MC_TL makespan", "speedup",
            "SC_OC occ.", "MC_TL occ."});

  for (const auto kind :
       {mesh::TestMeshKind::cylinder, mesh::TestMeshKind::cube}) {
    const auto m = bench::make_bench_mesh(
        kind, cli.get_double("scale"),
        static_cast<std::uint64_t>(cli.get_int("seed")));
    core::RunConfig cfg;
    cfg.ndomains = static_cast<part_t>(cli.get_int("domains"));
    cfg.nprocesses = static_cast<part_t>(cli.get_int("processes"));
    cfg.workers_per_process = static_cast<int>(cli.get_int("workers"));
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

    cfg.strategy = partition::Strategy::sc_oc;
    const auto oc = core::run_on_mesh(m, cfg);
    cfg.strategy = partition::Strategy::mc_tl;
    const auto tl = core::run_on_mesh(m, cfg);

    t.row({mesh::paper_stats(kind).name, fmt_double(oc.makespan(), 0),
           fmt_double(tl.makespan(), 0),
           fmt_double(oc.makespan() / tl.makespan(), 2) + "x",
           fmt_percent(oc.occupancy()), fmt_percent(tl.occupancy())});

    const std::string base =
        dir + "/fig9_" + std::string(mesh::to_string(kind));
    write_gantt_comparison_svg(
        oc.sim.gantt(oc.graph, false, std::string(mesh::paper_stats(kind).name) + " SC_OC"),
        tl.sim.gantt(tl.graph, false, std::string(mesh::paper_stats(kind).name) + " MC_TL"),
        base + ".svg");
    // Full per-worker schedules for chrome://tracing / Perfetto.
    sim::save_chrome_trace(sim::to_chrome_trace(oc.graph, oc.sim),
                           base + "_scoc.trace.json");
    sim::save_chrome_trace(sim::to_chrome_trace(tl.graph, tl.sim),
                           base + "_mctl.trace.json");
  }
  t.print(std::cout);
  std::cout << "Shape check: speedup well above 1 on both meshes (paper: "
               "~2x); MC_TL occupancy far higher.\nTraces in " << dir
            << "/fig9_*.svg\n";
  bench::dump_bench_metrics("fig9_speedup_traces");
  return 0;
}
