// Reproduces Fig 5: validates the FLUSIM-style simulator against a real
// task-runtime execution of the same task graph.
//
// The paper runs FLUSEPA (StarPU + MPI) and FLUSIM with identical
// parameters (PPRIME_NOZZLE, 12 domains, 6 processes x 4 cores, SC_OC)
// and observes the same scheduling patterns with ~20 % difference in
// iteration time. Here the "real" execution is the threaded runtime
// running calibrated synthetic kernels; the simulator predicts its
// makespan from the cost model. We report prediction error and emit both
// Gantt traces.
#include "bench_common.hpp"
#include "runtime/runtime.hpp"
#include "sim/measured.hpp"
#include "sim/trace_json.hpp"
#include "support/gantt.hpp"

using namespace tamp;

int main(int argc, char** argv) {
  CliParser cli("fig5_sim_vs_runtime — simulator accuracy (paper Fig 5)");
  bench::add_common_options(cli);
  cli.option("domains", "12", "number of domains");
  cli.option("processes", "6", "emulated MPI processes");
  cli.option("workers", "4", "workers per process");
  cli.option("spin-us", "20",
             "wall microseconds per cost unit in the runtime execution");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig 5 — FLUSIM vs real runtime execution",
                "identical parametrisation: PPRIME_NOZZLE, 12 domains, 6 "
                "MPI processes x 4 cores, SC_OC; paper sees ~20% gap, same "
                "patterns");

  const auto m = bench::make_bench_mesh(
      mesh::TestMeshKind::nozzle, cli.get_double("scale"),
      static_cast<std::uint64_t>(cli.get_int("seed")));
  const auto ndomains = static_cast<part_t>(cli.get_int("domains"));
  const auto nproc = static_cast<part_t>(cli.get_int("processes"));
  const int workers = static_cast<int>(cli.get_int("workers"));

  core::RunConfig cfg;
  cfg.strategy = partition::Strategy::sc_oc;
  cfg.ndomains = ndomains;
  cfg.nprocesses = nproc;
  cfg.workers_per_process = workers;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const core::RunOutcome out = core::run_on_mesh(m, cfg);

  // Real execution: calibrated busy-spin bodies through the runtime,
  // flight recorder armed so the measured run carries its own telemetry.
  const double spin = cli.get_double("spin-us") * 1e-6;
  runtime::RuntimeConfig rcfg;
  rcfg.num_processes = nproc;
  rcfg.workers_per_process = workers;
  rcfg.flight.enabled = true;
  const runtime::ExecutionReport report = runtime::execute(
      out.graph, out.domain_to_process, rcfg,
      runtime::make_synthetic_body(out.graph, spin));
  runtime::publish_execution_metrics(out.graph, report);

  const double predicted_seconds = out.sim.makespan * spin;
  const double gap =
      (report.wall_seconds - predicted_seconds) / report.wall_seconds;

  TablePrinter t;
  t.header({"execution", "makespan", "occupancy"});
  t.row({"FLUSIM prediction", fmt_double(predicted_seconds, 3) + " s",
         fmt_percent(out.sim.occupancy())});
  t.row({"runtime (threads)", fmt_double(report.wall_seconds, 3) + " s",
         fmt_percent(report.occupancy())});
  t.print(std::cout);
  std::cout << "Prediction gap: " << fmt_percent(std::abs(gap))
            << " (paper reports ~20% between FLUSEPA and FLUSIM; on a "
               "single-core box thread timeslicing inflates the measured "
               "run, so treat the gap qualitatively)\n";

  // Quantified Fig 5: the same comparison as divergence.* gauges, gated
  // by tamp-report in CI so simulator drift fails loudly.
  const sim::DivergenceReport div =
      sim::compare_sim_to_measured(out.graph, out.sim, report, spin);
  sim::print_divergence_report(std::cout, div);
  sim::publish_divergence_metrics(div);

  const std::string dir = bench::artifact_dir(cli);
  write_gantt_comparison_svg(
      report.gantt(out.graph, "runtime execution (threads)"),
      out.sim.gantt(out.graph, true, "FLUSIM prediction"),
      dir + "/fig5_traces.svg");
  sim::save_chrome_trace(sim::to_chrome_trace(out.graph, report),
                         dir + "/fig5_runtime.trace.json");
  std::cout << "Traces written to " << dir << "/fig5_traces.svg and "
            << dir << "/fig5_runtime.trace.json\n";
  bench::dump_bench_metrics("fig5_sim_vs_runtime");
  return 0;
}
