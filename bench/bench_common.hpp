// Shared helpers for the experiment binaries in bench/.
//
// Every binary reproduces one table or figure of the paper. Default mesh
// scales are reduced from the paper's (laptop-class single-core box);
// pass --scale 1.0 to generate the full-size meshes. The *shape* of each
// result — who wins, by what factor, where crossovers fall — is the
// reproduction target, not absolute numbers.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/pipeline.hpp"
#include "mesh/generators.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace tamp::bench {

/// Default bench-scale cell counts: ~1/32 of the paper's CYLINDER and
/// ~1/64 of PPRIME_NOZZLE; CUBE is small enough to run at full size.
inline index_t default_cells(mesh::TestMeshKind kind) {
  switch (kind) {
    case mesh::TestMeshKind::cylinder: return 200'000;
    case mesh::TestMeshKind::cube: return 151'817;
    case mesh::TestMeshKind::nozzle: return 200'000;
  }
  return 100'000;
}

/// Build a paper mesh at `scale` × the paper's full cell count, floored
/// at the bench default when scale ≤ 0 (the default).
inline mesh::Mesh make_bench_mesh(mesh::TestMeshKind kind, double scale,
                                  std::uint64_t seed = 42) {
  mesh::TestMeshSpec spec;
  spec.seed = seed;
  if (scale > 0) {
    spec.target_cells = static_cast<index_t>(
        static_cast<double>(mesh::paper_stats(kind).total_cells) * scale);
    spec.target_cells = std::max<index_t>(spec.target_cells, 2000);
  } else {
    spec.target_cells = default_cells(kind);
  }
  return mesh::make_test_mesh(kind, spec);
}

/// Register the options every bench shares.
inline void add_common_options(CliParser& cli) {
  cli.option("scale", "0",
             "mesh size as a fraction of the paper's full cell count; 0 = "
             "bench default (~200k cells)");
  cli.option("seed", "42", "deterministic seed for meshes and partitioner");
  cli.option("artifacts", "bench_artifacts",
             "directory for SVG traces and CSV series");
}

/// Ensure the artifact directory exists and return it.
inline std::string artifact_dir(const CliParser& cli) {
  const std::string dir = cli.get("artifacts");
  std::filesystem::create_directories(dir);
  return dir;
}

/// Dump a tamp-metrics-v1 snapshot of everything the run recorded when
/// the TAMP_BENCH_METRICS_DIR environment variable names a directory.
/// Called at the end of every bench main so CI can archive the metrics
/// and `tamp-report` can diff them across commits; a no-op otherwise.
inline void dump_bench_metrics(const std::string& bench_name) {
  const char* dir = std::getenv("TAMP_BENCH_METRICS_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::filesystem::create_directories(dir);
  const std::string path =
      (std::filesystem::path(dir) / (bench_name + ".json")).string();
  obs::save_text(obs::metrics_to_json(obs::Registry::instance().snapshot()),
                 path);
  std::cout << "metrics snapshot: " << path << '\n';
}

/// Banner printed by every bench: ties the binary to the paper artefact.
inline void banner(const std::string& what, const std::string& paper_claim) {
  std::cout << "==============================================================="
               "=\n"
            << what << '\n'
            << "Paper reference: " << paper_claim << '\n'
            << "==============================================================="
               "=\n";
}

}  // namespace tamp::bench
