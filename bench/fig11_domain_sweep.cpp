// Reproduces Fig 11: behaviour of both strategies as the number of
// domains grows, on CYLINDER and CUBE with 16 processes x 32 cores.
//   (a) performance ratio  makespan(SC_OC) / makespan(MC_TL)
//   (b) estimated interprocess communication (task-graph edges whose
//       endpoints run on different processes)
//
// Expected shapes: MC_TL wins at every domain count; the ratio shrinks
// as domains get smaller (finer granularity lets SC_OC pipeline across
// subiterations); MC_TL's communication is consistently higher.
#include "bench_common.hpp"

using namespace tamp;

int main(int argc, char** argv) {
  CliParser cli("fig11_domain_sweep — ratio and comm vs #domains (Fig 11)");
  bench::add_common_options(cli);
  cli.option("processes", "16", "MPI processes");
  cli.option("workers", "32", "cores per process");
  cli.option("domain-counts", "32,64,128,256,512",
             "comma-separated list of domain counts");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig 11 — strategy comparison vs number of domains",
                "(a) MC_TL/SC_OC performance ratio decays toward 1 with "
                "domain count; (b) MC_TL communicates more");

  std::vector<part_t> counts;
  {
    std::string list = cli.get("domain-counts");
    std::size_t pos = 0;
    while (pos < list.size()) {
      const std::size_t comma = list.find(',', pos);
      counts.push_back(static_cast<part_t>(
          std::stoi(list.substr(pos, comma - pos))));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  const std::string dir = bench::artifact_dir(cli);
  TablePrinter csv;
  csv.header({"mesh", "domains", "scoc_makespan", "mctl_makespan", "ratio",
              "scoc_comm", "mctl_comm"});

  for (const auto kind :
       {mesh::TestMeshKind::cylinder, mesh::TestMeshKind::cube}) {
    const auto m = bench::make_bench_mesh(
        kind, cli.get_double("scale"),
        static_cast<std::uint64_t>(cli.get_int("seed")));
    TablePrinter t(std::string(mesh::paper_stats(kind).name));
    t.header({"domains", "SC_OC", "MC_TL", "ratio (11a)", "SC_OC comm",
              "MC_TL comm (11b)"});
    for (const part_t nd : counts) {
      core::RunConfig cfg;
      cfg.ndomains = nd;
      cfg.nprocesses = static_cast<part_t>(cli.get_int("processes"));
      cfg.workers_per_process = static_cast<int>(cli.get_int("workers"));
      cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      if (nd < cfg.nprocesses) continue;

      cfg.strategy = partition::Strategy::sc_oc;
      const auto oc = core::run_on_mesh(m, cfg);
      cfg.strategy = partition::Strategy::mc_tl;
      const auto tl = core::run_on_mesh(m, cfg);

      const double ratio = oc.makespan() / tl.makespan();
      t.row({std::to_string(nd), fmt_double(oc.makespan(), 0),
             fmt_double(tl.makespan(), 0), fmt_double(ratio, 2),
             fmt_count(oc.comm_volume()), fmt_count(tl.comm_volume())});
      csv.row({mesh::to_string(kind), std::to_string(nd),
               fmt_double(oc.makespan(), 1), fmt_double(tl.makespan(), 1),
               fmt_double(ratio, 3), fmt_count(oc.comm_volume()),
               fmt_count(tl.comm_volume())});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  csv.write_csv(dir + "/fig11_sweep.csv");
  std::cout << "Series written to " << dir << "/fig11_sweep.csv\n"
            << "Shape check: ratio > 1 everywhere, decreasing with domain "
               "count; MC_TL comm column dominates SC_OC's.\n";
  bench::dump_bench_metrics("fig11_domain_sweep");
  return 0;
}
