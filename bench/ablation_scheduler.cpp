// Scheduler ablation backing §III-C: no scheduling policy rescues the
// SC_OC task graph — the makespan spread across policies is small
// compared to the SC_OC → MC_TL gap.
#include "bench_common.hpp"

using namespace tamp;

int main(int argc, char** argv) {
  CliParser cli("ablation_scheduler — policies cannot fix the graph (§III-C)");
  bench::add_common_options(cli);
  cli.option("domains", "64", "number of domains");
  cli.option("processes", "16", "MPI processes");
  cli.option("workers", "8", "cores per process");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("§III-C — scheduling policy ablation on CYLINDER",
                "policy choice moves makespan by a few percent; the "
                "partitioning strategy moves it by ~2x");

  const auto m = bench::make_bench_mesh(
      mesh::TestMeshKind::cylinder, cli.get_double("scale"),
      static_cast<std::uint64_t>(cli.get_int("seed")));

  TablePrinter t;
  t.header({"strategy", "policy", "makespan", "occupancy"});
  double best_oc = 0, best_tl = 0;
  for (const auto strategy :
       {partition::Strategy::sc_oc, partition::Strategy::mc_tl}) {
    for (const auto policy :
         {sim::Policy::eager_fifo, sim::Policy::eager_lifo,
          sim::Policy::critical_path, sim::Policy::random_order}) {
      core::RunConfig cfg;
      cfg.strategy = strategy;
      cfg.policy = policy;
      cfg.ndomains = static_cast<part_t>(cli.get_int("domains"));
      cfg.nprocesses = static_cast<part_t>(cli.get_int("processes"));
      cfg.workers_per_process = static_cast<int>(cli.get_int("workers"));
      cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      const auto out = core::run_on_mesh(m, cfg);
      t.row({partition::to_string(strategy), sim::to_string(policy),
             fmt_double(out.makespan(), 0), fmt_percent(out.occupancy())});
      double& best =
          strategy == partition::Strategy::sc_oc ? best_oc : best_tl;
      if (best == 0 || out.makespan() < best) best = out.makespan();
    }
  }
  t.print(std::cout);
  std::cout << "Best SC_OC (any policy): " << fmt_double(best_oc, 0)
            << "  vs best MC_TL: " << fmt_double(best_tl, 0) << "  — ratio "
            << fmt_double(best_oc / best_tl, 2)
            << "x.\nShape check: even the smartest policy on SC_OC loses "
               "to plain FIFO on MC_TL.\n";
  bench::dump_bench_metrics("ablation_scheduler");
  return 0;
}
