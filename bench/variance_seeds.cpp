// Robustness experiment: the MC_TL speedup is a property of the
// partitioning objective, not of one lucky partition. Re-runs the Fig 9
// configuration over several partitioner seeds and reports
// mean ± standard deviation of the speedup — a statistical check the
// paper (single production runs) could not afford.
#include "bench_common.hpp"
#include "support/stats.hpp"

using namespace tamp;

int main(int argc, char** argv) {
  CliParser cli("variance_seeds — speedup stability across partitioner seeds");
  bench::add_common_options(cli);
  cli.option("domains", "64", "number of domains");
  cli.option("processes", "16", "MPI processes");
  cli.option("workers", "8", "cores per process");
  cli.option("trials", "5", "independent partitioner seeds");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("multi-seed robustness of the MC_TL speedup",
                "the Fig 9 result repeated over independent partitioner "
                "seeds: the speedup distribution should be tight and "
                "bounded away from 1");

  const int trials = static_cast<int>(cli.get_int("trials"));
  TablePrinter t;
  t.header({"mesh", "speedup mean", "stddev", "min", "max",
            "MC_TL occupancy mean"});
  for (const auto kind :
       {mesh::TestMeshKind::cylinder, mesh::TestMeshKind::cube}) {
    const auto m = bench::make_bench_mesh(
        kind, cli.get_double("scale"),
        static_cast<std::uint64_t>(cli.get_int("seed")));
    std::vector<double> speedups, occupancies;
    for (int trial = 0; trial < trials; ++trial) {
      core::RunConfig cfg;
      cfg.ndomains = static_cast<part_t>(cli.get_int("domains"));
      cfg.nprocesses = static_cast<part_t>(cli.get_int("processes"));
      cfg.workers_per_process = static_cast<int>(cli.get_int("workers"));
      cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed")) +
                 1000003ULL * static_cast<std::uint64_t>(trial);
      cfg.strategy = partition::Strategy::sc_oc;
      const auto oc = core::run_on_mesh(m, cfg);
      cfg.strategy = partition::Strategy::mc_tl;
      const auto tl = core::run_on_mesh(m, cfg);
      speedups.push_back(oc.makespan() / tl.makespan());
      occupancies.push_back(tl.occupancy());
    }
    const SampleStats sp = summarize_sample(speedups);
    const SampleStats oc = summarize_sample(occupancies);
    t.row({mesh::paper_stats(kind).name, fmt_double(sp.mean, 2) + "x",
           fmt_double(sp.stddev, 3), fmt_double(sp.min, 2),
           fmt_double(sp.max, 2), fmt_percent(oc.mean)});
  }
  t.print(std::cout);
  std::cout << "Shape check: min speedup stays well above 1; the spread is "
               "a few percent of the mean.\n";
  bench::dump_bench_metrics("variance_seeds");
  return 0;
}
