// Reproduces Table I: the per-temporal-level census (#Cells, %Cells,
// %Computation) of the CYLINDER, CUBE and PPRIME_NOZZLE meshes, printed
// side by side with the paper's numbers.
#include "bench_common.hpp"
#include "mesh/levels.hpp"

using namespace tamp;

int main(int argc, char** argv) {
  CliParser cli("table1_meshes — reproduce paper Table I (test meshes)");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const double scale = cli.get_double("scale");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  bench::banner("Table I — test mesh census",
                "three Airbus meshes; %Computation follows #cells x "
                "2^(tmax-t) from the operating-cost model");

  for (const auto kind :
       {mesh::TestMeshKind::cylinder, mesh::TestMeshKind::cube,
        mesh::TestMeshKind::nozzle}) {
    const mesh::Mesh m = bench::make_bench_mesh(kind, scale, seed);
    const mesh::LevelCensus census = mesh::level_census(m);
    const auto& paper = mesh::paper_stats(kind);

    TablePrinter t(std::string(paper.name) + "  (generated " +
                   fmt_count(m.num_cells()) + " cells; paper " +
                   fmt_count(paper.total_cells) + ")");
    std::vector<std::string> head{"row"};
    for (level_t l = 0; l < census.num_levels(); ++l)
      head.push_back("t=" + std::to_string(l));
    t.header(head);

    std::vector<std::string> cells{"#Cells"}, pcells{"%Cells"},
        pcomp{"%Computation"}, paper_pcells{"%Cells (paper)"};
    for (level_t l = 0; l < census.num_levels(); ++l) {
      cells.push_back(
          fmt_count(census.cells_per_level[static_cast<std::size_t>(l)]));
      pcells.push_back(fmt_percent(census.cell_fraction(l)));
      pcomp.push_back(fmt_percent(census.computation_fraction(l)));
      paper_pcells.push_back(
          fmt_percent(paper.level_fractions[static_cast<std::size_t>(l)]));
    }
    t.row(cells).row(pcells).row(pcomp).separator().row(paper_pcells);
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Shape check: %Computation rows must match the paper's "
               "(4.4/11.3/43.2/41.2, 9.7/38.6/0.4/51.3, 28.4/38.3/33.3) —\n"
               "they follow analytically from the %Cells rows, which the "
               "generators match by construction.\n";
  bench::dump_bench_metrics("table1_meshes");
  return 0;
}
