// Reproduces Fig 7 (SC_OC) and Fig 10 (MC_TL): per-process operating
// costs broken down by temporal level (panel a) and per-subiteration
// cumulative computation per process (panel b), CYLINDER, 16 domains.
//
// The paper's observation: SC_OC balances the *total* bar heights while
// their level composition diverges wildly (processes 10-15 almost pure
// τ=3), so each process works in only a few subiterations. MC_TL makes
// every bar's composition identical, and every subiteration balanced.
#include "bench_common.hpp"
#include "taskgraph/generate.hpp"

using namespace tamp;

namespace {

void census_for(const mesh::Mesh& m, partition::Strategy strategy,
                part_t nproc, std::uint64_t seed, const std::string& fig,
                const std::string& dir) {
  core::RunConfig cfg;
  cfg.strategy = strategy;
  cfg.ndomains = nproc;  // paper: one domain per process in this figure
  cfg.nprocesses = nproc;
  cfg.workers_per_process = 32;
  cfg.seed = seed;
  const core::RunOutcome out = core::run_on_mesh(m, cfg);
  const auto& dd = out.decomposition;

  TablePrinter ta(fig + "a — operating cost by temporal level per process (" +
                  std::string(partition::to_string(strategy)) + ")");
  std::vector<std::string> head{"process"};
  for (level_t l = 0; l < dd.num_levels; ++l)
    head.push_back("t=" + std::to_string(l));
  head.push_back("total");
  ta.header(head);
  for (part_t p = 0; p < nproc; ++p) {
    std::vector<std::string> row{std::to_string(p)};
    for (level_t l = 0; l < dd.num_levels; ++l)
      row.push_back(fmt_count(dd.cost_in(p, l)));
    row.push_back(fmt_count(dd.total_cost(p)));
    ta.row(row);
  }
  ta.print(std::cout);
  std::cout << "cost imbalance: " << fmt_double(dd.cost_imbalance(), 3)
            << "   level imbalance: " << fmt_double(dd.level_imbalance(), 3)
            << "\n\n";

  const auto work = taskgraph::work_per_process_subiteration(
      out.graph, out.domain_to_process, nproc);
  const auto nsub = static_cast<index_t>(work.size() / static_cast<std::size_t>(nproc));
  TablePrinter tb(fig + "b — computation per subiteration per process (" +
                  std::string(partition::to_string(strategy)) + ")");
  std::vector<std::string> headb{"process"};
  for (index_t s = 0; s < nsub; ++s) headb.push_back("s" + std::to_string(s));
  tb.header(headb);
  index_t silent_cells = 0;
  for (part_t p = 0; p < nproc; ++p) {
    std::vector<std::string> row{std::to_string(p)};
    for (index_t s = 0; s < nsub; ++s) {
      const double w = work[static_cast<std::size_t>(p) * nsub +
                            static_cast<std::size_t>(s)];
      if (w == 0) ++silent_cells;
      row.push_back(fmt_double(w, 0));
    }
    tb.row(row);
  }
  tb.print(std::cout);
  std::cout << "process-subiterations with zero work: " << silent_cells
            << " / " << nproc * nsub << "\n\n";

  TablePrinter csv;
  csv.header({"process", "subiteration", "work"});
  for (part_t p = 0; p < nproc; ++p)
    for (index_t s = 0; s < nsub; ++s)
      csv.row({std::to_string(p), std::to_string(s),
               fmt_double(work[static_cast<std::size_t>(p) * nsub +
                               static_cast<std::size_t>(s)],
                          1)});
  csv.write_csv(dir + "/" + fig + "b_" +
                std::string(partition::to_string(strategy)) + ".csv");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "fig7_fig10_domain_census — domain characteristics under SC_OC "
      "(Fig 7) and MC_TL (Fig 10)");
  bench::add_common_options(cli);
  cli.option("processes", "16", "MPI processes (one domain each)");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig 7 / Fig 10 — CYLINDER domain census, 16 processes",
                "SC_OC: balanced totals, wildly uneven level mix, "
                "subiteration starvation; MC_TL: every level and every "
                "subiteration balanced");

  const auto m = bench::make_bench_mesh(
      mesh::TestMeshKind::cylinder, cli.get_double("scale"),
      static_cast<std::uint64_t>(cli.get_int("seed")));
  const auto nproc = static_cast<part_t>(cli.get_int("processes"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string dir = bench::artifact_dir(cli);

  census_for(m, partition::Strategy::sc_oc, nproc, seed, "fig7", dir);
  census_for(m, partition::Strategy::mc_tl, nproc, seed, "fig10", dir);

  std::cout << "Shape check: SC_OC rows are near-single-level and its 'b' "
               "table is full of zeros; MC_TL rows mix all levels and its "
               "'b' table has none.\n";
  bench::dump_bench_metrics("fig7_fig10_domain_census");
  return 0;
}
