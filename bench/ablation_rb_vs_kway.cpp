// Ablation backing the paper's §V method choice: "instead of the k-way
// approach, we use the so-called recursive bisection method for
// partitioning because it produces higher quality solutions on our
// meshes." Compares both methods on cut, balance and resulting makespan
// for SC_OC and MC_TL across the mesh families.
#include "bench_common.hpp"
#include "support/stopwatch.hpp"

using namespace tamp;

int main(int argc, char** argv) {
  CliParser cli("ablation_rb_vs_kway — the paper's §V partitioning-method "
                "choice");
  bench::add_common_options(cli);
  cli.option("domains", "64", "number of domains");
  cli.option("processes", "16", "MPI processes");
  cli.option("workers", "8", "cores per process");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("§V — recursive bisection vs direct k-way",
                "the paper picks RB for quality on these meshes; k-way "
                "(RB seed + greedy k-way refinement) trades quality for "
                "speed");

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  TablePrinter t;
  t.header({"mesh", "strategy", "method", "cut", "worst imb.", "makespan",
            "partition time"});
  for (const auto kind :
       {mesh::TestMeshKind::cylinder, mesh::TestMeshKind::cube}) {
    const auto m = bench::make_bench_mesh(kind, cli.get_double("scale"), seed);
    for (const auto strategy :
         {partition::Strategy::sc_oc, partition::Strategy::mc_tl}) {
      for (const auto method : {partition::Method::recursive_bisection,
                                partition::Method::kway_direct}) {
        core::RunConfig cfg;
        cfg.strategy = strategy;
        cfg.ndomains = static_cast<part_t>(cli.get_int("domains"));
        cfg.nprocesses = static_cast<part_t>(cli.get_int("processes"));
        cfg.workers_per_process = static_cast<int>(cli.get_int("workers"));
        cfg.seed = seed;

        partition::StrategyOptions sopts;
        sopts.strategy = strategy;
        sopts.ndomains = cfg.ndomains;
        sopts.partitioner.method = method;
        sopts.partitioner.seed = seed;
        ScopedTimer timer("bench.partition.seconds");
        const auto dd = partition::decompose(m, sopts);
        const double part_seconds = timer.stop();

        const auto g =
            partition::build_strategy_graph(m, strategy);
        const double imb =
            partition::max_imbalance(g, dd.domain_of_cell, dd.ndomains);
        const auto graph = taskgraph::generate_task_graph(
            m, dd.domain_of_cell, dd.ndomains);
        sim::SimOptions simopts;
        simopts.cluster.num_processes = cfg.nprocesses;
        simopts.cluster.workers_per_process = cfg.workers_per_process;
        const auto sr = sim::simulate(
            graph,
            partition::map_domains_to_processes(
                cfg.ndomains, cfg.nprocesses, partition::DomainMapping::block),
            simopts);

        t.row({mesh::paper_stats(kind).name, partition::to_string(strategy),
               method == partition::Method::recursive_bisection ? "RB"
                                                                 : "k-way",
               fmt_count(dd.edge_cut), fmt_double(imb, 3),
               fmt_double(sr.makespan, 0),
               fmt_double(part_seconds, 2) + " s"});
      }
    }
    t.separator();
  }
  t.print(std::cout);
  std::cout << "Observation: our k-way (= RB seed + greedy k-way "
               "refinement) shaves a few percent of cut at extra "
               "partitioning time, with balance and makespan essentially "
               "unchanged — consistent with the paper's finding that plain "
               "RB is the better deal on these meshes.\n";
  bench::dump_bench_metrics("ablation_rb_vs_kway");
  return 0;
}
