// Ablation of the §IX fragment-repair post-processing: how many
// disconnected-domain artefacts MC_TL produces on each mesh family, and
// what cleaning them up buys (interfaces, cut, makespan) at what cost
// (level balance).
#include "bench_common.hpp"
#include "graph/components.hpp"
#include "partition/repair.hpp"
#include "taskgraph/generate.hpp"

using namespace tamp;

int main(int argc, char** argv) {
  CliParser cli("ablation_repair — §IX disconnected-domain cleanup");
  bench::add_common_options(cli);
  cli.option("domains", "64", "number of domains");
  cli.option("processes", "16", "MPI processes");
  cli.option("workers", "4", "cores per process");
  cli.option("headroom", "0.15", "repair load headroom per constraint");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("§IX — post-processing repair of MC_TL fragmentation",
                "multi-criteria partitions 'tend to create disconnected "
                "subdomains that increase the number of domain borders'; "
                "repair should remove most artefacts without breaking "
                "level balance");

  const auto ndomains = static_cast<part_t>(cli.get_int("domains"));
  const auto nproc = static_cast<part_t>(cli.get_int("processes"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  TablePrinter t;
  t.header({"mesh", "stage", "extra fragments", "mesh cut", "level imb.",
            "makespan"});
  for (const auto kind :
       {mesh::TestMeshKind::cylinder, mesh::TestMeshKind::cube,
        mesh::TestMeshKind::nozzle}) {
    const auto m = bench::make_bench_mesh(kind, cli.get_double("scale"), seed);
    partition::StrategyOptions sopts;
    sopts.strategy = partition::Strategy::mc_tl;
    sopts.ndomains = ndomains;
    sopts.partitioner.seed = seed;
    partition::DomainDecomposition dd = partition::decompose(m, sopts);
    const auto g = partition::build_strategy_graph(m, partition::Strategy::mc_tl);
    const auto d2p = partition::map_domains_to_processes(
        ndomains, nproc, partition::DomainMapping::block);

    auto evaluate = [&](const std::vector<part_t>& domains) {
      const auto graph = taskgraph::generate_task_graph(m, domains, ndomains);
      sim::SimOptions simopts;
      simopts.cluster.num_processes = nproc;
      simopts.cluster.workers_per_process =
          static_cast<int>(cli.get_int("workers"));
      return sim::simulate(graph, d2p, simopts).makespan;
    };

    const auto frags_before = graph::part_fragment_counts(
        m.dual_graph(), dd.domain_of_cell, ndomains);
    index_t extra_before = 0;
    for (const index_t f : frags_before) extra_before += f - 1;
    const double imb_before =
        partition::max_imbalance(g, dd.domain_of_cell, ndomains);
    const weight_t cut_before =
        partition::edge_cut(m.dual_graph(), dd.domain_of_cell);
    const simtime_t ms_before = evaluate(dd.domain_of_cell);

    partition::RepairOptions ropts;
    ropts.headroom = cli.get_double("headroom");
    const partition::RepairReport rep =
        partition::repair_fragments(g, dd.domain_of_cell, ndomains, ropts);
    const double imb_after =
        partition::max_imbalance(g, dd.domain_of_cell, ndomains);
    const simtime_t ms_after = evaluate(dd.domain_of_cell);

    t.row({mesh::paper_stats(kind).name, "MC_TL raw",
           std::to_string(extra_before), fmt_count(cut_before),
           fmt_double(imb_before, 2), fmt_double(ms_before, 0)});
    t.row({"", "MC_TL + repair", std::to_string(rep.fragments_after),
           fmt_count(rep.cut_after), fmt_double(imb_after, 2),
           fmt_double(ms_after, 0)});
    t.separator();
  }
  t.print(std::cout);
  std::cout << "Shape check: repair removes every fragment that can move "
               "without violating a level allowance (the remainder are "
               "balance-locked — raise --headroom to trade); the cut never "
               "grows, level imbalance stays bounded, and the makespan is "
               "preserved: the artefacts cost interfaces, not balance.\n";
  bench::dump_bench_metrics("ablation_repair");
  return 0;
}
