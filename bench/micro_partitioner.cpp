// Google-benchmark microbenchmarks of the partitioner building blocks:
// coarsening, single bisection, recursive k-way, multi-constraint
// overhead, RB vs direct k-way quality/throughput, and the serial-vs-
// parallel thread sweep (run before the benchmarks; skip with
// --no-sweep, size with --sweep-cells=N).
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/builder.hpp"
#include "mesh/generators.hpp"
#include "partition/coarsen.hpp"
#include "partition/partition.hpp"
#include "partition/strategy.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

using namespace tamp;

graph::Csr grid(index_t side) { return graph::make_grid_graph(side, side); }

void BM_HeavyEdgeMatching(benchmark::State& state) {
  const auto g = grid(static_cast<index_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    auto match = partition::heavy_edge_matching(g, rng);
    benchmark::DoNotOptimize(match.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_HeavyEdgeMatching)->Arg(128)->Arg(256)->Arg(512);

void BM_CoarsenOnce(benchmark::State& state) {
  const auto g = grid(static_cast<index_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    auto level = partition::coarsen_once(g, rng);
    benchmark::DoNotOptimize(level.graph.num_vertices());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_CoarsenOnce)->Arg(128)->Arg(256)->Arg(512);

void BM_Bisection(benchmark::State& state) {
  const auto g = grid(static_cast<index_t>(state.range(0)));
  partition::Options opts;
  opts.nparts = 2;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opts.seed = ++seed;
    auto r = partition::partition_graph(g, opts);
    benchmark::DoNotOptimize(r.edge_cut);
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_Bisection)->Arg(128)->Arg(256)->Arg(512);

void BM_KwayRB(benchmark::State& state) {
  const auto g = grid(256);
  partition::Options opts;
  opts.nparts = static_cast<part_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opts.seed = ++seed;
    auto r = partition::partition_graph(g, opts);
    benchmark::DoNotOptimize(r.edge_cut);
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_KwayRB)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_KwayDirect(benchmark::State& state) {
  const auto g = grid(256);
  partition::Options opts;
  opts.nparts = static_cast<part_t>(state.range(0));
  opts.method = partition::Method::kway_direct;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opts.seed = ++seed;
    auto r = partition::partition_graph(g, opts);
    benchmark::DoNotOptimize(r.edge_cut);
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_KwayDirect)->Arg(4)->Arg(16)->Arg(64);

void BM_StrategyDecompose(benchmark::State& state) {
  mesh::TestMeshSpec spec;
  spec.target_cells = 50'000;
  const auto m = mesh::make_cylinder_mesh(spec);
  partition::StrategyOptions opts;
  opts.strategy = state.range(0) == 0 ? partition::Strategy::sc_oc
                                      : partition::Strategy::mc_tl;
  opts.ndomains = 64;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opts.partitioner.seed = ++seed;
    auto dd = partition::decompose(m, opts);
    benchmark::DoNotOptimize(dd.edge_cut);
  }
  state.SetLabel(state.range(0) == 0 ? "SC_OC(ncon=1)" : "MC_TL(ncon=4)");
  state.SetItemsProcessed(state.iterations() * m.num_cells());
}
BENCHMARK(BM_StrategyDecompose)->Arg(0)->Arg(1);

void BM_StrategyDecomposeThreaded(benchmark::State& state) {
  mesh::TestMeshSpec spec;
  spec.target_cells = 50'000;
  const auto m = mesh::make_cylinder_mesh(spec);
  partition::StrategyOptions opts;
  opts.strategy = partition::Strategy::mc_tl;
  opts.ndomains = 64;
  opts.partitioner.num_threads = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opts.partitioner.seed = ++seed;
    auto dd = partition::decompose(m, opts);
    benchmark::DoNotOptimize(dd.edge_cut);
  }
  state.SetLabel("MC_TL threads=" + std::to_string(state.range(0)));
  state.SetItemsProcessed(state.iterations() * m.num_cells());
}
BENCHMARK(BM_StrategyDecomposeThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Serial-vs-parallel decomposition sweep: times MC_TL on the cylinder
/// mesh at 1/2/4/8 threads, checks every run is bit-identical to the
/// serial one, prints the speedup table, and records the
/// partition.decompose_seconds* gauges for the tamp-metrics-v1 snapshot.
void run_threads_sweep(index_t cells) {
  mesh::TestMeshSpec spec;
  spec.target_cells = cells;
  const auto m = mesh::make_cylinder_mesh(spec);
  partition::StrategyOptions opts;
  opts.strategy = partition::Strategy::mc_tl;
  opts.ndomains = 64;
  opts.partitioner.seed = 42;

  std::cout << "--- decompose thread sweep: MC_TL, " << m.num_cells()
            << " cells, " << opts.ndomains << " domains ---\n";
  TablePrinter t;
  t.header({"threads", "seconds", "speedup", "identical"});
  std::vector<part_t> serial_cells;
  double serial_seconds = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    opts.partitioner.num_threads = threads;
    Stopwatch sw;
    const auto dd = partition::decompose(m, opts);
    const double secs = sw.seconds();
    bool identical = true;
    if (threads == 1) {
      serial_cells = dd.domain_of_cell;
      serial_seconds = secs;
      obs::gauge("partition.decompose_seconds").set(secs);
    } else {
      identical = dd.domain_of_cell == serial_cells;
    }
    obs::gauge("partition.decompose_seconds.t" + std::to_string(threads))
        .set(secs);
    t.row({std::to_string(threads), fmt_double(secs, 3),
           fmt_double(serial_seconds / secs, 2), identical ? "yes" : "NO"});
    if (!identical) {
      std::cerr << "micro_partitioner: --threads " << threads
                << " decomposition differs from serial\n";
      std::exit(1);
    }
  }
  obs::gauge("partition.threads").set(8);
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own flags before google-benchmark sees the rest.
  bool sweep = true;
  index_t sweep_cells = 50'000;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-sweep") == 0) {
      sweep = false;
    } else if (std::strncmp(argv[i], "--sweep-cells=", 14) == 0) {
      sweep_cells = static_cast<index_t>(std::atoi(argv[i] + 14));
    } else {
      args.push_back(argv[i]);
    }
  }
  int nargs = static_cast<int>(args.size());
  args.push_back(nullptr);

  if (sweep) run_threads_sweep(sweep_cells);

  benchmark::Initialize(&nargs, args.data());
  if (benchmark::ReportUnrecognizedArguments(nargs, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  tamp::bench::dump_bench_metrics("micro_partitioner");
  return 0;
}
