// Google-benchmark microbenchmarks of the partitioner building blocks:
// coarsening, single bisection, recursive k-way, multi-constraint
// overhead, and RB vs direct k-way quality/throughput.
#include <benchmark/benchmark.h>

#include "graph/builder.hpp"
#include "mesh/generators.hpp"
#include "partition/coarsen.hpp"
#include "partition/partition.hpp"
#include "partition/strategy.hpp"

namespace {

using namespace tamp;

graph::Csr grid(index_t side) { return graph::make_grid_graph(side, side); }

void BM_HeavyEdgeMatching(benchmark::State& state) {
  const auto g = grid(static_cast<index_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    auto match = partition::heavy_edge_matching(g, rng);
    benchmark::DoNotOptimize(match.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_HeavyEdgeMatching)->Arg(128)->Arg(256)->Arg(512);

void BM_CoarsenOnce(benchmark::State& state) {
  const auto g = grid(static_cast<index_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    auto level = partition::coarsen_once(g, rng);
    benchmark::DoNotOptimize(level.graph.num_vertices());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_CoarsenOnce)->Arg(128)->Arg(256)->Arg(512);

void BM_Bisection(benchmark::State& state) {
  const auto g = grid(static_cast<index_t>(state.range(0)));
  partition::Options opts;
  opts.nparts = 2;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opts.seed = ++seed;
    auto r = partition::partition_graph(g, opts);
    benchmark::DoNotOptimize(r.edge_cut);
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_Bisection)->Arg(128)->Arg(256)->Arg(512);

void BM_KwayRB(benchmark::State& state) {
  const auto g = grid(256);
  partition::Options opts;
  opts.nparts = static_cast<part_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opts.seed = ++seed;
    auto r = partition::partition_graph(g, opts);
    benchmark::DoNotOptimize(r.edge_cut);
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_KwayRB)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_KwayDirect(benchmark::State& state) {
  const auto g = grid(256);
  partition::Options opts;
  opts.nparts = static_cast<part_t>(state.range(0));
  opts.method = partition::Method::kway_direct;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opts.seed = ++seed;
    auto r = partition::partition_graph(g, opts);
    benchmark::DoNotOptimize(r.edge_cut);
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_KwayDirect)->Arg(4)->Arg(16)->Arg(64);

void BM_StrategyDecompose(benchmark::State& state) {
  mesh::TestMeshSpec spec;
  spec.target_cells = 50'000;
  const auto m = mesh::make_cylinder_mesh(spec);
  partition::StrategyOptions opts;
  opts.strategy = state.range(0) == 0 ? partition::Strategy::sc_oc
                                      : partition::Strategy::mc_tl;
  opts.ndomains = 64;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opts.partitioner.seed = ++seed;
    auto dd = partition::decompose(m, opts);
    benchmark::DoNotOptimize(dd.edge_cut);
  }
  state.SetLabel(state.range(0) == 0 ? "SC_OC(ncon=1)" : "MC_TL(ncon=4)");
  state.SetItemsProcessed(state.iterations() * m.num_cells());
}
BENCHMARK(BM_StrategyDecompose)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
