// Solver kernel microbenchmark: flux and cell-update sweep throughput,
// mesh-order layout (per-object index-list kernels) vs the locality
// layout (class-contiguous renumbering + streaming range kernels, see
// DESIGN.md "Locality renumbering"). Runs the real Euler task bodies —
// the same code run_iteration_tasks() executes — over every face task
// and every cell task of one full temporal-adaptive iteration, on the
// nozzle and cube meshes.
//
// Emits solver.flux_gcells_per_s / solver.update_gcells_per_s /
// solver.layout gauges (headline = nozzle, locality layout, scalar
// kernels) plus per-(mesh × layout) and layout-speedup gauges, a SIMD
// lane sweep on the locality layout (scalar/sse2/avx2 rows with
// solver.simd_speedup.<mesh>[.<level>] gauges, measured against the
// locality-scalar row), and a tamp-metrics-v1 snapshot under
// TAMP_BENCH_METRICS_DIR for tamp-report gating.
#include <algorithm>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mesh/generators.hpp"
#include "obs/metrics.hpp"
#include "partition/reorder.hpp"
#include "partition/strategy.hpp"
#include "solver/euler.hpp"
#include "support/cli.hpp"
#include "support/simd.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "taskgraph/taskgraph.hpp"

namespace {

using namespace tamp;

/// The flusim initial condition: uniform flow plus a density pulse at
/// the mesh centroid, which grades the CFL timestep and so produces a
/// realistic multi-level temporal-class structure.
void init_state(solver::EulerSolver& es, const mesh::Mesh& m) {
  es.initialize_uniform(1.0, {0.2, 0.1, 0.0}, 1.0);
  mesh::Vec3 lo = m.cell_centroid(0), hi = lo, mean{};
  for (index_t c = 0; c < m.num_cells(); ++c) {
    const mesh::Vec3 p = m.cell_centroid(c);
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
    mean = mean + p;
  }
  mean = (1.0 / static_cast<double>(m.num_cells())) * mean;
  es.add_pulse(mean, std::max(0.2 * distance(lo, hi), 1e-3), 0.3);
}

struct SweepTiming {
  double face_objects = 0;  ///< face visits in one iteration's flux tasks
  double cell_objects = 0;  ///< cell visits in one iteration's update tasks
  double flux_seconds = 0;  ///< best-of-reps full flux sweep
  double update_seconds = 0;

  [[nodiscard]] double flux_gobj_s() const {
    return face_objects / flux_seconds * 1e-9;
  }
  [[nodiscard]] double update_gobj_s() const {
    return cell_objects / update_seconds * 1e-9;
  }
  /// Combined flux+update sweep throughput (the acceptance metric).
  [[nodiscard]] double combined_gobj_s() const {
    return (face_objects + cell_objects) / (flux_seconds + update_seconds) *
           1e-9;
  }
};

/// Times the face-task and cell-task sweeps of one iteration separately.
/// Running all flux bodies then all update bodies is not a DAG-consistent
/// order, so the resulting *values* are not one physical iteration — but
/// each body is the exact production kernel over its exact object set,
/// which is what we are timing. State is re-pulsed before every rep so
/// the inputs stay finite and identical across reps and layouts.
SweepTiming time_sweeps(solver::EulerSolver& es, const mesh::Mesh& m,
                        const solver::EulerSolver::IterationTasks& iter,
                        int reps) {
  std::vector<index_t> face_tasks, cell_tasks;
  SweepTiming r;
  for (index_t t = 0; t < iter.graph.num_tasks(); ++t) {
    const taskgraph::Task& task = iter.graph.task(t);
    if (task.type == taskgraph::ObjectType::face) {
      face_tasks.push_back(t);
      r.face_objects += static_cast<double>(task.num_objects);
    } else {
      cell_tasks.push_back(t);
      r.cell_objects += static_cast<double>(task.num_objects);
    }
  }
  double best_flux = std::numeric_limits<double>::max();
  double best_update = best_flux;
  for (int rep = 0; rep < reps; ++rep) {
    init_state(es, m);
    Stopwatch swf;
    for (const index_t t : face_tasks) iter.body(t);
    best_flux = std::min(best_flux, swf.seconds());
    Stopwatch swu;
    for (const index_t t : cell_tasks) iter.body(t);
    best_update = std::min(best_update, swu.seconds());
  }
  r.flux_seconds = best_flux;
  r.update_seconds = best_update;
  return r;
}

void bench_mesh(mesh::TestMeshKind kind, const CliParser& cli,
                TablePrinter& table) {
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  mesh::Mesh m = bench::make_bench_mesh(kind, cli.get_double("scale"), seed);
  const std::string mesh_name = mesh::to_string(kind);

  // Temporal levels come from the real CFL estimate (not the generator's
  // synthetic ones) so the class structure matches a production run; the
  // strategy then partitions with those levels in its constraints.
  {
    solver::EulerSolver tmp(m);
    init_state(tmp, m);
    tmp.assign_temporal_levels();
  }
  partition::StrategyOptions sopts;
  sopts.strategy = partition::parse_strategy(cli.get("strategy"));
  sopts.ndomains = static_cast<part_t>(cli.get_int("domains"));
  sopts.partitioner.seed = seed;
  const auto dd = partition::decompose(m, sopts);

  const int reps = static_cast<int>(cli.get_int("reps"));
  double baseline = 0.0;         // mesh-order, scalar (the PR-5 "before")
  double locality_scalar = 0.0;  // locality layout, scalar kernels
  double best_simd = 1.0;        // best simd_speedup over the lane sweep
  for (const partition::Reorder layout :
       {partition::Reorder::none, partition::Reorder::locality}) {
    const std::string layout_name = partition::to_string(layout);
    const bool permuted = layout == partition::Reorder::locality;
    auto rd = permuted ? partition::reorder_for_locality(m, dd.domain_of_cell,
                                                         dd.ndomains)
                       : partition::ReorderedDecomposition{
                             mesh::permute_mesh(
                                 m, mesh::identity_permutation(m)),
                             mesh::identity_permutation(m), dd.domain_of_cell};
    // Lane sweep rides the locality layout only (SIMD targets the
    // streaming range kernels, which the mesh-order rows barely enter);
    // the mesh-order row stays scalar so `baseline` keeps meaning "the
    // PR-5 per-object path".
    const std::vector<simd::Level> levels =
        permuted ? simd::runnable_levels()
                 : std::vector<simd::Level>{simd::Level::scalar};
    for (const simd::Level level : levels) {
      solver::SolverConfig scfg;
      scfg.simd = level == simd::Level::avx2   ? simd::Request::avx2
                  : level == simd::Level::sse2 ? simd::Request::sse2
                                               : simd::Request::scalar;
      solver::EulerSolver es(rd.mesh, scfg);
      init_state(es, rd.mesh);
      // Per-cell CFL reads only cell-local geometry and state, so this
      // re-derives exactly the levels the partitioner saw, renumbered.
      es.assign_temporal_levels();
      const auto iter =
          es.make_iteration_tasks(rd.domain_of_cell, dd.ndomains);
      const SweepTiming t = time_sweeps(es, rd.mesh, iter, reps);

      const std::string level_name = simd::to_string(level);
      const bool scalar = level == simd::Level::scalar;
      // Scalar rows keep the PR-5 gauge names; SIMD rows append the
      // level so snapshots stay comparable across PRs.
      const std::string suffix =
          "." + mesh_name + "." + layout_name + (scalar ? "" : "." + level_name);
      obs::gauge("solver.flux_gcells_per_s" + suffix).set(t.flux_gobj_s());
      obs::gauge("solver.update_gcells_per_s" + suffix).set(t.update_gobj_s());
      double speedup = 1.0;
      if (!permuted) {
        baseline = t.combined_gobj_s();
      } else {
        speedup = t.combined_gobj_s() / baseline;
        if (scalar) {
          locality_scalar = t.combined_gobj_s();
          obs::gauge("solver.layout_speedup." + mesh_name).set(speedup);
          if (kind == mesh::TestMeshKind::nozzle) {
            // Headline gauges: locality layout, scalar kernels, nozzle.
            obs::gauge("solver.flux_gcells_per_s").set(t.flux_gobj_s());
            obs::gauge("solver.update_gcells_per_s").set(t.update_gobj_s());
            obs::gauge("solver.layout").set(1);  // 0 = none, 1 = locality
          }
        }
        // SIMD speedup is measured against the locality-scalar row (the
        // layout win is already booked in layout_speedup).
        const double simd_speedup = t.combined_gobj_s() / locality_scalar;
        obs::gauge("solver.simd_speedup." + mesh_name + "." + level_name)
            .set(simd_speedup);
        best_simd = std::max(best_simd, simd_speedup);
      }
      table.row({mesh_name, layout_name, level_name,
                 std::to_string(rd.mesh.num_cells()),
                 fmt_double(t.flux_gobj_s(), 3),
                 fmt_double(t.update_gobj_s(), 3),
                 fmt_double(t.combined_gobj_s(), 3),
                 permuted ? fmt_double(speedup, 2) : std::string("1.00")});
    }
  }
  // Best lane over the sweep — the acceptance gauge the CI perf smoke
  // gates (≥ 1.5× vs the locality-scalar kernels on at least one mesh).
  obs::gauge("solver.simd_speedup." + mesh_name).set(best_simd);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tamp;
  CliParser cli("micro_solver — flux/update sweep throughput by data layout");
  bench::add_common_options(cli);
  cli.option("domains", "16", "domains for the on-the-fly decomposition");
  cli.option("strategy", "mc_tl", "partitioning strategy");
  cli.option("reps", "8", "timed repetitions; best rep is reported");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("micro_solver: Euler kernel sweeps, mesh-order vs locality "
                "layout x SIMD lanes (1 thread)",
                "§V task bodies; arXiv:1704.01144 locality sensitivity");
  try {
    TablePrinter t(
        "sweep throughput (Gobjects/s, best of reps; speedup vs mesh-order)");
    t.header({"mesh", "layout", "simd", "cells", "flux", "update", "combined",
              "speedup"});
    bench_mesh(mesh::TestMeshKind::nozzle, cli, t);
    bench_mesh(mesh::TestMeshKind::cube, cli, t);
    t.print(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "micro_solver: " << e.what() << '\n';
    return 1;
  }
  bench::dump_bench_metrics("micro_solver");
  return 0;
}
