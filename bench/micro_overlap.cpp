// Asynchronous-pipeline scaling matrix: the real Euler solver advanced
// over an evolving mesh by core::run_iteration_pipeline, sync vs overlap
// mode at 1/2/4/8 workers. Overlap hides each iteration's prep stage
// (temporal-level evolve → incremental repartition → task-graph build)
// under the previous iteration's solve; the matrix reports the wall-clock
// speedup, overlap efficiency, and hidden prep seconds per thread count —
// and asserts in-process that every configuration produced *bitwise
// identical* solver state (the pipeline's correctness bar; see
// tests/test_pipeline_async.cpp for the adversarial version).
//
// Emits pipeline.overlap_speedup.t<W> / overlap_efficiency.t<W> /
// prep_hidden_seconds.t<W> gauges plus the pipeline.bitwise_equal
// verdict, and a tamp-metrics-v1 snapshot under TAMP_BENCH_METRICS_DIR
// for tamp-report gating (headline: t4).
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "solver/euler.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace tamp;

struct ModeRun {
  std::vector<std::uint64_t> state_hash;  ///< one per iteration
  core::PipelineRunReport report;
  double wall_seconds = 0;
};

std::uint64_t hash_state(const solver::EulerSolver& es, const mesh::Mesh& m) {
  std::uint64_t h = 1469598103934665603ULL;
  for (index_t c = 0; c < m.num_cells(); ++c) {
    const solver::State s = es.cell_state(c);
    for (const double v : s) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof bits);
      h ^= bits;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

ModeRun run_mode(index_t cells, std::uint64_t seed, core::PipelineMode mode,
                 int workers, int iterations, double drift) {
  mesh::TestMeshSpec spec;
  spec.target_cells = cells;
  spec.seed = seed;
  mesh::Mesh m = mesh::make_test_mesh(mesh::TestMeshKind::cylinder, spec);
  solver::EulerSolver es(m);
  es.initialize_uniform(1.0, {0.2, 0.1, 0.0}, 1.0);
  mesh::Vec3 lo = m.cell_centroid(0), hi = lo, mean{};
  for (index_t c = 0; c < m.num_cells(); ++c) {
    const mesh::Vec3 p = m.cell_centroid(c);
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
    mean = mean + p;
  }
  mean = (1.0 / static_cast<double>(m.num_cells())) * mean;
  es.add_pulse(mean, std::max(0.2 * distance(lo, hi), 1e-3), 0.3);
  es.assign_temporal_levels();

  core::IterationPipelineConfig cfg;
  cfg.mode = mode;
  cfg.num_iterations = iterations;
  cfg.drift = drift;
  cfg.ndomains = 16;
  cfg.nprocesses = 1;
  cfg.workers_per_process = workers;
  // The prep stage is one serial background task: a 2-slot pool (driver +
  // one worker) hosts it at any solver width without oversubscribing.
  cfg.threads = 2;
  cfg.seed = seed;

  ModeRun run;
  core::SolverHooks hooks = core::euler_pipeline_hooks(es);
  hooks.observer = [&run, &es, &m](const core::IterationSnapshot&,
                                   const runtime::ExecutionReport&) {
    run.state_hash.push_back(hash_state(es, m));
  };
  const Stopwatch watch;
  run.report = core::run_iteration_pipeline(m, cfg, hooks);
  run.wall_seconds = watch.seconds();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "micro_overlap — async iteration pipeline, sync vs overlap scaling");
  bench::add_common_options(cli);
  cli.option("cells", "60000", "mesh cells");
  cli.option("iterations", "6", "pipeline iterations per configuration");
  cli.option("drift", "0.05", "per-iteration temporal-level drift");
  cli.option("reps", "3", "repetitions per configuration; best wall is kept");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner(
      "micro_overlap: solve(i) overlapped with prep(i+1) on the "
      "work-stealing pool, threads x {sync, overlap}",
      "§VIII production integration: repartitioning off the critical path");
  try {
    const auto cells = static_cast<index_t>(cli.get_int("cells"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const int iterations =
        std::max(2, static_cast<int>(cli.get_int("iterations")));
    const double drift = cli.get_double("drift");
    const int reps = std::max(1, static_cast<int>(cli.get_int("reps")));
    // Best-of-reps damps scheduler noise, and the sync/overlap legs are
    // interleaved per rep so a background-load spike cannot penalize one
    // mode's whole block (the verdicts are re-checked on every rep; wall
    // clock and overlap accounting come from the best rep of each mode).
    const auto best_pair = [&](int workers) {
      std::pair<ModeRun, ModeRun> best;
      for (int r = 0; r < reps; ++r) {
        ModeRun s =
            run_mode(cells, seed, core::PipelineMode::sync, workers,
                     iterations, drift);
        ModeRun o =
            run_mode(cells, seed, core::PipelineMode::overlap, workers,
                     iterations, drift);
        if (r == 0 || s.wall_seconds < best.first.wall_seconds)
          best.first = std::move(s);
        if (r == 0 || o.wall_seconds < best.second.wall_seconds)
          best.second = std::move(o);
      }
      return best;
    };

    TablePrinter t("pipeline wall clock by mode (same physics, bitwise)");
    t.header({"workers", "sync ms", "overlap ms", "speedup", "hidden ms",
              "efficiency"});
    bool all_bitwise_equal = true;
    std::vector<std::uint64_t> reference;
    for (const int workers : {1, 2, 4, 8}) {
      auto [sync, over] = best_pair(workers);
      if (reference.empty()) reference = sync.state_hash;
      all_bitwise_equal = all_bitwise_equal &&
                          sync.state_hash == reference &&
                          over.state_hash == reference;

      const double speedup = over.wall_seconds > 0
                                 ? sync.wall_seconds / over.wall_seconds
                                 : 0.0;
      const sim::StageOverlapReport& ov = over.report.overlap;
      t.row({std::to_string(workers), fmt_double(sync.wall_seconds * 1e3, 1),
             fmt_double(over.wall_seconds * 1e3, 1), fmt_double(speedup, 3),
             fmt_double(ov.hidden_seconds * 1e3, 1),
             fmt_percent(ov.overlap_efficiency())});
      // obs::gauge directly (not the TAMP_METRIC_* macros): the CI perf
      // jobs build Release without TAMP_ENABLE_TRACING, and these gauges
      // ARE the product here, not optional instrumentation.
      const std::string suffix = ".t" + std::to_string(workers);
      obs::gauge("pipeline.overlap_speedup" + suffix).set(speedup);
      obs::gauge("pipeline.overlap_efficiency" + suffix)
          .set(ov.overlap_efficiency());
      obs::gauge("pipeline.prep_hidden_seconds" + suffix)
          .set(ov.hidden_seconds);
    }
    t.print(std::cout);
    obs::gauge("pipeline.bitwise_equal").set(all_bitwise_equal ? 1.0 : 0.0);
    std::cout << "bitwise identical across modes and thread counts: "
              << (all_bitwise_equal ? "yes" : "NO") << '\n';
    if (!all_bitwise_equal) {
      std::cerr << "micro_overlap: state diverged between configurations\n";
      bench::dump_bench_metrics("micro_overlap");
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "micro_overlap: " << e.what() << '\n';
    return 1;
  }
  bench::dump_bench_metrics("micro_overlap");
  return 0;
}
