// Google-benchmark microbenchmarks of the non-partitioner pipeline
// stages: mesh generation, task-graph generation, discrete-event
// simulation, and the solver kernels.
#include <benchmark/benchmark.h>

#include "mesh/generators.hpp"
#include "partition/strategy.hpp"
#include "sim/simulate.hpp"
#include "solver/euler.hpp"
#include "taskgraph/generate.hpp"

namespace {

using namespace tamp;

void BM_MeshGeneration(benchmark::State& state) {
  mesh::TestMeshSpec spec;
  spec.target_cells = static_cast<index_t>(state.range(0));
  for (auto _ : state) {
    auto m = mesh::make_cylinder_mesh(spec);
    benchmark::DoNotOptimize(m.num_faces());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MeshGeneration)->Arg(20000)->Arg(100000);

struct PipelineFixture {
  mesh::Mesh m;
  partition::DomainDecomposition dd;
  PipelineFixture()
      : m([] {
          mesh::TestMeshSpec spec;
          spec.target_cells = 50'000;
          return mesh::make_cylinder_mesh(spec);
        }()),
        dd([this] {
          partition::StrategyOptions opts;
          opts.strategy = partition::Strategy::mc_tl;
          opts.ndomains = 64;
          return partition::decompose(m, opts);
        }()) {}
  static const PipelineFixture& get() {
    static PipelineFixture f;
    return f;
  }
};

void BM_TaskGeneration(benchmark::State& state) {
  const auto& f = PipelineFixture::get();
  for (auto _ : state) {
    auto g = taskgraph::generate_task_graph(f.m, f.dd.domain_of_cell, 64);
    benchmark::DoNotOptimize(g.num_tasks());
  }
  state.SetItemsProcessed(state.iterations() * f.m.num_cells());
}
BENCHMARK(BM_TaskGeneration);

void BM_Simulation(benchmark::State& state) {
  const auto& f = PipelineFixture::get();
  const auto g = taskgraph::generate_task_graph(f.m, f.dd.domain_of_cell, 64);
  const auto d2p = partition::map_domains_to_processes(
      64, 16, partition::DomainMapping::block);
  sim::SimOptions opts;
  opts.cluster.num_processes = 16;
  opts.cluster.workers_per_process = 32;
  for (auto _ : state) {
    auto r = sim::simulate(g, d2p, opts);
    benchmark::DoNotOptimize(r.makespan);
  }
  state.SetItemsProcessed(state.iterations() * g.num_tasks());
}
BENCHMARK(BM_Simulation);

void BM_SolverIteration(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  mesh::Mesh m = mesh::make_graded_box_mesh(n, n, n, 1.08);
  solver::EulerSolver s(m);
  s.initialize_uniform(1.0, {0.05, 0, 0}, 1.0);
  s.add_pulse({1.5, 1.5, 1.5}, 1.0, 0.1);
  s.assign_temporal_levels();
  for (auto _ : state) {
    s.run_iteration();
    benchmark::DoNotOptimize(s.time());
  }
  state.SetItemsProcessed(state.iterations() * m.num_cells());
}
BENCHMARK(BM_SolverIteration)->Arg(16)->Arg(24);

void BM_CriticalPath(benchmark::State& state) {
  const auto& f = PipelineFixture::get();
  const auto g = taskgraph::generate_task_graph(f.m, f.dd.domain_of_cell, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.critical_path());
  }
  state.SetItemsProcessed(state.iterations() * g.num_tasks());
}
BENCHMARK(BM_CriticalPath);

}  // namespace

BENCHMARK_MAIN();
