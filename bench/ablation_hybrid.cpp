// Ablation of the paper's §VII perspective: the dual-phase HYBRID
// strategy (MC_TL across processes, then SC_OC inside each process
// domain) against plain SC_OC and MC_TL, on CYLINDER and PPRIME_NOZZLE.
//
// Expected: HYBRID recovers most of MC_TL's makespan advantage at a
// fraction of its inter-process communication — the "favorable
// compromise" the paper's preliminary results suggest.
#include "bench_common.hpp"

using namespace tamp;

int main(int argc, char** argv) {
  CliParser cli("ablation_hybrid — dual-phase partitioning (§VII)");
  bench::add_common_options(cli);
  cli.option("domains", "64", "number of domains");
  cli.option("processes", "16", "MPI processes");
  cli.option("worker-counts", "2,8", "cores-per-process values to sweep");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner(
      "§VII — HYBRID dual-phase partitioning ablation",
      "HYBRID balances levels per process but keeps SC_OC granularity "
      "inside; at modest core counts it matches MC_TL at far less "
      "communication — the paper's 'favorable compromise'. At high core "
      "counts its level-segregated subdomains starve workers within a "
      "phase and the advantage fades.");

  std::vector<int> worker_counts;
  {
    std::string list = cli.get("worker-counts");
    std::size_t pos = 0;
    while (pos < list.size()) {
      const std::size_t comma = list.find(',', pos);
      worker_counts.push_back(std::stoi(list.substr(pos, comma - pos)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  for (const auto kind :
       {mesh::TestMeshKind::cylinder, mesh::TestMeshKind::nozzle}) {
    const auto m = bench::make_bench_mesh(
        kind, cli.get_double("scale"),
        static_cast<std::uint64_t>(cli.get_int("seed")));
    for (const int workers : worker_counts) {
      TablePrinter t(std::string(mesh::paper_stats(kind).name) + " — " +
                     std::to_string(workers) + " cores/process");
      t.header({"strategy", "makespan", "occupancy", "cross-proc edges",
                "mesh cut", "level imb."});
      for (const auto strategy :
           {partition::Strategy::sc_oc, partition::Strategy::mc_tl,
            partition::Strategy::hybrid}) {
        core::RunConfig cfg;
        cfg.strategy = strategy;
        cfg.ndomains = static_cast<part_t>(cli.get_int("domains"));
        cfg.nprocesses = static_cast<part_t>(cli.get_int("processes"));
        cfg.workers_per_process = workers;
        cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
        const auto out = core::run_on_mesh(m, cfg);
        t.row({partition::to_string(strategy), fmt_double(out.makespan(), 0),
               fmt_percent(out.occupancy()), fmt_count(out.comm_volume()),
               fmt_count(out.decomposition.edge_cut),
               fmt_double(out.decomposition.level_imbalance(), 2)});
      }
      t.print(std::cout);
      std::cout << '\n';
    }
  }
  std::cout << "Shape check: at the low core count HYBRID's makespan is "
               "within a few percent of MC_TL's with roughly half the "
               "cross-process edges.\n";
  bench::dump_bench_metrics("ablation_hybrid");
  return 0;
}
