// Sustained-load latency bench for the online repartitioning service:
// many solver sessions (meshes × drift seeds) stream prep requests
// through ONE shared decomposition cache, the way a long-running
// service process would serve a fleet of concurrent pipelines.
//
// Request model:
//   * session start  — the pipeline's snapshot-0 prep: a cached
//     decomposition of the session's base mesh (partition/cache.hpp).
//     The first session per mesh misses and pays the full multilevel
//     run; every later session with the same mesh content + parameters
//     hits and pays a content hash + map lookup.
//   * session iteration — the steady-state prep: the session's levels
//     drift and the task graph is diff-patched (taskgraph/patch.hpp)
//     instead of rebuilt.
//
// Emits the service.* gauges gated by tools/service_smoke.sh via
// tamp-report: prep_p50_ms / prep_p99_ms over the full request stream,
// cache_hit_rate, cold_prep_ms / warm_prep_ms / warm_speedup (the
// "cache-warm prep ≥ 3× lower latency" acceptance bar), patch_ms /
// rebuild_ms / patch_speedup for the steady-state path, plus the
// partition.cache.* counters and a bitwise_equal integrity verdict
// (a cache hit must be indistinguishable from recomputing).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mesh/evolve.hpp"
#include "partition/cache.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "taskgraph/patch.hpp"

namespace {

using namespace tamp;

double percentile_ms(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(rank, v.size() - 1)];
}

double mean_ms(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "micro_service — sustained-load prep latency through one shared "
      "decomposition cache");
  bench::add_common_options(cli);
  cli.option("cells", "20000", "cells per base mesh");
  cli.option("meshes", "3", "distinct base meshes (cache working set)");
  cli.option("sessions", "8", "sessions per mesh (drift seeds)");
  cli.option("iterations", "3", "drift+patch iterations per session");
  cli.option("drift", "0.02", "per-iteration temporal-level drift");
  cli.option("domains", "16", "domains per decomposition");
  cli.option("min-speedup", "3",
             "fail unless warm prep is at least this many times faster "
             "than cold (0 disables the in-bench gate)");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner(
      "micro_service: session starts hit a shared decomposition cache; "
      "steady-state iterations diff-patch the task graph",
      "online repartitioning as a service: amortize, don't recompute");
  try {
    const auto cells = static_cast<index_t>(cli.get_int("cells"));
    const int nmeshes = std::max(1, static_cast<int>(cli.get_int("meshes")));
    const int nsessions =
        std::max(1, static_cast<int>(cli.get_int("sessions")));
    const int niters = std::max(1, static_cast<int>(cli.get_int("iterations")));
    const double drift = cli.get_double("drift");
    const auto ndomains = static_cast<part_t>(cli.get_int("domains"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const double min_speedup = cli.get_double("min-speedup");

    // The service's working set: a few distinct meshes, kinds cycled so
    // the cache holds heterogeneous entries.
    const mesh::TestMeshKind kinds[] = {mesh::TestMeshKind::cylinder,
                                        mesh::TestMeshKind::cube,
                                        mesh::TestMeshKind::nozzle};
    std::vector<mesh::Mesh> meshes;
    for (int k = 0; k < nmeshes; ++k) {
      mesh::TestMeshSpec spec;
      spec.target_cells = cells;
      spec.seed = seed + static_cast<std::uint64_t>(k);
      meshes.push_back(mesh::make_test_mesh(kinds[k % 3], spec));
    }

    partition::StrategyOptions sopts;
    sopts.strategy = partition::Strategy::mc_tl;
    sopts.ndomains = ndomains;
    sopts.partitioner.seed = seed;
    partition::DecompositionCache cache;

    // --- sustained load: session starts against the shared cache ----------
    std::vector<double> all_ms, cold_ms, warm_ms, patch_ms, rebuild_ms;
    for (int s = 0; s < nsessions; ++s) {
      for (int k = 0; k < nmeshes; ++k) {
        const mesh::Mesh& base = meshes[static_cast<std::size_t>(k)];
        const auto before = cache.stats();
        const Stopwatch watch;
        const auto value = partition::decompose_cached(base, sopts, &cache);
        const double ms = watch.seconds() * 1e3;
        all_ms.push_back(ms);
        (cache.stats().misses > before.misses ? cold_ms : warm_ms)
            .push_back(ms);

        // Steady state: this session's levels drift; the graph is
        // diff-patched, with one from-scratch rebuild timed per session
        // for the comparison gauge.
        mesh::Mesh live = base;
        taskgraph::GraphPatcher patcher(live,
                                        value->decomposition.domain_of_cell,
                                        ndomains);
        Rng rng(mix_seed(seed, static_cast<std::uint64_t>(s),
                         static_cast<std::uint64_t>(k)));
        for (int i = 0; i < niters; ++i) {
          mesh::evolve_levels(live, drift, rng);
          const Stopwatch pw;
          patcher.apply(live, value->decomposition.domain_of_cell);
          patch_ms.push_back(pw.seconds() * 1e3);
        }
        const Stopwatch rw;
        taskgraph::ClassMap rebuilt_classes;
        const taskgraph::TaskGraph rebuilt = taskgraph::generate_task_graph(
            live, value->decomposition.domain_of_cell, ndomains, {},
            &rebuilt_classes);
        rebuild_ms.push_back(rw.seconds() * 1e3);
        if (taskgraph::GraphPatcher::fingerprint(rebuilt, rebuilt_classes) !=
            patcher.fingerprint())
          throw invariant_error("patched graph diverged from rebuild");
      }
    }

    // Integrity: a hit must be bit-identical to recomputing.
    const bool bitwise_equal =
        cache.find(partition::make_cache_key(meshes.front(), sopts)) !=
            nullptr &&
        partition::decompose(meshes.front(), sopts).domain_of_cell ==
            partition::decompose_cached(meshes.front(), sopts, &cache)
                ->decomposition.domain_of_cell;

    const auto stats = cache.stats();
    const double p50 = percentile_ms(all_ms, 0.50);
    const double p99 = percentile_ms(all_ms, 0.99);
    const double cold = mean_ms(cold_ms);
    const double warm = mean_ms(warm_ms);
    const double warm_speedup = warm > 0 ? cold / warm : 0.0;
    const double patch_mean = mean_ms(patch_ms);
    const double rebuild_mean = mean_ms(rebuild_ms);
    const double patch_speedup =
        patch_mean > 0 ? rebuild_mean / patch_mean : 0.0;

    TablePrinter t("service prep latency (one shared cache)");
    t.header({"requests", "p50 ms", "p99 ms", "cold ms", "warm ms",
              "warm speedup", "hit rate"});
    t.row({std::to_string(all_ms.size()), fmt_double(p50, 3),
           fmt_double(p99, 3), fmt_double(cold, 3), fmt_double(warm, 3),
           fmt_double(warm_speedup, 1), fmt_percent(stats.served_rate())});
    t.print(std::cout);
    std::cout << "steady state: patch " << fmt_double(patch_mean, 3)
              << " ms vs rebuild " << fmt_double(rebuild_mean, 3)
              << " ms (speedup " << fmt_double(patch_speedup, 1) << "x); "
              << "cache " << stats.entries << " entries, " << stats.bytes
              << " bytes, " << stats.evictions << " evictions\n";
    std::cout << "cache hit bit-identical to recompute: "
              << (bitwise_equal ? "yes" : "NO") << '\n';

    // obs::gauge directly (not the TAMP_METRIC_* macros): CI builds
    // Release without tracing, and these gauges ARE the product.
    obs::gauge("service.prep_p50_ms").set(p50);
    obs::gauge("service.prep_p99_ms").set(p99);
    obs::gauge("service.cold_prep_ms").set(cold);
    obs::gauge("service.warm_prep_ms").set(warm);
    obs::gauge("service.warm_speedup").set(warm_speedup);
    obs::gauge("service.cache_hit_rate").set(stats.served_rate());
    obs::gauge("service.patch_ms").set(patch_mean);
    obs::gauge("service.rebuild_ms").set(rebuild_mean);
    obs::gauge("service.patch_speedup").set(patch_speedup);
    obs::gauge("service.bitwise_equal").set(bitwise_equal ? 1.0 : 0.0);
    cache.publish_metrics();

    if (!bitwise_equal) {
      std::cerr << "micro_service: cache hit diverged from recompute\n";
      bench::dump_bench_metrics("micro_service");
      return 1;
    }
    if (min_speedup > 0 && warm_speedup < min_speedup) {
      std::cerr << "micro_service: warm prep only " << warm_speedup
                << "x faster than cold (floor " << min_speedup << "x)\n";
      bench::dump_bench_metrics("micro_service");
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "micro_service: " << e.what() << '\n';
    return 1;
  }
  bench::dump_bench_metrics("micro_service");
  return 0;
}
