// Reproduces Fig 12: FLUSIM comparison on PPRIME_NOZZLE with the Fig 5
// configuration (12 domains, 6 processes x 4 cores). The paper reports a
// smaller but still considerable improvement of ~20 % for MC_TL — the
// nozzle's 3-level structure is less pathological than CYLINDER's 4.
#include "bench_common.hpp"
#include "support/gantt.hpp"

using namespace tamp;

int main(int argc, char** argv) {
  CliParser cli("fig12_nozzle_flusim — PPRIME_NOZZLE in FLUSIM (Fig 12)");
  bench::add_common_options(cli);
  cli.option("domains", "12", "number of domains");
  cli.option("processes", "6", "MPI processes");
  cli.option("workers", "4", "cores per process");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig 12 — PPRIME_NOZZLE, 12 domains, 6 processes x 4 cores",
                "MC_TL improves the nozzle iteration by ~20% in FLUSIM");

  const auto m = bench::make_bench_mesh(
      mesh::TestMeshKind::nozzle, cli.get_double("scale"),
      static_cast<std::uint64_t>(cli.get_int("seed")));

  core::RunConfig cfg;
  cfg.ndomains = static_cast<part_t>(cli.get_int("domains"));
  cfg.nprocesses = static_cast<part_t>(cli.get_int("processes"));
  cfg.workers_per_process = static_cast<int>(cli.get_int("workers"));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  cfg.strategy = partition::Strategy::sc_oc;
  const auto oc = core::run_on_mesh(m, cfg);
  cfg.strategy = partition::Strategy::mc_tl;
  const auto tl = core::run_on_mesh(m, cfg);

  TablePrinter t;
  t.header({"strategy", "makespan", "occupancy", "tasks", "cut"});
  t.row({"SC_OC", fmt_double(oc.makespan(), 0), fmt_percent(oc.occupancy()),
         fmt_count(oc.graph.num_tasks()), fmt_count(oc.decomposition.edge_cut)});
  t.row({"MC_TL", fmt_double(tl.makespan(), 0), fmt_percent(tl.occupancy()),
         fmt_count(tl.graph.num_tasks()), fmt_count(tl.decomposition.edge_cut)});
  t.print(std::cout);

  const double gain = 1.0 - tl.makespan() / oc.makespan();
  std::cout << "MC_TL saves " << fmt_percent(gain)
            << " of the iteration (paper: ~20%).\n";

  const std::string dir = bench::artifact_dir(cli);
  write_gantt_comparison_svg(
      oc.sim.gantt(oc.graph, true, "PPRIME_NOZZLE SC_OC"),
      tl.sim.gantt(tl.graph, true, "PPRIME_NOZZLE MC_TL"),
      dir + "/fig12_traces.svg");
  std::cout << "Traces in " << dir << "/fig12_traces.svg\n";
  bench::dump_bench_metrics("fig12_nozzle_flusim");
  return 0;
}
