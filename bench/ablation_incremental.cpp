// Ablation of incremental repartitioning under temporal-level drift —
// the production regime behind the paper's §III-A premise ("the temporal
// levels of the cells experience minimal evolution across iterations").
//
// Simulates a sequence of level-drift steps and compares, at each step,
// repartitioning from scratch (best quality, massive data migration)
// against incremental repartitioning (previous assignment + targeted
// moves). The reproduction target: incremental keeps the MC_TL schedule
// quality within a few percent at a small fraction of the migration.
#include "bench_common.hpp"
#include "mesh/evolve.hpp"
#include "partition/incremental.hpp"
#include "taskgraph/generate.hpp"

using namespace tamp;

int main(int argc, char** argv) {
  CliParser cli("ablation_incremental — repartitioning under level drift");
  bench::add_common_options(cli);
  cli.option("domains", "32", "number of domains");
  cli.option("processes", "8", "MPI processes");
  cli.option("workers", "4", "cores per process");
  cli.option("steps", "5", "drift steps");
  cli.option("drift", "0.08", "per-step boundary-cell drift probability");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("incremental repartitioning under temporal-level drift",
                "levels evolve slowly (§III-A); incremental updates should "
                "hold MC_TL's makespan at a fraction of the migration cost "
                "of scratch repartitioning");

  auto m = bench::make_bench_mesh(mesh::TestMeshKind::cylinder,
                                  cli.get_double("scale"),
                                  static_cast<std::uint64_t>(cli.get_int("seed")));
  const auto ndomains = static_cast<part_t>(cli.get_int("domains"));
  const auto nproc = static_cast<part_t>(cli.get_int("processes"));
  const auto d2p = partition::map_domains_to_processes(
      ndomains, nproc, partition::DomainMapping::block);

  auto makespan_of = [&](const std::vector<part_t>& domains) {
    const auto graph = taskgraph::generate_task_graph(m, domains, ndomains);
    sim::SimOptions simopts;
    simopts.cluster.num_processes = nproc;
    simopts.cluster.workers_per_process =
        static_cast<int>(cli.get_int("workers"));
    return sim::simulate(graph, d2p, simopts).makespan;
  };

  partition::StrategyOptions sopts;
  sopts.strategy = partition::Strategy::mc_tl;
  sopts.ndomains = ndomains;
  sopts.partitioner.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  auto dd = partition::decompose(m, sopts);
  std::vector<part_t> incremental = dd.domain_of_cell;

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")) + 17);
  TablePrinter t;
  t.header({"step", "cells drifted", "scratch makespan", "scratch migration",
            "incremental makespan", "incremental migration"});
  const int steps = static_cast<int>(cli.get_int("steps"));
  for (int step = 1; step <= steps; ++step) {
    const auto drift =
        mesh::evolve_levels(m, cli.get_double("drift"), rng);

    // Scratch: full repartition with a fresh seed (labels unrelated to
    // the previous assignment — as a production run would experience).
    const std::vector<part_t> previous = incremental;
    sopts.partitioner.seed += 101;
    const auto scratch = partition::decompose(m, sopts);
    index_t scratch_moved = 0;
    for (index_t c = 0; c < m.num_cells(); ++c)
      if (scratch.domain_of_cell[static_cast<std::size_t>(c)] !=
          previous[static_cast<std::size_t>(c)])
        ++scratch_moved;

    // Incremental.
    const auto g =
        partition::build_strategy_graph(m, partition::Strategy::mc_tl);
    const auto report =
        partition::incremental_repartition(g, incremental, ndomains);

    t.row({std::to_string(step), fmt_count(drift.cells_changed),
           fmt_double(makespan_of(scratch.domain_of_cell), 0),
           fmt_count(scratch_moved), fmt_double(makespan_of(incremental), 0),
           fmt_count(report.migrated_vertices)});
  }
  t.print(std::cout);
  std::cout << "Shape check: incremental migration is a small fraction of "
               "scratch migration while the makespans stay comparable.\n";
  bench::dump_bench_metrics("ablation_incremental");
  return 0;
}
