# Empty dependencies file for tamp_report.
# This may be replaced when dependencies are built.
