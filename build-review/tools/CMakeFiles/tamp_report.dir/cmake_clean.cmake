file(REMOVE_RECURSE
  "CMakeFiles/tamp_report.dir/tamp_report.cpp.o"
  "CMakeFiles/tamp_report.dir/tamp_report.cpp.o.d"
  "tamp-report"
  "tamp-report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
