file(REMOVE_RECURSE
  "CMakeFiles/test_partition_properties.dir/test_partition_properties.cpp.o"
  "CMakeFiles/test_partition_properties.dir/test_partition_properties.cpp.o.d"
  "test_partition_properties"
  "test_partition_properties.pdb"
  "test_partition_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
