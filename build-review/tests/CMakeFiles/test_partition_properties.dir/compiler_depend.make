# Empty compiler generated dependencies file for test_partition_properties.
# This may be replaced when dependencies are built.
