file(REMOVE_RECURSE
  "CMakeFiles/test_evolve_incremental.dir/test_evolve_incremental.cpp.o"
  "CMakeFiles/test_evolve_incremental.dir/test_evolve_incremental.cpp.o.d"
  "test_evolve_incremental"
  "test_evolve_incremental.pdb"
  "test_evolve_incremental[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evolve_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
