# Empty dependencies file for test_evolve_incremental.
# This may be replaced when dependencies are built.
