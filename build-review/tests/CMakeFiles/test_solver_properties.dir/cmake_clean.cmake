file(REMOVE_RECURSE
  "CMakeFiles/test_solver_properties.dir/test_solver_properties.cpp.o"
  "CMakeFiles/test_solver_properties.dir/test_solver_properties.cpp.o.d"
  "test_solver_properties"
  "test_solver_properties.pdb"
  "test_solver_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
