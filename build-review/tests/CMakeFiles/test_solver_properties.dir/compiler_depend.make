# Empty compiler generated dependencies file for test_solver_properties.
# This may be replaced when dependencies are built.
