file(REMOVE_RECURSE
  "CMakeFiles/test_flight.dir/test_flight.cpp.o"
  "CMakeFiles/test_flight.dir/test_flight.cpp.o.d"
  "test_flight"
  "test_flight.pdb"
  "test_flight[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
