
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/test_thread_pool.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_thread_pool.dir/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/tamp_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/solver/CMakeFiles/tamp_solver.dir/DependInfo.cmake"
  "/root/repo/build-review/src/verify/CMakeFiles/tamp_verify.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/tamp_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/tamp_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/taskgraph/CMakeFiles/tamp_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/partition/CMakeFiles/tamp_partition.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mesh/CMakeFiles/tamp_mesh.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/tamp_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/tamp_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/tamp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
