file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_async.dir/test_pipeline_async.cpp.o"
  "CMakeFiles/test_pipeline_async.dir/test_pipeline_async.cpp.o.d"
  "test_pipeline_async"
  "test_pipeline_async.pdb"
  "test_pipeline_async[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
