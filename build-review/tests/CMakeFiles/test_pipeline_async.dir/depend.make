# Empty dependencies file for test_pipeline_async.
# This may be replaced when dependencies are built.
