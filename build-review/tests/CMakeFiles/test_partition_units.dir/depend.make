# Empty dependencies file for test_partition_units.
# This may be replaced when dependencies are built.
