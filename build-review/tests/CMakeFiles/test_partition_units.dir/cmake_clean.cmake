file(REMOVE_RECURSE
  "CMakeFiles/test_partition_units.dir/test_partition_units.cpp.o"
  "CMakeFiles/test_partition_units.dir/test_partition_units.cpp.o.d"
  "test_partition_units"
  "test_partition_units.pdb"
  "test_partition_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
