file(REMOVE_RECURSE
  "CMakeFiles/test_doctor.dir/test_doctor.cpp.o"
  "CMakeFiles/test_doctor.dir/test_doctor.cpp.o.d"
  "test_doctor"
  "test_doctor.pdb"
  "test_doctor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doctor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
