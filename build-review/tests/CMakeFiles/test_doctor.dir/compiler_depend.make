# Empty compiler generated dependencies file for test_doctor.
# This may be replaced when dependencies are built.
