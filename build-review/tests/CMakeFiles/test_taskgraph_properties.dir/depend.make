# Empty dependencies file for test_taskgraph_properties.
# This may be replaced when dependencies are built.
