file(REMOVE_RECURSE
  "CMakeFiles/test_taskgraph_properties.dir/test_taskgraph_properties.cpp.o"
  "CMakeFiles/test_taskgraph_properties.dir/test_taskgraph_properties.cpp.o.d"
  "test_taskgraph_properties"
  "test_taskgraph_properties.pdb"
  "test_taskgraph_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taskgraph_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
