file(REMOVE_RECURSE
  "CMakeFiles/test_messages_io.dir/test_messages_io.cpp.o"
  "CMakeFiles/test_messages_io.dir/test_messages_io.cpp.o.d"
  "test_messages_io"
  "test_messages_io.pdb"
  "test_messages_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_messages_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
