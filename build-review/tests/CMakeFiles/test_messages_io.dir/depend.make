# Empty dependencies file for test_messages_io.
# This may be replaced when dependencies are built.
