# Empty dependencies file for test_whatif.
# This may be replaced when dependencies are built.
