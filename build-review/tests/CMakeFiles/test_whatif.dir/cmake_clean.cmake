file(REMOVE_RECURSE
  "CMakeFiles/test_whatif.dir/test_whatif.cpp.o"
  "CMakeFiles/test_whatif.dir/test_whatif.cpp.o.d"
  "test_whatif"
  "test_whatif.pdb"
  "test_whatif[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
