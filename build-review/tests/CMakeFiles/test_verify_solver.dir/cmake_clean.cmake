file(REMOVE_RECURSE
  "CMakeFiles/test_verify_solver.dir/test_verify_solver.cpp.o"
  "CMakeFiles/test_verify_solver.dir/test_verify_solver.cpp.o.d"
  "test_verify_solver"
  "test_verify_solver.pdb"
  "test_verify_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
