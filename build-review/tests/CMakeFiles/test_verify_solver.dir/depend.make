# Empty dependencies file for test_verify_solver.
# This may be replaced when dependencies are built.
