file(REMOVE_RECURSE
  "CMakeFiles/test_patch.dir/test_patch.cpp.o"
  "CMakeFiles/test_patch.dir/test_patch.cpp.o.d"
  "test_patch"
  "test_patch.pdb"
  "test_patch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_patch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
