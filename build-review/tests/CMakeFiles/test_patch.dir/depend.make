# Empty dependencies file for test_patch.
# This may be replaced when dependencies are built.
