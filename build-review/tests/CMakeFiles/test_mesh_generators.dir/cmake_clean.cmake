file(REMOVE_RECURSE
  "CMakeFiles/test_mesh_generators.dir/test_mesh_generators.cpp.o"
  "CMakeFiles/test_mesh_generators.dir/test_mesh_generators.cpp.o.d"
  "test_mesh_generators"
  "test_mesh_generators.pdb"
  "test_mesh_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesh_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
