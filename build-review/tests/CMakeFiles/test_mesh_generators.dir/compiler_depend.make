# Empty compiler generated dependencies file for test_mesh_generators.
# This may be replaced when dependencies are built.
