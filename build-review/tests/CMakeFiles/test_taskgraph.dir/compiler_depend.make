# Empty compiler generated dependencies file for test_taskgraph.
# This may be replaced when dependencies are built.
