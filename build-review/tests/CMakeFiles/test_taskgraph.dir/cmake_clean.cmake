file(REMOVE_RECURSE
  "CMakeFiles/test_taskgraph.dir/test_taskgraph.cpp.o"
  "CMakeFiles/test_taskgraph.dir/test_taskgraph.cpp.o.d"
  "test_taskgraph"
  "test_taskgraph.pdb"
  "test_taskgraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
