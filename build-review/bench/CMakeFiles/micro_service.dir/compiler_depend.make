# Empty compiler generated dependencies file for micro_service.
# This may be replaced when dependencies are built.
