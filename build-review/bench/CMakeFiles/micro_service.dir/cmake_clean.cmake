file(REMOVE_RECURSE
  "CMakeFiles/micro_service.dir/micro_service.cpp.o"
  "CMakeFiles/micro_service.dir/micro_service.cpp.o.d"
  "micro_service"
  "micro_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
