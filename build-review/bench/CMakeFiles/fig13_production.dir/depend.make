# Empty dependencies file for fig13_production.
# This may be replaced when dependencies are built.
