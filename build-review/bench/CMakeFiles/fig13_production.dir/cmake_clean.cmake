file(REMOVE_RECURSE
  "CMakeFiles/fig13_production.dir/fig13_production.cpp.o"
  "CMakeFiles/fig13_production.dir/fig13_production.cpp.o.d"
  "fig13_production"
  "fig13_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
