# Empty compiler generated dependencies file for ablation_rb_vs_kway.
# This may be replaced when dependencies are built.
