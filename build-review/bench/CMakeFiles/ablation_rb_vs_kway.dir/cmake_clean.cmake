file(REMOVE_RECURSE
  "CMakeFiles/ablation_rb_vs_kway.dir/ablation_rb_vs_kway.cpp.o"
  "CMakeFiles/ablation_rb_vs_kway.dir/ablation_rb_vs_kway.cpp.o.d"
  "ablation_rb_vs_kway"
  "ablation_rb_vs_kway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rb_vs_kway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
