# Empty compiler generated dependencies file for fig6_unbounded_cores.
# This may be replaced when dependencies are built.
