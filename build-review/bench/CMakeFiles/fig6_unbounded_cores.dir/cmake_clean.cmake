file(REMOVE_RECURSE
  "CMakeFiles/fig6_unbounded_cores.dir/fig6_unbounded_cores.cpp.o"
  "CMakeFiles/fig6_unbounded_cores.dir/fig6_unbounded_cores.cpp.o.d"
  "fig6_unbounded_cores"
  "fig6_unbounded_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_unbounded_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
