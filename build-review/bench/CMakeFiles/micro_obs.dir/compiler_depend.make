# Empty compiler generated dependencies file for micro_obs.
# This may be replaced when dependencies are built.
