file(REMOVE_RECURSE
  "CMakeFiles/micro_obs.dir/micro_obs.cpp.o"
  "CMakeFiles/micro_obs.dir/micro_obs.cpp.o.d"
  "micro_obs"
  "micro_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
