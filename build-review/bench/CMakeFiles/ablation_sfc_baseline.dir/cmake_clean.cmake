file(REMOVE_RECURSE
  "CMakeFiles/ablation_sfc_baseline.dir/ablation_sfc_baseline.cpp.o"
  "CMakeFiles/ablation_sfc_baseline.dir/ablation_sfc_baseline.cpp.o.d"
  "ablation_sfc_baseline"
  "ablation_sfc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sfc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
