# Empty dependencies file for ablation_sfc_baseline.
# This may be replaced when dependencies are built.
