# Empty compiler generated dependencies file for table1_meshes.
# This may be replaced when dependencies are built.
