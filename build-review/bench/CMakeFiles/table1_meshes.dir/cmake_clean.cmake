file(REMOVE_RECURSE
  "CMakeFiles/table1_meshes.dir/table1_meshes.cpp.o"
  "CMakeFiles/table1_meshes.dir/table1_meshes.cpp.o.d"
  "table1_meshes"
  "table1_meshes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_meshes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
