# Empty dependencies file for fig12_nozzle_flusim.
# This may be replaced when dependencies are built.
