file(REMOVE_RECURSE
  "CMakeFiles/fig12_nozzle_flusim.dir/fig12_nozzle_flusim.cpp.o"
  "CMakeFiles/fig12_nozzle_flusim.dir/fig12_nozzle_flusim.cpp.o.d"
  "fig12_nozzle_flusim"
  "fig12_nozzle_flusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_nozzle_flusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
