file(REMOVE_RECURSE
  "CMakeFiles/fig9_speedup_traces.dir/fig9_speedup_traces.cpp.o"
  "CMakeFiles/fig9_speedup_traces.dir/fig9_speedup_traces.cpp.o.d"
  "fig9_speedup_traces"
  "fig9_speedup_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_speedup_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
