# Empty compiler generated dependencies file for fig9_speedup_traces.
# This may be replaced when dependencies are built.
