# Empty dependencies file for fig7_fig10_domain_census.
# This may be replaced when dependencies are built.
