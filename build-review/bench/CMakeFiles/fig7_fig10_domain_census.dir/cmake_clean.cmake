file(REMOVE_RECURSE
  "CMakeFiles/fig7_fig10_domain_census.dir/fig7_fig10_domain_census.cpp.o"
  "CMakeFiles/fig7_fig10_domain_census.dir/fig7_fig10_domain_census.cpp.o.d"
  "fig7_fig10_domain_census"
  "fig7_fig10_domain_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fig10_domain_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
