# Empty compiler generated dependencies file for fig5_sim_vs_runtime.
# This may be replaced when dependencies are built.
