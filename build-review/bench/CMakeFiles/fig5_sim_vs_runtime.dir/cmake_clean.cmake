file(REMOVE_RECURSE
  "CMakeFiles/fig5_sim_vs_runtime.dir/fig5_sim_vs_runtime.cpp.o"
  "CMakeFiles/fig5_sim_vs_runtime.dir/fig5_sim_vs_runtime.cpp.o.d"
  "fig5_sim_vs_runtime"
  "fig5_sim_vs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sim_vs_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
