# Empty dependencies file for fig11_domain_sweep.
# This may be replaced when dependencies are built.
