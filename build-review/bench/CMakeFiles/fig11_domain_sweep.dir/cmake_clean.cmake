file(REMOVE_RECURSE
  "CMakeFiles/fig11_domain_sweep.dir/fig11_domain_sweep.cpp.o"
  "CMakeFiles/fig11_domain_sweep.dir/fig11_domain_sweep.cpp.o.d"
  "fig11_domain_sweep"
  "fig11_domain_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_domain_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
