file(REMOVE_RECURSE
  "CMakeFiles/micro_partitioner.dir/micro_partitioner.cpp.o"
  "CMakeFiles/micro_partitioner.dir/micro_partitioner.cpp.o.d"
  "micro_partitioner"
  "micro_partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
