file(REMOVE_RECURSE
  "CMakeFiles/variance_seeds.dir/variance_seeds.cpp.o"
  "CMakeFiles/variance_seeds.dir/variance_seeds.cpp.o.d"
  "variance_seeds"
  "variance_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variance_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
