# Empty compiler generated dependencies file for variance_seeds.
# This may be replaced when dependencies are built.
