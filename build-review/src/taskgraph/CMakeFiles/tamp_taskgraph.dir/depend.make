# Empty dependencies file for tamp_taskgraph.
# This may be replaced when dependencies are built.
