file(REMOVE_RECURSE
  "libtamp_taskgraph.a"
)
