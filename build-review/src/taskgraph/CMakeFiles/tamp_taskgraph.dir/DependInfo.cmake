
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taskgraph/generate.cpp" "src/taskgraph/CMakeFiles/tamp_taskgraph.dir/generate.cpp.o" "gcc" "src/taskgraph/CMakeFiles/tamp_taskgraph.dir/generate.cpp.o.d"
  "/root/repo/src/taskgraph/patch.cpp" "src/taskgraph/CMakeFiles/tamp_taskgraph.dir/patch.cpp.o" "gcc" "src/taskgraph/CMakeFiles/tamp_taskgraph.dir/patch.cpp.o.d"
  "/root/repo/src/taskgraph/scheme.cpp" "src/taskgraph/CMakeFiles/tamp_taskgraph.dir/scheme.cpp.o" "gcc" "src/taskgraph/CMakeFiles/tamp_taskgraph.dir/scheme.cpp.o.d"
  "/root/repo/src/taskgraph/taskgraph.cpp" "src/taskgraph/CMakeFiles/tamp_taskgraph.dir/taskgraph.cpp.o" "gcc" "src/taskgraph/CMakeFiles/tamp_taskgraph.dir/taskgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/tamp_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mesh/CMakeFiles/tamp_mesh.dir/DependInfo.cmake"
  "/root/repo/build-review/src/partition/CMakeFiles/tamp_partition.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/tamp_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/tamp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
