file(REMOVE_RECURSE
  "CMakeFiles/tamp_taskgraph.dir/generate.cpp.o"
  "CMakeFiles/tamp_taskgraph.dir/generate.cpp.o.d"
  "CMakeFiles/tamp_taskgraph.dir/patch.cpp.o"
  "CMakeFiles/tamp_taskgraph.dir/patch.cpp.o.d"
  "CMakeFiles/tamp_taskgraph.dir/scheme.cpp.o"
  "CMakeFiles/tamp_taskgraph.dir/scheme.cpp.o.d"
  "CMakeFiles/tamp_taskgraph.dir/taskgraph.cpp.o"
  "CMakeFiles/tamp_taskgraph.dir/taskgraph.cpp.o.d"
  "libtamp_taskgraph.a"
  "libtamp_taskgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_taskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
