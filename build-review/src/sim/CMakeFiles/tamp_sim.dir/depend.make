# Empty dependencies file for tamp_sim.
# This may be replaced when dependencies are built.
