file(REMOVE_RECURSE
  "libtamp_sim.a"
)
