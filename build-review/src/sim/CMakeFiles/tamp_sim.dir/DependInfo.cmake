
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/analysis.cpp" "src/sim/CMakeFiles/tamp_sim.dir/analysis.cpp.o" "gcc" "src/sim/CMakeFiles/tamp_sim.dir/analysis.cpp.o.d"
  "/root/repo/src/sim/doctor.cpp" "src/sim/CMakeFiles/tamp_sim.dir/doctor.cpp.o" "gcc" "src/sim/CMakeFiles/tamp_sim.dir/doctor.cpp.o.d"
  "/root/repo/src/sim/measured.cpp" "src/sim/CMakeFiles/tamp_sim.dir/measured.cpp.o" "gcc" "src/sim/CMakeFiles/tamp_sim.dir/measured.cpp.o.d"
  "/root/repo/src/sim/messages.cpp" "src/sim/CMakeFiles/tamp_sim.dir/messages.cpp.o" "gcc" "src/sim/CMakeFiles/tamp_sim.dir/messages.cpp.o.d"
  "/root/repo/src/sim/simulate.cpp" "src/sim/CMakeFiles/tamp_sim.dir/simulate.cpp.o" "gcc" "src/sim/CMakeFiles/tamp_sim.dir/simulate.cpp.o.d"
  "/root/repo/src/sim/trace_json.cpp" "src/sim/CMakeFiles/tamp_sim.dir/trace_json.cpp.o" "gcc" "src/sim/CMakeFiles/tamp_sim.dir/trace_json.cpp.o.d"
  "/root/repo/src/sim/whatif.cpp" "src/sim/CMakeFiles/tamp_sim.dir/whatif.cpp.o" "gcc" "src/sim/CMakeFiles/tamp_sim.dir/whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/tamp_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/taskgraph/CMakeFiles/tamp_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/tamp_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/partition/CMakeFiles/tamp_partition.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mesh/CMakeFiles/tamp_mesh.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/tamp_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/tamp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
