file(REMOVE_RECURSE
  "CMakeFiles/tamp_sim.dir/analysis.cpp.o"
  "CMakeFiles/tamp_sim.dir/analysis.cpp.o.d"
  "CMakeFiles/tamp_sim.dir/doctor.cpp.o"
  "CMakeFiles/tamp_sim.dir/doctor.cpp.o.d"
  "CMakeFiles/tamp_sim.dir/measured.cpp.o"
  "CMakeFiles/tamp_sim.dir/measured.cpp.o.d"
  "CMakeFiles/tamp_sim.dir/messages.cpp.o"
  "CMakeFiles/tamp_sim.dir/messages.cpp.o.d"
  "CMakeFiles/tamp_sim.dir/simulate.cpp.o"
  "CMakeFiles/tamp_sim.dir/simulate.cpp.o.d"
  "CMakeFiles/tamp_sim.dir/trace_json.cpp.o"
  "CMakeFiles/tamp_sim.dir/trace_json.cpp.o.d"
  "CMakeFiles/tamp_sim.dir/whatif.cpp.o"
  "CMakeFiles/tamp_sim.dir/whatif.cpp.o.d"
  "libtamp_sim.a"
  "libtamp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
