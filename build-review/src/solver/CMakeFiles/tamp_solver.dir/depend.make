# Empty dependencies file for tamp_solver.
# This may be replaced when dependencies are built.
