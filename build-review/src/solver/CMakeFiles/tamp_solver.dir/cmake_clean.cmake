file(REMOVE_RECURSE
  "CMakeFiles/tamp_solver.dir/euler.cpp.o"
  "CMakeFiles/tamp_solver.dir/euler.cpp.o.d"
  "CMakeFiles/tamp_solver.dir/layout.cpp.o"
  "CMakeFiles/tamp_solver.dir/layout.cpp.o.d"
  "CMakeFiles/tamp_solver.dir/simd_kernels_w2.cpp.o"
  "CMakeFiles/tamp_solver.dir/simd_kernels_w2.cpp.o.d"
  "CMakeFiles/tamp_solver.dir/simd_kernels_w4.cpp.o"
  "CMakeFiles/tamp_solver.dir/simd_kernels_w4.cpp.o.d"
  "CMakeFiles/tamp_solver.dir/transport.cpp.o"
  "CMakeFiles/tamp_solver.dir/transport.cpp.o.d"
  "libtamp_solver.a"
  "libtamp_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
