file(REMOVE_RECURSE
  "libtamp_solver.a"
)
