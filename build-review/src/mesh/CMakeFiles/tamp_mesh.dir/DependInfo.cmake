
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/evolve.cpp" "src/mesh/CMakeFiles/tamp_mesh.dir/evolve.cpp.o" "gcc" "src/mesh/CMakeFiles/tamp_mesh.dir/evolve.cpp.o.d"
  "/root/repo/src/mesh/generators.cpp" "src/mesh/CMakeFiles/tamp_mesh.dir/generators.cpp.o" "gcc" "src/mesh/CMakeFiles/tamp_mesh.dir/generators.cpp.o.d"
  "/root/repo/src/mesh/io.cpp" "src/mesh/CMakeFiles/tamp_mesh.dir/io.cpp.o" "gcc" "src/mesh/CMakeFiles/tamp_mesh.dir/io.cpp.o.d"
  "/root/repo/src/mesh/levels.cpp" "src/mesh/CMakeFiles/tamp_mesh.dir/levels.cpp.o" "gcc" "src/mesh/CMakeFiles/tamp_mesh.dir/levels.cpp.o.d"
  "/root/repo/src/mesh/mesh.cpp" "src/mesh/CMakeFiles/tamp_mesh.dir/mesh.cpp.o" "gcc" "src/mesh/CMakeFiles/tamp_mesh.dir/mesh.cpp.o.d"
  "/root/repo/src/mesh/reorder.cpp" "src/mesh/CMakeFiles/tamp_mesh.dir/reorder.cpp.o" "gcc" "src/mesh/CMakeFiles/tamp_mesh.dir/reorder.cpp.o.d"
  "/root/repo/src/mesh/vtk.cpp" "src/mesh/CMakeFiles/tamp_mesh.dir/vtk.cpp.o" "gcc" "src/mesh/CMakeFiles/tamp_mesh.dir/vtk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/tamp_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/tamp_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/tamp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
