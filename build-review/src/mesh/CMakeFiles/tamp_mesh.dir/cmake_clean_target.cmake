file(REMOVE_RECURSE
  "libtamp_mesh.a"
)
