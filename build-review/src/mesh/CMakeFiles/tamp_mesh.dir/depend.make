# Empty dependencies file for tamp_mesh.
# This may be replaced when dependencies are built.
