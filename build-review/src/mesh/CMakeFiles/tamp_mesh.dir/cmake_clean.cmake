file(REMOVE_RECURSE
  "CMakeFiles/tamp_mesh.dir/evolve.cpp.o"
  "CMakeFiles/tamp_mesh.dir/evolve.cpp.o.d"
  "CMakeFiles/tamp_mesh.dir/generators.cpp.o"
  "CMakeFiles/tamp_mesh.dir/generators.cpp.o.d"
  "CMakeFiles/tamp_mesh.dir/io.cpp.o"
  "CMakeFiles/tamp_mesh.dir/io.cpp.o.d"
  "CMakeFiles/tamp_mesh.dir/levels.cpp.o"
  "CMakeFiles/tamp_mesh.dir/levels.cpp.o.d"
  "CMakeFiles/tamp_mesh.dir/mesh.cpp.o"
  "CMakeFiles/tamp_mesh.dir/mesh.cpp.o.d"
  "CMakeFiles/tamp_mesh.dir/reorder.cpp.o"
  "CMakeFiles/tamp_mesh.dir/reorder.cpp.o.d"
  "CMakeFiles/tamp_mesh.dir/vtk.cpp.o"
  "CMakeFiles/tamp_mesh.dir/vtk.cpp.o.d"
  "libtamp_mesh.a"
  "libtamp_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
