file(REMOVE_RECURSE
  "CMakeFiles/tamp_obs.dir/export.cpp.o"
  "CMakeFiles/tamp_obs.dir/export.cpp.o.d"
  "CMakeFiles/tamp_obs.dir/flight.cpp.o"
  "CMakeFiles/tamp_obs.dir/flight.cpp.o.d"
  "CMakeFiles/tamp_obs.dir/json.cpp.o"
  "CMakeFiles/tamp_obs.dir/json.cpp.o.d"
  "CMakeFiles/tamp_obs.dir/metrics.cpp.o"
  "CMakeFiles/tamp_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/tamp_obs.dir/perf.cpp.o"
  "CMakeFiles/tamp_obs.dir/perf.cpp.o.d"
  "CMakeFiles/tamp_obs.dir/report.cpp.o"
  "CMakeFiles/tamp_obs.dir/report.cpp.o.d"
  "CMakeFiles/tamp_obs.dir/trace.cpp.o"
  "CMakeFiles/tamp_obs.dir/trace.cpp.o.d"
  "libtamp_obs.a"
  "libtamp_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
