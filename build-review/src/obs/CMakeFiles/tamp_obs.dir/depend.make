# Empty dependencies file for tamp_obs.
# This may be replaced when dependencies are built.
