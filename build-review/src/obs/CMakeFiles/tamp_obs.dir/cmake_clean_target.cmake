file(REMOVE_RECURSE
  "libtamp_obs.a"
)
