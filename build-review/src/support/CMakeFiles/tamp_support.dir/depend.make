# Empty dependencies file for tamp_support.
# This may be replaced when dependencies are built.
