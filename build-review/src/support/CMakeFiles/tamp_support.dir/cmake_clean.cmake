file(REMOVE_RECURSE
  "CMakeFiles/tamp_support.dir/cli.cpp.o"
  "CMakeFiles/tamp_support.dir/cli.cpp.o.d"
  "CMakeFiles/tamp_support.dir/gantt.cpp.o"
  "CMakeFiles/tamp_support.dir/gantt.cpp.o.d"
  "CMakeFiles/tamp_support.dir/log.cpp.o"
  "CMakeFiles/tamp_support.dir/log.cpp.o.d"
  "CMakeFiles/tamp_support.dir/rng.cpp.o"
  "CMakeFiles/tamp_support.dir/rng.cpp.o.d"
  "CMakeFiles/tamp_support.dir/simd.cpp.o"
  "CMakeFiles/tamp_support.dir/simd.cpp.o.d"
  "CMakeFiles/tamp_support.dir/svg.cpp.o"
  "CMakeFiles/tamp_support.dir/svg.cpp.o.d"
  "CMakeFiles/tamp_support.dir/table.cpp.o"
  "CMakeFiles/tamp_support.dir/table.cpp.o.d"
  "CMakeFiles/tamp_support.dir/thread_pool.cpp.o"
  "CMakeFiles/tamp_support.dir/thread_pool.cpp.o.d"
  "libtamp_support.a"
  "libtamp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
