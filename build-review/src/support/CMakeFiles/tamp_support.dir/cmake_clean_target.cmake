file(REMOVE_RECURSE
  "libtamp_support.a"
)
