
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/cli.cpp" "src/support/CMakeFiles/tamp_support.dir/cli.cpp.o" "gcc" "src/support/CMakeFiles/tamp_support.dir/cli.cpp.o.d"
  "/root/repo/src/support/gantt.cpp" "src/support/CMakeFiles/tamp_support.dir/gantt.cpp.o" "gcc" "src/support/CMakeFiles/tamp_support.dir/gantt.cpp.o.d"
  "/root/repo/src/support/log.cpp" "src/support/CMakeFiles/tamp_support.dir/log.cpp.o" "gcc" "src/support/CMakeFiles/tamp_support.dir/log.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/support/CMakeFiles/tamp_support.dir/rng.cpp.o" "gcc" "src/support/CMakeFiles/tamp_support.dir/rng.cpp.o.d"
  "/root/repo/src/support/simd.cpp" "src/support/CMakeFiles/tamp_support.dir/simd.cpp.o" "gcc" "src/support/CMakeFiles/tamp_support.dir/simd.cpp.o.d"
  "/root/repo/src/support/svg.cpp" "src/support/CMakeFiles/tamp_support.dir/svg.cpp.o" "gcc" "src/support/CMakeFiles/tamp_support.dir/svg.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/support/CMakeFiles/tamp_support.dir/table.cpp.o" "gcc" "src/support/CMakeFiles/tamp_support.dir/table.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "src/support/CMakeFiles/tamp_support.dir/thread_pool.cpp.o" "gcc" "src/support/CMakeFiles/tamp_support.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/obs/CMakeFiles/tamp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
