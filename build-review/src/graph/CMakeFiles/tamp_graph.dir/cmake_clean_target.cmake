file(REMOVE_RECURSE
  "libtamp_graph.a"
)
