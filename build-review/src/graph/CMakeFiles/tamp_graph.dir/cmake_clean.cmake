file(REMOVE_RECURSE
  "CMakeFiles/tamp_graph.dir/builder.cpp.o"
  "CMakeFiles/tamp_graph.dir/builder.cpp.o.d"
  "CMakeFiles/tamp_graph.dir/components.cpp.o"
  "CMakeFiles/tamp_graph.dir/components.cpp.o.d"
  "CMakeFiles/tamp_graph.dir/csr.cpp.o"
  "CMakeFiles/tamp_graph.dir/csr.cpp.o.d"
  "libtamp_graph.a"
  "libtamp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
