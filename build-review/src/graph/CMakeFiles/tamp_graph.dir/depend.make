# Empty dependencies file for tamp_graph.
# This may be replaced when dependencies are built.
