
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cpp" "src/graph/CMakeFiles/tamp_graph.dir/builder.cpp.o" "gcc" "src/graph/CMakeFiles/tamp_graph.dir/builder.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/graph/CMakeFiles/tamp_graph.dir/components.cpp.o" "gcc" "src/graph/CMakeFiles/tamp_graph.dir/components.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/graph/CMakeFiles/tamp_graph.dir/csr.cpp.o" "gcc" "src/graph/CMakeFiles/tamp_graph.dir/csr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/tamp_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/tamp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
