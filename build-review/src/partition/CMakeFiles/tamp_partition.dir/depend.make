# Empty dependencies file for tamp_partition.
# This may be replaced when dependencies are built.
