
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/balance.cpp" "src/partition/CMakeFiles/tamp_partition.dir/balance.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/balance.cpp.o.d"
  "/root/repo/src/partition/bisect.cpp" "src/partition/CMakeFiles/tamp_partition.dir/bisect.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/bisect.cpp.o.d"
  "/root/repo/src/partition/cache.cpp" "src/partition/CMakeFiles/tamp_partition.dir/cache.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/cache.cpp.o.d"
  "/root/repo/src/partition/coarsen.cpp" "src/partition/CMakeFiles/tamp_partition.dir/coarsen.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/coarsen.cpp.o.d"
  "/root/repo/src/partition/incremental.cpp" "src/partition/CMakeFiles/tamp_partition.dir/incremental.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/incremental.cpp.o.d"
  "/root/repo/src/partition/initial.cpp" "src/partition/CMakeFiles/tamp_partition.dir/initial.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/initial.cpp.o.d"
  "/root/repo/src/partition/io.cpp" "src/partition/CMakeFiles/tamp_partition.dir/io.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/io.cpp.o.d"
  "/root/repo/src/partition/metrics.cpp" "src/partition/CMakeFiles/tamp_partition.dir/metrics.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/metrics.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "src/partition/CMakeFiles/tamp_partition.dir/partition.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/partition.cpp.o.d"
  "/root/repo/src/partition/refine.cpp" "src/partition/CMakeFiles/tamp_partition.dir/refine.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/refine.cpp.o.d"
  "/root/repo/src/partition/reorder.cpp" "src/partition/CMakeFiles/tamp_partition.dir/reorder.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/reorder.cpp.o.d"
  "/root/repo/src/partition/repair.cpp" "src/partition/CMakeFiles/tamp_partition.dir/repair.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/repair.cpp.o.d"
  "/root/repo/src/partition/sfc.cpp" "src/partition/CMakeFiles/tamp_partition.dir/sfc.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/sfc.cpp.o.d"
  "/root/repo/src/partition/strategy.cpp" "src/partition/CMakeFiles/tamp_partition.dir/strategy.cpp.o" "gcc" "src/partition/CMakeFiles/tamp_partition.dir/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/tamp_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/tamp_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mesh/CMakeFiles/tamp_mesh.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/tamp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
