file(REMOVE_RECURSE
  "libtamp_partition.a"
)
