file(REMOVE_RECURSE
  "CMakeFiles/tamp_partition.dir/balance.cpp.o"
  "CMakeFiles/tamp_partition.dir/balance.cpp.o.d"
  "CMakeFiles/tamp_partition.dir/bisect.cpp.o"
  "CMakeFiles/tamp_partition.dir/bisect.cpp.o.d"
  "CMakeFiles/tamp_partition.dir/cache.cpp.o"
  "CMakeFiles/tamp_partition.dir/cache.cpp.o.d"
  "CMakeFiles/tamp_partition.dir/coarsen.cpp.o"
  "CMakeFiles/tamp_partition.dir/coarsen.cpp.o.d"
  "CMakeFiles/tamp_partition.dir/incremental.cpp.o"
  "CMakeFiles/tamp_partition.dir/incremental.cpp.o.d"
  "CMakeFiles/tamp_partition.dir/initial.cpp.o"
  "CMakeFiles/tamp_partition.dir/initial.cpp.o.d"
  "CMakeFiles/tamp_partition.dir/io.cpp.o"
  "CMakeFiles/tamp_partition.dir/io.cpp.o.d"
  "CMakeFiles/tamp_partition.dir/metrics.cpp.o"
  "CMakeFiles/tamp_partition.dir/metrics.cpp.o.d"
  "CMakeFiles/tamp_partition.dir/partition.cpp.o"
  "CMakeFiles/tamp_partition.dir/partition.cpp.o.d"
  "CMakeFiles/tamp_partition.dir/refine.cpp.o"
  "CMakeFiles/tamp_partition.dir/refine.cpp.o.d"
  "CMakeFiles/tamp_partition.dir/reorder.cpp.o"
  "CMakeFiles/tamp_partition.dir/reorder.cpp.o.d"
  "CMakeFiles/tamp_partition.dir/repair.cpp.o"
  "CMakeFiles/tamp_partition.dir/repair.cpp.o.d"
  "CMakeFiles/tamp_partition.dir/sfc.cpp.o"
  "CMakeFiles/tamp_partition.dir/sfc.cpp.o.d"
  "CMakeFiles/tamp_partition.dir/strategy.cpp.o"
  "CMakeFiles/tamp_partition.dir/strategy.cpp.o.d"
  "libtamp_partition.a"
  "libtamp_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
