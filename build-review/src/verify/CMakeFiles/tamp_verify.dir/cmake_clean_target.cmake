file(REMOVE_RECURSE
  "libtamp_verify.a"
)
