# Empty dependencies file for tamp_verify.
# This may be replaced when dependencies are built.
