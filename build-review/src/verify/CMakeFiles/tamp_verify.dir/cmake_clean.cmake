file(REMOVE_RECURSE
  "CMakeFiles/tamp_verify.dir/access.cpp.o"
  "CMakeFiles/tamp_verify.dir/access.cpp.o.d"
  "CMakeFiles/tamp_verify.dir/graph_edit.cpp.o"
  "CMakeFiles/tamp_verify.dir/graph_edit.cpp.o.d"
  "CMakeFiles/tamp_verify.dir/reachability.cpp.o"
  "CMakeFiles/tamp_verify.dir/reachability.cpp.o.d"
  "CMakeFiles/tamp_verify.dir/verifier.cpp.o"
  "CMakeFiles/tamp_verify.dir/verifier.cpp.o.d"
  "libtamp_verify.a"
  "libtamp_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
