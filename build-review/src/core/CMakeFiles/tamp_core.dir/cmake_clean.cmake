file(REMOVE_RECURSE
  "CMakeFiles/tamp_core.dir/autotune.cpp.o"
  "CMakeFiles/tamp_core.dir/autotune.cpp.o.d"
  "CMakeFiles/tamp_core.dir/pipeline.cpp.o"
  "CMakeFiles/tamp_core.dir/pipeline.cpp.o.d"
  "libtamp_core.a"
  "libtamp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
