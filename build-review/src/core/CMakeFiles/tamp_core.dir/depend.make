# Empty dependencies file for tamp_core.
# This may be replaced when dependencies are built.
