file(REMOVE_RECURSE
  "libtamp_core.a"
)
