file(REMOVE_RECURSE
  "libtamp_runtime.a"
)
