# Empty dependencies file for tamp_runtime.
# This may be replaced when dependencies are built.
