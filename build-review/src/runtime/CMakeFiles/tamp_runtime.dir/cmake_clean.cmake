file(REMOVE_RECURSE
  "CMakeFiles/tamp_runtime.dir/perf_report.cpp.o"
  "CMakeFiles/tamp_runtime.dir/perf_report.cpp.o.d"
  "CMakeFiles/tamp_runtime.dir/runtime.cpp.o"
  "CMakeFiles/tamp_runtime.dir/runtime.cpp.o.d"
  "libtamp_runtime.a"
  "libtamp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
