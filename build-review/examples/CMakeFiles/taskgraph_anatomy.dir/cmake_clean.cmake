file(REMOVE_RECURSE
  "CMakeFiles/taskgraph_anatomy.dir/taskgraph_anatomy.cpp.o"
  "CMakeFiles/taskgraph_anatomy.dir/taskgraph_anatomy.cpp.o.d"
  "taskgraph_anatomy"
  "taskgraph_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskgraph_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
