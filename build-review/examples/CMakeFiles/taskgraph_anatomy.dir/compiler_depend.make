# Empty compiler generated dependencies file for taskgraph_anatomy.
# This may be replaced when dependencies are built.
