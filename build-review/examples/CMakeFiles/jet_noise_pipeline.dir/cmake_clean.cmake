file(REMOVE_RECURSE
  "CMakeFiles/jet_noise_pipeline.dir/jet_noise_pipeline.cpp.o"
  "CMakeFiles/jet_noise_pipeline.dir/jet_noise_pipeline.cpp.o.d"
  "jet_noise_pipeline"
  "jet_noise_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jet_noise_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
