# Empty dependencies file for jet_noise_pipeline.
# This may be replaced when dependencies are built.
