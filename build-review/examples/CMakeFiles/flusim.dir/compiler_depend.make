# Empty compiler generated dependencies file for flusim.
# This may be replaced when dependencies are built.
