file(REMOVE_RECURSE
  "CMakeFiles/flusim.dir/flusim.cpp.o"
  "CMakeFiles/flusim.dir/flusim.cpp.o.d"
  "flusim"
  "flusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
