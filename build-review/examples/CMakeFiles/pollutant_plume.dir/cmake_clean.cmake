file(REMOVE_RECURSE
  "CMakeFiles/pollutant_plume.dir/pollutant_plume.cpp.o"
  "CMakeFiles/pollutant_plume.dir/pollutant_plume.cpp.o.d"
  "pollutant_plume"
  "pollutant_plume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pollutant_plume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
