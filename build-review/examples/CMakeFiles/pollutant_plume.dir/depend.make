# Empty dependencies file for pollutant_plume.
# This may be replaced when dependencies are built.
