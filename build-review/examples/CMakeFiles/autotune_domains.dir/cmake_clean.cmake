file(REMOVE_RECURSE
  "CMakeFiles/autotune_domains.dir/autotune_domains.cpp.o"
  "CMakeFiles/autotune_domains.dir/autotune_domains.cpp.o.d"
  "autotune_domains"
  "autotune_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
