# Empty dependencies file for autotune_domains.
# This may be replaced when dependencies are built.
