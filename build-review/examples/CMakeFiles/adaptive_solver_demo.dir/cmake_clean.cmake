file(REMOVE_RECURSE
  "CMakeFiles/adaptive_solver_demo.dir/adaptive_solver_demo.cpp.o"
  "CMakeFiles/adaptive_solver_demo.dir/adaptive_solver_demo.cpp.o.d"
  "adaptive_solver_demo"
  "adaptive_solver_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_solver_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
