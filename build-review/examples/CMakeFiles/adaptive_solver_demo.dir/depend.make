# Empty dependencies file for adaptive_solver_demo.
# This may be replaced when dependencies are built.
