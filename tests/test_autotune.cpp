// Tests of the §IX automatic domain-granularity selection.
#include <gtest/gtest.h>

#include "core/autotune.hpp"

namespace tamp::core {
namespace {

mesh::Mesh small_mesh() {
  mesh::TestMeshSpec spec;
  spec.target_cells = 6000;
  return mesh::make_cylinder_mesh(spec);
}

TEST(Autotune, DefaultCandidatesArePowerOfTwoMultiples) {
  const auto m = small_mesh();
  AutotuneOptions opts;
  opts.nprocesses = 4;
  opts.max_multiplier = 8;
  const AutotuneResult r = suggest_domain_count(m, opts);
  ASSERT_EQ(r.sweep.size(), 4u);  // 4, 8, 16, 32
  EXPECT_EQ(r.sweep[0].ndomains, 4);
  EXPECT_EQ(r.sweep[1].ndomains, 8);
  EXPECT_EQ(r.sweep[2].ndomains, 16);
  EXPECT_EQ(r.sweep[3].ndomains, 32);
}

TEST(Autotune, BestIsSweepMinimum) {
  const auto m = small_mesh();
  AutotuneOptions opts;
  opts.nprocesses = 4;
  opts.max_multiplier = 16;
  const AutotuneResult r = suggest_domain_count(m, opts);
  simtime_t best = 0;
  for (const AutotuneRow& row : r.sweep) {
    if (row.ndomains == r.best_ndomains) best = row.makespan;
  }
  for (const AutotuneRow& row : r.sweep) EXPECT_GE(row.makespan, best);
}

TEST(Autotune, CommRaisesMakespanAboveIdeal) {
  const auto m = small_mesh();
  AutotuneOptions opts;
  opts.nprocesses = 4;
  opts.max_multiplier = 8;
  const AutotuneResult r = suggest_domain_count(m, opts);
  for (const AutotuneRow& row : r.sweep) {
    EXPECT_GE(row.makespan, row.ideal_makespan);
    EXPECT_GT(row.cross_process_edges, 0);
  }
}

TEST(Autotune, CommPenaltyCurbsOverDecomposition) {
  // Without overheads, finer is (weakly) always better; with realistic
  // per-task and communication charges the winner must not be the finest
  // candidate.
  const auto m = small_mesh();
  AutotuneOptions opts;
  opts.nprocesses = 4;
  opts.max_multiplier = 32;
  opts.comm.latency = 400.0;
  opts.comm.per_object = 0.2;
  opts.task_overhead = 40.0;
  const AutotuneResult heavy = suggest_domain_count(m, opts);
  EXPECT_LT(heavy.best_ndomains,
            heavy.sweep.back().ndomains);  // not the finest
  // Ideal (no-comm) makespans must still decrease monotonically-ish with
  // granularity: last ≤ first.
  EXPECT_LE(heavy.sweep.back().ideal_makespan,
            heavy.sweep.front().ideal_makespan);
}

TEST(Autotune, ExplicitCandidatesRespected) {
  const auto m = small_mesh();
  AutotuneOptions opts;
  opts.nprocesses = 2;
  opts.candidates = {6, 10};
  const AutotuneResult r = suggest_domain_count(m, opts);
  ASSERT_EQ(r.sweep.size(), 2u);
  EXPECT_EQ(r.sweep[0].ndomains, 6);
  EXPECT_EQ(r.sweep[1].ndomains, 10);
  EXPECT_TRUE(r.best_ndomains == 6 || r.best_ndomains == 10);
}

TEST(Autotune, WorksForBothStrategies) {
  const auto m = small_mesh();
  for (const auto strategy :
       {partition::Strategy::sc_oc, partition::Strategy::mc_tl}) {
    AutotuneOptions opts;
    opts.strategy = strategy;
    opts.nprocesses = 2;
    opts.max_multiplier = 4;
    const AutotuneResult r = suggest_domain_count(m, opts);
    EXPECT_GT(r.best_ndomains, 0);
  }
}

TEST(Autotune, SweepIsBitIdenticalAcrossPipelineModes) {
  // Regression for the synchronous-completion assumption: the sweep used
  // to read shared pipeline state while scoring, which broke as soon as
  // the next candidate's preparation ran concurrently. Every row is now a
  // pure function of (mesh, candidate, opts), so the overlapped sweep
  // must reproduce the sync sweep exactly — makespans bitwise included.
  const auto m = small_mesh();
  AutotuneOptions opts;
  opts.nprocesses = 4;
  opts.max_multiplier = 8;
  opts.pipeline = PipelineMode::sync;
  const AutotuneResult sync = suggest_domain_count(m, opts);
  for (const int threads : {2, 4}) {
    opts.pipeline = PipelineMode::overlap;
    opts.threads = threads;
    const AutotuneResult over = suggest_domain_count(m, opts);
    EXPECT_EQ(over.best_ndomains, sync.best_ndomains) << threads;
    ASSERT_EQ(over.sweep.size(), sync.sweep.size());
    for (std::size_t k = 0; k < sync.sweep.size(); ++k) {
      EXPECT_EQ(over.sweep[k].ndomains, sync.sweep[k].ndomains);
      EXPECT_EQ(over.sweep[k].makespan, sync.sweep[k].makespan) << k;
      EXPECT_EQ(over.sweep[k].ideal_makespan, sync.sweep[k].ideal_makespan);
      EXPECT_EQ(over.sweep[k].cross_process_edges,
                sync.sweep[k].cross_process_edges);
      EXPECT_EQ(over.sweep[k].occupancy, sync.sweep[k].occupancy);
    }
  }
}

TEST(Autotune, RejectsBadOptions) {
  const auto m = small_mesh();
  AutotuneOptions opts;
  opts.nprocesses = 0;
  EXPECT_THROW((void)suggest_domain_count(m, opts), precondition_error);
}

}  // namespace
}  // namespace tamp::core
