// Tests of the runtime flight recorder: ring wraparound and drop
// accounting, merged cross-worker streams, runtime integration, the
// measured-run doctor adapter, and the blame-shares-sum-to-idle-fraction
// property on *real* executions.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "obs/flight.hpp"
#include "runtime/runtime.hpp"
#include "sim/measured.hpp"
#include "sim/simulate.hpp"
#include "sim/trace_json.hpp"

namespace tamp {
namespace {

using obs::FlightEvent;
using obs::FlightEventKind;
using obs::FlightRecorder;
using obs::FlightRing;
using taskgraph::Task;
using taskgraph::TaskGraph;

FlightEvent ev(FlightEventKind kind, double t, std::int64_t a = -1,
               std::int64_t b = -1) {
  return FlightEvent{kind, t, a, b};
}

TEST(FlightRing, StoresEventsInOrderBelowCapacity) {
  FlightRing ring(8);
  for (int i = 0; i < 5; ++i)
    ring.push(ev(FlightEventKind::task_begin, 0.1 * i, i));
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(events[i].a, i);
}

TEST(FlightRing, WraparoundKeepsNewestAndCountsDrops) {
  FlightRing ring(4);
  for (int i = 0; i < 11; ++i)
    ring.push(ev(FlightEventKind::task_begin, 0.1 * i, i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 11u);
  EXPECT_EQ(ring.dropped(), 7u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Survivors are the 4 newest, oldest first.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[i].a, 7 + i);
}

TEST(FlightRing, SizePlusDroppedEqualsRecorded) {
  FlightRing ring(16);
  for (int i = 0; i < 1000; ++i)
    ring.push(ev(FlightEventKind::dep_release, 1e-3 * i));
  EXPECT_EQ(ring.size() + ring.dropped(), ring.total_recorded());
}

TEST(FlightRing, RejectsZeroCapacity) {
  EXPECT_THROW(FlightRing(0), std::invalid_argument);
}

TEST(FlightRecorder, RejectsNonPositiveWorkerCount) {
  EXPECT_THROW(FlightRecorder(0, 8), std::invalid_argument);
}

TEST(FlightRecorder, MergedStreamIsTimeSortedAndTagged) {
  FlightRecorder rec(3, 8);
  rec.ring(0).push(ev(FlightEventKind::task_begin, 0.3));
  rec.ring(1).push(ev(FlightEventKind::task_begin, 0.1));
  rec.ring(2).push(ev(FlightEventKind::task_begin, 0.2));
  rec.ring(1).push(ev(FlightEventKind::task_end, 0.4));
  const auto merged = rec.merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].worker, 1);
  EXPECT_EQ(merged[1].worker, 2);
  EXPECT_EQ(merged[2].worker, 0);
  EXPECT_EQ(merged[3].worker, 1);
  for (std::size_t i = 1; i < merged.size(); ++i)
    EXPECT_LE(merged[i - 1].event.t_seconds, merged[i].event.t_seconds);
}

TEST(FlightRecorder, TotalsAggregateOverRings) {
  FlightRecorder rec(2, 4);
  for (int i = 0; i < 6; ++i)
    rec.ring(0).push(ev(FlightEventKind::idle_begin, 0.1 * i));
  rec.ring(1).push(ev(FlightEventKind::idle_end, 0.05));
  EXPECT_EQ(rec.total_recorded(), 7u);
  EXPECT_EQ(rec.total_dropped(), 2u);
  EXPECT_EQ(rec.memory_bytes(), 2 * 4 * sizeof(FlightEvent));
}

TEST(FlightSummary, CountsKindsAndPairsIdleIntervals) {
  FlightRecorder rec(1, 16);
  FlightRing& ring = rec.ring(0);
  ring.push(ev(FlightEventKind::idle_begin, 0.0));
  ring.push(ev(FlightEventKind::idle_end, 0.5));
  ring.push(ev(FlightEventKind::steal_attempt, 0.6, 1));
  ring.push(ev(FlightEventKind::steal_attempt, 0.7, 1));
  ring.push(ev(FlightEventKind::steal_success, 0.7, 1));
  ring.push(ev(FlightEventKind::idle_begin, 0.8));
  ring.push(ev(FlightEventKind::idle_end, 1.0));
  const obs::FlightSummary s = obs::summarize(rec);
  EXPECT_EQ(s.events, 7u);
  EXPECT_EQ(s.count(FlightEventKind::idle_begin), 2u);
  EXPECT_EQ(s.count(FlightEventKind::steal_attempt), 2u);
  EXPECT_DOUBLE_EQ(s.steal_success_rate, 0.5);
  EXPECT_NEAR(s.idle_seconds, 0.7, 1e-12);
}

// --- runtime integration ---------------------------------------------------

TaskGraph make_graph(const std::vector<part_t>& domains,
                     const std::vector<index_t>& subiterations,
                     const std::vector<std::vector<index_t>>& deps) {
  std::vector<Task> tasks(domains.size());
  for (std::size_t i = 0; i < domains.size(); ++i) {
    tasks[i].domain = domains[i];
    tasks[i].subiteration = subiterations.empty() ? 0 : subiterations[i];
    tasks[i].cost = 1 + static_cast<simtime_t>(i % 3);
    tasks[i].num_objects = 1;
  }
  return TaskGraph(std::move(tasks), deps);
}

/// Diamond over two processes with two subiterations — enough structure
/// for dependency releases, idle windows and cross-process waits.
TaskGraph diamond2p() {
  return make_graph({0, 0, 1, 1, 0, 1}, {0, 0, 0, 1, 1, 1},
                    {{}, {0}, {0}, {1, 2}, {3}, {3}});
}

#if defined(TAMP_TRACING_ENABLED)

runtime::ExecutionReport run_recorded(const TaskGraph& g,
                                      std::size_t ring_capacity =
                                          FlightRecorder::kDefaultRingCapacity) {
  runtime::RuntimeConfig cfg;
  cfg.num_processes = 2;
  cfg.workers_per_process = 2;
  cfg.flight.enabled = true;
  cfg.flight.ring_capacity = ring_capacity;
  return runtime::execute(g, {0, 1}, cfg,
                          runtime::make_synthetic_body(g, 2e-5));
}

TEST(FlightRuntime, RecordsLifecycleEventsForEveryTask) {
  const TaskGraph g = diamond2p();
  const runtime::ExecutionReport rep = run_recorded(g);
  ASSERT_NE(rep.flight, nullptr);
  EXPECT_EQ(rep.flight->num_workers(), 4);
  EXPECT_EQ(rep.flight->total_dropped(), 0u);
  const obs::FlightSummary s = obs::summarize(*rep.flight);
  EXPECT_EQ(s.count(FlightEventKind::task_dequeue), 6u);
  EXPECT_EQ(s.count(FlightEventKind::task_begin), 6u);
  EXPECT_EQ(s.count(FlightEventKind::task_end), 6u);
  // Every non-source task's pending counter was released exactly once by
  // its last-finishing predecessor.
  EXPECT_EQ(s.count(FlightEventKind::dep_release), 5u);
}

TEST(FlightRuntime, EventsCarryTaskIdsAndLineUpWithSpans) {
  const TaskGraph g = diamond2p();
  const runtime::ExecutionReport rep = run_recorded(g);
  ASSERT_NE(rep.flight, nullptr);
  std::vector<int> begins(6, 0);
  for (const obs::WorkerFlightEvent& we : rep.flight->merged()) {
    if (we.event.kind != FlightEventKind::task_begin) continue;
    ASSERT_GE(we.event.a, 0);
    ASSERT_LT(we.event.a, 6);
    const auto& span = rep.spans[static_cast<std::size_t>(we.event.a)];
    // The begin event is stamped with the span's own start time.
    EXPECT_DOUBLE_EQ(we.event.t_seconds, span.start);
    ++begins[static_cast<std::size_t>(we.event.a)];
  }
  for (const int n : begins) EXPECT_EQ(n, 1);
}

TEST(FlightRuntime, TinyRingsDropButKeepAccounting) {
  const TaskGraph g = diamond2p();
  const runtime::ExecutionReport rep = run_recorded(g, /*ring_capacity=*/2);
  ASSERT_NE(rep.flight, nullptr);
  const obs::FlightSummary s = obs::summarize(*rep.flight);
  EXPECT_EQ(s.events + s.dropped, s.recorded);
  EXPECT_GT(s.dropped, 0u);
  for (int w = 0; w < rep.flight->num_workers(); ++w)
    EXPECT_LE(rep.flight->ring(w).size(), 2u);
}

TEST(FlightRuntime, DisabledConfigRecordsNothing) {
  const TaskGraph g = diamond2p();
  runtime::RuntimeConfig cfg;
  cfg.num_processes = 2;
  cfg.workers_per_process = 2;
  const runtime::ExecutionReport rep =
      runtime::execute(g, {0, 1}, cfg, [](index_t) {});
  EXPECT_EQ(rep.flight, nullptr);
}

#endif  // TAMP_TRACING_ENABLED

// --- measured-run doctor ---------------------------------------------------

TEST(Measured, AdapterPreservesSpansAndCapacity) {
  const TaskGraph g = diamond2p();
  runtime::RuntimeConfig cfg;
  cfg.num_processes = 2;
  cfg.workers_per_process = 2;
  const runtime::ExecutionReport rep =
      runtime::execute(g, {0, 1}, cfg, runtime::make_synthetic_body(g, 2e-5));
  const sim::SimResult sr = sim::to_sim_result(rep);
  ASSERT_EQ(sr.timing.size(), 6u);
  EXPECT_EQ(sr.num_processes, 2);
  ASSERT_EQ(sr.workers_used.size(), 2u);
  EXPECT_EQ(sr.workers_used[0], 2);
  EXPECT_GE(sr.makespan, rep.wall_seconds);
  for (std::size_t t = 0; t < 6; ++t) {
    EXPECT_DOUBLE_EQ(sr.timing[t].start, rep.spans[t].start);
    EXPECT_DOUBLE_EQ(sr.timing[t].end, rep.spans[t].end);
    EXPECT_EQ(sr.timing[t].process, rep.spans[t].process);
    EXPECT_EQ(sr.timing[t].worker, rep.spans[t].worker);
  }
}

TEST(Measured, BlameSharesSumExactlyToIdleFraction) {
  // The property the doctor's accounting promises, now on a *measured*
  // execution: for every process, the three blame shares sum to its idle
  // fraction (window-sliced attribution loses nothing).
  const TaskGraph g = diamond2p();
  runtime::RuntimeConfig cfg;
  cfg.num_processes = 2;
  cfg.workers_per_process = 2;
  const runtime::ExecutionReport rep =
      runtime::execute(g, {0, 1}, cfg, runtime::make_synthetic_body(g, 5e-5));
  const sim::SimResult sr = sim::to_sim_result(rep);
  const sim::DoctorReport doc = sim::diagnose_measured(g, rep);
  for (part_t p = 0; p < 2; ++p) {
    const double sum =
        doc.blame.share(p, sim::IdleCause::dependency_wait) +
        doc.blame.share(p, sim::IdleCause::starvation) +
        doc.blame.share(p, sim::IdleCause::tail_imbalance);
    EXPECT_NEAR(sum, sr.idle_fraction(p), 1e-9);
  }
}

TEST(Measured, DivergenceOfSimAgainstItselfIsZero) {
  // Fabricate a "measured" report that replays the simulated schedule at
  // a fixed seconds-per-unit: every divergence metric must vanish.
  const TaskGraph g = diamond2p();
  sim::SimOptions opts;
  opts.cluster.num_processes = 2;
  opts.cluster.workers_per_process = 2;
  const sim::SimResult sr = sim::simulate(g, {0, 1}, opts);
  const double spu = 1e-4;
  runtime::ExecutionReport rep;
  rep.num_processes = 2;
  rep.workers_per_process = 2;
  rep.wall_seconds = sr.makespan * spu;
  for (const sim::TaskTiming& t : sr.timing) {
    runtime::ExecutionReport::Span span;
    span.start = t.start * spu;
    span.end = t.end * spu;
    span.process = t.process;
    span.worker = t.worker;
    rep.spans.push_back(span);
  }
  const sim::DivergenceReport d = sim::compare_sim_to_measured(g, sr, rep, spu);
  EXPECT_NEAR(d.rel_makespan_gap, 0.0, 1e-9);
  EXPECT_NEAR(d.idle_share_gap, 0.0, 1e-9);
  EXPECT_NEAR(d.max_abs_idle_gap, 0.0, 1e-9);
  EXPECT_NEAR(d.max_abs_rel_window_gap, 0.0, 1e-9);
  ASSERT_FALSE(d.subiterations.empty());
}

TEST(Measured, DivergenceAutoCalibratesSecondsPerUnit) {
  const TaskGraph g = diamond2p();
  sim::SimOptions opts;
  opts.cluster.num_processes = 2;
  opts.cluster.workers_per_process = 2;
  const sim::SimResult sr = sim::simulate(g, {0, 1}, opts);
  runtime::RuntimeConfig cfg;
  cfg.num_processes = 2;
  cfg.workers_per_process = 2;
  const runtime::ExecutionReport rep =
      runtime::execute(g, {0, 1}, cfg, runtime::make_synthetic_body(g, 2e-5));
  const sim::DivergenceReport d = sim::compare_sim_to_measured(g, sr, rep);
  EXPECT_GT(d.seconds_per_unit, 0.0);
  EXPECT_GT(d.sim_makespan_seconds, 0.0);
}

TEST(FlightTrace, MergedExporterRendersCounterTracks) {
  // Synthetic recorder: runtime::execute never steals (shared per-process
  // queue), so the steal tracks are pinned here with hand-made events.
  const TaskGraph g = make_graph({0, 0}, {}, {{}, {0}});
  auto rec = std::make_shared<obs::FlightRecorder>(1, 16);
  using K = FlightEventKind;
  rec->ring(0).push({K::task_dequeue, 0.0, 0, 2});
  rec->ring(0).push({K::idle_begin, 0.15, -1, -1});
  rec->ring(0).push({K::steal_attempt, 0.2, 0, -1});
  rec->ring(0).push({K::steal_success, 0.25, 0, -1});
  rec->ring(0).push({K::idle_end, 0.3, -1, -1});
  rec->ring(0).push({K::task_dequeue, 0.4, 1, 0});

  runtime::ExecutionReport rep;
  rep.num_processes = 1;
  rep.workers_per_process = 1;
  rep.wall_seconds = 0.5;
  rep.spans = {{0.0, 0.1, 0, 0}, {0.4, 0.5, 0, 0}};
  rep.flight = rec;

  const std::string trace = sim::to_chrome_trace_merged(g, rep);
  EXPECT_NE(trace.find(R"("name":"ready_queue","ph":"C")"),
            std::string::npos);
  EXPECT_NE(trace.find(R"("name":"idle_workers","ph":"C")"),
            std::string::npos);
  EXPECT_NE(trace.find(R"("name":"steals","ph":"C")"), std::string::npos);
  EXPECT_NE(trace.find(R"("attempts":1,"successes":0)"), std::string::npos);
  EXPECT_NE(trace.find(R"("attempts":1,"successes":1)"), std::string::npos);
  EXPECT_NE(trace.find(R"("name":"steals_inflight","ph":"C")"),
            std::string::npos);
  // Queue depth samples carry the recorded post-dequeue depths.
  EXPECT_NE(trace.find(R"("args":{"depth":2})"), std::string::npos);
  EXPECT_NE(trace.find(R"("args":{"depth":0})"), std::string::npos);
}

}  // namespace
}  // namespace tamp
