// Unit tests of the race-verifier machinery: access recording,
// interval reachability (against brute force), the happens-before
// checker on hand-built conflicts, and the graph-surgery helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "support/rng.hpp"
#include "verify/graph_edit.hpp"
#include "verify/reachability.hpp"
#include "verify/verifier.hpp"

namespace tamp::verify {
namespace {

using taskgraph::Task;
using taskgraph::TaskGraph;

TaskGraph make_graph(index_t n, const std::vector<std::vector<index_t>>& deps) {
  std::vector<Task> tasks(static_cast<std::size_t>(n));
  for (auto& t : tasks) {
    t.domain = 0;
    t.cost = 1;
    t.num_objects = 1;
  }
  return TaskGraph(std::move(tasks), deps);
}

// --- access recording ---------------------------------------------------------

TEST(AccessLog, RecordsAreTaggedWithTheScopedTask) {
  AccessLog log(3);
  {
    const TaskRecordScope scope(log, 1);
    record_write(ObjectKind::cell_state, 7);
    record_read(ObjectKind::face_acc_side0, 9);
  }
  {
    const TaskRecordScope scope(log, 2);
    record_write(ObjectKind::cell_state, 7);
  }
  const std::vector<Access> merged = log.merged();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_TRUE(std::count(merged.begin(), merged.end(),
                         Access{1, 7, ObjectKind::cell_state,
                                AccessMode::write}) == 1);
  EXPECT_TRUE(std::count(merged.begin(), merged.end(),
                         Access{1, 9, ObjectKind::face_acc_side0,
                                AccessMode::read}) == 1);
  EXPECT_TRUE(std::count(merged.begin(), merged.end(),
                         Access{2, 7, ObjectKind::cell_state,
                                AccessMode::write}) == 1);
}

TEST(AccessLog, RecordingIsDisabledOutsideAScope) {
  AccessLog log(1);
  EXPECT_FALSE(recording_active());
  record_write(ObjectKind::cell_state, 0);  // must be a no-op
  {
    const TaskRecordScope scope(log, 0);
    EXPECT_TRUE(recording_active());
  }
  EXPECT_FALSE(recording_active());
  record_read(ObjectKind::cell_state, 0);  // no-op again
  EXPECT_EQ(log.num_records(), 0u);
}

TEST(AccessLog, ScopesNestAndRestore) {
  AccessLog outer(2), inner(2);
  const TaskRecordScope a(outer, 0);
  {
    const TaskRecordScope b(inner, 1);
    record_write(ObjectKind::cell_state, 5);
  }
  record_write(ObjectKind::cell_state, 6);
  ASSERT_EQ(inner.merged().size(), 1u);
  EXPECT_EQ(inner.merged()[0].task, 1);
  EXPECT_EQ(inner.merged()[0].object, 5);
  ASSERT_EQ(outer.merged().size(), 1u);
  EXPECT_EQ(outer.merged()[0].task, 0);
  EXPECT_EQ(outer.merged()[0].object, 6);
}

TEST(AccessLog, MergedDeduplicatesButKeepsReadAndWrite) {
  AccessLog log(1);
  const TaskRecordScope scope(log, 0);
  for (int i = 0; i < 5; ++i) record_write(ObjectKind::face_acc_side1, 3);
  record_read(ObjectKind::face_acc_side1, 3);
  EXPECT_EQ(log.num_records(), 6u);
  const std::vector<Access> merged = log.merged();
  ASSERT_EQ(merged.size(), 2u);  // one read + one write survive
  EXPECT_NE(merged[0].mode, merged[1].mode);
}

TEST(AccessLog, RangeRecordsExpandToPerObjectAccesses) {
  // One range record is one buffer entry but merges to its objects'
  // per-object accesses — exactly what per-object recording would have
  // produced (dedup included).
  AccessLog ranged(2), scalar(2);
  {
    const TaskRecordScope scope(ranged, 0);
    record_write_range(ObjectKind::cell_state, 4, 8);
    record_read_range(ObjectKind::face_acc_side0, 2, 4);
    record_write_range(ObjectKind::cell_state, 6, 10);  // overlaps the first
  }
  EXPECT_EQ(ranged.num_records(), 3u);
  {
    const TaskRecordScope scope(scalar, 0);
    for (index_t o = 4; o < 10; ++o) record_write(ObjectKind::cell_state, o);
    for (index_t o = 2; o < 4; ++o) record_read(ObjectKind::face_acc_side0, o);
  }
  EXPECT_EQ(ranged.merged(), scalar.merged());
}

TEST(AccessLog, EmptyRangeIsDropped) {
  AccessLog log(1);
  {
    const TaskRecordScope scope(log, 0);
    record_write_range(ObjectKind::cell_state, 5, 5);
    record_read_range(ObjectKind::cell_state, 7, 3);
  }
  EXPECT_EQ(log.num_records(), 0u);
  EXPECT_TRUE(log.merged().empty());
}

TEST(AccessLog, RangeRecordingIsDisabledOutsideAScope) {
  AccessLog log(1);
  record_write_range(ObjectKind::cell_state, 0, 4);  // must be a no-op
  {
    const TaskRecordScope scope(log, 0);
    record_write_range(ObjectKind::cell_state, 0, 2);
  }
  record_write_range(ObjectKind::cell_state, 2, 4);  // scope gone again
  EXPECT_EQ(log.merged().size(), 2u);
}

TEST(CheckRaces, RangeAndScalarRecordsConflictAcrossTasks) {
  // Task 0 writes [0,4) as a range, task 1 writes object 2 per-object;
  // no dependency orders them, so the checker must flag the pair.
  const TaskGraph g = make_graph(2, {{}, {}});
  AccessLog log(2);
  {
    const TaskRecordScope scope(log, 0);
    record_write_range(ObjectKind::cell_state, 0, 4);
  }
  {
    const TaskRecordScope scope(log, 1);
    record_write(ObjectKind::cell_state, 2);
  }
  const RaceReport report = check_races(g, log);
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.conflicts[0].object, 2);
}

TEST(AccessLog, BuffersArePerThreadAndPerLog) {
  AccessLog log(4);
  std::vector<std::thread> threads;
  for (index_t t = 0; t < 4; ++t)
    threads.emplace_back([&log, t] {
      const TaskRecordScope scope(log, t);
      record_write(ObjectKind::cell_state, t);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.num_worker_buffers(), 4u);
  EXPECT_EQ(log.merged().size(), 4u);
  // A second log on this thread gets a fresh buffer, not the stale cache.
  AccessLog other(1);
  {
    const TaskRecordScope scope(other, 0);
    record_read(ObjectKind::cell_state, 0);
  }
  EXPECT_EQ(other.merged().size(), 1u);
  EXPECT_EQ(log.merged().size(), 4u);
}

TEST(AccessLog, InstrumentTagsEachTask) {
  const TaskGraph g = make_graph(3, {{}, {0}, {1}});
  AccessLog log(3);
  const runtime::TaskBody body = instrument(
      [](index_t t) { record_write(ObjectKind::cell_state, t * 10); }, log);
  for (index_t t = 0; t < 3; ++t) body(t);
  const std::vector<Access> merged = log.merged();
  ASSERT_EQ(merged.size(), 3u);
  for (const Access& a : merged) EXPECT_EQ(a.object, a.task * 10);
}

TEST(AccessLog, RejectsOutOfRangeTask) {
  AccessLog log(2);
  EXPECT_THROW(TaskRecordScope(log, 2), precondition_error);
  EXPECT_THROW(TaskRecordScope(log, -1), precondition_error);
}

// --- reachability ------------------------------------------------------------

TEST(Reachability, HandBuiltDiamond) {
  //    0 -> 1 -> 3
  //    0 -> 2 -> 3     4 isolated
  const TaskGraph g = make_graph(5, {{}, {0}, {0}, {1, 2}, {}});
  const Reachability r(g);
  EXPECT_TRUE(r.reachable(0, 1));
  EXPECT_TRUE(r.reachable(0, 3));
  EXPECT_TRUE(r.reachable(1, 3));
  EXPECT_TRUE(r.reachable(2, 3));
  EXPECT_FALSE(r.reachable(1, 2));
  EXPECT_FALSE(r.reachable(2, 1));
  EXPECT_FALSE(r.reachable(3, 0));
  EXPECT_FALSE(r.reachable(0, 0));  // strict: no empty path
  for (index_t t = 0; t < 4; ++t) {
    EXPECT_FALSE(r.reachable(4, t));
    EXPECT_FALSE(r.reachable(t, 4));
  }
}

TEST(Reachability, MatchesBruteForceOnRandomDags) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    Rng rng(seed);
    const index_t n = 30 + static_cast<index_t>(rng.below(30));
    std::vector<std::vector<index_t>> deps(static_cast<std::size_t>(n));
    for (index_t j = 1; j < n; ++j)
      for (index_t i = 0; i < j; ++i)
        if (rng.below(100) < 8) deps[static_cast<std::size_t>(j)].push_back(i);
    const TaskGraph g = make_graph(n, deps);

    // Brute force: DAG transitive closure in dependency order.
    std::vector<std::vector<char>> closure(
        static_cast<std::size_t>(n),
        std::vector<char>(static_cast<std::size_t>(n), 0));
    for (index_t j = 0; j < n; ++j)
      for (const index_t i : g.predecessors(j)) {
        closure[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = 1;
        for (index_t k = 0; k < n; ++k)
          if (closure[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)])
            closure[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] =
                1;
      }

    const Reachability r(g, 2, seed);
    for (index_t u = 0; u < n; ++u)
      for (index_t v = 0; v < n; ++v)
        EXPECT_EQ(r.reachable(u, v),
                  closure[static_cast<std::size_t>(u)]
                         [static_cast<std::size_t>(v)] != 0)
            << "seed " << seed << " pair " << u << " -> " << v;
  }
}

TEST(Reachability, CountsQueries) {
  const TaskGraph g = make_graph(3, {{}, {0}, {1}});
  const Reachability r(g);
  (void)r.reachable(0, 2);
  (void)r.reachable(2, 0);
  EXPECT_EQ(r.queries(), 2u);
  EXPECT_LE(r.dfs_fallbacks(), r.queries());
}

// --- happens-before checker --------------------------------------------------

TEST(CheckRaces, UnorderedWriteWriteIsFlagged) {
  // 1 and 2 both depend on 0 but not on each other.
  const TaskGraph g = make_graph(3, {{}, {0}, {0}});
  AccessLog log(3);
  {
    const TaskRecordScope s(log, 1);
    record_write(ObjectKind::cell_state, 4);
    record_write(ObjectKind::cell_state, 5);
  }
  {
    const TaskRecordScope s(log, 2);
    record_write(ObjectKind::cell_state, 4);
    record_write(ObjectKind::cell_state, 5);
  }
  const RaceReport report = check_races(g, log);
  ASSERT_EQ(report.conflicts.size(), 1u);  // aggregated over both objects
  const Conflict& c = report.conflicts[0];
  EXPECT_EQ(c.first, 1);
  EXPECT_EQ(c.second, 2);
  EXPECT_EQ(c.kind, ObjectKind::cell_state);
  EXPECT_EQ(c.occurrences, 2);
  EXPECT_TRUE(c.object == 4 || c.object == 5);
  EXPECT_FALSE(report.clean());
}

TEST(CheckRaces, UnorderedReadWriteIsFlagged) {
  const TaskGraph g = make_graph(2, {{}, {}});
  AccessLog log(2);
  {
    const TaskRecordScope s(log, 0);
    record_read(ObjectKind::face_acc_side0, 1);
  }
  {
    const TaskRecordScope s(log, 1);
    record_write(ObjectKind::face_acc_side0, 1);
  }
  const RaceReport report = check_races(g, log);
  ASSERT_EQ(report.conflicts.size(), 1u);
  EXPECT_EQ(report.conflicts[0].kind, ObjectKind::face_acc_side0);
}

TEST(CheckRaces, OrderedConflictIsClean) {
  const TaskGraph g = make_graph(3, {{}, {0}, {1}});
  AccessLog log(3);
  {
    const TaskRecordScope s(log, 0);
    record_write(ObjectKind::cell_state, 0);
  }
  {
    const TaskRecordScope s(log, 2);  // ordered via 0 -> 1 -> 2
    record_write(ObjectKind::cell_state, 0);
  }
  const RaceReport report = check_races(g, log);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.pairs_checked, 0u);
}

TEST(CheckRaces, ReadReadIsNotAConflict) {
  const TaskGraph g = make_graph(2, {{}, {}});
  AccessLog log(2);
  {
    const TaskRecordScope s(log, 0);
    record_read(ObjectKind::cell_state, 3);
  }
  {
    const TaskRecordScope s(log, 1);
    record_read(ObjectKind::cell_state, 3);
  }
  EXPECT_TRUE(check_races(g, log).clean());
}

TEST(CheckRaces, EmptyLogAndEmptyGraphAreClean) {
  const TaskGraph g = make_graph(2, {{}, {}});
  const AccessLog log(2);
  EXPECT_TRUE(check_races(g, log).clean());
  const TaskGraph empty = make_graph(0, {});
  const AccessLog empty_log(0);
  EXPECT_TRUE(check_races(empty, empty_log).clean());
}

TEST(CheckRaces, MismatchedLogIsRejected) {
  const TaskGraph g = make_graph(2, {{}, {}});
  const AccessLog log(3);
  EXPECT_THROW((void)check_races(g, log), precondition_error);
}

TEST(CheckRaces, SummaryNamesTasksAndTheMissingEdge) {
  const TaskGraph g = make_graph(2, {{}, {}});
  AccessLog log(2);
  {
    const TaskRecordScope s(log, 0);
    record_write(ObjectKind::face_acc_side1, 8);
  }
  {
    const TaskRecordScope s(log, 1);
    record_write(ObjectKind::face_acc_side1, 8);
  }
  const RaceReport report = check_races(g, log);
  const std::string text = report.summary(g);
  EXPECT_NE(text.find("missing edge"), std::string::npos);
  EXPECT_NE(text.find("t0"), std::string::npos);
  EXPECT_NE(text.find("t1"), std::string::npos);
  EXPECT_NE(text.find(to_string(ObjectKind::face_acc_side1)),
            std::string::npos);
}

TEST(CheckRaces, CollectSerialVisitsEveryTaskInTopoOrder) {
  const TaskGraph g = make_graph(4, {{}, {0}, {0}, {1, 2}});
  AccessLog log(4);
  std::vector<index_t> order;
  collect_serial(
      g,
      [&](index_t t) {
        order.push_back(t);
        record_write(ObjectKind::cell_state, t);
      },
      log);
  ASSERT_EQ(order.size(), 4u);
  std::vector<index_t> pos(4);
  for (index_t i = 0; i < 4; ++i)
    pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  for (index_t t = 0; t < 4; ++t)
    for (const index_t p : g.predecessors(t))
      EXPECT_LT(pos[static_cast<std::size_t>(p)],
                pos[static_cast<std::size_t>(t)]);
  EXPECT_EQ(log.merged().size(), 4u);
}

// --- graph surgery -----------------------------------------------------------

TEST(GraphEdit, DependencyEdgesListsEveryEdgeOnce) {
  const TaskGraph g = make_graph(4, {{}, {0}, {0}, {1, 2}});
  auto edges = dependency_edges(g);
  std::sort(edges.begin(), edges.end());
  const std::vector<std::pair<index_t, index_t>> expected{
      {0, 1}, {0, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(edges, expected);
}

TEST(GraphEdit, RemoveDependencyDropsExactlyOneEdge) {
  const TaskGraph g = make_graph(4, {{}, {0}, {0}, {1, 2}});
  const TaskGraph cut = remove_dependency(g, 1, 3);
  EXPECT_EQ(cut.num_tasks(), g.num_tasks());
  EXPECT_EQ(cut.num_dependencies(), g.num_dependencies() - 1);
  auto edges = dependency_edges(cut);
  std::sort(edges.begin(), edges.end());
  const std::vector<std::pair<index_t, index_t>> expected{
      {0, 1}, {0, 2}, {2, 3}};
  EXPECT_EQ(edges, expected);
  // The cut pair is now unordered.
  const Reachability r(cut);
  EXPECT_FALSE(r.reachable(1, 3));
}

TEST(GraphEdit, RemoveDependencyRejectsMissingEdge) {
  const TaskGraph g = make_graph(3, {{}, {0}, {1}});
  EXPECT_THROW((void)remove_dependency(g, 0, 2), precondition_error);
}

TEST(GraphEdit, FilterTasksKeepsInducedEdges) {
  //  0 -> 1 -> 2 -> 3, plus 0 -> 3. Keep {0, 1, 3}.
  const TaskGraph g = make_graph(4, {{}, {0}, {1}, {2, 0}});
  const InducedSubgraph sub = filter_tasks(g, {1, 1, 0, 1});
  ASSERT_EQ(sub.graph.num_tasks(), 3);
  EXPECT_EQ(sub.original_task, (std::vector<index_t>{0, 1, 3}));
  auto edges = dependency_edges(sub.graph);
  std::sort(edges.begin(), edges.end());
  // 0->1 survives, 0->3 becomes 0->2; the path through dropped task 2
  // disappears (the slicer never drops interior path nodes in practice).
  const std::vector<std::pair<index_t, index_t>> expected{{0, 1}, {0, 2}};
  EXPECT_EQ(edges, expected);
}

}  // namespace
}  // namespace tamp::verify
