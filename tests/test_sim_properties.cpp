// Property sweeps over the discrete-event simulator on randomly generated
// DAGs: scheduling-theory bounds and accounting identities must hold for
// every policy and cluster shape.
#include <gtest/gtest.h>

#include "sim/simulate.hpp"
#include "support/rng.hpp"

namespace tamp::sim {
namespace {

using taskgraph::Task;
using taskgraph::TaskGraph;

/// Random layered DAG: `layers` layers of up to `width` tasks; each task
/// depends on a random subset of the previous layer; random costs and
/// domain assignment.
TaskGraph random_dag(Rng& rng, int layers, int width, part_t ndomains) {
  std::vector<Task> tasks;
  std::vector<std::vector<index_t>> deps;
  std::vector<index_t> prev_layer;
  for (int l = 0; l < layers; ++l) {
    const int count = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(width)));
    std::vector<index_t> layer;
    for (int i = 0; i < count; ++i) {
      Task t;
      t.cost = 1.0 + static_cast<double>(rng.below(20));
      t.domain = static_cast<part_t>(rng.below(static_cast<std::uint64_t>(ndomains)));
      t.num_objects = 1 + static_cast<index_t>(rng.below(50));
      t.subiteration = l;
      std::vector<index_t> dep;
      for (const index_t p : prev_layer)
        if (rng.below(3) == 0) dep.push_back(p);
      // Keep the graph connected-ish: always depend on one predecessor.
      if (dep.empty() && !prev_layer.empty())
        dep.push_back(prev_layer[static_cast<std::size_t>(
            rng.below(prev_layer.size()))]);
      layer.push_back(static_cast<index_t>(tasks.size()));
      tasks.push_back(t);
      deps.push_back(std::move(dep));
    }
    prev_layer = std::move(layer);
  }
  return TaskGraph(std::move(tasks), deps);
}

struct Case {
  std::uint64_t seed;
  part_t nprocesses;
  int workers;
  Policy policy;
};

class SimProperty : public testing::TestWithParam<Case> {};

TEST_P(SimProperty, SchedulingBoundsAndAccounting) {
  const Case& c = GetParam();
  Rng rng(c.seed);
  const part_t ndomains = c.nprocesses * 3;
  const TaskGraph g = random_dag(rng, 8, 12, ndomains);
  std::vector<part_t> d2p(static_cast<std::size_t>(ndomains));
  for (part_t d = 0; d < ndomains; ++d)
    d2p[static_cast<std::size_t>(d)] = d % c.nprocesses;

  SimOptions opts;
  opts.cluster.num_processes = c.nprocesses;
  opts.cluster.workers_per_process = c.workers;
  opts.policy = c.policy;
  opts.seed = c.seed;
  const SimResult r = simulate(g, d2p, opts);

  // 1. Makespan within [critical path, serial time].
  EXPECT_GE(r.makespan, g.critical_path() - 1e-9);
  EXPECT_LE(r.makespan, g.total_work() + 1e-9);
  // 2. Work conservation.
  simtime_t busy = 0;
  for (const simtime_t b : r.busy_per_process) busy += b;
  EXPECT_NEAR(busy, g.total_work(), 1e-9);
  // 3. Dependencies respected; tasks on their pinned process; no worker
  //    double-booked.
  for (index_t t = 0; t < g.num_tasks(); ++t) {
    const TaskTiming& tt = r.timing[static_cast<std::size_t>(t)];
    EXPECT_EQ(tt.process,
              d2p[static_cast<std::size_t>(g.task(t).domain)]);
    EXPECT_NEAR(tt.end - tt.start, g.task(t).cost, 1e-12);
    for (const index_t p : g.predecessors(t))
      EXPECT_GE(tt.start, r.timing[static_cast<std::size_t>(p)].end - 1e-12);
  }
  std::vector<std::vector<std::pair<simtime_t, simtime_t>>> by_worker;
  for (index_t t = 0; t < g.num_tasks(); ++t) {
    const TaskTiming& tt = r.timing[static_cast<std::size_t>(t)];
    const std::size_t key = static_cast<std::size_t>(tt.process) * 64 +
                            static_cast<std::size_t>(tt.worker);
    if (by_worker.size() <= key) by_worker.resize(key + 1);
    by_worker[key].emplace_back(tt.start, tt.end);
  }
  for (auto& spans : by_worker) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 0; i + 1 < spans.size(); ++i)
      EXPECT_LE(spans[i].second, spans[i + 1].first + 1e-12)
          << "worker double-booked";
  }
}

TEST_P(SimProperty, UnboundedNeverSlower) {
  const Case& c = GetParam();
  Rng rng(c.seed ^ 0xabcdef);
  const TaskGraph g = random_dag(rng, 6, 10, c.nprocesses);
  std::vector<part_t> d2p(static_cast<std::size_t>(c.nprocesses));
  for (part_t d = 0; d < c.nprocesses; ++d) d2p[static_cast<std::size_t>(d)] = d;

  SimOptions bounded;
  bounded.cluster.num_processes = c.nprocesses;
  bounded.cluster.workers_per_process = c.workers;
  bounded.policy = c.policy;
  SimOptions unbounded = bounded;
  unbounded.cluster.workers_per_process = 0;
  EXPECT_LE(simulate(g, d2p, unbounded).makespan,
            simulate(g, d2p, bounded).makespan + 1e-9);
}

TEST_P(SimProperty, CommDelayNeverHelpsOnUnboundedCores) {
  // With unbounded workers each start time is max over predecessors of
  // (finish + delay), which is monotone in the delays — so extra latency
  // can never shorten the schedule. (With bounded workers Graham
  // scheduling anomalies make this non-theorematic, so we assert the
  // rigorous case.)
  const Case& c = GetParam();
  Rng rng(c.seed ^ 0x1234);
  const TaskGraph g = random_dag(rng, 6, 8, c.nprocesses * 2);
  std::vector<part_t> d2p(static_cast<std::size_t>(c.nprocesses) * 2);
  for (std::size_t d = 0; d < d2p.size(); ++d)
    d2p[d] = static_cast<part_t>(d) % c.nprocesses;

  SimOptions ideal;
  ideal.cluster.num_processes = c.nprocesses;
  ideal.cluster.workers_per_process = 0;  // unbounded
  ideal.policy = c.policy;
  SimOptions comm = ideal;
  comm.comm.latency = 7.5;
  comm.comm.per_object = 0.05;
  EXPECT_GE(simulate(g, d2p, comm).makespan,
            simulate(g, d2p, ideal).makespan - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimProperty,
    testing::Values(Case{1, 1, 1, Policy::eager_fifo},
                    Case{2, 2, 2, Policy::eager_fifo},
                    Case{3, 4, 2, Policy::eager_lifo},
                    Case{4, 2, 4, Policy::critical_path},
                    Case{5, 3, 3, Policy::random_order},
                    Case{6, 8, 1, Policy::eager_fifo},
                    Case{7, 1, 8, Policy::critical_path},
                    Case{8, 5, 2, Policy::eager_lifo},
                    Case{9, 2, 2, Policy::random_order},
                    Case{10, 6, 4, Policy::eager_fifo}),
    [](const auto& pinfo) {
      return "s" + std::to_string(pinfo.param.seed) + "_p" +
             std::to_string(pinfo.param.nprocesses) + "_w" +
             std::to_string(pinfo.param.workers) + "_" +
             to_string(pinfo.param.policy);
    });

}  // namespace
}  // namespace tamp::sim
