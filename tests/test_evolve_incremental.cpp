// Tests of level evolution and incremental repartitioning, plus the VTK
// export.
#include <gtest/gtest.h>

#include <fstream>

#include "graph/builder.hpp"
#include "mesh/evolve.hpp"
#include "mesh/generators.hpp"
#include "mesh/levels.hpp"
#include "mesh/vtk.hpp"
#include "partition/incremental.hpp"
#include "partition/strategy.hpp"

namespace tamp {
namespace {

mesh::Mesh graded_test_mesh(index_t cells = 8000) {
  mesh::TestMeshSpec spec;
  spec.target_cells = cells;
  return mesh::make_cylinder_mesh(spec);
}

TEST(Evolve, ZeroDriftChangesNothing) {
  auto m = graded_test_mesh(3000);
  const auto before = m.cell_levels();
  Rng rng(1);
  const auto stats = mesh::evolve_levels(m, 0.0, rng);
  EXPECT_EQ(stats.cells_changed, 0);
  EXPECT_GT(stats.eligible_cells, 0);
  EXPECT_EQ(m.cell_levels(), before);
}

TEST(Evolve, DriftMovesOnlyBoundaryCellsByOneLevel) {
  auto m = graded_test_mesh(3000);
  const auto before = m.cell_levels();
  Rng rng(2);
  const auto stats = mesh::evolve_levels(m, 0.5, rng);
  EXPECT_GT(stats.cells_changed, 0);
  EXPECT_LE(stats.cells_changed, stats.eligible_cells);
  for (index_t c = 0; c < m.num_cells(); ++c) {
    const int delta = std::abs(m.cell_level(c) - before[static_cast<std::size_t>(c)]);
    EXPECT_LE(delta, 1) << "cell " << c;
  }
  // Levels stay in range.
  EXPECT_LE(m.max_level(), 3);
}

TEST(Evolve, SmallDriftIsMinimalEvolution) {
  // The paper's premise: levels barely change between iterations.
  auto m = graded_test_mesh(6000);
  Rng rng(3);
  const auto stats = mesh::evolve_levels(m, 0.02, rng);
  EXPECT_LT(static_cast<double>(stats.cells_changed),
            0.02 * static_cast<double>(m.num_cells()));
}

TEST(Evolve, Deterministic) {
  auto m1 = graded_test_mesh(2000);
  auto m2 = graded_test_mesh(2000);
  Rng a(7), b(7);
  mesh::evolve_levels(m1, 0.3, a);
  mesh::evolve_levels(m2, 0.3, b);
  EXPECT_EQ(m1.cell_levels(), m2.cell_levels());
}

TEST(Incremental, RestoresBalanceAfterDrift) {
  auto m = graded_test_mesh();
  partition::StrategyOptions sopts;
  sopts.strategy = partition::Strategy::mc_tl;
  sopts.ndomains = 8;
  auto dd = partition::decompose(m, sopts);

  // Drift the levels, rebuild the (changed) weighted graph, repartition
  // incrementally from the old assignment.
  Rng rng(11);
  mesh::evolve_levels(m, 0.2, rng);
  const auto g = partition::build_strategy_graph(m, partition::Strategy::mc_tl);
  const auto report =
      partition::incremental_repartition(g, dd.domain_of_cell, 8);
  EXPECT_LE(report.imbalance_after, report.imbalance_before + 1e-12);
  // Migration touches a minority of the mesh.
  EXPECT_LT(report.migrated_vertices, m.num_cells() / 4);
}

TEST(Incremental, NoChangeNoMigration) {
  auto m = graded_test_mesh(4000);
  partition::StrategyOptions sopts;
  sopts.strategy = partition::Strategy::sc_oc;
  sopts.ndomains = 4;
  auto dd = partition::decompose(m, sopts);
  const auto g = partition::build_strategy_graph(m, partition::Strategy::sc_oc);
  const weight_t cut0 = partition::edge_cut(g, dd.domain_of_cell);
  const auto report =
      partition::incremental_repartition(g, dd.domain_of_cell, 4);
  // Already balanced: phase 1 does nothing; phase 2 may still polish the
  // cut, but never worsen it.
  EXPECT_LE(report.cut_after, cut0);
  EXPECT_LE(report.migrated_vertices, m.num_cells() / 10);
}

TEST(Incremental, ZeroDirtyVerticesReusesAssignmentVerbatim) {
  auto m = graded_test_mesh(4000);
  partition::StrategyOptions sopts;
  sopts.strategy = partition::Strategy::sc_oc;
  sopts.ndomains = 4;
  auto dd = partition::decompose(m, sopts);
  const auto g = partition::build_strategy_graph(m, partition::Strategy::sc_oc);
  const auto before = dd.domain_of_cell;
  partition::IncrementalOptions iopts;
  iopts.dirty_vertices = 0;
  const auto report =
      partition::incremental_repartition(g, dd.domain_of_cell, 4, iopts);
  EXPECT_TRUE(report.reused_verbatim);
  EXPECT_EQ(report.migrated_vertices, 0);
  EXPECT_EQ(dd.domain_of_cell, before);  // not a single cell moved
  EXPECT_EQ(report.cut_before, report.cut_after);
  EXPECT_EQ(report.imbalance_before, report.imbalance_after);
  // The normal path (dirty unknown) does NOT take the shortcut.
  const auto full = partition::incremental_repartition(g, dd.domain_of_cell, 4);
  EXPECT_FALSE(full.reused_verbatim);
}

TEST(Incremental, MigratesFarLessThanScratchRepartition) {
  auto m = graded_test_mesh();
  partition::StrategyOptions sopts;
  sopts.strategy = partition::Strategy::mc_tl;
  sopts.ndomains = 8;
  auto dd = partition::decompose(m, sopts);
  const auto old_part = dd.domain_of_cell;

  Rng rng(13);
  mesh::evolve_levels(m, 0.1, rng);
  const auto g = partition::build_strategy_graph(m, partition::Strategy::mc_tl);

  // Incremental.
  auto inc_part = old_part;
  const auto report = partition::incremental_repartition(g, inc_part, 8);

  // Scratch (new seed → essentially unrelated labels).
  sopts.partitioner.seed = 999;
  const auto scratch = partition::decompose(m, sopts);
  index_t scratch_moved = 0;
  for (index_t c = 0; c < m.num_cells(); ++c)
    if (scratch.domain_of_cell[static_cast<std::size_t>(c)] !=
        old_part[static_cast<std::size_t>(c)])
      ++scratch_moved;

  EXPECT_LT(report.migrated_vertices, scratch_moved / 4);
}

TEST(Incremental, ValidatesInput) {
  const auto g = graph::make_grid_graph(4, 4);
  std::vector<part_t> wrong(3, 0);
  EXPECT_THROW(
      (void)partition::incremental_repartition(g, wrong, 2),
      precondition_error);
}

TEST(Vtk, WritesWellFormedFile) {
  auto m = mesh::make_lattice_mesh(3, 3, 3);
  m.set_cell_levels(std::vector<level_t>(27, 1));
  const std::string path = testing::TempDir() + "/tamp_mesh.vtk";
  mesh::write_vtk_partition(m, path, std::vector<part_t>(27, 2));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("POINTS 27 double"), std::string::npos);
  EXPECT_NE(content.find("SCALARS temporal_level int 1"), std::string::npos);
  EXPECT_NE(content.find("SCALARS domain double 1"), std::string::npos);
  EXPECT_NE(content.find("POINT_DATA 27"), std::string::npos);
}

TEST(Vtk, ValidatesFields) {
  const auto m = mesh::make_lattice_mesh(2, 2, 2);
  const std::string path = testing::TempDir() + "/tamp_bad.vtk";
  EXPECT_THROW(
      mesh::write_vtk_points(m, path, {{"", std::vector<double>(8, 0)}}),
      precondition_error);
  EXPECT_THROW(
      mesh::write_vtk_points(m, path, {{"bad name", std::vector<double>(8, 0)}}),
      precondition_error);
  EXPECT_THROW(
      mesh::write_vtk_points(m, path, {{"f", std::vector<double>(3, 0)}}),
      precondition_error);
  EXPECT_THROW(mesh::write_vtk_points(
                   m, path,
                   {{"f", std::vector<double>(8, 0)},
                    {"f", std::vector<double>(8, 0)}}),
               precondition_error);
}

}  // namespace
}  // namespace tamp
