// Integration tests of the full pipeline (mesh → partition → task graph →
// simulation) across the three mesh families and all strategies — the
// paper's qualitative claims as assertions.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "graph/components.hpp"

namespace tamp::core {
namespace {

mesh::Mesh small_mesh(mesh::TestMeshKind kind, index_t cells = 6000) {
  mesh::TestMeshSpec spec;
  spec.target_cells = cells;
  return mesh::make_test_mesh(kind, spec);
}

class PipelineOnMesh : public testing::TestWithParam<mesh::TestMeshKind> {};

TEST_P(PipelineOnMesh, RunsForAllStrategies) {
  const auto m = small_mesh(GetParam());
  for (const auto strategy :
       {partition::Strategy::sc_cells, partition::Strategy::sc_oc,
        partition::Strategy::mc_tl, partition::Strategy::hybrid}) {
    RunConfig cfg;
    cfg.strategy = strategy;
    cfg.ndomains = 8;
    cfg.nprocesses = 4;
    cfg.workers_per_process = 2;
    const RunOutcome out = run_on_mesh(m, cfg);
    EXPECT_GT(out.makespan(), 0.0) << partition::to_string(strategy);
    EXPECT_GT(out.occupancy(), 0.0);
    EXPECT_LE(out.occupancy(), 1.0 + 1e-9);
    // Schedule length bounded by critical path and serial execution.
    EXPECT_GE(out.makespan(), out.graph.critical_path() - 1e-9);
    EXPECT_LE(out.makespan(), out.graph.total_work() + 1e-9);
  }
}

TEST_P(PipelineOnMesh, McTlNotSlowerThanScOc) {
  // The headline claim: MC_TL schedules at least as fast as SC_OC on
  // every mesh family (Figs 9, 11a, 12).
  const auto m = small_mesh(GetParam(), 8000);
  RunConfig cfg;
  cfg.ndomains = 16;
  cfg.nprocesses = 4;
  cfg.workers_per_process = 4;
  cfg.strategy = partition::Strategy::sc_oc;
  const auto oc = run_on_mesh(m, cfg);
  cfg.strategy = partition::Strategy::mc_tl;
  const auto tl = run_on_mesh(m, cfg);
  EXPECT_LE(tl.makespan(), oc.makespan() * 1.02);
  // And the total work is strategy-independent (§VI) — identical up to
  // floating summation order across the differently-shaped task lists.
  EXPECT_NEAR(tl.graph.total_work(), oc.graph.total_work(),
              1e-9 * oc.graph.total_work());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, PipelineOnMesh,
                         testing::Values(mesh::TestMeshKind::cylinder,
                                         mesh::TestMeshKind::cube,
                                         mesh::TestMeshKind::nozzle),
                         [](const auto& param_info) {
                           return std::string(mesh::to_string(param_info.param));
                         });

TEST(Pipeline, McTlImprovesOccupancyOnCylinder) {
  const auto m = small_mesh(mesh::TestMeshKind::cylinder, 10000);
  RunConfig cfg;
  cfg.ndomains = 16;
  cfg.nprocesses = 4;
  cfg.workers_per_process = 4;
  cfg.strategy = partition::Strategy::sc_oc;
  const auto oc = run_on_mesh(m, cfg);
  cfg.strategy = partition::Strategy::mc_tl;
  const auto tl = run_on_mesh(m, cfg);
  EXPECT_GT(tl.occupancy(), oc.occupancy());
  EXPECT_LT(tl.makespan(), oc.makespan());
}

TEST(Pipeline, CommVolumeHigherForMcTl) {
  // Fig 11b: MC_TL pays in communication.
  const auto m = small_mesh(mesh::TestMeshKind::cylinder, 8000);
  RunConfig cfg;
  cfg.ndomains = 16;
  cfg.nprocesses = 4;
  cfg.strategy = partition::Strategy::sc_oc;
  const auto oc = run_on_mesh(m, cfg);
  cfg.strategy = partition::Strategy::mc_tl;
  const auto tl = run_on_mesh(m, cfg);
  EXPECT_GT(tl.comm_volume(), oc.comm_volume());
}

TEST(Pipeline, UnboundedCoresStillIdleUnderScOc) {
  // Fig 6's argument: even with unlimited workers per process, SC_OC
  // schedules leave processes idle — the task graph itself is the
  // bottleneck, not the scheduler.
  const auto m = small_mesh(mesh::TestMeshKind::cylinder, 8000);
  RunConfig cfg;
  cfg.strategy = partition::Strategy::sc_oc;
  cfg.ndomains = 16;
  cfg.nprocesses = 16;
  cfg.workers_per_process = 0;  // unbounded
  const auto out = run_on_mesh(m, cfg);
  double worst_idle = 0;
  for (part_t p = 0; p < 16; ++p)
    worst_idle = std::max(worst_idle, out.sim.idle_fraction(p));
  EXPECT_GT(worst_idle, 0.3);
}

TEST(Pipeline, SchedulingPolicyDoesNotFixScOc) {
  // §III-C: a smarter scheduler cannot recover what the graph lacks.
  const auto m = small_mesh(mesh::TestMeshKind::cylinder, 8000);
  RunConfig cfg;
  cfg.strategy = partition::Strategy::sc_oc;
  cfg.ndomains = 16;
  cfg.nprocesses = 4;
  cfg.workers_per_process = 4;
  cfg.policy = sim::Policy::critical_path;
  const auto smart = run_on_mesh(m, cfg);
  cfg.strategy = partition::Strategy::mc_tl;
  cfg.policy = sim::Policy::eager_fifo;
  const auto mc_naive = run_on_mesh(m, cfg);
  // MC_TL with the dumb scheduler still beats SC_OC with the smart one.
  EXPECT_LT(mc_naive.makespan(), smart.makespan());
}

TEST(Pipeline, HybridBetweenWorlds) {
  // §VII: HYBRID should retain most of MC_TL's speed at lower
  // communication than plain MC_TL.
  const auto m = small_mesh(mesh::TestMeshKind::cylinder, 10000);
  RunConfig cfg;
  cfg.ndomains = 16;
  cfg.nprocesses = 4;
  cfg.workers_per_process = 4;
  cfg.strategy = partition::Strategy::mc_tl;
  const auto tl = run_on_mesh(m, cfg);
  cfg.strategy = partition::Strategy::hybrid;
  const auto hy = run_on_mesh(m, cfg);
  cfg.strategy = partition::Strategy::sc_oc;
  const auto oc = run_on_mesh(m, cfg);
  EXPECT_LT(hy.makespan(), oc.makespan());
  EXPECT_LT(hy.comm_volume(), tl.comm_volume());
}

TEST(Pipeline, MultiIterationScalesLinearly) {
  const auto m = small_mesh(mesh::TestMeshKind::cube, 4000);
  RunConfig cfg;
  cfg.strategy = partition::Strategy::mc_tl;
  cfg.ndomains = 8;
  cfg.nprocesses = 4;
  cfg.workers_per_process = 2;
  const auto one = run_on_mesh(m, cfg);
  cfg.num_iterations = 3;
  const auto three = run_on_mesh(m, cfg);
  EXPECT_NEAR(three.graph.total_work(), 3 * one.graph.total_work(),
              1e-9 * three.graph.total_work());
  // Iterations chain through dependencies but can pipeline slightly.
  EXPECT_GT(three.makespan(), 2.0 * one.makespan());
  EXPECT_LT(three.makespan(), 3.5 * one.makespan());
}

TEST(Pipeline, CommModelSlowsThingsDown) {
  const auto m = small_mesh(mesh::TestMeshKind::cube, 4000);
  RunConfig cfg;
  cfg.strategy = partition::Strategy::mc_tl;
  cfg.ndomains = 8;
  cfg.nprocesses = 4;
  cfg.workers_per_process = 2;
  const auto ideal = run_on_mesh(m, cfg);
  // A small latency may be entirely hidden behind idle time (whether it is
  // depends on the decomposition), so only demand it never helps...
  cfg.comm.latency = 5.0;
  const auto delayed = run_on_mesh(m, cfg);
  EXPECT_GE(delayed.makespan(), ideal.makespan());
  // ...while a latency on the order of the task costs must be exposed.
  cfg.comm.latency = 500.0;
  const auto slow = run_on_mesh(m, cfg);
  EXPECT_GT(slow.makespan(), ideal.makespan());
}

TEST(Pipeline, RepairFlagReducesFragmentsKeepsBehaviour) {
  const auto m = small_mesh(mesh::TestMeshKind::cube, 8000);
  RunConfig cfg;
  cfg.strategy = partition::Strategy::mc_tl;
  cfg.ndomains = 16;
  cfg.nprocesses = 4;
  cfg.workers_per_process = 2;
  const auto raw = run_on_mesh(m, cfg);
  cfg.repair_fragments = true;
  const auto repaired = run_on_mesh(m, cfg);

  auto extra_fragments = [&](const RunOutcome& out) {
    const auto frags = graph::part_fragment_counts(
        m.dual_graph(), out.decomposition.domain_of_cell, 16);
    index_t extra = 0;
    for (const index_t f : frags) extra += f - 1;
    return extra;
  };
  EXPECT_LE(extra_fragments(repaired), extra_fragments(raw));
  EXPECT_LE(repaired.decomposition.edge_cut, raw.decomposition.edge_cut);
  // Schedule quality within a few percent either way.
  EXPECT_LT(repaired.makespan(), raw.makespan() * 1.1);
  // Census consistent after repair (update_census ran).
  index_t total = 0;
  for (part_t d = 0; d < 16; ++d)
    for (level_t l = 0; l < repaired.decomposition.num_levels; ++l)
      total += repaired.decomposition.cells_in(d, l);
  EXPECT_EQ(total, m.num_cells());
}

TEST(Pipeline, RejectsInconsistentConfig) {
  const auto m = small_mesh(mesh::TestMeshKind::cube, 2000);
  RunConfig cfg;
  cfg.ndomains = 2;
  cfg.nprocesses = 4;
  EXPECT_THROW(run_on_mesh(m, cfg), precondition_error);
}

}  // namespace
}  // namespace tamp::core
