// Tests of the threaded task runtime: completeness, dependency ordering,
// worker-group pinning, exception propagation, reporting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "runtime/runtime.hpp"

namespace tamp::runtime {
namespace {

using taskgraph::Task;
using taskgraph::TaskGraph;

TaskGraph make_graph(const std::vector<part_t>& domains,
                     const std::vector<std::vector<index_t>>& deps) {
  std::vector<Task> tasks(domains.size());
  for (std::size_t i = 0; i < domains.size(); ++i) {
    tasks[i].domain = domains[i];
    tasks[i].cost = 1;
    tasks[i].num_objects = 1;
  }
  return TaskGraph(std::move(tasks), deps);
}

TEST(Runtime, ExecutesEveryTaskExactlyOnce) {
  const TaskGraph g = make_graph({0, 0, 0, 0, 0, 0},
                                 {{}, {0}, {0}, {1, 2}, {3}, {3}});
  std::vector<std::atomic<int>> ran(6);
  RuntimeConfig cfg;
  cfg.workers_per_process = 3;
  execute(g, {0}, cfg, [&](index_t t) {
    ran[static_cast<std::size_t>(t)].fetch_add(1);
  });
  for (const auto& r : ran) EXPECT_EQ(r.load(), 1);
}

TEST(Runtime, DependencyOrderObserved) {
  // Record a global completion order; every pred must appear before its
  // successors start. We use a per-task sequence number taken when the
  // body begins.
  const TaskGraph g =
      make_graph({0, 0, 0, 0}, {{}, {0}, {1}, {1, 2}});
  std::atomic<int> clock{0};
  std::vector<int> started(4), finished(4);
  RuntimeConfig cfg;
  cfg.workers_per_process = 4;
  execute(g, {0}, cfg, [&](index_t t) {
    started[static_cast<std::size_t>(t)] = clock.fetch_add(1);
    finished[static_cast<std::size_t>(t)] = clock.fetch_add(1);
  });
  for (index_t t = 0; t < 4; ++t)
    for (const index_t p : g.predecessors(t))
      EXPECT_LT(finished[static_cast<std::size_t>(p)],
                started[static_cast<std::size_t>(t)]);
}

TEST(Runtime, TimestampsRespectDependencies) {
  const TaskGraph g = make_graph({0, 0}, {{}, {0}});
  RuntimeConfig cfg;
  cfg.workers_per_process = 2;
  const ExecutionReport rep = execute(g, {0}, cfg, [](index_t) {});
  EXPECT_GE(rep.spans[1].start, rep.spans[0].end);
  EXPECT_GE(rep.wall_seconds, 0.0);
}

TEST(Runtime, ProcessPinningHonoured) {
  const TaskGraph g = make_graph({0, 1, 0, 1}, {{}, {}, {}, {}});
  RuntimeConfig cfg;
  cfg.num_processes = 2;
  cfg.workers_per_process = 2;
  const ExecutionReport rep = execute(g, {0, 1}, cfg, [](index_t) {});
  EXPECT_EQ(rep.spans[0].process, 0);
  EXPECT_EQ(rep.spans[1].process, 1);
  EXPECT_EQ(rep.spans[2].process, 0);
  EXPECT_EQ(rep.spans[3].process, 1);
}

TEST(Runtime, ExceptionPropagates) {
  const TaskGraph g = make_graph({0, 0, 0}, {{}, {0}, {1}});
  RuntimeConfig cfg;
  EXPECT_THROW(execute(g, {0}, cfg,
                       [](index_t t) {
                         if (t == 1) throw std::runtime_error("kernel failed");
                       }),
               std::runtime_error);
}

TEST(Runtime, RejectsBadConfig) {
  const TaskGraph g = make_graph({0}, {{}});
  RuntimeConfig cfg;
  cfg.num_processes = 0;
  EXPECT_THROW(execute(g, {0}, cfg, [](index_t) {}), precondition_error);
  cfg.num_processes = 1;
  cfg.workers_per_process = 0;
  EXPECT_THROW(execute(g, {0}, cfg, [](index_t) {}), precondition_error);
  cfg.workers_per_process = 1;
  // Domain map too small.
  const TaskGraph g2 = make_graph({3}, {{}});
  EXPECT_THROW(execute(g2, {0}, cfg, [](index_t) {}), precondition_error);
}

TEST(Runtime, ReportAccountingConsistent) {
  const TaskGraph g = make_graph({0, 0, 0, 0}, {{}, {}, {}, {}});
  RuntimeConfig cfg;
  cfg.workers_per_process = 2;
  const ExecutionReport rep =
      execute(g, {0}, cfg, make_synthetic_body(g, 1e-4));
  EXPECT_GT(rep.total_busy_seconds(), 0.0);
  EXPECT_LE(rep.total_busy_seconds(),
            rep.wall_seconds * 2 /*workers*/ * 1.5 /*scheduling noise*/);
  EXPECT_GT(rep.occupancy(), 0.0);
  EXPECT_LE(rep.occupancy(), 1.01);
  const GanttTrace trace = rep.gantt(g, "trace");
  EXPECT_EQ(trace.spans.size(), 4u);
  EXPECT_EQ(trace.resource_names.size(), 2u);
}

TEST(Runtime, LargeFanOutCompletes) {
  // 1 root → 200 leaves → 1 sink, multiple workers: stress the queue.
  std::vector<part_t> domains(202, 0);
  std::vector<std::vector<index_t>> deps(202);
  std::vector<index_t> leaves;
  for (index_t i = 1; i <= 200; ++i) {
    deps[static_cast<std::size_t>(i)] = {0};
    leaves.push_back(i);
  }
  deps[201] = leaves;
  const TaskGraph g = make_graph(domains, deps);
  std::atomic<int> count{0};
  RuntimeConfig cfg;
  cfg.workers_per_process = 4;
  execute(g, {0}, cfg, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 202);
}

TEST(Runtime, MultiProcessGraphCompletes) {
  // Cross-process dependency chains exercise the inter-queue wakeups.
  std::vector<part_t> domains;
  std::vector<std::vector<index_t>> deps;
  for (index_t i = 0; i < 40; ++i) {
    domains.push_back(i % 4);
    deps.push_back(i == 0 ? std::vector<index_t>{}
                          : std::vector<index_t>{i - 1});
  }
  const TaskGraph g = make_graph(domains, deps);
  std::atomic<int> count{0};
  RuntimeConfig cfg;
  cfg.num_processes = 4;
  cfg.workers_per_process = 2;
  execute(g, {0, 1, 2, 3}, cfg, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 40);
}

TEST(Runtime, AdversarialScheduleRunsEveryTaskInOrder) {
  // Random dequeue + jitter must still execute each task once and never
  // start a task before its predecessors finished.
  const TaskGraph g = make_graph({0, 0, 0, 0, 0, 0},
                                 {{}, {0}, {0}, {1, 2}, {3}, {3}});
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    std::atomic<int> clock{0};
    std::vector<int> started(6), finished(6);
    RuntimeConfig cfg;
    cfg.workers_per_process = 3;
    cfg.adversarial.enabled = true;
    cfg.adversarial.seed = seed;
    cfg.adversarial.max_delay_seconds = 100e-6;
    std::vector<std::atomic<int>> ran(6);
    execute(g, {0}, cfg, [&](index_t t) {
      started[static_cast<std::size_t>(t)] = clock.fetch_add(1);
      ran[static_cast<std::size_t>(t)].fetch_add(1);
      finished[static_cast<std::size_t>(t)] = clock.fetch_add(1);
    });
    for (const auto& r : ran) EXPECT_EQ(r.load(), 1);
    for (index_t t = 0; t < 6; ++t)
      for (const index_t p : g.predecessors(t))
        EXPECT_LT(finished[static_cast<std::size_t>(p)],
                  started[static_cast<std::size_t>(t)])
            << "seed " << seed;
  }
}

TEST(Runtime, AdversarialExceptionStillPropagates) {
  const TaskGraph g = make_graph({0, 0, 0, 0}, {{}, {0}, {0}, {1, 2}});
  RuntimeConfig cfg;
  cfg.workers_per_process = 4;
  cfg.adversarial.enabled = true;
  cfg.adversarial.seed = 9;
  cfg.adversarial.max_delay_seconds = 50e-6;
  EXPECT_THROW(execute(g, {0}, cfg,
                       [](index_t t) {
                         if (t == 2) throw std::runtime_error("kernel failed");
                       }),
               std::runtime_error);
}

TEST(Runtime, RejectsNegativeAdversarialDelay) {
  const TaskGraph g = make_graph({0}, {{}});
  RuntimeConfig cfg;
  cfg.adversarial.max_delay_seconds = -1.0;
  EXPECT_THROW(execute(g, {0}, cfg, [](index_t) {}), precondition_error);
}

TEST(Runtime, MoreWorkersThanReadyTasksCompletes) {
  // A 3-task chain on 8 workers: most workers only ever see an empty
  // queue and must still shut down cleanly.
  const TaskGraph g = make_graph({0, 0, 0}, {{}, {0}, {1}});
  std::atomic<int> count{0};
  RuntimeConfig cfg;
  cfg.workers_per_process = 8;
  execute(g, {0}, cfg, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(Runtime, EmptyGraphCompletesImmediately) {
  const TaskGraph g = make_graph({}, {});
  RuntimeConfig cfg;
  cfg.workers_per_process = 2;
  const ExecutionReport rep = execute(g, {0}, cfg, [](index_t) {
    FAIL() << "no task should run";
  });
  EXPECT_TRUE(rep.spans.empty());
  EXPECT_EQ(rep.total_busy_seconds(), 0.0);
}

TEST(Runtime, SingleTaskGraphCompletes) {
  const TaskGraph g = make_graph({0}, {{}});
  std::atomic<int> count{0};
  RuntimeConfig cfg;
  cfg.adversarial.enabled = true;  // degenerate pick-from-one
  execute(g, {0}, cfg, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(Runtime, OccupancyIsNaNWithoutCapacity) {
  // A default report has no capacity: occupancy must not divide by zero,
  // and must stay distinguishable from a real all-idle run (0.0).
  const ExecutionReport rep;
  EXPECT_FALSE(rep.has_capacity());
  EXPECT_TRUE(std::isnan(rep.occupancy()));
  EXPECT_EQ(rep.total_busy_seconds(), 0.0);
}

TEST(Runtime, OccupancyIsZeroWhenAllIdle) {
  ExecutionReport rep;
  rep.wall_seconds = 1.0;
  rep.num_processes = 1;
  rep.workers_per_process = 2;
  EXPECT_TRUE(rep.has_capacity());
  EXPECT_EQ(rep.occupancy(), 0.0);
}

TEST(Runtime, GanttRejectsMismatchedReport) {
  const TaskGraph g = make_graph({0, 0}, {{}, {0}});
  ExecutionReport rep;
  rep.wall_seconds = 1.0;
  rep.num_processes = 1;
  rep.workers_per_process = 1;
  rep.spans.resize(1);  // graph has 2 tasks
  EXPECT_THROW(rep.gantt(g, "mismatch"), precondition_error);
}

}  // namespace
}  // namespace tamp::runtime
