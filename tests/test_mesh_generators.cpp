// Tests for the paper-mesh generators: Table I populations, topology,
// connectivity, determinism. Parameterised across the three families.
#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "mesh/generators.hpp"
#include "mesh/levels.hpp"

namespace tamp::mesh {
namespace {

class GeneratorTest : public testing::TestWithParam<TestMeshKind> {};

TEST_P(GeneratorTest, CellCountNearTarget) {
  TestMeshSpec spec;
  spec.target_cells = 5000;
  const Mesh m = make_test_mesh(GetParam(), spec);
  EXPECT_GT(m.num_cells(), 3500);
  EXPECT_LT(m.num_cells(), 7000);
}

TEST_P(GeneratorTest, StructurallyValid) {
  TestMeshSpec spec;
  spec.target_cells = 3000;
  const Mesh m = make_test_mesh(GetParam(), spec);
  EXPECT_NO_THROW(m.validate());
}

TEST_P(GeneratorTest, DualGraphConnected) {
  TestMeshSpec spec;
  spec.target_cells = 3000;
  const Mesh m = make_test_mesh(GetParam(), spec);
  EXPECT_TRUE(graph::is_connected(m.dual_graph()));
}

TEST_P(GeneratorTest, LevelFractionsMatchTableOne) {
  TestMeshSpec spec;
  spec.target_cells = 20000;
  const Mesh m = make_test_mesh(GetParam(), spec);
  const PaperMeshStats& paper = paper_stats(GetParam());
  const LevelCensus census = level_census(m);
  ASSERT_EQ(static_cast<std::size_t>(census.num_levels()),
            paper.level_fractions.size());
  for (level_t l = 0; l < census.num_levels(); ++l) {
    EXPECT_NEAR(census.cell_fraction(l),
                paper.level_fractions[static_cast<std::size_t>(l)], 5e-4)
        << "level " << static_cast<int>(l);
  }
}

TEST_P(GeneratorTest, DeterministicForSameSeed) {
  TestMeshSpec spec;
  spec.target_cells = 2000;
  const Mesh a = make_test_mesh(GetParam(), spec);
  const Mesh b = make_test_mesh(GetParam(), spec);
  ASSERT_EQ(a.num_cells(), b.num_cells());
  for (index_t c = 0; c < a.num_cells(); ++c) {
    EXPECT_EQ(a.cell_level(c), b.cell_level(c));
    EXPECT_DOUBLE_EQ(a.cell_volume(c), b.cell_volume(c));
  }
}

TEST_P(GeneratorTest, LevelsSpatiallyCoherent) {
  // A smooth refinement field should keep most cells' neighbours within
  // one level of themselves. CUBE is the deliberate exception: Table I
  // gives its τ=2 band only 0.3 % of cells, so the τ=1→τ=3 transition is
  // a razor-thin shell and 2-level jumps are intrinsic to that census.
  TestMeshSpec spec;
  spec.target_cells = 8000;
  const Mesh m = make_test_mesh(GetParam(), spec);
  index_t jumps = 0, interior = 0;
  for (index_t f = 0; f < m.num_faces(); ++f) {
    if (m.is_boundary_face(f)) continue;
    ++interior;
    const int la = m.cell_level(m.face_cell(f, 0));
    const int lb = m.cell_level(m.face_cell(f, 1));
    if (std::abs(la - lb) > 1) ++jumps;
  }
  const double limit = GetParam() == TestMeshKind::cube ? 0.25 : 0.05;
  EXPECT_LT(static_cast<double>(jumps), limit * static_cast<double>(interior));
}

TEST_P(GeneratorTest, VolumesEncodeLevels) {
  // Volumes are 8^τ, so CFL re-derivation reproduces the levels.
  TestMeshSpec spec;
  spec.target_cells = 2000;
  Mesh m = make_test_mesh(GetParam(), spec);
  const std::vector<level_t> original = m.cell_levels();
  const level_t nlev = static_cast<level_t>(m.max_level() + 1);
  const auto rederived = assign_levels_by_cfl(m, nlev);
  for (index_t c = 0; c < m.num_cells(); ++c)
    EXPECT_EQ(rederived[static_cast<std::size_t>(c)],
              original[static_cast<std::size_t>(c)])
        << "cell " << c;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, GeneratorTest,
                         testing::Values(TestMeshKind::cylinder,
                                         TestMeshKind::cube,
                                         TestMeshKind::nozzle),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(PaperStats, MatchTableOne) {
  EXPECT_EQ(paper_stats(TestMeshKind::cylinder).total_cells, 6400505);
  EXPECT_EQ(paper_stats(TestMeshKind::cube).total_cells, 151817);
  EXPECT_EQ(paper_stats(TestMeshKind::nozzle).total_cells, 12594374);
  EXPECT_EQ(paper_stats(TestMeshKind::cylinder).level_fractions.size(), 4u);
  EXPECT_EQ(paper_stats(TestMeshKind::nozzle).level_fractions.size(), 3u);
  for (const auto kind :
       {TestMeshKind::cylinder, TestMeshKind::cube, TestMeshKind::nozzle}) {
    double sum = 0;
    for (const double f : paper_stats(kind).level_fractions) sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ParseKind, RoundTripsAndRejects) {
  EXPECT_EQ(parse_test_mesh_kind("cylinder"), TestMeshKind::cylinder);
  EXPECT_EQ(parse_test_mesh_kind("cube"), TestMeshKind::cube);
  EXPECT_EQ(parse_test_mesh_kind("nozzle"), TestMeshKind::nozzle);
  EXPECT_EQ(parse_test_mesh_kind("pprime"), TestMeshKind::nozzle);
  EXPECT_THROW(parse_test_mesh_kind("sphere"), precondition_error);
}

TEST(CubeMesh, HasThreeHotspotFragments) {
  // The τ=0 cells of CUBE form three non-contiguous islands (paper §III-B).
  TestMeshSpec spec;
  spec.target_cells = 30000;
  const Mesh m = make_cube_mesh(spec);
  // Build a graph over τ=0 cells only and count components.
  std::vector<char> mask(static_cast<std::size_t>(m.num_cells()), 0);
  for (index_t c = 0; c < m.num_cells(); ++c)
    if (m.cell_level(c) == 0) mask[static_cast<std::size_t>(c)] = 1;
  std::vector<index_t> o2n, n2o;
  const auto sub = graph::induced_subgraph(m.dual_graph(), mask, o2n, n2o);
  std::vector<index_t> comp;
  EXPECT_EQ(graph::connected_components(sub, comp), 3);
}

TEST(CylinderMesh, FinestLevelsAtInnerRadius) {
  TestMeshSpec spec;
  spec.target_cells = 8000;
  const Mesh m = make_cylinder_mesh(spec);
  // Average radial distance of τ=0 cells should be well below that of
  // the coarsest level.
  double r_fine = 0, r_coarse = 0;
  index_t n_fine = 0, n_coarse = 0;
  for (index_t c = 0; c < m.num_cells(); ++c) {
    const Vec3 p = m.cell_centroid(c);
    const double r = std::hypot(p.x, p.y);
    if (m.cell_level(c) == 0) {
      r_fine += r;
      ++n_fine;
    } else if (m.cell_level(c) == m.max_level()) {
      r_coarse += r;
      ++n_coarse;
    }
  }
  ASSERT_GT(n_fine, 0);
  ASSERT_GT(n_coarse, 0);
  EXPECT_LT(r_fine / n_fine, 0.6 * (r_coarse / n_coarse));
}

}  // namespace
}  // namespace tamp::mesh
