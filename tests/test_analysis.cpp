// Tests of schedule analysis (subiteration activity, concurrency profile,
// idle blocks) and the Chrome trace export.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "sim/analysis.hpp"
#include "sim/trace_json.hpp"

namespace tamp::sim {
namespace {

using taskgraph::Task;
using taskgraph::TaskGraph;

TaskGraph two_proc_graph() {
  // p0: tasks 0 (cost 2, s0) and 2 (cost 1, s1, after 0 and 1);
  // p1: task 1 (cost 3, s0).
  std::vector<Task> tasks(3);
  tasks[0].cost = 2;
  tasks[0].domain = 0;
  tasks[0].subiteration = 0;
  tasks[1].cost = 3;
  tasks[1].domain = 1;
  tasks[1].subiteration = 0;
  tasks[2].cost = 1;
  tasks[2].domain = 0;
  tasks[2].subiteration = 1;
  return TaskGraph(std::move(tasks), {{}, {}, {0, 1}});
}

SimResult run(const TaskGraph& g) {
  SimOptions opts;
  opts.cluster.num_processes = 2;
  return simulate(g, {0, 1}, opts);
}

TEST(Analysis, SubiterationActivity) {
  const TaskGraph g = two_proc_graph();
  const SimResult r = run(g);
  const auto act = subiteration_activity(g, r);
  ASSERT_EQ(act.size(), 4u);  // 2 processes × 2 subiterations
  // p0, s0: task 0 only.
  EXPECT_EQ(act[0].tasks, 1);
  EXPECT_DOUBLE_EQ(act[0].busy, 2.0);
  EXPECT_DOUBLE_EQ(act[0].first_start, 0.0);
  // p0, s1: task 2 starting at 3 (waits for task 1 on p1).
  EXPECT_EQ(act[1].tasks, 1);
  EXPECT_DOUBLE_EQ(act[1].first_start, 3.0);
  EXPECT_DOUBLE_EQ(act[1].last_end, 4.0);
  // p1, s0: task 1. p1, s1: nothing — inactive cells keep the sentinel
  // +inf first_start so "never started" is distinct from "started at 0".
  EXPECT_EQ(act[2].tasks, 1);
  EXPECT_TRUE(act[2].active());
  EXPECT_DOUBLE_EQ(act[2].first_start, 0.0);
  EXPECT_EQ(act[3].tasks, 0);
  EXPECT_FALSE(act[3].active());
  EXPECT_TRUE(std::isinf(act[3].first_start));
  EXPECT_GT(act[3].first_start, 0);
}

TEST(Analysis, ConcurrencyProfile) {
  const TaskGraph g = two_proc_graph();
  const SimResult r = run(g);
  const ConcurrencyProfile p = concurrency_profile(r);
  // [0,2): 2 busy; [2,3): 1 busy; [3,4): 1 busy.
  EXPECT_EQ(p.peak(), 2);
  EXPECT_NEAR(p.average(r.makespan), (2 * 2 + 1 * 1 + 1 * 1) / 4.0, 1e-12);
  EXPECT_NEAR(p.fraction_below(2, r.makespan), 0.5, 1e-12);
  EXPECT_NEAR(p.fraction_below(1, r.makespan), 0.0, 1e-12);
}

TEST(Analysis, IdleBlocks) {
  const TaskGraph g = two_proc_graph();
  const SimResult r = run(g);
  // p0 busy [0,2] and [3,4]: one idle block of 1.
  const IdleBlocks b0 = idle_blocks(r, 0);
  EXPECT_EQ(b0.count, 1);
  EXPECT_DOUBLE_EQ(b0.total, 1.0);
  EXPECT_DOUBLE_EQ(b0.longest, 1.0);
  // p1 busy [0,3]: idle tail [3,4].
  const IdleBlocks b1 = idle_blocks(r, 1);
  EXPECT_EQ(b1.count, 1);
  EXPECT_DOUBLE_EQ(b1.total, 1.0);
  EXPECT_THROW((void)idle_blocks(r, 5), precondition_error);
}

TEST(Analysis, ProfileAverageMatchesOccupancyIdentity) {
  // Time-integral of concurrency equals total busy time — for any graph.
  const TaskGraph g = two_proc_graph();
  const SimResult r = run(g);
  const ConcurrencyProfile p = concurrency_profile(r);
  simtime_t busy = 0;
  for (const simtime_t b : r.busy_per_process) busy += b;
  EXPECT_NEAR(p.average(r.makespan) * r.makespan, busy, 1e-9);
}

TEST(ChromeTrace, WellFormedAndComplete) {
  const TaskGraph g = two_proc_graph();
  const SimResult r = run(g);
  const std::string json = to_chrome_trace(g, r);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One event per task.
  std::size_t events = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++events;
    pos += 8;
  }
  EXPECT_EQ(events, 3u);
  EXPECT_NE(json.find("\"subiteration\":1"), std::string::npos);
  EXPECT_NE(json.find("\"locality\":\"int\""), std::string::npos);
}

TEST(ChromeTrace, SavesToDisk) {
  const TaskGraph g = two_proc_graph();
  const SimResult r = run(g);
  const std::string path = testing::TempDir() + "/tamp_trace.json";
  save_chrome_trace(to_chrome_trace(g, r), path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("traceEvents"), std::string::npos);
}

TEST(ChromeTrace, RejectsMismatchedInputs) {
  const TaskGraph g = two_proc_graph();
  SimResult r;  // empty timing
  EXPECT_THROW((void)to_chrome_trace(g, r), precondition_error);
}

}  // namespace
}  // namespace tamp::sim
