// Tests of the Hilbert space-filling-curve geometric partitioner.
#include <gtest/gtest.h>

#include <set>

#include "mesh/generators.hpp"
#include "mesh/levels.hpp"
#include "partition/partition.hpp"
#include "partition/sfc.hpp"
#include "partition/strategy.hpp"

namespace tamp::partition {
namespace {

TEST(Hilbert, BijectiveOnSmallGrid) {
  // With 2 bits per axis, the 4×4×4 lattice maps to 64 distinct indices.
  std::set<std::uint64_t> seen;
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y)
      for (int z = 0; z < 4; ++z)
        seen.insert(hilbert_index_3d(x / 3.0, y / 3.0, z / 3.0, 2));
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Hilbert, LocalityAdjacentIndicesAdjacentCells) {
  // Walking the curve in index order, consecutive lattice points must be
  // face neighbours (the defining Hilbert property).
  const int bits = 3, n = 1 << bits;
  std::vector<std::array<int, 3>> by_index(
      static_cast<std::size_t>(n * n * n));
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      for (int z = 0; z < n; ++z) {
        const auto idx = hilbert_index_3d(
            x / static_cast<double>(n - 1), y / static_cast<double>(n - 1),
            z / static_cast<double>(n - 1), bits);
        by_index[static_cast<std::size_t>(idx)] = {x, y, z};
      }
    }
  }
  for (std::size_t i = 0; i + 1 < by_index.size(); ++i) {
    const auto& a = by_index[i];
    const auto& b = by_index[i + 1];
    const int dist = std::abs(a[0] - b[0]) + std::abs(a[1] - b[1]) +
                     std::abs(a[2] - b[2]);
    ASSERT_EQ(dist, 1) << "curve jump at index " << i;
  }
}

TEST(Hilbert, RejectsBadBits) {
  EXPECT_THROW((void)hilbert_index_3d(0, 0, 0, 0), precondition_error);
  EXPECT_THROW((void)hilbert_index_3d(0, 0, 0, 22), precondition_error);
}

TEST(SfcPartition, CoversAndBalancesCounts) {
  const auto m = mesh::make_lattice_mesh(12, 12, 12);
  std::vector<weight_t> uniform(static_cast<std::size_t>(m.num_cells()), 1);
  const auto part = sfc_partition(m, uniform, 8);
  std::vector<index_t> count(8, 0);
  for (const part_t p : part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 8);
    ++count[static_cast<std::size_t>(p)];
  }
  for (const index_t c : count) {
    EXPECT_GE(c, 12 * 12 * 12 / 8 - 2);
    EXPECT_LE(c, 12 * 12 * 12 / 8 + 2);
  }
}

TEST(SfcPartition, BalancesOperatingCost) {
  mesh::TestMeshSpec spec;
  spec.target_cells = 10000;
  const auto m = mesh::make_cylinder_mesh(spec);
  const auto part = sfc_partition_operating_cost(m, 16);
  const auto g = build_strategy_graph(m, Strategy::sc_oc);
  EXPECT_LE(max_imbalance(g, part, 16), 1.1);
}

TEST(SfcPartition, PartsAreGeometricallyCompactish) {
  // SFC chunks on a lattice should be contiguous or nearly so; assert the
  // cut stays within a sane multiple of the multilevel partitioner's.
  const auto m = mesh::make_lattice_mesh(16, 16, 16);
  std::vector<weight_t> uniform(static_cast<std::size_t>(m.num_cells()), 1);
  const auto sfc = sfc_partition(m, uniform, 8);
  const auto g = m.dual_graph();
  Options o;
  o.nparts = 8;
  const auto ml = partition_graph(g, o);
  EXPECT_LT(edge_cut(g, sfc), 3 * ml.edge_cut + 200);
}

TEST(SfcPartition, DeterministicAndSeedFree) {
  const auto m = mesh::make_lattice_mesh(6, 6, 6);
  std::vector<weight_t> uniform(static_cast<std::size_t>(m.num_cells()), 1);
  EXPECT_EQ(sfc_partition(m, uniform, 4), sfc_partition(m, uniform, 4));
}

TEST(SfcPartition, ValidatesInput) {
  const auto m = mesh::make_lattice_mesh(3, 3, 3);
  std::vector<weight_t> wrong(5, 1);
  EXPECT_THROW((void)sfc_partition(m, wrong, 2), precondition_error);
  std::vector<weight_t> uniform(27, 1);
  EXPECT_THROW((void)sfc_partition(m, uniform, 0), precondition_error);
  EXPECT_THROW((void)sfc_partition(m, uniform, 28), precondition_error);
}

TEST(SfcPartition, EveryPartNonEmptyUnderSkewedWeights) {
  // All the weight at the start of the curve: the backstop must still
  // hand every part at least one cell.
  const auto m = mesh::make_lattice_mesh(4, 4, 4);
  std::vector<weight_t> skew(64, 0);
  for (auto& w : skew) w = 1;
  skew[0] = 100000;
  const auto part = sfc_partition(m, skew, 8);
  std::set<part_t> used(part.begin(), part.end());
  EXPECT_EQ(used.size(), 8u);
}

TEST(SfcPartition, IgnoresLevelsLikeScOc) {
  // The geometric baseline shares SC_OC's blind spot: level classes
  // cluster spatially, so per-level balance is poor — exactly why the
  // multilevel MC_TL approach is needed.
  mesh::TestMeshSpec spec;
  spec.target_cells = 10000;
  const auto m = mesh::make_cylinder_mesh(spec);
  const auto part = sfc_partition_operating_cost(m, 16);
  const auto g_tl = build_strategy_graph(m, Strategy::mc_tl);
  EXPECT_GE(max_imbalance(g_tl, part, 16), 2.0);
}

}  // namespace
}  // namespace tamp::partition
