// Property and mutation tests of the diff-based task-graph patcher
// (taskgraph/patch.hpp): a drift sweep across meshes × strategies × seeds
// asserting the patched graph, ClassMap ranges and doctor output are
// bit-identical to a from-scratch rebuild; the zero-drift noop and the
// rebuild fallbacks; the equivalence oracle and the snapshot fingerprint
// catching a deliberately staled patch; and dirty-region re-certification
// (verify::check_races_region) on real patched graphs — clean on the
// genuine article, flagged when a load-bearing edge is severed.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mesh/evolve.hpp"
#include "mesh/generators.hpp"
#include "partition/strategy.hpp"
#include "sim/doctor.hpp"
#include "sim/simulate.hpp"
#include "solver/euler.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "taskgraph/patch.hpp"
#include "verify/graph_edit.hpp"
#include "verify/verifier.hpp"

namespace tamp::taskgraph {
namespace {

mesh::Mesh test_mesh(mesh::TestMeshKind kind, index_t cells,
                     std::uint64_t seed) {
  mesh::TestMeshSpec spec;
  spec.target_cells = cells;
  spec.seed = seed;
  return mesh::make_test_mesh(kind, spec);
}

std::vector<part_t> decompose(const mesh::Mesh& m, partition::Strategy s,
                              part_t ndomains) {
  partition::StrategyOptions sopts;
  sopts.strategy = s;
  sopts.ndomains = ndomains;
  return partition::decompose(m, sopts).domain_of_cell;
}

/// Rebuild from scratch and require bit-identity with the patcher's
/// published graph: fingerprint plus direct field-by-field spot checks,
/// so a fingerprint bug can't silently vouch for itself.
void expect_matches_rebuild(const GraphPatcher& patcher, const mesh::Mesh& m,
                            const std::vector<part_t>& dom, part_t ndomains,
                            const std::string& context) {
  ClassMap ref_classes;
  const TaskGraph ref =
      generate_task_graph(m, dom, ndomains, {}, &ref_classes);
  EXPECT_EQ(patcher.fingerprint(),
            GraphPatcher::fingerprint(ref, ref_classes))
      << context;

  const TaskGraph& got = patcher.graph();
  ASSERT_EQ(got.num_tasks(), ref.num_tasks()) << context;
  ASSERT_EQ(got.num_dependencies(), ref.num_dependencies()) << context;
  for (index_t t = 0; t < ref.num_tasks(); ++t) {
    const Task& a = got.task(t);
    const Task& b = ref.task(t);
    ASSERT_EQ(a.subiteration, b.subiteration) << context << " task " << t;
    ASSERT_EQ(a.level, b.level) << context << " task " << t;
    ASSERT_EQ(a.type, b.type) << context << " task " << t;
    ASSERT_EQ(a.locality, b.locality) << context << " task " << t;
    ASSERT_EQ(a.domain, b.domain) << context << " task " << t;
    ASSERT_EQ(a.num_objects, b.num_objects) << context << " task " << t;
    ASSERT_EQ(a.cost, b.cost) << context << " task " << t;
    const auto gp = got.predecessors(t);
    const auto rp = ref.predecessors(t);
    ASSERT_TRUE(std::equal(gp.begin(), gp.end(), rp.begin(), rp.end()))
        << context << " task " << t;
  }
  const ClassMap& cls = patcher.classes();
  ASSERT_EQ(cls.task_class, ref_classes.task_class) << context;
  ASSERT_EQ(cls.class_cells, ref_classes.class_cells) << context;
  ASSERT_EQ(cls.class_faces, ref_classes.class_faces) << context;
  ASSERT_EQ(cls.cell_range.size(), ref_classes.cell_range.size()) << context;
  for (std::size_t k = 0; k < cls.cell_range.size(); ++k) {
    EXPECT_EQ(cls.cell_range[k].begin, ref_classes.cell_range[k].begin)
        << context << " class " << k;
    EXPECT_EQ(cls.cell_range[k].end, ref_classes.cell_range[k].end)
        << context << " class " << k;
    EXPECT_EQ(cls.face_range[k].begin, ref_classes.face_range[k].begin)
        << context << " class " << k;
    EXPECT_EQ(cls.face_range[k].boundary_begin,
              ref_classes.face_range[k].boundary_begin)
        << context << " class " << k;
    EXPECT_EQ(cls.face_range[k].end, ref_classes.face_range[k].end)
        << context << " class " << k;
  }
}

std::string doctor_text(const TaskGraph& g, part_t ndomains) {
  sim::SimOptions sopts;
  sopts.cluster.num_processes = 2;
  sopts.cluster.workers_per_process = 2;
  const auto d2p = partition::map_domains_to_processes(
      ndomains, 2, partition::DomainMapping::block);
  const sim::SimResult res = sim::simulate(g, d2p, sopts);
  std::ostringstream os;
  sim::print_doctor_report(os, g, sim::diagnose(g, res));
  return os.str();
}

// --- property sweep: patched ≡ rebuilt ---------------------------------------

TEST(PatchProperty, DriftSweepIsBitIdenticalToRebuild) {
  const partition::Strategy strategies[] = {partition::Strategy::sc_oc,
                                            partition::Strategy::mc_tl};
  const mesh::TestMeshKind kinds[] = {mesh::TestMeshKind::cylinder,
                                      mesh::TestMeshKind::cube};
  int patched_applies = 0;
  for (const auto kind : kinds) {
    for (const auto strategy : strategies) {
      for (std::uint64_t drift_seed = 1; drift_seed <= 3; ++drift_seed) {
        mesh::Mesh m = test_mesh(kind, 4000, 7);
        const auto dom = decompose(m, strategy, 8);
        GraphPatcher patcher(m, dom, 8);
        Rng rng(mix_seed(drift_seed, static_cast<std::uint64_t>(strategy)));
        for (int iter = 0; iter < 3; ++iter) {
          mesh::evolve_levels(m, 0.01, rng);
          const PatchStats& st = patcher.apply(m, dom);
          patched_applies += st.patched ? 1 : 0;
          const std::string ctx =
              std::string(mesh::to_string(kind)) + "/" +
              partition::to_string(strategy) + " seed " +
              std::to_string(drift_seed) + " iter " + std::to_string(iter);
          expect_matches_rebuild(patcher, m, dom, 8, ctx);
        }
      }
    }
  }
  // The sweep must actually exercise the diff path, not fall back.
  EXPECT_GT(patched_applies, 20);
}

TEST(PatchProperty, DoctorOutputIdenticalOnPatchedAndRebuiltGraph) {
  mesh::Mesh m = test_mesh(mesh::TestMeshKind::cylinder, 4000, 11);
  const auto dom = decompose(m, partition::Strategy::mc_tl, 8);
  GraphPatcher patcher(m, dom, 8);
  Rng rng(5);
  for (int iter = 0; iter < 2; ++iter) {
    mesh::evolve_levels(m, 0.01, rng);
    patcher.apply(m, dom);
  }
  const TaskGraph ref = generate_task_graph(m, dom, 8);
  EXPECT_EQ(doctor_text(patcher.graph(), 8), doctor_text(ref, 8));
}

TEST(PatchProperty, DomainReassignmentIsPatched) {
  mesh::Mesh m = test_mesh(mesh::TestMeshKind::cube, 3000, 3);
  auto dom = decompose(m, partition::Strategy::sc_oc, 6);
  GraphPatcher patcher(m, dom, 6);
  // Migrate a handful of cells to a neighbour's domain — the incremental
  // repartitioner's signature output shape.
  Rng rng(17);
  int moved = 0;
  for (index_t c = 0; c < m.num_cells() && moved < 25; c += 97) {
    for (const index_t f : m.cell_faces(c)) {
      const index_t o = m.face_other_cell(f, c);
      if (o == invalid_index) continue;
      const part_t od = dom[static_cast<std::size_t>(o)];
      if (od != dom[static_cast<std::size_t>(c)]) {
        dom[static_cast<std::size_t>(c)] = od;
        ++moved;
        break;
      }
    }
  }
  ASSERT_GT(moved, 0);
  const PatchStats& st = patcher.apply(m, dom);
  EXPECT_TRUE(st.patched) << st.rebuild_reason;
  EXPECT_GT(st.dirty_cells, 0);
  expect_matches_rebuild(patcher, m, dom, 6, "domain reassignment");
}

// --- fast paths and fallbacks ------------------------------------------------

TEST(Patch, ZeroChangeIsANoop) {
  mesh::Mesh m = test_mesh(mesh::TestMeshKind::cylinder, 2000, 1);
  const auto dom = decompose(m, partition::Strategy::sc_oc, 4);
  GraphPatcher patcher(m, dom, 4);
  const std::uint64_t before = patcher.fingerprint();
  const PatchStats& st = patcher.apply(m, dom);
  EXPECT_TRUE(st.patched);
  EXPECT_EQ(st.dirty_cells, 0);
  EXPECT_EQ(st.dirty_fraction, 0.0);
  EXPECT_EQ(patcher.fingerprint(), before);
  for (const char d : patcher.dirty_tasks()) EXPECT_EQ(d, 0);
}

TEST(Patch, HighDriftFallsBackToFullRebuild) {
  mesh::Mesh m = test_mesh(mesh::TestMeshKind::cylinder, 2000, 2);
  const auto dom = decompose(m, partition::Strategy::sc_oc, 4);
  GraphPatcher patcher(m, dom, 4);
  Rng rng(9);
  mesh::evolve_levels(m, 0.9, rng);  // way past max_dirty_fraction
  const PatchStats& st = patcher.apply(m, dom);
  EXPECT_FALSE(st.patched);
  ASSERT_NE(st.rebuild_reason, nullptr);
  EXPECT_EQ(std::string(st.rebuild_reason),
            "dirty fraction above patch threshold");
  // A rebuild marks everything dirty: the whole graph re-certifies.
  bool any_clean = false;
  for (const char d : patcher.dirty_tasks()) any_clean |= d == 0;
  EXPECT_FALSE(any_clean);
  expect_matches_rebuild(patcher, m, dom, 4, "high drift");
}

TEST(Patch, LevelCountChangeFallsBackToFullRebuild) {
  mesh::Mesh m = test_mesh(mesh::TestMeshKind::cylinder, 2000, 4);
  const auto dom = decompose(m, partition::Strategy::sc_oc, 4);
  GraphPatcher patcher(m, dom, 4);
  // Flatten the hierarchy: max level drops, the scheme changes shape.
  std::vector<level_t> flat(static_cast<std::size_t>(m.num_cells()), 0);
  m.set_cell_levels(std::move(flat));
  const PatchStats& st = patcher.apply(m, dom);
  EXPECT_FALSE(st.patched);
  ASSERT_NE(st.rebuild_reason, nullptr);
  EXPECT_EQ(std::string(st.rebuild_reason), "temporal level count changed");
  expect_matches_rebuild(patcher, m, dom, 4, "level count change");
}

// --- mutation tests: a stale patch cannot survive ----------------------------

TEST(PatchMutation, OracleThrowsOnStalePatch) {
  mesh::Mesh m = test_mesh(mesh::TestMeshKind::cylinder, 2000, 6);
  const auto dom = decompose(m, partition::Strategy::sc_oc, 4);
  GraphPatcher::Options opts;
  opts.oracle = true;
  GraphPatcher patcher(m, dom, 4, opts);
  Rng rng(21);
  mesh::evolve_levels(m, 0.01, rng);
  patcher.apply(m, dom);  // genuine patch passes the oracle

  patcher.corrupt_aggregates_for_testing();
  mesh::evolve_levels(m, 0.01, rng);
  EXPECT_THROW(patcher.apply(m, dom), invariant_error);
}

TEST(PatchMutation, FingerprintExposesStalePatchWithoutOracle) {
  mesh::Mesh m = test_mesh(mesh::TestMeshKind::cylinder, 2000, 6);
  const auto dom = decompose(m, partition::Strategy::sc_oc, 4);
  GraphPatcher patcher(m, dom, 4);
  patcher.corrupt_aggregates_for_testing();
  Rng rng(21);
  mesh::evolve_levels(m, 0.01, rng);
  const PatchStats& st = patcher.apply(m, dom);
  ASSERT_TRUE(st.patched);  // the cheap path ran — and produced a stale graph
  ClassMap ref_classes;
  const TaskGraph ref = generate_task_graph(m, dom, 4, {}, &ref_classes);
  EXPECT_NE(patcher.fingerprint(),
            GraphPatcher::fingerprint(ref, ref_classes));
}

// --- dirty-region re-certification -------------------------------------------

TEST(PatchRegion, PatchedGraphReCertifiesCleanOnItsDirtyRegion) {
  mesh::Mesh m = test_mesh(mesh::TestMeshKind::cylinder, 3000, 8);
  solver::EulerSolver es(m);
  es.initialize_uniform(1.0, {0.1, 0.0, 0.0}, 1.0);
  es.assign_temporal_levels();
  const auto dom = decompose(m, partition::Strategy::mc_tl, 6);
  GraphPatcher patcher(m, dom, 6);
  Rng rng(13);
  mesh::evolve_levels(m, 0.01, rng);
  const PatchStats& st = patcher.apply(m, dom);
  ASSERT_TRUE(st.patched) << st.rebuild_reason;

  const auto classes = std::make_shared<const ClassMap>(patcher.classes());
  const runtime::TaskBody body =
      es.make_iteration_body(patcher.graph(), classes);
  const verify::RegionReport report =
      verify::check_races_region(patcher.graph(), patcher.dirty_tasks(), body);
  EXPECT_TRUE(report.clean()) << report.races.summary(patcher.graph());
  EXPECT_GT(report.dirty_tasks, 0);
  EXPECT_GE(report.region_tasks, report.dirty_tasks);
  EXPECT_LT(report.region_tasks, patcher.graph().num_tasks());
}

TEST(PatchRegion, SeveredRegionEdgeIsFlagged) {
  // Drop dependency edges whose both endpoints sit inside the dirty
  // region; at least one of them must be load-bearing, and the region
  // check must flag the pair it no longer orders.
  mesh::Mesh m = test_mesh(mesh::TestMeshKind::cylinder, 3000, 8);
  solver::EulerSolver es(m);
  es.initialize_uniform(1.0, {0.1, 0.0, 0.0}, 1.0);
  es.assign_temporal_levels();
  const auto dom = decompose(m, partition::Strategy::mc_tl, 6);
  GraphPatcher patcher(m, dom, 6);
  Rng rng(13);
  mesh::evolve_levels(m, 0.01, rng);
  ASSERT_TRUE(patcher.apply(m, dom).patched);

  const auto classes = std::make_shared<const ClassMap>(patcher.classes());
  const std::vector<char> region =
      verify::region_closure(patcher.graph(), patcher.dirty_tasks());
  int severed = 0, flagged = 0;
  for (const auto& [from, to] : verify::dependency_edges(patcher.graph())) {
    if (region[static_cast<std::size_t>(from)] == 0 ||
        region[static_cast<std::size_t>(to)] == 0)
      continue;
    if (severed >= 12) break;  // a sample is enough; each replay is O(region)
    ++severed;
    const TaskGraph mutated =
        verify::remove_dependency(patcher.graph(), from, to);
    const runtime::TaskBody body = es.make_iteration_body(mutated, classes);
    const verify::RegionReport report =
        verify::check_races_region(mutated, patcher.dirty_tasks(), body);
    flagged += report.clean() ? 0 : 1;
  }
  ASSERT_GT(severed, 0);
  EXPECT_GT(flagged, 0)
      << "no severed in-region edge was load-bearing — mutation test inert";
}

}  // namespace
}  // namespace tamp::taskgraph
