// Tests of the FLUSIM discrete-event simulator: hand-checkable schedules,
// conservation of work, policies, unbounded mode, communication model.
#include <gtest/gtest.h>

#include "sim/simulate.hpp"

namespace tamp::sim {
namespace {

using taskgraph::Task;
using taskgraph::TaskGraph;

/// Build a graph of tasks with given costs/domains and dependency lists.
TaskGraph make_graph(const std::vector<std::pair<double, part_t>>& specs,
                     const std::vector<std::vector<index_t>>& deps,
                     index_t subiter_of_first = 0) {
  std::vector<Task> tasks(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    tasks[i].cost = specs[i].first;
    tasks[i].domain = specs[i].second;
    tasks[i].num_objects = 1;
    tasks[i].subiteration = subiter_of_first;
  }
  return TaskGraph(std::move(tasks), deps);
}

TEST(Simulate, SerialChain) {
  // 3 tasks in a chain on one worker: makespan = Σ costs.
  const TaskGraph g = make_graph({{1, 0}, {2, 0}, {3, 0}}, {{}, {0}, {1}});
  SimOptions opts;
  const SimResult r = simulate(g, {0}, opts);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_DOUBLE_EQ(r.timing[2].start, 3.0);
  EXPECT_DOUBLE_EQ(r.occupancy(), 1.0);
}

TEST(Simulate, IndependentTasksOneWorkerSerialize) {
  const TaskGraph g = make_graph({{2, 0}, {2, 0}, {2, 0}}, {{}, {}, {}});
  SimOptions opts;
  const SimResult r = simulate(g, {0}, opts);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
}

TEST(Simulate, IndependentTasksManyWorkersParallelize) {
  const TaskGraph g = make_graph({{2, 0}, {2, 0}, {2, 0}}, {{}, {}, {}});
  SimOptions opts;
  opts.cluster.workers_per_process = 3;
  const SimResult r = simulate(g, {0}, opts);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
  EXPECT_DOUBLE_EQ(r.occupancy(), 1.0);
}

TEST(Simulate, TasksPinnedToProcesses) {
  // Domain 0 → process 0, domain 1 → process 1; independent tasks run in
  // parallel across processes even with one worker each.
  const TaskGraph g = make_graph({{4, 0}, {4, 1}}, {{}, {}});
  SimOptions opts;
  opts.cluster.num_processes = 2;
  const SimResult r = simulate(g, {0, 1}, opts);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
  EXPECT_EQ(r.timing[0].process, 0);
  EXPECT_EQ(r.timing[1].process, 1);
}

TEST(Simulate, PinningForcesIdleness) {
  // Both tasks on process 0 while process 1 idles: the root cause
  // structure of the paper's Fig 7.
  const TaskGraph g = make_graph({{4, 0}, {4, 0}}, {{}, {}});
  SimOptions opts;
  opts.cluster.num_processes = 2;
  const SimResult r = simulate(g, {0, 0}, opts);
  EXPECT_DOUBLE_EQ(r.makespan, 8.0);
  EXPECT_DOUBLE_EQ(r.idle_fraction(1), 1.0);
  EXPECT_DOUBLE_EQ(r.idle_fraction(0), 0.0);
}

TEST(Simulate, BusyEqualsTotalWork) {
  const TaskGraph g = make_graph(
      {{1, 0}, {2, 1}, {3, 0}, {4, 1}, {5, 0}},
      {{}, {}, {0}, {1, 0}, {2, 3}});
  SimOptions opts;
  opts.cluster.num_processes = 2;
  opts.cluster.workers_per_process = 2;
  const SimResult r = simulate(g, {0, 1}, opts);
  simtime_t busy = 0;
  for (part_t p = 0; p < 2; ++p) busy += r.busy_per_process[static_cast<std::size_t>(p)];
  EXPECT_DOUBLE_EQ(busy, g.total_work());
  // Makespan bounded by critical path and by serial time.
  EXPECT_GE(r.makespan, g.critical_path() - 1e-12);
  EXPECT_LE(r.makespan, g.total_work() + 1e-12);
}

TEST(Simulate, RespectsDependencies) {
  const TaskGraph g = make_graph({{5, 0}, {1, 1}}, {{}, {0}});
  SimOptions opts;
  opts.cluster.num_processes = 2;
  const SimResult r = simulate(g, {0, 1}, opts);
  EXPECT_GE(r.timing[1].start, r.timing[0].end);
}

TEST(Simulate, UnboundedWorkersReachCriticalPath) {
  // Wide fan-out: unbounded mode must hit the critical path exactly.
  std::vector<std::pair<double, part_t>> specs{{1, 0}};
  std::vector<std::vector<index_t>> deps{{}};
  for (int i = 0; i < 20; ++i) {
    specs.push_back({2, 0});
    deps.push_back({0});
  }
  const TaskGraph g = make_graph(specs, deps);
  SimOptions opts;
  opts.cluster.workers_per_process = 0;  // unbounded
  const SimResult r = simulate(g, {0}, opts);
  EXPECT_DOUBLE_EQ(r.makespan, g.critical_path());
  EXPECT_EQ(r.workers_used[0], 20);  // peak concurrency
}

TEST(Simulate, FifoOrderAmongReadyTasks) {
  // Tasks become ready in id order; FIFO must run them in that order.
  const TaskGraph g = make_graph({{1, 0}, {1, 0}, {1, 0}}, {{}, {}, {}});
  SimOptions opts;
  const SimResult r = simulate(g, {0}, opts);
  EXPECT_LT(r.timing[0].start, r.timing[1].start);
  EXPECT_LT(r.timing[1].start, r.timing[2].start);
}

TEST(Simulate, CriticalPathPolicyPrefersLongChains) {
  // One worker; task 1 heads a long chain, task 2 is a short leaf. CP
  // policy must run 1 before 2 even though both are ready.
  const TaskGraph g = make_graph({{1, 0}, {1, 0}, {10, 0}}, {{}, {}, {0}});
  SimOptions opts;
  opts.policy = Policy::critical_path;
  const SimResult r = simulate(g, {0}, opts);
  EXPECT_LT(r.timing[0].start, r.timing[1].start);
}

TEST(Simulate, PoliciesPreserveWorkAndDependencies) {
  const TaskGraph g = make_graph(
      {{1, 0}, {2, 0}, {3, 0}, {1, 1}, {2, 1}, {4, 1}},
      {{}, {0}, {0}, {}, {3}, {1, 4}});
  for (const Policy policy : {Policy::eager_fifo, Policy::eager_lifo,
                              Policy::critical_path, Policy::random_order}) {
    SimOptions opts;
    opts.policy = policy;
    opts.cluster.num_processes = 2;
    opts.cluster.workers_per_process = 2;
    const SimResult r = simulate(g, {0, 1}, opts);
    simtime_t busy = 0;
    for (const simtime_t b : r.busy_per_process) busy += b;
    EXPECT_DOUBLE_EQ(busy, g.total_work()) << to_string(policy);
    for (index_t t = 0; t < g.num_tasks(); ++t)
      for (const index_t p : g.predecessors(t))
        EXPECT_GE(r.timing[static_cast<std::size_t>(t)].start,
                  r.timing[static_cast<std::size_t>(p)].end)
            << to_string(policy);
  }
}

TEST(Simulate, CommDelayPostponesCrossProcessOnly) {
  // Task 1 on another process: with latency L its start is pred.end + L.
  const TaskGraph g = make_graph({{2, 0}, {1, 1}, {1, 0}}, {{}, {0}, {0}});
  SimOptions opts;
  opts.cluster.num_processes = 2;
  opts.cluster.workers_per_process = 2;
  opts.comm.latency = 5.0;
  const SimResult r = simulate(g, {0, 1}, opts);
  EXPECT_DOUBLE_EQ(r.timing[1].start, 7.0);  // 2 + 5 (crossing)
  EXPECT_DOUBLE_EQ(r.timing[2].start, 2.0);  // same process: no delay
}

TEST(Simulate, CommPerObjectScalesWithProducerSize) {
  std::vector<Task> tasks(2);
  tasks[0].cost = 1;
  tasks[0].domain = 0;
  tasks[0].num_objects = 10;
  tasks[1].cost = 1;
  tasks[1].domain = 1;
  const TaskGraph g(std::move(tasks), {{}, {0}});
  SimOptions opts;
  opts.cluster.num_processes = 2;
  opts.comm.per_object = 0.5;
  const SimResult r = simulate(g, {0, 1}, opts);
  EXPECT_DOUBLE_EQ(r.timing[1].start, 1.0 + 0.5 * 10);
}

TEST(Simulate, GanttTracesConsistent) {
  const TaskGraph g = make_graph({{2, 0}, {3, 1}, {1, 0}}, {{}, {}, {0, 1}});
  SimOptions opts;
  opts.cluster.num_processes = 2;
  const SimResult r = simulate(g, {0, 1}, opts);
  const GanttTrace per_worker = r.gantt(g, true, "w");
  EXPECT_EQ(per_worker.spans.size(), 3u);
  EXPECT_DOUBLE_EQ(per_worker.makespan, r.makespan);
  const GanttTrace per_proc = r.gantt(g, false, "p");
  EXPECT_EQ(per_proc.resource_names.size(), 2u);
  // Aggregated busy time per process ≤ sum of spans, ≥ max span.
  const auto busy = per_proc.busy_per_resource();
  EXPECT_DOUBLE_EQ(busy[0], 3.0);  // tasks 0 (0-2) and 2 (3-4): merged 0-2,3-4
  EXPECT_DOUBLE_EQ(busy[1], 3.0);
}

TEST(Simulate, DeterministicAcrossRuns) {
  const TaskGraph g = make_graph(
      {{1, 0}, {2, 1}, {3, 2}, {1, 3}, {2, 0}, {3, 1}},
      {{}, {}, {0}, {1}, {2, 3}, {4}});
  SimOptions opts;
  opts.cluster.num_processes = 2;
  opts.cluster.workers_per_process = 2;
  const SimResult a = simulate(g, {0, 0, 1, 1}, opts);
  const SimResult b = simulate(g, {0, 0, 1, 1}, opts);
  EXPECT_EQ(a.makespan, b.makespan);
  for (index_t t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(a.timing[static_cast<std::size_t>(t)].start,
              b.timing[static_cast<std::size_t>(t)].start);
    EXPECT_EQ(a.timing[static_cast<std::size_t>(t)].worker,
              b.timing[static_cast<std::size_t>(t)].worker);
  }
}

TEST(Simulate, TaskOverheadChargedPerTask) {
  const TaskGraph g = make_graph({{1, 0}, {1, 0}, {1, 0}}, {{}, {0}, {1}});
  SimOptions opts;
  opts.task_overhead = 2.0;
  const SimResult r = simulate(g, {0}, opts);
  EXPECT_DOUBLE_EQ(r.makespan, 9.0);  // 3 × (1 + 2)
  // Busy accounting includes the overhead (the core is occupied).
  EXPECT_DOUBLE_EQ(r.busy_per_process[0], 9.0);
  EXPECT_DOUBLE_EQ(r.occupancy(), 1.0);
}

TEST(Simulate, ParsePolicyNames) {
  EXPECT_EQ(parse_policy("eager"), Policy::eager_fifo);
  EXPECT_EQ(parse_policy("cp"), Policy::critical_path);
  EXPECT_EQ(parse_policy("random"), Policy::random_order);
  EXPECT_THROW(parse_policy("bogus"), precondition_error);
}

}  // namespace
}  // namespace tamp::sim
