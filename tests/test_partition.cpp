// End-to-end tests of partition_graph(): coverage, balance, cut quality,
// determinism, multi-constraint behaviour, k-way method.
#include <gtest/gtest.h>

#include <set>

#include "graph/builder.hpp"
#include "partition/partition.hpp"

namespace tamp::partition {
namespace {

TEST(Partition, SinglePartIsIdentity) {
  const auto g = graph::make_grid_graph(4, 4);
  Options o;
  o.nparts = 1;
  const Result r = partition_graph(g, o);
  EXPECT_EQ(r.edge_cut, 0);
  for (const part_t p : r.part) EXPECT_EQ(p, 0);
}

TEST(Partition, CoversAllParts) {
  const auto g = graph::make_grid_graph(20, 20);
  Options o;
  o.nparts = 7;  // non-power-of-two
  const Result r = partition_graph(g, o);
  std::set<part_t> used(r.part.begin(), r.part.end());
  EXPECT_EQ(used.size(), 7u);
  for (const part_t p : r.part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 7);
  }
}

TEST(Partition, BalancedBisectionOfGrid) {
  const auto g = graph::make_grid_graph(32, 32);
  Options o;
  o.nparts = 2;
  const Result r = partition_graph(g, o);
  EXPECT_LE(r.max_imbalance(), 1.06);
  // A 32×32 grid bisects with cut 32; multilevel should get close.
  EXPECT_LE(r.edge_cut, 48);
}

TEST(Partition, ReportedMetricsConsistent) {
  const auto g = graph::make_grid_graph(16, 16);
  Options o;
  o.nparts = 4;
  const Result r = partition_graph(g, o);
  EXPECT_EQ(r.edge_cut, edge_cut(g, r.part));
  EXPECT_EQ(r.loads, part_loads(g, r.part, 4));
  EXPECT_NEAR(r.max_imbalance(), max_imbalance(g, r.part, 4), 1e-12);
}

TEST(Partition, DeterministicForSeed) {
  const auto g = graph::make_grid_graph(24, 24);
  Options o;
  o.nparts = 8;
  o.seed = 99;
  const Result a = partition_graph(g, o);
  const Result b = partition_graph(g, o);
  EXPECT_EQ(a.part, b.part);
  o.seed = 100;
  const Result c = partition_graph(g, o);
  EXPECT_NE(a.part, c.part);  // different seed explores different space
}

TEST(Partition, RejectsBadArguments) {
  const auto g = graph::make_grid_graph(3, 3);
  Options o;
  o.nparts = 0;
  EXPECT_THROW(partition_graph(g, o), precondition_error);
  o.nparts = 10;  // more parts than vertices
  EXPECT_THROW(partition_graph(g, o), precondition_error);
}

TEST(Partition, WeightedVerticesBalanceByWeight) {
  // Half the vertices carry weight 3, half weight 1; a 2-way split must
  // balance weight, not counts.
  graph::Builder b(16, 1);
  for (index_t v = 0; v + 1 < 16; ++v) b.add_edge(v, v + 1);
  for (index_t v = 0; v < 8; ++v) b.set_vertex_weight(v, 0, 3);
  const auto g = b.build();
  Options o;
  o.nparts = 2;
  const Result r = partition_graph(g, o);
  EXPECT_LE(r.max_imbalance(), 1.25);  // 32 total, slack allows ±3
}

TEST(Partition, MultiConstraintBalancesBothClasses) {
  // 2 constraints, classes interleaved along a path: both must split.
  graph::Builder b(64, 2);
  for (index_t v = 0; v + 1 < 64; ++v) b.add_edge(v, v + 1);
  for (index_t v = 0; v < 64; ++v) {
    b.set_vertex_weights(
        v, std::vector<weight_t>{v % 2 == 0 ? weight_t{1} : weight_t{0},
                                 v % 2 == 0 ? weight_t{0} : weight_t{1}});
  }
  const auto g = b.build();
  Options o;
  o.nparts = 2;
  const Result r = partition_graph(g, o);
  for (int c = 0; c < 2; ++c) EXPECT_LE(r.imbalance(c), 1.2) << "constraint " << c;
}

TEST(Partition, MultiConstraintSeparatedClasses) {
  // The hard case: constraint classes live in different graph regions
  // (like temporal levels in a graded mesh). Single-constraint balance
  // would put each region in its own part; multi-constraint must split
  // *each region* across both parts.
  const index_t n = 128;
  graph::Builder b(n, 2);
  for (index_t v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  for (index_t v = 0; v < n; ++v)
    b.set_vertex_weights(
        v, std::vector<weight_t>{v < n / 2 ? weight_t{1} : weight_t{0},
                                 v < n / 2 ? weight_t{0} : weight_t{1}});
  const auto g = b.build();
  Options o;
  o.nparts = 2;
  const Result r = partition_graph(g, o);
  for (int c = 0; c < 2; ++c) EXPECT_LE(r.imbalance(c), 1.25) << "constraint " << c;
  // The cut must be ≥ 2: one crossing inside each half.
  EXPECT_GE(r.edge_cut, 2);
}

TEST(Partition, KwayDirectAlsoBalances) {
  const auto g = graph::make_grid_graph(24, 24);
  Options o;
  o.nparts = 6;
  o.method = Method::kway_direct;
  const Result r = partition_graph(g, o);
  std::set<part_t> used(r.part.begin(), r.part.end());
  EXPECT_EQ(used.size(), 6u);
  EXPECT_LE(r.max_imbalance(), 1.2);
}

TEST(Partition, InterprocessCommMetric) {
  const auto g = graph::make_grid_graph(4, 1);  // path of 4
  const std::vector<part_t> part{0, 1, 2, 3};
  // All domains on one process: no interprocess communication.
  EXPECT_EQ(interprocess_comm(g, part, {0, 0, 0, 0}), 0);
  // Two processes split 0,1 | 2,3: single crossing edge 1-2.
  EXPECT_EQ(interprocess_comm(g, part, {0, 0, 1, 1}), 1);
  // Each domain its own process: all 3 edges cross.
  EXPECT_EQ(interprocess_comm(g, part, {0, 1, 2, 3}), 3);
}

TEST(Partition, LargerGridManyParts) {
  const auto g = graph::make_grid_graph(48, 48);
  Options o;
  o.nparts = 16;
  const Result r = partition_graph(g, o);
  EXPECT_LE(r.max_imbalance(), 1.15);
  // Perfect 16-way split of a 48×48 grid cuts ~ 4·3·48·2/2 = 288; allow
  // generous multilevel headroom.
  EXPECT_LE(r.edge_cut, 500);
}

}  // namespace
}  // namespace tamp::partition
