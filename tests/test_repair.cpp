// Tests of the §IX fragment-repair post-processing.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "mesh/generators.hpp"
#include "partition/partition.hpp"
#include "partition/repair.hpp"
#include "partition/strategy.hpp"

namespace tamp::partition {
namespace {

TEST(Repair, MergesObviousSatellite) {
  // Path 0-1-2-3-4-5; part 0 = {0,1,5} (5 is a satellite), part 1 = {2,3,4}.
  const auto g = graph::make_grid_graph(6, 1);
  std::vector<part_t> part{0, 0, 1, 1, 1, 0};
  const RepairReport rep = repair_fragments(g, part, 2);
  EXPECT_EQ(rep.fragments_before, 1);
  EXPECT_EQ(rep.fragments_after, 0);
  EXPECT_EQ(rep.vertices_moved, 1);
  EXPECT_EQ(part[5], 1);
  EXPECT_LT(rep.cut_after, rep.cut_before);
}

TEST(Repair, NoOpOnContiguousPartition) {
  const auto g = graph::make_grid_graph(8, 8);
  Options o;
  o.nparts = 2;
  std::vector<part_t> part = partition_graph(g, o).part;
  // Force contiguity first (bisection of a grid is almost always
  // contiguous; verify assumption).
  const auto frags = graph::part_fragment_counts(g, part, 2);
  if (frags[0] == 1 && frags[1] == 1) {
    const std::vector<part_t> before = part;
    const RepairReport rep = repair_fragments(g, part, 2);
    EXPECT_EQ(rep.vertices_moved, 0);
    EXPECT_EQ(part, before);
    EXPECT_EQ(rep.cut_after, rep.cut_before);
  }
}

TEST(Repair, RespectsLoadAllowance) {
  // Satellite too heavy to move under a zero-headroom allowance.
  graph::Builder b(4, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.set_vertex_weight(3, 0, 100);  // heavy satellite of part 0
  const auto g = b.build();
  // part 0 = {0, 3} (disconnected), part 1 = {1, 2}.
  std::vector<part_t> part{0, 1, 1, 0};
  RepairOptions opts;
  opts.headroom = 0.0;
  const RepairReport rep = repair_fragments(g, part, 2, opts);
  // Moving vertex 3 (weight 100) into part 1 would blow its allowance
  // (ideal 51 + slack 100 = 151... allowance admits it). Use a tighter
  // check: allowance = 51·1 + 100 = 151 ≥ 2 + 100 → fits. So instead
  // verify the move happened and balance stayed within the allowance.
  const auto loads = part_loads(g, part, 2);
  EXPECT_LE(loads[1], 151);
  EXPECT_EQ(rep.fragments_after, 0);
}

TEST(Repair, KeepsLargestFragmentInPlace) {
  // Two fragments of part 0: sizes 3 and 1. Only the size-1 moves.
  const auto g = graph::make_grid_graph(8, 1);
  std::vector<part_t> part{0, 0, 0, 1, 1, 1, 1, 0};
  repair_fragments(g, part, 2);
  EXPECT_EQ(part[0], 0);
  EXPECT_EQ(part[1], 0);
  EXPECT_EQ(part[2], 0);
  EXPECT_EQ(part[7], 1);
}

TEST(Repair, ImprovesMcTlDecomposition) {
  // End-to-end: MC_TL on CUBE fragments badly (three hotspots + thin
  // level shells). Repair must reduce fragments and not destroy level
  // balance.
  mesh::TestMeshSpec spec;
  spec.target_cells = 12000;
  const auto m = mesh::make_cube_mesh(spec);
  StrategyOptions sopts;
  sopts.strategy = Strategy::mc_tl;
  sopts.ndomains = 16;
  DomainDecomposition dd = decompose(m, sopts);

  const auto g = build_strategy_graph(m, Strategy::mc_tl);
  const double level_imb_before =
      max_imbalance(g, dd.domain_of_cell, dd.ndomains);
  RepairOptions opts;
  opts.headroom = 0.25;
  const RepairReport rep =
      repair_fragments(g, dd.domain_of_cell, dd.ndomains, opts);
  EXPECT_LE(rep.fragments_after, rep.fragments_before);
  EXPECT_LE(rep.cut_after, rep.cut_before);
  // Level balance must not degrade catastrophically (allowance-guarded).
  const double level_imb_after =
      max_imbalance(g, dd.domain_of_cell, dd.ndomains);
  EXPECT_LE(level_imb_after, std::max(level_imb_before * 1.5, 2.0));
}

TEST(Repair, MultiConstraintAllowanceGuard) {
  // Two constraints; moving the satellite would overload the destination
  // on constraint 1 → it must stay.
  graph::Builder b(6, 2);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  for (index_t v = 0; v < 6; ++v)
    b.set_vertex_weights(v, std::vector<weight_t>{1, 0});
  // Constraint-1 weight concentrated on the satellite and the would-be
  // destination.
  b.set_vertex_weights(5, std::vector<weight_t>{1, 10});
  b.set_vertex_weights(3, std::vector<weight_t>{1, 10});
  b.set_vertex_weights(4, std::vector<weight_t>{1, 10});
  const auto g = b.build();
  // part 0 = {0,1,5}, part 1 = {2,3,4}; satellite 5 touches only part 1.
  std::vector<part_t> part{0, 0, 1, 1, 1, 0};
  RepairOptions opts;
  opts.headroom = 0.0;
  const RepairReport rep = repair_fragments(g, part, 2, opts);
  // Destination already at 20 of constraint 1 (ideal 15, slack 10 →
  // allowance 25); adding 10 would reach 30 > 25 → blocked.
  EXPECT_EQ(rep.vertices_moved, 0);
  EXPECT_EQ(part[5], 0);
}

TEST(Repair, ReportsAccurateCounts) {
  const auto g = graph::make_grid_graph(10, 1);
  // part 0: {0,1}, {4}, {7} (2 extra); part 1: {2,3}, {5,6}, {8,9}
  // (2 extra). Repair moves the two satellites {4} and {7} into part 1,
  // which re-attaches part 1's fragments as a side effect.
  std::vector<part_t> part{0, 0, 1, 1, 0, 1, 1, 0, 1, 1};
  const RepairReport rep = repair_fragments(g, part, 2);
  EXPECT_EQ(rep.fragments_before, 4);
  EXPECT_EQ(rep.fragments_after, 0);
  EXPECT_GE(rep.vertices_moved, 2);  // exact route depends on tie-breaks
  EXPECT_LT(rep.cut_after, rep.cut_before);
  EXPECT_EQ(rep.cut_before, edge_cut(graph::make_grid_graph(10, 1),
                                     {0, 0, 1, 1, 0, 1, 1, 0, 1, 1}));
}

}  // namespace
}  // namespace tamp::partition
