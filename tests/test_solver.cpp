// Tests of the adaptive finite-volume Euler solver: conservation,
// freestream preservation, level assignment, serial-vs-task equivalence,
// Heun accuracy, stability.
#include <gtest/gtest.h>

#include <cmath>

#include "mesh/generators.hpp"
#include "partition/strategy.hpp"
#include "solver/euler.hpp"

namespace tamp::solver {
namespace {

using mesh::Vec3;

TEST(Solver, FreestreamPreservedExactly) {
  // A uniform state with zero velocity has equal-and-opposite fluxes
  // everywhere: nothing changes, including at walls.
  mesh::Mesh m = mesh::make_lattice_mesh(5, 4, 3);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0, 0, 0}, 1.0);
  s.assign_temporal_levels();
  for (int it = 0; it < 3; ++it) s.run_iteration();
  for (index_t c = 0; c < m.num_cells(); ++c) {
    EXPECT_NEAR(s.cell_density(c), 1.0, 1e-13);
    EXPECT_NEAR(s.cell_pressure(c), 1.0, 1e-12);
  }
}

TEST(Solver, UniformMeshGetsSingleLevel) {
  mesh::Mesh m = mesh::make_lattice_mesh(4, 4, 4);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0, 0, 0}, 1.0);
  const auto levels = s.assign_temporal_levels();
  for (const level_t l : levels) EXPECT_EQ(l, 0);
  EXPECT_GT(s.dt0(), 0.0);
}

TEST(Solver, GradedMeshGetsMultipleLevels) {
  mesh::Mesh m = mesh::make_graded_box_mesh(12, 12, 12, 1.25);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0, 0, 0}, 1.0);
  s.assign_temporal_levels();
  EXPECT_GE(m.max_level(), 2);
  // The smallest cell is level 0 and the biggest is the max level.
  EXPECT_EQ(m.cell_level(0), 0);
  EXPECT_EQ(m.cell_level(m.num_cells() - 1), m.max_level());
}

TEST(Solver, MassAndEnergyConservedWithPulse) {
  mesh::Mesh m = mesh::make_graded_box_mesh(10, 10, 10, 1.2);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0, 0, 0}, 1.0);
  s.add_pulse({2.0, 2.0, 2.0}, 1.5, 0.2);
  s.assign_temporal_levels();
  const State before = s.conserved_totals();
  for (int it = 0; it < 4; ++it) s.run_iteration();
  const State after = s.conserved_totals();
  // Mass (var 0) and energy (var 4) conserved exactly: walls are slip.
  EXPECT_NEAR(after[0], before[0], 1e-10 * std::abs(before[0]));
  EXPECT_NEAR(after[4], before[4], 1e-10 * std::abs(before[4]));
  EXPECT_TRUE(s.state_is_finite());
}

TEST(Solver, ConservationHoldsMidIterationToo) {
  // The invariant includes in-flight accumulators, so it must hold after
  // every iteration even though coarse cells lag their faces.
  mesh::Mesh m = mesh::make_graded_box_mesh(8, 8, 8, 1.3);
  EulerSolver s(m);
  s.initialize_uniform(1.2, {0.1, 0, 0}, 1.0);
  s.add_pulse({1.0, 1.0, 1.0}, 1.0, 0.3);
  s.assign_temporal_levels();
  const State start = s.conserved_totals();
  for (int it = 0; it < 6; ++it) {
    s.run_iteration();
    const State now = s.conserved_totals();
    EXPECT_NEAR(now[0], start[0], 1e-9 * std::abs(start[0])) << "iter " << it;
    EXPECT_NEAR(now[4], start[4], 1e-9 * std::abs(start[4])) << "iter " << it;
  }
}

TEST(Solver, PulseSpreadsOutward) {
  mesh::Mesh m = mesh::make_lattice_mesh(12, 12, 12);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0, 0, 0}, 1.0);
  s.add_pulse({6.0, 6.0, 6.0}, 1.5, 0.5);
  s.assign_temporal_levels();
  const double peak_before = s.max_density();
  for (int it = 0; it < 10; ++it) s.run_iteration();
  // Acoustic pulse disperses: peak density decays towards 1.
  EXPECT_LT(s.max_density(), peak_before);
  EXPECT_GT(s.max_density(), 1.0 - 1e-9);
  EXPECT_TRUE(s.state_is_finite());
}

TEST(Solver, TimeAdvancesBySubiterations) {
  mesh::Mesh m = mesh::make_graded_box_mesh(8, 8, 8, 1.3);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0, 0, 0}, 1.0);
  s.assign_temporal_levels();
  const double dt0 = s.dt0();
  const int nsub = 1 << m.max_level();
  s.run_iteration();
  EXPECT_NEAR(s.time(), dt0 * nsub, 1e-15 * nsub);
}

TEST(Solver, TaskExecutionMatchesSerial) {
  // The task-based run must produce the same state as the serial
  // reference (same operations, order fixed by the DAG).
  mesh::Mesh m1 = mesh::make_graded_box_mesh(8, 6, 5, 1.25);
  mesh::Mesh m2 = mesh::make_graded_box_mesh(8, 6, 5, 1.25);
  SolverConfig cfg;
  EulerSolver serial(m1, cfg), tasked(m2, cfg);
  for (EulerSolver* s : {&serial, &tasked}) {
    s->initialize_uniform(1.0, {0.1, 0.05, 0}, 1.0);
    s->add_pulse({1.5, 1.0, 0.8}, 0.8, 0.25);
    s->assign_temporal_levels();
  }

  partition::StrategyOptions sopts;
  sopts.strategy = partition::Strategy::mc_tl;
  sopts.ndomains = 4;
  const auto dd = partition::decompose(m2, sopts);

  serial.run_iteration();
  runtime::RuntimeConfig rc;
  rc.num_processes = 2;
  rc.workers_per_process = 2;
  tasked.run_iteration_tasks(dd.domain_of_cell, 4,
                             partition::map_domains_to_processes(
                                 4, 2, partition::DomainMapping::block),
                             rc);

  for (index_t c = 0; c < m1.num_cells(); ++c) {
    EXPECT_NEAR(tasked.cell_density(c), serial.cell_density(c), 1e-12)
        << "cell " << c;
    EXPECT_NEAR(tasked.cell_pressure(c), serial.cell_pressure(c), 1e-11)
        << "cell " << c;
  }
  EXPECT_NEAR(tasked.time(), serial.time(), 1e-15);
}

TEST(Solver, TaskExecutionConserves) {
  mesh::Mesh m = mesh::make_graded_box_mesh(9, 9, 9, 1.2);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0, 0, 0}, 1.0);
  s.add_pulse({1.0, 1.0, 1.0}, 1.0, 0.2);
  s.assign_temporal_levels();
  partition::StrategyOptions sopts;
  sopts.strategy = partition::Strategy::sc_oc;
  sopts.ndomains = 6;
  const auto dd = partition::decompose(m, sopts);
  const State before = s.conserved_totals();
  runtime::RuntimeConfig rc;
  rc.num_processes = 3;
  rc.workers_per_process = 2;
  for (int it = 0; it < 2; ++it)
    s.run_iteration_tasks(dd.domain_of_cell, 6,
                          partition::map_domains_to_processes(
                              6, 3, partition::DomainMapping::block),
                          rc);
  const State after = s.conserved_totals();
  EXPECT_NEAR(after[0], before[0], 1e-10 * std::abs(before[0]));
  EXPECT_NEAR(after[4], before[4], 1e-10 * std::abs(before[4]));
}

TEST(Solver, HeunMoreAccurateThanEulerOnSmoothFlow) {
  // Two identical pulses; integrate the same physical time with Euler
  // (via run_iteration on a single-level mesh) and Heun; compare against
  // a fine-step reference. Heun's error must be smaller.
  auto make = [](SolverConfig cfg, mesh::Mesh& m) {
    EulerSolver s(m, cfg);
    s.initialize_uniform(1.0, {0, 0, 0}, 1.0);
    s.add_pulse({4.0, 4.0, 4.0}, 2.0, 0.1);
    s.assign_temporal_levels();
    return s;
  };
  SolverConfig big;
  big.cfl = 0.4;
  SolverConfig small;
  small.cfl = 0.05;  // reference: 8× finer steps

  mesh::Mesh m_euler = mesh::make_lattice_mesh(8, 8, 8);
  mesh::Mesh m_heun = mesh::make_lattice_mesh(8, 8, 8);
  mesh::Mesh m_ref = mesh::make_lattice_mesh(8, 8, 8);
  EulerSolver euler = make(big, m_euler);
  EulerSolver heun = make(big, m_heun);
  EulerSolver ref = make(small, m_ref);

  const int steps = 4;
  for (int i = 0; i < steps; ++i) euler.run_iteration();
  for (int i = 0; i < steps; ++i) heun.run_iteration_heun();
  const double target_time = euler.time();
  while (ref.time() < target_time - 1e-12) ref.run_iteration_heun();

  double err_euler = 0, err_heun = 0;
  for (index_t c = 0; c < m_ref.num_cells(); ++c) {
    err_euler += std::abs(euler.cell_density(c) - ref.cell_density(c));
    err_heun += std::abs(heun.cell_density(c) - ref.cell_density(c));
  }
  EXPECT_LT(err_heun, err_euler);
}

TEST(Solver, HeunRequiresSingleLevel) {
  mesh::Mesh m = mesh::make_graded_box_mesh(8, 8, 8, 1.3);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0, 0, 0}, 1.0);
  s.assign_temporal_levels();
  ASSERT_GT(m.max_level(), 0);
  EXPECT_THROW(s.run_iteration_heun(), precondition_error);
}

TEST(Solver, RequiresLevelAssignmentBeforeRunning) {
  mesh::Mesh m = mesh::make_lattice_mesh(3, 3, 3);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0, 0, 0}, 1.0);
  EXPECT_THROW(s.run_iteration(), precondition_error);
}

TEST(Solver, RejectsBadConfigAndState) {
  mesh::Mesh m = mesh::make_lattice_mesh(3, 3, 3);
  SolverConfig bad;
  bad.gamma = 0.9;
  EXPECT_THROW(EulerSolver(m, bad), precondition_error);
  bad = SolverConfig{};
  bad.cfl = 0;
  EXPECT_THROW(EulerSolver(m, bad), precondition_error);
  EulerSolver s(m);
  EXPECT_THROW(s.initialize_uniform(-1.0, {0, 0, 0}, 1.0), precondition_error);
  EXPECT_THROW(s.initialize_uniform(1.0, {0, 0, 0}, 0.0), precondition_error);
}

TEST(Solver, CostModelCalibrationSane) {
  mesh::Mesh m = mesh::make_lattice_mesh(10, 10, 10);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0, 0, 0}, 1.0);
  s.assign_temporal_levels();
  const auto cm = s.measure_cost_model(2);
  EXPECT_DOUBLE_EQ(cm.cell_unit, 1.0);
  EXPECT_GT(cm.face_unit, 0.01);
  EXPECT_LT(cm.face_unit, 20.0);
}

}  // namespace
}  // namespace tamp::solver
