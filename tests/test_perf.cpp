// Tests of the perf counter-group wrapper and its runtime attribution:
// fallback tiers, multiplex-corrected deltas, per-class aggregation, and
// the "perf.* keys only when counters are live" publication contract.
//
// Hardware-tier assertions are availability-conditional: containers and
// CI runners usually deny perf_event_open (or have no PMU), which is
// exactly the environment the fallback tiers exist for, so the tests
// assert graceful degradation rather than demanding counters.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "runtime/perf_report.hpp"
#include "runtime/runtime.hpp"

namespace tamp {
namespace {

using obs::PerfCounterId;
using obs::PerfGroup;
using obs::PerfSample;
using obs::PerfTier;
using taskgraph::Task;
using taskgraph::TaskGraph;

TEST(PerfGroup, UnavailableTierReadsNothing) {
  PerfGroup group(PerfTier::unavailable);
  EXPECT_EQ(group.tier(), PerfTier::unavailable);
  EXPECT_EQ(group.num_valid(), 0);
  PerfSample s;
  s.thread_cpu_ns = 42.0;
  EXPECT_FALSE(group.read(s));
  EXPECT_EQ(s.thread_cpu_ns, 42.0);  // untouched
}

TEST(PerfGroup, ClockOnlyTierFillsThreadCpuMonotonically) {
  PerfGroup group(PerfTier::clock_only);
  EXPECT_EQ(group.tier(), PerfTier::clock_only);
  EXPECT_EQ(group.num_valid(), 0);
  PerfSample a, b;
  ASSERT_TRUE(group.read(a));
  // Burn a little CPU so the thread clock must advance.
  volatile double sink = 0;
  for (int i = 0; i < 200000; ++i) sink = sink + 1e-9;
  ASSERT_TRUE(group.read(b));
  EXPECT_GE(b.thread_cpu_ns, a.thread_cpu_ns);
  for (int c = 0; c < obs::kNumPerfCounters; ++c)
    EXPECT_EQ(b.count[static_cast<std::size_t>(c)], 0u);
}

TEST(PerfGroup, ProbeNeverExceedsCeiling) {
  EXPECT_EQ(PerfGroup::probe(PerfTier::unavailable), PerfTier::unavailable);
  EXPECT_EQ(PerfGroup::probe(PerfTier::clock_only), PerfTier::clock_only);
  // The full probe grants whatever the environment allows, but never
  // less than clock_only (the clock needs no privilege).
  EXPECT_GE(static_cast<int>(PerfGroup::probe(PerfTier::hardware)),
            static_cast<int>(PerfTier::clock_only));
}

TEST(PerfGroup, HardwareTierReadsConsistentCounts) {
  PerfGroup group(PerfTier::hardware);
  if (group.tier() != PerfTier::hardware)
    GTEST_SKIP() << "no perf_event access in this environment";
  PerfSample a, b;
  ASSERT_TRUE(group.read(a));
  volatile double sink = 0;
  for (int i = 0; i < 500000; ++i) sink = sink + 1e-9;
  ASSERT_TRUE(group.read(b));
  const auto cyc = static_cast<std::size_t>(PerfCounterId::cycles);
  EXPECT_GT(b.count[cyc], a.count[cyc]);
  EXPECT_GE(b.time_enabled_ns, a.time_enabled_ns);
  const obs::PerfDelta d = obs::perf_delta(a, b);
  EXPECT_GT(d.count[cyc], 0.0);
  EXPECT_GT(d.running_share, 0.0);
  EXPECT_LE(d.running_share, 1.0 + 1e-9);
}

TEST(PerfDelta, AppliesMultiplexCorrection) {
  PerfSample begin, end;
  begin.count = {1000, 500, 10, 5, 100};
  begin.time_enabled_ns = 1000;
  begin.time_running_ns = 1000;
  end.count = {2000, 1000, 30, 15, 300};
  // Group enabled for 1000 ns more but only running for 500 of them:
  // counts extrapolate ×2.
  end.time_enabled_ns = 2000;
  end.time_running_ns = 1500;
  const obs::PerfDelta d = obs::perf_delta(begin, end);
  EXPECT_DOUBLE_EQ(d.running_share, 0.5);
  EXPECT_DOUBLE_EQ(d.count[0], 2000.0);
  EXPECT_DOUBLE_EQ(d.count[1], 1000.0);
  EXPECT_DOUBLE_EQ(d.count[2], 40.0);
}

TEST(PerfDelta, ZeroWindowYieldsZeros) {
  PerfSample s;
  s.count = {7, 7, 7, 7, 7};
  const obs::PerfDelta d = obs::perf_delta(s, s);
  for (double c : d.count) EXPECT_EQ(c, 0.0);
  EXPECT_DOUBLE_EQ(d.running_share, 1.0);
}

TEST(PerfEnv, TampPerfCapsRequestedTier) {
  const char* old = std::getenv("TAMP_PERF");
  const std::string saved = old ? old : "";
  setenv("TAMP_PERF", "off", 1);
  EXPECT_EQ(obs::requested_perf_tier(), PerfTier::unavailable);
  setenv("TAMP_PERF", "clock", 1);
  EXPECT_EQ(obs::requested_perf_tier(), PerfTier::clock_only);
  setenv("TAMP_PERF", "anything-else", 1);
  EXPECT_EQ(obs::requested_perf_tier(), PerfTier::hardware);
  if (old)
    setenv("TAMP_PERF", saved.c_str(), 1);
  else
    unsetenv("TAMP_PERF");
}

TEST(TaskClass, DenseIdRoundTrips) {
  for (int level = 0; level < 4; ++level)
    for (int type = 0; type < 2; ++type)
      for (int loc = 0; loc < 2; ++loc) {
        taskgraph::TaskClass c;
        c.level = static_cast<level_t>(level);
        c.type = static_cast<taskgraph::ObjectType>(type);
        c.locality = static_cast<taskgraph::Locality>(loc);
        EXPECT_EQ(taskgraph::TaskClass::from_id(c.id()), c);
      }
  taskgraph::TaskClass c;
  c.level = 2;
  c.type = taskgraph::ObjectType::face;
  c.locality = taskgraph::Locality::internal;
  EXPECT_EQ(c.label(), "t2:face:int");
}

#if defined(TAMP_TRACING_ENABLED)

TaskGraph two_class_graph() {
  std::vector<Task> tasks(4);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].domain = 0;
    tasks[i].cost = 1;
    tasks[i].num_objects = static_cast<index_t>(10 * (i + 1));
    tasks[i].subiteration = static_cast<index_t>(i / 2);
    tasks[i].level = static_cast<level_t>(i % 2);
  }
  return TaskGraph(std::move(tasks), {{}, {0}, {1}, {2}});
}

/// Pins TAMP_PERF for one test: the env ceiling composes with the config
/// ceiling inside runtime::execute, so tests that assert a specific tier
/// must not inherit whatever the harness environment set.
class ScopedTampPerf {
public:
  explicit ScopedTampPerf(const char* value) {
    const char* old = std::getenv("TAMP_PERF");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr)
      setenv("TAMP_PERF", value, 1);
    else
      unsetenv("TAMP_PERF");
  }
  ~ScopedTampPerf() {
    if (had_old_)
      setenv("TAMP_PERF", old_.c_str(), 1);
    else
      unsetenv("TAMP_PERF");
  }
  ScopedTampPerf(const ScopedTampPerf&) = delete;
  ScopedTampPerf& operator=(const ScopedTampPerf&) = delete;

private:
  bool had_old_ = false;
  std::string old_;
};

runtime::ExecutionReport run_with_tier(const TaskGraph& g, PerfTier tier,
                                       bool enabled = true) {
  runtime::RuntimeConfig cfg;
  cfg.workers_per_process = 2;
  cfg.perf.enabled = enabled;
  cfg.perf.max_tier = tier;
  volatile double sink = 0;
  return runtime::execute(g, {0}, cfg, [&sink](index_t) {
    for (int i = 0; i < 10000; ++i) sink = sink + 1e-9;
  });
}

TEST(RuntimePerf, DisabledLeavesAttributionEmpty) {
  const TaskGraph g = two_class_graph();
  const runtime::ExecutionReport report =
      run_with_tier(g, PerfTier::hardware, /*enabled=*/false);
  EXPECT_EQ(report.perf.tier, PerfTier::unavailable);
  EXPECT_TRUE(report.perf.per_task.empty());
  EXPECT_FALSE(report.perf.live());
}

TEST(RuntimePerf, ForcedUnavailableYieldsValidEmptyProfile) {
  const TaskGraph g = two_class_graph();
  const runtime::ExecutionReport report =
      run_with_tier(g, PerfTier::unavailable);
  EXPECT_EQ(report.perf.tier, PerfTier::unavailable);
  EXPECT_TRUE(report.perf.per_task.empty());
  const runtime::PerfProfile profile = runtime::aggregate_perf(g, report);
  EXPECT_EQ(profile.tier, PerfTier::unavailable);
  EXPECT_TRUE(profile.rows.empty());
  EXPECT_FALSE(profile.live());
}

TEST(RuntimePerf, ClockTierAttributesCpuTimePerTask) {
  const ScopedTampPerf env("clock");
  const TaskGraph g = two_class_graph();
  const runtime::ExecutionReport report =
      run_with_tier(g, PerfTier::clock_only);
  EXPECT_EQ(report.perf.tier, PerfTier::clock_only);
  ASSERT_EQ(report.perf.per_task.size(),
            static_cast<std::size_t>(g.num_tasks()));
  EXPECT_FALSE(report.perf.live());  // clock tier is not counter-live
  for (const obs::PerfDelta& d : report.perf.per_task)
    EXPECT_GE(d.thread_cpu_ns, 0.0);
}

TEST(RuntimePerf, AggregationGroupsByProcessSubiterationClass) {
  const ScopedTampPerf env("clock");
  const TaskGraph g = two_class_graph();
  const runtime::ExecutionReport report =
      run_with_tier(g, PerfTier::clock_only);
  const runtime::PerfProfile profile = runtime::aggregate_perf(g, report);
  // 2 subiterations × 2 levels, one process: 4 rows, 1 task each.
  ASSERT_EQ(profile.rows.size(), 4u);
  double objects = 0;
  for (const runtime::PerfProfileRow& r : profile.rows) {
    EXPECT_EQ(r.tasks, 1);
    EXPECT_EQ(r.process, 0);
    objects += r.objects;
  }
  EXPECT_DOUBLE_EQ(objects, 10 + 20 + 30 + 40);
  // Sorted by (process, subiteration, class id).
  for (std::size_t i = 1; i < profile.rows.size(); ++i) {
    const auto& a = profile.rows[i - 1];
    const auto& b = profile.rows[i];
    EXPECT_TRUE(a.subiteration < b.subiteration ||
                (a.subiteration == b.subiteration &&
                 a.cls.id() < b.cls.id()));
  }
}

TEST(RuntimePerf, NoPerfKeysLeakFromDegradedRuns) {
  const TaskGraph g = two_class_graph();
  const runtime::ExecutionReport report =
      run_with_tier(g, PerfTier::clock_only);
  runtime::publish_execution_metrics(g, report);
  runtime::publish_perf_metrics(runtime::aggregate_perf(g, report));
  const obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
  for (const auto& [name, value] : snap.gauges)
    EXPECT_TRUE(name.rfind("perf.", 0) != 0) << "leaked metric: " << name;
}

TEST(RuntimePerf, LiveProfilePublishesPerfKeys) {
  // Synthetic live profile: the publication contract must be testable
  // without PMU access.
  runtime::PerfProfile profile;
  profile.tier = PerfTier::hardware;
  profile.counter_valid.fill(true);
  runtime::PerfProfileRow row;
  row.process = 0;
  row.subiteration = 0;
  row.cls = taskgraph::TaskClass::from_id(0);
  row.tasks = 2;
  row.objects = 1000;
  row.seconds = 0.01;
  row.count = {2e6, 3e6, 1e4, 1e3, 5e5};
  profile.rows.push_back(row);
  ASSERT_TRUE(profile.live());
  runtime::publish_perf_metrics(profile);
  const obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
  bool saw_ipc = false, saw_class = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "perf.ipc") {
      saw_ipc = true;
      EXPECT_DOUBLE_EQ(value, 1.5);
    }
    if (name == "perf.class.t0.face.ext.ipc") saw_class = true;
  }
  EXPECT_TRUE(saw_ipc);
  EXPECT_TRUE(saw_class);
}

TEST(RuntimePerf, EnvOffForcesFallbackThroughRealRuntime) {
  const char* old = std::getenv("TAMP_PERF");
  const std::string saved = old ? old : "";
  setenv("TAMP_PERF", "off", 1);
  const TaskGraph g = two_class_graph();
  const runtime::ExecutionReport report =
      run_with_tier(g, PerfTier::hardware);
  EXPECT_EQ(report.perf.tier, PerfTier::unavailable);
  EXPECT_TRUE(report.perf.per_task.empty());
  if (old)
    setenv("TAMP_PERF", saved.c_str(), 1);
  else
    unsetenv("TAMP_PERF");
}

#endif  // TAMP_TRACING_ENABLED

TEST(PerfProfileRow, DerivedQuantities) {
  runtime::PerfProfileRow row;
  row.objects = 2000;
  row.seconds = 0.001;
  row.count = {1e6, 2e6, 4000, 100, 2.5e5};
  EXPECT_DOUBLE_EQ(row.ipc(), 2.0);
  EXPECT_DOUBLE_EQ(row.llc_miss_per_kobject(), 2000.0);
  EXPECT_DOUBLE_EQ(row.stall_share(), 0.25);
  // 4000 misses × 64 B / 1 ms = 0.256 GB/s.
  EXPECT_DOUBLE_EQ(row.est_dram_gbps(), 0.256);
}

}  // namespace
}  // namespace tamp
