// Unit tests for the mesh module: builder, invariants, levels, I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "mesh/generators.hpp"
#include "mesh/io.hpp"
#include "mesh/levels.hpp"
#include "mesh/mesh.hpp"

namespace tamp::mesh {
namespace {

Mesh two_cell_mesh() {
  MeshBuilder mb(2);
  mb.set_cell(0, 1.0, {0.5, 0.5, 0.5});
  mb.set_cell(1, 1.0, {1.5, 0.5, 0.5});
  mb.add_interior_face(0, 1, 1.0, {1, 0, 0});
  mb.add_boundary_face(0, 1.0, {-1, 0, 0});
  mb.add_boundary_face(1, 1.0, {1, 0, 0});
  return mb.build();
}

TEST(MeshBuilder, BasicTopology) {
  const Mesh m = two_cell_mesh();
  EXPECT_EQ(m.num_cells(), 2);
  EXPECT_EQ(m.num_faces(), 3);
  EXPECT_EQ(m.num_interior_faces(), 1);
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.face_other_cell(0, 0), 1);
  EXPECT_EQ(m.face_other_cell(0, 1), 0);
  EXPECT_TRUE(m.is_boundary_face(1));
  EXPECT_FALSE(m.is_boundary_face(0));
  EXPECT_EQ(m.cell_faces(0).size(), 2u);
}

TEST(MeshBuilder, RejectsInvalidInput) {
  MeshBuilder mb(2);
  EXPECT_THROW(mb.set_cell(0, -1.0, {}), precondition_error);
  EXPECT_THROW(mb.set_cell(5, 1.0, {}), precondition_error);
  EXPECT_THROW(mb.add_interior_face(0, 0, 1.0, {1, 0, 0}), precondition_error);
  EXPECT_THROW(mb.add_interior_face(0, 7, 1.0, {1, 0, 0}), precondition_error);
  EXPECT_THROW(mb.add_boundary_face(0, 0.0, {1, 0, 0}), precondition_error);
}

TEST(MeshBuilder, RequiresAllCellsSet) {
  MeshBuilder mb(2);
  mb.set_cell(0, 1.0, {});
  EXPECT_THROW(mb.build(), precondition_error);
}

TEST(Mesh, LevelAssignmentAndFaceLevels) {
  Mesh m = two_cell_mesh();
  m.set_cell_levels({2, 0});
  EXPECT_EQ(m.max_level(), 2);
  EXPECT_EQ(m.cell_level(0), 2);
  // Interior face between levels 2 and 0 refreshes at the finer rate.
  EXPECT_EQ(m.face_level(0), 0);
  // Boundary face of cell 0 inherits its cell's level.
  EXPECT_EQ(m.face_level(1), 2);
}

TEST(Mesh, LevelVectorSizeChecked) {
  Mesh m = two_cell_mesh();
  EXPECT_THROW(m.set_cell_levels({0}), precondition_error);
  EXPECT_THROW(m.set_cell_levels({0, -1}), precondition_error);
}

TEST(Mesh, DualGraphMatchesInteriorFaces) {
  const Mesh m = make_lattice_mesh(3, 3, 3);
  const auto g = m.dual_graph();
  EXPECT_EQ(g.num_vertices(), 27);
  EXPECT_EQ(g.num_edges(), m.num_interior_faces());
  EXPECT_NO_THROW(g.validate());
}

TEST(Lattice, CountsAndGeometry) {
  const Mesh m = make_lattice_mesh(4, 3, 2, 0.5);
  EXPECT_EQ(m.num_cells(), 24);
  EXPECT_NO_THROW(m.validate());
  // Interior faces: (3*3*2) + (4*2*2) + (4*3*1) = 18+16+12 = 46.
  EXPECT_EQ(m.num_interior_faces(), 46);
  EXPECT_DOUBLE_EQ(m.cell_volume(0), 0.125);
}

TEST(Lattice, ClosedCellSurfaces) {
  // Σ area·normal over each cell's faces must vanish (closed polyhedra).
  const Mesh m = make_lattice_mesh(3, 2, 2);
  for (index_t c = 0; c < m.num_cells(); ++c) {
    Vec3 net{};
    for (const index_t f : m.cell_faces(c)) {
      const double sign = m.face_cell(f, 0) == c ? 1.0 : -1.0;
      net += sign * m.face_area(f) * m.face_normal(f);
    }
    EXPECT_NEAR(norm(net), 0.0, 1e-12);
  }
}

TEST(GradedBox, GeometryConsistent) {
  const Mesh m = make_graded_box_mesh(6, 5, 4, 1.2);
  EXPECT_NO_THROW(m.validate());
  for (index_t c = 0; c < m.num_cells(); ++c) {
    Vec3 net{};
    for (const index_t f : m.cell_faces(c)) {
      const double sign = m.face_cell(f, 0) == c ? 1.0 : -1.0;
      net += sign * m.face_area(f) * m.face_normal(f);
    }
    EXPECT_NEAR(norm(net), 0.0, 1e-9) << "cell " << c;
  }
}

TEST(Levels, OperatingCost) {
  EXPECT_EQ(operating_cost(0, 3), 8);
  EXPECT_EQ(operating_cost(3, 3), 1);
  EXPECT_EQ(operating_cost(2, 2), 1);
  EXPECT_EQ(operating_cost(0, 0), 1);
}

TEST(Levels, CensusMatchesAssignment) {
  Mesh m = make_lattice_mesh(4, 4, 4);
  std::vector<level_t> levels(64, 0);
  for (int i = 0; i < 16; ++i) levels[static_cast<std::size_t>(i)] = 1;
  for (int i = 16; i < 24; ++i) levels[static_cast<std::size_t>(i)] = 2;
  m.set_cell_levels(levels);
  const LevelCensus census = level_census(m);
  EXPECT_EQ(census.total_cells, 64);
  EXPECT_EQ(census.cells_per_level[0], 40);
  EXPECT_EQ(census.cells_per_level[1], 16);
  EXPECT_EQ(census.cells_per_level[2], 8);
  EXPECT_NEAR(census.cell_fraction(0), 40.0 / 64.0, 1e-12);
  // computation: 40·4 + 16·2 + 8·1 = 200
  EXPECT_EQ(census.total_computation(), 200);
  EXPECT_NEAR(census.computation_fraction(0), 160.0 / 200.0, 1e-12);
}

TEST(Levels, QuantileAssignmentHitsFractions) {
  Mesh m = make_lattice_mesh(10, 10, 10);
  std::vector<double> field(1000);
  for (int i = 0; i < 1000; ++i)
    field[static_cast<std::size_t>(i)] = static_cast<double>(i);
  assign_levels_by_quantiles(m, field, {0.1, 0.3, 0.6});
  const LevelCensus census = level_census(m);
  EXPECT_EQ(census.cells_per_level[0], 100);
  EXPECT_EQ(census.cells_per_level[1], 300);
  EXPECT_EQ(census.cells_per_level[2], 600);
  // Smallest field values land in level 0.
  EXPECT_EQ(m.cell_level(0), 0);
  EXPECT_EQ(m.cell_level(999), 2);
}

TEST(Levels, QuantileFractionsMustSumToOne) {
  Mesh m = make_lattice_mesh(2, 2, 2);
  std::vector<double> field(8, 0.0);
  EXPECT_THROW(assign_levels_by_quantiles(m, field, {0.5, 0.2}),
               precondition_error);
}

TEST(Levels, CflAssignment) {
  // Graded box: spacing doubles over ~4 cells at ratio 1.2 per cell, so
  // several levels appear and level 0 sits at the refined corner.
  Mesh m = make_graded_box_mesh(16, 16, 16, 1.15);
  const auto levels = assign_levels_by_cfl(m, 4);
  EXPECT_EQ(levels.size(), 4096u);
  EXPECT_EQ(m.cell_level(0), 0);  // smallest cell
  EXPECT_GE(m.max_level(), 2);
  // Levels are monotone in cell size.
  for (index_t c = 0; c + 1 < 16; ++c)
    EXPECT_LE(m.cell_level(c), m.cell_level(c + 1));
}

TEST(Levels, SmoothingRemovesJumps) {
  Mesh m = make_lattice_mesh(6, 1, 1);
  m.set_cell_levels({0, 3, 3, 3, 3, 1});
  const index_t lowered = smooth_level_jumps(m, 1);
  // Jumps capped at 1 everywhere; cells only ever lowered.
  for (index_t f = 0; f < m.num_faces(); ++f) {
    if (m.is_boundary_face(f)) continue;
    EXPECT_LE(std::abs(m.cell_level(m.face_cell(f, 0)) -
                       m.cell_level(m.face_cell(f, 1))),
              1);
  }
  EXPECT_EQ(m.cell_level(0), 0);
  EXPECT_EQ(m.cell_level(1), 1);  // lowered from 3
  EXPECT_EQ(m.cell_level(2), 2);
  EXPECT_GT(lowered, 0);
}

TEST(Levels, SmoothingIdempotentAndMonotone) {
  TestMeshSpec spec;
  spec.target_cells = 5000;
  Mesh m = make_cube_mesh(spec);  // CUBE has 2-level jumps by census
  const auto before = m.cell_levels();
  smooth_level_jumps(m, 1);
  const auto once = m.cell_levels();
  for (index_t c = 0; c < m.num_cells(); ++c)
    EXPECT_LE(once[static_cast<std::size_t>(c)],
              before[static_cast<std::size_t>(c)]);  // never raised
  EXPECT_EQ(smooth_level_jumps(m, 1), 0);            // fixpoint
  EXPECT_EQ(m.cell_levels(), once);
}

TEST(Levels, SmoothingNoOpOnSmoothMesh) {
  TestMeshSpec spec;
  spec.target_cells = 4000;
  Mesh m = make_cylinder_mesh(spec);
  smooth_level_jumps(m, 1);
  // Cylinder levels are concentric bands: few if any changes, and a
  // second pass certainly does nothing.
  EXPECT_EQ(smooth_level_jumps(m, 1), 0);
}

TEST(MeshIo, RoundtripPreservesEverything) {
  Mesh m = make_graded_box_mesh(3, 3, 3, 1.3);
  assign_levels_by_cfl(m, 3);
  std::ostringstream os;
  write_mesh(m, os);
  std::istringstream is(os.str());
  const Mesh back = read_mesh(is);
  ASSERT_EQ(back.num_cells(), m.num_cells());
  ASSERT_EQ(back.num_faces(), m.num_faces());
  EXPECT_EQ(back.max_level(), m.max_level());
  for (index_t c = 0; c < m.num_cells(); ++c) {
    EXPECT_DOUBLE_EQ(back.cell_volume(c), m.cell_volume(c));
    EXPECT_EQ(back.cell_level(c), m.cell_level(c));
  }
  for (index_t f = 0; f < m.num_faces(); ++f) {
    EXPECT_DOUBLE_EQ(back.face_area(f), m.face_area(f));
    EXPECT_EQ(back.face_cell(f, 0), m.face_cell(f, 0));
    EXPECT_EQ(back.face_cell(f, 1), m.face_cell(f, 1));
  }
  EXPECT_NO_THROW(back.validate());
}

TEST(MeshIo, RejectsMalformedInput) {
  std::istringstream bad1("not-a-mesh 1");
  EXPECT_THROW(read_mesh(bad1), runtime_failure);
  std::istringstream bad2("tamp-mesh 2\ncells 1");
  EXPECT_THROW(read_mesh(bad2), runtime_failure);
  std::istringstream bad3("tamp-mesh 1\ncells 1\n1.0 0 0 0 0\nfaces 1\n0 9 1.0 1 0 0\n");
  EXPECT_THROW(read_mesh(bad3), precondition_error);
}

}  // namespace
}  // namespace tamp::mesh
