// Tests of the temporal scheme (paper Fig 4): activity pattern,
// subiteration structure, phase order.
#include <gtest/gtest.h>

#include <cmath>

#include "taskgraph/scheme.hpp"

namespace tamp::taskgraph {
namespace {

TEST(Scheme, SubiterationCount) {
  EXPECT_EQ(TemporalScheme(1).num_subiterations(), 1);
  EXPECT_EQ(TemporalScheme(2).num_subiterations(), 2);
  EXPECT_EQ(TemporalScheme(3).num_subiterations(), 4);
  EXPECT_EQ(TemporalScheme(4).num_subiterations(), 8);
}

TEST(Scheme, Figure4ActivityPattern) {
  // The paper's Fig 4 example: τmax = 2 → 4 subiterations; τ=0 active in
  // all, τ=1 in 0 and 2, τ=2 only in 0.
  const TemporalScheme scheme(3);
  EXPECT_EQ(scheme.num_subiterations(), 4);
  const bool expected[3][4] = {
      {true, true, true, true},    // τ=0
      {true, false, true, false},  // τ=1
      {true, false, false, false}  // τ=2
  };
  for (level_t tau = 0; tau < 3; ++tau)
    for (index_t s = 0; s < 4; ++s)
      EXPECT_EQ(TemporalScheme::is_active(tau, s), expected[tau][s])
          << "tau=" << static_cast<int>(tau) << " s=" << s;
}

TEST(Scheme, UpdatesPerIterationEqualsOperatingCost) {
  const TemporalScheme scheme(4);
  for (level_t tau = 0; tau < 4; ++tau) {
    index_t active = 0;
    for (index_t s = 0; s < scheme.num_subiterations(); ++s)
      if (TemporalScheme::is_active(tau, s)) ++active;
    EXPECT_EQ(active, scheme.updates_per_iteration(tau));
  }
}

TEST(Scheme, TopLevel) {
  const TemporalScheme scheme(3);
  EXPECT_EQ(scheme.top_level(0), 2);  // first subiteration: all levels
  EXPECT_EQ(scheme.top_level(1), 0);
  EXPECT_EQ(scheme.top_level(2), 1);
  EXPECT_EQ(scheme.top_level(3), 0);
  const TemporalScheme s4(4);
  EXPECT_EQ(s4.top_level(0), 3);
  EXPECT_EQ(s4.top_level(4), 2);
  EXPECT_EQ(s4.top_level(6), 1);
  EXPECT_EQ(s4.top_level(7), 0);
}

TEST(Scheme, TopLevelIsMaxActive) {
  const TemporalScheme scheme(5);
  for (index_t s = 0; s < scheme.num_subiterations(); ++s) {
    const level_t top = scheme.top_level(s);
    EXPECT_TRUE(TemporalScheme::is_active(top, s));
    if (top + 1 < scheme.num_levels())
      EXPECT_FALSE(TemporalScheme::is_active(static_cast<level_t>(top + 1), s));
  }
}

TEST(Scheme, AllCellsReachSameTime) {
  // Over one iteration, a level-τ cell performs 2^(τmax−τ) updates of
  // 2^τ·Δt each: total = 2^τmax·Δt for every level.
  const TemporalScheme scheme(4);
  for (level_t tau = 0; tau < 4; ++tau) {
    double advanced = 0;
    for (index_t s = 0; s < scheme.num_subiterations(); ++s)
      if (TemporalScheme::is_active(tau, s))
        advanced += std::exp2(static_cast<double>(tau));
    EXPECT_DOUBLE_EQ(advanced,
                     static_cast<double>(scheme.num_subiterations()));
  }
}

TEST(Scheme, RejectsBadInput) {
  EXPECT_THROW(TemporalScheme(0), precondition_error);
  EXPECT_THROW((void)TemporalScheme(3).top_level(4), precondition_error);
  EXPECT_THROW((void)TemporalScheme(3).top_level(-1), precondition_error);
  EXPECT_THROW((void)TemporalScheme(3).updates_per_iteration(5), precondition_error);
}

}  // namespace
}  // namespace tamp::taskgraph
