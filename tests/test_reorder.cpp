// Locality renumbering: permutation mechanics, class-range contiguity on
// a renumbered mesh, and the layout's central promise — the permuted
// solvers (serial reference AND the streaming range-kernel task path)
// produce bitwise the same physics as the unpermuted reference once ids
// are mapped through the permutation, with conserved totals intact at
// every subiteration boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "mesh/generators.hpp"
#include "mesh/reorder.hpp"
#include "partition/reorder.hpp"
#include "partition/strategy.hpp"
#include "solver/euler.hpp"
#include "solver/layout.hpp"
#include "solver/transport.hpp"
#include "taskgraph/generate.hpp"

namespace tamp {
namespace {

using mesh::MeshPermutation;
using solver::EulerSolver;
using solver::State;
using solver::TransportSolver;

std::vector<part_t> decompose(mesh::Mesh& m, partition::Strategy strategy,
                              part_t ndomains) {
  partition::StrategyOptions sopts;
  sopts.strategy = strategy;
  sopts.ndomains = ndomains;
  return partition::decompose(m, sopts).domain_of_cell;
}

// --- permutation mechanics ----------------------------------------------------

TEST(Reorder, PermutationHelpers) {
  EXPECT_TRUE(mesh::is_permutation({2, 0, 1}));
  EXPECT_FALSE(mesh::is_permutation({0, 0, 1}));
  EXPECT_FALSE(mesh::is_permutation({0, 3, 1}));
  EXPECT_TRUE(mesh::is_permutation({}));

  const std::vector<index_t> inv = mesh::invert_permutation({2, 0, 1});
  EXPECT_EQ(inv, (std::vector<index_t>{1, 2, 0}));
  EXPECT_THROW(mesh::invert_permutation({0, 0}), precondition_error);
}

TEST(Reorder, CompressToRanges) {
  using solver::IdRange;
  EXPECT_TRUE(solver::compress_to_ranges({}).empty());
  EXPECT_EQ(solver::compress_to_ranges({5, 3, 4}),
            (std::vector<IdRange>{{3, 6}}));
  EXPECT_EQ(solver::compress_to_ranges({1, 9, 2, 2, 7, 8}),
            (std::vector<IdRange>{{1, 3}, {7, 10}}));
}

TEST(Reorder, PaddedVarsLayout) {
  EXPECT_EQ(solver::padded_stride(0), 0u);
  EXPECT_EQ(solver::padded_stride(1), 8u);
  EXPECT_EQ(solver::padded_stride(8), 8u);
  EXPECT_EQ(solver::padded_stride(9), 16u);
  solver::PaddedVars v(10, 3);
  EXPECT_EQ(v.stride(), 16u);
  EXPECT_EQ(v.var(2) - v.var(0), 32);
  v.at(1, 9) = 4.5;
  EXPECT_EQ(v.at(1, 9), 4.5);
  EXPECT_EQ(v.at(2, 0), 0.0);
}

TEST(Reorder, IdentityPermutationPreservesMesh) {
  mesh::Mesh m = mesh::make_graded_box_mesh(5, 4, 3, 1.3);
  const MeshPermutation id = mesh::identity_permutation(m);
  mesh::validate_permutation(m, id);
  const mesh::Mesh p = mesh::permute_mesh(m, id);
  p.validate();
  ASSERT_EQ(p.num_cells(), m.num_cells());
  ASSERT_EQ(p.num_faces(), m.num_faces());
  for (index_t f = 0; f < m.num_faces(); ++f) {
    EXPECT_EQ(p.face_cell(f, 0), m.face_cell(f, 0));
    EXPECT_EQ(p.face_cell(f, 1), m.face_cell(f, 1));
    EXPECT_EQ(p.face_area(f), m.face_area(f));
  }
  for (index_t c = 0; c < m.num_cells(); ++c) {
    EXPECT_EQ(p.cell_volume(c), m.cell_volume(c));
    const auto pf = p.cell_faces(c);
    const auto mf = m.cell_faces(c);
    ASSERT_TRUE(std::equal(pf.begin(), pf.end(), mf.begin(), mf.end()));
  }
}

TEST(Reorder, ValidateRejectsMalformedPermutations) {
  mesh::Mesh m = mesh::make_lattice_mesh(3, 3, 3);
  MeshPermutation p = mesh::identity_permutation(m);
  p.cell_old_to_new.pop_back();
  EXPECT_THROW(mesh::validate_permutation(m, p), precondition_error);
  p = mesh::identity_permutation(m);
  std::swap(p.cell_old_to_new[0], p.cell_old_to_new[1]);  // inverse now stale
  EXPECT_THROW(mesh::validate_permutation(m, p), precondition_error);
}

TEST(Reorder, PermuteMeshPreservesGatherOrderAndOrientation) {
  mesh::Mesh m = mesh::make_graded_box_mesh(6, 5, 4, 1.25);
  EulerSolver levels(m);
  levels.initialize_uniform(1.0, {0.2, 0.0, 0.0}, 1.0);
  levels.assign_temporal_levels();
  const auto domains = decompose(m, partition::Strategy::mc_tl, 4);
  const MeshPermutation perm =
      partition::build_locality_permutation(m, domains, 4);
  const mesh::Mesh p = mesh::permute_mesh(m, perm);
  p.validate();

  for (index_t c = 0; c < m.num_cells(); ++c) {
    const index_t pc = perm.cell_old_to_new[static_cast<std::size_t>(c)];
    EXPECT_EQ(p.cell_level(pc), m.cell_level(c));
    EXPECT_EQ(p.cell_volume(pc), m.cell_volume(c));
    // Same face list, same order, ids mapped.
    const auto orig = m.cell_faces(c);
    const auto mapped = p.cell_faces(pc);
    ASSERT_EQ(mapped.size(), orig.size());
    for (std::size_t i = 0; i < orig.size(); ++i)
      EXPECT_EQ(mapped[i],
                perm.face_old_to_new[static_cast<std::size_t>(orig[i])]);
  }
  for (index_t f = 0; f < m.num_faces(); ++f) {
    const index_t pf = perm.face_old_to_new[static_cast<std::size_t>(f)];
    // Orientation preserved: side 0 stays side 0, normal unchanged.
    EXPECT_EQ(p.face_cell(pf, 0),
              perm.cell_old_to_new[static_cast<std::size_t>(m.face_cell(f, 0))]);
    const mesh::Vec3 a = p.face_normal(pf), b = m.face_normal(f);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
    EXPECT_EQ(a.z, b.z);
  }
}

// --- class-range contiguity ---------------------------------------------------

/// After locality renumbering, every non-empty class list must be one
/// consecutive run, the face runs must split interior-then-boundary, and
/// the runs must tile [0, n) exactly.
void expect_contiguous_classes(mesh::Mesh& permuted,
                               const std::vector<part_t>& domains,
                               part_t ndomains, const std::string& what) {
  taskgraph::ClassMap cm;
  taskgraph::generate_task_graph(permuted, domains, ndomains, {}, &cm);
  std::vector<solver::IdRange> cell_runs, face_runs;
  for (std::size_t k = 0; k < cm.class_cells.size(); ++k) {
    if (!cm.class_cells[k].empty()) {
      ASSERT_TRUE(cm.cell_range[k].valid()) << what << " cell class " << k;
      cell_runs.push_back({cm.cell_range[k].begin, cm.cell_range[k].end});
    }
    if (!cm.class_faces[k].empty()) {
      ASSERT_TRUE(cm.face_range[k].valid()) << what << " face class " << k;
      const auto& r = cm.face_range[k];
      for (index_t f = r.begin; f < r.boundary_begin; ++f)
        ASSERT_FALSE(permuted.is_boundary_face(f)) << what << " face " << f;
      for (index_t f = r.boundary_begin; f < r.end; ++f)
        ASSERT_TRUE(permuted.is_boundary_face(f)) << what << " face " << f;
      face_runs.push_back({r.begin, r.end});
    }
  }
  auto tiles = [](std::vector<solver::IdRange> runs, index_t n) {
    std::sort(runs.begin(), runs.end(),
              [](const auto& a, const auto& b) { return a.begin < b.begin; });
    index_t cursor = 0;
    for (const auto& r : runs) {
      if (r.begin != cursor) return false;
      cursor = r.end;
    }
    return cursor == n;
  };
  EXPECT_TRUE(tiles(cell_runs, permuted.num_cells())) << what;
  EXPECT_TRUE(tiles(face_runs, permuted.num_faces())) << what;
}

TEST(Reorder, ClassListsBecomeContiguousRanges) {
  const partition::Strategy strategies[] = {partition::Strategy::sc_oc,
                                            partition::Strategy::mc_tl,
                                            partition::Strategy::hybrid};
  int combo = 0;
  for (const auto strategy : strategies) {
    mesh::Mesh m = combo == 0   ? mesh::make_graded_box_mesh(8, 6, 5, 1.25)
                   : combo == 1 ? mesh::make_lattice_mesh(6, 5, 4)
                                : mesh::make_graded_box_mesh(6, 6, 6, 1.35);
    EulerSolver s(m);
    s.initialize_uniform(1.0, {0.1, 0.05, 0.0}, 1.0);
    s.add_pulse({1.0, 1.0, 0.8}, 0.8, 0.25);
    s.assign_temporal_levels();
    const auto domains = decompose(m, strategy, 4);
    auto rd = partition::reorder_for_locality(m, domains, 4);
    expect_contiguous_classes(rd.mesh, rd.domain_of_cell, 4,
                              std::string("combo ") +
                                  partition::to_string(strategy));
    ++combo;
  }
}

// --- bitwise equivalence ------------------------------------------------------

/// Run `iters` iterations on the reference mesh (serial) and on the
/// locality-renumbered twin (serial reference kernels AND the ranged
/// task path), asserting per-cell bitwise equality through the inverse
/// permutation after every iteration.
void expect_euler_equivalence(mesh::Mesh m, partition::Strategy strategy,
                              part_t ndomains, const std::string& what) {
  mesh::Mesh mref = m;
  EulerSolver ref(mref);
  ref.initialize_uniform(1.0, {0.1, 0.05, 0.02}, 1.0);
  ref.add_pulse({1.2, 1.0, 0.8}, 0.8, 0.25);
  ref.assign_temporal_levels();

  // Levels feed the class structure, so assign them before decomposing
  // and renumbering.
  {
    EulerSolver tmp(m);
    tmp.initialize_uniform(1.0, {0.1, 0.05, 0.02}, 1.0);
    tmp.add_pulse({1.2, 1.0, 0.8}, 0.8, 0.25);
    tmp.assign_temporal_levels();
  }
  const auto domains = decompose(m, strategy, ndomains);
  auto rd = partition::reorder_for_locality(m, domains, ndomains);

  EulerSolver serial(rd.mesh), tasked(rd.mesh);
  for (EulerSolver* s : {&serial, &tasked}) {
    s->initialize_uniform(1.0, {0.1, 0.05, 0.02}, 1.0);
    s->add_pulse({1.2, 1.0, 0.8}, 0.8, 0.25);
    s->assign_temporal_levels();
  }
  ASSERT_EQ(serial.dt0(), ref.dt0()) << what;

  for (int it = 0; it < 2; ++it) {
    ref.run_iteration();
    serial.run_iteration();
    const auto iter =
        tasked.make_iteration_tasks(rd.domain_of_cell, ndomains);
    for (index_t t = 0; t < iter.graph.num_tasks(); ++t) iter.body(t);
    tasked.note_tasks_complete();
    for (index_t c = 0; c < mref.num_cells(); ++c) {
      const index_t pc =
          rd.permutation.cell_old_to_new[static_cast<std::size_t>(c)];
      const State want = ref.cell_state(c);
      const State got_serial = serial.cell_state(pc);
      const State got_ranged = tasked.cell_state(pc);
      for (int v = 0; v < solver::kNumVars; ++v) {
        const auto sv = static_cast<std::size_t>(v);
        ASSERT_EQ(got_serial[sv], want[sv])
            << what << " serial iter " << it << " cell " << c << " var " << v;
        ASSERT_EQ(got_ranged[sv], want[sv])
            << what << " ranged iter " << it << " cell " << c << " var " << v;
      }
    }
  }
}

TEST(Reorder, EulerBitwiseEquivalenceAcrossMeshesAndStrategies) {
  expect_euler_equivalence(mesh::make_graded_box_mesh(8, 6, 5, 1.25),
                           partition::Strategy::mc_tl, 4,
                           "graded_box(8,6,5) mc_tl");
  expect_euler_equivalence(mesh::make_lattice_mesh(6, 5, 4),
                           partition::Strategy::sc_oc, 3,
                           "lattice(6,5,4) sc_oc");
  expect_euler_equivalence(mesh::make_graded_box_mesh(6, 6, 6, 1.35),
                           partition::Strategy::hybrid, 6,
                           "graded_box(6,6,6) hybrid");
  mesh::TestMeshSpec spec;
  spec.target_cells = 700;
  spec.seed = 11;
  expect_euler_equivalence(
      mesh::make_test_mesh(mesh::parse_test_mesh_kind("nozzle"), spec),
      partition::Strategy::mc_tl, 4, "nozzle(700) mc_tl");
}

void expect_transport_equivalence(mesh::Mesh m, partition::Strategy strategy,
                                  part_t ndomains, const std::string& what) {
  solver::TransportConfig tc;
  tc.velocity = {0.8, 0.3, 0.1};
  tc.diffusivity = 0.02;
  mesh::Mesh mref = m;
  TransportSolver ref(mref, tc);
  ref.initialize_uniform(0.1);
  ref.add_blob({1.0, 1.0, 0.8}, 0.7, 1.0);
  ref.assign_temporal_levels();

  {
    TransportSolver tmp(m, tc);
    tmp.initialize_uniform(0.1);
    tmp.add_blob({1.0, 1.0, 0.8}, 0.7, 1.0);
    tmp.assign_temporal_levels();
  }
  const auto domains = decompose(m, strategy, ndomains);
  auto rd = partition::reorder_for_locality(m, domains, ndomains);

  TransportSolver serial(rd.mesh, tc), tasked(rd.mesh, tc);
  for (TransportSolver* s : {&serial, &tasked}) {
    s->initialize_uniform(0.1);
    s->add_blob({1.0, 1.0, 0.8}, 0.7, 1.0);
    s->assign_temporal_levels();
  }

  for (int it = 0; it < 2; ++it) {
    ref.run_iteration();
    serial.run_iteration();
    const auto iter =
        tasked.make_iteration_tasks(rd.domain_of_cell, ndomains);
    for (index_t t = 0; t < iter.graph.num_tasks(); ++t) iter.body(t);
    tasked.note_tasks_complete();
    for (index_t c = 0; c < mref.num_cells(); ++c) {
      const index_t pc =
          rd.permutation.cell_old_to_new[static_cast<std::size_t>(c)];
      ASSERT_EQ(serial.value(pc), ref.value(c))
          << what << " serial iter " << it << " cell " << c;
      ASSERT_EQ(tasked.value(pc), ref.value(c))
          << what << " ranged iter " << it << " cell " << c;
    }
    // The boundary ledger changes association order (one local sum per
    // ranged task), so it is conserved but not bitwise.
    EXPECT_NEAR(tasked.total_scalar() + tasked.net_boundary_outflow(),
                ref.total_scalar() + ref.net_boundary_outflow(),
                1e-12 * std::max(1.0, std::abs(ref.total_scalar()))) << what;
  }
}

TEST(Reorder, TransportBitwiseEquivalenceAcrossMeshesAndStrategies) {
  expect_transport_equivalence(mesh::make_graded_box_mesh(7, 6, 5, 1.3),
                               partition::Strategy::sc_oc, 4,
                               "graded_box(7,6,5) sc_oc");
  expect_transport_equivalence(mesh::make_lattice_mesh(6, 5, 4),
                               partition::Strategy::mc_tl, 3,
                               "lattice(6,5,4) mc_tl");
  expect_transport_equivalence(mesh::make_graded_box_mesh(6, 6, 6, 1.35),
                               partition::Strategy::hybrid, 4,
                               "graded_box(6,6,6) hybrid");
}

TEST(Reorder, ConservationHoldsAtSubiterationBoundariesOnRenumberedMesh) {
  // Slice the renumbered (ranged-kernel) iteration per subiteration and
  // probe the conservation invariant between slices.
  mesh::Mesh m = mesh::make_graded_box_mesh(8, 8, 6, 1.25);
  {
    EulerSolver tmp(m);
    tmp.initialize_uniform(1.0, {0.1, 0.0, 0.0}, 1.0);
    tmp.add_pulse({1.2, 1.2, 0.9}, 0.9, 0.3);
    tmp.assign_temporal_levels();
  }
  const auto domains = decompose(m, partition::Strategy::hybrid, 4);
  auto rd = partition::reorder_for_locality(m, domains, 4);
  EulerSolver s(rd.mesh);
  s.initialize_uniform(1.0, {0.1, 0.0, 0.0}, 1.0);
  s.add_pulse({1.2, 1.2, 0.9}, 0.9, 0.3);
  s.assign_temporal_levels();
  const State start = s.conserved_totals();

  const auto iter = s.make_iteration_tasks(rd.domain_of_cell, 4);
  index_t nsub = 0;
  for (index_t t = 0; t < iter.graph.num_tasks(); ++t)
    nsub = std::max(nsub, iter.graph.task(t).subiteration + 1);
  ASSERT_GE(nsub, 2);
  for (index_t sub = 0; sub < nsub; ++sub) {
    for (index_t t = 0; t < iter.graph.num_tasks(); ++t)
      if (iter.graph.task(t).subiteration == sub) iter.body(t);
    const State now = s.conserved_totals();
    EXPECT_NEAR(now[0], start[0], 1e-10 * std::abs(start[0]))
        << "subiteration " << sub;
    EXPECT_NEAR(now[4], start[4], 1e-10 * std::abs(start[4]))
        << "subiteration " << sub;
  }
  s.note_tasks_complete();
}

}  // namespace
}  // namespace tamp
