// Property-based sweeps over the partitioner: for many (seed, k, method,
// graph shape) combinations, the structural invariants must hold.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "graph/builder.hpp"
#include "mesh/generators.hpp"
#include "partition/partition.hpp"
#include "partition/strategy.hpp"
#include "support/rng.hpp"

namespace tamp::partition {
namespace {

struct Case {
  index_t nx;
  index_t ny;
  part_t nparts;
  Method method;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  return "g" + std::to_string(c.nx) + "x" + std::to_string(c.ny) + "_k" +
         std::to_string(c.nparts) + "_" +
         (c.method == Method::recursive_bisection ? "rb" : "kway") + "_s" +
         std::to_string(c.seed);
}

class PartitionProperty : public testing::TestWithParam<Case> {};

TEST_P(PartitionProperty, InvariantsHold) {
  const Case& c = GetParam();
  const auto g = graph::make_grid_graph(c.nx, c.ny);
  Options o;
  o.nparts = c.nparts;
  o.method = c.method;
  o.seed = c.seed;
  const Result r = partition_graph(g, o);

  // 1. Every vertex assigned to a valid part.
  ASSERT_EQ(r.part.size(), static_cast<std::size_t>(g.num_vertices()));
  for (const part_t p : r.part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, c.nparts);
  }
  // 2. All parts non-empty.
  std::set<part_t> used(r.part.begin(), r.part.end());
  EXPECT_EQ(used.size(), static_cast<std::size_t>(c.nparts));
  // 3. Reported metrics agree with recomputation.
  EXPECT_EQ(r.edge_cut, edge_cut(g, r.part));
  // 4. Loads sum to the graph total.
  weight_t sum = 0;
  for (part_t p = 0; p < c.nparts; ++p)
    sum += r.loads[static_cast<std::size_t>(p)];
  EXPECT_EQ(sum, g.total_weights()[0]);
  // 5. Balance within a generous envelope (tolerance compounds over
  // log2(k) bisection levels plus one max-vertex slack per level).
  EXPECT_LE(r.max_imbalance(), 1.35);
  // 6. Cut is at most the trivial stripes cut (sanity on quality).
  const weight_t stripes =
      static_cast<weight_t>(c.nparts - 1) * std::min(c.nx, c.ny);
  EXPECT_LE(r.edge_cut, 2 * stripes + 16);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperty,
    testing::Values(
        Case{16, 16, 2, Method::recursive_bisection, 1},
        Case{16, 16, 3, Method::recursive_bisection, 2},
        Case{16, 16, 5, Method::recursive_bisection, 3},
        Case{16, 16, 8, Method::recursive_bisection, 4},
        Case{40, 10, 4, Method::recursive_bisection, 5},
        Case{10, 40, 6, Method::recursive_bisection, 6},
        Case{32, 32, 16, Method::recursive_bisection, 7},
        Case{16, 16, 4, Method::kway_direct, 8},
        Case{32, 32, 8, Method::kway_direct, 9},
        Case{25, 25, 5, Method::kway_direct, 10},
        Case{64, 8, 8, Method::recursive_bisection, 11},
        Case{33, 17, 7, Method::recursive_bisection, 12}),
    case_name);

// Multi-constraint sweep: random binary class layouts on a grid, varying
// class counts and seeds; every class must end up spread.
struct McCase {
  int ncon;
  part_t nparts;
  std::uint64_t seed;
};

class MultiConstraintProperty : public testing::TestWithParam<McCase> {};

TEST_P(MultiConstraintProperty, EveryConstraintBalanced) {
  const McCase& c = GetParam();
  const index_t nx = 24, ny = 24;
  graph::Builder b(nx * ny, c.ncon);
  auto id = [&](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      if (x + 1 < nx) b.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < ny) b.add_edge(id(x, y), id(x, y + 1));
    }
  }
  // Spatially banded classes (like temporal levels): class grows with x.
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const int klass = static_cast<int>((x * c.ncon) / nx);
      for (int k = 0; k < c.ncon; ++k)
        b.set_vertex_weight(id(x, y), k, k == klass ? 1 : 0);
    }
  }
  const auto g = b.build();
  Options o;
  o.nparts = c.nparts;
  o.seed = c.seed;
  const Result r = partition_graph(g, o);
  for (int k = 0; k < c.ncon; ++k)
    EXPECT_LE(r.imbalance(k), 1.6) << "constraint " << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiConstraintProperty,
    testing::Values(McCase{2, 2, 1}, McCase{2, 4, 2}, McCase{3, 2, 3},
                    McCase{3, 4, 4}, McCase{4, 4, 5}, McCase{4, 8, 6},
                    McCase{3, 8, 7}, McCase{2, 8, 8}),
    [](const auto& info) {
      return "ncon" + std::to_string(info.param.ncon) + "_k" +
             std::to_string(info.param.nparts) + "_s" +
             std::to_string(info.param.seed);
    });

// Randomised graphs (not grids): invariants must survive irregularity.
TEST(PartitionFuzz, RandomGraphsKeepInvariants) {
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    const index_t n = 60 + static_cast<index_t>(rng.below(200));
    graph::Builder b(n, 1);
    // Random spanning path keeps it connected, plus random extra edges.
    for (index_t v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
    const auto extra = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(3 * n)));
    for (index_t e = 0; e < extra; ++e) {
      const auto u = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
      const auto v = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
      if (u != v) b.add_edge(u, v, 1 + static_cast<weight_t>(rng.below(5)));
    }
    const auto g = b.build();
    Options o;
    o.nparts = static_cast<part_t>(2 + rng.below(6));
    o.seed = rng();
    const Result r = partition_graph(g, o);
    std::set<part_t> used(r.part.begin(), r.part.end());
    EXPECT_EQ(used.size(), static_cast<std::size_t>(o.nparts));
    EXPECT_EQ(r.edge_cut, edge_cut(g, r.part));
  }
}

// --- thread-count determinism ----------------------------------------------
// The parallel decomposition promises bit-identical output at any thread
// count: subtree RNGs depend on (seed, part_base, k) and every parallel
// loop combines chunk partials in a fixed order.

TEST(PartitionDeterminism, ThreadCountNeverChangesPartitionGraph) {
  const auto g = graph::make_grid_graph(48, 32);
  for (const Method method :
       {Method::recursive_bisection, Method::kway_direct}) {
    Options o;
    o.nparts = 16;
    o.method = method;
    o.seed = 42;
    o.num_threads = 1;
    const Result serial = partition_graph(g, o);
    for (const int t : {2, 4, 8}) {
      o.num_threads = t;
      const Result r = partition_graph(g, o);
      EXPECT_EQ(r.part, serial.part)
          << "threads=" << t << " method=" << static_cast<int>(method);
      EXPECT_EQ(r.edge_cut, serial.edge_cut);
      EXPECT_EQ(r.loads, serial.loads);
    }
  }
}

TEST(PartitionDeterminism, ThreadCountNeverChangesDecompose) {
  mesh::TestMeshSpec spec;
  spec.target_cells = 6000;
  const auto m = mesh::make_test_mesh(mesh::TestMeshKind::cube, spec);
  for (const Strategy s :
       {Strategy::sc_oc, Strategy::mc_tl, Strategy::hybrid}) {
    StrategyOptions opts;
    opts.strategy = s;
    opts.ndomains = 16;
    opts.nprocesses = 4;
    opts.partitioner.num_threads = 1;
    const auto serial = decompose(m, opts);
    opts.partitioner.num_threads = 4;
    const auto threaded = decompose(m, opts);
    EXPECT_EQ(threaded.domain_of_cell, serial.domain_of_cell) << to_string(s);
    EXPECT_EQ(threaded.edge_cut, serial.edge_cut) << to_string(s);
  }
}

}  // namespace
}  // namespace tamp::partition
