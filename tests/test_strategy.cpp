// Tests for the SC_CELLS / SC_OC / MC_TL / HYBRID strategies and the
// domain→process mapping — the paper's §IV/§V behaviour.
#include <gtest/gtest.h>

#include "mesh/generators.hpp"
#include "partition/strategy.hpp"

namespace tamp::partition {
namespace {

mesh::Mesh small_cylinder() {
  mesh::TestMeshSpec spec;
  spec.target_cells = 6000;
  return mesh::make_cylinder_mesh(spec);
}

TEST(StrategyParse, RoundTrip) {
  EXPECT_EQ(parse_strategy("sc_oc"), Strategy::sc_oc);
  EXPECT_EQ(parse_strategy("SC_OC"), Strategy::sc_oc);
  EXPECT_EQ(parse_strategy("mc_tl"), Strategy::mc_tl);
  EXPECT_EQ(parse_strategy("sc_cells"), Strategy::sc_cells);
  EXPECT_EQ(parse_strategy("hybrid"), Strategy::hybrid);
  EXPECT_THROW(parse_strategy("magic"), precondition_error);
  EXPECT_STREQ(to_string(Strategy::mc_tl), "MC_TL");
}

TEST(StrategyGraph, ScOcUsesOperatingCosts) {
  const auto m = small_cylinder();
  const auto g = build_strategy_graph(m, Strategy::sc_oc);
  EXPECT_EQ(g.num_constraints(), 1);
  for (index_t c = 0; c < m.num_cells(); ++c)
    EXPECT_EQ(g.vertex_weights(c)[0],
              mesh::operating_cost(m.cell_level(c), m.max_level()));
}

TEST(StrategyGraph, McTlUsesBinaryIndicators) {
  const auto m = small_cylinder();
  const auto g = build_strategy_graph(m, Strategy::mc_tl);
  EXPECT_EQ(g.num_constraints(), static_cast<int>(m.max_level()) + 1);
  for (index_t c = 0; c < m.num_cells(); ++c) {
    const auto w = g.vertex_weights(c);
    weight_t sum = 0;
    for (const weight_t x : w) sum += x;
    EXPECT_EQ(sum, 1);
    EXPECT_EQ(w[static_cast<std::size_t>(m.cell_level(c))], 1);
  }
}

TEST(StrategyGraph, HybridHasNoSingleGraph) {
  const auto m = small_cylinder();
  EXPECT_THROW(build_strategy_graph(m, Strategy::hybrid), precondition_error);
}

TEST(Decompose, CoversAllDomains) {
  const auto m = small_cylinder();
  for (const Strategy s :
       {Strategy::sc_cells, Strategy::sc_oc, Strategy::mc_tl}) {
    StrategyOptions opts;
    opts.strategy = s;
    opts.ndomains = 8;
    const DomainDecomposition dd = decompose(m, opts);
    ASSERT_EQ(dd.domain_of_cell.size(), static_cast<std::size_t>(m.num_cells()));
    std::vector<index_t> count(8, 0);
    for (const part_t d : dd.domain_of_cell) {
      ASSERT_GE(d, 0);
      ASSERT_LT(d, 8);
      ++count[static_cast<std::size_t>(d)];
    }
    for (part_t d = 0; d < 8; ++d) EXPECT_GT(count[static_cast<std::size_t>(d)], 0);
  }
}

TEST(Decompose, CensusConsistent) {
  const auto m = small_cylinder();
  StrategyOptions opts;
  opts.strategy = Strategy::sc_oc;
  opts.ndomains = 4;
  const DomainDecomposition dd = decompose(m, opts);
  index_t total = 0;
  for (part_t d = 0; d < 4; ++d)
    for (level_t l = 0; l < dd.num_levels; ++l) total += dd.cells_in(d, l);
  EXPECT_EQ(total, m.num_cells());
  // total_cost sums per-level costs.
  for (part_t d = 0; d < 4; ++d) {
    weight_t sum = 0;
    for (level_t l = 0; l < dd.num_levels; ++l) sum += dd.cost_in(d, l);
    EXPECT_EQ(sum, dd.total_cost(d));
  }
}

TEST(Decompose, ScOcBalancesCostButNotLevels) {
  // The paper's core observation (Fig 7): operating costs balance while
  // temporal-level populations diverge wildly.
  const auto m = small_cylinder();
  StrategyOptions opts;
  opts.strategy = Strategy::sc_oc;
  opts.ndomains = 16;
  const DomainDecomposition dd = decompose(m, opts);
  EXPECT_LE(dd.cost_imbalance(), 1.35);
  EXPECT_GE(dd.level_imbalance(), 2.0);  // badly spread level classes
}

TEST(Decompose, McTlBalancesLevels) {
  // The paper's contribution (Fig 10): every level class spread evenly.
  const auto m = small_cylinder();
  StrategyOptions opts;
  opts.strategy = Strategy::mc_tl;
  opts.ndomains = 16;
  const DomainDecomposition dd = decompose(m, opts);
  EXPECT_LE(dd.level_imbalance(), 2.0);
  // And since balancing every level balances their weighted sum, the
  // operating cost stays reasonable too.
  EXPECT_LE(dd.cost_imbalance(), 1.6);
}

TEST(Decompose, McTlBeatsScOcOnLevelBalance) {
  const auto m = small_cylinder();
  StrategyOptions oc, tl;
  oc.strategy = Strategy::sc_oc;
  tl.strategy = Strategy::mc_tl;
  oc.ndomains = tl.ndomains = 12;
  EXPECT_LT(decompose(m, tl).level_imbalance(),
            decompose(m, oc).level_imbalance());
}

TEST(Decompose, McTlCutsMoreEdges) {
  // Paper Fig 11b: the price of level balance is a larger interface.
  const auto m = small_cylinder();
  StrategyOptions oc, tl;
  oc.strategy = Strategy::sc_oc;
  tl.strategy = Strategy::mc_tl;
  oc.ndomains = tl.ndomains = 16;
  EXPECT_GT(decompose(m, tl).edge_cut, decompose(m, oc).edge_cut);
}

TEST(Decompose, SingleDomainTrivial) {
  const auto m = small_cylinder();
  StrategyOptions opts;
  opts.ndomains = 1;
  const DomainDecomposition dd = decompose(m, opts);
  EXPECT_EQ(dd.edge_cut, 0);
  EXPECT_DOUBLE_EQ(dd.cost_imbalance(), 1.0);
}

TEST(Hybrid, RefinesWithinProcessDomains) {
  const auto m = small_cylinder();
  StrategyOptions opts;
  opts.strategy = Strategy::hybrid;
  opts.ndomains = 16;
  opts.nprocesses = 4;
  const DomainDecomposition dd = decompose(m, opts);
  EXPECT_EQ(dd.ndomains, 16);
  std::vector<index_t> count(16, 0);
  for (const part_t d : dd.domain_of_cell) {
    ASSERT_GE(d, 0);
    ASSERT_LT(d, 16);
    ++count[static_cast<std::size_t>(d)];
  }
  for (part_t d = 0; d < 16; ++d) EXPECT_GT(count[static_cast<std::size_t>(d)], 0);

  // Process groups (blocks of 4 domains) must balance temporal levels
  // like MC_TL does across processes.
  const level_t nlev = dd.num_levels;
  std::vector<index_t> per_proc(static_cast<std::size_t>(4 * nlev), 0);
  for (part_t d = 0; d < 16; ++d)
    for (level_t l = 0; l < nlev; ++l)
      per_proc[static_cast<std::size_t>((d / 4) * nlev + l)] += dd.cells_in(d, l);
  for (level_t l = 0; l < nlev; ++l) {
    index_t total = 0, worst = 0;
    for (part_t p = 0; p < 4; ++p) {
      total += per_proc[static_cast<std::size_t>(p * nlev + l)];
      worst = std::max(worst, per_proc[static_cast<std::size_t>(p * nlev + l)]);
    }
    if (total < 400) continue;  // tiny classes carry slack
    EXPECT_LE(static_cast<double>(worst) * 4.0 / static_cast<double>(total), 2.0)
        << "level " << static_cast<int>(l);
  }
}

TEST(Hybrid, RequiresDivisibleDomainCount) {
  const auto m = small_cylinder();
  StrategyOptions opts;
  opts.strategy = Strategy::hybrid;
  opts.ndomains = 10;
  opts.nprocesses = 4;
  EXPECT_THROW(decompose(m, opts), precondition_error);
}

TEST(Mapping, BlockAndRoundRobin) {
  const auto block = map_domains_to_processes(8, 3, DomainMapping::block);
  EXPECT_EQ(block, (std::vector<part_t>{0, 0, 0, 1, 1, 1, 2, 2}));
  const auto rr = map_domains_to_processes(8, 3, DomainMapping::round_robin);
  EXPECT_EQ(rr, (std::vector<part_t>{0, 1, 2, 0, 1, 2, 0, 1}));
  EXPECT_THROW(map_domains_to_processes(2, 4, DomainMapping::block),
               precondition_error);
}

}  // namespace
}  // namespace tamp::partition
