// Tests of the scalar advection–diffusion solver: conservation, the
// discrete maximum principle, diffusion behaviour, advection direction,
// adaptive subcycling and task/serial equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "mesh/generators.hpp"
#include "partition/strategy.hpp"
#include "solver/transport.hpp"

namespace tamp::solver {
namespace {

TEST(Transport, UniformFieldIsSteadyState) {
  mesh::Mesh m = mesh::make_lattice_mesh(5, 5, 5);
  TransportConfig cfg;
  cfg.velocity = {1.0, 0.5, -0.2};
  cfg.diffusivity = 0.1;
  cfg.ambient = 3.0;  // inflow carries the same value: exact steady state
  TransportSolver s(m, cfg);
  s.initialize_uniform(3.0);
  s.assign_temporal_levels();
  for (int it = 0; it < 3; ++it) s.run_iteration();
  for (index_t c = 0; c < m.num_cells(); ++c)
    EXPECT_NEAR(s.value(c), 3.0, 1e-12);
}

TEST(Transport, ScalarMassConservedExactly) {
  mesh::Mesh m = mesh::make_graded_box_mesh(9, 9, 9, 1.2);
  TransportConfig cfg;
  cfg.velocity = {0.8, 0.3, 0.0};
  cfg.diffusivity = 0.05;
  TransportSolver s(m, cfg);
  s.initialize_uniform(1.0);
  s.add_blob({2.0, 2.0, 2.0}, 1.5, 2.0);
  s.assign_temporal_levels();
  // Open boundaries: what is inside plus what departed is invariant.
  const double before = s.total_scalar() + s.net_boundary_outflow();
  for (int it = 0; it < 5; ++it) {
    s.run_iteration();
    EXPECT_NEAR(s.total_scalar() + s.net_boundary_outflow(), before,
                1e-10 * std::abs(before))
        << "iter " << it;
  }
  EXPECT_TRUE(s.values_finite());
}

TEST(Transport, DiscreteMaximumPrinciple) {
  // Upwind + two-point diffusion under the CFL bound creates no new
  // extrema: φ stays within [initial min, initial max].
  mesh::Mesh m = mesh::make_graded_box_mesh(8, 8, 8, 1.25);
  TransportConfig cfg;
  cfg.velocity = {1.0, 0.0, 0.0};
  cfg.diffusivity = 0.02;
  TransportSolver s(m, cfg);
  s.initialize_uniform(0.0);
  s.add_blob({1.5, 1.5, 1.5}, 1.0, 1.0);
  s.assign_temporal_levels();
  const double lo = s.min_value(), hi = s.max_value();
  for (int it = 0; it < 6; ++it) {
    s.run_iteration();
    EXPECT_GE(s.min_value(), lo - 1e-12) << "iter " << it;
    EXPECT_LE(s.max_value(), hi + 1e-12) << "iter " << it;
  }
}

TEST(Transport, DiffusionDecaysPeak) {
  mesh::Mesh m = mesh::make_lattice_mesh(10, 10, 10);
  TransportConfig cfg;
  cfg.velocity = {0, 0, 0};
  cfg.diffusivity = 0.2;
  TransportSolver s(m, cfg);
  s.initialize_uniform(0.0);
  s.add_blob({5, 5, 5}, 1.0, 1.0);
  s.assign_temporal_levels();
  const double peak0 = s.max_value();
  s.run_iteration();
  const double peak1 = s.max_value();
  s.run_iteration();
  EXPECT_LT(peak1, peak0);
  EXPECT_LT(s.max_value(), peak1);
  EXPECT_GE(s.min_value(), -1e-12);  // diffusion cannot undershoot
}

TEST(Transport, AdvectionMovesBlobDownstream) {
  mesh::Mesh m = mesh::make_lattice_mesh(16, 4, 4);
  TransportConfig cfg;
  cfg.velocity = {1.0, 0.0, 0.0};
  cfg.diffusivity = 0.0;
  TransportSolver s(m, cfg);
  s.initialize_uniform(0.0);
  s.add_blob({3.0, 2.0, 2.0}, 1.0, 1.0);
  s.assign_temporal_levels();
  auto centroid_x = [&] {
    double mass = 0, mx = 0;
    for (index_t c = 0; c < m.num_cells(); ++c) {
      const double w = s.value(c) * m.cell_volume(c);
      mass += w;
      mx += w * m.cell_centroid(c).x;
    }
    return mx / mass;
  };
  const double x0 = centroid_x();
  double elapsed = 0;
  for (int it = 0; it < 8; ++it) {
    s.run_iteration();
  }
  elapsed = s.time();
  const double x1 = centroid_x();
  // The scalar's centre of mass moves with the flow (upwind diffusion
  // spreads it, but the mean must track u·t until walls interfere).
  EXPECT_NEAR(x1 - x0, elapsed, 0.25 * elapsed);
}

TEST(Transport, RequiresVelocityOrDiffusivity) {
  mesh::Mesh m = mesh::make_lattice_mesh(3, 3, 3);
  TransportConfig cfg;
  cfg.velocity = {0, 0, 0};
  cfg.diffusivity = 0.0;
  TransportSolver s(m, cfg);
  s.initialize_uniform(1.0);
  EXPECT_THROW((void)s.assign_temporal_levels(), precondition_error);
}

TEST(Transport, GradedMeshGetsMultipleLevels) {
  mesh::Mesh m = mesh::make_graded_box_mesh(12, 12, 12, 1.25);
  TransportConfig cfg;
  cfg.velocity = {1, 0, 0};
  TransportSolver s(m, cfg);
  s.initialize_uniform(0.0);
  s.assign_temporal_levels();
  EXPECT_GE(m.max_level(), 2);
}

TEST(Transport, DiffusiveLevelsScaleQuadratically) {
  // Pure diffusion: Δt ∝ h², so one cell-size doubling is *two* temporal
  // levels — a different ladder shape than advection's.
  mesh::Mesh adv_mesh = mesh::make_graded_box_mesh(10, 10, 10, 1.2);
  mesh::Mesh dif_mesh = mesh::make_graded_box_mesh(10, 10, 10, 1.2);
  TransportConfig adv;
  adv.velocity = {1, 0, 0};
  adv.diffusivity = 0;
  TransportConfig dif;
  dif.velocity = {0, 0, 0};
  dif.diffusivity = 0.1;
  dif.max_levels = 8;
  TransportSolver sa(adv_mesh, adv), sd(dif_mesh, dif);
  sa.initialize_uniform(0);
  sd.initialize_uniform(0);
  sa.assign_temporal_levels();
  sd.assign_temporal_levels();
  EXPECT_GT(dif_mesh.max_level(), adv_mesh.max_level());
}

TEST(Transport, TaskExecutionMatchesSerial) {
  mesh::Mesh m1 = mesh::make_graded_box_mesh(8, 7, 6, 1.2);
  mesh::Mesh m2 = mesh::make_graded_box_mesh(8, 7, 6, 1.2);
  TransportConfig cfg;
  cfg.velocity = {0.7, -0.2, 0.1};
  cfg.diffusivity = 0.03;
  TransportSolver serial(m1, cfg), tasked(m2, cfg);
  for (TransportSolver* s : {&serial, &tasked}) {
    s->initialize_uniform(1.0);
    s->add_blob({1.5, 1.0, 0.8}, 1.0, 1.5);
    s->assign_temporal_levels();
  }
  partition::StrategyOptions sopts;
  sopts.strategy = partition::Strategy::mc_tl;
  sopts.ndomains = 6;
  const auto dd = partition::decompose(m2, sopts);
  runtime::RuntimeConfig rc;
  rc.num_processes = 3;
  rc.workers_per_process = 2;
  const auto d2p = partition::map_domains_to_processes(
      6, 3, partition::DomainMapping::block);

  for (int it = 0; it < 2; ++it) serial.run_iteration();
  for (int it = 0; it < 2; ++it)
    tasked.run_iteration_tasks(dd.domain_of_cell, 6, d2p, rc);
  for (index_t c = 0; c < m1.num_cells(); ++c)
    EXPECT_NEAR(tasked.value(c), serial.value(c), 1e-13) << "cell " << c;
}

TEST(Transport, TaskExecutionConserves) {
  mesh::Mesh m = mesh::make_graded_box_mesh(8, 8, 8, 1.2);
  TransportConfig cfg;
  cfg.velocity = {0.5, 0.5, 0};
  cfg.diffusivity = 0.02;
  TransportSolver s(m, cfg);
  s.initialize_uniform(1.0);
  s.add_blob({1, 1, 1}, 1.0, 1.0);
  s.assign_temporal_levels();
  partition::StrategyOptions sopts;
  sopts.strategy = partition::Strategy::sc_oc;
  sopts.ndomains = 4;
  const auto dd = partition::decompose(m, sopts);
  runtime::RuntimeConfig rc;
  rc.num_processes = 2;
  rc.workers_per_process = 2;
  const auto d2p = partition::map_domains_to_processes(
      4, 2, partition::DomainMapping::block);
  const double before = s.total_scalar() + s.net_boundary_outflow();
  for (int it = 0; it < 3; ++it)
    s.run_iteration_tasks(dd.domain_of_cell, 4, d2p, rc);
  EXPECT_NEAR(s.total_scalar() + s.net_boundary_outflow(), before,
              1e-10 * std::abs(before));
}

TEST(Transport, ValidatesConfigAndInput) {
  mesh::Mesh m = mesh::make_lattice_mesh(3, 3, 3);
  TransportConfig bad;
  bad.diffusivity = -1;
  EXPECT_THROW(TransportSolver(m, bad), precondition_error);
  bad = TransportConfig{};
  bad.cfl = 0;
  EXPECT_THROW(TransportSolver(m, bad), precondition_error);
  TransportSolver s(m);
  EXPECT_THROW(s.set_value(100, 1.0), precondition_error);
  EXPECT_THROW(s.add_blob({0, 0, 0}, -1.0, 1.0), precondition_error);
  EXPECT_THROW(s.run_iteration(), precondition_error);  // no levels yet
}

}  // namespace
}  // namespace tamp::solver
