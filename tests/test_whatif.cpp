// Tests of the what-if virtual-speedup replay (sim/whatif.hpp).
//
// The two contract pillars the ISSUE gates on:
//   1. self-consistency — the k = 1.0 replay reproduces the measured
//      makespan *bit-exactly* (EXPECT_EQ on doubles, no tolerance);
//   2. monotonicity — shrinking k never grows the predicted makespan.
// Both are checked against real runtime::execute reports (threads, real
// timestamps) and against hand-built reports with analytically known
// answers.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"
#include "support/check.hpp"
#include "sim/whatif.hpp"
#include "taskgraph/taskgraph.hpp"

namespace tamp::sim {
namespace {

using runtime::ExecutionReport;
using taskgraph::Task;
using taskgraph::TaskClass;
using taskgraph::TaskGraph;

/// Diamond with one class per task (levels 0..3 are distinct classes):
///   0 ──▶ 2 ──▶ 3
///   1 ──▶ 2
TaskGraph diamond_graph() {
  std::vector<Task> tasks(4);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].domain = 0;
    tasks[i].cost = 1;
    tasks[i].num_objects = 1;
    tasks[i].level = static_cast<level_t>(i);
  }
  return TaskGraph(std::move(tasks), {{}, {}, {0, 1}, {2}});
}

/// Measured schedule for diamond_graph() on 1 process × 2 workers:
///   w0: 0 [0.0, 1.0]          2 [1.5, 2.5]
///   w1: 1 [0.0, 1.5]                        3 [2.5, 3.5]
/// All slacks zero; makespan 3.5.
ExecutionReport diamond_report() {
  ExecutionReport report;
  report.num_processes = 1;
  report.workers_per_process = 2;
  report.wall_seconds = 3.6;  // includes join time the replay must ignore
  report.spans = {
      {0.0, 1.0, 0, 0},
      {0.0, 1.5, 0, 1},
      {1.5, 2.5, 0, 0},
      {2.5, 3.5, 0, 1},
  };
  return report;
}

std::vector<double> scale_for(const TaskGraph& g, level_t level, double k) {
  TaskClass cls;
  cls.level = level;
  std::vector<double> scale(static_cast<std::size_t>(cls.id()) + 1, 1.0);
  scale.back() = k;
  (void)g;
  return scale;
}

TEST(WhatIfReplay, AllOnesReproducesMeasuredMakespanBitExactly) {
  const TaskGraph g = diamond_graph();
  const ExecutionReport report = diamond_report();
  EXPECT_EQ(replay_scaled(g, report, {}), 3.5);
  const std::vector<double> ones(16, 1.0);
  EXPECT_EQ(replay_scaled(g, report, ones), 3.5);
}

TEST(WhatIfReplay, CriticalPathClassSpeedupShortensMakespan) {
  const TaskGraph g = diamond_graph();
  const ExecutionReport report = diamond_report();
  // Task 1 (level 1, duration 1.5) gates task 2. Halving it moves the
  // gate of 2 to task 0's end (1.0): 2 runs [1.0, 2.0], 3 runs [2.0, 3.0].
  EXPECT_DOUBLE_EQ(replay_scaled(g, report, scale_for(g, 1, 0.5)), 3.0);
}

TEST(WhatIfReplay, OffCriticalPathClassSpeedupBuysNothing) {
  const TaskGraph g = diamond_graph();
  const ExecutionReport report = diamond_report();
  // Task 0 finishes at 1.0 but task 2 waits for task 1 until 1.5 anyway.
  EXPECT_EQ(replay_scaled(g, report, scale_for(g, 0, 0.5)), 3.5);
}

TEST(WhatIfReplay, SlowdownNeverShrinksMakespan) {
  const TaskGraph g = diamond_graph();
  const ExecutionReport report = diamond_report();
  EXPECT_DOUBLE_EQ(replay_scaled(g, report, scale_for(g, 2, 2.0)),
                   4.5);  // 2 runs [1.5, 3.5], 3 runs [3.5, 4.5]
}

TEST(WhatIfReplay, MeasuredSlackIsPreserved) {
  const TaskGraph g = diamond_graph();
  ExecutionReport report = diamond_report();
  // Task 2 measured 0.2 s after its gate (dequeue latency): the replay
  // must carry that overhead, not idealize it away.
  report.spans[2] = {1.7, 2.7, 0, 0};
  report.spans[3] = {2.7, 3.7, 0, 1};
  EXPECT_EQ(replay_scaled(g, report, {}), 3.7);
  // Halve task 1: gate of 2 drops to 1.0, slack 0.2 rides along →
  // 2 runs [1.2, 2.2], 3 runs [2.2, 3.2].
  EXPECT_DOUBLE_EQ(replay_scaled(g, report, scale_for(g, 1, 0.5)), 3.2);
}

TEST(WhatIfReplay, ZeroDurationTiesStaySchedulable) {
  // Two zero-duration tasks at the same timestamp on one worker, with a
  // graph edge between them: chain ordering must not fight the DAG.
  std::vector<Task> tasks(2);
  for (auto& t : tasks) {
    t.domain = 0;
    t.cost = 1;
    t.num_objects = 1;
  }
  const TaskGraph g(std::move(tasks), {{}, {0}});
  ExecutionReport report;
  report.num_processes = 1;
  report.workers_per_process = 1;
  report.wall_seconds = 1.0;
  report.spans = {{0.5, 0.5, 0, 0}, {0.5, 0.5, 0, 0}};
  EXPECT_EQ(replay_scaled(g, report, {}), 0.5);
}

runtime::ExecutionReport run_real(const TaskGraph& g, part_t processes,
                                  int workers) {
  runtime::RuntimeConfig cfg;
  cfg.num_processes = processes;
  cfg.workers_per_process = workers;
  part_t num_domains = 0;
  for (index_t t = 0; t < g.num_tasks(); ++t)
    num_domains =
        std::max(num_domains, static_cast<part_t>(g.task(t).domain + 1));
  std::vector<part_t> domain_to_process(static_cast<std::size_t>(num_domains));
  for (std::size_t d = 0; d < domain_to_process.size(); ++d)
    domain_to_process[d] = static_cast<part_t>(d % processes);
  volatile double sink = 0;
  return runtime::execute(g, domain_to_process, cfg, [&sink](index_t t) {
    for (int i = 0; i < 2000 * (1 + static_cast<int>(t % 5)); ++i)
      sink = sink + 1e-9;
  });
}

/// Layered graph with mixed classes across two domains.
TaskGraph layered_graph() {
  std::vector<Task> tasks;
  std::vector<std::vector<index_t>> deps;
  for (int layer = 0; layer < 4; ++layer)
    for (int j = 0; j < 6; ++j) {
      Task t;
      t.domain = static_cast<part_t>(j % 2);
      t.cost = 1 + (j % 3);
      t.num_objects = 10;
      t.subiteration = static_cast<index_t>(layer);
      t.level = static_cast<level_t>(j % 2);
      t.type = (j % 2) ? taskgraph::ObjectType::cell
                       : taskgraph::ObjectType::face;
      std::vector<index_t> pred;
      if (layer > 0) {
        const auto base = static_cast<index_t>((layer - 1) * 6);
        pred = {base + static_cast<index_t>(j),
                base + static_cast<index_t>((j + 1) % 6)};
      }
      tasks.push_back(t);
      deps.push_back(std::move(pred));
    }
  return TaskGraph(std::move(tasks), std::move(deps));
}

double measured_makespan(const ExecutionReport& report) {
  double m = 0;
  for (const auto& s : report.spans) m = std::max(m, s.end);
  return m;
}

TEST(WhatIf, SelfCheckIsBitExactOnRealExecution) {
  const TaskGraph g = layered_graph();
  const ExecutionReport report = run_real(g, 2, 2);
  const WhatIfReport wi = what_if(g, report);
  EXPECT_EQ(wi.measured_makespan, measured_makespan(report));
  // The gated acceptance criterion: no tolerance, bitwise equality.
  EXPECT_EQ(wi.baseline_makespan, wi.measured_makespan);
}

TEST(WhatIf, PredictionsAreMonotoneInK) {
  const TaskGraph g = layered_graph();
  const ExecutionReport report = run_real(g, 1, 3);
  WhatIfOptions opt;
  opt.factors = {1.0, 0.9, 0.75, 0.5, 0.25};
  const WhatIfReport wi = what_if(g, report, opt);
  ASSERT_FALSE(wi.rows.empty());
  for (const WhatIfClassRow& row : wi.rows) {
    ASSERT_EQ(row.entries.size(), opt.factors.size());
    // k = 1.0 entry is the baseline, bit-exactly.
    EXPECT_EQ(row.entries[0].predicted_makespan, wi.baseline_makespan);
    EXPECT_EQ(row.entries[0].delta_seconds, 0.0);
    for (std::size_t i = 1; i < row.entries.size(); ++i) {
      EXPECT_LE(row.entries[i].predicted_makespan,
                row.entries[i - 1].predicted_makespan)
          << "class " << row.cls.label() << " k=" << row.entries[i].factor;
      EXPECT_LE(row.entries[i].predicted_makespan, wi.baseline_makespan);
    }
  }
}

TEST(WhatIf, RowsCoverAllClassesRankedByLeverage) {
  const TaskGraph g = layered_graph();
  const ExecutionReport report = run_real(g, 1, 2);
  const WhatIfReport wi = what_if(g, report);
  const std::vector<TaskClass> classes = taskgraph::task_classes(g);
  ASSERT_EQ(wi.rows.size(), classes.size());
  index_t tasks = 0;
  for (std::size_t i = 0; i < wi.rows.size(); ++i) {
    const WhatIfClassRow& row = wi.rows[i];
    tasks += row.tasks;
    EXPECT_GT(row.class_seconds, 0.0);
    // Rank key consistency: best_delta is the most aggressive factor's
    // savings, and rows are sorted by it descending.
    EXPECT_EQ(row.best_delta_seconds, row.entries.back().delta_seconds);
    if (i > 0) {
      EXPECT_GE(wi.rows[i - 1].best_delta_seconds, row.best_delta_seconds);
    }
    for (const WhatIfEntry& e : row.entries) {
      EXPECT_EQ(e.delta_seconds, wi.baseline_makespan - e.predicted_makespan);
      if (wi.baseline_makespan > 0) {
        EXPECT_DOUBLE_EQ(e.rel_delta,
                         e.delta_seconds / wi.baseline_makespan);
      }
    }
  }
  EXPECT_EQ(tasks, g.num_tasks());
}

TEST(WhatIf, ReplayIsDeterministic) {
  const TaskGraph g = layered_graph();
  const ExecutionReport report = run_real(g, 1, 2);
  const std::vector<double> scale(8, 0.75);
  const double a = replay_scaled(g, report, scale);
  const double b = replay_scaled(g, report, scale);
  EXPECT_EQ(a, b);
}

TEST(WhatIf, PublishesSelfCheckAndLeverageGauges) {
  const TaskGraph g = diamond_graph();
  const ExecutionReport report = diamond_report();
  const WhatIfReport wi = what_if(g, report);
  publish_whatif_metrics(wi);
  const obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
  bool saw_self_check = false, saw_best = false, saw_class = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "whatif.self_check_error") {
      saw_self_check = true;
      EXPECT_EQ(value, 0.0);
    }
    if (name == "whatif.best.delta_seconds") saw_best = true;
    if (name.rfind("whatif.class.", 0) == 0 &&
        name.find(".k50.rel_delta") != std::string::npos)
      saw_class = true;
  }
  EXPECT_TRUE(saw_self_check);
  EXPECT_TRUE(saw_best);
  EXPECT_TRUE(saw_class);
}

TEST(WhatIf, MismatchedReportIsRejected) {
  const TaskGraph g = diamond_graph();
  ExecutionReport report = diamond_report();
  report.spans.pop_back();
  EXPECT_THROW((void)replay_scaled(g, report, {}), precondition_error);
}

}  // namespace
}  // namespace tamp::sim
