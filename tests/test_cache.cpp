// Tests of the decomposition cache (partition/cache.hpp): content-hash
// and key sensitivity, LRU/byte-budget eviction, admission control,
// single-flight miss collapsing, a concurrent hammer for the TSan job,
// and equivalence of decompose_cached with a direct decompose —
// including the out-of-cache permutation upgrade path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "mesh/generators.hpp"
#include "partition/cache.hpp"
#include "partition/reorder.hpp"

namespace tamp::partition {
namespace {

mesh::Mesh small_mesh(std::uint64_t seed = 7, index_t cells = 2000) {
  mesh::TestMeshSpec spec;
  spec.target_cells = cells;
  spec.seed = seed;
  return mesh::make_test_mesh(mesh::TestMeshKind::cylinder, spec);
}

CacheKey key_of(std::uint64_t mesh_hash) {
  CacheKey k;
  k.mesh_hash = mesh_hash;
  k.strategy = Strategy::mc_tl;
  k.ndomains = 8;
  k.nprocesses = 2;
  k.tolerance = 0.05;
  k.seed = 1;
  k.threads = 1;
  return k;
}

/// A tiny synthetic value padded until its estimated footprint reaches
/// `bytes` (the cache recomputes the estimate on publish, so the
/// footprint must live in real vector sizes, not in the `bytes` field).
CachedDecomposition synthetic_value(std::size_t bytes, part_t tag = 1) {
  CachedDecomposition v;
  v.decomposition.ndomains = tag;
  while (v.estimate_bytes() < bytes) v.decomposition.domain_of_cell.push_back(tag);
  v.bytes = v.estimate_bytes();
  return v;
}

// --- keying ------------------------------------------------------------------

TEST(MeshContentHash, DeterministicAndSensitive) {
  const auto a = small_mesh(7);
  const auto b = small_mesh(7);
  EXPECT_EQ(mesh_content_hash(a), mesh_content_hash(b));
  // Different geometry (different generator seed) → different hash.
  EXPECT_NE(mesh_content_hash(a), mesh_content_hash(small_mesh(8)));
  // Different temporal levels, same topology and geometry → different hash.
  auto c = small_mesh(7);
  auto levels = c.cell_levels();
  levels[0] = levels[0] == 0 ? 1 : 0;
  c.set_cell_levels(std::move(levels));
  EXPECT_NE(mesh_content_hash(a), mesh_content_hash(c));
}

TEST(CacheKeyTest, EveryFieldParticipates) {
  const CacheKey base = key_of(42);
  CacheKey k = base;
  EXPECT_TRUE(k == base);

  k = base;
  k.mesh_hash ^= 1;
  EXPECT_FALSE(k == base);
  EXPECT_NE(k.hash(), base.hash());
  k = base;
  k.strategy = Strategy::sc_oc;
  EXPECT_FALSE(k == base);
  EXPECT_NE(k.hash(), base.hash());
  k = base;
  k.ndomains = 9;
  EXPECT_FALSE(k == base);
  EXPECT_NE(k.hash(), base.hash());
  k = base;
  k.nprocesses = 3;
  EXPECT_FALSE(k == base);
  EXPECT_NE(k.hash(), base.hash());
  k = base;
  k.tolerance = 0.1;
  EXPECT_FALSE(k == base);
  EXPECT_NE(k.hash(), base.hash());
  k = base;
  k.seed = 2;
  EXPECT_FALSE(k == base);
  EXPECT_NE(k.hash(), base.hash());
  k = base;
  k.threads = 4;
  EXPECT_FALSE(k == base);
  EXPECT_NE(k.hash(), base.hash());
}

TEST(CacheKeyTest, MakeCacheKeyResolvesThreads) {
  const auto m = small_mesh();
  StrategyOptions opts;
  opts.partitioner.num_threads = 1;
  const CacheKey k = make_cache_key(m, opts);
  EXPECT_EQ(k.threads, 1);
  EXPECT_EQ(k.mesh_hash, mesh_content_hash(m));
}

// --- LRU / eviction / admission ---------------------------------------------

TEST(DecompositionCacheTest, HitMissAndLruEviction) {
  DecompositionCache::Options opts;
  opts.max_entries = 2;
  DecompositionCache cache(opts);

  const CacheKey a = key_of(1), b = key_of(2), c = key_of(3);
  EXPECT_EQ(cache.find(a), nullptr);  // miss
  (void)cache.get_or_compute(a, [] { return synthetic_value(64, 1); });
  (void)cache.get_or_compute(b, [] { return synthetic_value(64, 2); });
  EXPECT_NE(cache.find(a), nullptr);  // a is now MRU
  (void)cache.get_or_compute(c, [] { return synthetic_value(64, 3); });

  // b was LRU → evicted; a and c survive.
  EXPECT_NE(cache.find(a), nullptr);
  EXPECT_NE(cache.find(c), nullptr);
  EXPECT_EQ(cache.find(b), nullptr);

  const auto st = cache.stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.hits, 3u);    // find(a) twice + find(c)
  EXPECT_EQ(st.misses, 5u);  // initial find(a), three computes, find(b)
}

TEST(DecompositionCacheTest, ByteBudgetEvicts) {
  DecompositionCache::Options opts;
  opts.max_bytes = 1000;
  opts.admit_max_fraction = 0.5;
  DecompositionCache cache(opts);
  (void)cache.get_or_compute(key_of(1), [] { return synthetic_value(400); });
  (void)cache.get_or_compute(key_of(2), [] { return synthetic_value(400); });
  EXPECT_EQ(cache.stats().entries, 2u);
  (void)cache.get_or_compute(key_of(3), [] { return synthetic_value(400); });
  const auto st = cache.stats();
  EXPECT_LE(st.bytes, 1000u);
  EXPECT_GE(st.evictions, 1u);
  EXPECT_EQ(cache.find(key_of(1)), nullptr);  // oldest went first
}

TEST(DecompositionCacheTest, AdmissionRejectsOversizeValue) {
  DecompositionCache::Options opts;
  opts.max_bytes = 1000;
  opts.admit_max_fraction = 0.5;
  DecompositionCache cache(opts);
  const auto v =
      cache.get_or_compute(key_of(1), [] { return synthetic_value(900); });
  ASSERT_NE(v, nullptr);  // the caller still gets the computed value
  EXPECT_GE(v->bytes, 900u);
  const auto st = cache.stats();
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(cache.find(key_of(1)), nullptr);  // never admitted
}

TEST(DecompositionCacheTest, EvictedValueStaysAliveForHolders) {
  DecompositionCache::Options opts;
  opts.max_entries = 1;
  DecompositionCache cache(opts);
  const auto v =
      cache.get_or_compute(key_of(1), [] { return synthetic_value(64, 7); });
  (void)cache.get_or_compute(key_of(2), [] { return synthetic_value(64, 8); });
  EXPECT_EQ(cache.find(key_of(1)), nullptr);  // evicted...
  EXPECT_EQ(v->decomposition.ndomains, 7);    // ...but our ref is intact
}

TEST(DecompositionCacheTest, ClearResetsEntriesButKeepsCounters) {
  DecompositionCache cache;
  (void)cache.get_or_compute(key_of(1), [] { return synthetic_value(64); });
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
}

// --- single flight & concurrency ---------------------------------------------

TEST(DecompositionCacheTest, ConcurrentMissesOnOneKeySingleFlight) {
  DecompositionCache cache;
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<DecompositionCache::Value> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<std::size_t>(i)] =
          cache.get_or_compute(key_of(99), [&] {
            computes.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            return synthetic_value(64, 5);
          });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(computes.load(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), results[0].get());  // everyone shares one value
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.inflight_joins, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_DOUBLE_EQ(st.served_rate(),
                   static_cast<double>(kThreads - 1) / kThreads);
}

TEST(DecompositionCacheTest, FailedComputeIsRethrownToAllWaiters) {
  DecompositionCache cache;
  std::atomic<int> throws{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      try {
        (void)cache.get_or_compute(key_of(5), [&]() -> CachedDecomposition {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          throw std::runtime_error("partitioner exploded");
        });
      } catch (const std::runtime_error&) {
        throws.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(throws.load(), 4);
  EXPECT_EQ(cache.stats().entries, 0u);
  // The flight is gone: a later compute succeeds.
  const auto v =
      cache.get_or_compute(key_of(5), [] { return synthetic_value(64); });
  EXPECT_NE(v, nullptr);
}

TEST(DecompositionCacheTest, ConcurrentHammerIsRaceFree) {
  // Exercised under TSan by tools/tsan_check.sh: mixed hits, misses,
  // single-flight joins, evictions and clears from several threads.
  DecompositionCache::Options opts;
  opts.max_entries = 4;
  DecompositionCache cache(opts);
  constexpr int kThreads = 4, kOps = 200, kKeys = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        const auto tag = static_cast<part_t>((i * 31 + t * 17) % kKeys);
        const CacheKey k = key_of(static_cast<std::uint64_t>(tag));
        const auto v = cache.get_or_compute(
            k, [&] { return synthetic_value(64, tag + 1); });
        ASSERT_NE(v, nullptr);
        ASSERT_EQ(v->decomposition.ndomains, tag + 1);
        if (i % 10 == 0) (void)cache.find(k);
        if (t == 0 && i % 97 == 0) cache.clear();
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto st = cache.stats();
  EXPECT_GT(st.hits, 0u);
  EXPECT_GE(st.misses, static_cast<std::uint64_t>(kKeys));
  EXPECT_LE(st.entries, 4u);
}

// --- decompose_cached --------------------------------------------------------

TEST(DecomposeCached, MatchesDirectDecomposeAndHitsOnRepeat) {
  const auto m = small_mesh();
  StrategyOptions opts;
  opts.strategy = Strategy::mc_tl;
  opts.ndomains = 8;
  DecompositionCache cache;

  const auto direct = decompose(m, opts);
  const auto v1 = decompose_cached(m, opts, &cache);
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->decomposition.domain_of_cell, direct.domain_of_cell);
  EXPECT_EQ(v1->decomposition.ndomains, direct.ndomains);
  EXPECT_GT(v1->bytes, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);

  const auto v2 = decompose_cached(m, opts, &cache);
  EXPECT_EQ(v2.get(), v1.get());  // served from cache, same object
  EXPECT_EQ(cache.stats().hits, 1u);

  // Null cache degrades to a plain compute with identical output.
  const auto v3 = decompose_cached(m, opts, nullptr);
  ASSERT_NE(v3, nullptr);
  EXPECT_EQ(v3->decomposition.domain_of_cell, direct.domain_of_cell);
}

TEST(DecomposeCached, PermutationUpgradeLeavesCachedEntryUntouched) {
  const auto m = small_mesh();
  StrategyOptions opts;
  opts.ndomains = 4;
  DecompositionCache cache;

  const auto plain = decompose_cached(m, opts, &cache, false);
  ASSERT_FALSE(plain->with_permutation);

  const auto upgraded = decompose_cached(m, opts, &cache, true);
  ASSERT_NE(upgraded, nullptr);
  EXPECT_TRUE(upgraded->with_permutation);
  EXPECT_EQ(upgraded->decomposition.domain_of_cell,
            plain->decomposition.domain_of_cell);
  const auto ref = build_locality_permutation(
      m, plain->decomposition.domain_of_cell, plain->decomposition.ndomains);
  EXPECT_EQ(upgraded->permutation.cell_new_to_old, ref.cell_new_to_old);
  EXPECT_EQ(upgraded->permutation.face_new_to_old, ref.face_new_to_old);

  // The published entry was upgraded out-of-cache, never mutated.
  const auto again = decompose_cached(m, opts, &cache, false);
  EXPECT_EQ(again.get(), plain.get());
  EXPECT_FALSE(again->with_permutation);

  // A permutation-bearing first compute is cached with the permutation.
  DecompositionCache cache2;
  const auto full = decompose_cached(m, opts, &cache2, true);
  EXPECT_TRUE(full->with_permutation);
  const auto full_again = decompose_cached(m, opts, &cache2, true);
  EXPECT_EQ(full_again.get(), full.get());
}

}  // namespace
}  // namespace tamp::partition
