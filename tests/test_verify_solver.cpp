// Solver-level race verification and adversarial-schedule fuzzing:
// bitwise determinism of the task-parallel solvers under hostile
// schedules, conservation at every subiteration boundary of a genuinely
// parallel run, mutation testing of the checker (a dropped ordering edge
// is always flagged), and a clean sweep across meshes × partitioning
// strategies proving the generated DAGs order every conflicting access.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mesh/generators.hpp"
#include "partition/reorder.hpp"
#include "partition/strategy.hpp"
#include "solver/euler.hpp"
#include "solver/transport.hpp"
#include "support/rng.hpp"
#include "verify/graph_edit.hpp"
#include "verify/reachability.hpp"
#include "verify/verifier.hpp"

namespace tamp::verify {
namespace {

using solver::EulerSolver;
using solver::State;
using solver::TransportSolver;

struct Decomposition {
  std::vector<part_t> domain_of_cell;
  part_t ndomains = 0;
  std::vector<part_t> d2p;
};

Decomposition decompose(mesh::Mesh& m, partition::Strategy strategy,
                        part_t ndomains, part_t nproc) {
  partition::StrategyOptions sopts;
  sopts.strategy = strategy;
  sopts.ndomains = ndomains;
  const auto dd = partition::decompose(m, sopts);
  return {dd.domain_of_cell, dd.ndomains,
          partition::map_domains_to_processes(dd.ndomains, nproc,
                                              partition::DomainMapping::block)};
}

/// One (workers, seed, jitter) point of the adversarial sweep.
struct Schedule {
  int workers;
  std::uint64_t seed;
  double max_delay_seconds;
};

constexpr Schedule kSweep[] = {
    {1, 1, 0.0},    {2, 2, 0.0},    {2, 3, 50e-6}, {4, 4, 0.0},
    {4, 5, 50e-6},  {2, 6, 50e-6},  {4, 7, 0.0},   {1, 8, 50e-6},
};

runtime::RuntimeConfig adversarial_config(const Schedule& s, part_t nproc) {
  runtime::RuntimeConfig rc;
  rc.num_processes = nproc;
  rc.workers_per_process = s.workers;
  rc.adversarial.enabled = true;
  rc.adversarial.seed = s.seed;
  rc.adversarial.max_delay_seconds = s.max_delay_seconds;
  return rc;
}

// --- adversarial determinism -------------------------------------------------

TEST(VerifySolver, EulerBitwiseDeterministicUnderAdversarialSchedules) {
  // Twin solvers on twin meshes: serial reference vs task execution under
  // eight hostile schedules. Every object is touched by exactly one task
  // per activation and object lists are deterministic, so the final state
  // must match the serial run bit for bit — any divergence means the
  // schedule leaked into the arithmetic, i.e. a race.
  mesh::Mesh m1 = mesh::make_graded_box_mesh(8, 6, 5, 1.25);
  mesh::Mesh m2 = mesh::make_graded_box_mesh(8, 6, 5, 1.25);
  EulerSolver serial(m1), tasked(m2);
  for (EulerSolver* s : {&serial, &tasked}) {
    s->initialize_uniform(1.0, {0.1, 0.05, 0.0}, 1.0);
    s->add_pulse({1.5, 1.0, 0.8}, 0.8, 0.25);
    s->assign_temporal_levels();
  }
  const auto dd = decompose(m2, partition::Strategy::mc_tl, 4, 2);

  int k = 0;
  for (const Schedule& sched : kSweep) {
    serial.run_iteration();
    const auto iter = tasked.make_iteration_tasks(dd.domain_of_cell,
                                                  dd.ndomains);
    runtime::execute(iter.graph, dd.d2p, adversarial_config(sched, 2),
                     iter.body);
    tasked.note_tasks_complete();
    for (index_t c = 0; c < m1.num_cells(); ++c) {
      const State a = serial.cell_state(c), b = tasked.cell_state(c);
      for (int v = 0; v < solver::kNumVars; ++v)
        ASSERT_EQ(a[static_cast<std::size_t>(v)],
                  b[static_cast<std::size_t>(v)])
            << "schedule " << k << " cell " << c << " var " << v;
    }
    ++k;
  }
  EXPECT_EQ(serial.time(), tasked.time());
}

TEST(VerifySolver, TransportBitwiseDeterministicUnderAdversarialSchedules) {
  mesh::Mesh m1 = mesh::make_graded_box_mesh(7, 6, 5, 1.3);
  mesh::Mesh m2 = mesh::make_graded_box_mesh(7, 6, 5, 1.3);
  solver::TransportConfig tc;
  tc.velocity = {0.8, 0.3, 0.0};
  tc.diffusivity = 0.02;
  TransportSolver serial(m1, tc), tasked(m2, tc);
  for (TransportSolver* s : {&serial, &tasked}) {
    s->initialize_uniform(0.1);
    s->add_blob({1.0, 1.0, 0.8}, 0.7, 1.0);
    s->assign_temporal_levels();
  }
  const auto dd = decompose(m2, partition::Strategy::sc_oc, 4, 2);

  int k = 0;
  for (const Schedule& sched : kSweep) {
    serial.run_iteration();
    const auto iter = tasked.make_iteration_tasks(dd.domain_of_cell,
                                                  dd.ndomains);
    runtime::execute(iter.graph, dd.d2p, adversarial_config(sched, 2),
                     iter.body);
    tasked.note_tasks_complete();
    for (index_t c = 0; c < m1.num_cells(); ++c)
      ASSERT_EQ(serial.value(c), tasked.value(c))
          << "schedule " << k << " cell " << c;
    ++k;
  }
}

// --- conservation under concurrency ------------------------------------------

TEST(VerifySolver, ConservationHoldsAtEverySubiterationBoundary) {
  // Slice one iteration's DAG into per-subiteration induced subgraphs and
  // execute each slice adversarially in parallel. Dependency paths between
  // tasks of the same subiteration never leave that subiteration, so this
  // is a valid (conservative) schedule of the full graph — and between
  // slices the solver state is quiescent, so the conservation invariant
  // can be probed mid-iteration while the run is genuinely concurrent.
  mesh::Mesh m = mesh::make_graded_box_mesh(8, 8, 6, 1.25);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0.1, 0.0, 0.0}, 1.0);
  s.add_pulse({1.2, 1.2, 0.9}, 0.9, 0.3);
  s.assign_temporal_levels();
  const auto dd = decompose(m, partition::Strategy::hybrid, 4, 2);
  const State start = s.conserved_totals();

  for (int it = 0; it < 2; ++it) {
    const auto iter = s.make_iteration_tasks(dd.domain_of_cell, dd.ndomains);
    index_t nsub = 0;
    for (index_t t = 0; t < iter.graph.num_tasks(); ++t)
      nsub = std::max(nsub, iter.graph.task(t).subiteration + 1);
    for (index_t sub = 0; sub < nsub; ++sub) {
      std::vector<char> keep(static_cast<std::size_t>(iter.graph.num_tasks()));
      for (index_t t = 0; t < iter.graph.num_tasks(); ++t)
        keep[static_cast<std::size_t>(t)] =
            iter.graph.task(t).subiteration == sub ? 1 : 0;
      const InducedSubgraph slice = filter_tasks(iter.graph, keep);
      AccessLog log(slice.graph.num_tasks());
      const runtime::TaskBody body = instrument(
          [&](index_t t) {
            iter.body(slice.original_task[static_cast<std::size_t>(t)]);
          },
          log);
      runtime::execute(
          slice.graph, dd.d2p,
          adversarial_config({2, 40 + static_cast<std::uint64_t>(sub), 20e-6},
                             2),
          body);
      // Each slice's DAG must itself order its conflicting accesses.
      EXPECT_TRUE(check_races(slice.graph, log).clean())
          << "iter " << it << " subiteration " << sub;
      const State now = s.conserved_totals();
      EXPECT_NEAR(now[0], start[0], 1e-10 * std::abs(start[0]))
          << "iter " << it << " subiteration " << sub;
      EXPECT_NEAR(now[4], start[4], 1e-10 * std::abs(start[4]))
          << "iter " << it << " subiteration " << sub;
    }
    s.note_tasks_complete();
  }
}

// --- mutation testing: no false negatives ------------------------------------

TEST(VerifySolver, RemovedOrderingEdgeIsAlwaysFlagged) {
  // Drop one dependency edge at a time. If the mutated graph still orders
  // the pair through another path the removal is harmless; otherwise the
  // checker MUST report the severed pair — that edge was load-bearing.
  mesh::Mesh m = mesh::make_graded_box_mesh(7, 6, 5, 1.3);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0.1, 0.0, 0.0}, 1.0);
  s.add_pulse({1.0, 1.0, 0.8}, 0.8, 0.2);
  s.assign_temporal_levels();
  const auto dd = decompose(m, partition::Strategy::mc_tl, 4, 2);
  const auto iter = s.make_iteration_tasks(dd.domain_of_cell, dd.ndomains);

  std::vector<std::pair<index_t, index_t>> edges =
      dependency_edges(iter.graph);
  Rng rng(2026);
  rng.shuffle(edges);

  int mutations = 0, redundant = 0;
  for (const auto& [u, v] : edges) {
    if (mutations >= 6) break;
    const taskgraph::TaskGraph mutated = remove_dependency(iter.graph, u, v);
    if (Reachability(mutated).reachable(u, v)) {
      ++redundant;  // another path still orders the pair
      continue;
    }
    AccessLog log(mutated.num_tasks());
    collect_serial(mutated, iter.body, log);
    const RaceReport report = check_races(mutated, log);
    bool pair_reported = false;
    for (const Conflict& c : report.conflicts)
      pair_reported |= c.first == std::min(u, v) && c.second == std::max(u, v);
    EXPECT_TRUE(pair_reported)
        << "dropping " << u << " -> " << v << " ("
        << iter.graph.task(u).label() << " -> " << iter.graph.task(v).label()
        << ") was not flagged; " << report.conflicts.size()
        << " conflicts reported";
    ++mutations;
  }
  EXPECT_GE(mutations, 6) << "graph too redundant to mutate (" << redundant
                          << " redundant edges)";
}

TEST(VerifySolver, RogueWriteIsFlagged) {
  // A task body that scribbles on state it never declared: every task
  // writes cell 0. The unmutated DAG cannot order all those writers, so
  // the checker must object.
  mesh::Mesh m = mesh::make_graded_box_mesh(6, 5, 4, 1.3);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0.0, 0.0, 0.0}, 1.0);
  s.assign_temporal_levels();
  const auto dd = decompose(m, partition::Strategy::sc_oc, 3, 1);
  const auto iter = s.make_iteration_tasks(dd.domain_of_cell, dd.ndomains);
  AccessLog log(iter.graph.num_tasks());
  collect_serial(
      iter.graph,
      [&](index_t t) {
        iter.body(t);
        record_write(ObjectKind::cell_state, 0);
      },
      log);
  const RaceReport report = check_races(iter.graph, log);
  ASSERT_FALSE(report.clean());
  bool cell_conflict = false;
  for (const Conflict& c : report.conflicts)
    cell_conflict |= c.kind == ObjectKind::cell_state;
  EXPECT_TRUE(cell_conflict);
}

// --- clean sweep: no false positives ------------------------------------------

void expect_clean_euler(mesh::Mesh& m, partition::Strategy strategy,
                        part_t ndomains, const std::string& what) {
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0.1, 0.05, 0.0}, 1.0);
  s.assign_temporal_levels();
  const auto dd = decompose(m, strategy, ndomains, 2);
  const auto iter = s.make_iteration_tasks(dd.domain_of_cell, dd.ndomains);
  AccessLog log(iter.graph.num_tasks());
  collect_serial(iter.graph, iter.body, log);
  const RaceReport report = check_races(iter.graph, log);
  EXPECT_TRUE(report.clean()) << what << ":\n" << report.summary(iter.graph);
}

void expect_clean_transport(mesh::Mesh& m, partition::Strategy strategy,
                            part_t ndomains, const std::string& what) {
  solver::TransportConfig tc;
  tc.velocity = {1.0, 0.2, 0.0};
  tc.diffusivity = 0.01;
  TransportSolver s(m, tc);
  s.initialize_uniform(0.5);
  s.assign_temporal_levels();
  const auto dd = decompose(m, strategy, ndomains, 2);
  const auto iter = s.make_iteration_tasks(dd.domain_of_cell, dd.ndomains);
  AccessLog log(iter.graph.num_tasks());
  collect_serial(iter.graph, iter.body, log);
  const RaceReport report = check_races(iter.graph, log);
  EXPECT_TRUE(report.clean()) << what << ":\n" << report.summary(iter.graph);
}

// --- renumbered (locality-layout) path ----------------------------------------

/// Decompose, renumber for locality, and return the bundle; the solver
/// must already have assigned temporal levels to `m` (the face classes
/// depend on them).
partition::ReorderedDecomposition renumber(mesh::Mesh& m,
                                           partition::Strategy strategy,
                                           part_t ndomains) {
  partition::StrategyOptions sopts;
  sopts.strategy = strategy;
  sopts.ndomains = ndomains;
  const auto dd = partition::decompose(m, sopts);
  return partition::reorder_for_locality(m, dd.domain_of_cell, dd.ndomains);
}

TEST(VerifySolver, CleanSweepOnRenumberedMeshes) {
  // On a locality-renumbered mesh the task bodies take the streaming
  // range path and record range-granular accesses; the checker must
  // still see every conflict ordered — across both solvers and all
  // strategies.
  const partition::Strategy strategies[] = {partition::Strategy::sc_oc,
                                            partition::Strategy::mc_tl,
                                            partition::Strategy::hybrid};
  for (const auto strategy : strategies) {
    const std::string tag = partition::to_string(strategy);
    {
      mesh::Mesh m = mesh::make_graded_box_mesh(8, 6, 5, 1.25);
      EulerSolver levels(m);
      levels.initialize_uniform(1.0, {0.1, 0.05, 0.0}, 1.0);
      levels.assign_temporal_levels();
      auto rd = renumber(m, strategy, 4);
      EulerSolver s(rd.mesh);
      s.initialize_uniform(1.0, {0.1, 0.05, 0.0}, 1.0);
      s.assign_temporal_levels();
      const auto iter = s.make_iteration_tasks(rd.domain_of_cell, 4);
      AccessLog log(iter.graph.num_tasks());
      collect_serial(iter.graph, iter.body, log);
      const RaceReport report = check_races(iter.graph, log);
      EXPECT_TRUE(report.clean())
          << "euler renumbered " << tag << ":\n" << report.summary(iter.graph);
    }
    {
      mesh::Mesh m = mesh::make_graded_box_mesh(7, 5, 5, 1.3);
      solver::TransportConfig tc;
      tc.velocity = {1.0, 0.2, 0.0};
      tc.diffusivity = 0.01;
      TransportSolver levels(m, tc);
      levels.initialize_uniform(0.5);
      levels.assign_temporal_levels();
      auto rd = renumber(m, strategy, 4);
      TransportSolver s(rd.mesh, tc);
      s.initialize_uniform(0.5);
      s.assign_temporal_levels();
      const auto iter = s.make_iteration_tasks(rd.domain_of_cell, 4);
      AccessLog log(iter.graph.num_tasks());
      collect_serial(iter.graph, iter.body, log);
      const RaceReport report = check_races(iter.graph, log);
      EXPECT_TRUE(report.clean()) << "transport renumbered " << tag << ":\n"
                                  << report.summary(iter.graph);
    }
  }
}

TEST(VerifySolver, RemovedOrderingEdgeIsFlaggedOnRenumberedMesh) {
  // The mutation suite over the range-recording path: severing a
  // load-bearing edge must surface even though the accesses arrive as
  // compressed ranges.
  mesh::Mesh m = mesh::make_graded_box_mesh(7, 6, 5, 1.3);
  EulerSolver levels(m);
  levels.initialize_uniform(1.0, {0.1, 0.0, 0.0}, 1.0);
  levels.add_pulse({1.0, 1.0, 0.8}, 0.8, 0.2);
  levels.assign_temporal_levels();
  auto rd = renumber(m, partition::Strategy::mc_tl, 4);
  EulerSolver s(rd.mesh);
  s.initialize_uniform(1.0, {0.1, 0.0, 0.0}, 1.0);
  s.add_pulse({1.0, 1.0, 0.8}, 0.8, 0.2);
  s.assign_temporal_levels();
  const auto iter = s.make_iteration_tasks(rd.domain_of_cell, 4);

  std::vector<std::pair<index_t, index_t>> edges =
      dependency_edges(iter.graph);
  Rng rng(2027);
  rng.shuffle(edges);

  int mutations = 0;
  for (const auto& [u, v] : edges) {
    if (mutations >= 6) break;
    const taskgraph::TaskGraph mutated = remove_dependency(iter.graph, u, v);
    if (Reachability(mutated).reachable(u, v)) continue;
    AccessLog log(mutated.num_tasks());
    collect_serial(mutated, iter.body, log);
    const RaceReport report = check_races(mutated, log);
    bool pair_reported = false;
    for (const Conflict& c : report.conflicts)
      pair_reported |= c.first == std::min(u, v) && c.second == std::max(u, v);
    EXPECT_TRUE(pair_reported)
        << "dropping " << u << " -> " << v << " was not flagged on the "
        << "renumbered mesh";
    ++mutations;
  }
  EXPECT_GE(mutations, 6);
}

TEST(VerifySolver, RenumberedEulerBitwiseDeterministicUnderAdversarialSchedules) {
  // The streaming range kernels under hostile schedules: renumbered
  // serial reference vs renumbered task execution must agree bitwise.
  mesh::Mesh m = mesh::make_graded_box_mesh(8, 6, 5, 1.25);
  EulerSolver levels(m);
  levels.initialize_uniform(1.0, {0.1, 0.05, 0.0}, 1.0);
  levels.add_pulse({1.5, 1.0, 0.8}, 0.8, 0.25);
  levels.assign_temporal_levels();
  auto rd = renumber(m, partition::Strategy::mc_tl, 4);
  const std::vector<part_t> d2p = partition::map_domains_to_processes(
      4, 2, partition::DomainMapping::block);

  EulerSolver serial(rd.mesh), tasked(rd.mesh);
  for (EulerSolver* s : {&serial, &tasked}) {
    s->initialize_uniform(1.0, {0.1, 0.05, 0.0}, 1.0);
    s->add_pulse({1.5, 1.0, 0.8}, 0.8, 0.25);
    s->assign_temporal_levels();
  }
  int k = 0;
  for (const Schedule& sched : kSweep) {
    serial.run_iteration();
    const auto iter = tasked.make_iteration_tasks(rd.domain_of_cell, 4);
    runtime::execute(iter.graph, d2p, adversarial_config(sched, 2), iter.body);
    tasked.note_tasks_complete();
    for (index_t c = 0; c < rd.mesh.num_cells(); ++c) {
      const State a = serial.cell_state(c), b = tasked.cell_state(c);
      for (int v = 0; v < solver::kNumVars; ++v)
        ASSERT_EQ(a[static_cast<std::size_t>(v)],
                  b[static_cast<std::size_t>(v)])
            << "schedule " << k << " cell " << c << " var " << v;
    }
    ++k;
  }
}

TEST(VerifySolver, CleanSweepAcrossMeshesAndStrategies) {
  // ≥20 (mesh, strategy, ndomains, solver) combinations, all of which
  // must produce a conflict-free report: the task generator's dependency
  // rules cover every access the kernels actually perform.
  const partition::Strategy strategies[] = {partition::Strategy::sc_oc,
                                            partition::Strategy::mc_tl,
                                            partition::Strategy::hybrid};
  int combos = 0;
  for (const auto strategy : strategies) {
    const std::string tag = partition::to_string(strategy);
    {
      mesh::Mesh m = mesh::make_graded_box_mesh(8, 6, 5, 1.25);
      expect_clean_euler(m, strategy, 4, "euler graded_box(8,6,5) " + tag);
      ++combos;
    }
    {
      mesh::Mesh m = mesh::make_graded_box_mesh(6, 6, 6, 1.35);
      expect_clean_euler(m, strategy, 6, "euler graded_box(6,6,6) " + tag);
      ++combos;
    }
    {
      mesh::Mesh m = mesh::make_lattice_mesh(6, 5, 4);
      expect_clean_euler(m, strategy, 3, "euler lattice(6,5,4) " + tag);
      ++combos;
    }
    for (const char* kind : {"cube", "cylinder", "nozzle"}) {
      mesh::TestMeshSpec spec;
      spec.target_cells = 700;
      spec.seed = 7 + combos;
      mesh::Mesh m =
          mesh::make_test_mesh(mesh::parse_test_mesh_kind(kind), spec);
      expect_clean_euler(m, strategy, 4,
                         std::string("euler ") + kind + " " + tag);
      ++combos;
    }
    {
      mesh::Mesh m = mesh::make_graded_box_mesh(7, 5, 5, 1.3);
      expect_clean_transport(m, strategy, 4,
                             "transport graded_box(7,5,5) " + tag);
      ++combos;
    }
  }
  EXPECT_GE(combos, 20);
}

}  // namespace
}  // namespace tamp::verify
