// Unit tests for the partitioner's internal stages: balance bookkeeping,
// coarsening, initial bisection, FM refinement.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "partition/balance.hpp"
#include "partition/coarsen.hpp"
#include "partition/initial.hpp"
#include "partition/partition.hpp"
#include "partition/refine.hpp"

namespace tamp::partition {
namespace {

TEST(BalanceSpec, TargetsAndAllowances) {
  graph::Builder b(4, 1);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  for (index_t v = 0; v < 4; ++v) b.set_vertex_weight(v, 0, 10);
  const auto g = b.build();
  const BalanceSpec spec(g, 0.5, 0.1);
  EXPECT_EQ(spec.total(0), 40);
  EXPECT_EQ(spec.target(0, 0), 20);
  EXPECT_EQ(spec.target(1, 0), 20);
  // allowed = 20·1.1 + max vwgt(10) = 32.
  EXPECT_EQ(spec.allowed(0, 0), 32);
  EXPECT_TRUE(spec.feasible({20}));
  EXPECT_TRUE(spec.feasible({32}));
  EXPECT_FALSE(spec.feasible({33}));
  EXPECT_FALSE(spec.feasible({7}));  // side 1 gets 33 > 32
}

TEST(BalanceSpec, MoveFeasibility) {
  graph::Builder b(4, 1);
  b.add_edge(0, 1);
  for (index_t v = 0; v < 4; ++v) b.set_vertex_weight(v, 0, 10);
  const auto g = b.build();
  const BalanceSpec spec(g, 0.5, 0.0);
  // allowed = 20 + 10 slack = 30 per side.
  const weight_t w[1] = {10};
  EXPECT_TRUE(spec.move_keeps_feasible({20}, std::span<const weight_t>(w, 1), 0));
  EXPECT_FALSE(spec.move_keeps_feasible({30}, std::span<const weight_t>(w, 1), 0));
}

TEST(BalanceSpec, ViolationMetric) {
  graph::Builder b(2, 1);
  b.add_edge(0, 1);
  b.set_vertex_weight(0, 0, 50);
  b.set_vertex_weight(1, 0, 50);
  const auto g = b.build();
  const BalanceSpec spec(g, 0.5, 0.0);
  EXPECT_DOUBLE_EQ(spec.violation({50}), 0.0);
  EXPECT_GT(spec.violation({100 + 1}), 0.0);  // impossible load, over allowance
}

TEST(BalanceSpec, MultiConstraint) {
  graph::Builder b(4, 2);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  // Constraint 0 weight on vertices 0,1; constraint 1 on vertices 2,3.
  b.set_vertex_weights(0, std::vector<weight_t>{4, 0});
  b.set_vertex_weights(1, std::vector<weight_t>{4, 0});
  b.set_vertex_weights(2, std::vector<weight_t>{0, 4});
  b.set_vertex_weights(3, std::vector<weight_t>{0, 4});
  const auto g = b.build();
  const BalanceSpec spec(g, 0.5, 0.0);
  // Balanced split must mix: {0,2} vs {1,3}.
  EXPECT_TRUE(spec.feasible({4, 4}));
  // All of constraint 0 on one side busts it (allowed = 4 + slack 4 = 8,
  // so 8 is the edge; both constraints at 8/0 violates side 1? target 4,
  // side1 load 0 fine; side0 8 <= 8 OK → still feasible due to slack).
  EXPECT_TRUE(spec.feasible({8, 0}));
  EXPECT_FALSE(spec.feasible({9, 0}));
}

TEST(Coarsen, MatchingIsSymmetricAndComplete) {
  Rng rng(3);
  const auto g = graph::make_grid_graph(8, 8);
  const auto match = heavy_edge_matching(g, rng);
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const index_t u = match[static_cast<std::size_t>(v)];
    ASSERT_NE(u, invalid_index);
    EXPECT_EQ(match[static_cast<std::size_t>(u)], v);  // symmetric (or self)
  }
}

TEST(Coarsen, PrefersHeavyEdges) {
  graph::Builder b(4, 1);
  b.add_edge(0, 1, 100);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 100);
  const auto g = b.build();
  Rng rng(1);
  const auto match = heavy_edge_matching(g, rng);
  EXPECT_EQ(match[0], 1);
  EXPECT_EQ(match[2], 3);
}

TEST(Coarsen, ContractionPreservesTotals) {
  Rng rng(5);
  graph::Builder b(9, 2);
  for (index_t v = 0; v + 1 < 9; ++v) b.add_edge(v, v + 1, v + 1);
  for (index_t v = 0; v < 9; ++v)
    b.set_vertex_weights(v, std::vector<weight_t>{v, 2 * v});
  const auto g = b.build();
  const CoarseLevel level = coarsen_once(g, rng);
  EXPECT_LT(level.graph.num_vertices(), g.num_vertices());
  EXPECT_NO_THROW(level.graph.validate());
  const auto fine_totals = g.total_weights();
  const auto coarse_totals = level.graph.total_weights();
  EXPECT_EQ(fine_totals, coarse_totals);
  // fine→coarse map covers every fine vertex.
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const index_t cv = level.fine_to_coarse[static_cast<std::size_t>(v)];
    EXPECT_GE(cv, 0);
    EXPECT_LT(cv, level.graph.num_vertices());
  }
}

TEST(Coarsen, CutIsPreservedUnderProjection) {
  Rng rng(7);
  const auto g = graph::make_grid_graph(10, 10);
  const CoarseLevel level = coarsen_once(g, rng);
  // Random coarse bisection: its cut must equal the projected fine cut.
  std::vector<part_t> coarse_part(
      static_cast<std::size_t>(level.graph.num_vertices()));
  Rng r2(9);
  for (auto& p : coarse_part) p = static_cast<part_t>(r2.below(2));
  std::vector<part_t> fine_part(static_cast<std::size_t>(g.num_vertices()));
  for (index_t v = 0; v < g.num_vertices(); ++v)
    fine_part[static_cast<std::size_t>(v)] = coarse_part[static_cast<std::size_t>(
        level.fine_to_coarse[static_cast<std::size_t>(v)])];
  EXPECT_EQ(edge_cut(level.graph, coarse_part), edge_cut(g, fine_part));
}

TEST(Initial, ProducesFeasibleBisection) {
  const auto g = graph::make_grid_graph(16, 16);
  const BalanceSpec spec(g, 0.5, 0.05);
  Rng rng(11);
  const auto part = greedy_growing_bisection(g, spec, rng, 8);
  std::vector<weight_t> loads0(1, 0);
  for (index_t v = 0; v < g.num_vertices(); ++v)
    if (part[static_cast<std::size_t>(v)] == 0) loads0[0] += 1;
  EXPECT_TRUE(spec.feasible(loads0));
}

TEST(Initial, HandlesDisconnectedGraph) {
  graph::Builder b(8, 1);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(4, 5);
  b.add_edge(6, 7);
  const auto g = b.build();
  const BalanceSpec spec(g, 0.5, 0.1);
  Rng rng(13);
  const auto part = greedy_growing_bisection(g, spec, rng, 4);
  index_t side0 = 0;
  for (const part_t p : part)
    if (p == 0) ++side0;
  EXPECT_GE(side0, 3);
  EXPECT_LE(side0, 5);
}

TEST(Refine, ImprovesObviousBadCut) {
  // Path graph split as alternating parts has a terrible cut; FM should
  // slash it while keeping balance.
  const auto g = graph::make_grid_graph(16, 1);
  std::vector<part_t> part(16);
  for (int v = 0; v < 16; ++v) part[static_cast<std::size_t>(v)] = v % 2;
  const BalanceSpec spec(g, 0.5, 0.05);
  Rng rng(17);
  const weight_t before = edge_cut(g, part);
  const weight_t after = fm_refine_bisection(g, part, spec, rng, 8);
  EXPECT_LT(after, before);
  EXPECT_EQ(after, edge_cut(g, part));
  EXPECT_LE(after, 3);
  // Balance retained.
  index_t side0 = 0;
  for (const part_t p : part)
    if (p == 0) ++side0;
  EXPECT_GE(side0, 7);
  EXPECT_LE(side0, 9);
}

TEST(Refine, RestoresFeasibilityWhenUnbalanced) {
  const auto g = graph::make_grid_graph(8, 8);
  std::vector<part_t> part(64, 0);  // everything on side 0: infeasible
  const BalanceSpec spec(g, 0.5, 0.05);
  Rng rng(19);
  fm_refine_bisection(g, part, spec, rng, 8);
  std::vector<weight_t> loads0(1, 0);
  for (const part_t p : part)
    if (p == 0) loads0[0] += 1;
  EXPECT_TRUE(spec.feasible(loads0));
}

TEST(KwayRefine, OnlyImprovesCutUnderAllowances) {
  const auto g = graph::make_grid_graph(12, 12);
  // Checkerboard 4-way assignment: horrible cut.
  std::vector<part_t> part(144);
  for (index_t v = 0; v < 144; ++v)
    part[static_cast<std::size_t>(v)] = static_cast<part_t>((v / 2 + v / 24) % 4);
  const weight_t before = edge_cut(g, part);
  std::vector<weight_t> allowed(4, 144 / 4 + 144 / 20 + 1);
  Rng rng(23);
  const weight_t after = kway_refine(g, part, 4, allowed, rng, 6);
  EXPECT_LT(after, before);
  const auto loads = part_loads(g, part, 4);
  for (part_t p = 0; p < 4; ++p)
    EXPECT_LE(loads[static_cast<std::size_t>(p)], allowed[static_cast<std::size_t>(p)]);
}

}  // namespace
}  // namespace tamp::partition
