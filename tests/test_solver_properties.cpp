// Property sweeps over the adaptive FV solver: conservation, stability
// and serial/task equivalence must hold across mesh gradings, level
// caps, CFL numbers and decompositions.
#include <gtest/gtest.h>

#include <cmath>

#include "mesh/generators.hpp"
#include "partition/strategy.hpp"
#include "solver/euler.hpp"

namespace tamp::solver {
namespace {

struct Case {
  index_t n;            // grid resolution per axis
  double grading;       // tensor-product grading ratio
  level_t max_levels;   // level cap
  double cfl;
  double pulse;         // pulse relative amplitude
};

std::string case_name(const testing::TestParamInfo<Case>& pinfo) {
  const Case& c = pinfo.param;
  std::string s = "n" + std::to_string(c.n) + "_g" +
                  std::to_string(static_cast<int>(c.grading * 100)) + "_L" +
                  std::to_string(c.max_levels) + "_cfl" +
                  std::to_string(static_cast<int>(c.cfl * 100)) + "_p" +
                  std::to_string(static_cast<int>(c.pulse * 100));
  return s;
}

class SolverProperty : public testing::TestWithParam<Case> {
protected:
  static EulerSolver make(mesh::Mesh& m, const Case& c) {
    SolverConfig cfg;
    cfg.cfl = c.cfl;
    cfg.max_levels = c.max_levels;
    EulerSolver s(m, cfg);
    s.initialize_uniform(1.0, {0.05, -0.02, 0.01}, 1.0);
    s.add_pulse({1.2, 1.2, 1.2}, 1.0, c.pulse);
    s.assign_temporal_levels();
    return s;
  }
};

TEST_P(SolverProperty, ConservesMassAndEnergyEveryIteration) {
  const Case& c = GetParam();
  mesh::Mesh m = mesh::make_graded_box_mesh(c.n, c.n, c.n, c.grading);
  EulerSolver s = make(m, c);
  const State start = s.conserved_totals();
  for (int it = 0; it < 4; ++it) {
    s.run_iteration();
    const State now = s.conserved_totals();
    ASSERT_NEAR(now[0], start[0], 1e-9 * std::abs(start[0]))
        << "mass, iter " << it;
    ASSERT_NEAR(now[4], start[4], 1e-9 * std::abs(start[4]))
        << "energy, iter " << it;
    ASSERT_TRUE(s.state_is_finite()) << "iter " << it;
  }
}

TEST_P(SolverProperty, StateStaysPhysical) {
  const Case& c = GetParam();
  mesh::Mesh m = mesh::make_graded_box_mesh(c.n, c.n, c.n, c.grading);
  EulerSolver s = make(m, c);
  for (int it = 0; it < 4; ++it) s.run_iteration();
  for (index_t cell = 0; cell < m.num_cells(); ++cell) {
    ASSERT_GT(s.cell_density(cell), 0.0);
    ASSERT_GT(s.cell_pressure(cell), 0.0);
  }
}

TEST_P(SolverProperty, AllCellsReachIterationTime) {
  // After one iteration the global clock advanced by 2^τmax·Δt0 — the
  // scheme's defining property (paper §II-A).
  const Case& c = GetParam();
  mesh::Mesh m = mesh::make_graded_box_mesh(c.n, c.n, c.n, c.grading);
  EulerSolver s = make(m, c);
  const double expected =
      s.dt0() * std::exp2(static_cast<double>(m.max_level()));
  s.run_iteration();
  EXPECT_NEAR(s.time(), expected, 1e-12 * expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverProperty,
    testing::Values(Case{8, 1.15, 3, 0.2, 0.2},   // mild grading
                    Case{8, 1.30, 4, 0.2, 0.2},   // strong grading
                    Case{10, 1.20, 2, 0.2, 0.3},  // level cap binding
                    Case{10, 1.20, 4, 0.1, 0.3},  // conservative CFL
                    Case{12, 1.10, 4, 0.2, 0.1},  // weak pulse
                    Case{6, 1.40, 4, 0.15, 0.4},  // violent case
                    Case{8, 1.00, 4, 0.4, 0.3}),  // uniform (single level)
    case_name);

// Serial vs task-parallel equivalence across strategies and domain
// counts: the DAG ordering must reproduce the serial physics exactly.
struct EquivCase {
  partition::Strategy strategy;
  part_t ndomains;
  part_t nprocesses;
  int workers;
};

class SolverEquivalence : public testing::TestWithParam<EquivCase> {};

TEST_P(SolverEquivalence, TaskRunMatchesSerialBitwiseish) {
  const EquivCase& c = GetParam();
  mesh::Mesh m1 = mesh::make_graded_box_mesh(7, 8, 6, 1.22);
  mesh::Mesh m2 = mesh::make_graded_box_mesh(7, 8, 6, 1.22);
  SolverConfig cfg;
  EulerSolver serial(m1, cfg), tasked(m2, cfg);
  for (EulerSolver* s : {&serial, &tasked}) {
    s->initialize_uniform(1.0, {0.1, 0.0, -0.05}, 1.0);
    s->add_pulse({1.0, 1.5, 0.7}, 0.9, 0.25);
    s->assign_temporal_levels();
  }
  partition::StrategyOptions sopts;
  sopts.strategy = c.strategy;
  sopts.ndomains = c.ndomains;
  const auto dd = partition::decompose(m2, sopts);

  for (int it = 0; it < 2; ++it) serial.run_iteration();
  runtime::RuntimeConfig rc;
  rc.num_processes = c.nprocesses;
  rc.workers_per_process = c.workers;
  const auto d2p = partition::map_domains_to_processes(
      c.ndomains, c.nprocesses, partition::DomainMapping::block);
  for (int it = 0; it < 2; ++it)
    tasked.run_iteration_tasks(dd.domain_of_cell, c.ndomains, d2p, rc);

  double worst = 0;
  for (index_t cell = 0; cell < m1.num_cells(); ++cell)
    worst = std::max(worst, std::abs(tasked.cell_density(cell) -
                                     serial.cell_density(cell)));
  EXPECT_LT(worst, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverEquivalence,
    testing::Values(EquivCase{partition::Strategy::sc_oc, 2, 1, 2},
                    EquivCase{partition::Strategy::sc_oc, 6, 3, 2},
                    EquivCase{partition::Strategy::mc_tl, 4, 2, 2},
                    EquivCase{partition::Strategy::mc_tl, 8, 4, 1},
                    EquivCase{partition::Strategy::sc_cells, 5, 1, 4},
                    EquivCase{partition::Strategy::hybrid, 8, 2, 2}),
    [](const auto& pinfo) {
      return std::string(partition::to_string(pinfo.param.strategy)) + "_d" +
             std::to_string(pinfo.param.ndomains) + "_p" +
             std::to_string(pinfo.param.nprocesses) + "_w" +
             std::to_string(pinfo.param.workers);
    });

TEST(SolverMisc, PulseOutsideDomainIsNoOp) {
  mesh::Mesh m = mesh::make_lattice_mesh(4, 4, 4);
  EulerSolver s(m);
  s.initialize_uniform(1.0, {0, 0, 0}, 1.0);
  s.add_pulse({1000, 1000, 1000}, 0.5, 0.3);  // exp(-d²/r²) ~ 0
  for (index_t c = 0; c < m.num_cells(); ++c)
    EXPECT_NEAR(s.cell_density(c), 1.0, 1e-12);
}

TEST(SolverMisc, DtScalesInverselyWithSoundSpeed) {
  mesh::Mesh m1 = mesh::make_lattice_mesh(4, 4, 4);
  mesh::Mesh m2 = mesh::make_lattice_mesh(4, 4, 4);
  EulerSolver cold(m1), hot(m2);
  cold.initialize_uniform(1.0, {0, 0, 0}, 1.0);
  hot.initialize_uniform(1.0, {0, 0, 0}, 4.0);  // 2× sound speed
  cold.assign_temporal_levels();
  hot.assign_temporal_levels();
  EXPECT_NEAR(cold.dt0() / hot.dt0(), 2.0, 1e-9);
}

TEST(SolverMisc, HeunAndEulerAgreeAtZerothOrder) {
  // Same initial state, one step: both must stay close for a weak pulse
  // (sanity that the Heun path shares kernels with the incremental one).
  mesh::Mesh m1 = mesh::make_lattice_mesh(6, 6, 6);
  mesh::Mesh m2 = mesh::make_lattice_mesh(6, 6, 6);
  EulerSolver a(m1), b(m2);
  for (EulerSolver* s : {&a, &b}) {
    s->initialize_uniform(1.0, {0, 0, 0}, 1.0);
    s->add_pulse({3, 3, 3}, 1.5, 0.01);
    s->assign_temporal_levels();
  }
  a.run_iteration();
  b.run_iteration_heun();
  for (index_t c = 0; c < m1.num_cells(); ++c)
    EXPECT_NEAR(a.cell_density(c), b.cell_density(c), 5e-5);
}

}  // namespace
}  // namespace tamp::solver
