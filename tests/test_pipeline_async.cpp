// The asynchronous iteration pipeline's correctness bar (DESIGN.md
// "Asynchronous pipeline"): overlapped mode is *bitwise identical* to
// sync mode at every thread count, under adversarial schedules, for both
// solvers — and failures (injected at every stage boundary) drain the
// pipeline, rethrow exactly once, and leak no tasks.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <thread>

#include "core/pipeline.hpp"
#include "partition/cache.hpp"
#include "solver/euler.hpp"
#include "solver/transport.hpp"
#include "support/thread_pool.hpp"

namespace tamp::core {
namespace {

constexpr index_t kCells = 4000;
constexpr int kIterations = 4;

mesh::Mesh test_mesh() {
  mesh::TestMeshSpec spec;
  spec.target_cells = kCells;
  return mesh::make_test_mesh(mesh::TestMeshKind::cylinder, spec);
}

std::uint64_t hash_doubles(std::uint64_t h, const double* vals,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &vals[i], sizeof bits);
    h ^= bits;
    h *= 1099511628211ULL;
  }
  return h;
}

IterationPipelineConfig base_config(PipelineMode mode, int workers) {
  IterationPipelineConfig cfg;
  cfg.mode = mode;
  cfg.num_iterations = kIterations;
  cfg.ndomains = 8;
  cfg.nprocesses = 2;
  cfg.workers_per_process = workers;
  cfg.threads = workers;
  cfg.seed = 7;
  return cfg;
}

/// One full Euler pipeline run: returns the per-iteration state hash
/// (bit patterns of every cell's conserved state, in cell order) plus
/// the report — the whole observable output of the run.
struct EulerRun {
  std::vector<std::uint64_t> state_hash;  ///< one per iteration
  std::vector<index_t> cells_changed;
  std::vector<index_t> migrated;
  PipelineRunReport report;
};

EulerRun run_euler(const IterationPipelineConfig& cfg) {
  mesh::Mesh m = test_mesh();
  solver::EulerSolver solver(m);
  solver.initialize_uniform(1.0, {0.2, 0.1, 0.0}, 1.0);
  solver.add_pulse(m.cell_centroid(0), 0.5, 0.3);
  solver.assign_temporal_levels();

  EulerRun run;
  SolverHooks hooks = euler_pipeline_hooks(solver);
  hooks.observer = [&run, &solver, &m](const IterationSnapshot&,
                                       const runtime::ExecutionReport&) {
    std::uint64_t h = 1469598103934665603ULL;
    for (index_t c = 0; c < m.num_cells(); ++c) {
      const solver::State s = solver.cell_state(c);
      h = hash_doubles(h, s.data(), s.size());
    }
    run.state_hash.push_back(h);
  };
  run.report = run_iteration_pipeline(m, cfg, hooks);
  for (const PipelineIterationStats& it : run.report.iterations) {
    run.cells_changed.push_back(it.cells_changed);
    run.migrated.push_back(it.migrated_cells);
  }
  return run;
}

TEST(PipelineAsync, EulerBitwiseIdenticalAcrossModesAndThreadCounts) {
  const EulerRun ref = run_euler(base_config(PipelineMode::sync, 1));
  ASSERT_EQ(ref.state_hash.size(), static_cast<std::size_t>(kIterations));
  for (const PipelineMode mode : {PipelineMode::sync, PipelineMode::overlap}) {
    for (const int workers : {1, 2, 4, 8}) {
      const EulerRun run = run_euler(base_config(mode, workers));
      EXPECT_EQ(run.state_hash, ref.state_hash)
          << to_string(mode) << " workers=" << workers;
      EXPECT_EQ(run.cells_changed, ref.cells_changed);
      EXPECT_EQ(run.migrated, ref.migrated);
    }
  }
}

TEST(PipelineAsync, EulerBitwiseUnderAdversarialSchedules) {
  const EulerRun ref = run_euler(base_config(PipelineMode::sync, 1));
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    IterationPipelineConfig cfg = base_config(PipelineMode::overlap, 4);
    cfg.adversarial.enabled = true;
    cfg.adversarial.seed = seed;
    const EulerRun run = run_euler(cfg);
    EXPECT_EQ(run.state_hash, ref.state_hash) << "adversarial seed " << seed;
  }
}

TEST(PipelineAsync, TransportBitwiseIdenticalAcrossModes) {
  const auto run_transport = [](const IterationPipelineConfig& cfg) {
    mesh::Mesh m = test_mesh();
    solver::TransportSolver solver(m);
    solver.initialize_uniform(0.0);
    solver.add_blob(m.cell_centroid(0), 0.5, 1.0);
    solver.assign_temporal_levels();
    std::vector<std::uint64_t> hashes;
    SolverHooks hooks = transport_pipeline_hooks(solver);
    hooks.observer = [&](const IterationSnapshot&,
                         const runtime::ExecutionReport&) {
      std::uint64_t h = 1469598103934665603ULL;
      for (index_t c = 0; c < m.num_cells(); ++c) {
        const double v = solver.value(c);
        h = hash_doubles(h, &v, 1);
      }
      hashes.push_back(h);
    };
    run_iteration_pipeline(m, cfg, hooks);
    return hashes;
  };
  const auto ref = run_transport(base_config(PipelineMode::sync, 1));
  ASSERT_EQ(ref.size(), static_cast<std::size_t>(kIterations));
  for (const int workers : {1, 4})
    EXPECT_EQ(run_transport(base_config(PipelineMode::overlap, workers)), ref)
        << "workers=" << workers;
}

TEST(PipelineAsync, SnapshotMutationIsDetected) {
  for (const PipelineMode mode : {PipelineMode::sync, PipelineMode::overlap}) {
    mesh::Mesh m = test_mesh();
    solver::EulerSolver solver(m);
    solver.initialize_uniform(1.0, {0.2, 0.1, 0.0}, 1.0);
    solver.assign_temporal_levels();
    SolverHooks hooks = euler_pipeline_hooks(solver);
    // A consumer that holds onto a mutable reference and scribbles on the
    // published snapshot: the fingerprint re-check at solve exit catches it.
    hooks.observer = [](const IterationSnapshot& snap,
                        const runtime::ExecutionReport&) {
      auto& levels = const_cast<IterationSnapshot&>(snap).levels;
      levels[0] = static_cast<level_t>(levels[0] + 1);
    };
    EXPECT_THROW(
        run_iteration_pipeline(m, base_config(mode, 2), hooks),
        invariant_error)
        << to_string(mode);
  }
}

TEST(PipelineAsync, FaultInjectionAtEveryStageBoundaryDrainsAndRethrowsOnce) {
  using Stage = PipelineFault::Stage;
  for (const PipelineMode mode : {PipelineMode::sync, PipelineMode::overlap}) {
    for (const Stage stage :
         {Stage::evolve, Stage::repartition, Stage::taskgraph, Stage::solve}) {
      for (const int iter : {0, 1, kIterations - 1}) {
        mesh::Mesh m = test_mesh();
        solver::EulerSolver solver(m);
        solver.initialize_uniform(1.0, {0.2, 0.1, 0.0}, 1.0);
        solver.assign_temporal_levels();
        IterationPipelineConfig cfg = base_config(mode, 4);
        cfg.fault.stage = stage;
        cfg.fault.iteration = iter;

        // Lifetime balance of the shared pool: every task ever queued has
        // been run. A worker publishes task completion before bumping its
        // executed counter, so poll briefly for the counters to settle.
        ThreadPool* pool = ThreadPool::shared(4);
        const auto balanced = [pool] {
          const ThreadPool::Stats s = pool->stats();
          return s.submitted + s.background_submitted == s.executed;
        };
        const auto settle = [&balanced] {
          for (int spin = 0; spin < 2000 && !balanced(); ++spin)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          return balanced();
        };
        ASSERT_TRUE(settle()) << "pool not quiescent before the run";
        try {
          run_iteration_pipeline(m, cfg, euler_pipeline_hooks(solver));
          FAIL() << "fault " << to_string(stage) << ":" << iter << " ("
                 << to_string(mode) << ") did not surface";
        } catch (const runtime_failure& e) {
          const std::string expect = std::string("injected pipeline fault at ") +
                                     to_string(stage) + ":" +
                                     std::to_string(iter);
          EXPECT_EQ(std::string(e.what()), expect) << to_string(mode);
        }
        // Leak check: nothing is still sitting in a deque or the
        // background FIFO after the failure drained the pipeline.
        EXPECT_TRUE(settle())
            << to_string(stage) << ":" << iter << " " << to_string(mode);
      }
    }
  }
}

TEST(PipelineAsync, SolveFailureWinsOverConcurrentPrep) {
  // The solve of iteration 1 fails while iteration 2's prep is in
  // flight: the pipeline cancels the prep, drains, and the caller sees
  // the *solve* failure — exactly once, never the prep's state.
  mesh::Mesh m = test_mesh();
  solver::EulerSolver solver(m);
  solver.initialize_uniform(1.0, {0.2, 0.1, 0.0}, 1.0);
  solver.assign_temporal_levels();
  IterationPipelineConfig cfg = base_config(PipelineMode::overlap, 4);
  cfg.fault.stage = PipelineFault::Stage::solve;
  cfg.fault.iteration = 1;
  try {
    run_iteration_pipeline(m, cfg, euler_pipeline_hooks(solver));
    FAIL() << "solve fault did not surface";
  } catch (const runtime_failure& e) {
    EXPECT_STREQ(e.what(), "injected pipeline fault at solve:1");
  }
  // The pipeline is reusable after a failure: a clean run still matches
  // the reference bitwise (no poisoned pool / leaked planning state).
  const EulerRun ref = run_euler(base_config(PipelineMode::sync, 1));
  const EulerRun again = run_euler(base_config(PipelineMode::overlap, 4));
  EXPECT_EQ(again.state_hash, ref.state_hash);
}

TEST(PipelineAsync, OverlapReportInvariants) {
  const EulerRun sync = run_euler(base_config(PipelineMode::sync, 4));
  const EulerRun over = run_euler(base_config(PipelineMode::overlap, 4));
  const sim::StageOverlapReport& s = sync.report.overlap;
  const sim::StageOverlapReport& o = over.report.overlap;

  EXPECT_FALSE(s.overlapped);
  EXPECT_TRUE(o.overlapped);
  EXPECT_EQ(s.iterations, kIterations);
  EXPECT_EQ(o.iterations, kIterations);
  // Sync interleaves prep strictly after solve: nothing can be hidden.
  EXPECT_DOUBLE_EQ(s.hidden_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.overlap_efficiency(), 0.0);
  for (const sim::StageOverlapReport* r : {&s, &o}) {
    EXPECT_GE(r->hidden_seconds, 0.0);
    EXPECT_LE(r->hidden_seconds, r->hideable_prep_seconds + 1e-9);
    EXPECT_LE(r->hideable_prep_seconds, r->prep_seconds + 1e-9);
    EXPECT_GE(r->overlap_efficiency(), 0.0);
    EXPECT_LE(r->overlap_efficiency(), 1.0 + 1e-9);
    EXPECT_GE(r->wall_seconds, 0.0);
    EXPECT_GE(r->exposed_seconds(), -1e-9);
  }
  for (const EulerRun* run : {&sync, &over})
    for (const PipelineIterationStats& it : run->report.iterations) {
      EXPECT_GE(it.prep_end, it.prep_start);
      EXPECT_GE(it.solve_end, it.solve_start);
      // Depth-1 handoff: solve i never starts before its prep published.
      EXPECT_GE(it.solve_start, it.prep_end - 1e-9) << it.iteration;
    }
}

TEST(PipelineAsync, PreparedGraphExecutionMatchesDirectExecution) {
  // runtime::execute(graph, prepared, ...) is the pipeline's hot path;
  // it must be observationally identical to the one-shot overload.
  const auto run_once = [](bool prepared_path) {
    mesh::Mesh m = test_mesh();
    solver::EulerSolver solver(m);
    solver.initialize_uniform(1.0, {0.2, 0.1, 0.0}, 1.0);
    solver.add_pulse(m.cell_centroid(0), 0.5, 0.3);
    solver.assign_temporal_levels();
    partition::StrategyOptions sopts;
    sopts.ndomains = 8;
    const auto dd = partition::decompose(m, sopts);
    const auto d2p = partition::map_domains_to_processes(
        dd.ndomains, 2, partition::DomainMapping::block);
    const auto iter = solver.make_iteration_tasks(dd.domain_of_cell,
                                                  dd.ndomains);
    runtime::RuntimeConfig rc;
    rc.num_processes = 2;
    rc.workers_per_process = 2;
    if (prepared_path) {
      const runtime::PreparedGraph prep =
          runtime::prepare_execution(iter.graph, d2p, 2);
      runtime::execute(iter.graph, prep, rc, iter.body);
    } else {
      runtime::execute(iter.graph, d2p, rc, iter.body);
    }
    solver.note_tasks_complete();
    std::uint64_t h = 1469598103934665603ULL;
    for (index_t c = 0; c < m.num_cells(); ++c) {
      const solver::State s = solver.cell_state(c);
      h = hash_doubles(h, s.data(), s.size());
    }
    return h;
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

TEST(PipelineAsync, ModeAndFaultParsing) {
  EXPECT_EQ(parse_pipeline_mode("sync"), PipelineMode::sync);
  EXPECT_EQ(parse_pipeline_mode("overlap"), PipelineMode::overlap);
  EXPECT_THROW(parse_pipeline_mode("async"), precondition_error);
  EXPECT_STREQ(to_string(PipelineMode::overlap), "overlap");

  const PipelineFault f = parse_pipeline_fault("repartition:3");
  EXPECT_EQ(f.stage, PipelineFault::Stage::repartition);
  EXPECT_EQ(f.iteration, 3);
  EXPECT_THROW(parse_pipeline_fault("repartition"), precondition_error);
  EXPECT_THROW(parse_pipeline_fault("repartition:-1"), precondition_error);
  EXPECT_THROW(parse_pipeline_fault("warp:1"), precondition_error);
  EXPECT_THROW(parse_pipeline_fault(":2"), precondition_error);

  ASSERT_EQ(setenv("TAMP_PIPELINE_FAULT", "solve:2", 1), 0);
  const PipelineFault env = pipeline_fault_from_env();
  EXPECT_EQ(env.stage, PipelineFault::Stage::solve);
  EXPECT_EQ(env.iteration, 2);
  ASSERT_EQ(unsetenv("TAMP_PIPELINE_FAULT"), 0);
  EXPECT_EQ(pipeline_fault_from_env().stage, PipelineFault::Stage::none);
}

TEST(PipelineAsync, RejectsBadConfig) {
  mesh::Mesh m = test_mesh();
  solver::EulerSolver solver(m);
  solver.initialize_uniform(1.0, {0.2, 0.1, 0.0}, 1.0);
  solver.assign_temporal_levels();
  const SolverHooks hooks = euler_pipeline_hooks(solver);

  IterationPipelineConfig cfg = base_config(PipelineMode::sync, 2);
  cfg.num_iterations = 0;
  EXPECT_THROW(run_iteration_pipeline(m, cfg, hooks), precondition_error);
  cfg = base_config(PipelineMode::sync, 2);
  cfg.drift = 1.5;
  EXPECT_THROW(run_iteration_pipeline(m, cfg, hooks), precondition_error);
  cfg = base_config(PipelineMode::sync, 2);
  cfg.ndomains = 1;
  cfg.nprocesses = 2;
  EXPECT_THROW(run_iteration_pipeline(m, cfg, hooks), precondition_error);
  cfg = base_config(PipelineMode::sync, 2);
  EXPECT_THROW(run_iteration_pipeline(m, cfg, SolverHooks{}),
               precondition_error);
}

/// A run that also captures each consumed snapshot's fingerprint — the
/// seal over levels, assignment, graph and classes.
struct SealedRun {
  EulerRun run;
  std::vector<std::uint64_t> fingerprints;
};

SealedRun run_euler_sealed(IterationPipelineConfig cfg) {
  SealedRun out;
  mesh::Mesh m = test_mesh();
  solver::EulerSolver solver(m);
  solver.initialize_uniform(1.0, {0.2, 0.1, 0.0}, 1.0);
  solver.add_pulse(m.cell_centroid(0), 0.5, 0.3);
  solver.assign_temporal_levels();
  SolverHooks hooks = euler_pipeline_hooks(solver);
  hooks.observer = [&out, &solver, &m](const IterationSnapshot& snap,
                                       const runtime::ExecutionReport&) {
    out.fingerprints.push_back(snap.fingerprint);
    std::uint64_t h = 1469598103934665603ULL;
    for (index_t c = 0; c < m.num_cells(); ++c) {
      const solver::State s = solver.cell_state(c);
      h = hash_doubles(h, s.data(), s.size());
    }
    out.run.state_hash.push_back(h);
  };
  out.run.report = run_iteration_pipeline(m, cfg, hooks);
  return out;
}

TEST(PipelineAsync, PatchPolicyModesAreBitwiseIdentical) {
  // off = rebuild every graph; auto = diff-patch; oracle = patch AND
  // prove each patch against a rebuild. All three must publish identical
  // snapshots (fingerprints) and identical physics (state hashes).
  IterationPipelineConfig cfg = base_config(PipelineMode::sync, 2);
  cfg.drift = 0.02;
  cfg.patch = PatchPolicy::off;
  const SealedRun off = run_euler_sealed(cfg);
  cfg.patch = PatchPolicy::automatic;
  const SealedRun aut = run_euler_sealed(cfg);
  cfg.patch = PatchPolicy::oracle;
  const SealedRun ora = run_euler_sealed(cfg);

  EXPECT_EQ(off.fingerprints, aut.fingerprints);
  EXPECT_EQ(off.fingerprints, ora.fingerprints);
  EXPECT_EQ(off.run.state_hash, aut.run.state_hash);
  EXPECT_EQ(off.run.state_hash, ora.run.state_hash);

  bool any_patched = false;
  for (const PipelineIterationStats& it : aut.run.report.iterations)
    any_patched |= it.graph_patched;
  EXPECT_TRUE(any_patched);
  for (const PipelineIterationStats& it : off.run.report.iterations)
    EXPECT_FALSE(it.graph_patched);
}

TEST(PipelineAsync, ZeroDriftReusesDecompositionVerbatim) {
  IterationPipelineConfig cfg = base_config(PipelineMode::sync, 2);
  cfg.drift = 0.0;
  const SealedRun r = run_euler_sealed(cfg);
  ASSERT_EQ(r.run.report.iterations.size(),
            static_cast<std::size_t>(kIterations));
  for (std::size_t i = 1; i < r.run.report.iterations.size(); ++i) {
    const PipelineIterationStats& it = r.run.report.iterations[i];
    EXPECT_TRUE(it.decomposition_reused) << "iteration " << i;
    EXPECT_EQ(it.dirty_fraction, 0.0) << "iteration " << i;
    EXPECT_EQ(it.migrated_cells, 0) << "iteration " << i;
    EXPECT_TRUE(it.graph_patched) << "iteration " << i;  // noop patch
  }
}

TEST(PipelineAsync, SharedCacheServesRepeatPipelinesBitwiseIdentically) {
  partition::DecompositionCache cache;
  IterationPipelineConfig cfg = base_config(PipelineMode::sync, 2);
  cfg.drift = 0.02;
  cfg.cache = &cache;
  const SealedRun first = run_euler_sealed(cfg);
  EXPECT_EQ(cache.stats().misses, 1u);  // snapshot 0's decomposition

  const SealedRun second = run_euler_sealed(cfg);
  EXPECT_GE(cache.stats().hits, 1u);  // same mesh content → warm start

  cfg.cache = nullptr;
  const SealedRun cold = run_euler_sealed(cfg);
  EXPECT_EQ(first.fingerprints, second.fingerprints);
  EXPECT_EQ(first.fingerprints, cold.fingerprints);
  EXPECT_EQ(first.run.state_hash, second.run.state_hash);
  EXPECT_EQ(first.run.state_hash, cold.run.state_hash);
}

}  // namespace
}  // namespace tamp::core
