// Property sweeps over task generation: for many (mesh, level layout,
// domain count) combinations, structural invariants of Algorithm 1 hold.
#include <gtest/gtest.h>

#include <tuple>

#include "mesh/generators.hpp"
#include "mesh/levels.hpp"
#include "partition/strategy.hpp"
#include "taskgraph/generate.hpp"
#include "taskgraph/scheme.hpp"

namespace tamp::taskgraph {
namespace {

struct Case {
  mesh::TestMeshKind kind;
  part_t ndomains;
  std::uint64_t seed;
};

class TaskGraphProperty : public testing::TestWithParam<Case> {
protected:
  void run(partition::Strategy strategy) {
    const Case& c = GetParam();
    mesh::TestMeshSpec spec;
    spec.target_cells = 4000;
    spec.seed = c.seed;
    const mesh::Mesh m = mesh::make_test_mesh(c.kind, spec);

    partition::StrategyOptions sopts;
    sopts.strategy = strategy;
    sopts.ndomains = c.ndomains;
    sopts.partitioner.seed = c.seed;
    const auto dd = partition::decompose(m, sopts);

    const TaskGraph g =
        generate_task_graph(m, dd.domain_of_cell, c.ndomains);
    verify(m, g, c.ndomains);
  }

  static void verify(const mesh::Mesh& m, const TaskGraph& g,
                     part_t ndomains) {
    // Acyclic.
    ASSERT_NO_THROW(g.topological_order());

    const TemporalScheme scheme(static_cast<level_t>(m.max_level() + 1));

    // Every task well-formed.
    for (index_t t = 0; t < g.num_tasks(); ++t) {
      const Task& task = g.task(t);
      ASSERT_GE(task.domain, 0);
      ASSERT_LT(task.domain, ndomains);
      ASSERT_GE(task.subiteration, 0);
      ASSERT_LT(task.subiteration, scheme.num_subiterations());
      ASSERT_LE(task.level, scheme.top_level(task.subiteration));
      ASSERT_TRUE(TemporalScheme::is_active(task.level, task.subiteration));
      ASSERT_GT(task.num_objects, 0);
      ASSERT_GT(task.cost, 0.0);
      // Dependencies point strictly backwards in generation order.
      for (const index_t p : g.predecessors(t)) ASSERT_LT(p, t);
    }

    // Total processed object activations match the temporal scheme.
    weight_t cell_updates = 0, face_updates = 0;
    for (index_t t = 0; t < g.num_tasks(); ++t) {
      const Task& task = g.task(t);
      (task.type == ObjectType::cell ? cell_updates : face_updates) +=
          task.num_objects;
    }
    weight_t expected_cells = 0;
    for (index_t c = 0; c < m.num_cells(); ++c)
      expected_cells += scheme.updates_per_iteration(m.cell_level(c));
    weight_t expected_faces = 0;
    for (index_t f = 0; f < m.num_faces(); ++f)
      expected_faces += scheme.updates_per_iteration(m.face_level(f));
    EXPECT_EQ(cell_updates, expected_cells);
    EXPECT_EQ(face_updates, expected_faces);
  }
};

TEST_P(TaskGraphProperty, InvariantsUnderScOc) {
  run(partition::Strategy::sc_oc);
}

TEST_P(TaskGraphProperty, InvariantsUnderMcTl) {
  run(partition::Strategy::mc_tl);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TaskGraphProperty,
    testing::Values(Case{mesh::TestMeshKind::cylinder, 2, 1},
                    Case{mesh::TestMeshKind::cylinder, 8, 2},
                    Case{mesh::TestMeshKind::cube, 4, 3},
                    Case{mesh::TestMeshKind::cube, 12, 4},
                    Case{mesh::TestMeshKind::nozzle, 6, 5},
                    Case{mesh::TestMeshKind::nozzle, 16, 6}),
    [](const auto& tp_info) {
      return std::string(mesh::to_string(tp_info.param.kind)) + "_d" +
             std::to_string(tp_info.param.ndomains);
    });

TEST(TaskGraphInvariance, TotalWorkIndependentOfPartitioning) {
  // Paper §VI: "the total amount of work is independent of partitioning
  // strategy". Cell work is identical; face work may differ marginally
  // only through face levels — which depend on the mesh, not the
  // partition — so totals must match exactly.
  mesh::TestMeshSpec spec;
  spec.target_cells = 4000;
  const mesh::Mesh m = mesh::make_cylinder_mesh(spec);
  simtime_t works[2];
  int i = 0;
  for (const auto strategy :
       {partition::Strategy::sc_oc, partition::Strategy::mc_tl}) {
    partition::StrategyOptions sopts;
    sopts.strategy = strategy;
    sopts.ndomains = 8;
    const auto dd = partition::decompose(m, sopts);
    works[i++] =
        generate_task_graph(m, dd.domain_of_cell, 8).total_work();
  }
  EXPECT_NEAR(works[0], works[1], 1e-9 * works[0]);
}

TEST(TaskGraphGranularity, McTlProducesMoreTasks) {
  // Paper Fig 8 / §VI: MC_TL domains contain every level, so each phase
  // emits tasks from every domain — finer granularity than SC_OC.
  mesh::TestMeshSpec spec;
  spec.target_cells = 6000;
  const mesh::Mesh m = mesh::make_cylinder_mesh(spec);
  index_t counts[2];
  int i = 0;
  for (const auto strategy :
       {partition::Strategy::sc_oc, partition::Strategy::mc_tl}) {
    partition::StrategyOptions sopts;
    sopts.strategy = strategy;
    sopts.ndomains = 16;
    const auto dd = partition::decompose(m, sopts);
    counts[i++] =
        generate_task_graph(m, dd.domain_of_cell, 16).num_tasks();
  }
  EXPECT_GT(counts[1], counts[0]);
}

TEST(TaskGraphScaling, MoreDomainsMoreTasks) {
  mesh::TestMeshSpec spec;
  spec.target_cells = 4000;
  const mesh::Mesh m = mesh::make_cube_mesh(spec);
  index_t prev = 0;
  for (const part_t nd : {2, 8, 32}) {
    partition::StrategyOptions sopts;
    sopts.strategy = partition::Strategy::mc_tl;
    sopts.ndomains = nd;
    const auto dd = partition::decompose(m, sopts);
    const index_t n = generate_task_graph(m, dd.domain_of_cell, nd).num_tasks();
    EXPECT_GT(n, prev);
    prev = n;
  }
}

}  // namespace
}  // namespace tamp::taskgraph
