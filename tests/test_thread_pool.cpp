// Work-stealing pool: fork/join semantics, helping wait, exception
// propagation, deterministic parallel_for chunking, stress.
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace tamp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> ran{0};
  std::vector<ThreadPool::TaskHandle> handles;
  for (int i = 0; i < 100; ++i)
    handles.push_back(pool.submit([&ran] { ++ran; }));
  for (const auto& h : handles) pool.wait(h);
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolRunsWorkInWait) {
  // num_threads == 1 spawns no workers: submitted tasks execute inside
  // wait() on the calling thread.
  ThreadPool pool(1);
  bool ran = false;
  auto h = pool.submit([&ran] { ran = true; });
  pool.wait(h);
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, WaitIsIdempotent) {
  ThreadPool pool(2);
  auto h = pool.submit([] {});
  pool.wait(h);
  pool.wait(h);  // already done: returns immediately
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(4);
  auto h = pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait(h), std::runtime_error);
}

TEST(ThreadPool, PropagatesParallelForException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 1000, 10,
                                 [](std::int64_t b, std::int64_t) {
                                   if (b == 500)
                                     throw std::runtime_error("chunk boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> ran{0};
  pool.parallel_for(0, 100, 10,
                    [&ran](std::int64_t b, std::int64_t e) {
                      ran += static_cast<int>(e - b);
                    });
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10'000);
  pool.parallel_for(0, 10'000, 64, [&hits](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunkBoundariesDependOnlyOnGrain) {
  // The determinism contract: chunk c covers
  // [begin + c*grain, min(end, begin + (c+1)*grain)) at any thread count.
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<char>> seen(7);
    pool.parallel_for(10, 75, 10, [&](std::int64_t b, std::int64_t e) {
      const auto chunk = (b - 10) / 10;
      EXPECT_EQ(b, 10 + chunk * 10);
      EXPECT_EQ(e, std::min<std::int64_t>(75, 10 + (chunk + 1) * 10));
      seen[static_cast<std::size_t>(chunk)] = 1;
    });
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  }
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, 10, [](std::int64_t, std::int64_t) { FAIL(); });
  parallel_for(nullptr, 5, 5, 10,
               [](std::int64_t, std::int64_t) { FAIL(); });
}

TEST(ThreadPool, FreeParallelForInlinesWithoutPool) {
  std::int64_t sum = 0;  // no atomics needed: runs on this thread
  parallel_for(nullptr, 0, 100, 7, [&sum](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950);
}

// Nested fork/join: parallel recursive sum over a range. Exercises the
// helping wait() — a blocked parent must execute children instead of
// deadlocking the (bounded) pool.
std::int64_t fork_sum(ThreadPool& pool, std::int64_t lo, std::int64_t hi) {
  if (hi - lo <= 64) {
    std::int64_t s = 0;
    for (std::int64_t i = lo; i < hi; ++i) s += i;
    return s;
  }
  const std::int64_t mid = lo + (hi - lo) / 2;
  std::int64_t left = 0;
  auto h = pool.submit([&] { left = fork_sum(pool, lo, mid); });
  const std::int64_t right = fork_sum(pool, mid, hi);
  pool.wait(h);
  return left + right;
}

TEST(ThreadPool, NestedForkJoinComputesCorrectSum) {
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    EXPECT_EQ(fork_sum(pool, 0, 100'000), 4'999'950'000LL) << threads;
  }
}

TEST(ThreadPool, StressManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 20; ++round) {
    std::vector<ThreadPool::TaskHandle> handles;
    handles.reserve(200);
    for (int i = 0; i < 200; ++i)
      handles.push_back(pool.submit([&total, i] { total += i; }));
    for (const auto& h : handles) pool.wait(h);
  }
  EXPECT_EQ(total.load(), 20LL * 199 * 200 / 2);
}

TEST(ThreadPool, SharedReturnsNullForSerial) {
  EXPECT_EQ(ThreadPool::shared(0), nullptr);
  EXPECT_EQ(ThreadPool::shared(1), nullptr);
}

TEST(ThreadPool, SharedReusesAndResizes) {
  ThreadPool* a = ThreadPool::shared(2);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->num_threads(), 2);
  EXPECT_EQ(ThreadPool::shared(2), a);
  ThreadPool* b = ThreadPool::shared(3);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->num_threads(), 3);
}

TEST(ThreadPool, ResolveNumThreads) {
  EXPECT_EQ(resolve_num_threads(4), 4);
  EXPECT_EQ(resolve_num_threads(1), 1);

  ::unsetenv("TAMP_PARTITION_THREADS");
  EXPECT_EQ(resolve_num_threads(0), 1);
  ::setenv("TAMP_PARTITION_THREADS", "6", 1);
  EXPECT_EQ(resolve_num_threads(0), 6);
  EXPECT_EQ(resolve_num_threads(2), 2);  // explicit request beats the env
  ::setenv("TAMP_PARTITION_THREADS", "garbage", 1);
  EXPECT_EQ(resolve_num_threads(0), 1);
  ::setenv("TAMP_PARTITION_THREADS", "0", 1);
  EXPECT_EQ(resolve_num_threads(0), 1);
  ::unsetenv("TAMP_PARTITION_THREADS");
}

TEST(ThreadPool, BackgroundTasksRunAndJoin) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<ThreadPool::TaskHandle> handles;
  for (int i = 0; i < 16; ++i)
    handles.push_back(pool.submit_background([&ran] { ++ran; }));
  for (const auto& h : handles) pool.wait(h);
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, BackgroundTaskRunsInWaitOnSingleThreadPool) {
  // No workers: wait() must pick the background task up itself.
  ThreadPool pool(1);
  bool ran = false;
  const auto h = pool.submit_background([&ran] { ran = true; });
  pool.wait(h);
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, BackgroundExceptionPropagatesOnWait) {
  ThreadPool pool(2);
  const auto h = pool.submit_background(
      [] { throw std::runtime_error("background boom"); });
  EXPECT_THROW(pool.wait(h), std::runtime_error);
}

TEST(ThreadPool, BackgroundDoesNotStarveForkJoinWork) {
  // A long-running background task must not block the fork/join class:
  // with 2 threads, one worker can sit in the background task while
  // submit()/wait() traffic keeps flowing on the other.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  const auto bg = pool.submit_background([&release] {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  std::int64_t total = 0;
  for (int i = 0; i < 100; ++i) {
    const auto h = pool.submit([&total, i] { total += i; });
    pool.wait(h);
  }
  release.store(true, std::memory_order_release);
  pool.wait(bg);
  EXPECT_EQ(total, 99 * 100 / 2);
}

TEST(ScratchArena, AllocationsAreAlignedAndDisjoint) {
  ScratchArena arena;
  double* d = arena.alloc<double>(100);
  std::int32_t* i = arena.alloc<std::int32_t>(50);
  ASSERT_NE(d, nullptr);
  ASSERT_NE(i, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(i) % alignof(std::int32_t), 0u);
  // Scribble: ranges must not overlap.
  for (int k = 0; k < 100; ++k) d[k] = 1.5;
  for (int k = 0; k < 50; ++k) i[k] = -7;
  for (int k = 0; k < 100; ++k) EXPECT_EQ(d[k], 1.5);
}

TEST(ScratchArena, ResetReusesMemoryWithoutGrowth) {
  ScratchArena arena;
  void* first = arena.raw(1000, 8);
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  for (int round = 0; round < 100; ++round) {
    arena.reset();
    void* p = arena.raw(1000, 8);
    EXPECT_EQ(p, first);  // same block, rewound
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ScratchArena, GrowthKeepsExistingBlocksStable) {
  ScratchArena arena;
  std::uint64_t* small = arena.alloc<std::uint64_t>(8);
  small[0] = 0xDEADBEEFULL;
  // Force a new block well past the 64 KiB floor.
  std::uint64_t* big = arena.alloc<std::uint64_t>(1 << 16);
  big[0] = 1;
  EXPECT_EQ(small[0], 0xDEADBEEFULL);  // old block untouched by growth
  EXPECT_GE(arena.bytes_reserved(), (1u << 16) * sizeof(std::uint64_t));
}

TEST(ScratchArena, ThreadScratchArenaIsStablePerThread) {
  ScratchArena& a = thread_scratch_arena();
  ScratchArena& b = thread_scratch_arena();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPoolStats, FreshPoolReportsNoWork) {
  // Workers may already have done an empty initial scan (steal attempts
  // are schedule-dependent), but no task can have been submitted or run.
  ThreadPool pool(2);
  const ThreadPool::Stats s = pool.stats();
  EXPECT_EQ(s.submitted, 0u);
  EXPECT_EQ(s.executed, 0u);
  EXPECT_EQ(s.steal_successes, 0u);
  EXPECT_EQ(s.max_queue_depth, 0u);
  EXPECT_EQ(s.steal_success_rate(), 0.0);
}

#if defined(TAMP_TRACING_ENABLED)

TEST(ThreadPoolStats, CountsSubmissionsAndExecutions) {
  ThreadPool pool(4);
  std::vector<ThreadPool::TaskHandle> handles;
  for (int i = 0; i < 64; ++i) handles.push_back(pool.submit([] {}));
  for (const auto& h : handles) pool.wait(h);
  const ThreadPool::Stats s = pool.stats();
  EXPECT_EQ(s.submitted, 64u);
  EXPECT_EQ(s.executed, 64u);
  // Every executed task was either popped locally or stolen.
  EXPECT_EQ(s.local_pops + s.steal_successes, s.executed);
  EXPECT_LE(s.steal_successes, s.steal_attempts);
  EXPECT_GE(s.max_queue_depth, 1u);
  EXPECT_GE(s.steal_success_rate(), 0.0);
  EXPECT_LE(s.steal_success_rate(), 1.0);
}

TEST(ThreadPoolStats, EveryExecutionIsAPopOrASteal) {
  // Whether the helping client drains its own deque (local pops) or the
  // workers win the race (steals from slot 0) is schedule-dependent; the
  // accounting identity is not.
  ThreadPool pool(3);
  std::vector<ThreadPool::TaskHandle> handles;
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i)
    handles.push_back(pool.submit([&ran] { ++ran; }));
  for (const auto& h : handles) pool.wait(h);
  EXPECT_EQ(ran.load(), 32);
  const ThreadPool::Stats s = pool.stats();
  EXPECT_EQ(s.executed, 32u);
  EXPECT_EQ(s.local_pops + s.steal_successes, 32u);
}

TEST(ThreadPoolStats, FlightRecorderCapturesPoolEvents) {
  auto rec = std::make_shared<obs::FlightRecorder>(4, 1024);
  ThreadPool::Stats stats;
  {
    ThreadPool pool(4);
    pool.set_flight_recorder(rec);
    std::vector<ThreadPool::TaskHandle> handles;
    for (int i = 0; i < 16; ++i) handles.push_back(pool.submit([] {}));
    for (const auto& h : handles) pool.wait(h);
    stats = pool.stats();
  }  // destructor joins the workers: rings are quiescent below
  const obs::FlightSummary s = obs::summarize(*rec);
  EXPECT_EQ(s.count(obs::FlightEventKind::task_begin), 16u);
  EXPECT_EQ(s.count(obs::FlightEventKind::task_end), 16u);
  EXPECT_EQ(s.count(obs::FlightEventKind::steal_success),
            stats.steal_successes);
}

TEST(ThreadPoolStats, RecorderMustCoverEverySlot) {
  ThreadPool pool(4);
  auto small = std::make_shared<obs::FlightRecorder>(2, 64);
  EXPECT_THROW(pool.set_flight_recorder(small), precondition_error);
}

TEST(ThreadPoolStats, PublishMetricsExportsTotals) {
  ThreadPool pool(2);
  std::vector<ThreadPool::TaskHandle> handles;
  for (int i = 0; i < 8; ++i) handles.push_back(pool.submit([] {}));
  for (const auto& h : handles) pool.wait(h);
  pool.publish_metrics("test_pool.");
  EXPECT_EQ(obs::counter("test_pool.submitted").value(), 8);
  EXPECT_EQ(obs::counter("test_pool.executed").value(), 8);
  EXPECT_GE(obs::gauge("test_pool.queue.max_depth").value(), 1.0);
}

#endif  // TAMP_TRACING_ENABLED

}  // namespace
}  // namespace tamp
