// Work-stealing pool: fork/join semantics, helping wait, exception
// propagation, deterministic parallel_for chunking, stress.
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tamp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> ran{0};
  std::vector<ThreadPool::TaskHandle> handles;
  for (int i = 0; i < 100; ++i)
    handles.push_back(pool.submit([&ran] { ++ran; }));
  for (const auto& h : handles) pool.wait(h);
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolRunsWorkInWait) {
  // num_threads == 1 spawns no workers: submitted tasks execute inside
  // wait() on the calling thread.
  ThreadPool pool(1);
  bool ran = false;
  auto h = pool.submit([&ran] { ran = true; });
  pool.wait(h);
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, WaitIsIdempotent) {
  ThreadPool pool(2);
  auto h = pool.submit([] {});
  pool.wait(h);
  pool.wait(h);  // already done: returns immediately
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(4);
  auto h = pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait(h), std::runtime_error);
}

TEST(ThreadPool, PropagatesParallelForException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 1000, 10,
                                 [](std::int64_t b, std::int64_t) {
                                   if (b == 500)
                                     throw std::runtime_error("chunk boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> ran{0};
  pool.parallel_for(0, 100, 10,
                    [&ran](std::int64_t b, std::int64_t e) {
                      ran += static_cast<int>(e - b);
                    });
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10'000);
  pool.parallel_for(0, 10'000, 64, [&hits](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunkBoundariesDependOnlyOnGrain) {
  // The determinism contract: chunk c covers
  // [begin + c*grain, min(end, begin + (c+1)*grain)) at any thread count.
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<char>> seen(7);
    pool.parallel_for(10, 75, 10, [&](std::int64_t b, std::int64_t e) {
      const auto chunk = (b - 10) / 10;
      EXPECT_EQ(b, 10 + chunk * 10);
      EXPECT_EQ(e, std::min<std::int64_t>(75, 10 + (chunk + 1) * 10));
      seen[static_cast<std::size_t>(chunk)] = 1;
    });
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  }
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, 10, [](std::int64_t, std::int64_t) { FAIL(); });
  parallel_for(nullptr, 5, 5, 10,
               [](std::int64_t, std::int64_t) { FAIL(); });
}

TEST(ThreadPool, FreeParallelForInlinesWithoutPool) {
  std::int64_t sum = 0;  // no atomics needed: runs on this thread
  parallel_for(nullptr, 0, 100, 7, [&sum](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950);
}

// Nested fork/join: parallel recursive sum over a range. Exercises the
// helping wait() — a blocked parent must execute children instead of
// deadlocking the (bounded) pool.
std::int64_t fork_sum(ThreadPool& pool, std::int64_t lo, std::int64_t hi) {
  if (hi - lo <= 64) {
    std::int64_t s = 0;
    for (std::int64_t i = lo; i < hi; ++i) s += i;
    return s;
  }
  const std::int64_t mid = lo + (hi - lo) / 2;
  std::int64_t left = 0;
  auto h = pool.submit([&] { left = fork_sum(pool, lo, mid); });
  const std::int64_t right = fork_sum(pool, mid, hi);
  pool.wait(h);
  return left + right;
}

TEST(ThreadPool, NestedForkJoinComputesCorrectSum) {
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    EXPECT_EQ(fork_sum(pool, 0, 100'000), 4'999'950'000LL) << threads;
  }
}

TEST(ThreadPool, StressManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 20; ++round) {
    std::vector<ThreadPool::TaskHandle> handles;
    handles.reserve(200);
    for (int i = 0; i < 200; ++i)
      handles.push_back(pool.submit([&total, i] { total += i; }));
    for (const auto& h : handles) pool.wait(h);
  }
  EXPECT_EQ(total.load(), 20LL * 199 * 200 / 2);
}

TEST(ThreadPool, SharedReturnsNullForSerial) {
  EXPECT_EQ(ThreadPool::shared(0), nullptr);
  EXPECT_EQ(ThreadPool::shared(1), nullptr);
}

TEST(ThreadPool, SharedReusesAndResizes) {
  ThreadPool* a = ThreadPool::shared(2);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->num_threads(), 2);
  EXPECT_EQ(ThreadPool::shared(2), a);
  ThreadPool* b = ThreadPool::shared(3);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->num_threads(), 3);
}

TEST(ThreadPool, ResolveNumThreads) {
  EXPECT_EQ(resolve_num_threads(4), 4);
  EXPECT_EQ(resolve_num_threads(1), 1);

  ::unsetenv("TAMP_PARTITION_THREADS");
  EXPECT_EQ(resolve_num_threads(0), 1);
  ::setenv("TAMP_PARTITION_THREADS", "6", 1);
  EXPECT_EQ(resolve_num_threads(0), 6);
  EXPECT_EQ(resolve_num_threads(2), 2);  // explicit request beats the env
  ::setenv("TAMP_PARTITION_THREADS", "garbage", 1);
  EXPECT_EQ(resolve_num_threads(0), 1);
  ::setenv("TAMP_PARTITION_THREADS", "0", 1);
  EXPECT_EQ(resolve_num_threads(0), 1);
  ::unsetenv("TAMP_PARTITION_THREADS");
}

}  // namespace
}  // namespace tamp
