// Tests of the schedule doctor: realized critical path, idle blame
// classification (hand-built 2-process graphs with known schedules), the
// shares-sum-to-idle_fraction accounting identity on random DAGs, and
// the paper's SC_OC-vs-MC_TL starvation signature on a real mesh.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "mesh/generators.hpp"
#include "partition/strategy.hpp"
#include "sim/doctor.hpp"
#include "taskgraph/generate.hpp"

namespace tamp::sim {
namespace {

using taskgraph::Task;
using taskgraph::TaskGraph;

Task make_task(index_t subiteration, part_t domain, simtime_t cost,
               level_t level = 0) {
  Task t;
  t.subiteration = subiteration;
  t.domain = domain;
  t.cost = cost;
  t.level = level;
  return t;
}

SimResult run(const TaskGraph& g, part_t nproc, int workers,
              const std::vector<part_t>& d2p) {
  SimOptions opts;
  opts.cluster.num_processes = nproc;
  opts.cluster.workers_per_process = workers;
  return simulate(g, d2p, opts);
}

// --- realized critical path -------------------------------------------------

TEST(CriticalPath, DependencyChain) {
  // A → B → C on one process, one worker: the whole schedule is the chain.
  std::vector<Task> tasks{make_task(0, 0, 2), make_task(0, 0, 3),
                          make_task(1, 0, 1)};
  const TaskGraph g(std::move(tasks), {{}, {0}, {1}});
  const SimResult r = run(g, 1, 1, {0});
  ASSERT_DOUBLE_EQ(r.makespan, 6.0);

  const CriticalPathReport cp = realized_critical_path(g, r);
  ASSERT_EQ(cp.steps.size(), 3u);
  EXPECT_EQ(cp.steps[0].task, 0);
  EXPECT_EQ(cp.steps[0].gate, StartGate::source);
  EXPECT_EQ(cp.steps[1].task, 1);
  EXPECT_EQ(cp.steps[1].gate, StartGate::dependency);
  EXPECT_EQ(cp.steps[1].gated_by, 0);
  EXPECT_EQ(cp.steps[2].task, 2);
  EXPECT_EQ(cp.steps[2].gate, StartGate::dependency);
  EXPECT_DOUBLE_EQ(cp.task_time, r.makespan);
  EXPECT_DOUBLE_EQ(cp.static_lower_bound, 6.0);
  ASSERT_EQ(cp.by_subiteration.size(), 2u);
  EXPECT_DOUBLE_EQ(cp.by_subiteration[0], 5.0);
  EXPECT_DOUBLE_EQ(cp.by_subiteration[1], 1.0);
  EXPECT_DOUBLE_EQ(cp.gated_by_dependency, 4.0);  // B and C
  EXPECT_EQ(cp.cross_process_handoffs, 0);
}

TEST(CriticalPath, WorkerGate) {
  // Two independent tasks on one worker: the second one's start was
  // gated by the worker freeing, not by any dependency.
  std::vector<Task> tasks{make_task(0, 0, 2), make_task(0, 0, 3)};
  const TaskGraph g(std::move(tasks), {{}, {}});
  const SimResult r = run(g, 1, 1, {0});
  ASSERT_DOUBLE_EQ(r.makespan, 5.0);

  const CriticalPathReport cp = realized_critical_path(g, r);
  ASSERT_EQ(cp.steps.size(), 2u);
  EXPECT_EQ(cp.steps[0].gate, StartGate::source);
  EXPECT_EQ(cp.steps[1].gate, StartGate::worker);
  EXPECT_EQ(cp.steps[1].gated_by, cp.steps[0].task);
  EXPECT_DOUBLE_EQ(cp.gated_by_worker,
                   cp.steps[1].duration);
  EXPECT_DOUBLE_EQ(cp.task_time, 5.0);
}

TEST(CriticalPath, CrossProcessHandoff) {
  // p1's long task B feeds p0's C: the chain hops processes once.
  std::vector<Task> tasks{make_task(0, 0, 1), make_task(0, 1, 3),
                          make_task(1, 0, 1)};
  const TaskGraph g(std::move(tasks), {{}, {}, {0, 1}});
  const SimResult r = run(g, 2, 1, {0, 1});
  const CriticalPathReport cp = realized_critical_path(g, r);
  ASSERT_EQ(cp.steps.size(), 2u);  // B then C; A is off-chain
  EXPECT_EQ(cp.steps[0].task, 1);
  EXPECT_EQ(cp.steps[1].task, 2);
  EXPECT_EQ(cp.steps[1].gate, StartGate::dependency);
  EXPECT_EQ(cp.cross_process_handoffs, 1);
}

// --- idle blame -------------------------------------------------------------

TEST(IdleBlame, DependencyWait) {
  // p0: A [0,1], then C blocked on remote B (p1, [0,3]) → C [3,4].
  // p0's gap [1,3) is dependency-wait (it still has s0 work coming);
  // p1's gap [3,4) is tail imbalance (it is done, waiting for makespan).
  std::vector<Task> tasks{make_task(0, 0, 1), make_task(0, 1, 3),
                          make_task(0, 0, 1)};
  const TaskGraph g(std::move(tasks), {{}, {}, {1}});
  const SimResult r = run(g, 2, 1, {0, 1});
  ASSERT_DOUBLE_EQ(r.makespan, 4.0);

  const IdleBlameReport blame = idle_blame(g, r);
  EXPECT_EQ(blame.num_subiterations, 1);
  EXPECT_DOUBLE_EQ(blame.total(0, IdleCause::dependency_wait), 2.0);
  EXPECT_DOUBLE_EQ(blame.total(0, IdleCause::starvation), 0.0);
  EXPECT_DOUBLE_EQ(blame.total(0, IdleCause::tail_imbalance), 0.0);
  EXPECT_DOUBLE_EQ(blame.total(1, IdleCause::tail_imbalance), 1.0);
  EXPECT_DOUBLE_EQ(blame.total(1, IdleCause::dependency_wait), 0.0);
}

TEST(IdleBlame, StarvationInMiddleWindow) {
  // Three subiterations; p1 has nothing at all in s1 — the paper's
  // level-imbalance signature. Its mid-run silence is starvation, not
  // tail: only idle inside the *last* window after a process's final
  // task counts as tail imbalance.
  std::vector<Task> tasks{
      make_task(0, 0, 1), make_task(0, 1, 1),  // s0: A(p0), B(p1)
      make_task(1, 0, 3),                       // s1: C(p0) ← A
      make_task(2, 0, 1), make_task(2, 1, 1),  // s2: D(p0)←C, E(p1)←C
  };
  const TaskGraph g(std::move(tasks), {{}, {}, {0}, {2}, {2}});
  const SimResult r = run(g, 2, 1, {0, 1});
  ASSERT_DOUBLE_EQ(r.makespan, 5.0);

  const IdleBlameReport blame = idle_blame(g, r);
  ASSERT_EQ(blame.num_subiterations, 3);
  // Windows: s0 [0,1), s1 [1,4), s2 [4,5).
  EXPECT_DOUBLE_EQ(blame.window_end[0], 1.0);
  EXPECT_DOUBLE_EQ(blame.window_end[1], 4.0);
  EXPECT_DOUBLE_EQ(blame.window_end[2], 5.0);
  EXPECT_DOUBLE_EQ(blame.at(1, 1, IdleCause::starvation), 3.0);
  EXPECT_DOUBLE_EQ(blame.total(1, IdleCause::dependency_wait), 0.0);
  EXPECT_DOUBLE_EQ(blame.total(1, IdleCause::tail_imbalance), 0.0);
  EXPECT_DOUBLE_EQ(blame.total(0, IdleCause::starvation), 0.0);
  EXPECT_NEAR(blame.share(1, IdleCause::starvation), r.idle_fraction(1),
              1e-12);
}

TEST(IdleBlame, TailImbalance) {
  // Single subiteration, p1 finishes early: pure tail.
  std::vector<Task> tasks{make_task(0, 0, 5), make_task(0, 1, 2)};
  const TaskGraph g(std::move(tasks), {{}, {}});
  const SimResult r = run(g, 2, 1, {0, 1});
  const IdleBlameReport blame = idle_blame(g, r);
  EXPECT_DOUBLE_EQ(blame.total(1, IdleCause::tail_imbalance), 3.0);
  EXPECT_DOUBLE_EQ(blame.total(1, IdleCause::dependency_wait), 0.0);
  EXPECT_DOUBLE_EQ(blame.total(1, IdleCause::starvation), 0.0);
  EXPECT_DOUBLE_EQ(blame.total(0, IdleCause::tail_imbalance), 0.0);
}

TEST(IdleBlame, SharesSumToIdleFractionOnRandomGraphs) {
  // Accounting identity: for every process the three blame shares sum
  // exactly to idle_fraction(p) — all idle worker-time is attributed.
  std::mt19937 rng(7);
  for (int round = 0; round < 20; ++round) {
    const index_t n = 5 + static_cast<index_t>(rng() % 40);
    const part_t nproc = 2 + static_cast<part_t>(rng() % 3);
    const int workers = 1 + static_cast<int>(rng() % 3);
    std::vector<Task> tasks;
    std::vector<std::vector<index_t>> deps(static_cast<std::size_t>(n));
    index_t sub = 0;
    for (index_t t = 0; t < n; ++t) {
      if (rng() % 4 == 0) ++sub;
      tasks.push_back(make_task(sub, static_cast<part_t>(rng() % nproc),
                                1 + static_cast<simtime_t>(rng() % 9)));
      for (index_t p = 0; p < t; ++p)
        if (rng() % 5 == 0) deps[static_cast<std::size_t>(t)].push_back(p);
    }
    std::vector<part_t> d2p(static_cast<std::size_t>(nproc));
    for (part_t p = 0; p < nproc; ++p) d2p[static_cast<std::size_t>(p)] = p;
    const TaskGraph g(std::move(tasks), deps);
    const SimResult r = run(g, nproc, workers, d2p);
    const IdleBlameReport blame = idle_blame(g, r);
    for (part_t p = 0; p < nproc; ++p) {
      const double sum = blame.share(p, IdleCause::dependency_wait) +
                         blame.share(p, IdleCause::starvation) +
                         blame.share(p, IdleCause::tail_imbalance);
      EXPECT_NEAR(sum, r.idle_fraction(p), 1e-9)
          << "round " << round << " process " << p;
    }
  }
}

// --- full report plumbing ---------------------------------------------------

TEST(Doctor, CsvBreakdownIsComplete) {
  std::vector<Task> tasks{make_task(0, 0, 1), make_task(0, 1, 3),
                          make_task(1, 0, 1)};
  const TaskGraph g(std::move(tasks), {{}, {}, {0, 1}});
  const SimResult r = run(g, 2, 1, {0, 1});
  const DoctorReport doc = diagnose(g, r);

  const std::string csv = doctor_blame_csv(doc);
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "process,subiteration,dependency_wait,starvation,tail_imbalance,"
            "idle_total,window_capacity");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4u);  // 2 processes × 2 subiterations
}

TEST(Doctor, PrintedReportNamesTheVerdict) {
  std::vector<Task> tasks{make_task(0, 0, 5), make_task(0, 1, 2)};
  const TaskGraph g(std::move(tasks), {{}, {}});
  const SimResult r = run(g, 2, 1, {0, 1});
  const DoctorReport doc = diagnose(g, r);
  std::ostringstream os;
  print_doctor_report(os, g, doc);
  EXPECT_NE(os.str().find("diagnosis:"), std::string::npos);
  EXPECT_NE(os.str().find("realized critical path"), std::string::npos);
}

// --- the paper's signature on a real mesh -----------------------------------

TEST(Doctor, ScOcStarvesWhereMcTlDoesNot) {
  // §IV/Fig 7: the single-constraint cost-only partition (SC_OC) leaves
  // whole processes without work during low-level subiterations; the
  // multi-criteria per-level partition (MC_TL) does not. The doctor must
  // see that as a strictly higher starvation blame share.
  mesh::TestMeshSpec spec;
  spec.target_cells = 6000;
  const mesh::Mesh m = mesh::make_test_mesh(mesh::TestMeshKind::cube, spec);

  auto starvation_share = [&](const char* strategy) {
    partition::StrategyOptions sopts;
    sopts.strategy = partition::parse_strategy(strategy);
    sopts.ndomains = 16;
    const auto dd = partition::decompose(m, sopts);
    const auto graph = taskgraph::generate_task_graph(
        m, dd.domain_of_cell, dd.ndomains, {});
    const auto d2p = partition::map_domains_to_processes(
        dd.ndomains, 4, partition::DomainMapping::block);
    SimOptions opts;
    opts.cluster.num_processes = 4;
    opts.cluster.workers_per_process = 4;
    const SimResult r = simulate(graph, d2p, opts);
    return idle_blame(graph, r).overall_share(IdleCause::starvation);
  };

  const double sc_oc = starvation_share("sc_oc");
  const double mc_tl = starvation_share("mc_tl");
  EXPECT_GT(sc_oc, mc_tl);
}

}  // namespace
}  // namespace tamp::sim
