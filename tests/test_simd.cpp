// SIMD dispatch layer and kernel-equivalence harness: every runnable
// lane tier must reproduce the scalar oracle within the documented ULP
// bound on randomized states, conserve at subiteration boundaries, run
// race-free under adversarial schedules, and handle every tail length
// around the padded stride. Plus unit coverage of the tamp::simd
// support functions themselves. See DESIGN.md "SIMD kernel contract".
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "mesh/generators.hpp"
#include "partition/reorder.hpp"
#include "partition/strategy.hpp"
#include "solver/euler.hpp"
#include "solver/transport.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "verify/access.hpp"
#include "verify/graph_edit.hpp"
#include "verify/verifier.hpp"

namespace tamp {
namespace {

using solver::EulerSolver;
using solver::State;
using solver::TransportSolver;

/// Contractual bound for SIMD-vs-scalar agreement. The shipped kernels
/// are lanewise-exact transcriptions, so any drift at all usually means
/// a transcription bug; the bound leaves room only for the documented
/// divergences (none today on the physics path).
constexpr std::uint64_t kMaxUlp = 4;

simd::Request request_for(simd::Level level) {
  switch (level) {
    case simd::Level::scalar:
      return simd::Request::scalar;
    case simd::Level::sse2:
      return simd::Request::sse2;
    case simd::Level::avx2:
      return simd::Request::avx2;
  }
  return simd::Request::scalar;
}

struct Decomposition {
  std::vector<part_t> domain_of_cell;
  part_t ndomains = 0;
  std::vector<part_t> d2p;
};

Decomposition decompose(const mesh::Mesh& m, part_t ndomains, part_t nproc) {
  partition::StrategyOptions sopts;
  sopts.strategy = partition::Strategy::mc_tl;
  sopts.ndomains = ndomains;
  const auto dd = partition::decompose(m, sopts);
  return {dd.domain_of_cell, dd.ndomains,
          partition::map_domains_to_processes(dd.ndomains, nproc,
                                              partition::DomainMapping::block)};
}

/// Randomized-but-physical Euler state: uniform flow plus several
/// random pulses. Identical across solvers built from the same seed.
void random_euler_state(EulerSolver& s, const mesh::Mesh& m,
                        std::uint64_t seed) {
  Rng rng(seed);
  s.initialize_uniform(1.0,
                       {rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
                        rng.uniform(-0.2, 0.2)},
                       1.0);
  mesh::Vec3 lo = m.cell_centroid(0), hi = lo;
  for (index_t c = 0; c < m.num_cells(); ++c) {
    const mesh::Vec3 p = m.cell_centroid(c);
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
  }
  for (int k = 0; k < 4; ++k) {
    const mesh::Vec3 center{rng.uniform(lo.x, hi.x), rng.uniform(lo.y, hi.y),
                            rng.uniform(lo.z, hi.z)};
    s.add_pulse(center, std::max(0.15 * distance(lo, hi), 1e-3),
                rng.uniform(0.05, 0.3));
  }
  s.assign_temporal_levels();
}

runtime::RuntimeConfig serial_config(part_t nproc) {
  runtime::RuntimeConfig rc;
  rc.num_processes = nproc;
  rc.workers_per_process = 1;
  return rc;
}

// --- support-layer units -----------------------------------------------------

TEST(SimdSupport, ParseRequestRoundTrips) {
  EXPECT_EQ(simd::parse_request(""), simd::Request::inherit);
  EXPECT_EQ(simd::parse_request("auto"), simd::Request::auto_);
  EXPECT_EQ(simd::parse_request("scalar"), simd::Request::scalar);
  EXPECT_EQ(simd::parse_request("sse2"), simd::Request::sse2);
  EXPECT_EQ(simd::parse_request("avx2"), simd::Request::avx2);
  EXPECT_THROW((void)simd::parse_request("avx512"), precondition_error);
  EXPECT_THROW((void)simd::parse_request("SCALAR"), precondition_error);
}

TEST(SimdSupport, LanesMatchTiers) {
  EXPECT_EQ(simd::lanes(simd::Level::scalar), 1);
  EXPECT_EQ(simd::lanes(simd::Level::sse2), 2);
  EXPECT_EQ(simd::lanes(simd::Level::avx2), 4);
}

TEST(SimdSupport, RunnableLevelsStartScalarAndResolveIsRunnable) {
  const auto levels = simd::runnable_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::Level::scalar);
  for (const simd::Level level : levels) {
    EXPECT_TRUE(simd::level_runnable(level));
    // A concrete runnable request resolves to exactly itself.
    EXPECT_EQ(simd::resolve(request_for(level)), level);
  }
  // Scalar is always honoured; auto resolves to something runnable.
  EXPECT_EQ(simd::resolve(simd::Request::scalar), simd::Level::scalar);
  EXPECT_TRUE(simd::level_runnable(simd::resolve(simd::Request::auto_)));
  // An un-runnable concrete request clamps downward, never up.
  if (!simd::level_runnable(simd::Level::avx2)) {
    EXPECT_NE(simd::resolve(simd::Request::avx2), simd::Level::avx2);
  }
}

TEST(SimdSupport, DefaultRequestOverridesEnvAndResets) {
  simd::set_default_request(simd::Request::scalar);
  EXPECT_EQ(simd::default_request(), simd::Request::scalar);
  EXPECT_EQ(simd::resolve(simd::Request::inherit), simd::Level::scalar);
  // inherit resets the override; the default falls back to TAMP_SIMD.
  simd::set_default_request(simd::Request::inherit);
  EXPECT_EQ(simd::default_request(), simd::env_request());
}

TEST(SimdSupport, UlpDistanceIsAMetricOnDoubles) {
  EXPECT_EQ(simd::ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(simd::ulp_distance(0.0, -0.0), 0u);
  const double next = std::nextafter(1.0, 2.0);
  EXPECT_EQ(simd::ulp_distance(1.0, next), 1u);
  EXPECT_EQ(simd::ulp_distance(next, 1.0), 1u);
  EXPECT_EQ(simd::ulp_distance(-1.0, std::nextafter(-1.0, -2.0)), 1u);
  // Crossing zero counts the representable doubles in between.
  EXPECT_GT(simd::ulp_distance(-1e-300, 1e-300), 2u);
  EXPECT_EQ(simd::ulp_distance(std::nan(""), 1.0),
            std::numeric_limits<std::uint64_t>::max());
}

// --- dispatch-level agreement on random states -------------------------------

TEST(SimdEquivalence, EulerLevelsAgreeWithinUlpBoundOnRandomStates) {
  // One solver per runnable level on identical locality-renumbered
  // meshes and identical random states; three task iterations each.
  // Every SIMD tier must match the scalar tier within kMaxUlp on every
  // conserved variable of every cell.
  mesh::Mesh base = mesh::make_graded_box_mesh(8, 6, 5, 1.25);
  {
    EulerSolver tmp(base);
    random_euler_state(tmp, base, 42);
  }
  const auto dd0 = decompose(base, 4, 2);

  const auto levels = simd::runnable_levels();
  std::vector<std::vector<State>> results;
  for (const simd::Level level : levels) {
    auto rd = partition::reorder_for_locality(base, dd0.domain_of_cell,
                                              dd0.ndomains);
    solver::SolverConfig cfg;
    cfg.simd = request_for(level);
    EulerSolver s(rd.mesh, cfg);
    ASSERT_EQ(s.simd_level(), level);
    random_euler_state(s, rd.mesh, 42);
    for (int it = 0; it < 3; ++it)
      s.run_iteration_tasks(rd.domain_of_cell, dd0.ndomains, dd0.d2p,
                            serial_config(2));
    ASSERT_TRUE(s.state_is_finite()) << simd::to_string(level);
    std::vector<State> out;
    for (index_t c = 0; c < rd.mesh.num_cells(); ++c)
      out.push_back(s.cell_state(c));
    results.push_back(std::move(out));
  }
  for (std::size_t l = 1; l < levels.size(); ++l) {
    for (std::size_t c = 0; c < results[0].size(); ++c)
      for (int v = 0; v < solver::kNumVars; ++v) {
        const auto sv = static_cast<std::size_t>(v);
        ASSERT_LE(simd::ulp_distance(results[0][c][sv], results[l][c][sv]),
                  kMaxUlp)
            << simd::to_string(levels[l]) << " cell " << c << " var " << v;
      }
  }
}

TEST(SimdEquivalence, TransportLevelsAgreeWithinUlpBound) {
  mesh::Mesh base = mesh::make_graded_box_mesh(7, 6, 5, 1.3);
  solver::TransportConfig tc;
  tc.velocity = {0.8, 0.3, -0.2};
  tc.diffusivity = 0.02;
  tc.ambient = 0.05;
  {
    TransportSolver tmp(base, tc);
    tmp.initialize_uniform(0.1);
    tmp.add_blob({2.0, 2.0, 1.5}, 1.2, 0.8);
    tmp.assign_temporal_levels();
  }
  const auto dd0 = decompose(base, 4, 2);

  const auto levels = simd::runnable_levels();
  std::vector<std::vector<double>> results;
  std::vector<double> nets;
  for (const simd::Level level : levels) {
    auto rd = partition::reorder_for_locality(base, dd0.domain_of_cell,
                                              dd0.ndomains);
    solver::TransportConfig cfg = tc;
    cfg.simd = request_for(level);
    TransportSolver s(rd.mesh, cfg);
    ASSERT_EQ(s.simd_level(), level);
    s.initialize_uniform(0.1);
    s.add_blob({2.0, 2.0, 1.5}, 1.2, 0.8);
    s.assign_temporal_levels();
    for (int it = 0; it < 3; ++it)
      s.run_iteration_tasks(rd.domain_of_cell, dd0.ndomains, dd0.d2p,
                            serial_config(2));
    ASSERT_TRUE(s.values_finite()) << simd::to_string(level);
    std::vector<double> out;
    for (index_t c = 0; c < rd.mesh.num_cells(); ++c)
      out.push_back(s.value(c));
    results.push_back(std::move(out));
    nets.push_back(s.net_boundary_outflow());
  }
  for (std::size_t l = 1; l < levels.size(); ++l) {
    for (std::size_t c = 0; c < results[0].size(); ++c)
      ASSERT_LE(simd::ulp_distance(results[0][c], results[l][c]), kMaxUlp)
          << simd::to_string(levels[l]) << " cell " << c;
    // boundary_net_ is tolerance-only by contract (lane partial sums).
    EXPECT_NEAR(nets[l], nets[0], 1e-12 * std::max(1.0, std::abs(nets[0])))
        << simd::to_string(levels[l]);
  }
}

TEST(SimdEquivalence, ScalarRequestIsBitwiseTheSerialReference) {
  // --simd scalar through the task path must equal the per-object serial
  // reference bit for bit — the seed-physics pin the acceptance criteria
  // name. (The SIMD tiers are pinned to scalar by the ULP tests above
  // and the serial reference is pinned to the seed by test_verify_solver.)
  mesh::Mesh m1 = mesh::make_graded_box_mesh(8, 6, 5, 1.25);
  mesh::Mesh m2 = mesh::make_graded_box_mesh(8, 6, 5, 1.25);
  EulerSolver serial(m1);  // inherit: whatever the environment picked
  solver::SolverConfig cfg;
  cfg.simd = simd::Request::scalar;
  EulerSolver tasked(m2, cfg);
  EXPECT_EQ(tasked.simd_level(), simd::Level::scalar);
  random_euler_state(serial, m1, 9);
  random_euler_state(tasked, m2, 9);
  const auto dd = decompose(m2, 4, 2);
  for (int it = 0; it < 3; ++it) {
    serial.run_iteration();
    tasked.run_iteration_tasks(dd.domain_of_cell, dd.ndomains, dd.d2p,
                               serial_config(2));
    for (index_t c = 0; c < m1.num_cells(); ++c) {
      const State a = serial.cell_state(c), b = tasked.cell_state(c);
      for (int v = 0; v < solver::kNumVars; ++v)
        ASSERT_EQ(a[static_cast<std::size_t>(v)],
                  b[static_cast<std::size_t>(v)])
            << "iteration " << it << " cell " << c << " var " << v;
    }
  }
}

// --- conservation at subiteration boundaries, per level ----------------------

TEST(SimdEquivalence, ConservationHoldsAtSubiterationBoundariesPerLevel) {
  // Slice one iteration into per-subiteration induced subgraphs (a valid
  // conservative schedule) and probe the conservation invariant between
  // slices — per runnable level, on the SIMD streaming path. This also
  // certifies the dropped boundary side-1 deposit (layout.hpp): the
  // totals never read those slots, so they must be unchanged by the skip.
  mesh::Mesh base = mesh::make_graded_box_mesh(8, 6, 5, 1.25);
  {
    EulerSolver tmp(base);
    random_euler_state(tmp, base, 17);
  }
  const auto dd0 = decompose(base, 4, 2);

  for (const simd::Level level : simd::runnable_levels()) {
    auto rd = partition::reorder_for_locality(base, dd0.domain_of_cell,
                                              dd0.ndomains);
    solver::SolverConfig cfg;
    cfg.simd = request_for(level);
    EulerSolver s(rd.mesh, cfg);
    random_euler_state(s, rd.mesh, 17);
    const State start = s.conserved_totals();
    const auto iter = s.make_iteration_tasks(rd.domain_of_cell, dd0.ndomains);
    index_t nsub = 0;
    for (index_t t = 0; t < iter.graph.num_tasks(); ++t)
      nsub = std::max(nsub, iter.graph.task(t).subiteration + 1);
    for (index_t sub = 0; sub < nsub; ++sub) {
      std::vector<char> keep(static_cast<std::size_t>(iter.graph.num_tasks()));
      for (index_t t = 0; t < iter.graph.num_tasks(); ++t)
        keep[static_cast<std::size_t>(t)] =
            iter.graph.task(t).subiteration == sub ? 1 : 0;
      const verify::InducedSubgraph slice =
          verify::filter_tasks(iter.graph, keep);
      runtime::RuntimeConfig rc;
      rc.num_processes = 2;
      rc.workers_per_process = 2;
      rc.adversarial.enabled = true;
      rc.adversarial.seed = 40 + static_cast<std::uint64_t>(sub);
      runtime::execute(slice.graph, dd0.d2p, rc, [&](index_t t) {
        iter.body(slice.original_task[static_cast<std::size_t>(t)]);
      });
      const State now = s.conserved_totals();
      EXPECT_NEAR(now[0], start[0], 1e-10 * std::abs(start[0]))
          << simd::to_string(level) << " subiteration " << sub;
      EXPECT_NEAR(now[4], start[4], 1e-10 * std::abs(start[4]))
          << simd::to_string(level) << " subiteration " << sub;
    }
    s.note_tasks_complete();
  }
}

// --- race-freedom on the SIMD path -------------------------------------------

TEST(SimdEquivalence, VerifyRacesCleanPerLevel) {
  // The SIMD path records the same up-front class-range annotations as
  // the scalar streaming path (over-approximate at boundary side 1 by
  // design — see layout.hpp); the DAG must order every conflicting pair
  // under adversarial schedules at every tier.
  mesh::Mesh base = mesh::make_graded_box_mesh(7, 6, 5, 1.3);
  {
    EulerSolver tmp(base);
    random_euler_state(tmp, base, 5);
  }
  const auto dd0 = decompose(base, 4, 2);

  for (const simd::Level level : simd::runnable_levels()) {
    auto rd = partition::reorder_for_locality(base, dd0.domain_of_cell,
                                              dd0.ndomains);
    solver::SolverConfig cfg;
    cfg.simd = request_for(level);
    EulerSolver s(rd.mesh, cfg);
    random_euler_state(s, rd.mesh, 5);
    const auto iter = s.make_iteration_tasks(rd.domain_of_cell, dd0.ndomains);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      verify::AccessLog log(iter.graph.num_tasks());
      const runtime::TaskBody body = verify::instrument(iter.body, log);
      runtime::RuntimeConfig rc;
      rc.num_processes = 2;
      rc.workers_per_process = 4;
      rc.adversarial.enabled = seed > 1;
      rc.adversarial.seed = seed;
      runtime::execute(iter.graph, dd0.d2p, rc, body);
      s.note_tasks_complete();
      const verify::RaceReport report = verify::check_races(iter.graph, log);
      EXPECT_TRUE(report.clean())
          << simd::to_string(level) << " seed " << seed << ":\n"
          << report.summary(iter.graph);
    }
  }
}

// --- tail handling around the padded stride ----------------------------------

TEST(SimdEquivalence, TailLengthsAroundPaddedStrideAgree) {
  // Sweep lattice sizes so the streaming class ranges take many short
  // lengths around 2·lanes and cross padded-stride multiples
  // (solver::kPadDoubles); every tier must agree with scalar on all of
  // them. A single domain keeps each class one contiguous id run.
  const int max_lanes = simd::lanes(simd::runnable_levels().back());
  const index_t max_n = static_cast<index_t>(
      2 * max_lanes + 2 * static_cast<int>(solver::kPadDoubles));
  for (index_t n = 1; n <= max_n; ++n) {
    mesh::Mesh base = mesh::make_lattice_mesh(n, 2, 2);
    {
      EulerSolver tmp(base);
      random_euler_state(tmp, base, 100 + static_cast<std::uint64_t>(n));
    }
    const std::vector<part_t> one(static_cast<std::size_t>(base.num_cells()),
                                  0);
    const std::vector<part_t> d2p{0};

    std::vector<State> scalar_out;
    for (const simd::Level level : simd::runnable_levels()) {
      auto rd = partition::reorder_for_locality(base, one, 1);
      solver::SolverConfig cfg;
      cfg.simd = request_for(level);
      EulerSolver s(rd.mesh, cfg);
      random_euler_state(s, rd.mesh, 100 + static_cast<std::uint64_t>(n));
      for (int it = 0; it < 2; ++it)
        s.run_iteration_tasks(rd.domain_of_cell, 1, d2p, serial_config(1));
      if (level == simd::Level::scalar) {
        for (index_t c = 0; c < rd.mesh.num_cells(); ++c)
          scalar_out.push_back(s.cell_state(c));
        continue;
      }
      for (index_t c = 0; c < rd.mesh.num_cells(); ++c) {
        const State got = s.cell_state(c);
        for (int v = 0; v < solver::kNumVars; ++v) {
          const auto sv = static_cast<std::size_t>(v);
          ASSERT_LE(
              simd::ulp_distance(scalar_out[static_cast<std::size_t>(c)][sv],
                                 got[sv]),
              kMaxUlp)
              << "n=" << n << " level " << simd::to_string(level) << " cell "
              << c << " var " << v;
        }
      }
    }
  }
}

}  // namespace
}  // namespace tamp
