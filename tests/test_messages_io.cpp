// Tests of MPI-style message aggregation statistics and partition file
// I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "partition/io.hpp"
#include "sim/messages.hpp"

namespace tamp {
namespace {

using taskgraph::Task;
using taskgraph::TaskGraph;

TaskGraph cross_graph() {
  // Tasks: 0 (d0, s0, 10 objects) → {1 (d1, s0), 2 (d1, s1)};
  //        3 (d0, s1, 5 objects) → 2.
  std::vector<Task> tasks(4);
  tasks[0].domain = 0;
  tasks[0].subiteration = 0;
  tasks[0].num_objects = 10;
  tasks[0].cost = 1;
  tasks[1].domain = 1;
  tasks[1].subiteration = 0;
  tasks[1].num_objects = 1;
  tasks[1].cost = 1;
  tasks[2].domain = 1;
  tasks[2].subiteration = 1;
  tasks[2].num_objects = 1;
  tasks[2].cost = 1;
  tasks[3].domain = 0;
  tasks[3].subiteration = 1;
  tasks[3].num_objects = 5;
  tasks[3].cost = 1;
  return TaskGraph(std::move(tasks), {{}, {0}, {0, 3}, {}});
}

TEST(Messages, AggregatesPerProcessPairAndSubiteration) {
  const TaskGraph g = cross_graph();
  // Domains on different processes: edges 0→1, 0→2, 3→2 all cross.
  const auto stats = sim::message_statistics(g, {0, 1});
  EXPECT_EQ(stats.crossing_edges, 3);
  EXPECT_EQ(stats.volume, 10 + 10 + 5);
  // Producer subiterations: 0→1 (s0), 0→2 (s0, same triple), 3→2 (s1):
  // 2 distinct messages over 1 process pair.
  EXPECT_EQ(stats.messages, 2);
  EXPECT_EQ(stats.process_pairs, 1);
}

TEST(Messages, NoCommWhenColocated) {
  const TaskGraph g = cross_graph();
  const auto stats = sim::message_statistics(g, {0, 0});
  EXPECT_EQ(stats.crossing_edges, 0);
  EXPECT_EQ(stats.messages, 0);
  EXPECT_EQ(stats.volume, 0);
  EXPECT_EQ(stats.process_pairs, 0);
}

TEST(Messages, DirectionalPairs) {
  // Reverse an edge direction by having d1 produce for d0 too.
  std::vector<Task> tasks(2);
  tasks[0].domain = 0;
  tasks[0].num_objects = 3;
  tasks[0].cost = 1;
  tasks[1].domain = 1;
  tasks[1].num_objects = 4;
  tasks[1].cost = 1;
  // 0→1 only.
  const TaskGraph g(std::move(tasks), {{}, {0}});
  const auto stats = sim::message_statistics(g, {0, 1});
  EXPECT_EQ(stats.process_pairs, 1);  // (0→1) distinct from (1→0)
}

TEST(PartitionIo, RoundTrip) {
  const std::vector<part_t> part{0, 2, 1, 1, 0, 2};
  std::ostringstream os;
  partition::write_partition(part, 3, os);
  std::istringstream is(os.str());
  part_t ndomains = 0;
  const auto back = partition::read_partition(is, ndomains);
  EXPECT_EQ(ndomains, 3);
  EXPECT_EQ(back, part);
}

TEST(PartitionIo, RejectsOutOfRangeIds) {
  const std::vector<part_t> bad{0, 5};
  std::ostringstream os;
  EXPECT_THROW(partition::write_partition(bad, 3, os), precondition_error);
}

TEST(PartitionIo, RejectsMalformedInput) {
  part_t nd = 0;
  std::istringstream bad1("nope 3 2\n0\n0\n0\n");
  EXPECT_THROW((void)partition::read_partition(bad1, nd), runtime_failure);
  std::istringstream bad2("tamp-partition 3 2\n0\n7\n0\n");
  EXPECT_THROW((void)partition::read_partition(bad2, nd), runtime_failure);
  std::istringstream bad3("tamp-partition 3 2\n0\n");
  EXPECT_THROW((void)partition::read_partition(bad3, nd), runtime_failure);
  std::istringstream bad4("tamp-partition 3 0\n0\n0\n0\n");
  EXPECT_THROW((void)partition::read_partition(bad4, nd), runtime_failure);
}

TEST(PartitionIo, FileRoundTrip) {
  const std::vector<part_t> part{1, 0, 1};
  const std::string path = testing::TempDir() + "/tamp_part.tpart";
  partition::save_partition(part, 2, path);
  part_t nd = 0;
  EXPECT_EQ(partition::load_partition(path, nd), part);
  EXPECT_EQ(nd, 2);
  EXPECT_THROW((void)partition::load_partition("/nonexistent/x", nd),
               runtime_failure);
}

}  // namespace
}  // namespace tamp
