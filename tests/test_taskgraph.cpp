// Tests of Algorithm-1 task generation and DAG structure on small meshes
// where the expected graph can be reasoned out by hand.
#include <gtest/gtest.h>

#include "mesh/generators.hpp"
#include "mesh/levels.hpp"
#include "taskgraph/generate.hpp"

namespace tamp::taskgraph {
namespace {

/// 4×1×1 lattice split into two domains {0,1} | {2,3}.
struct TinyCase {
  mesh::Mesh mesh = mesh::make_lattice_mesh(4, 1, 1);
  std::vector<part_t> domains{0, 0, 1, 1};
};

TEST(Generate, SingleLevelSingleDomain) {
  TinyCase t;
  t.mesh.set_cell_levels({0, 0, 0, 0});
  const TaskGraph g = generate_task_graph(t.mesh, {0, 0, 0, 0}, 1);
  // One subiteration, one phase, faces+cells, one domain, all internal:
  // exactly 2 tasks.
  ASSERT_EQ(g.num_tasks(), 2);
  EXPECT_EQ(g.task(0).type, ObjectType::face);
  EXPECT_EQ(g.task(1).type, ObjectType::cell);
  EXPECT_EQ(g.task(0).num_objects, t.mesh.num_faces());
  EXPECT_EQ(g.task(1).num_objects, 4);
  // The cell task depends on the face task.
  ASSERT_EQ(g.predecessors(1).size(), 1u);
  EXPECT_EQ(g.predecessors(1)[0], 0);
}

TEST(Generate, TwoDomainsSingleLevel) {
  TinyCase t;
  t.mesh.set_cell_levels({0, 0, 0, 0});
  const TaskGraph g = generate_task_graph(t.mesh, t.domains, 2);
  // Per domain: external + internal for faces and cells. Domain 0 owns
  // the crossing face (min rule): its face tasks are {ext:1, int:…};
  // domain 1 has no external faces but has external cells.
  index_t ext_face = 0, int_face = 0, ext_cell = 0, int_cell = 0;
  for (index_t i = 0; i < g.num_tasks(); ++i) {
    const Task& task = g.task(i);
    if (task.type == ObjectType::face) {
      (task.locality == Locality::external ? ext_face : int_face) +=
          task.num_objects;
    } else {
      (task.locality == Locality::external ? ext_cell : int_cell) +=
          task.num_objects;
    }
  }
  EXPECT_EQ(ext_face, 1);                            // the 1-2 crossing face
  EXPECT_EQ(int_face, t.mesh.num_faces() - 1);
  EXPECT_EQ(ext_cell, 2);                            // cells 1 and 2
  EXPECT_EQ(int_cell, 2);
  EXPECT_NO_THROW(g.topological_order());
}

TEST(Generate, ObjectCoverageEveryActivation) {
  // Over an iteration, each cell must be processed exactly
  // 2^(τmax−τ) times and each face 2^(τmax−τf) times.
  TinyCase t;
  t.mesh.set_cell_levels({0, 1, 1, 1});
  const TaskGraph g = generate_task_graph(t.mesh, t.domains, 2);
  index_t cell_updates = 0, face_updates = 0;
  for (index_t i = 0; i < g.num_tasks(); ++i) {
    const Task& task = g.task(i);
    (task.type == ObjectType::cell ? cell_updates : face_updates) +=
        task.num_objects;
  }
  weight_t expected_cells = 0;
  for (index_t c = 0; c < 4; ++c)
    expected_cells += mesh::operating_cost(t.mesh.cell_level(c), 1);
  weight_t expected_faces = 0;
  for (index_t f = 0; f < t.mesh.num_faces(); ++f)
    expected_faces += mesh::operating_cost(t.mesh.face_level(f), 1);
  EXPECT_EQ(cell_updates, expected_cells);
  EXPECT_EQ(face_updates, expected_faces);
}

TEST(Generate, PhasesDescendWithinSubiteration) {
  TinyCase t;
  t.mesh.set_cell_levels({0, 1, 2, 2});
  const TaskGraph g = generate_task_graph(t.mesh, t.domains, 2);
  index_t prev_sub = 0;
  level_t prev_level = 127;
  for (index_t i = 0; i < g.num_tasks(); ++i) {
    const Task& task = g.task(i);
    if (task.subiteration != prev_sub) {
      ASSERT_GT(task.subiteration, prev_sub);  // subiterations ascend
      prev_sub = task.subiteration;
      prev_level = 127;
    }
    EXPECT_LE(task.level, prev_level);  // phases descend
    prev_level = task.level;
  }
}

TEST(Generate, FacesPrecedeCellsInPhase) {
  TinyCase t;
  t.mesh.set_cell_levels({0, 0, 0, 0});
  const TaskGraph g = generate_task_graph(t.mesh, t.domains, 2);
  // Within (subiteration, level), every face task id < every cell id.
  index_t last_face = -1, first_cell = g.num_tasks();
  for (index_t i = 0; i < g.num_tasks(); ++i) {
    if (g.task(i).type == ObjectType::face)
      last_face = std::max(last_face, i);
    else
      first_cell = std::min(first_cell, i);
  }
  EXPECT_LT(last_face, first_cell);
}

TEST(Generate, DependenciesRespectNeighbourhood) {
  // A cell task must depend on face tasks covering its faces; the
  // external cell task of domain 1 must (transitively) depend on domain
  // 0's work.
  TinyCase t;
  t.mesh.set_cell_levels({0, 0, 0, 0});
  const TaskGraph g = generate_task_graph(t.mesh, t.domains, 2);
  for (index_t i = 0; i < g.num_tasks(); ++i) {
    if (g.task(i).type == ObjectType::cell) {
      EXPECT_FALSE(g.predecessors(i).empty())
          << "cell task without face dependency: " << g.task(i).label();
      bool has_face_dep = false;
      for (const index_t p : g.predecessors(i))
        has_face_dep |= g.task(p).type == ObjectType::face;
      EXPECT_TRUE(has_face_dep);
    }
  }
}

TEST(Generate, MultiIterationChains) {
  TinyCase t;
  t.mesh.set_cell_levels({0, 1, 1, 1});
  GenerateOptions opts;
  opts.num_iterations = 3;
  const TaskGraph g3 = generate_task_graph(t.mesh, t.domains, 2, opts);
  opts.num_iterations = 1;
  const TaskGraph g1 = generate_task_graph(t.mesh, t.domains, 2, opts);
  EXPECT_EQ(g3.num_tasks(), 3 * g1.num_tasks());
  // Iterations are chained: total work scales, critical path too.
  EXPECT_DOUBLE_EQ(g3.total_work(), 3 * g1.total_work());
  EXPECT_GT(g3.critical_path(), 2 * g1.critical_path());
}

TEST(Generate, CostModelApplied) {
  TinyCase t;
  t.mesh.set_cell_levels({0, 0, 0, 0});
  GenerateOptions opts;
  opts.cost.cell_unit = 2.0;
  opts.cost.face_unit = 0.5;
  const TaskGraph g = generate_task_graph(t.mesh, {0, 0, 0, 0}, 1, opts);
  EXPECT_DOUBLE_EQ(g.task(0).cost, 0.5 * t.mesh.num_faces());
  EXPECT_DOUBLE_EQ(g.task(1).cost, 2.0 * 4);
}

TEST(Generate, ClassMapCoversEveryObjectOnce) {
  TinyCase t;
  t.mesh.set_cell_levels({0, 1, 2, 2});
  ClassMap map;
  const TaskGraph g =
      generate_task_graph(t.mesh, t.domains, 2, {}, &map);
  ASSERT_EQ(map.task_class.size(), static_cast<std::size_t>(g.num_tasks()));
  std::vector<int> cell_seen(4, 0), face_seen(static_cast<std::size_t>(t.mesh.num_faces()), 0);
  for (const auto& cells : map.class_cells)
    for (const index_t c : cells) ++cell_seen[static_cast<std::size_t>(c)];
  for (const auto& faces : map.class_faces)
    for (const index_t f : faces) ++face_seen[static_cast<std::size_t>(f)];
  for (const int s : cell_seen) EXPECT_EQ(s, 1);
  for (const int s : face_seen) EXPECT_EQ(s, 1);
  // Task object counts match their class lists.
  for (index_t i = 0; i < g.num_tasks(); ++i) {
    const auto cid = static_cast<std::size_t>(map.task_class[static_cast<std::size_t>(i)]);
    const auto expected = g.task(i).type == ObjectType::face
                              ? map.class_faces[cid].size()
                              : map.class_cells[cid].size();
    EXPECT_EQ(static_cast<std::size_t>(g.task(i).num_objects), expected);
  }
}

TEST(TaskGraphStructure, RejectsOutOfRangeDeps) {
  std::vector<Task> tasks(2);
  EXPECT_THROW(TaskGraph(tasks, {{5}, {}}), precondition_error);
  EXPECT_THROW(TaskGraph(tasks, {{}}), precondition_error);  // size mismatch
}

TEST(TaskGraphStructure, DetectsCycles) {
  std::vector<Task> tasks(2);
  const TaskGraph g(tasks, {{1}, {0}});
  EXPECT_THROW((void)g.topological_order(), invariant_error);
  EXPECT_THROW((void)g.critical_path(), invariant_error);
}

TEST(TaskGraphStructure, SelfDependencyRejected) {
  std::vector<Task> tasks(1);
  EXPECT_THROW(TaskGraph(tasks, {{0}}), precondition_error);
}

TEST(TaskGraphStructure, CriticalPathOfChain) {
  std::vector<Task> tasks(3);
  tasks[0].cost = 1;
  tasks[1].cost = 2;
  tasks[2].cost = 3;
  const TaskGraph g(tasks, {{}, {0}, {1}});
  EXPECT_DOUBLE_EQ(g.critical_path(), 6.0);
  EXPECT_DOUBLE_EQ(g.total_work(), 6.0);
}

TEST(TaskGraphStructure, CriticalPathOfDiamond) {
  std::vector<Task> tasks(4);
  tasks[0].cost = 1;
  tasks[1].cost = 5;
  tasks[2].cost = 2;
  tasks[3].cost = 1;
  const TaskGraph g(tasks, {{}, {0}, {0}, {1, 2}});
  EXPECT_DOUBLE_EQ(g.critical_path(), 7.0);  // 0→1→3
}

TEST(TaskGraphStructure, DotExport) {
  TinyCase t;
  t.mesh.set_cell_levels({0, 0, 0, 0});
  const TaskGraph g = generate_task_graph(t.mesh, t.domains, 2);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(WorkStats, PerSubiterationWork) {
  TinyCase t;
  t.mesh.set_cell_levels({0, 1, 1, 1});
  const TaskGraph g = generate_task_graph(t.mesh, t.domains, 2);
  const auto work = work_per_subiteration(g);
  ASSERT_EQ(work.size(), 2u);  // τmax = 1 → 2 subiterations
  // Subiteration 0 does all levels, subiteration 1 only level 0: strictly
  // less work (the paper's intrinsic imbalance, Fig 4).
  EXPECT_GT(work[0], work[1]);
  EXPECT_GT(work[1], 0.0);
  simtime_t sum = 0;
  for (const simtime_t w : work) sum += w;
  EXPECT_DOUBLE_EQ(sum, g.total_work());
}

TEST(WorkStats, PerProcessSubiteration) {
  TinyCase t;
  t.mesh.set_cell_levels({0, 1, 1, 1});
  const TaskGraph g = generate_task_graph(t.mesh, t.domains, 2);
  const auto w = work_per_process_subiteration(g, {0, 1}, 2);
  ASSERT_EQ(w.size(), 4u);
  simtime_t sum = 0;
  for (const simtime_t x : w) sum += x;
  EXPECT_DOUBLE_EQ(sum, g.total_work());
}

}  // namespace
}  // namespace tamp::taskgraph
