// Unit tests for the observability layer: trace sessions (span nesting,
// concurrent lock-free recording), the metrics registry (counters,
// gauges, histogram percentiles), exporters (JSON escaping, trace-event
// documents that actually parse), and the pipeline integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sim/trace_json.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"

namespace tamp::obs {
namespace {

// --- minimal JSON validator --------------------------------------------------
// Recursive-descent syntax check (no DOM): enough to prove the exporters
// emit well-formed JSON, including escaping, without a JSON dependency.

class JsonValidator {
public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }
  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(
                    s_[pos_ + static_cast<std::size_t>(i)])) == 0)
              return false;
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool json_parses(const std::string& text) {
  return JsonValidator(text).valid();
}

// --- fixtures ----------------------------------------------------------------

/// Every test starts from a clean, enabled session and leaves the global
/// recorder disabled (other test binaries share the defaults).
class ObsTest : public testing::Test {
protected:
  void SetUp() override {
    TraceSession::instance().clear();
    Registry::instance().reset();
    set_tracing_enabled(true);
  }
  void TearDown() override {
    set_tracing_enabled(false);
    TraceSession::instance().clear();
    Registry::instance().reset();
  }
};

std::vector<TraceEvent> spans_named(const std::vector<TraceEvent>& events,
                                    const std::string& name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events)
    if (e.kind == EventKind::span && e.name == name) out.push_back(e);
  return out;
}

// --- tracing -----------------------------------------------------------------

TEST_F(ObsTest, ScopeRecordsCompleteSpan) {
  { TAMP_TRACE_SCOPE("unit/outer"); }
  const auto events = TraceSession::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit/outer");
  EXPECT_EQ(events[0].kind, EventKind::span);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_GE(events[0].end_ns, events[0].start_ns);
}

TEST_F(ObsTest, NestedScopesTrackDepthAndContainment) {
  {
    TAMP_TRACE_SCOPE("unit/a");
    {
      TAMP_TRACE_SCOPE("unit/b");
      { TAMP_TRACE_SCOPE("unit/c"); }
    }
    { TAMP_TRACE_SCOPE("unit/b2"); }
  }
  const auto events = TraceSession::instance().snapshot();
  ASSERT_EQ(events.size(), 4u);
  const auto a = spans_named(events, "unit/a").at(0);
  const auto b = spans_named(events, "unit/b").at(0);
  const auto c = spans_named(events, "unit/c").at(0);
  const auto b2 = spans_named(events, "unit/b2").at(0);
  EXPECT_EQ(a.depth, 0);
  EXPECT_EQ(b.depth, 1);
  EXPECT_EQ(c.depth, 2);
  EXPECT_EQ(b2.depth, 1);  // depth restored after unit/b closed
  // Temporal containment.
  EXPECT_LE(a.start_ns, b.start_ns);
  EXPECT_GE(a.end_ns, b.end_ns);
  EXPECT_LE(b.start_ns, c.start_ns);
  EXPECT_GE(b.end_ns, c.end_ns);
}

TEST_F(ObsTest, InstantAndCounterEvents) {
  TAMP_TRACE_INSTANT("unit/note", "hello");
  TAMP_TRACE_COUNTER("unit/depth", 42);
  const auto events = TraceSession::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::instant);
  EXPECT_EQ(events[0].detail, "hello");
  EXPECT_EQ(events[1].kind, EventKind::counter);
  EXPECT_DOUBLE_EQ(events[1].value, 42.0);
}

TEST_F(ObsTest, RuntimeDisabledRecordsNothing) {
  set_tracing_enabled(false);
  {
    TAMP_TRACE_SCOPE("unit/should_not_appear");
    TAMP_TRACE_INSTANT("unit/neither", "x");
    TAMP_TRACE_COUNTER("unit/nor", 1);
  }
  EXPECT_TRUE(TraceSession::instance().snapshot().empty());
}

TEST_F(ObsTest, ScopeArmedAtConstructionSurvivesDisable) {
  // A span armed while enabled must complete even if recording is
  // switched off mid-flight (the guard owns its buffer pointer).
  {
    TAMP_TRACE_SCOPE("unit/mid_disable");
    set_tracing_enabled(false);
  }
  set_tracing_enabled(true);
  const auto events = TraceSession::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit/mid_disable");
}

TEST_F(ObsTest, ConcurrentRecordingFromManyThreads) {
  // Cross the 512-event chunk boundary on every thread, concurrently.
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 1300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      for (int j = 0; j < kSpansPerThread; ++j) {
        TAMP_TRACE_SCOPE("unit/worker_span");
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto events = TraceSession::instance().snapshot();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  // Per thread, events must be internally consistent and time-ordered.
  std::vector<std::vector<const TraceEvent*>> per_thread;
  for (const TraceEvent& e : events) {
    if (per_thread.size() <= e.thread) per_thread.resize(e.thread + 1);
    per_thread[e.thread].push_back(&e);
  }
  int populated = 0;
  for (const auto& list : per_thread) {
    if (list.empty()) continue;
    ++populated;
    EXPECT_EQ(list.size(), static_cast<std::size_t>(kSpansPerThread));
    for (std::size_t i = 1; i < list.size(); ++i)
      EXPECT_GE(list[i]->start_ns, list[i - 1]->start_ns);
  }
  EXPECT_EQ(populated, kThreads);
}

TEST_F(ObsTest, SnapshotIsSortedByStartTime) {
  for (int i = 0; i < 100; ++i) {
    TAMP_TRACE_SCOPE("unit/seq");
  }
  const auto events = TraceSession::instance().snapshot();
  ASSERT_EQ(events.size(), 100u);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.start_ns < b.start_ns;
                             }));
}

TEST_F(ObsTest, WarnLogsRouteIntoSession) {
  const LogLevel saved = log_threshold();
  set_log_threshold(LogLevel::warn);
  log(LogLevel::warn) << "something \"quoted\" happened";
  log(LogLevel::info) << "info is not routed";
  set_log_threshold(saved);
  const auto events = TraceSession::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::instant);
  EXPECT_EQ(events[0].name, "log/warn");
  EXPECT_NE(events[0].detail.find("\"quoted\""), std::string::npos);
}

// --- metrics -----------------------------------------------------------------

TEST_F(ObsTest, CounterAndGaugeBasics) {
  Counter& c = counter("unit.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  EXPECT_EQ(&c, &counter("unit.counter"));  // stable reference

  Gauge& g = gauge("unit.gauge");
  g.set(1.5);
  g.add(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 2.25);
}

TEST_F(ObsTest, HistogramStatsAndPercentiles) {
  Histogram& h = histogram("unit.hist");
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_NEAR(snap.mean(), 500.5, 1e-9);
  // Log-linear buckets with 16 sub-buckets: ≤ ~6.25 % relative error.
  EXPECT_NEAR(snap.percentile(50.0), 500.0, 500.0 * 0.07);
  EXPECT_NEAR(snap.percentile(90.0), 900.0, 900.0 * 0.07);
  EXPECT_NEAR(snap.percentile(99.0), 990.0, 990.0 * 0.07);
  // Clamped to the observed range at the ends.
  EXPECT_GE(snap.percentile(0.0), snap.min);
  EXPECT_LE(snap.percentile(100.0), snap.max);
}

TEST_F(ObsTest, HistogramEdgeCases) {
  Histogram& h = histogram("unit.hist_edge");
  EXPECT_DOUBLE_EQ(h.snapshot().percentile(50.0), 0.0);  // empty
  h.record(3.25);
  const auto one = h.snapshot();
  EXPECT_DOUBLE_EQ(one.percentile(0.0), 3.25);
  EXPECT_DOUBLE_EQ(one.percentile(50.0), 3.25);
  EXPECT_DOUBLE_EQ(one.percentile(100.0), 3.25);
  // Non-positive and tiny values land in bucket 0 without crashing.
  h.record(0.0);
  h.record(-1.0);
  h.record(1e-300);
  EXPECT_EQ(h.count(), 4u);
}

TEST_F(ObsTest, HistogramBucketIndexRoundTrip) {
  for (const double v : {1e-9, 0.001, 0.5, 1.0, 1.5, 3.0, 1024.0, 1e9}) {
    const int b = HistogramSnapshot::bucket_index(v);
    EXPECT_GE(v, HistogramSnapshot::bucket_lower(b)) << v;
    EXPECT_LT(v, HistogramSnapshot::bucket_upper(b)) << v;
  }
}

TEST_F(ObsTest, ConcurrentHistogramRecording) {
  Histogram& h = histogram("unit.hist_mt");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&h] {
      for (int j = 1; j <= kPerThread; ++j)
        h.record(static_cast<double>(j));
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kPerThread));
}

TEST_F(ObsTest, RegistrySnapshotIsSortedAndComplete) {
  // Registrations persist for the process lifetime (reset() only zeroes
  // values), so assert on names unique to this test, not on totals.
  counter("unit.sorted.b").add(2);
  counter("unit.sorted.a").add(1);
  gauge("unit.sorted.g").set(3.5);
  histogram("unit.sorted.h").record(1.0);
  const MetricsSnapshot snap = Registry::instance().snapshot();
  const auto counter_value = [&](const std::string& name) -> std::int64_t {
    for (const auto& [n, v] : snap.counters)
      if (n == name) return v;
    return -1;
  };
  EXPECT_EQ(counter_value("unit.sorted.a"), 1);
  EXPECT_EQ(counter_value("unit.sorted.b"), 2);
  EXPECT_TRUE(std::is_sorted(snap.counters.begin(), snap.counters.end(),
                             [](const auto& x, const auto& y) {
                               return x.first < y.first;
                             }));
  const auto g = std::find_if(snap.gauges.begin(), snap.gauges.end(),
                              [](const auto& kv) {
                                return kv.first == "unit.sorted.g";
                              });
  ASSERT_NE(g, snap.gauges.end());
  EXPECT_DOUBLE_EQ(g->second, 3.5);
  const auto h = std::find_if(snap.histograms.begin(), snap.histograms.end(),
                              [](const auto& kv) {
                                return kv.first == "unit.sorted.h";
                              });
  ASSERT_NE(h, snap.histograms.end());
  EXPECT_EQ(h->second.count, 1u);
}

TEST_F(ObsTest, ScopedTimerReportsOnce) {
  Histogram& h = histogram("unit.timer");
  {
    ScopedTimer timer(h);
    const double elapsed = timer.stop();
    EXPECT_GE(elapsed, 0.0);
  }  // dtor must not double-record after stop()
  EXPECT_EQ(h.count(), 1u);
  { ScopedTimer timer(h); }  // records on destruction
  EXPECT_EQ(h.count(), 2u);
  { ScopedTimer named("unit.timer"); }
  EXPECT_EQ(h.count(), 3u);
}

// --- exporters ---------------------------------------------------------------

TEST_F(ObsTest, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST_F(ObsTest, SessionExportIsValidJson) {
  {
    TAMP_TRACE_SCOPE("unit/export \"tricky\"\nname");
    TAMP_TRACE_INSTANT("unit/note", "payload with \\ and \"");
    TAMP_TRACE_COUNTER("unit/gaugey", 1.25);
  }
  const std::string doc =
      to_chrome_trace(TraceSession::instance().snapshot());
  EXPECT_TRUE(json_parses(doc)) << doc;
  EXPECT_NE(doc.find("process_name"), std::string::npos);
  EXPECT_NE(doc.find("thread_name"), std::string::npos);
}

TEST_F(ObsTest, MetricsExportIsValidJson) {
  counter("unit.tasks").add(3);
  gauge("unit.\"odd\" name").set(0.5);
  histogram("unit.latency").record(0.001);
  const std::string doc =
      metrics_to_json(Registry::instance().snapshot());
  EXPECT_TRUE(json_parses(doc)) << doc;
  EXPECT_NE(doc.find("tamp-metrics-v1"), std::string::npos);
  EXPECT_NE(doc.find("\"p99\""), std::string::npos);
}

TEST_F(ObsTest, EmptyMetricsExportIsValidJson) {
  const std::string doc = metrics_to_json(MetricsSnapshot{});
  EXPECT_TRUE(json_parses(doc)) << doc;
}

// --- pipeline integration ----------------------------------------------------

TEST_F(ObsTest, PipelineEmitsStageSpansAndMergedTrace) {
  mesh::TestMeshSpec spec;
  spec.target_cells = 4000;
  const auto m =
      mesh::make_test_mesh(mesh::TestMeshKind::cylinder, spec);
  core::RunConfig cfg;
  cfg.strategy = partition::Strategy::mc_tl;
  cfg.ndomains = 8;
  cfg.nprocesses = 2;
  cfg.workers_per_process = 2;
  const core::RunOutcome out = core::run_on_mesh(m, cfg);

  const auto events = TraceSession::instance().snapshot();
  for (const char* stage :
       {"pipeline/run_on_mesh", "pipeline/partition", "pipeline/taskgraph",
        "pipeline/simulate", "partition/decompose", "partition/coarsen",
        "partition/initial", "partition/refine", "taskgraph/generate",
        "sim/simulate"}) {
    EXPECT_FALSE(spans_named(events, stage).empty())
        << "missing stage span: " << stage;
  }
  // Stage spans nest inside the top-level pipeline span.
  const auto root = spans_named(events, "pipeline/run_on_mesh").at(0);
  for (const auto& sub : spans_named(events, "pipeline/partition")) {
    EXPECT_GE(sub.start_ns, root.start_ns);
    EXPECT_LE(sub.end_ns, root.end_ns);
    EXPECT_GT(sub.depth, root.depth);
  }

  // Stage gauges and refinement counters were published.
  const MetricsSnapshot ms = Registry::instance().snapshot();
  const auto has_gauge = [&](const std::string& name) {
    return std::any_of(ms.gauges.begin(), ms.gauges.end(),
                       [&](const auto& kv) { return kv.first == name; });
  };
  EXPECT_TRUE(has_gauge("pipeline.makespan"));
  EXPECT_TRUE(has_gauge("partition.level_imbalance"));
  EXPECT_TRUE(has_gauge("partition.level_imbalance.l0"));
  EXPECT_TRUE(has_gauge("sim.ready_queue.peak_depth"));

  // Queue-depth samples exist and end with empty queues.
  ASSERT_FALSE(out.sim.queue_depth.empty());
  EXPECT_EQ(out.sim.queue_depth.back().depth, 0);

  // The merged Chrome trace holds task spans AND pipeline spans, and is
  // syntactically valid JSON.
  const std::string doc = sim::to_chrome_trace_merged(out.graph, out.sim);
  EXPECT_TRUE(json_parses(doc));
  EXPECT_NE(doc.find("partition/coarsen"), std::string::npos);
  EXPECT_NE(doc.find("\"ready_queue\""), std::string::npos);
  EXPECT_NE(doc.find(std::to_string(kPipelineTracePid)), std::string::npos);
}

TEST_F(ObsTest, PlainSimTraceStillValidJson) {
  mesh::TestMeshSpec spec;
  spec.target_cells = 2000;
  const auto m = mesh::make_test_mesh(mesh::TestMeshKind::cube, spec);
  core::RunConfig cfg;
  cfg.ndomains = 4;
  cfg.nprocesses = 2;
  const auto out = core::run_on_mesh(m, cfg);
  const std::string doc = sim::to_chrome_trace(out.graph, out.sim);
  EXPECT_TRUE(json_parses(doc));
  EXPECT_NE(doc.find("process_name"), std::string::npos);
}

// --- JSON parser -------------------------------------------------------------

TEST(JsonParser, ParsesScalarsObjectsAndArrays) {
  const JsonValue v = JsonValue::parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "x", "nest": {"k": -2e3}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.5);
  ASSERT_TRUE(v.find("b")->is_array());
  EXPECT_EQ(v.find("b")->as_array().size(), 3u);
  EXPECT_TRUE(v.find("b")->as_array()[0].as_bool());
  EXPECT_TRUE(v.find("b")->as_array()[2].is_null());
  EXPECT_EQ(v.find("s")->as_string(), "x");
  EXPECT_DOUBLE_EQ(v.find("nest")->number_or("k", 0), -2000.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 7.0), 7.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParser, DecodesEscapesAndSurrogatePairs) {
  const JsonValue v = JsonValue::parse(
      R"({"s": "a\"b\\c\n\té 😀"})");
  EXPECT_EQ(v.find("s")->as_string(), "a\"b\\c\n\té \U0001F600");
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse("{"), runtime_failure);
  EXPECT_THROW((void)JsonValue::parse("[1,]"), runtime_failure);
  EXPECT_THROW((void)JsonValue::parse("{} trailing"), runtime_failure);
  EXPECT_THROW((void)JsonValue::parse("nul"), runtime_failure);
  EXPECT_THROW((void)JsonValue::parse(R"({"a" 1})"), runtime_failure);
  EXPECT_THROW((void)JsonValue::parse("").as_number(), runtime_failure);
}

TEST(JsonParser, KindMismatchThrows) {
  const JsonValue v = JsonValue::parse("42");
  EXPECT_DOUBLE_EQ(v.as_number(), 42.0);
  EXPECT_THROW((void)v.as_string(), runtime_failure);
  EXPECT_THROW((void)v.as_object(), runtime_failure);
}

TEST(JsonParser, UnicodeEscapesBuildUtf8) {
  const JsonValue v =
      JsonValue::parse(R"("\u00e9 \u20ac \ud83d\ude00")");
  EXPECT_EQ(v.as_string(), "é € \U0001F600");
  // A lone high surrogate is malformed.
  EXPECT_THROW((void)JsonValue::parse(R"("\ud83d")"), runtime_failure);
}

// --- tamp-metrics round trip and regression verdicts -------------------------

TEST_F(ObsTest, MetricsJsonRoundTripsThroughParser) {
  counter("rt.tasks").add(12);
  gauge("rt.occupancy").set(0.75);
  Histogram& h = histogram("rt.length");
  for (int i = 1; i <= 100; ++i) h.record(i);
  const MetricsFile file =
      parse_metrics_json(metrics_to_json(Registry::instance().snapshot()));
  EXPECT_DOUBLE_EQ(file.counters.at("rt.tasks"), 12.0);
  EXPECT_DOUBLE_EQ(file.gauges.at("rt.occupancy"), 0.75);
  const MetricsFile::Hist& hist = file.histograms.at("rt.length");
  EXPECT_DOUBLE_EQ(hist.count, 100.0);
  EXPECT_DOUBLE_EQ(hist.min, 1.0);
  EXPECT_DOUBLE_EQ(hist.max, 100.0);
  EXPECT_GT(hist.p99, hist.p50);

  double out = 0;
  EXPECT_TRUE(lookup_metric(file, "counters.rt.tasks", out));
  EXPECT_DOUBLE_EQ(out, 12.0);
  EXPECT_TRUE(lookup_metric(file, "histograms.rt.length.p99", out));
  EXPECT_FALSE(lookup_metric(file, "gauges.rt.absent", out));
  EXPECT_FALSE(lookup_metric(file, "histograms.rt.length.p17", out));
}

TEST(Report, RejectsWrongSchema) {
  EXPECT_THROW((void)parse_metrics_json(R"({"schema": "other-v9"})"),
               runtime_failure);
  EXPECT_THROW((void)parse_metrics_json("not json"), runtime_failure);
}

MetricsFile doctor_metrics(double makespan, double occupancy,
                           double starvation, double p99) {
  MetricsFile f;
  f.gauges["doctor.makespan"] = makespan;
  f.gauges["doctor.occupancy"] = occupancy;
  f.gauges["doctor.blame.starvation_share"] = starvation;
  f.gauges["doctor.blame.dependency_wait_share"] = 0.02;
  f.gauges["doctor.blame.tail_imbalance_share"] = 0.01;
  f.histograms["doctor.task_length"].p99 = p99;
  return f;
}

TEST(Report, SyntheticRegressionTripsTheGates) {
  const MetricsFile base = doctor_metrics(1000, 0.95, 0.02, 50);
  // 30% slower, occupancy collapsed, starvation up 20 points: regressed.
  const MetricsFile bad = doctor_metrics(1300, 0.70, 0.22, 50);
  const auto rules = default_doctor_rules(0.05, 0.05, 0.25, 0.05);
  const ReportVerdict verdict = compare_metrics(base, bad, rules);
  EXPECT_TRUE(verdict.regressed());

  // Same run within tolerance: clean.
  const MetricsFile ok = doctor_metrics(1020, 0.94, 0.03, 55);
  EXPECT_FALSE(compare_metrics(base, ok, rules).regressed());

  // Improvement in a higher-is-worse metric never regresses.
  const MetricsFile better = doctor_metrics(700, 0.99, 0.0, 30);
  EXPECT_FALSE(compare_metrics(base, better, rules).regressed());
}

TEST(Report, MissingMetricIsSkippedNotRegressed) {
  const MetricsFile base = doctor_metrics(1000, 0.95, 0.02, 50);
  MetricsFile cand = doctor_metrics(1000, 0.95, 0.02, 50);
  cand.gauges.erase("doctor.occupancy");
  const auto rules = default_doctor_rules(0.05, 0.05, 0.25, 0.05);
  const ReportVerdict verdict = compare_metrics(base, cand, rules);
  EXPECT_FALSE(verdict.regressed());
  bool saw_missing = false;
  for (const RuleFinding& f : verdict.findings)
    if (f.metric == "gauges.doctor.occupancy") saw_missing = f.missing;
  EXPECT_TRUE(saw_missing);
}

TEST(Report, VerdictJsonRoundTrips) {
  const MetricsFile base = doctor_metrics(1000, 0.95, 0.02, 50);
  const MetricsFile bad = doctor_metrics(1300, 0.70, 0.22, 50);
  const auto rules = default_doctor_rules(0.05, 0.05, 0.25, 0.05);
  const ReportVerdict verdict = compare_metrics(base, bad, rules);

  const std::string json = verdict_to_json(verdict);
  EXPECT_NE(json.find("tamp-verdict-v1"), std::string::npos);
  const ReportVerdict back = verdict_from_json(json);
  EXPECT_EQ(back.regressed(), verdict.regressed());
  ASSERT_EQ(back.findings.size(), verdict.findings.size());
  for (std::size_t i = 0; i < back.findings.size(); ++i) {
    EXPECT_EQ(back.findings[i].metric, verdict.findings[i].metric);
    EXPECT_DOUBLE_EQ(back.findings[i].baseline, verdict.findings[i].baseline);
    EXPECT_DOUBLE_EQ(back.findings[i].candidate,
                     verdict.findings[i].candidate);
    EXPECT_DOUBLE_EQ(back.findings[i].change, verdict.findings[i].change);
    EXPECT_EQ(back.findings[i].absolute, verdict.findings[i].absolute);
    EXPECT_EQ(back.findings[i].regressed, verdict.findings[i].regressed);
    EXPECT_EQ(back.findings[i].missing, verdict.findings[i].missing);
  }
  EXPECT_THROW((void)verdict_from_json(R"({"schema": "nope"})"),
               runtime_failure);
}

TEST(Report, AnnotationsCoverTheMetricFamilies) {
  EXPECT_EQ(annotate_metric("gauges.doctor.makespan").direction, -1);
  EXPECT_EQ(annotate_metric("gauges.doctor.occupancy").direction, +1);
  EXPECT_EQ(annotate_metric("gauges.doctor.occupancy").unit, "share");
  EXPECT_EQ(annotate_metric("gauges.doctor.blame.starvation_share").direction,
            -1);
  EXPECT_EQ(annotate_metric("gauges.divergence.makespan.abs_rel_gap").direction,
            -1);
  EXPECT_EQ(annotate_metric("gauges.pool.steal.success_rate").direction, +1);
  EXPECT_EQ(annotate_metric("counters.runtime.flight.dropped").direction, -1);
  EXPECT_EQ(annotate_metric("histograms.runtime.task_seconds.p99").unit, "s");
  EXPECT_EQ(annotate_metric("gauges.solver.flux_gcells_per_s").direction, +1);
  EXPECT_EQ(annotate_metric("gauges.obs.flight.ns_per_event.attached").unit,
            "ns");
  // Unknown names stay unannotated instead of guessing.
  const MetricAnnotation none = annotate_metric("gauges.mystery.metric");
  EXPECT_EQ(none.unit, "");
  EXPECT_EQ(none.direction, 0);
  EXPECT_STREQ(none.direction_label(), "");
}

TEST(Report, FlattenIsDeterministicAndComplete) {
  const MetricsFile f = doctor_metrics(1000, 0.95, 0.02, 50);
  const auto flat = flatten_metrics(f);
  EXPECT_FALSE(flat.empty());
  for (std::size_t i = 1; i < flat.size(); ++i)
    EXPECT_LT(flat[i - 1].first, flat[i].first);
  double out = 0;
  for (const auto& [name, value] : flat) {
    ASSERT_TRUE(lookup_metric(f, name, out)) << name;
    EXPECT_DOUBLE_EQ(out, value) << name;
  }
}

}  // namespace
}  // namespace tamp::obs
