// Unit tests for the graph module: CSR invariants, builder, subgraphs,
// connected components.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/csr.hpp"

namespace tamp::graph {
namespace {

Csr triangle() {
  Builder b(3);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  b.add_edge(0, 2, 4);
  return b.build();
}

TEST(Builder, BuildsSymmetricCsr) {
  const Csr g = triangle();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_NO_THROW(g.validate());
}

TEST(Builder, MergesDuplicateEdges) {
  Builder b(2);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 0, 5);
  const Csr g = b.build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge_weights(0)[0], 7);
  EXPECT_NO_THROW(g.validate());
}

TEST(Builder, RejectsSelfLoopAndBadIndices) {
  Builder b(3);
  EXPECT_THROW(b.add_edge(1, 1), precondition_error);
  EXPECT_THROW(b.add_edge(0, 3), precondition_error);
  EXPECT_THROW(b.add_edge(-1, 0), precondition_error);
  EXPECT_THROW(b.add_edge(0, 1, 0), precondition_error);
}

TEST(Builder, VertexWeightVectors) {
  Builder b(2, 3);
  const weight_t w[3] = {5, 0, 7};
  b.set_vertex_weights(0, std::span<const weight_t>(w, 3));
  b.set_vertex_weight(1, 2, 9);
  const Csr g = b.build();
  EXPECT_EQ(g.num_constraints(), 3);
  EXPECT_EQ(g.vertex_weights(0)[0], 5);
  EXPECT_EQ(g.vertex_weights(0)[2], 7);
  EXPECT_EQ(g.vertex_weights(1)[0], 1);  // default
  EXPECT_EQ(g.vertex_weights(1)[2], 9);
  const auto totals = g.total_weights();
  EXPECT_EQ(totals[0], 6);
  EXPECT_EQ(totals[2], 16);
}

TEST(Csr, DegreeAndNeighbors) {
  const Csr g = triangle();
  for (index_t v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_EQ(g.total_edge_weight(), 9);
}

TEST(Csr, ConstructorValidatesShapes) {
  EXPECT_THROW(Csr(2, 1, {0, 0}, {}, {}, {1, 1}), precondition_error);
  EXPECT_THROW(Csr(2, 1, {0, 0, 0}, {}, {}, {1}), precondition_error);
}

TEST(GridGraph, CountsAndConnectivity) {
  const Csr g = make_grid_graph(5, 4);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(g.num_edges(), 4 * 4 + 5 * 3);
  EXPECT_TRUE(is_connected(g));
  EXPECT_NO_THROW(g.validate());
}

TEST(Subgraph, ExtractsInducedSubgraph) {
  const Csr g = make_grid_graph(4, 4);
  std::vector<char> mask(16, 0);
  for (int i = 0; i < 8; ++i) mask[static_cast<std::size_t>(i)] = 1;  // two rows
  std::vector<index_t> o2n, n2o;
  const Csr sub = induced_subgraph(g, mask, o2n, n2o);
  EXPECT_EQ(sub.num_vertices(), 8);
  EXPECT_EQ(sub.num_edges(), 3 + 3 + 4);  // two rows of 4 + vertical links
  EXPECT_NO_THROW(sub.validate());
  for (index_t v = 0; v < 8; ++v)
    EXPECT_EQ(o2n[static_cast<std::size_t>(n2o[static_cast<std::size_t>(v)])], v);
}

TEST(Subgraph, PreservesWeights) {
  Builder b(3, 2);
  b.add_edge(0, 1, 7);
  b.add_edge(1, 2, 5);
  b.set_vertex_weight(1, 1, 42);
  const Csr g = b.build();
  std::vector<char> mask{1, 1, 0};
  std::vector<index_t> o2n, n2o;
  const Csr sub = induced_subgraph(g, mask, o2n, n2o);
  EXPECT_EQ(sub.num_edges(), 1);
  EXPECT_EQ(sub.edge_weights(0)[0], 7);
  EXPECT_EQ(sub.vertex_weights(1)[1], 42);
}

TEST(Components, CountsComponents) {
  Builder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Csr g = b.build();  // {0,1,2}, {3,4}, {5}
  std::vector<index_t> comp;
  EXPECT_EQ(connected_components(g, comp), 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[5]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, FragmentCountsPerPart) {
  const Csr g = make_grid_graph(4, 1);  // path 0-1-2-3
  // Part 0 = {0, 2} (two fragments), part 1 = {1, 3} (two fragments).
  const std::vector<part_t> part{0, 1, 0, 1};
  const auto frags = part_fragment_counts(g, part, 2);
  EXPECT_EQ(frags[0], 2);
  EXPECT_EQ(frags[1], 2);
  // Contiguous split has one fragment each.
  const std::vector<part_t> contiguous{0, 0, 1, 1};
  const auto frags2 = part_fragment_counts(g, contiguous, 2);
  EXPECT_EQ(frags2[0], 1);
  EXPECT_EQ(frags2[1], 1);
}

TEST(Components, EmptyGraph) {
  Builder b(1);
  const Csr g = b.build();
  EXPECT_TRUE(is_connected(g));
}

}  // namespace
}  // namespace tamp::graph
