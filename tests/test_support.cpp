// Unit tests for the support module: RNG, tables, CLI, SVG, Gantt.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/gantt.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/svg.hpp"
#include "support/table.hpp"

namespace tamp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroBoundReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.split();
  // Child should not replay the parent's stream.
  Rng parent2(5);
  parent2.split();
  EXPECT_EQ(child(), [&] { Rng p(5); return p.split()(); }());
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(11);
  auto perm = random_permutation(100, rng);
  std::sort(perm.begin(), perm.end());
  for (index_t i = 0; i < 100; ++i) EXPECT_EQ(perm[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Check, ExpectsThrowsPreconditionError) {
  EXPECT_THROW(TAMP_EXPECTS(false, "boom"), precondition_error);
  EXPECT_NO_THROW(TAMP_EXPECTS(true, "fine"));
}

TEST(Check, EnsureThrowsInvariantError) {
  EXPECT_THROW(TAMP_ENSURE(1 == 2, "bad"), invariant_error);
}

TEST(Check, MessageContainsContext) {
  try {
    TAMP_EXPECTS(false, "details here");
    FAIL();
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("details here"), std::string::npos);
  }
}

TEST(Fnv1aHash, MatchesPublishedTestVectors) {
  // Published 64-bit FNV-1a vectors (Fowler/Noll/Vo reference tables).
  EXPECT_EQ(fnv1a(""), kFnv1aOffset);
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
  EXPECT_EQ(fnv1a("chongo was here!\n"), 0x46810940eff5f915ULL);
}

TEST(Fnv1aHash, BuilderMatchesOneShotOnBytes) {
  const std::string s = "snapshot-seal";
  std::uint64_t h = kFnv1aOffset;
  fnv1a_bytes(h, s.data(), s.size());
  EXPECT_EQ(h, fnv1a(s));
  EXPECT_EQ(Fnv1a().add_span(s.data(), s.size()).value(), fnv1a(s));
}

TEST(Fnv1aHash, VectorLengthPrefixPreventsConcatenationCollisions) {
  const std::vector<int> ab = {1, 2}, c = {3};
  const std::vector<int> a = {1}, bc = {2, 3};
  const auto h1 = Fnv1a().add_vector(ab).add_vector(c).value();
  const auto h2 = Fnv1a().add_vector(a).add_vector(bc).value();
  EXPECT_NE(h1, h2);
}

TEST(Fnv1aHash, FieldOrderMatters) {
  EXPECT_NE(Fnv1a().add(1).add(2).value(), Fnv1a().add(2).add(1).value());
}

TEST(Table, AlignsColumns) {
  TablePrinter t("demo");
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"bbbb", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("bbbb"), std::string::npos);
  // All data lines share the same width.
  std::istringstream lines(out);
  std::string line;
  std::set<std::size_t> widths;
  while (std::getline(lines, line))
    if (!line.empty() && line[0] == '|') widths.insert(line.size());
  EXPECT_EQ(widths.size(), 1u);
}

TEST(Table, MarkdownEscapesPipesAndDropsSeparators) {
  TablePrinter t("leverage");
  t.header({"class", "saved"});
  t.row({"a|b", "1"});
  t.separator();
  t.row({"c", "2"});
  std::ostringstream os;
  t.print_markdown(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("**leverage**"), std::string::npos);
  EXPECT_NE(out.find("| class | saved |"), std::string::npos);
  EXPECT_NE(out.find("| --- | --- |"), std::string::npos);
  EXPECT_NE(out.find("a\\|b"), std::string::npos);  // pipes escaped
  EXPECT_EQ(out.find("+--"), std::string::npos);    // no ASCII rules
  // Exactly one separator row: the header underline, not t.separator().
  std::size_t seps = 0;
  std::istringstream lines(out);
  for (std::string line; std::getline(lines, line);)
    if (line.rfind("| ---", 0) == 0) ++seps;
  EXPECT_EQ(seps, 1u);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_count(12594374), "12,594,374");
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(-1234), "-1,234");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.623, 1), "62.3%");
}

TEST(Table, CsvRoundtrip) {
  TablePrinter t;
  t.header({"a", "b"});
  t.row({"x,y", "plain"});
  const std::string path = testing::TempDir() + "/tamp_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "\"x,y\",plain");
}

TEST(Cli, ParsesOptionsAndFlags) {
  CliParser cli("test");
  cli.option("scale", "100", "cells").flag("full", "run full");
  const char* argv[] = {"prog", "--scale", "250", "--full"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("scale"), 250);
  EXPECT_TRUE(cli.get_flag("full"));
}

TEST(Cli, EqualsSyntaxAndDefaults) {
  CliParser cli("test");
  cli.option("seed", "42", "rng seed").option("name", "abc", "label");
  const char* argv[] = {"prog", "--seed=7"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("seed"), 7);
  EXPECT_EQ(cli.get("name"), "abc");
}

TEST(Cli, RejectsUnknownOption) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), precondition_error);
}

TEST(Cli, RejectsNonNumeric) {
  CliParser cli("test");
  cli.option("n", "1", "count");
  const char* argv[] = {"prog", "--n", "abc"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW((void)cli.get_int("n"), precondition_error);
}

TEST(Cli, RejectsTrailingGarbageInNumbers) {
  CliParser cli("test");
  cli.option("threads", "1", "count").option("tol", "0.1", "tolerance");
  const char* argv[] = {"prog", "--threads", "4x", "--tol", "0.5.3"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_THROW((void)cli.get_int("threads"), precondition_error);
  EXPECT_THROW((void)cli.get_double("tol"), precondition_error);
}

TEST(Cli, RejectsOutOfRangeAndWhitespaceNumbers) {
  CliParser cli("test");
  cli.option("n", "1", "count").option("x", "0", "value");
  const char* argv[] = {"prog", "--n", "99999999999999999999", "--x", " 7"};
  ASSERT_TRUE(cli.parse(5, argv));
  // Overflow used to escape as a raw std::out_of_range from stoll.
  EXPECT_THROW((void)cli.get_int("n"), precondition_error);
  EXPECT_THROW((void)cli.get_int("x"), precondition_error);
  EXPECT_THROW((void)cli.get_double("x"), precondition_error);
}

TEST(Cli, AcceptsSignedNumbers) {
  CliParser cli("test");
  cli.option("a", "0", "").option("b", "0", "").option("c", "0", "");
  const char* argv[] = {"prog", "--a", "-12", "--b", "+34", "--c", "+0.5"};
  ASSERT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(cli.get_int("a"), -12);
  EXPECT_EQ(cli.get_int("b"), 34);
  EXPECT_DOUBLE_EQ(cli.get_double("c"), 0.5);
  // A bare or doubled sign is not a number.
  const char* argv2[] = {"prog", "--a", "+", "--b", "+-3"};
  CliParser cli2("test");
  cli2.option("a", "0", "").option("b", "0", "");
  ASSERT_TRUE(cli2.parse(5, argv2));
  EXPECT_THROW((void)cli2.get_int("a"), precondition_error);
  EXPECT_THROW((void)cli2.get_int("b"), precondition_error);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Svg, EscapesMarkup) {
  EXPECT_EQ(SvgWriter::escape("a<b>&\"c"), "a&lt;b&gt;&amp;&quot;c");
}

TEST(Svg, ProducesWellFormedDocument) {
  SvgWriter svg(100, 50);
  svg.rect(0, 0, 10, 10, "#ff0000");
  svg.text(5, 5, "hi & bye");
  const std::string doc = svg.str();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("hi &amp; bye"), std::string::npos);
}

TEST(Gantt, BusyAndOccupancy) {
  GanttTrace t;
  t.resource_names = {"w0", "w1"};
  t.makespan = 10;
  t.spans = {{0, 0, 5, 0, ""}, {1, 0, 10, 1, ""}};
  const auto busy = t.busy_per_resource();
  EXPECT_DOUBLE_EQ(busy[0], 5.0);
  EXPECT_DOUBLE_EQ(busy[1], 10.0);
  EXPECT_DOUBLE_EQ(t.occupancy(), 0.75);
}

TEST(Gantt, AsciiRendering) {
  GanttTrace t;
  t.resource_names = {"w0"};
  t.makespan = 10;
  t.spans = {{0, 0, 5, 2, ""}};
  const std::string out = render_gantt_ascii(t, 10);
  // First half busy with category glyph '2', second half idle '.'.
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find("."), std::string::npos);
}

TEST(Gantt, SvgFilesWritten) {
  GanttTrace t;
  t.title = "demo";
  t.resource_names = {"w0"};
  t.makespan = 4;
  t.spans = {{0, 1, 3, 0, "task"}};
  const std::string path = testing::TempDir() + "/tamp_gantt.svg";
  write_gantt_svg(t, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  write_gantt_comparison_svg(t, t, testing::TempDir() + "/tamp_gantt2.svg");
}

}  // namespace
}  // namespace tamp
