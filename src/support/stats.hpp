// Descriptive statistics over small samples (multi-seed experiment
// aggregation).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/check.hpp"

namespace tamp {

/// Summary of a sample.
struct SampleStats {
  double mean = 0;
  double stddev = 0;  ///< sample standard deviation (n−1)
  double min = 0;
  double median = 0;
  double max = 0;
  std::size_t count = 0;
};

/// Compute summary statistics. Throws on an empty sample.
inline SampleStats summarize_sample(std::vector<double> values) {
  TAMP_EXPECTS(!values.empty(), "cannot summarise an empty sample");
  SampleStats s;
  s.count = values.size();
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.median = values.size() % 2 == 1
                 ? values[values.size() / 2]
                 : 0.5 * (values[values.size() / 2 - 1] +
                          values[values.size() / 2]);
  double sum = 0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0;
    for (const double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return s;
}

}  // namespace tamp
