// Deterministic pseudo-random number generation.
//
// All stochastic choices in TAMP (matching traversal orders, initial
// bisection seeds, synthetic mesh jitter) flow through this xoshiro256**
// generator so that every experiment is reproducible bit-for-bit from a
// single seed. xoshiro256** is splittable-by-jump, tiny, and much faster
// than std::mt19937_64 while passing BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace tamp {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Fisher–Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-trial streams).
  Rng split();

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// A vector [0, n) in random order.
std::vector<index_t> random_permutation(index_t n, Rng& rng);

/// Deterministically mix two words into a base seed (splitmix64
/// finalizers). Used to derive independent RNG streams whose identity
/// depends only on (seed, a, b) — e.g. one stream per recursive-bisection
/// subtree keyed by (part_base, k) — so stochastic choices are
/// reproducible regardless of thread schedule.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a,
                       std::uint64_t b = 0);

}  // namespace tamp
