// Minimal levelled logger writing to stderr.
//
// The library itself logs nothing above `debug`; benches and examples use
// `info` for progress. A global threshold keeps experiment output clean.
//
// Each record carries an ISO-8601 UTC timestamp and the session thread id
// (the same dense id used by obs::TraceSession, so log lines and trace
// events correlate). The threshold can be overridden at process start via
// the TAMP_LOG_LEVEL environment variable (debug|info|warn|error|off),
// and records at warn or above are mirrored into the active TraceSession
// as instant events so they show up on the Perfetto timeline.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace tamp {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Parse a level name (debug|info|warn|error|off, case-sensitive).
std::optional<LogLevel> parse_log_level(const std::string& name);

/// Process-global log threshold (default: warn, or TAMP_LOG_LEVEL).
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style one-shot log statement: `tamp::log(LogLevel::info) << ...`.
class LogLine {
public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_threshold()) detail::log_emit(level_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_threshold()) os_ << v;
    return *this;
  }

private:
  LogLevel level_;
  std::ostringstream os_;
};

inline LogLine log(LogLevel level) { return LogLine(level); }

}  // namespace tamp
