// Minimal levelled logger writing to stderr.
//
// The library itself logs nothing above `debug`; benches and examples use
// `info` for progress. A global threshold keeps experiment output clean.
#pragma once

#include <sstream>
#include <string>

namespace tamp {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Process-global log threshold (default: warn).
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style one-shot log statement: `tamp::log(LogLevel::info) << ...`.
class LogLine {
public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_threshold()) detail::log_emit(level_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_threshold()) os_ << v;
    return *this;
  }

private:
  LogLevel level_;
  std::ostringstream os_;
};

inline LogLine log(LogLevel level) { return LogLine(level); }

}  // namespace tamp
