// Error-handling primitives for the TAMP library.
//
// Following the C++ Core Guidelines (E.12, I.6): preconditions and
// invariants are checked with throwing macros carrying source location,
// so violations surface as std::logic_error-family exceptions rather than
// undefined behaviour. Checks guarding user-facing API input stay enabled
// in release builds; hot-loop internal assertions use TAMP_DBG_ASSERT,
// which compiles out unless TAMP_ENABLE_DBG_ASSERT is defined.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tamp {

/// Thrown when an API precondition is violated by the caller.
class precondition_error : public std::invalid_argument {
public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant does not hold (library bug).
class invariant_error : public std::logic_error {
public:
  using std::logic_error::logic_error;
};

/// Thrown when a runtime resource operation fails (I/O, allocation policy).
class runtime_failure : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw precondition_error(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}
}  // namespace detail

}  // namespace tamp

/// Check a caller-supplied precondition; always active.
#define TAMP_EXPECTS(cond, msg)                                          \
  do {                                                                   \
    if (!(cond))                                                         \
      ::tamp::detail::throw_precondition(#cond, __FILE__, __LINE__,      \
                                         (msg));                         \
  } while (false)

/// Check an internal invariant; always active (cheap checks only).
#define TAMP_ENSURE(cond, msg)                                           \
  do {                                                                   \
    if (!(cond))                                                         \
      ::tamp::detail::throw_invariant(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Hot-path assertion, compiled out by default.
#if defined(TAMP_ENABLE_DBG_ASSERT)
#define TAMP_DBG_ASSERT(cond, msg) TAMP_ENSURE(cond, msg)
#else
#define TAMP_DBG_ASSERT(cond, msg) \
  do {                             \
  } while (false)
#endif
