// Work-stealing fork/join thread pool for the decomposition pipeline.
//
// The partitioner sits on the production critical path (temporal levels
// evolve → repartition), yet the multilevel algorithms are recursive and
// irregular: recursive bisection forks two independent subtrees of very
// different sizes, and each bisection contains data-parallel hot loops
// (subgraph extraction, CSR contraction, balance accounting). This pool
// serves both shapes with one mechanism:
//
//  * fork/join — submit() pushes a task onto the calling worker's own
//    deque (LIFO for the owner, FIFO for thieves, Cilk-style); wait()
//    *helps*: while the awaited task is unfinished the waiting thread
//    pops/steals and executes other tasks, so nested fork/join never
//    deadlocks and never idles a core;
//  * parallel_for — splits [begin, end) into fixed `grain`-sized chunks
//    claimed dynamically from an atomic cursor. Chunk boundaries depend
//    only on (begin, end, grain) — never on the thread count or
//    schedule — so chunk-indexed partial results are deterministic.
//
// Thread-safety / TSan: every queue is guarded by its own mutex (no
// lock-free deques — this pool favours being provably clean under
// ThreadSanitizer over shaving nanoseconds off steals; tasks here are
// whole bisections, microseconds at minimum). Task completion is
// published with a release store observed by an acquire load in wait().
//
// Determinism contract: the pool never makes scheduling guarantees, so
// any caller that needs bit-identical results must make every task's
// *output* independent of execution order (disjoint output slots,
// per-task RNG streams). The partitioner does exactly that — see
// DESIGN.md "Parallel decomposition".
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace tamp {

namespace obs {
class FlightRecorder;
}

/// Grow-only bump allocator for task-scoped scratch memory. One arena
/// belongs to one thread at a time (the pool keeps one per worker slot);
/// alloc() bumps within pre-reserved blocks, reset() rewinds every block
/// without releasing memory, so a task that runs every iteration stops
/// paying allocator traffic after its first execution. Addresses handed
/// out since the last reset() stay valid until the next reset() — growth
/// appends blocks, it never reallocates one.
///
/// Not thread-safe; an arena use (alloc … last read) must not span a
/// submit()/wait() boundary, because a helping wait() can run another
/// task on this thread that resets or bumps the same arena.
class ScratchArena {
public:
  /// Rewind every block to empty; capacity is retained.
  void reset();

  /// `count` default-constructible, trivially-destructible Ts. The
  /// memory is uninitialised.
  template <typename T>
  T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    return static_cast<T*>(raw(count * sizeof(T), alignof(T)));
  }

  /// Raw aligned bytes (alloc<T> in terms of this).
  void* raw(std::size_t bytes, std::size_t align);

  /// Total bytes reserved across all blocks (monotone; telemetry).
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }

private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };
  std::vector<Block> blocks_;
  std::size_t current_ = 0;
  std::size_t reserved_ = 0;
};

class ThreadPool {
public:
  /// Total worker count, including the calling thread: `num_threads - 1`
  /// OS threads are spawned and the caller contributes whenever it waits.
  /// num_threads == 1 spawns nothing; submitted work runs in wait().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const { return num_threads_; }

  struct TaskState;  // opaque; completion flag + captured exception
  using TaskHandle = std::shared_ptr<TaskState>;

  /// Fork: enqueue `fn` for execution by any worker. The returned handle
  /// must be passed to wait() before any reference captured by `fn`
  /// leaves scope.
  TaskHandle submit(std::function<void()> fn);

  /// Second submission class for long-lived, latency-insensitive work
  /// (the asynchronous pipeline's prep stages). Background tasks sit in
  /// one global FIFO that a worker polls only after its own deque *and*
  /// every steal attempt came up empty, so a queued prep task can never
  /// starve the fork/join work the solve path depends on. Join with the
  /// same wait() (which helps, and will run the background task itself
  /// if nothing else does).
  TaskHandle submit_background(std::function<void()> fn);

  /// Join: execute queued tasks until `handle` completes, then rethrow
  /// the task's exception if it threw.
  void wait(const TaskHandle& handle);

  /// Run body(chunk_begin, chunk_end) over [begin, end) in grain-sized
  /// chunks across the pool; the caller participates. Rethrows the first
  /// body exception after all chunks finish. Chunk c covers
  /// [begin + c*grain, min(end, begin + (c+1)*grain)) regardless of
  /// thread count, so per-chunk partials indexed by (chunk_begin - begin)
  /// / grain are schedule-independent.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& body);

  /// Process-wide pool shared by the decomposition pipeline. Returns
  /// nullptr for num_threads <= 1 (serial — callers use the pool-less
  /// path). Re-sizing tears down and respawns the pool; callers must not
  /// have work in flight when asking for a different size.
  static ThreadPool* shared(int num_threads);

  /// Lifetime telemetry of the pool's scheduling behaviour. Counters are
  /// maintained with per-slot relaxed atomics (each worker touches only
  /// its own cache line) when instrumentation is compiled in; with
  /// TAMP_ENABLE_TRACING=OFF every field reads 0.
  struct Stats {
    std::uint64_t submitted = 0;        ///< tasks pushed via submit()
    std::uint64_t background_submitted = 0;  ///< via submit_background()
    std::uint64_t executed = 0;         ///< tasks run to completion
    std::uint64_t local_pops = 0;       ///< LIFO pops from the own deque
    std::uint64_t steal_attempts = 0;   ///< foreign-deque probes
    std::uint64_t steal_successes = 0;  ///< probes that yielded a task
    std::uint64_t max_queue_depth = 0;  ///< deepest single deque observed

    /// Fraction of steal probes that found work (0 when none attempted).
    [[nodiscard]] double steal_success_rate() const {
      return steal_attempts > 0
                 ? static_cast<double>(steal_successes) /
                       static_cast<double>(steal_attempts)
                 : 0.0;
    }
  };
  [[nodiscard]] Stats stats() const;

  /// Publish stats() into the global metrics registry under `prefix`
  /// (counters pool.submitted/executed/local_pops/steal.attempts/
  /// steal.successes are *set* to the lifetime totals; gauges
  /// pool.steal.success_rate and pool.queue.max_depth).
  void publish_metrics(const std::string& prefix = "pool.") const;

  /// Attach a flight recorder with one ring per pool slot (slot 0 = the
  /// client thread); pass nullptr to detach. Workers then record
  /// task_begin/task_end, steal_attempt/steal_success events. Safe to
  /// call while workers are scanning (every recorder ever attached stays
  /// alive until the pool is destroyed), but the rings must only be
  /// *read* once the pool is quiescent. No-op when instrumentation is
  /// compiled out.
  void set_flight_recorder(std::shared_ptr<obs::FlightRecorder> recorder);

  /// Scratch arena of the calling thread's pool slot (per-worker; slot 0
  /// belongs to the client thread). See ScratchArena for the ownership
  /// rules — in particular, do not let a use span a wait().
  [[nodiscard]] ScratchArena& local_arena();

private:
  struct Impl;
  void worker_main(int slot);
  bool run_one(int slot);
  [[nodiscard]] int local_slot() const;

  std::unique_ptr<Impl> impl_;
  int num_threads_ = 1;
};

/// Resolve a thread-count knob: `requested` > 0 wins; 0 consults the
/// TAMP_PARTITION_THREADS environment variable; unset/invalid means 1
/// (serial — today's behaviour, bit-identical by construction).
int resolve_num_threads(int requested);

/// The calling thread's scratch arena: the per-slot arena of the pool
/// the thread works for, or a thread-local fallback for threads outside
/// any pool (the serial pipeline path, test drivers). Same ownership
/// rules as ScratchArena.
[[nodiscard]] ScratchArena& thread_scratch_arena();

/// parallel_for that degrades to an inline call when `pool` is null —
/// the serial path stays free of any pool machinery.
inline void parallel_for(
    ThreadPool* pool, std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (pool == nullptr) {
    if (end > begin) body(begin, end);
    return;
  }
  pool->parallel_for(begin, end, grain, body);
}

}  // namespace tamp
