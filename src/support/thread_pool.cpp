#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace tamp {

struct ThreadPool::TaskState {
  std::function<void()> fn;
  std::exception_ptr error;       ///< written before done is published
  std::atomic<bool> done{false};  ///< release store / acquire load
  std::mutex mutex;
  std::condition_variable cv;
};

namespace {

/// Which pool (if any) owns the current thread, and its deque slot.
/// Workers of a pool push nested submissions onto their own deque;
/// threads foreign to the pool (the client) use slot 0.
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_slot = 0;

void execute(const ThreadPool::TaskHandle& task) {
  try {
    task->fn();
  } catch (...) {
    task->error = std::current_exception();
  }
  task->fn = nullptr;  // drop captures before publishing completion
  {
    // Lock pairs with the cv wait in ThreadPool::wait so the notify
    // cannot slip between its predicate check and its sleep.
    const std::lock_guard<std::mutex> lock(task->mutex);
    task->done.store(true, std::memory_order_release);
  }
  task->cv.notify_all();
}

}  // namespace

void ScratchArena::reset() {
  for (Block& b : blocks_) b.used = 0;
  current_ = 0;
}

void* ScratchArena::raw(std::size_t bytes, std::size_t align) {
  TAMP_EXPECTS(align > 0 && (align & (align - 1)) == 0,
               "arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;
  while (current_ < blocks_.size()) {
    Block& b = blocks_[current_];
    const std::size_t aligned = (b.used + align - 1) & ~(align - 1);
    if (aligned + bytes <= b.size) {
      b.used = aligned + bytes;
      return b.data.get() + aligned;
    }
    ++current_;
  }
  // No block fits: append one (64 KiB floor amortises small allocations;
  // existing blocks — and every pointer into them — stay where they are).
  constexpr std::size_t kMinBlock = 64 * 1024;
  const std::size_t size = std::max(kMinBlock, bytes + align);
  Block b;
  b.data = std::make_unique<unsigned char[]>(size);
  b.size = size;
  const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
  const std::size_t aligned =
      static_cast<std::size_t>(((base + align - 1) & ~(align - 1)) - base);
  b.used = aligned + bytes;
  reserved_ += size;
  blocks_.push_back(std::move(b));
  current_ = blocks_.size() - 1;
  return blocks_.back().data.get() + aligned;
}

struct ThreadPool::Impl {
  struct Slot {
    std::mutex mutex;
    std::deque<TaskHandle> queue;
    ScratchArena arena;  ///< owned by the thread occupying this slot
#if defined(TAMP_TRACING_ENABLED)
    // Scheduling telemetry. Each counter is written only by the thread
    // occupying this slot (relaxed increments on an owned line); stats()
    // reads them from outside.
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> local_pops{0};
    std::atomic<std::uint64_t> steal_attempts{0};
    std::atomic<std::uint64_t> steal_successes{0};
#endif
  };
  std::vector<std::unique_ptr<Slot>> slots;  ///< 0 = client, 1.. = workers
  std::vector<std::thread> workers;
  std::mutex sleep_mutex;
  std::condition_variable sleep_cv;
  std::atomic<std::int64_t> pending{0};  ///< queued, not-yet-popped tasks
  std::atomic<bool> stop{false};
  /// Global FIFO of submit_background() tasks, polled only after the
  /// local deque and every steal victim came up empty.
  std::mutex background_mutex;
  std::deque<TaskHandle> background;
#if defined(TAMP_TRACING_ENABLED)
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> background_submitted{0};
  std::atomic<std::uint64_t> max_queue_depth{0};
  // Workers read the recorder through `flight` on every dequeue while
  // the client may attach one at any time (they scan even before the
  // first submit), so the hot-path pointer is an acquire/release atomic.
  // `flight_owners` keeps every recorder ever attached alive until the
  // pool is destroyed, so a stale pointer loaded concurrently with a
  // replacement can never dangle.
  std::atomic<obs::FlightRecorder*> flight{nullptr};
  std::vector<std::shared_ptr<obs::FlightRecorder>> flight_owners;
  Stopwatch clock;  ///< flight-event timestamps, seconds since creation

  obs::FlightRing* ring(int slot) const {
    obs::FlightRecorder* rec = flight.load(std::memory_order_acquire);
    return rec != nullptr ? &rec->ring(slot) : nullptr;
  }
  void note_queue_depth(std::uint64_t depth) {
    std::uint64_t cur = max_queue_depth.load(std::memory_order_relaxed);
    while (depth > cur && !max_queue_depth.compare_exchange_weak(
                              cur, depth, std::memory_order_relaxed)) {
    }
  }
#endif

  TaskHandle pop(int slot, bool lifo) {
    Slot& s = *slots[static_cast<std::size_t>(slot)];
    const std::lock_guard<std::mutex> lock(s.mutex);
    if (s.queue.empty()) return nullptr;
    TaskHandle t;
    if (lifo) {
      t = std::move(s.queue.back());
      s.queue.pop_back();
    } else {
      t = std::move(s.queue.front());
      s.queue.pop_front();
    }
    pending.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }

  TaskHandle pop_background() {
    const std::lock_guard<std::mutex> lock(background_mutex);
    if (background.empty()) return nullptr;
    TaskHandle t = std::move(background.front());
    background.pop_front();
    pending.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }
};

ThreadPool::ThreadPool(int num_threads)
    : impl_(std::make_unique<Impl>()), num_threads_(num_threads) {
  TAMP_EXPECTS(num_threads >= 1, "thread pool needs at least one thread");
  impl_->slots.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i)
    impl_->slots.push_back(std::make_unique<Impl::Slot>());
  impl_->workers.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 1; i < num_threads; ++i)
    impl_->workers.emplace_back([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->sleep_mutex);
    impl_->stop.store(true, std::memory_order_relaxed);
  }
  impl_->sleep_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
}

int ThreadPool::local_slot() const { return tls_pool == this ? tls_slot : 0; }

ThreadPool::TaskHandle ThreadPool::submit(std::function<void()> fn) {
  auto task = std::make_shared<TaskState>();
  task->fn = std::move(fn);
  const int slot = local_slot();
  {
    Impl::Slot& s = *impl_->slots[static_cast<std::size_t>(slot)];
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.queue.push_back(task);
#if defined(TAMP_TRACING_ENABLED)
    impl_->note_queue_depth(static_cast<std::uint64_t>(s.queue.size()));
#endif
  }
#if defined(TAMP_TRACING_ENABLED)
  impl_->submitted.fetch_add(1, std::memory_order_relaxed);
#endif
  impl_->pending.fetch_add(1, std::memory_order_relaxed);
  impl_->sleep_cv.notify_one();
  return task;
}

ThreadPool::TaskHandle ThreadPool::submit_background(std::function<void()> fn) {
  auto task = std::make_shared<TaskState>();
  task->fn = std::move(fn);
  {
    const std::lock_guard<std::mutex> lock(impl_->background_mutex);
    impl_->background.push_back(task);
  }
#if defined(TAMP_TRACING_ENABLED)
  impl_->background_submitted.fetch_add(1, std::memory_order_relaxed);
#endif
  impl_->pending.fetch_add(1, std::memory_order_relaxed);
  impl_->sleep_cv.notify_one();
  return task;
}

bool ThreadPool::run_one(int slot) {
  // Own deque first (LIFO: depth-first on locally forked subtrees, hot
  // in cache), then steal oldest-first from the other slots.
  TaskHandle task = impl_->pop(slot, /*lifo=*/true);
#if defined(TAMP_TRACING_ENABLED)
  Impl::Slot& me = *impl_->slots[static_cast<std::size_t>(slot)];
  obs::FlightRing* ring = impl_->ring(slot);
  if (task != nullptr) me.local_pops.fetch_add(1, std::memory_order_relaxed);
#endif
  for (int i = 1; task == nullptr && i <= num_threads_; ++i) {
    const int victim = (slot + i) % num_threads_;
#if defined(TAMP_TRACING_ENABLED)
    if (victim != slot) {
      me.steal_attempts.fetch_add(1, std::memory_order_relaxed);
      TAMP_FLIGHT_RECORD(ring, obs::FlightEventKind::steal_attempt,
                         impl_->clock.seconds(), victim);
    }
#endif
    task = impl_->pop(victim, /*lifo=*/false);
#if defined(TAMP_TRACING_ENABLED)
    if (task != nullptr && victim != slot) {
      me.steal_successes.fetch_add(1, std::memory_order_relaxed);
      TAMP_FLIGHT_RECORD(ring, obs::FlightEventKind::steal_success,
                         impl_->clock.seconds(), victim);
    }
#endif
  }
  // Background class last: a queued prep task only runs on a worker that
  // proved it had no fork/join work anywhere to pop or steal.
  if (task == nullptr) task = impl_->pop_background();
  if (task == nullptr) return false;
#if defined(TAMP_TRACING_ENABLED)
  TAMP_FLIGHT_RECORD(ring, obs::FlightEventKind::task_begin,
                     impl_->clock.seconds());
#endif
  execute(task);
#if defined(TAMP_TRACING_ENABLED)
  me.executed.fetch_add(1, std::memory_order_relaxed);
  TAMP_FLIGHT_RECORD(ring, obs::FlightEventKind::task_end,
                     impl_->clock.seconds());
#endif
  return true;
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats out;
#if defined(TAMP_TRACING_ENABLED)
  out.submitted = impl_->submitted.load(std::memory_order_relaxed);
  out.background_submitted =
      impl_->background_submitted.load(std::memory_order_relaxed);
  out.max_queue_depth = impl_->max_queue_depth.load(std::memory_order_relaxed);
  for (const auto& slot : impl_->slots) {
    out.executed += slot->executed.load(std::memory_order_relaxed);
    out.local_pops += slot->local_pops.load(std::memory_order_relaxed);
    out.steal_attempts += slot->steal_attempts.load(std::memory_order_relaxed);
    out.steal_successes +=
        slot->steal_successes.load(std::memory_order_relaxed);
  }
#endif
  return out;
}

void ThreadPool::publish_metrics(const std::string& prefix) const {
  const Stats s = stats();
  auto set_counter = [&](const char* name, std::uint64_t v) {
    obs::Counter& c = obs::counter(prefix + name);
    c.reset();
    c.add(static_cast<std::int64_t>(v));
  };
  set_counter("submitted", s.submitted);
  set_counter("background_submitted", s.background_submitted);
  set_counter("executed", s.executed);
  set_counter("local_pops", s.local_pops);
  set_counter("steal.attempts", s.steal_attempts);
  set_counter("steal.successes", s.steal_successes);
  obs::gauge(prefix + "steal.success_rate").set(s.steal_success_rate());
  obs::gauge(prefix + "queue.max_depth")
      .set(static_cast<double>(s.max_queue_depth));
}

void ThreadPool::set_flight_recorder(
    std::shared_ptr<obs::FlightRecorder> recorder) {
#if defined(TAMP_TRACING_ENABLED)
  TAMP_EXPECTS(recorder == nullptr || recorder->num_workers() >= num_threads_,
               "flight recorder needs one ring per pool slot");
  obs::FlightRecorder* raw = recorder.get();
  if (recorder != nullptr) impl_->flight_owners.push_back(std::move(recorder));
  impl_->flight.store(raw, std::memory_order_release);
#else
  static_cast<void>(recorder);
#endif
}

ScratchArena& ThreadPool::local_arena() {
  return impl_->slots[static_cast<std::size_t>(local_slot())]->arena;
}

ScratchArena& thread_scratch_arena() {
  if (tls_pool != nullptr && tls_slot > 0) return tls_pool->local_arena();
  // Foreign threads (the client, serial paths) each get their own
  // thread-local arena — slot 0 of a pool could be raced by several
  // client threads, a thread_local cannot.
  thread_local ScratchArena arena;
  return arena;
}

void ThreadPool::worker_main(int slot) {
  tls_pool = this;
  tls_slot = slot;
  while (true) {
    if (run_one(slot)) continue;
    std::unique_lock<std::mutex> lock(impl_->sleep_mutex);
    impl_->sleep_cv.wait(lock, [this] {
      return impl_->stop.load(std::memory_order_relaxed) ||
             impl_->pending.load(std::memory_order_relaxed) > 0;
    });
    if (impl_->stop.load(std::memory_order_relaxed)) return;
  }
}

void ThreadPool::wait(const TaskHandle& handle) {
  TAMP_EXPECTS(handle != nullptr, "waiting on a null task handle");
  const int slot = local_slot();
  while (!handle->done.load(std::memory_order_acquire)) {
    if (run_one(slot)) continue;
    // Nothing runnable: the awaited task (or one of its dependencies) is
    // executing elsewhere. Sleep briefly but wake early on completion;
    // the timeout re-arms helping in case new subtasks get forked.
    std::unique_lock<std::mutex> lock(handle->mutex);
    handle->cv.wait_for(lock, std::chrono::microseconds(200), [&] {
      return handle->done.load(std::memory_order_acquire);
    });
  }
  // Move the error out so this (waiting) thread owns the exception
  // object's lifetime: the worker's TaskHandle copy may be the last one
  // destroyed, and if it still held the exception_ptr the worker would
  // free an exception whose what() the waiter just read. That final
  // release is ordered by eh refcounting inside libstdc++ — correct, but
  // invisible to TSan (uninstrumented), and needlessly cross-thread.
  if (handle->error)
    std::rethrow_exception(std::exchange(handle->error, nullptr));
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (end <= begin) return;
  grain = grain < 1 ? 1 : grain;
  const std::int64_t nchunks = (end - begin + grain - 1) / grain;
  if (nchunks == 1) {
    body(begin, end);
    return;
  }
  std::atomic<std::int64_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto drain = [&] {
    std::int64_t c;
    while ((c = next.fetch_add(1, std::memory_order_relaxed)) < nchunks) {
      const std::int64_t cb = begin + c * grain;
      const std::int64_t ce = cb + grain < end ? cb + grain : end;
      try {
        body(cb, ce);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  const std::int64_t max_helpers = nchunks - 1;
  const int helpers = static_cast<int>(
      num_threads_ - 1 < max_helpers ? num_threads_ - 1 : max_helpers);
  std::vector<TaskHandle> handles;
  handles.reserve(static_cast<std::size_t>(helpers));
  for (int i = 0; i < helpers; ++i) handles.push_back(submit(drain));
  drain();
  for (const TaskHandle& h : handles) wait(h);
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool* ThreadPool::shared(int num_threads) {
  if (num_threads <= 1) return nullptr;
  static std::mutex mutex;
  static std::unique_ptr<ThreadPool> pool;
  const std::lock_guard<std::mutex> lock(mutex);
  if (!pool || pool->num_threads() != num_threads)
    pool = std::make_unique<ThreadPool>(num_threads);
  return pool.get();
}

int resolve_num_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("TAMP_PARTITION_THREADS")) {
    char* tail = nullptr;
    const long v = std::strtol(env, &tail, 10);
    if (tail != env && *tail == '\0' && v >= 1 && v <= 1024)
      return static_cast<int>(v);
  }
  return 1;
}

}  // namespace tamp
