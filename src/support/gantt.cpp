#include "support/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"
#include "support/svg.hpp"

namespace tamp {

std::vector<simtime_t> GanttTrace::busy_per_resource() const {
  std::vector<simtime_t> busy(resource_names.size(), 0.0);
  for (const auto& s : spans) {
    TAMP_DBG_ASSERT(s.resource >= 0 &&
                        static_cast<std::size_t>(s.resource) < busy.size(),
                    "span resource out of range");
    busy[static_cast<std::size_t>(s.resource)] += s.end - s.start;
  }
  return busy;
}

double GanttTrace::occupancy() const {
  if (resource_names.empty() || makespan <= 0) return 0.0;
  simtime_t busy = 0;
  for (const auto& s : spans) busy += s.end - s.start;
  return busy / (makespan * static_cast<double>(resource_names.size()));
}

namespace {

constexpr double kRowHeight = 14.0;
constexpr double kRowGap = 2.0;
constexpr double kLeftMargin = 110.0;
constexpr double kTopMargin = 26.0;
constexpr double kBottomMargin = 22.0;

void draw_trace_rows(SvgWriter& svg, const GanttTrace& trace, double y0,
                     double pixel_width, simtime_t horizon) {
  const double plot_w = pixel_width - kLeftMargin - 10.0;
  const double scale = horizon > 0 ? plot_w / horizon : 1.0;
  const auto nres = trace.resource_names.size();

  svg.text(kLeftMargin, y0 - 8.0, trace.title, 12.0);
  for (std::size_t r = 0; r < nres; ++r) {
    const double y = y0 + static_cast<double>(r) * (kRowHeight + kRowGap);
    svg.rect(kLeftMargin, y, plot_w, kRowHeight, "#f2f2f2");
    svg.text(kLeftMargin - 6.0, y + kRowHeight - 3.0, trace.resource_names[r],
             9.0, "end");
  }
  for (const auto& s : trace.spans) {
    const double y = y0 + s.resource * (kRowHeight + kRowGap);
    const double x = kLeftMargin + s.start * scale;
    const double w = std::max((s.end - s.start) * scale, 0.3);
    svg.rect(x, y, w, kRowHeight,
             trace_color(static_cast<std::size_t>(s.category)), 1.0, s.label);
  }
  // Time axis under the rows.
  const double axis_y =
      y0 + static_cast<double>(nres) * (kRowHeight + kRowGap) + 4.0;
  svg.line(kLeftMargin, axis_y, kLeftMargin + plot_w, axis_y, "#444444");
  for (int tick = 0; tick <= 10; ++tick) {
    const double frac = tick / 10.0;
    const double x = kLeftMargin + frac * plot_w;
    svg.line(x, axis_y, x, axis_y + 4.0, "#444444");
    std::ostringstream lbl;
    lbl << static_cast<long long>(std::llround(frac * horizon));
    svg.text(x, axis_y + 14.0, lbl.str(), 8.0, "middle");
  }
}

double trace_block_height(const GanttTrace& trace) {
  return kTopMargin +
         static_cast<double>(trace.resource_names.size()) *
             (kRowHeight + kRowGap) +
         kBottomMargin;
}

}  // namespace

void write_gantt_svg(const GanttTrace& trace, const std::string& path,
                     double pixel_width) {
  SvgWriter svg(pixel_width, trace_block_height(trace));
  draw_trace_rows(svg, trace, kTopMargin, pixel_width, trace.makespan);
  svg.save(path);
}

void write_gantt_comparison_svg(const GanttTrace& top,
                                const GanttTrace& bottom,
                                const std::string& path, double pixel_width) {
  const double h_top = trace_block_height(top);
  const double h_bot = trace_block_height(bottom);
  SvgWriter svg(pixel_width, h_top + h_bot);
  // A shared horizon makes relative makespans visually comparable, as in
  // the paper's stacked traces.
  const simtime_t horizon = std::max(top.makespan, bottom.makespan);
  GanttTrace t = top;
  GanttTrace b = bottom;
  t.makespan = horizon;
  b.makespan = horizon;
  draw_trace_rows(svg, t, kTopMargin, pixel_width, horizon);
  draw_trace_rows(svg, b, h_top + kTopMargin, pixel_width, horizon);
  svg.save(path);
}

std::string render_gantt_ascii(const GanttTrace& trace, int columns) {
  TAMP_EXPECTS(columns > 0, "ASCII gantt needs at least one column");
  const auto nres = trace.resource_names.size();
  const simtime_t horizon = trace.makespan > 0 ? trace.makespan : 1.0;
  const auto ncols = static_cast<std::size_t>(columns);

  // bucket_weight[r][c][cat] approximated with dominant-category voting:
  // accumulate busy time per bucket per category, then pick argmax.
  std::vector<std::vector<std::vector<double>>> weight(
      nres, std::vector<std::vector<double>>(ncols));
  int max_cat = 0;
  for (const auto& s : trace.spans) max_cat = std::max(max_cat, s.category);
  for (auto& rows : weight)
    for (auto& cell : rows) cell.assign(static_cast<std::size_t>(max_cat) + 1, 0.0);

  for (const auto& s : trace.spans) {
    const auto r = static_cast<std::size_t>(s.resource);
    if (r >= nres) continue;
    const double c0 = s.start / horizon * columns;
    const double c1 = s.end / horizon * columns;
    for (int c = static_cast<int>(c0); c <= static_cast<int>(c1) && c < columns;
         ++c) {
      const double lo = std::max<double>(c0, c);
      const double hi = std::min<double>(c1, c + 1);
      if (hi > lo)
        weight[r][static_cast<std::size_t>(c)]
              [static_cast<std::size_t>(s.category)] += hi - lo;
    }
  }

  static const char glyphs[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  std::ostringstream os;
  if (!trace.title.empty()) os << trace.title << '\n';
  std::size_t name_w = 0;
  for (const auto& n : trace.resource_names) name_w = std::max(name_w, n.size());
  for (std::size_t r = 0; r < nres; ++r) {
    os << trace.resource_names[r]
       << std::string(name_w - trace.resource_names[r].size(), ' ') << " |";
    for (std::size_t c = 0; c < ncols; ++c) {
      double best_w = 0.0;
      int best_cat = -1;
      for (std::size_t cat = 0; cat < weight[r][c].size(); ++cat) {
        if (weight[r][c][cat] > best_w) {
          best_w = weight[r][c][cat];
          best_cat = static_cast<int>(cat);
        }
      }
      if (best_cat < 0 || best_w < 1e-12) {
        os << '.';
      } else {
        os << glyphs[static_cast<std::size_t>(best_cat) % (sizeof(glyphs) - 1)];
      }
    }
    os << "|\n";
  }
  return os.str();
}

}  // namespace tamp
