// Runtime SIMD dispatch for the solver streaming kernels.
//
// The class-contiguous layout (solver/layout.hpp) made the hot sweeps
// lane-shaped; this header names the lanes. A *Level* is an executable
// kernel tier — scalar (the bitwise oracle, one object per iteration),
// sse2 (2 double lanes) and avx2 (4 double lanes). A *Request* is what a
// config knob asks for: a concrete level, `auto_` (best the CPU runs),
// or `inherit` (defer to the process default, which is itself seeded
// from the TAMP_SIMD environment variable: auto|avx2|sse2|scalar).
//
// resolve() turns a request into a runnable level, clamping down when
// the CPU lacks the instruction set a tier was compiled for — forcing
// `--simd avx2` on an SSE2-only machine degrades to sse2, never crashes.
// On non-x86 targets the per-width kernels are built from the portable
// pack implementation (std::experimental::simd where the standard
// library ships it, plain arrays otherwise), so every level is runnable
// and `auto_` simply picks scalar unless asked otherwise.
//
// Equivalence contract (see DESIGN.md "SIMD kernel contract"): the
// scalar level is bitwise-identical to the per-object reference kernels;
// the SIMD levels are lanewise transcriptions of the same expression
// trees (no FMA contraction, no horizontal reductions on the physics
// path) and are validated ULP-bounded against scalar by tests/test_simd.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tamp::simd {

/// Executable kernel tier, ordered by lane count.
enum class Level : int { scalar = 0, sse2 = 1, avx2 = 2 };

/// What a knob asks for; resolve() maps it onto a runnable Level.
enum class Request : int { inherit = 0, auto_ = 1, scalar = 2, sse2 = 3, avx2 = 4 };

/// Double lanes per iteration at this level: 1 / 2 / 4.
[[nodiscard]] int lanes(Level level);

[[nodiscard]] const char* to_string(Level level);

/// Parse "auto" | "scalar" | "sse2" | "avx2" (throws precondition_error
/// on anything else; the empty string means inherit).
[[nodiscard]] Request parse_request(std::string_view text);

/// Best level this CPU executes natively (cpuid-based on x86; scalar
/// elsewhere — the portable packs are correct but not faster there).
[[nodiscard]] Level detect_native();

/// Whether the kernels compiled for `level` can execute on this CPU.
/// Always true for scalar; for sse2/avx2 it checks the instruction sets
/// the per-width translation units were actually built with.
[[nodiscard]] bool level_runnable(Level level);

/// The TAMP_SIMD environment request (auto when unset/empty).
[[nodiscard]] Request env_request();

/// Process-wide default used by Request::inherit: starts as
/// env_request(); set_default_request() overrides it (flusim --simd,
/// bench sweeps). Passing Request::inherit resets to the environment.
[[nodiscard]] Request default_request();
void set_default_request(Request request);

/// Map a request to a runnable level (see file header).
[[nodiscard]] Level resolve(Request request = Request::inherit);

/// Every level runnable on this machine, ascending (always starts with
/// scalar) — the sweep the benches and equivalence tests iterate.
[[nodiscard]] std::vector<Level> runnable_levels();

/// Units-in-the-last-place distance between two doubles: 0 iff bitwise
/// equal values (+0 and -0 count as equal), monotone in the number of
/// representable doubles between the arguments, and saturating to
/// UINT64_MAX when either argument is NaN. The measure the SIMD
/// equivalence harness bounds.
[[nodiscard]] std::uint64_t ulp_distance(double a, double b);

}  // namespace tamp::simd
