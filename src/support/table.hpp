// Fixed-width console tables and CSV export.
//
// Every bench binary reproduces a paper table or figure by printing rows;
// TablePrinter renders them aligned for the terminal and can mirror the
// same rows to a CSV file for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tamp {

/// Collects rows of string cells and renders them as an aligned table.
class TablePrinter {
public:
  /// @param title Optional heading printed above the table.
  explicit TablePrinter(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row.
  TablePrinter& header(std::vector<std::string> cells);

  /// Append a data row (cells may be fewer than header columns).
  TablePrinter& row(std::vector<std::string> cells);

  /// Append a horizontal separator line.
  TablePrinter& separator();

  /// Render to a stream with column alignment and borders.
  void print(std::ostream& os) const;

  /// Render as a GitHub-flavoured markdown table (title becomes a bold
  /// paragraph, separator rows are dropped, pipes in cells escaped) —
  /// the shape $GITHUB_STEP_SUMMARY renders.
  void print_markdown(std::ostream& os) const;

  /// Write header + rows as CSV (separators skipped).
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Format helpers used throughout bench output.
std::string fmt_double(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 1);
std::string fmt_count(long long v);  ///< thousands separators: 12,594,374

}  // namespace tamp
