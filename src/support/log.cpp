#include "support/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "obs/trace.hpp"

namespace tamp {

namespace {

LogLevel initial_threshold() {
  if (const char* env = std::getenv("TAMP_LOG_LEVEL"); env != nullptr) {
    if (const auto level = parse_log_level(env); level.has_value())
      return *level;
    std::fprintf(stderr, "[tamp warn ] unknown TAMP_LOG_LEVEL '%s' ignored\n",
                 env);
  }
  return LogLevel::warn;
}

std::atomic<LogLevel> g_threshold{initial_threshold()};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "debug";
    case LogLevel::info: return "info ";
    case LogLevel::warn: return "warn ";
    case LogLevel::error: return "error";
    case LogLevel::off: return "off  ";
  }
  return "?";
}

/// ISO-8601 UTC wall-clock timestamp with millisecond resolution,
/// e.g. 2026-02-14T09:31:05.123Z.
void format_timestamp(char (&buf)[32]) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &secs);
#else
  gmtime_r(&secs, &tm);
#endif
  char date[24];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf, sizeof(buf), "%s.%03dZ", date, static_cast<int>(ms));
}

}  // namespace

std::optional<LogLevel> parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::debug;
  if (name == "info") return LogLevel::info;
  if (name == "warn") return LogLevel::warn;
  if (name == "error") return LogLevel::error;
  if (name == "off") return LogLevel::off;
  return std::nullopt;
}

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  char stamp[32];
  format_timestamp(stamp);
  const std::uint32_t tid = obs::current_thread_id();
  {
    const std::lock_guard<std::mutex> lock(g_emit_mutex);
    std::fprintf(stderr, "[%s tamp %s t%u] %s\n", stamp, level_name(level),
                 tid, message.c_str());
  }
  // Mirror warnings/errors onto the trace timeline so they are visible in
  // context next to the spans that produced them.
  if (level >= LogLevel::warn && level < LogLevel::off) {
    obs::TraceSession& session = obs::TraceSession::instance();
    if (session.enabled())
      session.record_instant(level == LogLevel::warn ? "log/warn" : "log/error",
                             message);
  }
}
}  // namespace detail

}  // namespace tamp
