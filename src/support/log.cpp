#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tamp {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::warn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "debug";
    case LogLevel::info: return "info ";
    case LogLevel::warn: return "warn ";
    case LogLevel::error: return "error";
    case LogLevel::off: return "off  ";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[tamp %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace tamp
