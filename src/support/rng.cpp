#include "support/rng.hpp"

#include <numeric>

namespace tamp {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // Avoid the all-zero state (cannot occur after splitmix64 of any seed in
  // practice, but the guard costs nothing).
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Rng Rng::split() {
  Rng child(0);
  child.state_ = {(*this)(), (*this)(), (*this)(), (*this)()};
  if ((child.state_[0] | child.state_[1] | child.state_[2] |
       child.state_[3]) == 0)
    child.state_[0] = 1;
  return child;
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t sa = a;
  std::uint64_t sb = b;
  std::uint64_t x = seed ^ splitmix64(sa);
  x = splitmix64(x);
  x ^= splitmix64(sb);
  return splitmix64(x);
}

std::vector<index_t> random_permutation(index_t n, Rng& rng) {
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  rng.shuffle(perm);
  return perm;
}

}  // namespace tamp
