// Fixed-width double packs — the data-parallel vocabulary the solver
// SIMD kernels are written in (solver/simd_kernels_impl.hpp).
//
// Pack<W> holds W doubles and offers exactly the operations the flux and
// gather kernels need: unit-stride and strided loads/stores, indexed
// gathers (with an index stride, for the CSR uniform-degree fast path),
// lanewise arithmetic, max, sqrt, a >=-mask with select, and a
// horizontal sum (diagnostics only — never on the physics path, so no
// kernel result depends on a cross-lane reduction order).
//
// Three implementations, chosen per translation unit by the ISA macros
// the TU was compiled with:
//   * hand-written AVX2 (`__m256d`, W=4) and SSE2 (`__m128d`, W=2)
//     intrinsic specialisations;
//   * a portable generic built on std::experimental::simd where the
//     standard library ships it;
//   * a plain-array fallback everywhere else.
//
// Everything lives in an anonymous namespace ON PURPOSE: the per-width
// kernel TUs (solver/simd_kernels_w2.cpp / _w4.cpp) are compiled with
// different -m flags, so the same Pack<4> must be allowed to have an
// AVX2 body in one TU and a portable body in another. Internal linkage
// gives each TU its own copy and keeps the linker from COMDAT-merging
// an AVX2 instantiation into baseline code (the Highway per-target
// trick, without the macro machinery). Include this header only from
// TUs that instantiate kernels.
//
// Lanewise-bitwise contract: every operation is elementwise IEEE-754
// (add/sub/mul/div/sqrt are correctly rounded; max matches
// `(a<b)?b:a` for non-NaN inputs; >= is an ordered, quiet compare), so
// a kernel transcribed lane-by-lane from a scalar expression tree
// produces bitwise the scalar results for finite data. NaN propagation
// through max may differ between tiers — the one documented divergence.
#pragma once

#include <cstddef>

#include "support/types.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

#if defined(__has_include)
#if __has_include(<experimental/simd>) && !defined(TAMP_SIMD_NO_EXPSIMD)
#define TAMP_SIMD_HAVE_EXPSIMD 1
#include <experimental/simd>
#endif
#endif

namespace tamp::simd {
namespace {  // NOLINT — internal linkage per TU, see file header

/// Primary template: portable W-lane pack.
template <int W>
struct Pack {
#if defined(TAMP_SIMD_HAVE_EXPSIMD)
  using vec_t = std::experimental::fixed_size_simd<double, W>;
  using mask_t = typename vec_t::mask_type;
  vec_t v;

  static Pack load(const double* p) {
    return {vec_t(p, std::experimental::element_aligned)};
  }
  static Pack load_strided(const double* p, std::ptrdiff_t stride) {
    return {vec_t([&](auto i) { return p[static_cast<std::ptrdiff_t>(i) * stride]; })};
  }
  static Pack gather(const double* base, const index_t* idx,
                     std::ptrdiff_t idx_stride = 1) {
    return {vec_t([&](auto i) {
      return base[idx[static_cast<std::ptrdiff_t>(i) * idx_stride]];
    })};
  }
  static Pack broadcast(double x) { return {vec_t(x)}; }
  void store(double* p) const {
    v.copy_to(p, std::experimental::element_aligned);
  }
  double lane(int i) const { return v[i]; }
  double hsum() const {
    double s = v[0];
    for (int i = 1; i < W; ++i) s += v[i];
    return s;
  }
  friend Pack operator+(Pack a, Pack b) { return {a.v + b.v}; }
  friend Pack operator-(Pack a, Pack b) { return {a.v - b.v}; }
  friend Pack operator*(Pack a, Pack b) { return {a.v * b.v}; }
  friend Pack operator/(Pack a, Pack b) { return {a.v / b.v}; }
  friend Pack max(Pack a, Pack b) {
    return {std::experimental::max(a.v, b.v)};
  }
  friend Pack sqrt(Pack a) { return {std::experimental::sqrt(a.v)}; }
  friend mask_t ge(Pack a, Pack b) { return a.v >= b.v; }
  static Pack select(const mask_t& m, Pack a, Pack b) {
    vec_t r = b.v;
    std::experimental::where(m, r) = a.v;
    return {r};
  }
#else
  using mask_t = bool[W];  // avoided below; see array fallback
  double v[W];

  static Pack load(const double* p) {
    Pack r;
    for (int i = 0; i < W; ++i) r.v[i] = p[i];
    return r;
  }
  static Pack load_strided(const double* p, std::ptrdiff_t stride) {
    Pack r;
    for (int i = 0; i < W; ++i) r.v[i] = p[i * stride];
    return r;
  }
  static Pack gather(const double* base, const index_t* idx,
                     std::ptrdiff_t idx_stride = 1) {
    Pack r;
    for (int i = 0; i < W; ++i) r.v[i] = base[idx[i * idx_stride]];
    return r;
  }
  static Pack broadcast(double x) {
    Pack r;
    for (int i = 0; i < W; ++i) r.v[i] = x;
    return r;
  }
  void store(double* p) const {
    for (int i = 0; i < W; ++i) p[i] = v[i];
  }
  double lane(int i) const { return v[i]; }
  double hsum() const {
    double s = v[0];
    for (int i = 1; i < W; ++i) s += v[i];
    return s;
  }
  friend Pack operator+(Pack a, Pack b) {
    for (int i = 0; i < W; ++i) a.v[i] += b.v[i];
    return a;
  }
  friend Pack operator-(Pack a, Pack b) {
    for (int i = 0; i < W; ++i) a.v[i] -= b.v[i];
    return a;
  }
  friend Pack operator*(Pack a, Pack b) {
    for (int i = 0; i < W; ++i) a.v[i] *= b.v[i];
    return a;
  }
  friend Pack operator/(Pack a, Pack b) {
    for (int i = 0; i < W; ++i) a.v[i] /= b.v[i];
    return a;
  }
  friend Pack max(Pack a, Pack b) {
    for (int i = 0; i < W; ++i) a.v[i] = a.v[i] < b.v[i] ? b.v[i] : a.v[i];
    return a;
  }
  friend Pack sqrt(Pack a) {
    for (int i = 0; i < W; ++i) a.v[i] = __builtin_sqrt(a.v[i]);
    return a;
  }
  struct Mask {
    bool m[W];
  };
  friend Mask ge(Pack a, Pack b) {
    Mask r;
    for (int i = 0; i < W; ++i) r.m[i] = a.v[i] >= b.v[i];
    return r;
  }
  static Pack select(const Mask& m, Pack a, Pack b) {
    for (int i = 0; i < W; ++i)
      if (!m.m[i]) a.v[i] = b.v[i];
    return a;
  }
#endif
};

/// One-lane pack: the tail/remainder path. Written with plain scalar
/// ops so remainder objects get bit-for-bit the scalar kernel's math.
template <>
struct Pack<1> {
  using mask_t = bool;
  double v;

  static Pack load(const double* p) { return {*p}; }
  static Pack load_strided(const double* p, std::ptrdiff_t) { return {*p}; }
  static Pack gather(const double* base, const index_t* idx,
                     std::ptrdiff_t = 1) {
    return {base[idx[0]]};
  }
  static Pack broadcast(double x) { return {x}; }
  void store(double* p) const { *p = v; }
  double lane(int) const { return v; }
  double hsum() const { return v; }
  friend Pack operator+(Pack a, Pack b) { return {a.v + b.v}; }
  friend Pack operator-(Pack a, Pack b) { return {a.v - b.v}; }
  friend Pack operator*(Pack a, Pack b) { return {a.v * b.v}; }
  friend Pack operator/(Pack a, Pack b) { return {a.v / b.v}; }
  friend Pack max(Pack a, Pack b) { return {a.v < b.v ? b.v : a.v}; }
  friend Pack sqrt(Pack a) { return {__builtin_sqrt(a.v)}; }
  friend mask_t ge(Pack a, Pack b) { return a.v >= b.v; }
  static Pack select(mask_t m, Pack a, Pack b) { return m ? a : b; }
};

#if defined(__SSE2__)
/// Hand-written SSE2 two-lane pack.
template <>
struct Pack<2> {
  using mask_t = __m128d;
  __m128d v;

  static Pack load(const double* p) { return {_mm_loadu_pd(p)}; }
  static Pack load_strided(const double* p, std::ptrdiff_t stride) {
    return {_mm_set_pd(p[stride], p[0])};
  }
  static Pack gather(const double* base, const index_t* idx,
                     std::ptrdiff_t idx_stride = 1) {
    return {_mm_set_pd(base[idx[idx_stride]], base[idx[0]])};
  }
  static Pack broadcast(double x) { return {_mm_set1_pd(x)}; }
  void store(double* p) const { _mm_storeu_pd(p, v); }
  double lane(int i) const {
    double t[2];
    _mm_storeu_pd(t, v);
    return t[i];
  }
  double hsum() const {
    double t[2];
    _mm_storeu_pd(t, v);
    return t[0] + t[1];
  }
  friend Pack operator+(Pack a, Pack b) { return {_mm_add_pd(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm_div_pd(a.v, b.v)}; }
  friend Pack max(Pack a, Pack b) { return {_mm_max_pd(a.v, b.v)}; }
  friend Pack sqrt(Pack a) { return {_mm_sqrt_pd(a.v)}; }
  friend mask_t ge(Pack a, Pack b) { return _mm_cmpge_pd(a.v, b.v); }
  static Pack select(mask_t m, Pack a, Pack b) {
    return {_mm_or_pd(_mm_and_pd(m, a.v), _mm_andnot_pd(m, b.v))};
  }
};
#endif  // __SSE2__

#if defined(__AVX2__)
/// Hand-written AVX2 four-lane pack (hardware gathers for the
/// index-coupled loads — the flux kernels' cell-state reads and the
/// update kernel's accumulator pulls).
template <>
struct Pack<4> {
  using mask_t = __m256d;
  __m256d v;

  static Pack load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static Pack load_strided(const double* p, std::ptrdiff_t stride) {
    return {_mm256_set_pd(p[3 * stride], p[2 * stride], p[stride], p[0])};
  }
  static Pack gather(const double* base, const index_t* idx,
                     std::ptrdiff_t idx_stride = 1) {
    const __m128i vi =
        idx_stride == 1
            ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx))
            : _mm_set_epi32(idx[3 * idx_stride], idx[2 * idx_stride],
                            idx[idx_stride], idx[0]);
    return {_mm256_i32gather_pd(base, vi, 8)};
  }
  static Pack broadcast(double x) { return {_mm256_set1_pd(x)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  double lane(int i) const {
    double t[4];
    _mm256_storeu_pd(t, v);
    return t[i];
  }
  double hsum() const {
    double t[4];
    _mm256_storeu_pd(t, v);
    return ((t[0] + t[1]) + t[2]) + t[3];
  }
  friend Pack operator+(Pack a, Pack b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend Pack operator/(Pack a, Pack b) { return {_mm256_div_pd(a.v, b.v)}; }
  friend Pack max(Pack a, Pack b) { return {_mm256_max_pd(a.v, b.v)}; }
  friend Pack sqrt(Pack a) { return {_mm256_sqrt_pd(a.v)}; }
  friend mask_t ge(Pack a, Pack b) {
    return _mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ);
  }
  static Pack select(mask_t m, Pack a, Pack b) {
    return {_mm256_blendv_pd(b.v, a.v, m)};
  }
};
#endif  // __AVX2__

}  // namespace
}  // namespace tamp::simd
