#include "support/simd.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "support/check.hpp"

namespace tamp::simd {

namespace {

#if defined(__x86_64__) || defined(__i386__)
inline constexpr bool kX86 = true;
#else
inline constexpr bool kX86 = false;
#endif

bool cpu_has(Level level) {
#if defined(__x86_64__) || defined(__i386__)
  switch (level) {
    case Level::scalar:
      return true;
    case Level::sse2:
      return __builtin_cpu_supports("sse2");
    case Level::avx2:
      return __builtin_cpu_supports("avx2");
  }
#else
  (void)level;
#endif
  return !kX86;
}

/// Process default request; inherit = "unset, fall back to TAMP_SIMD".
std::atomic<Request> g_default_request{Request::inherit};

}  // namespace

int lanes(Level level) {
  switch (level) {
    case Level::scalar:
      return 1;
    case Level::sse2:
      return 2;
    case Level::avx2:
      return 4;
  }
  return 1;
}

const char* to_string(Level level) {
  switch (level) {
    case Level::scalar:
      return "scalar";
    case Level::sse2:
      return "sse2";
    case Level::avx2:
      return "avx2";
  }
  return "scalar";
}

Request parse_request(std::string_view text) {
  if (text.empty()) return Request::inherit;
  if (text == "auto") return Request::auto_;
  if (text == "scalar") return Request::scalar;
  if (text == "sse2") return Request::sse2;
  if (text == "avx2") return Request::avx2;
  TAMP_EXPECTS(false, "SIMD level must be auto|avx2|sse2|scalar");
  return Request::auto_;
}

Level detect_native() {
  if (cpu_has(Level::avx2) && kX86) return Level::avx2;
  if (cpu_has(Level::sse2) && kX86) return Level::sse2;
  return Level::scalar;
}

bool level_runnable(Level level) {
  if (level == Level::scalar) return true;
  if (!kX86) return true;  // per-width TUs are portable off x86
#if !defined(TAMP_SIMD_MAVX2)
  // The 4-lane TU was built without -mavx2 (compiler too old / flag
  // rejected): it holds portable packs and runs anywhere SSE2 does.
  if (level == Level::avx2) return cpu_has(Level::sse2);
#endif
  return cpu_has(level);
}

Request env_request() {
  const char* env = std::getenv("TAMP_SIMD");
  if (env == nullptr || *env == '\0') return Request::auto_;
  const Request request = parse_request(env);
  return request == Request::inherit ? Request::auto_ : request;
}

Request default_request() {
  const Request request = g_default_request.load(std::memory_order_relaxed);
  return request == Request::inherit ? env_request() : request;
}

void set_default_request(Request request) {
  g_default_request.store(request, std::memory_order_relaxed);
}

Level resolve(Request request) {
  if (request == Request::inherit) request = default_request();
  Level level = Level::scalar;
  switch (request) {
    case Request::inherit:
    case Request::auto_:
      level = detect_native();
      break;
    case Request::scalar:
      return Level::scalar;
    case Request::sse2:
      level = Level::sse2;
      break;
    case Request::avx2:
      level = Level::avx2;
      break;
  }
  while (level != Level::scalar && !level_runnable(level))
    level = static_cast<Level>(static_cast<int>(level) - 1);
  return level;
}

std::vector<Level> runnable_levels() {
  std::vector<Level> levels{Level::scalar};
  for (const Level level : {Level::sse2, Level::avx2})
    if (level_runnable(level)) levels.push_back(level);
  return levels;
}

std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<std::uint64_t>::max();
  if (a == b) return 0;  // covers +0 vs -0
  // Map the IEEE bit patterns onto a scale monotone in value: negative
  // doubles flip (so more-negative sorts lower), non-negatives shift up.
  const auto ordered = [](double x) {
    const auto bits = std::bit_cast<std::uint64_t>(x);
    constexpr std::uint64_t sign_bit = 0x8000000000000000ull;
    return (bits & sign_bit) != 0 ? ~bits : bits | sign_bit;
  };
  const std::uint64_t ua = ordered(a);
  const std::uint64_t ub = ordered(b);
  return ua > ub ? ua - ub : ub - ua;
}

}  // namespace tamp::simd
