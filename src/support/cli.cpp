#include "support/cli.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <sstream>
#include <string_view>

#include "support/check.hpp"

namespace tamp {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

CliParser& CliParser::option(const std::string& name,
                             const std::string& default_value,
                             const std::string& help) {
  TAMP_EXPECTS(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{default_value, help, false};
  order_.push_back(name);
  return *this;
}

CliParser& CliParser::flag(const std::string& name, const std::string& help) {
  TAMP_EXPECTS(!options_.count(name), "duplicate flag: " + name);
  options_[name] = Option{"false", help, true};
  order_.push_back(name);
  return *this;
}

CliParser& CliParser::positional(const std::string& name,
                                 const std::string& help) {
  TAMP_EXPECTS(!options_.count(name), "positional clashes with option: " + name);
  for (const auto& [n, h] : positionals_)
    TAMP_EXPECTS(n != name, "duplicate positional: " + name);
  positionals_.emplace_back(name, help);
  return *this;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (const auto& [name, opt] : options_) values_[name] = opt.default_value;
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      TAMP_EXPECTS(next_positional < positionals_.size(),
                   "unexpected argument: " + arg);
      values_[positionals_[next_positional++].first] = arg;
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    TAMP_EXPECTS(it != options_.end(), "unknown option: --" + arg);
    if (it->second.is_flag) {
      values_[arg] = has_value ? value : "true";
    } else if (has_value) {
      values_[arg] = value;
    } else {
      TAMP_EXPECTS(i + 1 < argc, "option --" + arg + " expects a value");
      values_[arg] = argv[++i];
    }
  }
  TAMP_EXPECTS(next_positional == positionals_.size(),
               "missing argument: " +
                   (positionals_.empty()
                        ? std::string{}
                        : positionals_[next_positional].first));
  return true;
}

const std::string& CliParser::get(const std::string& name) const {
  auto it = values_.find(name);
  TAMP_EXPECTS(it != values_.end(), "option not registered: " + name);
  return it->second;
}

namespace {

/// std::from_chars rejects an explicit '+' sign; accept it here (it is
/// common on the command line) by skipping it when a digit or '.' follows.
std::string_view strip_plus(const std::string& v) {
  std::string_view sv = v;
  if (sv.size() > 1 && sv.front() == '+' &&
      (std::isdigit(static_cast<unsigned char>(sv[1])) != 0 || sv[1] == '.'))
    sv.remove_prefix(1);
  return sv;
}

}  // namespace

long long CliParser::get_int(const std::string& name) const {
  // from_chars, unlike stoll, consumes no leading whitespace, never throws
  // out_of_range, and makes trailing garbage ("4x") an explicit error.
  const std::string& raw = get(name);
  const std::string_view v = strip_plus(raw);
  long long out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec == std::errc::result_out_of_range)
    throw precondition_error("option --" + name + " value out of range: '" +
                             raw + "'");
  if (ec != std::errc{} || ptr != v.data() + v.size())
    throw precondition_error("option --" + name + " expects an integer, got '" +
                             raw + "'");
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string& raw = get(name);
  const std::string_view v = strip_plus(raw);
  double out = 0.0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec == std::errc::result_out_of_range)
    throw precondition_error("option --" + name + " value out of range: '" +
                             raw + "'");
  if (ec != std::errc{} || ptr != v.data() + v.size())
    throw precondition_error("option --" + name + " expects a number, got '" +
                             raw + "'");
  return out;
}

bool CliParser::get_flag(const std::string& name) const {
  const std::string& v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string CliParser::help() const {
  std::ostringstream os;
  os << description_ << '\n';
  if (!positionals_.empty()) {
    os << "\nArguments:\n";
    for (const auto& [name, help_text] : positionals_)
      os << "  <" << name << ">\n      " << help_text << '\n';
  }
  os << "\nOptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    if (!opt.is_flag) os << " <value>";
    os << "\n      " << opt.help;
    if (!opt.is_flag) os << " (default: " << opt.default_value << ')';
    os << '\n';
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

}  // namespace tamp
