// Minimal SVG document writer, sufficient for Gantt traces and line plots.
#pragma once

#include <string>
#include <vector>

namespace tamp {

/// Accumulates SVG elements and serialises them into a standalone file.
class SvgWriter {
public:
  SvgWriter(double width, double height);

  void rect(double x, double y, double w, double h, const std::string& fill,
            double opacity = 1.0, const std::string& tooltip = {});
  void line(double x1, double y1, double x2, double y2,
            const std::string& stroke, double stroke_width = 1.0);
  void text(double x, double y, const std::string& content,
            double font_size = 10.0, const std::string& anchor = "start",
            const std::string& fill = "#000000");
  void polyline(const std::vector<std::pair<double, double>>& points,
                const std::string& stroke, double stroke_width = 1.5);
  void circle(double cx, double cy, double r, const std::string& fill);

  /// Serialise the accumulated document.
  [[nodiscard]] std::string str() const;

  /// Write the document to a file; throws runtime_failure on I/O error.
  void save(const std::string& path) const;

  [[nodiscard]] double width() const { return width_; }
  [[nodiscard]] double height() const { return height_; }

  /// Escape &, <, >, " for embedding in attributes / text nodes.
  static std::string escape(const std::string& s);

private:
  double width_;
  double height_;
  std::vector<std::string> elements_;
};

/// Categorical palette used for subiteration colour-coding in traces
/// (index wraps around).
const std::string& trace_color(std::size_t index);

}  // namespace tamp
