#include "support/svg.hpp"

#include <array>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace tamp {

SvgWriter::SvgWriter(double width, double height)
    : width_(width), height_(height) {
  TAMP_EXPECTS(width > 0 && height > 0, "SVG dimensions must be positive");
}

std::string SvgWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void SvgWriter::rect(double x, double y, double w, double h,
                     const std::string& fill, double opacity,
                     const std::string& tooltip) {
  std::ostringstream os;
  os << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
     << "\" height=\"" << h << "\" fill=\"" << escape(fill) << '"';
  if (opacity < 1.0) os << " fill-opacity=\"" << opacity << '"';
  if (tooltip.empty()) {
    os << "/>";
  } else {
    os << "><title>" << escape(tooltip) << "</title></rect>";
  }
  elements_.push_back(os.str());
}

void SvgWriter::line(double x1, double y1, double x2, double y2,
                     const std::string& stroke, double stroke_width) {
  std::ostringstream os;
  os << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2
     << "\" y2=\"" << y2 << "\" stroke=\"" << escape(stroke)
     << "\" stroke-width=\"" << stroke_width << "\"/>";
  elements_.push_back(os.str());
}

void SvgWriter::text(double x, double y, const std::string& content,
                     double font_size, const std::string& anchor,
                     const std::string& fill) {
  std::ostringstream os;
  os << "<text x=\"" << x << "\" y=\"" << y << "\" font-size=\"" << font_size
     << "\" font-family=\"monospace\" text-anchor=\"" << escape(anchor)
     << "\" fill=\"" << escape(fill) << "\">" << escape(content) << "</text>";
  elements_.push_back(os.str());
}

void SvgWriter::polyline(const std::vector<std::pair<double, double>>& points,
                         const std::string& stroke, double stroke_width) {
  std::ostringstream os;
  os << "<polyline fill=\"none\" stroke=\"" << escape(stroke)
     << "\" stroke-width=\"" << stroke_width << "\" points=\"";
  for (const auto& [x, y] : points) os << x << ',' << y << ' ';
  os << "\"/>";
  elements_.push_back(os.str());
}

void SvgWriter::circle(double cx, double cy, double r,
                       const std::string& fill) {
  std::ostringstream os;
  os << "<circle cx=\"" << cx << "\" cy=\"" << cy << "\" r=\"" << r
     << "\" fill=\"" << escape(fill) << "\"/>";
  elements_.push_back(os.str());
}

std::string SvgWriter::str() const {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
     << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
     << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_ << ' '
     << height_ << "\">\n";
  for (const auto& e : elements_) os << "  " << e << '\n';
  os << "</svg>\n";
  return os.str();
}

void SvgWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) throw runtime_failure("cannot open SVG output: " + path);
  out << str();
}

const std::string& trace_color(std::size_t index) {
  // Colour-blind-friendly categorical palette (Okabe-Ito derived).
  static const std::array<std::string, 8> palette = {
      "#0072b2", "#e69f00", "#d55e00", "#009e73",
      "#cc79a7", "#56b4e9", "#f0e442", "#999999"};
  return palette[index % palette.size()];
}

}  // namespace tamp
