// Gantt-chart rendering of execution traces (SVG and ASCII).
//
// The paper's evaluation is largely visual (Figs 5, 6, 9, 12, 13 are
// traces). GanttChart renders equivalent charts from any source of
// {resource, start, end, category} spans — FLUSIM schedules or the real
// runtime's worker logs.
#pragma once

#include <string>
#include <vector>

#include "support/types.hpp"

namespace tamp {

/// One executed task span on one resource row.
struct GanttSpan {
  int resource = 0;          ///< row index (worker or aggregated process)
  simtime_t start = 0;       ///< span start (work units or seconds)
  simtime_t end = 0;         ///< span end
  int category = 0;          ///< colour class (the paper uses subiteration)
  std::string label;         ///< tooltip text
};

/// A complete trace: named rows + spans + a horizon.
struct GanttTrace {
  std::vector<std::string> resource_names;
  std::vector<GanttSpan> spans;
  simtime_t makespan = 0;
  std::string title;

  /// Busy time per resource row.
  [[nodiscard]] std::vector<simtime_t> busy_per_resource() const;

  /// Fraction of (resources × makespan) spent busy, in [0,1].
  [[nodiscard]] double occupancy() const;
};

/// Render the trace as an SVG file (one row per resource, colour by
/// category, subiteration legend).
void write_gantt_svg(const GanttTrace& trace, const std::string& path,
                     double pixel_width = 1200.0);

/// Render a coarse ASCII view (for terminal inspection); each row is one
/// resource, each column a time bucket, the glyph encodes the dominant
/// category in that bucket ('.': idle).
std::string render_gantt_ascii(const GanttTrace& trace, int columns = 100);

/// Stack two traces vertically into one SVG for side-by-side comparison
/// (the paper's Fig 9/12/13 layout: strategy A on top, B below).
void write_gantt_comparison_svg(const GanttTrace& top,
                                const GanttTrace& bottom,
                                const std::string& path,
                                double pixel_width = 1200.0);

}  // namespace tamp
