// FNV-1a hashing, shared by everything that fingerprints state: the
// pipeline's IterationSnapshot seal, the task-graph patcher's
// equivalence oracle, and the decomposition cache's keys. One
// implementation so a snapshot fingerprint and a cache key can never
// drift apart on byte order or constants.
//
// FNV-1a is deliberate: the fingerprints are integrity seals against
// accidental mutation (a leaked mutable reference, a stale patch), not
// against an adversary — a fast, dependency-free, byte-order-stable
// fold is exactly what is needed, and the constants are pinned by unit
// tests against the published FNV test vectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>
#include <vector>

namespace tamp {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

/// Fold `n` raw bytes into the running hash `h`.
inline void fnv1a_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
}

/// Fold `n` trivially-copyable values into the running hash `h`.
template <typename T>
inline void fnv1a_span(std::uint64_t& h, const T* data, std::size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  fnv1a_bytes(h, data, n * sizeof(T));
}

/// One-shot hash of a byte string (the classic FNV-1a of a string).
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = kFnv1aOffset;
  fnv1a_bytes(h, s.data(), s.size());
  return h;
}

/// Builder for multi-field fingerprints: chain add() calls, read value().
/// Field order matters (by design — a fingerprint names a layout).
class Fnv1a {
public:
  Fnv1a() = default;

  template <typename T>
  Fnv1a& add(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    fnv1a_span(h_, &v, 1);
    return *this;
  }
  template <typename T>
  Fnv1a& add_span(const T* data, std::size_t n) {
    fnv1a_span(h_, data, n);
    return *this;
  }
  template <typename T>
  Fnv1a& add_vector(const std::vector<T>& v) {
    // Length-prefixed so (ab, c) and (a, bc) never collide.
    const auto n = static_cast<std::uint64_t>(v.size());
    fnv1a_span(h_, &n, 1);
    fnv1a_span(h_, v.data(), v.size());
    return *this;
  }

  [[nodiscard]] std::uint64_t value() const { return h_; }

private:
  std::uint64_t h_ = kFnv1aOffset;
};

}  // namespace tamp
