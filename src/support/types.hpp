// Fundamental index and scalar typedefs shared across TAMP modules.
#pragma once

#include <cstdint>
#include <limits>

namespace tamp {

/// Index of a mesh cell / graph vertex. 32-bit indices keep the CSR
/// structures compact; the paper's largest mesh (12.6M cells) fits with
/// two orders of magnitude of headroom.
using index_t = std::int32_t;

/// Index of a mesh face / graph edge slot.
using eindex_t = std::int64_t;

/// Vertex / constraint weight. 64-bit: sums over 12M cells × 2^τmax
/// exceed 32 bits.
using weight_t = std::int64_t;

/// Temporal level of a cell or face (0 = finest time step).
using level_t = std::int8_t;

/// Partition / domain / process identifier.
using part_t = std::int32_t;

/// Simulated time (abstract work units; 1 unit = one object update).
using simtime_t = double;

inline constexpr index_t invalid_index = -1;
inline constexpr part_t invalid_part = -1;

}  // namespace tamp
