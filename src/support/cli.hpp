// Tiny command-line option parser for bench and example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` forms,
// generates --help text, and validates that every argument was consumed.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace tamp {

/// Declarative CLI option set. Register options, then parse(argc, argv).
class CliParser {
public:
  explicit CliParser(std::string program_description);

  /// Register an option with a default value (all values held as strings).
  CliParser& option(const std::string& name, const std::string& default_value,
                    const std::string& help);

  /// Register a boolean flag (defaults to false).
  CliParser& flag(const std::string& name, const std::string& help);

  /// Register a required positional argument. Positionals are filled in
  /// registration order by the bare (non `--`) arguments and retrieved
  /// with get() like any option; parse() throws when one is missing.
  CliParser& positional(const std::string& name, const std::string& help);

  /// Parse. Returns false (after printing help) when --help is present.
  /// Throws precondition_error for unknown or malformed options.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Render the --help text.
  [[nodiscard]] std::string help() const;

private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };
  std::string description_;
  std::vector<std::string> order_;
  std::vector<std::pair<std::string, std::string>> positionals_;  ///< name, help
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
};

}  // namespace tamp
