#include "support/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace tamp {

TablePrinter& TablePrinter::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

TablePrinter& TablePrinter::row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
  return *this;
}

TablePrinter& TablePrinter::separator() {
  rows_.push_back(Row{{}, true});
  return *this;
}

void TablePrinter::print(std::ostream& os) const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  if (ncols == 0) return;

  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = std::max(width[c], header_[c].size());
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      width[c] = std::max(width[c], r.cells[c].size());

  auto print_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < ncols; ++c)
      os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << std::setw(static_cast<int>(width[c])) << v << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  print_rule();
  if (!header_.empty()) {
    print_cells(header_);
    print_rule();
  }
  for (const auto& r : rows_) {
    if (r.is_separator)
      print_rule();
    else
      print_cells(r.cells);
  }
  print_rule();
}

void TablePrinter::print_markdown(std::ostream& os) const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  if (ncols == 0) return;

  auto write_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << ' ';
      for (char ch : v) {
        if (ch == '|') os << '\\';
        os << ch;
      }
      os << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << "**" << title_ << "**\n\n";
  write_cells(header_.empty() ? std::vector<std::string>(ncols) : header_);
  os << '|';
  for (std::size_t c = 0; c < ncols; ++c) os << " --- |";
  os << '\n';
  for (const auto& r : rows_)
    if (!r.is_separator) write_cells(r.cells);
  os << '\n';
}

void TablePrinter::write_csv(const std::string& path) const {
  std::ofstream out(path);
  TAMP_EXPECTS(out.good(), "cannot open CSV output file: " + path);
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      const bool quote =
          cells[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        out << '"';
        for (char ch : cells[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cells[c];
      }
    }
    out << '\n';
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& r : rows_)
    if (!r.is_separator) write_row(r.cells);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

std::string fmt_count(long long v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run && run % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++run;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace tamp
