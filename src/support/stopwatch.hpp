// Wall-clock stopwatch for measuring phases of the pipeline.
#pragma once

#include <chrono>

namespace tamp {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart the reference point.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tamp
