// Wall-clock stopwatch for measuring phases of the pipeline.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.hpp"

namespace tamp {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart the reference point.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// RAII timer reporting elapsed seconds into a metrics histogram — the
/// structured replacement for `Stopwatch sw; ...; use(sw.seconds())`.
/// Records exactly once: either explicitly via stop() (which also returns
/// the elapsed seconds, for call sites that consume the value) or on
/// destruction if stop() was never called.
class ScopedTimer {
public:
  explicit ScopedTimer(obs::Histogram& sink) : sink_(&sink) {}
  explicit ScopedTimer(const std::string& metric_name)
      : sink_(&obs::histogram(metric_name)) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (!stopped_) sink_->record(watch_.seconds());
  }

  /// Record the elapsed time now and return it; further calls and the
  /// destructor become no-ops.
  double stop() {
    const double elapsed = watch_.seconds();
    if (!stopped_) {
      stopped_ = true;
      sink_->record(elapsed);
    }
    return elapsed;
  }

  /// Elapsed seconds so far, without recording.
  [[nodiscard]] double seconds() const { return watch_.seconds(); }

private:
  obs::Histogram* sink_;
  Stopwatch watch_;
  bool stopped_ = false;
};

}  // namespace tamp
