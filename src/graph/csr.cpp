#include "graph/csr.hpp"

#include <algorithm>
#include <numeric>

namespace tamp::graph {

Csr::Csr(index_t nvtx, int ncon, std::vector<eindex_t> xadj,
         std::vector<index_t> adjncy, std::vector<weight_t> adjwgt,
         std::vector<weight_t> vwgt)
    : nvtx_(nvtx),
      ncon_(ncon),
      xadj_(std::move(xadj)),
      adjncy_(std::move(adjncy)),
      adjwgt_(std::move(adjwgt)),
      vwgt_(std::move(vwgt)) {
  TAMP_EXPECTS(nvtx_ >= 0, "negative vertex count");
  TAMP_EXPECTS(ncon_ >= 1, "at least one constraint required");
  TAMP_EXPECTS(xadj_.size() == static_cast<std::size_t>(nvtx_) + 1,
               "xadj must have nvtx+1 entries");
  TAMP_EXPECTS(adjwgt_.size() == adjncy_.size(),
               "adjwgt must align with adjncy");
  TAMP_EXPECTS(vwgt_.size() ==
                   static_cast<std::size_t>(nvtx_) * static_cast<std::size_t>(ncon_),
               "vwgt must have nvtx*ncon entries");
  TAMP_EXPECTS(xadj_.front() == 0 &&
                   xadj_.back() == static_cast<eindex_t>(adjncy_.size()),
               "xadj bounds inconsistent with adjncy");
}

std::vector<weight_t> Csr::total_weights() const {
  std::vector<weight_t> total(static_cast<std::size_t>(ncon_), 0);
  for (index_t v = 0; v < nvtx_; ++v) {
    const auto w = vertex_weights(v);
    for (int c = 0; c < ncon_; ++c) total[static_cast<std::size_t>(c)] += w[static_cast<std::size_t>(c)];
  }
  return total;
}

weight_t Csr::total_edge_weight() const {
  return std::accumulate(adjwgt_.begin(), adjwgt_.end(), weight_t{0}) / 2;
}

void Csr::validate() const {
  for (index_t v = 0; v < nvtx_; ++v) {
    TAMP_ENSURE(xadj_[static_cast<std::size_t>(v)] <=
                    xadj_[static_cast<std::size_t>(v) + 1],
                "xadj not monotone");
  }
  // Symmetry check: count (u,v) and (v,u) occurrences with weights.
  for (index_t u = 0; u < nvtx_; ++u) {
    const auto nbrs = neighbors(u);
    const auto wgts = edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const index_t v = nbrs[i];
      TAMP_ENSURE(v >= 0 && v < nvtx_, "neighbour index out of range");
      TAMP_ENSURE(v != u, "self-loop present");
      TAMP_ENSURE(wgts[i] > 0, "non-positive edge weight");
      // Find the reverse edge.
      const auto rn = neighbors(v);
      const auto rw = edge_weights(v);
      bool found = false;
      for (std::size_t j = 0; j < rn.size(); ++j) {
        if (rn[j] == u && rw[j] == wgts[i]) {
          found = true;
          break;
        }
      }
      TAMP_ENSURE(found, "missing or weight-mismatched reverse edge");
    }
  }
  for (index_t v = 0; v < nvtx_; ++v) {
    for (const weight_t w : vertex_weights(v))
      TAMP_ENSURE(w >= 0, "negative vertex weight");
  }
}

Csr induced_subgraph(const Csr& g, const std::vector<char>& mask,
                     std::vector<index_t>& old_to_new,
                     std::vector<index_t>& new_to_old) {
  const index_t n = g.num_vertices();
  TAMP_EXPECTS(mask.size() == static_cast<std::size_t>(n),
               "mask size must equal vertex count");
  old_to_new.assign(static_cast<std::size_t>(n), invalid_index);
  new_to_old.clear();
  for (index_t v = 0; v < n; ++v) {
    if (mask[static_cast<std::size_t>(v)]) {
      old_to_new[static_cast<std::size_t>(v)] =
          static_cast<index_t>(new_to_old.size());
      new_to_old.push_back(v);
    }
  }
  const auto nsub = static_cast<index_t>(new_to_old.size());
  const int ncon = g.num_constraints();

  std::vector<eindex_t> xadj(static_cast<std::size_t>(nsub) + 1, 0);
  std::vector<index_t> adjncy;
  std::vector<weight_t> adjwgt;
  std::vector<weight_t> vwgt;
  vwgt.reserve(static_cast<std::size_t>(nsub) * static_cast<std::size_t>(ncon));

  for (index_t nv = 0; nv < nsub; ++nv) {
    const index_t ov = new_to_old[static_cast<std::size_t>(nv)];
    const auto nbrs = g.neighbors(ov);
    const auto wgts = g.edge_weights(ov);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const index_t mapped = old_to_new[static_cast<std::size_t>(nbrs[i])];
      if (mapped != invalid_index) {
        adjncy.push_back(mapped);
        adjwgt.push_back(wgts[i]);
      }
    }
    xadj[static_cast<std::size_t>(nv) + 1] =
        static_cast<eindex_t>(adjncy.size());
    const auto w = g.vertex_weights(ov);
    vwgt.insert(vwgt.end(), w.begin(), w.end());
  }
  return Csr(nsub, ncon, std::move(xadj), std::move(adjncy), std::move(adjwgt),
             std::move(vwgt));
}

}  // namespace tamp::graph
