#include "graph/components.hpp"

#include <vector>

namespace tamp::graph {

index_t connected_components(const Csr& g, std::vector<index_t>& component) {
  const index_t n = g.num_vertices();
  component.assign(static_cast<std::size_t>(n), invalid_index);
  index_t ncomp = 0;
  std::vector<index_t> stack;
  for (index_t seed = 0; seed < n; ++seed) {
    if (component[static_cast<std::size_t>(seed)] != invalid_index) continue;
    component[static_cast<std::size_t>(seed)] = ncomp;
    stack.push_back(seed);
    while (!stack.empty()) {
      const index_t v = stack.back();
      stack.pop_back();
      for (const index_t u : g.neighbors(v)) {
        if (component[static_cast<std::size_t>(u)] == invalid_index) {
          component[static_cast<std::size_t>(u)] = ncomp;
          stack.push_back(u);
        }
      }
    }
    ++ncomp;
  }
  return ncomp;
}

bool is_connected(const Csr& g) {
  std::vector<index_t> component;
  return connected_components(g, component) <= 1;
}

std::vector<index_t> part_fragment_counts(const Csr& g,
                                          const std::vector<part_t>& part,
                                          part_t nparts) {
  const index_t n = g.num_vertices();
  TAMP_EXPECTS(part.size() == static_cast<std::size_t>(n),
               "partition vector size must equal vertex count");
  std::vector<index_t> fragments(static_cast<std::size_t>(nparts), 0);
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<index_t> stack;
  for (index_t seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    const part_t p = part[static_cast<std::size_t>(seed)];
    TAMP_EXPECTS(p >= 0 && p < nparts, "part id out of range");
    ++fragments[static_cast<std::size_t>(p)];
    visited[static_cast<std::size_t>(seed)] = 1;
    stack.push_back(seed);
    while (!stack.empty()) {
      const index_t v = stack.back();
      stack.pop_back();
      for (const index_t u : g.neighbors(v)) {
        if (!visited[static_cast<std::size_t>(u)] &&
            part[static_cast<std::size_t>(u)] == p) {
          visited[static_cast<std::size_t>(u)] = 1;
          stack.push_back(u);
        }
      }
    }
  }
  return fragments;
}

}  // namespace tamp::graph
