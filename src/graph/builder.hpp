// Incremental construction of CSR graphs from edge lists.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace tamp::graph {

/// Accumulates undirected edges and per-vertex weight vectors, then
/// compiles them into a validated Csr. Duplicate edges are merged by
/// summing their weights.
class Builder {
public:
  /// @param nvtx  number of vertices
  /// @param ncon  constraints per vertex (weights default to 1 each)
  Builder(index_t nvtx, int ncon = 1);

  /// Add an undirected edge {u, v} with the given weight. Self-loops are
  /// rejected. Duplicates are merged at build() time.
  void add_edge(index_t u, index_t v, weight_t weight = 1);

  /// Set the full weight vector of a vertex.
  void set_vertex_weights(index_t v, std::span<const weight_t> weights);

  /// Set one component of a vertex's weight vector.
  void set_vertex_weight(index_t v, int constraint, weight_t weight);

  /// Compile into CSR form. The builder is left empty afterwards.
  Csr build();

  [[nodiscard]] index_t num_vertices() const { return nvtx_; }

private:
  index_t nvtx_;
  int ncon_;
  std::vector<std::pair<index_t, index_t>> edges_;
  std::vector<weight_t> edge_weights_;
  std::vector<weight_t> vwgt_;
};

/// Convenience: build a 2D grid graph (nx × ny vertices, 4-neighbour),
/// unit weights — used by tests and partitioner microbenches.
Csr make_grid_graph(index_t nx, index_t ny, int ncon = 1);

}  // namespace tamp::graph
