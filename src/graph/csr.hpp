// Compressed-sparse-row graph with multi-constraint vertex weights.
//
// This is the partitioner's working representation, equivalent to the
// METIS input format the paper feeds: `vwgt` holds `ncon` weights per
// vertex (SC_OC uses ncon = 1 with operating costs; MC_TL uses
// ncon = #temporal levels with binary indicator vectors), `adjwgt` holds
// symmetric edge weights.
#pragma once

#include <span>
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace tamp::graph {

/// Undirected graph in CSR form. Both directions of every edge are
/// stored; invariants are verified by validate().
class Csr {
public:
  Csr() = default;

  /// Assemble from raw CSR arrays. ncon must divide vwgt.size().
  Csr(index_t nvtx, int ncon, std::vector<eindex_t> xadj,
      std::vector<index_t> adjncy, std::vector<weight_t> adjwgt,
      std::vector<weight_t> vwgt);

  [[nodiscard]] index_t num_vertices() const { return nvtx_; }
  [[nodiscard]] eindex_t num_edges() const {
    return static_cast<eindex_t>(adjncy_.size()) / 2;
  }
  [[nodiscard]] int num_constraints() const { return ncon_; }

  /// Neighbours of vertex v.
  [[nodiscard]] std::span<const index_t> neighbors(index_t v) const {
    TAMP_DBG_ASSERT(v >= 0 && v < nvtx_, "vertex out of range");
    const auto b = static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v)]);
    const auto e =
        static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v) + 1]);
    return {adjncy_.data() + b, e - b};
  }

  /// Edge weights aligned with neighbors(v).
  [[nodiscard]] std::span<const weight_t> edge_weights(index_t v) const {
    const auto b = static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v)]);
    const auto e =
        static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v) + 1]);
    return {adjwgt_.data() + b, e - b};
  }

  /// Weight vector (length ncon) of vertex v.
  [[nodiscard]] std::span<const weight_t> vertex_weights(index_t v) const {
    return {vwgt_.data() + static_cast<std::size_t>(v) * ncon_,
            static_cast<std::size_t>(ncon_)};
  }

  [[nodiscard]] index_t degree(index_t v) const {
    return static_cast<index_t>(xadj_[static_cast<std::size_t>(v) + 1] -
                                xadj_[static_cast<std::size_t>(v)]);
  }

  /// Sum of vertex weights, per constraint (length ncon).
  [[nodiscard]] std::vector<weight_t> total_weights() const;

  /// Sum of all edge weights (each undirected edge counted once).
  [[nodiscard]] weight_t total_edge_weight() const;

  /// Raw access for tight loops.
  [[nodiscard]] const std::vector<eindex_t>& xadj() const { return xadj_; }
  [[nodiscard]] const std::vector<index_t>& adjncy() const { return adjncy_; }
  [[nodiscard]] const std::vector<weight_t>& adjwgt() const { return adjwgt_; }
  [[nodiscard]] const std::vector<weight_t>& vwgt() const { return vwgt_; }

  /// Check structural invariants: sorted xadj, symmetric adjacency with
  /// matching weights, no self-loops, indices in range. Throws
  /// invariant_error on violation. O(E log deg).
  void validate() const;

private:
  index_t nvtx_ = 0;
  int ncon_ = 1;
  std::vector<eindex_t> xadj_{0};
  std::vector<index_t> adjncy_;
  std::vector<weight_t> adjwgt_;
  std::vector<weight_t> vwgt_;
};

/// Extract the subgraph induced by the vertices with mask[v] == true.
/// `old_to_new` (size nvtx, invalid_index for excluded vertices) and
/// `new_to_old` report the vertex mapping. Edges leaving the set are
/// dropped.
Csr induced_subgraph(const Csr& g, const std::vector<char>& mask,
                     std::vector<index_t>& old_to_new,
                     std::vector<index_t>& new_to_old);

}  // namespace tamp::graph
