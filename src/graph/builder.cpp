#include "graph/builder.hpp"

#include <algorithm>
#include <utility>

namespace tamp::graph {

Builder::Builder(index_t nvtx, int ncon) : nvtx_(nvtx), ncon_(ncon) {
  TAMP_EXPECTS(nvtx >= 0, "negative vertex count");
  TAMP_EXPECTS(ncon >= 1, "at least one constraint required");
  vwgt_.assign(static_cast<std::size_t>(nvtx) * static_cast<std::size_t>(ncon),
               1);
}

void Builder::add_edge(index_t u, index_t v, weight_t weight) {
  TAMP_EXPECTS(u >= 0 && u < nvtx_ && v >= 0 && v < nvtx_,
               "edge endpoint out of range");
  TAMP_EXPECTS(u != v, "self-loops are not allowed");
  TAMP_EXPECTS(weight > 0, "edge weight must be positive");
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  edge_weights_.push_back(weight);
}

void Builder::set_vertex_weights(index_t v, std::span<const weight_t> weights) {
  TAMP_EXPECTS(v >= 0 && v < nvtx_, "vertex out of range");
  TAMP_EXPECTS(weights.size() == static_cast<std::size_t>(ncon_),
               "weight vector length must equal ncon");
  std::copy(weights.begin(), weights.end(),
            vwgt_.begin() + static_cast<std::size_t>(v) * ncon_);
}

void Builder::set_vertex_weight(index_t v, int constraint, weight_t weight) {
  TAMP_EXPECTS(v >= 0 && v < nvtx_, "vertex out of range");
  TAMP_EXPECTS(constraint >= 0 && constraint < ncon_,
               "constraint index out of range");
  vwgt_[static_cast<std::size_t>(v) * ncon_ +
        static_cast<std::size_t>(constraint)] = weight;
}

Csr Builder::build() {
  // Sort (u,v) pairs to merge duplicates, carrying weights along.
  std::vector<std::size_t> order(edges_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return edges_[a] < edges_[b];
  });

  std::vector<std::pair<index_t, index_t>> uniq;
  std::vector<weight_t> uniq_w;
  uniq.reserve(edges_.size());
  for (const std::size_t i : order) {
    if (!uniq.empty() && uniq.back() == edges_[i]) {
      uniq_w.back() += edge_weights_[i];
    } else {
      uniq.push_back(edges_[i]);
      uniq_w.push_back(edge_weights_[i]);
    }
  }

  std::vector<eindex_t> xadj(static_cast<std::size_t>(nvtx_) + 1, 0);
  for (std::size_t i = 0; i < uniq.size(); ++i) {
    ++xadj[static_cast<std::size_t>(uniq[i].first) + 1];
    ++xadj[static_cast<std::size_t>(uniq[i].second) + 1];
  }
  for (std::size_t v = 0; v < static_cast<std::size_t>(nvtx_); ++v)
    xadj[v + 1] += xadj[v];

  std::vector<index_t> adjncy(static_cast<std::size_t>(xadj.back()));
  std::vector<weight_t> adjwgt(adjncy.size());
  std::vector<eindex_t> cursor(xadj.begin(), xadj.end() - 1);
  for (std::size_t i = 0; i < uniq.size(); ++i) {
    const auto [u, v] = uniq[i];
    adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)])] = v;
    adjwgt[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] =
        uniq_w[i];
    adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)])] = u;
    adjwgt[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] =
        uniq_w[i];
  }

  Csr g(nvtx_, ncon_, std::move(xadj), std::move(adjncy), std::move(adjwgt),
        std::move(vwgt_));
  edges_.clear();
  edge_weights_.clear();
  vwgt_.assign(static_cast<std::size_t>(nvtx_) * static_cast<std::size_t>(ncon_),
               1);
  return g;
}

Csr make_grid_graph(index_t nx, index_t ny, int ncon) {
  TAMP_EXPECTS(nx > 0 && ny > 0, "grid dimensions must be positive");
  Builder b(nx * ny, ncon);
  auto id = [nx](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      if (x + 1 < nx) b.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < ny) b.add_edge(id(x, y), id(x, y + 1));
    }
  }
  return b.build();
}

}  // namespace tamp::graph
