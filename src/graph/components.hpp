// Connected-component analysis.
//
// Used to (a) verify synthetic meshes are connected, (b) quantify the
// domain-fragmentation artefact the paper's §IX mentions: MC_TL tends to
// produce disconnected domains, which inflates interfaces.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace tamp::graph {

/// Label each vertex with its connected-component id (0-based, dense).
/// Returns the number of components.
index_t connected_components(const Csr& g, std::vector<index_t>& component);

/// True if the whole graph is a single connected component (or empty).
bool is_connected(const Csr& g);

/// Number of connected fragments inside each part of a partition:
/// result[p] = number of components of the subgraph induced by part p.
/// A perfectly contiguous partition has every entry equal to 1.
std::vector<index_t> part_fragment_counts(const Csr& g,
                                          const std::vector<part_t>& part,
                                          part_t nparts);

}  // namespace tamp::graph
