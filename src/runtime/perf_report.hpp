// Aggregation of per-task counter deltas into per-(process ×
// subiteration × task class) profiles — the "why is this class slow"
// table.
//
// The runtime (runtime.hpp) attributes raw counter deltas to individual
// tasks; this layer folds them onto the kernel-identity grid the rest of
// the doctor reasons in. A row's derived quantities are the standard
// optimization-brief numbers: IPC (are we front-end bound or actually
// retiring?), LLC misses per thousand objects (is the sweep streaming or
// thrashing?), backend-stall share (waiting on memory?) and an estimated
// DRAM bandwidth (miss count × cache line / busy seconds — an order-of-
// magnitude context figure, not a measurement).
//
// Publication contract: perf.* metric keys exist only when the profile
// is live() — hardware tier with cycles + instructions on every worker.
// A clock-only run still aggregates (per-class CPU seconds are useful on
// their own) but publishes nothing, so downstream gates can treat the
// presence of perf.ipc as "counters were real".
#pragma once

#include <array>
#include <iosfwd>
#include <vector>

#include "runtime/runtime.hpp"
#include "taskgraph/taskgraph.hpp"

namespace tamp::runtime {

/// One cell of the (process × subiteration × class) grid.
struct PerfProfileRow {
  part_t process = 0;
  index_t subiteration = 0;
  taskgraph::TaskClass cls;

  index_t tasks = 0;        ///< tasks aggregated into this row
  double objects = 0;       ///< Σ Task::num_objects
  double seconds = 0;       ///< Σ span wall durations
  double cpu_seconds = 0;   ///< Σ thread-CPU time (clock_only tier up)
  /// Multiplex-corrected counter sums, indexed by obs::PerfCounterId.
  std::array<double, obs::kNumPerfCounters> count{};
  /// Worst multiplex share of any task in the row (1 = never timesliced).
  double min_running_share = 1.0;

  [[nodiscard]] double counters(obs::PerfCounterId id) const {
    return count[static_cast<std::size_t>(id)];
  }
  /// Instructions per cycle; 0 when cycles did not tick.
  [[nodiscard]] double ipc() const;
  /// LLC misses per thousand objects (the per-kcell / per-kface figure).
  [[nodiscard]] double llc_miss_per_kobject() const;
  /// Backend-stalled share of cycles.
  [[nodiscard]] double stall_share() const;
  /// LLC miss count × 64-byte line / busy seconds, in GB/s. An estimate
  /// of the DRAM demand this row's tasks generated while running.
  [[nodiscard]] double est_dram_gbps() const;
};

struct PerfProfile {
  obs::PerfTier tier = obs::PerfTier::unavailable;
  std::array<bool, obs::kNumPerfCounters> counter_valid{};
  /// Rows sorted by (process, subiteration, class id); only populated
  /// tiers ≥ clock_only produce rows.
  std::vector<PerfProfileRow> rows;

  /// Same gate as ExecutionReport::PerfAttribution::live().
  [[nodiscard]] bool live() const;
  /// Sum of `sel` over all rows.
  [[nodiscard]] double total(obs::PerfCounterId id) const;
};

/// Fold the report's per-task deltas onto the class grid. Valid for any
/// tier: unavailable yields an empty-row profile, clock_only yields rows
/// with seconds/cpu_seconds only.
[[nodiscard]] PerfProfile aggregate_perf(const taskgraph::TaskGraph& graph,
                                         const ExecutionReport& report);

/// Human-readable profile table (flusim --execute). Prints a one-line
/// tier notice instead of counter columns when not live.
void print_perf_profile(std::ostream& os, const PerfProfile& profile);

/// Publish perf.* gauges — ONLY when profile.live(); a no-op otherwise
/// so no perf key ever leaks from a degraded run. Keys:
///   perf.ipc / perf.cycles / perf.instructions / perf.llc_misses /
///   perf.branch_misses / perf.stalled_backend / perf.llc_miss_per_kobject /
///   perf.est_dram_gbps / perf.running_share.min / perf.classes
///   perf.class.<label>.{ipc,llc_miss_per_kobject,seconds}  (per class,
///   label like t0.cell.int)
void publish_perf_metrics(const PerfProfile& profile);

}  // namespace tamp::runtime
