// Threaded task runtime executing TaskGraphs — the StarPU-substitute
// substrate.
//
// Execution model mirrors FLUSEPA's: the machine is a set of emulated
// MPI *processes*, each owning `workers_per_process` threads. Tasks are
// pinned to the process owning their domain; within a process, any of its
// workers may pick up a ready task (shared ready queue = the intra-node
// load balancing StarPU provides). Dependencies are enforced with atomic
// pending counters, so the observable ordering is exactly the DAG's.
//
// The runtime records per-task wall-clock spans and per-worker busy time,
// from which the same Gantt traces and occupancy statistics as FLUSIM's
// can be derived (paper Fig 5: FLUSEPA trace vs FLUSIM trace).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/flight.hpp"
#include "obs/perf.hpp"
#include "support/gantt.hpp"
#include "taskgraph/taskgraph.hpp"

namespace tamp::runtime {

/// Hostile-schedule knobs for race hunting (src/verify): seeded random
/// ready-task selection replaces FIFO dequeue order, and each dequeue may
/// be followed by a random delay before the body runs, so repeated runs
/// sweep very different interleavings while still respecting the DAG.
/// Per-worker RNG streams derive deterministically from (seed, process,
/// worker), so a given (config, machine-timing-independent body) pair is
/// reproducible in which orders it *offers*, though not in which the OS
/// realises.
struct AdversarialSchedule {
  bool enabled = false;
  std::uint64_t seed = 1;
  /// Uniform pre-task delay in [0, max_delay_seconds); 0 disables jitter.
  double max_delay_seconds = 0;
};

/// Flight-recorder knobs: when enabled (and the instrumentation is
/// compiled in — TAMP_ENABLE_TRACING), every worker records dequeues,
/// task begin/end, dependency releases and idle intervals into its own
/// bounded ring (obs/flight.hpp). Memory is fixed at
/// workers · ring_capacity · sizeof(FlightEvent); overflow overwrites the
/// oldest events and counts them as dropped.
struct FlightConfig {
  bool enabled = false;
  std::size_t ring_capacity = obs::FlightRecorder::kDefaultRingCapacity;
};

/// Hardware-counter knobs: when enabled (and TAMP_ENABLE_TRACING is
/// compiled in), every worker opens a per-thread perf_event counter
/// group (obs/perf.hpp) and brackets each task body with grouped reads,
/// so every task accrues cycle/instruction/miss deltas. The effective
/// capability is min(max_tier, TAMP_PERF env ceiling, what the kernel
/// grants) — in locked-down environments this degrades to clock-only or
/// nothing without failing the run.
struct PerfConfig {
  bool enabled = false;
  obs::PerfTier max_tier = obs::PerfTier::hardware;
};

struct RuntimeConfig {
  part_t num_processes = 1;
  int workers_per_process = 1;
  AdversarialSchedule adversarial;
  FlightConfig flight;
  PerfConfig perf;
};

/// Wall-clock record of one executed graph.
struct ExecutionReport {
  double wall_seconds = 0;
  /// Per task: start/end seconds since launch, executing process/worker.
  struct Span {
    double start = 0;
    double end = 0;
    part_t process = 0;
    int worker = 0;
  };
  std::vector<Span> spans;
  part_t num_processes = 0;
  int workers_per_process = 0;
  /// Flight events of this execution (ring w belongs to worker
  /// process·workers_per_process + w); null when recording was off or
  /// compiled out.
  std::shared_ptr<const obs::FlightRecorder> flight;

  /// Per-task counter deltas of this execution. `tier` is the weakest
  /// capability any worker obtained (a run is only as attributable as
  /// its least-privileged thread) and `counter_valid` the AND across
  /// workers. Default-constructed (tier unavailable, empty per_task)
  /// when perf recording was off or compiled out.
  struct PerfAttribution {
    obs::PerfTier tier = obs::PerfTier::unavailable;
    std::array<bool, obs::kNumPerfCounters> counter_valid{};
    /// One delta per task (same indexing as `spans`); empty at tier
    /// unavailable.
    std::vector<obs::PerfDelta> per_task;

    /// True counter attribution: hardware tier with at least cycles and
    /// instructions on every worker. The gate for perf.* metrics — a
    /// clock-only run must not publish counter-shaped numbers.
    [[nodiscard]] bool live() const {
      return tier == obs::PerfTier::hardware &&
             counter_valid[static_cast<std::size_t>(
                 obs::PerfCounterId::cycles)] &&
             counter_valid[static_cast<std::size_t>(
                 obs::PerfCounterId::instructions)] &&
             !per_task.empty();
    }
  };
  PerfAttribution perf;

  [[nodiscard]] double total_busy_seconds() const;
  /// Whether the report describes any worker-time at all (a positive
  /// wall clock on at least one worker).
  [[nodiscard]] bool has_capacity() const;
  /// Fraction of worker-time spent in task bodies. A report without
  /// capacity has no meaningful occupancy and returns NaN — "no capacity"
  /// must stay distinguishable from "all workers idle" (0.0).
  [[nodiscard]] double occupancy() const;
  /// Gantt trace (rows = workers grouped by process, colours =
  /// subiteration), comparable to SimResult::gantt(). Throws
  /// precondition_error when the report's spans do not match the graph.
  [[nodiscard]] GanttTrace gantt(const taskgraph::TaskGraph& graph,
                                 const std::string& title) const;
};

/// The task body: called once per task id, possibly concurrently for
/// independent tasks.
using TaskBody = std::function<void(index_t)>;

/// Execute `graph` with real threads. Blocks until every task ran.
/// Throws precondition_error on malformed inputs; any exception escaping
/// a task body aborts execution and is rethrown on the calling thread.
ExecutionReport execute(const taskgraph::TaskGraph& graph,
                        const std::vector<part_t>& domain_to_process,
                        const RuntimeConfig& config, const TaskBody& body);

/// The O(tasks + edges) launch bookkeeping of execute(), derived ahead
/// of time: per-task process placement and initial dependency counts.
/// The asynchronous pipeline builds this on the prep stage so the solve
/// stage's execute() call starts dispatching immediately. Tied to the
/// (graph, domain_to_process, num_processes) triple it was derived from;
/// execute() validates the sizes but cannot detect a swapped graph of
/// identical shape.
struct PreparedGraph {
  std::vector<part_t> process_of;        ///< per task
  std::vector<index_t> initial_pending;  ///< per task: #predecessors
  part_t num_processes = 0;
};

/// Derive the launch bookkeeping for executing `graph` on
/// `num_processes` emulated processes.
PreparedGraph prepare_execution(const taskgraph::TaskGraph& graph,
                                const std::vector<part_t>& domain_to_process,
                                part_t num_processes);

/// Execute with pre-built bookkeeping (see PreparedGraph). Identical
/// observable behaviour to the deriving overload; `config.num_processes`
/// must equal `prepared.num_processes`.
ExecutionReport execute(const taskgraph::TaskGraph& graph,
                        const PreparedGraph& prepared,
                        const RuntimeConfig& config, const TaskBody& body);

/// Convenience body: busy-spin proportionally to each task's cost.
/// `seconds_per_unit` converts cost units to wall time. Used by benches
/// that want FLUSEPA-shaped load without the solver attached.
TaskBody make_synthetic_body(const taskgraph::TaskGraph& graph,
                             double seconds_per_unit);

/// Publish measured-execution telemetry into the metrics registry:
///   runtime.occupancy / runtime.wall_seconds / runtime.worker.busy_seconds
///   runtime.task_seconds                       (histogram, all tasks)
///   runtime.task_seconds.p<P>.s<S>             (per process × subiteration)
/// and, when the report carries flight events,
///   runtime.flight.events / .dropped           (counters)
///   runtime.flight.idle_seconds                (gauge)
///   runtime.queue.depth                        (histogram of ready-queue
///                                               depth at each dequeue)
///   runtime.dequeue_latency_seconds            (histogram, dequeue→begin)
/// Explicitly invoked (flusim --execute, benches) — not part of execute()
/// so hot runs pay nothing.
void publish_execution_metrics(const taskgraph::TaskGraph& graph,
                               const ExecutionReport& report);

}  // namespace tamp::runtime
