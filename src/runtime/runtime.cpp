#include "runtime/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/perf_report.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace tamp::runtime {

double ExecutionReport::total_busy_seconds() const {
  double busy = 0;
  for (const Span& s : spans) busy += s.end - s.start;
  return busy;
}

bool ExecutionReport::has_capacity() const {
  return wall_seconds > 0 && num_processes > 0 && workers_per_process > 0;
}

double ExecutionReport::occupancy() const {
  // No capacity (default report, zero wall clock) is not the same thing
  // as "every worker sat idle": NaN forces callers to check
  // has_capacity() instead of reading a silent 0.
  if (!has_capacity()) return std::numeric_limits<double>::quiet_NaN();
  return total_busy_seconds() /
         (wall_seconds * static_cast<double>(num_processes) *
          static_cast<double>(workers_per_process));
}

GanttTrace ExecutionReport::gantt(const taskgraph::TaskGraph& graph,
                                  const std::string& title) const {
  TAMP_EXPECTS(spans.size() == static_cast<std::size_t>(graph.num_tasks()),
               "execution report does not match the task graph");
  GanttTrace trace;
  trace.title = title;
  trace.makespan = wall_seconds;
  trace.resource_names.resize(static_cast<std::size_t>(num_processes) *
                              static_cast<std::size_t>(workers_per_process));
  for (part_t p = 0; p < num_processes; ++p)
    for (int w = 0; w < workers_per_process; ++w)
      trace.resource_names[static_cast<std::size_t>(p) *
                               static_cast<std::size_t>(workers_per_process) +
                           static_cast<std::size_t>(w)] =
          "p" + std::to_string(p) + ".w" + std::to_string(w);
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const Span& s = spans[static_cast<std::size_t>(t)];
    trace.spans.push_back(
        {static_cast<int>(s.process) * workers_per_process + s.worker, s.start,
         s.end, static_cast<int>(graph.task(t).subiteration),
         graph.task(t).label()});
  }
  return trace;
}

namespace {

/// Shared ready queue of one emulated process.
struct ProcessQueue {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<index_t> ready;
};

}  // namespace

PreparedGraph prepare_execution(const taskgraph::TaskGraph& graph,
                                const std::vector<part_t>& domain_to_process,
                                part_t num_processes) {
  TAMP_EXPECTS(num_processes >= 1, "need at least one process");
  const index_t n = graph.num_tasks();
  PreparedGraph prepared;
  prepared.num_processes = num_processes;
  prepared.process_of.resize(static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t) {
    const part_t d = graph.task(t).domain;
    TAMP_EXPECTS(static_cast<std::size_t>(d) < domain_to_process.size(),
                 "task domain outside process map");
    const part_t p = domain_to_process[static_cast<std::size_t>(d)];
    TAMP_EXPECTS(p >= 0 && p < num_processes, "process id out of range");
    prepared.process_of[static_cast<std::size_t>(t)] = p;
  }
  prepared.initial_pending.resize(static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t)
    prepared.initial_pending[static_cast<std::size_t>(t)] =
        static_cast<index_t>(graph.predecessors(t).size());
  return prepared;
}

ExecutionReport execute(const taskgraph::TaskGraph& graph,
                        const std::vector<part_t>& domain_to_process,
                        const RuntimeConfig& config, const TaskBody& body) {
  return execute(
      graph, prepare_execution(graph, domain_to_process, config.num_processes),
      config, body);
}

ExecutionReport execute(const taskgraph::TaskGraph& graph,
                        const PreparedGraph& prepared,
                        const RuntimeConfig& config, const TaskBody& body) {
  TAMP_EXPECTS(config.num_processes >= 1, "need at least one process");
  TAMP_EXPECTS(config.workers_per_process >= 1, "need at least one worker");
  TAMP_EXPECTS(config.adversarial.max_delay_seconds >= 0,
               "negative adversarial delay");
  TAMP_EXPECTS(prepared.num_processes == config.num_processes,
               "prepared graph was derived for a different process count");
  TAMP_TRACE_SCOPE("runtime/execute");
  const index_t n = graph.num_tasks();
  TAMP_EXPECTS(
      prepared.process_of.size() == static_cast<std::size_t>(n) &&
          prepared.initial_pending.size() == static_cast<std::size_t>(n),
      "prepared graph does not match the task graph");
  const std::vector<part_t>& process_of = prepared.process_of;

  std::vector<std::atomic<index_t>> pending(static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t)
    pending[static_cast<std::size_t>(t)].store(
        prepared.initial_pending[static_cast<std::size_t>(t)],
        std::memory_order_relaxed);

  std::vector<ProcessQueue> queues(
      static_cast<std::size_t>(config.num_processes));
  std::atomic<index_t> remaining{n};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  ExecutionReport report;
  report.num_processes = config.num_processes;
  report.workers_per_process = config.workers_per_process;
  report.spans.assign(static_cast<std::size_t>(n), ExecutionReport::Span{});

  // Flight recorder: one bounded ring per worker, owned exclusively by
  // that worker while threads run, read after the join below. Null when
  // recording is off; absent entirely when compiled out.
  std::shared_ptr<obs::FlightRecorder> recorder;
#if defined(TAMP_TRACING_ENABLED)
  if (config.flight.enabled)
    recorder = std::make_shared<obs::FlightRecorder>(
        static_cast<int>(config.num_processes) * config.workers_per_process,
        config.flight.ring_capacity);

  // Perf attribution: each worker owns a per-thread counter group and
  // writes only its own tasks' slots in per_task plus its own tier/valid
  // slot, so no synchronisation is needed beyond the join below. The
  // TAMP_PERF env ceiling composes with the config ceiling so scripts
  // can force the fallback path without code changes.
  const obs::PerfTier perf_ceiling =
      config.perf.enabled
          ? std::min(config.perf.max_tier, obs::requested_perf_tier())
          : obs::PerfTier::unavailable;
  const bool perf_on = perf_ceiling != obs::PerfTier::unavailable;
  const std::size_t num_worker_slots =
      static_cast<std::size_t>(config.num_processes) *
      static_cast<std::size_t>(config.workers_per_process);
  std::vector<obs::PerfTier> worker_tier;
  std::vector<std::array<bool, obs::kNumPerfCounters>> worker_valid;
  if (perf_on) {
    report.perf.per_task.assign(static_cast<std::size_t>(n),
                                obs::PerfDelta{});
    worker_tier.assign(num_worker_slots, obs::PerfTier::unavailable);
    worker_valid.assign(num_worker_slots, {});
  }
#endif

  const Stopwatch clock;

  auto push_ready = [&](index_t t) {
    ProcessQueue& q = queues[static_cast<std::size_t>(
        process_of[static_cast<std::size_t>(t)])];
    {
      const std::lock_guard<std::mutex> lock(q.mutex);
      q.ready.push_back(t);
    }
    q.cv.notify_one();
  };

  for (index_t t = 0; t < n; ++t)
    if (pending[static_cast<std::size_t>(t)].load(std::memory_order_relaxed) ==
        0)
      push_ready(t);

#if defined(TAMP_TRACING_ENABLED)
  // Resolve metric handles once: the per-name lookup takes the registry
  // mutex and must stay out of the worker loop.
  obs::Histogram& task_seconds_hist = obs::histogram("runtime.task.seconds");
#endif

  const AdversarialSchedule& adv = config.adversarial;

  auto worker_main = [&](part_t p, int w) {
    ProcessQueue& q = queues[static_cast<std::size_t>(p)];
    obs::FlightRing* ring = nullptr;
#if defined(TAMP_TRACING_ENABLED)
    if (recorder)
      ring = &recorder->ring(static_cast<int>(p) * config.workers_per_process +
                             w);
    // The group must be opened on this thread (perf counts the calling
    // thread); record the tier actually granted so the report can take
    // the weakest across workers.
    std::optional<obs::PerfGroup> perf;
    if (perf_on) {
      perf.emplace(perf_ceiling);
      const std::size_t slot =
          static_cast<std::size_t>(p) *
              static_cast<std::size_t>(config.workers_per_process) +
          static_cast<std::size_t>(w);
      worker_tier[slot] = perf->tier();
      worker_valid[slot] = perf->counter_valid();
    }
#endif
    static_cast<void>(ring);
    // Per-worker stream: the schedule explored depends only on
    // (seed, process, worker), never on thread start-up order.
    Rng rng(mix_seed(adv.seed, static_cast<std::uint64_t>(p),
                     static_cast<std::uint64_t>(w)));
    while (true) {
      index_t t = invalid_index;
      std::size_t depth_after = 0;
      // The idle interval covers the cv wait plus the dequeue — exactly
      // what the runtime/idle trace span covers, so the two timelines
      // agree on where gaps are.
      TAMP_FLIGHT_RECORD(ring, obs::FlightEventKind::idle_begin,
                         clock.seconds());
      {
        // Spans the cv wait plus the dequeue: on the timeline, every gap
        // between runtime/task spans shows up as runtime/idle.
        TAMP_TRACE_SCOPE("runtime/idle");
        std::unique_lock<std::mutex> lock(q.mutex);
        q.cv.wait(lock, [&] {
          return !q.ready.empty() ||
                 remaining.load(std::memory_order_acquire) == 0 ||
                 failed.load(std::memory_order_acquire);
        });
        if (failed.load(std::memory_order_acquire) || q.ready.empty()) {
          // Done (or aborting): close the idle interval so every
          // idle_begin has a matching idle_end in the ring.
          lock.unlock();
          TAMP_FLIGHT_RECORD(ring, obs::FlightEventKind::idle_end,
                             clock.seconds());
          return;
        }
        if (adv.enabled) {
          const auto pick = static_cast<std::size_t>(
              rng.below(static_cast<std::uint64_t>(q.ready.size())));
          t = q.ready[pick];
          q.ready.erase(q.ready.begin() + static_cast<std::ptrdiff_t>(pick));
        } else {
          t = q.ready.front();
          q.ready.pop_front();
        }
        depth_after = q.ready.size();
      }
      static_cast<void>(depth_after);
      TAMP_FLIGHT_RECORD(ring, obs::FlightEventKind::idle_end,
                         clock.seconds());
      TAMP_FLIGHT_RECORD(ring, obs::FlightEventKind::task_dequeue,
                         clock.seconds(), static_cast<std::int64_t>(t),
                         static_cast<std::int64_t>(depth_after));
      if (adv.enabled && adv.max_delay_seconds > 0) {
        // Jitter before the span starts: the delay reads as idle time,
        // not as task work, so occupancy stays honest.
        std::this_thread::sleep_for(std::chrono::duration<double>(
            rng.uniform(0.0, adv.max_delay_seconds)));
      }

      ExecutionReport::Span& span = report.spans[static_cast<std::size_t>(t)];
      span.process = p;
      span.worker = w;
#if defined(TAMP_TRACING_ENABLED)
      // Bracket the body as tightly as possible: the read costs one
      // syscall (~1 µs), so attribution noise stays far below any task
      // worth attributing.
      obs::PerfSample perf_begin;
      const bool perf_have = perf && perf->read(perf_begin);
#endif
      span.start = clock.seconds();
      TAMP_FLIGHT_RECORD(ring, obs::FlightEventKind::task_begin, span.start,
                         static_cast<std::int64_t>(t));
      try {
        TAMP_TRACE_SCOPE("runtime/task");
        body(t);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_release);
        // Unblock everyone; the graph will not complete.
        for (auto& pq : queues) pq.cv.notify_all();
        return;
      }
      span.end = clock.seconds();
      TAMP_FLIGHT_RECORD(ring, obs::FlightEventKind::task_end, span.end,
                         static_cast<std::int64_t>(t));
#if defined(TAMP_TRACING_ENABLED)
      if (perf_have) {
        obs::PerfSample perf_end;
        if (perf->read(perf_end))
          report.perf.per_task[static_cast<std::size_t>(t)] =
              obs::perf_delta(perf_begin, perf_end);
      }
      task_seconds_hist.record(span.end - span.start);
#endif

      for (const index_t s : graph.successors(t)) {
        if (pending[static_cast<std::size_t>(s)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          // The release timestamp is when the last predecessor's worker
          // made `s` runnable — the measured analogue of the simulator's
          // dependency-arrival instant.
          TAMP_FLIGHT_RECORD(ring, obs::FlightEventKind::dep_release,
                             clock.seconds(), static_cast<std::int64_t>(s),
                             static_cast<std::int64_t>(t));
          push_ready(s);
        }
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        for (auto& pq : queues) pq.cv.notify_all();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.num_processes) *
                  static_cast<std::size_t>(config.workers_per_process));
  for (part_t p = 0; p < config.num_processes; ++p)
    for (int w = 0; w < config.workers_per_process; ++w)
      threads.emplace_back(worker_main, p, w);
  for (auto& th : threads) th.join();

  if (failed.load()) std::rethrow_exception(first_error);
  TAMP_ENSURE(remaining.load() == 0, "runtime finished with pending tasks");
  report.wall_seconds = clock.seconds();
  report.flight = recorder;  // joined threads published every ring
#if defined(TAMP_TRACING_ENABLED)
  if (perf_on) {
    // The run is only as attributable as its least-privileged worker:
    // weakest tier wins, and a counter must have opened on every worker
    // to stay valid (otherwise per-class sums would silently mix
    // populations).
    report.perf.tier = obs::PerfTier::hardware;
    report.perf.counter_valid.fill(true);
    for (std::size_t s = 0; s < num_worker_slots; ++s) {
      report.perf.tier = std::min(report.perf.tier, worker_tier[s]);
      for (std::size_t c = 0;
           c < static_cast<std::size_t>(obs::kNumPerfCounters); ++c)
        report.perf.counter_valid[c] =
            report.perf.counter_valid[c] && worker_valid[s][c];
    }
    if (report.perf.tier != obs::PerfTier::hardware)
      report.perf.counter_valid.fill(false);
    if (report.perf.tier == obs::PerfTier::unavailable)
      report.perf.per_task.clear();
  }
#endif
  TAMP_METRIC_COUNT("runtime.tasks.executed", n);
  TAMP_METRIC_GAUGE_ADD("runtime.worker.busy_seconds",
                        report.total_busy_seconds());
  TAMP_METRIC_GAUGE_SET("runtime.occupancy", report.occupancy());
  return report;
}

TaskBody make_synthetic_body(const taskgraph::TaskGraph& graph,
                             double seconds_per_unit) {
  TAMP_EXPECTS(seconds_per_unit >= 0, "negative spin factor");
  return [&graph, seconds_per_unit](index_t t) {
    const double budget = graph.task(t).cost * seconds_per_unit;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(budget));
    // Busy spin: emulates a compute kernel without memory traffic.
    volatile double sink = 0.0;
    while (std::chrono::steady_clock::now() < deadline) {
      for (int i = 0; i < 64; ++i) sink = sink + 1e-9;
    }
  };
}

void publish_execution_metrics(const taskgraph::TaskGraph& graph,
                               const ExecutionReport& report) {
  TAMP_EXPECTS(
      report.spans.size() == static_cast<std::size_t>(graph.num_tasks()),
      "execution report does not match the task graph");
  obs::gauge("runtime.wall_seconds").set(report.wall_seconds);
  obs::gauge("runtime.occupancy")
      .set(report.has_capacity() ? report.occupancy() : 0.0);
  obs::gauge("runtime.worker.busy_seconds").set(report.total_busy_seconds());

  obs::Histogram& all = obs::histogram("runtime.task_seconds");
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const ExecutionReport::Span& s = report.spans[static_cast<std::size_t>(t)];
    const double d = s.end - s.start;
    all.record(d);
    // Per-(process × subiteration) latency distribution: the measured
    // counterpart of the doctor's blame grid, addressable by tamp-report
    // as histograms.runtime.task_seconds.p<P>.s<S>.p99 and friends.
    obs::histogram("runtime.task_seconds.p" + std::to_string(s.process) +
                   ".s" + std::to_string(graph.task(t).subiteration))
        .record(d);
  }

  // publish_perf_metrics gates on live() internally, so a clock-only or
  // perf-off run contributes no perf.* keys here.
  publish_perf_metrics(aggregate_perf(graph, report));

  if (!report.flight) return;
  const obs::FlightSummary fs = obs::summarize(*report.flight);
  obs::counter("runtime.flight.events")
      .add(static_cast<std::int64_t>(fs.events));
  obs::counter("runtime.flight.dropped")
      .add(static_cast<std::int64_t>(fs.dropped));
  obs::gauge("runtime.flight.idle_seconds").set(fs.idle_seconds);
  obs::Histogram& depth = obs::histogram("runtime.queue.depth");
  obs::Histogram& latency = obs::histogram("runtime.dequeue_latency_seconds");
  for (int w = 0; w < report.flight->num_workers(); ++w) {
    double dequeue_t = -1;
    std::int64_t dequeue_task = -1;
    for (const obs::FlightEvent& ev : report.flight->ring(w).events()) {
      if (ev.kind == obs::FlightEventKind::task_dequeue) {
        depth.record(static_cast<double>(ev.b));
        dequeue_t = ev.t_seconds;
        dequeue_task = ev.a;
      } else if (ev.kind == obs::FlightEventKind::task_begin &&
                 ev.a == dequeue_task && dequeue_t >= 0) {
        latency.record(ev.t_seconds - dequeue_t);
        dequeue_task = -1;
      }
    }
  }
}

}  // namespace tamp::runtime
