#include "runtime/perf_report.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <tuple>

#include "obs/metrics.hpp"
#include "support/table.hpp"

namespace tamp::runtime {

namespace {
constexpr double kCacheLineBytes = 64.0;

double at(const std::array<double, obs::kNumPerfCounters>& a,
          obs::PerfCounterId id) {
  return a[static_cast<std::size_t>(id)];
}

/// Metric-key-safe class label: t0.cell.int (dots, not colons, so the
/// key grammar matches every other metric family).
std::string metric_label(const taskgraph::TaskClass& cls) {
  return "t" + std::to_string(static_cast<int>(cls.level)) + "." +
         to_string(cls.type) + "." + to_string(cls.locality);
}
}  // namespace

double PerfProfileRow::ipc() const {
  const double cycles = at(count, obs::PerfCounterId::cycles);
  return cycles > 0 ? at(count, obs::PerfCounterId::instructions) / cycles
                    : 0.0;
}

double PerfProfileRow::llc_miss_per_kobject() const {
  return objects > 0
             ? at(count, obs::PerfCounterId::llc_misses) / (objects / 1e3)
             : 0.0;
}

double PerfProfileRow::stall_share() const {
  const double cycles = at(count, obs::PerfCounterId::cycles);
  return cycles > 0
             ? at(count, obs::PerfCounterId::stalled_cycles_backend) / cycles
             : 0.0;
}

double PerfProfileRow::est_dram_gbps() const {
  return seconds > 0 ? at(count, obs::PerfCounterId::llc_misses) *
                           kCacheLineBytes / seconds / 1e9
                     : 0.0;
}

bool PerfProfile::live() const {
  return tier == obs::PerfTier::hardware &&
         counter_valid[static_cast<std::size_t>(obs::PerfCounterId::cycles)] &&
         counter_valid[static_cast<std::size_t>(
             obs::PerfCounterId::instructions)] &&
         !rows.empty();
}

double PerfProfile::total(obs::PerfCounterId id) const {
  double sum = 0;
  for (const PerfProfileRow& r : rows) sum += at(r.count, id);
  return sum;
}

PerfProfile aggregate_perf(const taskgraph::TaskGraph& graph,
                           const ExecutionReport& report) {
  TAMP_EXPECTS(
      report.spans.size() == static_cast<std::size_t>(graph.num_tasks()),
      "execution report does not match the task graph");
  PerfProfile profile;
  profile.tier = report.perf.tier;
  profile.counter_valid = report.perf.counter_valid;
  if (report.perf.tier == obs::PerfTier::unavailable) return profile;
  TAMP_EXPECTS(
      report.perf.per_task.size() == static_cast<std::size_t>(graph.num_tasks()),
      "perf attribution does not match the task graph");

  std::map<std::tuple<part_t, index_t, int>, std::size_t> index;
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const taskgraph::Task& task = graph.task(t);
    const ExecutionReport::Span& span =
        report.spans[static_cast<std::size_t>(t)];
    const obs::PerfDelta& delta =
        report.perf.per_task[static_cast<std::size_t>(t)];
    const taskgraph::TaskClass cls = taskgraph::class_of(task);
    const auto key =
        std::make_tuple(span.process, task.subiteration, cls.id());
    auto [it, inserted] = index.try_emplace(key, profile.rows.size());
    if (inserted) {
      PerfProfileRow row;
      row.process = span.process;
      row.subiteration = task.subiteration;
      row.cls = cls;
      profile.rows.push_back(row);
    }
    PerfProfileRow& row = profile.rows[it->second];
    row.tasks += 1;
    row.objects += static_cast<double>(task.num_objects);
    row.seconds += span.end - span.start;
    row.cpu_seconds += delta.thread_cpu_ns * 1e-9;
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(obs::kNumPerfCounters); ++c)
      row.count[c] += delta.count[c];
    row.min_running_share =
        std::min(row.min_running_share, delta.running_share);
  }
  // std::map iterates keys in (process, subiteration, class id) order
  // already, but rows were appended in task order; sort to the contract.
  std::sort(profile.rows.begin(), profile.rows.end(),
            [](const PerfProfileRow& a, const PerfProfileRow& b) {
              return std::make_tuple(a.process, a.subiteration, a.cls.id()) <
                     std::make_tuple(b.process, b.subiteration, b.cls.id());
            });
  return profile;
}

void print_perf_profile(std::ostream& os, const PerfProfile& profile) {
  os << "== counter attribution (tier: " << to_string(profile.tier) << ") ==\n";
  if (profile.tier == obs::PerfTier::unavailable) {
    os << "perf recording off; no attribution collected\n";
    return;
  }
  if (!profile.live()) {
    // Clock-only still answers "which class eats CPU", so print that
    // much rather than nothing.
    TablePrinter table("per (process x subiteration x class) CPU attribution "
                       "(hardware counters unavailable)");
    table.header({"proc", "sub", "class", "tasks", "objects", "wall ms",
                  "cpu ms", "cpu/wall"});
    for (const PerfProfileRow& r : profile.rows) {
      table.row({std::to_string(r.process), std::to_string(r.subiteration),
                 r.cls.label(), std::to_string(r.tasks),
                 fmt_count(static_cast<long long>(r.objects)),
                 fmt_double(r.seconds * 1e3, 3),
                 fmt_double(r.cpu_seconds * 1e3, 3),
                 r.seconds > 0 ? fmt_percent(r.cpu_seconds / r.seconds)
                               : "-"});
    }
    table.print(os);
    return;
  }
  TablePrinter table(
      "per (process x subiteration x class) counter attribution");
  table.header({"proc", "sub", "class", "tasks", "objects", "wall ms", "IPC",
                "LLCmiss/kobj", "brmiss/kobj", "stall", "est GB/s", "mux"});
  for (const PerfProfileRow& r : profile.rows) {
    const double brmiss_per_kobj =
        r.objects > 0
            ? r.counters(obs::PerfCounterId::branch_misses) / (r.objects / 1e3)
            : 0.0;
    const bool have_stall = profile.counter_valid[static_cast<std::size_t>(
        obs::PerfCounterId::stalled_cycles_backend)];
    table.row({std::to_string(r.process), std::to_string(r.subiteration),
               r.cls.label(), std::to_string(r.tasks),
               fmt_count(static_cast<long long>(r.objects)),
               fmt_double(r.seconds * 1e3, 3), fmt_double(r.ipc(), 2),
               fmt_double(r.llc_miss_per_kobject(), 1),
               fmt_double(brmiss_per_kobj, 1),
               have_stall ? fmt_percent(r.stall_share()) : "-",
               fmt_double(r.est_dram_gbps(), 2),
               fmt_percent(r.min_running_share)});
  }
  table.print(os);
}

void publish_perf_metrics(const PerfProfile& profile) {
  if (!profile.live()) return;  // no perf.* keys from degraded runs
  double objects = 0, seconds = 0;
  double min_share = 1.0;
  for (const PerfProfileRow& r : profile.rows) {
    objects += r.objects;
    seconds += r.seconds;
    min_share = std::min(min_share, r.min_running_share);
  }
  const double cycles = profile.total(obs::PerfCounterId::cycles);
  const double instructions = profile.total(obs::PerfCounterId::instructions);
  const double llc = profile.total(obs::PerfCounterId::llc_misses);
  obs::gauge("perf.cycles").set(cycles);
  obs::gauge("perf.instructions").set(instructions);
  obs::gauge("perf.llc_misses").set(llc);
  obs::gauge("perf.branch_misses")
      .set(profile.total(obs::PerfCounterId::branch_misses));
  obs::gauge("perf.stalled_backend")
      .set(profile.total(obs::PerfCounterId::stalled_cycles_backend));
  obs::gauge("perf.ipc").set(cycles > 0 ? instructions / cycles : 0.0);
  obs::gauge("perf.llc_miss_per_kobject")
      .set(objects > 0 ? llc / (objects / 1e3) : 0.0);
  obs::gauge("perf.est_dram_gbps")
      .set(seconds > 0 ? llc * kCacheLineBytes / seconds / 1e9 : 0.0);
  obs::gauge("perf.running_share.min").set(min_share);

  // Per-class rollup (summed over processes and subiterations): the
  // granularity gates and the what-if engine key on.
  std::map<int, PerfProfileRow> by_class;
  for (const PerfProfileRow& r : profile.rows) {
    auto [it, inserted] = by_class.try_emplace(r.cls.id(), r);
    if (inserted) continue;
    PerfProfileRow& acc = it->second;
    acc.tasks += r.tasks;
    acc.objects += r.objects;
    acc.seconds += r.seconds;
    acc.cpu_seconds += r.cpu_seconds;
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(obs::kNumPerfCounters); ++c)
      acc.count[c] += r.count[c];
  }
  obs::gauge("perf.classes").set(static_cast<double>(by_class.size()));
  for (const auto& [id, r] : by_class) {
    const std::string prefix = "perf.class." + metric_label(r.cls);
    obs::gauge(prefix + ".ipc").set(r.ipc());
    obs::gauge(prefix + ".llc_miss_per_kobject").set(r.llc_miss_per_kobject());
    obs::gauge(prefix + ".seconds").set(r.seconds);
  }
}

}  // namespace tamp::runtime
