// Temporal-level evolution between iterations.
//
// Paper §III-A: "the temporal levels of the cells experience minimal
// evolution across iterations" — the justification for optimising a
// single iteration. evolve_levels() provides the other side of that
// statement for experiments: a controlled, physically-shaped drift in
// which cells on level boundaries slide one level towards a neighbour's
// (the phenomenon's regions of interest creeping through the mesh).
// Used by the incremental-repartitioning experiments.
#pragma once

#include "mesh/mesh.hpp"
#include "support/rng.hpp"

namespace tamp::mesh {

struct EvolveStats {
  index_t cells_changed = 0;
  index_t eligible_cells = 0;  ///< cells adjacent to a level boundary
};

/// Drift the mesh's temporal levels: every cell with a neighbour on a
/// different level moves one step towards a uniformly chosen such
/// neighbour's level with probability `drift`. Deterministic under `rng`.
/// Returns how much changed. Levels stay within [0, old max level].
EvolveStats evolve_levels(Mesh& mesh, double drift, Rng& rng);

}  // namespace tamp::mesh
