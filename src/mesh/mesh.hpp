// Unstructured finite-volume mesh: cells connected by faces.
//
// The representation matches what FLUSEPA's front-end hands to the
// partitioner (paper §V): cells carry volumes/centroids and a temporal
// level τ; faces carry areas/normals and connect exactly one or two
// cells (one → physical boundary face). A face's temporal level is the
// minimum of its adjacent cells' levels: the face flux must refresh at
// the finer neighbour's rate (paper Fig 4's "active faces").
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "mesh/geometry.hpp"
#include "support/check.hpp"
#include "support/types.hpp"

namespace tamp::mesh {

struct MeshPermutation;

/// Immutable-topology mesh assembled by MeshBuilder. Temporal levels are
/// mutable (they are a solver-assigned annotation, not topology).
class Mesh {
public:
  friend class MeshBuilder;
  /// Renumbering constructor (mesh/reorder.hpp): needs raw array access to
  /// preserve each cell's face-gather order under the permutation.
  friend Mesh permute_mesh(const Mesh& mesh, const MeshPermutation& perm);

  [[nodiscard]] index_t num_cells() const { return num_cells_; }
  [[nodiscard]] index_t num_faces() const {
    return static_cast<index_t>(face_area_.size());
  }
  [[nodiscard]] index_t num_interior_faces() const { return num_interior_; }

  /// Adjacent cells of face f. side ∈ {0,1}; boundary faces return
  /// invalid_index on side 1.
  [[nodiscard]] index_t face_cell(index_t f, int side) const {
    TAMP_DBG_ASSERT(side == 0 || side == 1, "side must be 0 or 1");
    return face_cells_[2 * static_cast<std::size_t>(f) +
                       static_cast<std::size_t>(side)];
  }
  [[nodiscard]] bool is_boundary_face(index_t f) const {
    return face_cells_[2 * static_cast<std::size_t>(f) + 1] == invalid_index;
  }
  /// Given one adjacent cell, the cell across face f (invalid_index at a
  /// boundary).
  [[nodiscard]] index_t face_other_cell(index_t f, index_t c) const {
    const index_t a = face_cell(f, 0);
    const index_t b = face_cell(f, 1);
    TAMP_DBG_ASSERT(c == a || c == b, "cell not adjacent to face");
    return c == a ? b : a;
  }

  /// Faces bounding cell c.
  [[nodiscard]] std::span<const index_t> cell_faces(index_t c) const {
    const auto b =
        static_cast<std::size_t>(cell_face_xadj_[static_cast<std::size_t>(c)]);
    const auto e = static_cast<std::size_t>(
        cell_face_xadj_[static_cast<std::size_t>(c) + 1]);
    return {cell_face_.data() + b, e - b};
  }

  [[nodiscard]] double cell_volume(index_t c) const {
    return cell_volume_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] Vec3 cell_centroid(index_t c) const {
    return cell_centroid_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double face_area(index_t f) const {
    return face_area_[static_cast<std::size_t>(f)];
  }
  /// Unit normal oriented from face_cell(f,0) towards face_cell(f,1)
  /// (outward at boundaries).
  [[nodiscard]] Vec3 face_normal(index_t f) const {
    return face_normal_[static_cast<std::size_t>(f)];
  }

  // --- temporal levels ----------------------------------------------------

  [[nodiscard]] level_t cell_level(index_t c) const {
    return cell_level_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const std::vector<level_t>& cell_levels() const {
    return cell_level_;
  }
  /// Highest temporal level present in the mesh (τmax).
  [[nodiscard]] level_t max_level() const { return max_level_; }
  /// Face level = min of adjacent cell levels (the rate the flux must
  /// refresh at).
  [[nodiscard]] level_t face_level(index_t f) const {
    const index_t a = face_cell(f, 0);
    const index_t b = face_cell(f, 1);
    const level_t la = cell_level(a);
    return b == invalid_index ? la : std::min(la, cell_level(b));
  }

  /// Replace the temporal level annotation. Values must be in [0, 127].
  void set_cell_levels(std::vector<level_t> levels);

  // --- derived structures ---------------------------------------------------

  /// Dual graph: one vertex per cell, one edge per interior face.
  /// Vertex weights initialised to 1 with `ncon` constraints (strategies
  /// overwrite them). Edge weights are 1 (one face = one coupling).
  [[nodiscard]] graph::Csr dual_graph(int ncon = 1) const;

  /// Structural sanity checks (face/cell handshake, positive volumes and
  /// areas, normals unit-length). Throws invariant_error on failure.
  void validate() const;

private:
  Mesh() = default;

  index_t num_cells_ = 0;
  index_t num_interior_ = 0;
  std::vector<index_t> face_cells_;      // 2 per face
  std::vector<double> face_area_;
  std::vector<Vec3> face_normal_;
  std::vector<double> cell_volume_;
  std::vector<Vec3> cell_centroid_;
  std::vector<level_t> cell_level_;
  level_t max_level_ = 0;
  std::vector<eindex_t> cell_face_xadj_;
  std::vector<index_t> cell_face_;
};

/// Assembles a Mesh from cells and faces.
class MeshBuilder {
public:
  explicit MeshBuilder(index_t num_cells);

  /// Define geometric properties of a cell.
  void set_cell(index_t c, double volume, Vec3 centroid);

  /// Add an interior face between cells a and b.
  void add_interior_face(index_t a, index_t b, double area, Vec3 unit_normal);

  /// Add a boundary face of cell a (normal pointing outward).
  void add_boundary_face(index_t a, double area, Vec3 unit_normal);

  /// Finalise. Cell levels default to 0; callers typically follow up with
  /// an assign_levels_* function from mesh/levels.hpp.
  Mesh build();

private:
  index_t num_cells_;
  std::vector<char> cell_set_;
  std::vector<index_t> face_cells_;
  std::vector<double> face_area_;
  std::vector<Vec3> face_normal_;
  std::vector<double> cell_volume_;
  std::vector<Vec3> cell_centroid_;
};

}  // namespace tamp::mesh
