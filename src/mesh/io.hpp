// Mesh serialisation in a simple line-oriented text format.
//
// Lets expensive generated meshes be cached on disk and exchanged with
// external tools. Format (whitespace separated):
//
//   tamp-mesh 1
//   cells <N>
//   <volume> <cx> <cy> <cz> <level>      × N
//   faces <M>
//   <cell0> <cell1|-1> <area> <nx> <ny> <nz>   × M
#pragma once

#include <iosfwd>
#include <string>

#include "mesh/mesh.hpp"

namespace tamp::mesh {

/// Serialise a mesh (throws runtime_failure on I/O error).
void save_mesh(const Mesh& mesh, const std::string& path);
void write_mesh(const Mesh& mesh, std::ostream& os);

/// Parse a mesh (throws runtime_failure on malformed input).
Mesh load_mesh(const std::string& path);
Mesh read_mesh(std::istream& is);

}  // namespace tamp::mesh
