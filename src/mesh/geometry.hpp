// Small geometric vocabulary types for the finite-volume mesh.
#pragma once

#include <cmath>

namespace tamp::mesh {

/// 3-component geometric vector.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend Vec3 operator+(Vec3 a, Vec3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Vec3 operator-(Vec3 a, Vec3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Vec3 operator*(double s, Vec3 a) { return {s * a.x, s * a.y, s * a.z}; }
  friend Vec3 operator*(Vec3 a, double s) { return s * a; }
  friend Vec3 operator/(Vec3 a, double s) { return {a.x / s, a.y / s, a.z / s}; }
  Vec3& operator+=(Vec3 b) {
    x += b.x;
    y += b.y;
    z += b.z;
    return *this;
  }
};

inline double dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
inline double norm(Vec3 a) { return std::sqrt(dot(a, a)); }
inline Vec3 normalized(Vec3 a) {
  const double n = norm(a);
  return n > 0 ? a / n : Vec3{1.0, 0.0, 0.0};
}
inline double distance(Vec3 a, Vec3 b) { return norm(a - b); }

}  // namespace tamp::mesh
