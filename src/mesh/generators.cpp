#include "mesh/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "mesh/levels.hpp"
#include "support/rng.hpp"

namespace tamp::mesh {

namespace {

/// Normalised cell-centre coordinate in [0,1] for lattice index i of n.
double centre(index_t i, index_t n) {
  return (static_cast<double>(i) + 0.5) / static_cast<double>(n);
}

/// Pick lattice dimensions with the given aspect ratio whose product is
/// close to `target`.
void pick_dims(index_t target, double ax, double ay, double az, index_t& nx,
               index_t& ny, index_t& nz) {
  TAMP_EXPECTS(target >= 8, "target cell count too small");
  const double s =
      std::cbrt(static_cast<double>(target) / (ax * ay * az));
  nx = std::max<index_t>(2, static_cast<index_t>(std::llround(ax * s)));
  ny = std::max<index_t>(2, static_cast<index_t>(std::llround(ay * s)));
  nz = std::max<index_t>(2, static_cast<index_t>(std::llround(az * s)));
}

/// Shared builder for the three paper-like families.
///
/// Topology: an (n0 × n1 × n2) lattice, with optional wrap-around in axis
/// 1 (cylindrical θ). Levels come from a refinement field via quantiles
/// (paper_fractions) or a linear field → level map. Volumes are set to
/// 8^τ so a CFL re-derivation reproduces τ.
class FamilyBuilder {
public:
  FamilyBuilder(index_t n0, index_t n1, index_t n2, bool wrap1)
      : n0_(n0), n1_(n1), n2_(n2), wrap1_(wrap1) {}

  [[nodiscard]] index_t num_cells() const { return n0_ * n1_ * n2_; }
  [[nodiscard]] index_t cell_id(index_t i0, index_t i1, index_t i2) const {
    return (i2 * n1_ + i1) * n0_ + i0;
  }

  template <typename FieldFn, typename PosFn>
  Mesh build(FieldFn&& field_fn, PosFn&& pos_fn,
             const std::vector<double>& fractions, bool paper_fractions,
             std::uint64_t seed) {
    const index_t n = num_cells();
    std::vector<double> field(static_cast<std::size_t>(n));
    for (index_t i2 = 0; i2 < n2_; ++i2)
      for (index_t i1 = 0; i1 < n1_; ++i1)
        for (index_t i0 = 0; i0 < n0_; ++i0)
          field[static_cast<std::size_t>(cell_id(i0, i1, i2))] = field_fn(
              centre(i0, n0_), centre(i1, n1_), centre(i2, n2_));

    std::vector<level_t> levels;
    if (paper_fractions) {
      levels = quantile_levels(field, fractions);
    } else {
      // Linear field → level mapping over the field's range.
      const auto [lo_it, hi_it] = std::minmax_element(field.begin(), field.end());
      const double lo = *lo_it;
      const double span = std::max(*hi_it - lo, 1e-300);
      const auto nlev = static_cast<int>(fractions.size());
      levels.resize(static_cast<std::size_t>(n));
      for (index_t c = 0; c < n; ++c) {
        const double t = (field[static_cast<std::size_t>(c)] - lo) / span;
        levels[static_cast<std::size_t>(c)] = static_cast<level_t>(
            std::clamp(static_cast<int>(t * nlev), 0, nlev - 1));
      }
    }

    Rng rng(seed);
    MeshBuilder mb(n);
    for (index_t i2 = 0; i2 < n2_; ++i2) {
      for (index_t i1 = 0; i1 < n1_; ++i1) {
        for (index_t i0 = 0; i0 < n0_; ++i0) {
          const index_t c = cell_id(i0, i1, i2);
          const level_t tau = levels[static_cast<std::size_t>(c)];
          const double h = std::exp2(static_cast<double>(tau));
          Vec3 pos = pos_fn(centre(i0, n0_), centre(i1, n1_), centre(i2, n2_));
          // Tiny jitter breaks exact lattice symmetry so partitioners see
          // "unstructured-like" input; it never moves a centroid past a
          // neighbour's.
          pos += Vec3{0.1 * (rng.uniform() - 0.5), 0.1 * (rng.uniform() - 0.5),
                      0.1 * (rng.uniform() - 0.5)};
          mb.set_cell(c, h * h * h, pos);
        }
      }
    }

    auto face_between = [&](index_t a, index_t b, Vec3 axis) {
      const double ha =
          std::exp2(static_cast<double>(levels[static_cast<std::size_t>(a)]));
      const double hb =
          std::exp2(static_cast<double>(levels[static_cast<std::size_t>(b)]));
      const double h = 0.5 * (ha + hb);
      mb.add_interior_face(a, b, h * h, axis);
    };
    auto boundary_face = [&](index_t a, Vec3 axis) {
      const double h =
          std::exp2(static_cast<double>(levels[static_cast<std::size_t>(a)]));
      mb.add_boundary_face(a, h * h, axis);
    };

    for (index_t i2 = 0; i2 < n2_; ++i2) {
      for (index_t i1 = 0; i1 < n1_; ++i1) {
        for (index_t i0 = 0; i0 < n0_; ++i0) {
          const index_t c = cell_id(i0, i1, i2);
          // +axis0
          if (i0 + 1 < n0_)
            face_between(c, cell_id(i0 + 1, i1, i2), {1, 0, 0});
          else
            boundary_face(c, {1, 0, 0});
          if (i0 == 0) boundary_face(c, {-1, 0, 0});
          // +axis1 (optionally periodic)
          if (i1 + 1 < n1_) {
            face_between(c, cell_id(i0, i1 + 1, i2), {0, 1, 0});
          } else if (wrap1_ && n1_ > 2) {
            face_between(c, cell_id(i0, 0, i2), {0, 1, 0});
          } else {
            boundary_face(c, {0, 1, 0});
          }
          if (i1 == 0 && !(wrap1_ && n1_ > 2)) boundary_face(c, {0, -1, 0});
          // +axis2
          if (i2 + 1 < n2_)
            face_between(c, cell_id(i0, i1, i2 + 1), {0, 0, 1});
          else
            boundary_face(c, {0, 0, 1});
          if (i2 == 0) boundary_face(c, {0, 0, -1});
        }
      }
    }

    Mesh mesh = mb.build();
    mesh.set_cell_levels(levels);
    return mesh;
  }

private:
  index_t n0_, n1_, n2_;
  bool wrap1_;
};

}  // namespace

const char* to_string(TestMeshKind kind) {
  switch (kind) {
    case TestMeshKind::cylinder: return "cylinder";
    case TestMeshKind::cube: return "cube";
    case TestMeshKind::nozzle: return "nozzle";
  }
  return "?";
}

TestMeshKind parse_test_mesh_kind(const std::string& name) {
  if (name == "cylinder") return TestMeshKind::cylinder;
  if (name == "cube") return TestMeshKind::cube;
  if (name == "nozzle" || name == "pprime" || name == "pprime_nozzle")
    return TestMeshKind::nozzle;
  throw precondition_error("unknown mesh kind: " + name +
                           " (expected cylinder|cube|nozzle)");
}

const PaperMeshStats& paper_stats(TestMeshKind kind) {
  // Table I of the paper, %Cells row (fractions re-derived from the raw
  // per-level cell counts so they sum to exactly 1).
  static const PaperMeshStats cylinder{
      "CYLINDER",
      6'400'505,
      {52697.0 / 6400505.0, 273525.0 / 6400505.0, 2088538.0 / 6400505.0,
       3985745.0 / 6400505.0}};
  static const PaperMeshStats cube{
      "CUBE",
      151'817,
      {2953.0 / 151817.0, 23489.0 / 151817.0, 514.0 / 151817.0,
       124861.0 / 151817.0}};
  static const PaperMeshStats nozzle{
      "PPRIME_NOZZLE",
      12'594'374,
      {1500741.0 / 12594374.0, 4052551.0 / 12594374.0,
       7041082.0 / 12594374.0}};
  switch (kind) {
    case TestMeshKind::cylinder: return cylinder;
    case TestMeshKind::cube: return cube;
    case TestMeshKind::nozzle: return nozzle;
  }
  throw precondition_error("invalid mesh kind");
}

Mesh make_test_mesh(TestMeshKind kind, const TestMeshSpec& spec) {
  switch (kind) {
    case TestMeshKind::cylinder: return make_cylinder_mesh(spec);
    case TestMeshKind::cube: return make_cube_mesh(spec);
    case TestMeshKind::nozzle: return make_nozzle_mesh(spec);
  }
  throw precondition_error("invalid mesh kind");
}

Mesh make_cylinder_mesh(const TestMeshSpec& spec) {
  // Axes: 0 = radial, 1 = azimuthal (periodic), 2 = axial.
  index_t nr = 0, ntheta = 0, nz = 0;
  pick_dims(spec.target_cells, 0.8, 1.6, 1.0, nr, ntheta, nz);
  FamilyBuilder fb(nr, ntheta, nz, /*wrap1=*/true);

  // The machinery piece sits on the inner radius over the central third
  // of the axis (paper Fig 3: τ=0 cells hug the central piece; levels
  // grow towards the far field).
  auto field = [](double r, double /*theta*/, double z) {
    const double axial_excess = std::max(0.0, std::abs(z - 0.5) - 0.18);
    return std::hypot(r, 0.7 * axial_excess);
  };
  const double r_inner = 1.0, r_outer = 12.0, height = 16.0;
  auto pos = [=](double r, double theta, double z) {
    const double rad = r_inner + (r_outer - r_inner) * r * r;  // graded
    const double ang = 2.0 * std::numbers::pi * theta;
    return Vec3{rad * std::cos(ang), rad * std::sin(ang), height * z};
  };
  return fb.build(field, pos, paper_stats(TestMeshKind::cylinder).level_fractions,
                  spec.paper_fractions, spec.seed);
}

Mesh make_cube_mesh(const TestMeshSpec& spec) {
  index_t nx = 0, ny = 0, nz = 0;
  pick_dims(spec.target_cells, 1.0, 1.0, 1.0, nx, ny, nz);
  FamilyBuilder fb(nx, ny, nz, /*wrap1=*/false);

  // Three non-contiguous hotspots (paper §III-B: worst case, complex to
  // divide).
  const Vec3 hotspots[3] = {{0.22, 0.25, 0.24}, {0.74, 0.42, 0.65},
                            {0.40, 0.78, 0.30}};
  auto field = [&](double x, double y, double z) {
    double d = std::numeric_limits<double>::max();
    for (const Vec3& h : hotspots) d = std::min(d, distance({x, y, z}, h));
    return d;
  };
  const double side = 10.0;
  auto pos = [=](double x, double y, double z) {
    return Vec3{side * x, side * y, side * z};
  };
  return fb.build(field, pos, paper_stats(TestMeshKind::cube).level_fractions,
                  spec.paper_fractions, spec.seed);
}

Mesh make_nozzle_mesh(const TestMeshSpec& spec) {
  // Elongated along x (jet axis), nozzle exit at x = 0.25.
  index_t nx = 0, ny = 0, nz = 0;
  pick_dims(spec.target_cells, 3.2, 1.0, 1.0, nx, ny, nz);
  FamilyBuilder fb(nx, ny, nz, /*wrap1=*/false);

  constexpr double x_exit = 0.25;
  auto field = [](double x, double y, double z) {
    const double r_axis = std::hypot(y - 0.5, z - 0.5);
    if (x >= x_exit) {
      // Downstream: refinement follows the spreading jet cone.
      const double cone = 0.06 + 0.35 * (x - x_exit);
      return std::max(0.0, r_axis - cone) + 0.15 * (x - x_exit);
    }
    // Upstream / inside the nozzle: refined close to the exit plane.
    return r_axis + 0.8 * (x_exit - x);
  };
  const double length = 40.0, width = 12.0;
  auto pos = [=](double x, double y, double z) {
    return Vec3{length * x, width * y, width * z};
  };
  return fb.build(field, pos, paper_stats(TestMeshKind::nozzle).level_fractions,
                  spec.paper_fractions, spec.seed);
}

Mesh make_lattice_mesh(index_t nx, index_t ny, index_t nz, double h) {
  TAMP_EXPECTS(nx > 0 && ny > 0 && nz > 0, "lattice dims must be positive");
  TAMP_EXPECTS(h > 0, "spacing must be positive");
  MeshBuilder mb(nx * ny * nz);
  auto id = [=](index_t i, index_t j, index_t k) {
    return (k * ny + j) * nx + i;
  };
  for (index_t k = 0; k < nz; ++k)
    for (index_t j = 0; j < ny; ++j)
      for (index_t i = 0; i < nx; ++i)
        mb.set_cell(id(i, j, k), h * h * h,
                    {h * (i + 0.5), h * (j + 0.5), h * (k + 0.5)});
  const double area = h * h;
  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const index_t c = id(i, j, k);
        if (i + 1 < nx) mb.add_interior_face(c, id(i + 1, j, k), area, {1, 0, 0});
        else mb.add_boundary_face(c, area, {1, 0, 0});
        if (i == 0) mb.add_boundary_face(c, area, {-1, 0, 0});
        if (j + 1 < ny) mb.add_interior_face(c, id(i, j + 1, k), area, {0, 1, 0});
        else mb.add_boundary_face(c, area, {0, 1, 0});
        if (j == 0) mb.add_boundary_face(c, area, {0, -1, 0});
        if (k + 1 < nz) mb.add_interior_face(c, id(i, j, k + 1), area, {0, 0, 1});
        else mb.add_boundary_face(c, area, {0, 0, 1});
        if (k == 0) mb.add_boundary_face(c, area, {0, 0, -1});
      }
    }
  }
  return mb.build();
}

Mesh make_graded_box_mesh(index_t nx, index_t ny, index_t nz,
                          double grading_ratio, double h0) {
  TAMP_EXPECTS(nx > 0 && ny > 0 && nz > 0, "lattice dims must be positive");
  TAMP_EXPECTS(grading_ratio >= 1.0, "grading ratio must be >= 1");
  TAMP_EXPECTS(h0 > 0, "base spacing must be positive");

  auto spacings = [&](index_t n) {
    std::vector<double> dx(static_cast<std::size_t>(n));
    double h = h0;
    for (index_t i = 0; i < n; ++i) {
      dx[static_cast<std::size_t>(i)] = h;
      h *= grading_ratio;
    }
    return dx;
  };
  auto edges = [](const std::vector<double>& dx) {
    std::vector<double> x(dx.size() + 1, 0.0);
    for (std::size_t i = 0; i < dx.size(); ++i) x[i + 1] = x[i] + dx[i];
    return x;
  };
  const auto dxs = spacings(nx), dys = spacings(ny), dzs = spacings(nz);
  const auto xs = edges(dxs), ys = edges(dys), zs = edges(dzs);

  MeshBuilder mb(nx * ny * nz);
  auto id = [=](index_t i, index_t j, index_t k) {
    return (k * ny + j) * nx + i;
  };
  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const auto si = static_cast<std::size_t>(i);
        const auto sj = static_cast<std::size_t>(j);
        const auto sk = static_cast<std::size_t>(k);
        mb.set_cell(id(i, j, k), dxs[si] * dys[sj] * dzs[sk],
                    {0.5 * (xs[si] + xs[si + 1]), 0.5 * (ys[sj] + ys[sj + 1]),
                     0.5 * (zs[sk] + zs[sk + 1])});
      }
    }
  }
  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const auto si = static_cast<std::size_t>(i);
        const auto sj = static_cast<std::size_t>(j);
        const auto sk = static_cast<std::size_t>(k);
        const index_t c = id(i, j, k);
        const double ayz = dys[sj] * dzs[sk];
        const double axz = dxs[si] * dzs[sk];
        const double axy = dxs[si] * dys[sj];
        if (i + 1 < nx) mb.add_interior_face(c, id(i + 1, j, k), ayz, {1, 0, 0});
        else mb.add_boundary_face(c, ayz, {1, 0, 0});
        if (i == 0) mb.add_boundary_face(c, ayz, {-1, 0, 0});
        if (j + 1 < ny) mb.add_interior_face(c, id(i, j + 1, k), axz, {0, 1, 0});
        else mb.add_boundary_face(c, axz, {0, 1, 0});
        if (j == 0) mb.add_boundary_face(c, axz, {0, -1, 0});
        if (k + 1 < nz) mb.add_interior_face(c, id(i, j, k + 1), axy, {0, 0, 1});
        else mb.add_boundary_face(c, axy, {0, 0, 1});
        if (k == 0) mb.add_boundary_face(c, axy, {0, 0, -1});
      }
    }
  }
  return mb.build();
}

}  // namespace tamp::mesh
