// Mesh renumbering mechanics: apply a cell/face permutation to a Mesh.
//
// The locality layer (partition/reorder.hpp decides the *order*, this
// header applies it) renumbers cells and faces so that every
// (domain, temporal-class) object list becomes one contiguous
// [begin, end) range and the solver kernels can stream instead of
// gather. This file is pure mechanics: a permutation is data, applying
// it is topology-preserving relabelling.
//
// Contract (see DESIGN.md "Locality layout"): a permutation maps
// ORIGINAL ids to RENUMBERED ids (`old_to_new`) and back (`new_to_old`).
// `permute_mesh` preserves, for every cell, the relative order of its
// face list — the solver's per-cell accumulator gather is a sequence of
// floating-point additions, so preserving gather order is what makes a
// permuted run bitwise-identical to the reference after mapping ids
// through the inverse permutation.
#pragma once

#include <vector>

#include "mesh/mesh.hpp"
#include "support/check.hpp"
#include "support/types.hpp"

namespace tamp::mesh {

/// A paired cell + face renumbering of one mesh. All four vectors are
/// bijections; `new_to_old` entries are the inverses of `old_to_new`.
struct MeshPermutation {
  std::vector<index_t> cell_old_to_new;
  std::vector<index_t> cell_new_to_old;
  std::vector<index_t> face_old_to_new;
  std::vector<index_t> face_new_to_old;
};

/// Is `perm` a bijection of [0, n)? O(n) check, no throw.
[[nodiscard]] bool is_permutation(const std::vector<index_t>& perm);

/// Invert a bijection of [0, n): result[perm[i]] = i. Throws
/// precondition_error if `perm` is not a permutation.
[[nodiscard]] std::vector<index_t> invert_permutation(
    const std::vector<index_t>& perm);

/// Identity permutation sized for `mesh` (the `--reorder none` layout).
[[nodiscard]] MeshPermutation identity_permutation(const Mesh& mesh);

/// Throws precondition_error unless `perm` is a consistent pair of
/// cell/face bijections sized for `mesh`.
void validate_permutation(const Mesh& mesh, const MeshPermutation& perm);

/// Build the renumbered mesh: cell/face geometry, temporal levels and
/// adjacency relabelled through `perm`. Face orientation (which adjacent
/// cell is side 0) and each cell's face-list order are preserved, so
/// per-object solver arithmetic is bitwise-identical to the original
/// mesh modulo the id mapping.
[[nodiscard]] Mesh permute_mesh(const Mesh& mesh, const MeshPermutation& perm);

/// Relabel a per-cell attribute vector: result[new_id] = values[old_id].
template <class T>
[[nodiscard]] std::vector<T> permute_cell_values(
    const std::vector<T>& values, const MeshPermutation& perm) {
  TAMP_EXPECTS(values.size() == perm.cell_new_to_old.size(),
               "value vector size must equal cell count");
  std::vector<T> out(values.size());
  for (std::size_t n = 0; n < out.size(); ++n)
    out[n] = values[static_cast<std::size_t>(perm.cell_new_to_old[n])];
  return out;
}

}  // namespace tamp::mesh
