// Legacy-VTK export for visual inspection in ParaView/VisIt.
//
// The mesh stores cell centroids rather than nodal coordinates (all the
// algorithms here are cell-centred), so the natural export is a point
// cloud: one vertex per cell carrying scalar fields — temporal level,
// domain id, volume, solver state. ParaView's point Gaussian / glyph
// representations make partition and level structure directly visible.
#pragma once

#include <string>
#include <vector>

#include "mesh/mesh.hpp"

namespace tamp::mesh {

/// One named per-cell scalar field.
struct VtkField {
  std::string name;
  std::vector<double> values;  ///< one per cell
};

/// Write the cell-centroid cloud with the given fields as legacy VTK
/// POLYDATA. Throws runtime_failure on I/O error, precondition_error on
/// size mismatches or empty/duplicate field names.
void write_vtk_points(const Mesh& mesh, const std::string& path,
                      const std::vector<VtkField>& fields = {});

/// Convenience: export mesh + temporal level + optional domain ids.
void write_vtk_partition(const Mesh& mesh, const std::string& path,
                         const std::vector<part_t>& domain_of_cell = {});

}  // namespace tamp::mesh
