#include "mesh/vtk.hpp"

#include <fstream>
#include <set>

namespace tamp::mesh {

void write_vtk_points(const Mesh& mesh, const std::string& path,
                      const std::vector<VtkField>& fields) {
  std::set<std::string> names;
  for (const VtkField& f : fields) {
    TAMP_EXPECTS(!f.name.empty(), "VTK field name must not be empty");
    TAMP_EXPECTS(f.name.find(' ') == std::string::npos,
                 "VTK field names cannot contain spaces: " + f.name);
    TAMP_EXPECTS(names.insert(f.name).second,
                 "duplicate VTK field name: " + f.name);
    TAMP_EXPECTS(f.values.size() == static_cast<std::size_t>(mesh.num_cells()),
                 "VTK field '" + f.name + "' size must equal cell count");
  }

  std::ofstream out(path);
  if (!out.good()) throw runtime_failure("cannot open VTK output: " + path);
  out.precision(9);
  const index_t n = mesh.num_cells();
  out << "# vtk DataFile Version 3.0\n"
      << "tamp mesh cell centroids\nASCII\nDATASET POLYDATA\n"
      << "POINTS " << n << " double\n";
  for (index_t c = 0; c < n; ++c) {
    const Vec3 p = mesh.cell_centroid(c);
    out << p.x << ' ' << p.y << ' ' << p.z << '\n';
  }
  out << "VERTICES " << n << ' ' << 2 * static_cast<long long>(n) << '\n';
  for (index_t c = 0; c < n; ++c) out << "1 " << c << '\n';

  out << "POINT_DATA " << n << '\n';
  // Always-present intrinsic fields.
  out << "SCALARS temporal_level int 1\nLOOKUP_TABLE default\n";
  for (index_t c = 0; c < n; ++c)
    out << static_cast<int>(mesh.cell_level(c)) << '\n';
  out << "SCALARS volume double 1\nLOOKUP_TABLE default\n";
  for (index_t c = 0; c < n; ++c) out << mesh.cell_volume(c) << '\n';
  for (const VtkField& f : fields) {
    out << "SCALARS " << f.name << " double 1\nLOOKUP_TABLE default\n";
    for (const double v : f.values) out << v << '\n';
  }
  if (!out.good()) throw runtime_failure("error writing VTK to: " + path);
}

void write_vtk_partition(const Mesh& mesh, const std::string& path,
                         const std::vector<part_t>& domain_of_cell) {
  std::vector<VtkField> fields;
  if (!domain_of_cell.empty()) {
    TAMP_EXPECTS(domain_of_cell.size() ==
                     static_cast<std::size_t>(mesh.num_cells()),
                 "domain vector size must equal cell count");
    VtkField domains;
    domains.name = "domain";
    domains.values.reserve(domain_of_cell.size());
    for (const part_t d : domain_of_cell)
      domains.values.push_back(static_cast<double>(d));
    fields.push_back(std::move(domains));
  }
  write_vtk_points(mesh, path, fields);
}

}  // namespace tamp::mesh
