#include "mesh/levels.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tamp::mesh {

double LevelCensus::cell_fraction(level_t l) const {
  if (total_cells == 0) return 0.0;
  return static_cast<double>(cells_per_level[static_cast<std::size_t>(l)]) /
         static_cast<double>(total_cells);
}

weight_t LevelCensus::total_computation() const {
  const auto max_level = static_cast<level_t>(num_levels() - 1);
  weight_t total = 0;
  for (level_t l = 0; l < num_levels(); ++l)
    total += static_cast<weight_t>(cells_per_level[static_cast<std::size_t>(l)]) *
             operating_cost(l, max_level);
  return total;
}

double LevelCensus::computation_fraction(level_t l) const {
  const weight_t total = total_computation();
  if (total == 0) return 0.0;
  const auto max_level = static_cast<level_t>(num_levels() - 1);
  const weight_t mine =
      static_cast<weight_t>(cells_per_level[static_cast<std::size_t>(l)]) *
      operating_cost(l, max_level);
  return static_cast<double>(mine) / static_cast<double>(total);
}

LevelCensus level_census(const Mesh& mesh) {
  LevelCensus census;
  census.cells_per_level.assign(static_cast<std::size_t>(mesh.max_level()) + 1,
                                0);
  census.total_cells = mesh.num_cells();
  for (index_t c = 0; c < mesh.num_cells(); ++c)
    ++census.cells_per_level[static_cast<std::size_t>(mesh.cell_level(c))];
  return census;
}

std::vector<level_t> assign_levels_by_cfl(Mesh& mesh, level_t num_levels) {
  TAMP_EXPECTS(num_levels >= 1, "need at least one level");
  const index_t n = mesh.num_cells();
  double h_min = std::numeric_limits<double>::max();
  std::vector<double> h(static_cast<std::size_t>(n));
  for (index_t c = 0; c < n; ++c) {
    h[static_cast<std::size_t>(c)] = std::cbrt(mesh.cell_volume(c));
    h_min = std::min(h_min, h[static_cast<std::size_t>(c)]);
  }
  std::vector<level_t> levels(static_cast<std::size_t>(n));
  for (index_t c = 0; c < n; ++c) {
    const double ratio = h[static_cast<std::size_t>(c)] / h_min;
    const auto raw = static_cast<int>(std::floor(std::log2(ratio)));
    levels[static_cast<std::size_t>(c)] = static_cast<level_t>(
        std::clamp(raw, 0, static_cast<int>(num_levels) - 1));
  }
  mesh.set_cell_levels(levels);
  return levels;
}

index_t smooth_level_jumps(Mesh& mesh, level_t max_jump) {
  TAMP_EXPECTS(max_jump >= 0, "max_jump must be non-negative");
  std::vector<level_t> levels = mesh.cell_levels();
  std::vector<char> changed_any(static_cast<std::size_t>(mesh.num_cells()), 0);
  // Worklist fixpoint: lowering a cell can only oblige its neighbours to
  // lower too, and levels are bounded below by 0, so this terminates.
  std::vector<index_t> work(static_cast<std::size_t>(mesh.num_cells()));
  for (index_t c = 0; c < mesh.num_cells(); ++c)
    work[static_cast<std::size_t>(c)] = c;
  while (!work.empty()) {
    std::vector<index_t> next;
    for (const index_t c : work) {
      level_t limit = 127;
      for (const index_t f : mesh.cell_faces(c)) {
        const index_t nb = mesh.face_other_cell(f, c);
        if (nb == invalid_index) continue;
        limit = std::min<level_t>(
            limit, static_cast<level_t>(levels[static_cast<std::size_t>(nb)] +
                                        max_jump));
      }
      if (levels[static_cast<std::size_t>(c)] > limit) {
        levels[static_cast<std::size_t>(c)] = limit;
        changed_any[static_cast<std::size_t>(c)] = 1;
        for (const index_t f : mesh.cell_faces(c)) {
          const index_t nb = mesh.face_other_cell(f, c);
          if (nb != invalid_index) next.push_back(nb);
        }
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    work = std::move(next);
  }
  mesh.set_cell_levels(std::move(levels));
  index_t lowered = 0;
  for (const char c : changed_any) lowered += c;
  return lowered;
}

std::vector<level_t> quantile_levels(const std::vector<double>& field,
                                     const std::vector<double>& fractions) {
  const auto n = static_cast<index_t>(field.size());
  TAMP_EXPECTS(!fractions.empty(), "need at least one level fraction");
  const double sum = std::accumulate(fractions.begin(), fractions.end(), 0.0);
  TAMP_EXPECTS(std::abs(sum - 1.0) < 1e-6, "level fractions must sum to 1");

  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    const double fa = field[static_cast<std::size_t>(a)];
    const double fb = field[static_cast<std::size_t>(b)];
    return fa != fb ? fa < fb : a < b;  // deterministic tie-break
  });

  std::vector<level_t> levels(static_cast<std::size_t>(n));
  std::size_t pos = 0;
  double cumulative = 0.0;
  for (std::size_t l = 0; l < fractions.size(); ++l) {
    cumulative += fractions[l];
    const auto end =
        l + 1 == fractions.size()
            ? static_cast<std::size_t>(n)
            : std::min(static_cast<std::size_t>(n),
                       static_cast<std::size_t>(
                           std::llround(cumulative * static_cast<double>(n))));
    for (; pos < end; ++pos)
      levels[static_cast<std::size_t>(order[pos])] = static_cast<level_t>(l);
  }
  return levels;
}

std::vector<level_t> assign_levels_by_quantiles(
    Mesh& mesh, const std::vector<double>& field,
    const std::vector<double>& fractions) {
  TAMP_EXPECTS(field.size() == static_cast<std::size_t>(mesh.num_cells()),
               "field size must equal cell count");
  std::vector<level_t> levels = quantile_levels(field, fractions);
  mesh.set_cell_levels(levels);
  return levels;
}

}  // namespace tamp::mesh
