// Temporal-level assignment policies and level census (paper Table I).
//
// In FLUSEPA the maximum allowed time step of a cell follows from a CFL
// condition on its size; levels quantise that on a ×2 ladder (paper
// §II-A). Two policies are provided:
//   * by_cfl        — physical: τ = floor(log2(Δt_cell / Δt_min)), the
//                     solver's own rule;
//   * by_quantiles  — calibrated: rank cells by a refinement field and cut
//                     at prescribed level fractions — used to reproduce
//                     Table I's exact per-level populations.
#pragma once

#include <vector>

#include "mesh/mesh.hpp"
#include "support/types.hpp"

namespace tamp::mesh {

/// Per-iteration operating cost of a cell: 2^(τmax − τ) updates (paper
/// §II-A: each level halves the update frequency).
inline weight_t operating_cost(level_t level, level_t max_level) {
  TAMP_DBG_ASSERT(level >= 0 && level <= max_level, "level out of range");
  return weight_t{1} << (max_level - level);
}

/// Population census of temporal levels: the content of paper Table I.
struct LevelCensus {
  std::vector<index_t> cells_per_level;   ///< #Cells row
  index_t total_cells = 0;

  [[nodiscard]] level_t num_levels() const {
    return static_cast<level_t>(cells_per_level.size());
  }
  /// %Cells row of Table I.
  [[nodiscard]] double cell_fraction(level_t l) const;
  /// %Computation row of Table I (weighted by operating cost).
  [[nodiscard]] double computation_fraction(level_t l) const;
  /// Total work units of one iteration (Σ cells · 2^(τmax−τ)).
  [[nodiscard]] weight_t total_computation() const;
};

/// Count cells per temporal level.
LevelCensus level_census(const Mesh& mesh);

/// Assign levels by CFL quantisation of the cell characteristic length
/// h = volume^(1/3): τ = clamp(floor(log2(h / h_min)), 0, num_levels-1).
/// Returns the assigned level vector (also applied to the mesh).
std::vector<level_t> assign_levels_by_cfl(Mesh& mesh, level_t num_levels);

/// Enforce the graded-mesh constraint τ(a) ≤ τ(b) + max_jump across every
/// interior face by *lowering* offending cells (never raising — lowering
/// a level is always admissible, it just updates the cell more often).
/// Iterates to the unique fixpoint. Returns the number of cells lowered.
index_t smooth_level_jumps(Mesh& mesh, level_t max_jump = 1);

/// Rank entries of `field` ascending (smallest → level 0) and cut at
/// cumulative `fractions` (one entry per level, summing to ~1; the last
/// level absorbs rounding). Deterministic tie-break on index.
std::vector<level_t> quantile_levels(const std::vector<double>& field,
                                     const std::vector<double>& fractions);

/// Apply quantile_levels() to a mesh's cells. Produces spatially coherent
/// level bands when the field is smooth, while hitting the target
/// populations exactly (used to match Table I).
std::vector<level_t> assign_levels_by_quantiles(
    Mesh& mesh, const std::vector<double>& field,
    const std::vector<double>& fractions);

}  // namespace tamp::mesh
