#include "mesh/reorder.hpp"

#include <algorithm>

namespace tamp::mesh {

bool is_permutation(const std::vector<index_t>& perm) {
  const auto n = static_cast<index_t>(perm.size());
  std::vector<char> seen(perm.size(), 0);
  for (const index_t p : perm) {
    if (p < 0 || p >= n || seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = 1;
  }
  return true;
}

std::vector<index_t> invert_permutation(const std::vector<index_t>& perm) {
  TAMP_EXPECTS(is_permutation(perm), "vector is not a permutation of [0, n)");
  std::vector<index_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
  return inv;
}

MeshPermutation identity_permutation(const Mesh& mesh) {
  MeshPermutation p;
  p.cell_old_to_new.resize(static_cast<std::size_t>(mesh.num_cells()));
  p.face_old_to_new.resize(static_cast<std::size_t>(mesh.num_faces()));
  for (index_t c = 0; c < mesh.num_cells(); ++c)
    p.cell_old_to_new[static_cast<std::size_t>(c)] = c;
  for (index_t f = 0; f < mesh.num_faces(); ++f)
    p.face_old_to_new[static_cast<std::size_t>(f)] = f;
  p.cell_new_to_old = p.cell_old_to_new;
  p.face_new_to_old = p.face_old_to_new;
  return p;
}

void validate_permutation(const Mesh& mesh, const MeshPermutation& perm) {
  TAMP_EXPECTS(perm.cell_old_to_new.size() ==
                   static_cast<std::size_t>(mesh.num_cells()),
               "cell permutation size must equal cell count");
  TAMP_EXPECTS(perm.face_old_to_new.size() ==
                   static_cast<std::size_t>(mesh.num_faces()),
               "face permutation size must equal face count");
  TAMP_EXPECTS(is_permutation(perm.cell_old_to_new),
               "cell_old_to_new is not a permutation");
  TAMP_EXPECTS(is_permutation(perm.face_old_to_new),
               "face_old_to_new is not a permutation");
  TAMP_EXPECTS(perm.cell_new_to_old.size() == perm.cell_old_to_new.size() &&
                   perm.face_new_to_old.size() == perm.face_old_to_new.size(),
               "inverse permutation size mismatch");
  for (std::size_t i = 0; i < perm.cell_old_to_new.size(); ++i)
    TAMP_EXPECTS(perm.cell_new_to_old[static_cast<std::size_t>(
                     perm.cell_old_to_new[i])] == static_cast<index_t>(i),
                 "cell_new_to_old is not the inverse of cell_old_to_new");
  for (std::size_t i = 0; i < perm.face_old_to_new.size(); ++i)
    TAMP_EXPECTS(perm.face_new_to_old[static_cast<std::size_t>(
                     perm.face_old_to_new[i])] == static_cast<index_t>(i),
                 "face_new_to_old is not the inverse of face_old_to_new");
}

Mesh permute_mesh(const Mesh& mesh, const MeshPermutation& perm) {
  validate_permutation(mesh, perm);
  const auto ncells = static_cast<std::size_t>(mesh.num_cells());
  const auto nfaces = static_cast<std::size_t>(mesh.num_faces());

  Mesh out;
  out.num_cells_ = mesh.num_cells_;
  out.num_interior_ = mesh.num_interior_;
  out.max_level_ = mesh.max_level_;

  out.cell_volume_.resize(ncells);
  out.cell_centroid_.resize(ncells);
  out.cell_level_.resize(ncells);
  for (std::size_t n = 0; n < ncells; ++n) {
    const auto o = static_cast<std::size_t>(perm.cell_new_to_old[n]);
    out.cell_volume_[n] = mesh.cell_volume_[o];
    out.cell_centroid_[n] = mesh.cell_centroid_[o];
    out.cell_level_[n] = mesh.cell_level_[o];
  }

  out.face_area_.resize(nfaces);
  out.face_normal_.resize(nfaces);
  out.face_cells_.resize(2 * nfaces);
  for (std::size_t n = 0; n < nfaces; ++n) {
    const auto o = static_cast<std::size_t>(perm.face_new_to_old[n]);
    out.face_area_[n] = mesh.face_area_[o];
    out.face_normal_[n] = mesh.face_normal_[o];
    // Side order is preserved: the normal keeps pointing side 0 → side 1.
    const index_t a = mesh.face_cells_[2 * o];
    const index_t b = mesh.face_cells_[2 * o + 1];
    out.face_cells_[2 * n] =
        perm.cell_old_to_new[static_cast<std::size_t>(a)];
    out.face_cells_[2 * n + 1] =
        b == invalid_index
            ? invalid_index
            : perm.cell_old_to_new[static_cast<std::size_t>(b)];
  }

  // Cell → face adjacency: copy each cell's list in its ORIGINAL order
  // with face ids mapped, rather than rebuilding by counting sort. The
  // solver's accumulator gather follows this list, and floating-point
  // addition is order-sensitive — preserving the order is what makes the
  // permuted solver bitwise-equal to the reference.
  out.cell_face_xadj_.assign(ncells + 1, 0);
  for (std::size_t n = 0; n < ncells; ++n) {
    const auto o = static_cast<std::size_t>(perm.cell_new_to_old[n]);
    out.cell_face_xadj_[n + 1] =
        out.cell_face_xadj_[n] +
        (mesh.cell_face_xadj_[o + 1] - mesh.cell_face_xadj_[o]);
  }
  out.cell_face_.resize(static_cast<std::size_t>(out.cell_face_xadj_.back()));
  for (std::size_t n = 0; n < ncells; ++n) {
    const auto o = static_cast<std::size_t>(perm.cell_new_to_old[n]);
    auto cursor = static_cast<std::size_t>(out.cell_face_xadj_[n]);
    for (auto i = static_cast<std::size_t>(mesh.cell_face_xadj_[o]);
         i < static_cast<std::size_t>(mesh.cell_face_xadj_[o + 1]); ++i)
      out.cell_face_[cursor++] = perm.face_old_to_new[static_cast<std::size_t>(
          mesh.cell_face_[i])];
  }
  return out;
}

}  // namespace tamp::mesh
