// Synthetic mesh generators standing in for the Airbus production meshes.
//
// The paper's meshes (CYLINDER 6.4M cells, CUBE 152k, PPRIME_NOZZLE
// 12.6M) are proprietary. The experiments depend on two properties only:
// the dual-graph *topology* of a graded unstructured FV mesh, and the
// *population of temporal levels* (Table I). Each generator reproduces the
// described geometry family (cylindrical shells around a central piece of
// machinery; a cube with three non-contiguous hotspots; an axisymmetric
// nozzle-and-jet), computes a smooth refinement field from that geometry,
// and assigns temporal levels either by quantiles matched to the paper's
// Table I fractions (default) or by the CFL rule.
//
// Cell volumes are set to v0·8^τ so that the solver's CFL quantisation
// (Δt ∝ volume^(1/3)) reproduces the same level assignment: one level up
// ⇒ 2× the characteristic length ⇒ 2× the allowed time step.
#pragma once

#include <string>
#include <vector>

#include "mesh/mesh.hpp"
#include "support/types.hpp"

namespace tamp::mesh {

/// The paper's three test meshes.
enum class TestMeshKind { cylinder, cube, nozzle };

[[nodiscard]] const char* to_string(TestMeshKind kind);
/// Parse "cylinder" | "cube" | "nozzle" (throws precondition_error).
TestMeshKind parse_test_mesh_kind(const std::string& name);

/// Table I reference data for one mesh family.
struct PaperMeshStats {
  const char* name;
  index_t total_cells;                 ///< paper's full-scale cell count
  std::vector<double> level_fractions; ///< %Cells row, one entry per τ
};
[[nodiscard]] const PaperMeshStats& paper_stats(TestMeshKind kind);

/// Generation parameters common to the three families.
struct TestMeshSpec {
  /// Approximate number of cells to generate. Defaults to a laptop-scale
  /// reduction; pass paper_stats(kind).total_cells for full scale.
  index_t target_cells = 200'000;
  /// Use Table I level fractions (true) or CFL quantisation of the
  /// synthetic refinement field (false).
  bool paper_fractions = true;
  /// Deterministic seed for the small centroid jitter that breaks lattice
  /// symmetry (partitioners behave more realistically on jittered input).
  std::uint64_t seed = 42;
};

/// Build one of the three paper-like meshes.
Mesh make_test_mesh(TestMeshKind kind, const TestMeshSpec& spec = {});

/// CYLINDER: cylindrical shells around a central machinery piece; all
/// τ=0 cells hug the piece, levels grow towards the outer boundary.
Mesh make_cylinder_mesh(const TestMeshSpec& spec = {});

/// CUBE: uniform box lattice with three non-contiguous refinement
/// hotspots — the paper's worst case for partitioning.
Mesh make_cube_mesh(const TestMeshSpec& spec = {});

/// PPRIME_NOZZLE: elongated domain; refinement hugs the nozzle exit and
/// the downstream jet cone; three temporal levels.
Mesh make_nozzle_mesh(const TestMeshSpec& spec = {});

/// Plain uniform box lattice (nx × ny × nz cells, unit spacing h).
/// Geometrically exact (closed cells); used by solver tests.
Mesh make_lattice_mesh(index_t nx, index_t ny, index_t nz, double h = 1.0);

/// Tensor-product graded box: spacing grows geometrically away from the
/// refined corner with the given ratio per cell. Geometry is exactly
/// consistent (Σ area·normal = 0 per cell), so the full FV solver can run
/// on it with adaptive time stepping arising from real cell sizes.
Mesh make_graded_box_mesh(index_t nx, index_t ny, index_t nz,
                          double grading_ratio = 1.08, double h0 = 1.0);

}  // namespace tamp::mesh
