#include "mesh/evolve.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tamp::mesh {

EvolveStats evolve_levels(Mesh& mesh, double drift, Rng& rng) {
  TAMP_TRACE_SCOPE("mesh/evolve");
  TAMP_EXPECTS(drift >= 0.0 && drift <= 1.0, "drift must be in [0,1]");
  const index_t n = mesh.num_cells();
  const level_t max_level = mesh.max_level();
  std::vector<level_t> next(mesh.cell_levels());
  EvolveStats stats;

  for (index_t c = 0; c < n; ++c) {
    // Collect neighbour levels differing from ours.
    level_t mine = mesh.cell_level(c);
    std::array<level_t, 8> other{};
    std::size_t count = 0;
    for (const index_t f : mesh.cell_faces(c)) {
      const index_t nb = mesh.face_other_cell(f, c);
      if (nb == invalid_index) continue;
      const level_t ln = mesh.cell_level(nb);
      if (ln != mine && count < other.size()) other[count++] = ln;
    }
    if (count == 0) continue;
    ++stats.eligible_cells;
    if (rng.uniform() >= drift) continue;
    const level_t target = other[static_cast<std::size_t>(rng.below(count))];
    const level_t stepped = static_cast<level_t>(
        mine + (target > mine ? 1 : -1));
    next[static_cast<std::size_t>(c)] =
        std::clamp<level_t>(stepped, 0, max_level);
    if (next[static_cast<std::size_t>(c)] != mine) ++stats.cells_changed;
  }
  mesh.set_cell_levels(std::move(next));
  TAMP_METRIC_COUNT("mesh.evolve.eligible_cells", stats.eligible_cells);
  TAMP_METRIC_COUNT("mesh.evolve.cells_changed", stats.cells_changed);
  return stats;
}

}  // namespace tamp::mesh
