#include "mesh/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace tamp::mesh {

void write_mesh(const Mesh& mesh, std::ostream& os) {
  os << "tamp-mesh 1\n";
  os << "cells " << mesh.num_cells() << '\n';
  os.precision(17);
  for (index_t c = 0; c < mesh.num_cells(); ++c) {
    const Vec3 p = mesh.cell_centroid(c);
    os << mesh.cell_volume(c) << ' ' << p.x << ' ' << p.y << ' ' << p.z << ' '
       << static_cast<int>(mesh.cell_level(c)) << '\n';
  }
  os << "faces " << mesh.num_faces() << '\n';
  for (index_t f = 0; f < mesh.num_faces(); ++f) {
    const Vec3 n = mesh.face_normal(f);
    os << mesh.face_cell(f, 0) << ' ' << mesh.face_cell(f, 1) << ' '
       << mesh.face_area(f) << ' ' << n.x << ' ' << n.y << ' ' << n.z << '\n';
  }
}

void save_mesh(const Mesh& mesh, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) throw runtime_failure("cannot open mesh output: " + path);
  write_mesh(mesh, out);
  if (!out.good()) throw runtime_failure("error writing mesh to: " + path);
}

Mesh read_mesh(std::istream& is) {
  auto fail = [](const std::string& what) -> Mesh {
    throw runtime_failure("malformed tamp-mesh input: " + what);
  };

  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "tamp-mesh" || version != 1)
    return fail("bad header");

  std::string token;
  index_t ncells = 0;
  if (!(is >> token >> ncells) || token != "cells" || ncells <= 0)
    return fail("bad cell count");

  MeshBuilder mb(ncells);
  std::vector<level_t> levels(static_cast<std::size_t>(ncells));
  for (index_t c = 0; c < ncells; ++c) {
    double vol = 0;
    Vec3 p;
    int level = 0;
    if (!(is >> vol >> p.x >> p.y >> p.z >> level)) return fail("cell record");
    if (level < 0 || level > 127) return fail("level out of range");
    mb.set_cell(c, vol, p);
    levels[static_cast<std::size_t>(c)] = static_cast<level_t>(level);
  }

  index_t nfaces = 0;
  if (!(is >> token >> nfaces) || token != "faces" || nfaces < 0)
    return fail("bad face count");
  for (index_t f = 0; f < nfaces; ++f) {
    index_t a = 0, b = 0;
    double area = 0;
    Vec3 n;
    if (!(is >> a >> b >> area >> n.x >> n.y >> n.z)) return fail("face record");
    if (b == invalid_index)
      mb.add_boundary_face(a, area, n);
    else
      mb.add_interior_face(a, b, area, n);
  }

  Mesh mesh = mb.build();
  mesh.set_cell_levels(std::move(levels));
  return mesh;
}

Mesh load_mesh(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw runtime_failure("cannot open mesh input: " + path);
  return read_mesh(in);
}

}  // namespace tamp::mesh
