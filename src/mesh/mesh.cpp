#include "mesh/mesh.hpp"

#include <algorithm>
#include <cmath>

#include "graph/builder.hpp"

namespace tamp::mesh {

void Mesh::set_cell_levels(std::vector<level_t> levels) {
  TAMP_EXPECTS(levels.size() == static_cast<std::size_t>(num_cells_),
               "level vector size must equal cell count");
  level_t max_level = 0;
  for (const level_t l : levels) {
    TAMP_EXPECTS(l >= 0, "temporal levels must be non-negative");
    max_level = std::max(max_level, l);
  }
  cell_level_ = std::move(levels);
  max_level_ = max_level;
}

graph::Csr Mesh::dual_graph(int ncon) const {
  graph::Builder b(num_cells_, ncon);
  for (index_t f = 0; f < num_faces(); ++f) {
    if (!is_boundary_face(f)) b.add_edge(face_cell(f, 0), face_cell(f, 1));
  }
  return b.build();
}

void Mesh::validate() const {
  for (index_t c = 0; c < num_cells_; ++c) {
    TAMP_ENSURE(cell_volume(c) > 0.0, "non-positive cell volume");
    TAMP_ENSURE(!cell_faces(c).empty(), "cell with no faces");
  }
  index_t interior = 0;
  for (index_t f = 0; f < num_faces(); ++f) {
    TAMP_ENSURE(face_area(f) > 0.0, "non-positive face area");
    const double n = norm(face_normal(f));
    TAMP_ENSURE(std::abs(n - 1.0) < 1e-9, "face normal not unit length");
    const index_t a = face_cell(f, 0);
    const index_t b = face_cell(f, 1);
    TAMP_ENSURE(a >= 0 && a < num_cells_, "face cell 0 out of range");
    TAMP_ENSURE(b == invalid_index || (b >= 0 && b < num_cells_),
                "face cell 1 out of range");
    TAMP_ENSURE(a != b, "face connecting a cell to itself");
    if (b != invalid_index) ++interior;
    // Handshake: the face must appear in each adjacent cell's face list.
    for (const index_t cell : {a, b}) {
      if (cell == invalid_index) continue;
      const auto faces = cell_faces(cell);
      TAMP_ENSURE(std::find(faces.begin(), faces.end(), f) != faces.end(),
                  "face missing from adjacent cell's face list");
    }
  }
  TAMP_ENSURE(interior == num_interior_, "interior face count mismatch");
}

MeshBuilder::MeshBuilder(index_t num_cells) : num_cells_(num_cells) {
  TAMP_EXPECTS(num_cells > 0, "mesh needs at least one cell");
  cell_set_.assign(static_cast<std::size_t>(num_cells), 0);
  cell_volume_.assign(static_cast<std::size_t>(num_cells), 0.0);
  cell_centroid_.assign(static_cast<std::size_t>(num_cells), Vec3{});
}

void MeshBuilder::set_cell(index_t c, double volume, Vec3 centroid) {
  TAMP_EXPECTS(c >= 0 && c < num_cells_, "cell index out of range");
  TAMP_EXPECTS(volume > 0.0, "cell volume must be positive");
  cell_set_[static_cast<std::size_t>(c)] = 1;
  cell_volume_[static_cast<std::size_t>(c)] = volume;
  cell_centroid_[static_cast<std::size_t>(c)] = centroid;
}

void MeshBuilder::add_interior_face(index_t a, index_t b, double area,
                                    Vec3 unit_normal) {
  TAMP_EXPECTS(a >= 0 && a < num_cells_ && b >= 0 && b < num_cells_,
               "face cell out of range");
  TAMP_EXPECTS(a != b, "interior face must connect distinct cells");
  TAMP_EXPECTS(area > 0.0, "face area must be positive");
  face_cells_.push_back(a);
  face_cells_.push_back(b);
  face_area_.push_back(area);
  face_normal_.push_back(normalized(unit_normal));
}

void MeshBuilder::add_boundary_face(index_t a, double area, Vec3 unit_normal) {
  TAMP_EXPECTS(a >= 0 && a < num_cells_, "face cell out of range");
  TAMP_EXPECTS(area > 0.0, "face area must be positive");
  face_cells_.push_back(a);
  face_cells_.push_back(invalid_index);
  face_area_.push_back(area);
  face_normal_.push_back(normalized(unit_normal));
}

Mesh MeshBuilder::build() {
  for (index_t c = 0; c < num_cells_; ++c)
    TAMP_EXPECTS(cell_set_[static_cast<std::size_t>(c)],
                 "cell " + std::to_string(c) + " geometry never set");

  Mesh m;
  m.num_cells_ = num_cells_;
  m.face_cells_ = std::move(face_cells_);
  m.face_area_ = std::move(face_area_);
  m.face_normal_ = std::move(face_normal_);
  m.cell_volume_ = std::move(cell_volume_);
  m.cell_centroid_ = std::move(cell_centroid_);
  m.cell_level_.assign(static_cast<std::size_t>(num_cells_), 0);
  m.max_level_ = 0;

  const auto nfaces = static_cast<index_t>(m.face_area_.size());
  m.num_interior_ = 0;
  // Build cell→face CSR by counting sort.
  m.cell_face_xadj_.assign(static_cast<std::size_t>(num_cells_) + 1, 0);
  for (index_t f = 0; f < nfaces; ++f) {
    const index_t a = m.face_cells_[2 * static_cast<std::size_t>(f)];
    const index_t b = m.face_cells_[2 * static_cast<std::size_t>(f) + 1];
    ++m.cell_face_xadj_[static_cast<std::size_t>(a) + 1];
    if (b != invalid_index) {
      ++m.cell_face_xadj_[static_cast<std::size_t>(b) + 1];
      ++m.num_interior_;
    }
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(num_cells_); ++c)
    m.cell_face_xadj_[c + 1] += m.cell_face_xadj_[c];
  m.cell_face_.resize(static_cast<std::size_t>(m.cell_face_xadj_.back()));
  std::vector<eindex_t> cursor(m.cell_face_xadj_.begin(),
                               m.cell_face_xadj_.end() - 1);
  for (index_t f = 0; f < nfaces; ++f) {
    const index_t a = m.face_cells_[2 * static_cast<std::size_t>(f)];
    const index_t b = m.face_cells_[2 * static_cast<std::size_t>(f) + 1];
    m.cell_face_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(a)]++)] = f;
    if (b != invalid_index)
      m.cell_face_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(b)]++)] = f;
  }
  return m;
}

}  // namespace tamp::mesh
