#include "taskgraph/generate.hpp"

#include <algorithm>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "taskgraph/class_indexer.hpp"

namespace tamp::taskgraph {

TaskGraph generate_task_graph(const mesh::Mesh& mesh,
                              const std::vector<part_t>& domain_of_cell,
                              part_t ndomains, const GenerateOptions& opts,
                              ClassMap* class_map) {
  const index_t ncells = mesh.num_cells();
  const index_t nfaces = mesh.num_faces();
  TAMP_EXPECTS(domain_of_cell.size() == static_cast<std::size_t>(ncells),
               "domain vector size must equal cell count");
  TAMP_EXPECTS(ndomains >= 1, "need at least one domain");
  TAMP_EXPECTS(opts.num_iterations >= 1, "need at least one iteration");

  TAMP_TRACE_SCOPE("taskgraph/generate");

  const auto nlev = static_cast<level_t>(mesh.max_level() + 1);
  const TemporalScheme scheme(nlev);
  const ClassIndexer cls{ndomains, nlev};

  // --- classify cells -------------------------------------------------------
  // A cell is external when one of its faces leads to another domain.
  std::vector<Locality> cell_loc(static_cast<std::size_t>(ncells),
                                 Locality::internal);
  for (index_t f = 0; f < nfaces; ++f) {
    if (mesh.is_boundary_face(f)) continue;
    const index_t a = mesh.face_cell(f, 0);
    const index_t b = mesh.face_cell(f, 1);
    if (domain_of_cell[static_cast<std::size_t>(a)] !=
        domain_of_cell[static_cast<std::size_t>(b)]) {
      cell_loc[static_cast<std::size_t>(a)] = Locality::external;
      cell_loc[static_cast<std::size_t>(b)] = Locality::external;
    }
  }
  auto cell_class = [&](index_t c) {
    return cls.id(domain_of_cell[static_cast<std::size_t>(c)],
                  mesh.cell_level(c), cell_loc[static_cast<std::size_t>(c)]);
  };

  // --- classify faces --------------------------------------------------------
  // Owner: the lower-indexed adjacent domain (deterministic); external
  // when the two adjacent cells live in different domains.
  auto face_owner = [&](index_t f) {
    const part_t da =
        domain_of_cell[static_cast<std::size_t>(mesh.face_cell(f, 0))];
    if (mesh.is_boundary_face(f)) return da;
    const part_t db =
        domain_of_cell[static_cast<std::size_t>(mesh.face_cell(f, 1))];
    return std::min(da, db);
  };
  auto face_locality = [&](index_t f) {
    if (mesh.is_boundary_face(f)) return Locality::internal;
    const part_t da =
        domain_of_cell[static_cast<std::size_t>(mesh.face_cell(f, 0))];
    const part_t db =
        domain_of_cell[static_cast<std::size_t>(mesh.face_cell(f, 1))];
    return da == db ? Locality::internal : Locality::external;
  };
  auto face_class = [&](index_t f) {
    return cls.id(face_owner(f), mesh.face_level(f), face_locality(f));
  };

  // --- per-class populations -------------------------------------------------
  std::vector<index_t> cell_count(static_cast<std::size_t>(cls.count()), 0);
  std::vector<index_t> face_count(static_cast<std::size_t>(cls.count()), 0);
  for (index_t c = 0; c < ncells; ++c)
    ++cell_count[static_cast<std::size_t>(cell_class(c))];
  for (index_t f = 0; f < nfaces; ++f)
    ++face_count[static_cast<std::size_t>(face_class(f))];

  if (class_map != nullptr) {
    class_map->class_faces.assign(static_cast<std::size_t>(cls.count()), {});
    class_map->class_cells.assign(static_cast<std::size_t>(cls.count()), {});
    for (index_t c = 0; c < ncells; ++c)
      class_map->class_cells[static_cast<std::size_t>(cell_class(c))]
          .push_back(c);
    for (index_t f = 0; f < nfaces; ++f)
      class_map->class_faces[static_cast<std::size_t>(face_class(f))]
          .push_back(f);
    class_map->task_class.clear();

    // Contiguity detection: on a locality-renumbered mesh every class
    // list is a consecutive id run (faces additionally with all interior
    // faces before all boundary faces), and the solvers switch to
    // streaming range kernels. Lists are built in ascending id order, so
    // one span check per class suffices.
    class_map->cell_range.assign(static_cast<std::size_t>(cls.count()), {});
    class_map->face_range.assign(static_cast<std::size_t>(cls.count()), {});
    for (std::size_t k = 0; k < static_cast<std::size_t>(cls.count()); ++k) {
      const auto& cells = class_map->class_cells[k];
      if (!cells.empty() &&
          cells.back() - cells.front() + 1 ==
              static_cast<index_t>(cells.size()))
        class_map->cell_range[k] = {cells.front(),
                                    cells.back() + 1};
      const auto& faces = class_map->class_faces[k];
      if (faces.empty() || faces.back() - faces.front() + 1 !=
                               static_cast<index_t>(faces.size()))
        continue;
      std::size_t ninterior = 0;
      while (ninterior < faces.size() &&
             !mesh.is_boundary_face(faces[ninterior]))
        ++ninterior;
      bool partitioned = true;
      for (std::size_t i = ninterior; i < faces.size(); ++i)
        partitioned &= mesh.is_boundary_face(faces[i]);
      if (partitioned)
        class_map->face_range[k] = {
            faces.front(), faces.front() + static_cast<index_t>(ninterior),
            faces.back() + 1};
    }
  }

  // --- class adjacency (face class ↔ cell class) ------------------------------
  std::vector<std::uint64_t> pairs;
  pairs.reserve(2 * static_cast<std::size_t>(nfaces));
  for (index_t f = 0; f < nfaces; ++f) {
    const auto fc = static_cast<std::uint64_t>(face_class(f));
    pairs.push_back(fc << 32 |
                    static_cast<std::uint32_t>(cell_class(mesh.face_cell(f, 0))));
    if (!mesh.is_boundary_face(f))
      pairs.push_back(
          fc << 32 |
          static_cast<std::uint32_t>(cell_class(mesh.face_cell(f, 1))));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  // CSR: face class → adjacent cell classes, and the transpose.
  std::vector<eindex_t> f2c_xadj(static_cast<std::size_t>(cls.count()) + 1, 0);
  std::vector<index_t> f2c;
  f2c.reserve(pairs.size());
  for (const std::uint64_t p : pairs)
    ++f2c_xadj[static_cast<std::size_t>(p >> 32) + 1];
  for (std::size_t i = 0; i < static_cast<std::size_t>(cls.count()); ++i)
    f2c_xadj[i + 1] += f2c_xadj[i];
  f2c.resize(pairs.size());
  {
    std::vector<eindex_t> cursor(f2c_xadj.begin(), f2c_xadj.end() - 1);
    for (const std::uint64_t p : pairs)
      f2c[static_cast<std::size_t>(cursor[static_cast<std::size_t>(p >> 32)]++)] =
          static_cast<index_t>(p & 0xffffffffULL);
  }
  std::vector<eindex_t> c2f_xadj(static_cast<std::size_t>(cls.count()) + 1, 0);
  std::vector<index_t> c2f(pairs.size());
  for (const std::uint64_t p : pairs)
    ++c2f_xadj[static_cast<std::size_t>(p & 0xffffffffULL) + 1];
  for (std::size_t i = 0; i < static_cast<std::size_t>(cls.count()); ++i)
    c2f_xadj[i + 1] += c2f_xadj[i];
  {
    std::vector<eindex_t> cursor(c2f_xadj.begin(), c2f_xadj.end() - 1);
    for (const std::uint64_t p : pairs)
      c2f[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(p & 0xffffffffULL)]++)] =
          static_cast<index_t>(p >> 32);
  }

  // --- Algorithm 1 ------------------------------------------------------------
  std::vector<Task> tasks;
  std::vector<std::vector<index_t>> deps;
  std::vector<index_t> last_cell_writer(static_cast<std::size_t>(cls.count()),
                                        invalid_index);
  std::vector<index_t> last_face_writer(static_cast<std::size_t>(cls.count()),
                                        invalid_index);

  auto emit = [&](index_t s, level_t tau, ObjectType type, part_t d,
                  Locality loc) {
    const index_t cid = cls.id(d, tau, loc);
    const index_t count = type == ObjectType::face
                              ? face_count[static_cast<std::size_t>(cid)]
                              : cell_count[static_cast<std::size_t>(cid)];
    if (count == 0) return;  // Algorithm 1 line 6: skip empty classes

    Task task;
    task.subiteration = s;
    task.level = tau;
    task.type = type;
    task.locality = loc;
    task.domain = d;
    task.num_objects = count;
    task.cost = static_cast<simtime_t>(count) *
                (type == ObjectType::face ? opts.cost.face_unit
                                          : opts.cost.cell_unit);
    const auto tid = static_cast<index_t>(tasks.size());

    std::vector<index_t> dep;
    if (type == ObjectType::face) {
      if (last_face_writer[static_cast<std::size_t>(cid)] != invalid_index)
        dep.push_back(last_face_writer[static_cast<std::size_t>(cid)]);
      for (eindex_t i = f2c_xadj[static_cast<std::size_t>(cid)];
           i < f2c_xadj[static_cast<std::size_t>(cid) + 1]; ++i) {
        const index_t cc = f2c[static_cast<std::size_t>(i)];
        if (last_cell_writer[static_cast<std::size_t>(cc)] != invalid_index)
          dep.push_back(last_cell_writer[static_cast<std::size_t>(cc)]);
      }
      last_face_writer[static_cast<std::size_t>(cid)] = tid;
    } else {
      if (last_cell_writer[static_cast<std::size_t>(cid)] != invalid_index)
        dep.push_back(last_cell_writer[static_cast<std::size_t>(cid)]);
      for (eindex_t i = c2f_xadj[static_cast<std::size_t>(cid)];
           i < c2f_xadj[static_cast<std::size_t>(cid) + 1]; ++i) {
        const index_t fc = c2f[static_cast<std::size_t>(i)];
        if (last_face_writer[static_cast<std::size_t>(fc)] != invalid_index)
          dep.push_back(last_face_writer[static_cast<std::size_t>(fc)]);
      }
      last_cell_writer[static_cast<std::size_t>(cid)] = tid;
    }
    tasks.push_back(task);
    deps.push_back(std::move(dep));
    if (class_map != nullptr) class_map->task_class.push_back(cid);
  };

  for (int iter = 0; iter < opts.num_iterations; ++iter) {
    for (index_t s = 0; s < scheme.num_subiterations(); ++s) {
      const level_t top = scheme.top_level(s);
      for (level_t tau = top;; --tau) {  // descending phases
        for (const ObjectType type : {ObjectType::face, ObjectType::cell}) {
          for (part_t d = 0; d < ndomains; ++d) {
            emit(s, tau, type, d, Locality::external);
            emit(s, tau, type, d, Locality::internal);
          }
        }
        if (tau == 0) break;
      }
    }
  }
  TaskGraph graph(std::move(tasks), deps);
  TAMP_METRIC_COUNT("taskgraph.tasks", graph.num_tasks());
  TAMP_METRIC_COUNT("taskgraph.dependencies", graph.num_dependencies());
  return graph;
}

std::vector<simtime_t> work_per_subiteration(const TaskGraph& graph) {
  index_t nsub = 0;
  for (const Task& t : graph.tasks())
    nsub = std::max(nsub, t.subiteration + 1);
  std::vector<simtime_t> work(static_cast<std::size_t>(nsub), 0);
  for (const Task& t : graph.tasks())
    work[static_cast<std::size_t>(t.subiteration)] += t.cost;
  return work;
}

std::vector<simtime_t> work_per_process_subiteration(
    const TaskGraph& graph, const std::vector<part_t>& domain_to_process,
    part_t nprocesses) {
  index_t nsub = 0;
  for (const Task& t : graph.tasks())
    nsub = std::max(nsub, t.subiteration + 1);
  std::vector<simtime_t> work(
      static_cast<std::size_t>(nprocesses) * static_cast<std::size_t>(nsub), 0);
  for (const Task& t : graph.tasks()) {
    TAMP_EXPECTS(static_cast<std::size_t>(t.domain) < domain_to_process.size(),
                 "task domain outside process map");
    const part_t p = domain_to_process[static_cast<std::size_t>(t.domain)];
    work[static_cast<std::size_t>(p) * nsub +
         static_cast<std::size_t>(t.subiteration)] += t.cost;
  }
  return work;
}

}  // namespace tamp::taskgraph
