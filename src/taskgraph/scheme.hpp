// The explicit adaptive time-stepping scheme (paper §II-A, Fig 4).
//
// Cells carry a temporal level τ; a level-τ cell advances with time step
// 2^τ·Δt. One iteration spans 2^τmax subiterations; a level-τ object is
// *active* in subiteration s iff 2^τ divides s. Inside a subiteration the
// active levels are processed in descending phases (τtop(s) … 0).
#pragma once

#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace tamp::taskgraph {

/// Static description of one iteration's temporal structure.
class TemporalScheme {
public:
  explicit TemporalScheme(level_t num_levels) : num_levels_(num_levels) {
    TAMP_EXPECTS(num_levels >= 1 && num_levels <= 30,
                 "temporal level count out of range");
  }

  [[nodiscard]] level_t num_levels() const { return num_levels_; }
  [[nodiscard]] level_t max_level() const {
    return static_cast<level_t>(num_levels_ - 1);
  }

  /// Subiterations per iteration: 2^τmax.
  [[nodiscard]] index_t num_subiterations() const {
    return index_t{1} << max_level();
  }

  /// Is a level-τ object updated in subiteration s?
  [[nodiscard]] static bool is_active(level_t tau, index_t s) {
    return (s & ((index_t{1} << tau) - 1)) == 0;
  }

  /// Highest active level of subiteration s (the first phase's τ).
  [[nodiscard]] level_t top_level(index_t s) const;

  /// Number of updates a level-τ object receives per iteration
  /// (= its operating cost, 2^(τmax−τ)).
  [[nodiscard]] weight_t updates_per_iteration(level_t tau) const {
    TAMP_EXPECTS(tau >= 0 && tau <= max_level(), "level out of range");
    return weight_t{1} << (max_level() - tau);
  }

  /// Physical time advanced by subiteration s (in units of the finest
  /// step Δt): always 1 — every subiteration advances the global clock by
  /// one fine step; coarser cells simply skip updates.
  [[nodiscard]] static double subiteration_dt() { return 1.0; }

private:
  level_t num_levels_;
};

}  // namespace tamp::taskgraph
