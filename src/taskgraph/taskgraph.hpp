// The task DAG induced by a domain decomposition (paper §II-B, Fig 8).
//
// Tasks aggregate all objects of one (subiteration, phase τ, object type,
// domain, locality) class, exactly as FLUSEPA's Algorithm 1 emits them.
// Dependencies connect a task to the most recent writers of the object
// classes its computation reads.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace tamp::taskgraph {

enum class ObjectType : std::uint8_t { face = 0, cell = 1 };
enum class Locality : std::uint8_t { external = 0, internal = 1 };

[[nodiscard]] const char* to_string(ObjectType t);
[[nodiscard]] const char* to_string(Locality l);

/// One aggregated task.
struct Task {
  index_t subiteration = 0;
  level_t level = 0;         ///< phase τ
  ObjectType type = ObjectType::cell;
  Locality locality = Locality::internal;
  part_t domain = 0;
  index_t num_objects = 0;   ///< faces or cells aggregated in this task
  simtime_t cost = 0;        ///< execution cost (work units)

  [[nodiscard]] std::string label() const;
};

class TaskGraph;

/// Kernel identity of a task: the (phase τ, object type, locality)
/// triple. Tasks of one class run the same code on the same kind of
/// object — it is the unit you would vectorize, and therefore the unit
/// perf attribution and what-if speedups are keyed on. Subiteration and
/// domain deliberately excluded: they change *which* data, not *what
/// code*.
struct TaskClass {
  level_t level = 0;
  ObjectType type = ObjectType::cell;
  Locality locality = Locality::internal;

  /// Dense id: ((level * 2 + type) * 2 + locality).
  [[nodiscard]] int id() const {
    return (static_cast<int>(level) * 2 + static_cast<int>(type)) * 2 +
           static_cast<int>(locality);
  }
  [[nodiscard]] static TaskClass from_id(int id) {
    TaskClass c;
    c.locality = static_cast<Locality>(id & 1);
    c.type = static_cast<ObjectType>((id >> 1) & 1);
    c.level = static_cast<level_t>(id >> 2);
    return c;
  }
  [[nodiscard]] std::string label() const;

  friend bool operator==(const TaskClass&, const TaskClass&) = default;
};

[[nodiscard]] inline TaskClass class_of(const Task& t) {
  return TaskClass{t.level, t.type, t.locality};
}

/// The distinct classes present in a graph, ordered by id.
[[nodiscard]] std::vector<TaskClass> task_classes(const TaskGraph& graph);

/// Immutable DAG of Tasks with CSR predecessor/successor adjacency.
class TaskGraph {
public:
  TaskGraph() = default;
  /// `deps[i]` lists the predecessors of task i (duplicates allowed; they
  /// are deduplicated here).
  TaskGraph(std::vector<Task> tasks,
            const std::vector<std::vector<index_t>>& deps);

  [[nodiscard]] index_t num_tasks() const {
    return static_cast<index_t>(tasks_.size());
  }
  [[nodiscard]] eindex_t num_dependencies() const {
    return static_cast<eindex_t>(pred_.size());
  }
  [[nodiscard]] const Task& task(index_t t) const {
    return tasks_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

  [[nodiscard]] std::span<const index_t> predecessors(index_t t) const {
    return {pred_.data() + pred_xadj_[static_cast<std::size_t>(t)],
            static_cast<std::size_t>(pred_xadj_[static_cast<std::size_t>(t) + 1] -
                                     pred_xadj_[static_cast<std::size_t>(t)])};
  }
  [[nodiscard]] std::span<const index_t> successors(index_t t) const {
    return {succ_.data() + succ_xadj_[static_cast<std::size_t>(t)],
            static_cast<std::size_t>(succ_xadj_[static_cast<std::size_t>(t) + 1] -
                                     succ_xadj_[static_cast<std::size_t>(t)])};
  }

  /// Σ task costs (schedule-independent; equal for SC_OC and MC_TL on the
  /// same mesh — paper §VI: "the total amount of work is independent of
  /// partitioning strategy").
  [[nodiscard]] simtime_t total_work() const;

  /// Longest cost-weighted path through the DAG: a lower bound on any
  /// schedule's makespan.
  [[nodiscard]] simtime_t critical_path() const;

  /// Tasks in a topological order (generation order is already one; this
  /// recomputes and verifies acyclicity). Throws invariant_error if a
  /// cycle exists.
  [[nodiscard]] std::vector<index_t> topological_order() const;

  /// Graphviz DOT rendering (small graphs only; guarded by a task limit).
  [[nodiscard]] std::string to_dot(index_t max_tasks = 400) const;

private:
  std::vector<Task> tasks_;
  std::vector<eindex_t> pred_xadj_{0};
  std::vector<index_t> pred_;
  std::vector<eindex_t> succ_xadj_{0};
  std::vector<index_t> succ_;
};

}  // namespace tamp::taskgraph
