#include "taskgraph/taskgraph.hpp"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tamp::taskgraph {

const char* to_string(ObjectType t) {
  return t == ObjectType::face ? "face" : "cell";
}
const char* to_string(Locality l) {
  return l == Locality::external ? "ext" : "int";
}

std::string Task::label() const {
  std::ostringstream os;
  os << 's' << subiteration << ":t" << static_cast<int>(level) << ':'
     << to_string(type) << ':' << to_string(locality) << ":d" << domain << " ("
     << num_objects << ')';
  return os.str();
}

std::string TaskClass::label() const {
  std::ostringstream os;
  os << 't' << static_cast<int>(level) << ':' << to_string(type) << ':'
     << to_string(locality);
  return os.str();
}

std::vector<TaskClass> task_classes(const TaskGraph& graph) {
  std::vector<TaskClass> out;
  for (const Task& t : graph.tasks()) {
    const TaskClass c = class_of(t);
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const TaskClass& a, const TaskClass& b) {
              return a.id() < b.id();
            });
  return out;
}

TaskGraph::TaskGraph(std::vector<Task> tasks,
                     const std::vector<std::vector<index_t>>& deps)
    : tasks_(std::move(tasks)) {
  const auto n = static_cast<std::size_t>(tasks_.size());
  TAMP_EXPECTS(deps.size() == n, "dependency list size mismatch");

  pred_xadj_.assign(n + 1, 0);
  std::vector<std::vector<index_t>> clean(n);
  for (std::size_t t = 0; t < n; ++t) {
    clean[t] = deps[t];
    std::sort(clean[t].begin(), clean[t].end());
    clean[t].erase(std::unique(clean[t].begin(), clean[t].end()),
                   clean[t].end());
    for (const index_t p : clean[t]) {
      TAMP_EXPECTS(p >= 0 && static_cast<std::size_t>(p) < n,
                   "dependency index out of range");
      TAMP_EXPECTS(static_cast<std::size_t>(p) != t,
                   "task depending on itself");
    }
    pred_xadj_[t + 1] = pred_xadj_[t] + static_cast<eindex_t>(clean[t].size());
  }
  pred_.resize(static_cast<std::size_t>(pred_xadj_.back()));
  for (std::size_t t = 0; t < n; ++t)
    std::copy(clean[t].begin(), clean[t].end(),
              pred_.begin() + static_cast<std::size_t>(pred_xadj_[t]));

  // Transpose for successors.
  succ_xadj_.assign(n + 1, 0);
  for (const index_t p : pred_) ++succ_xadj_[static_cast<std::size_t>(p) + 1];
  for (std::size_t t = 0; t < n; ++t) succ_xadj_[t + 1] += succ_xadj_[t];
  succ_.resize(pred_.size());
  std::vector<eindex_t> cursor(succ_xadj_.begin(), succ_xadj_.end() - 1);
  for (std::size_t t = 0; t < n; ++t) {
    for (const index_t p : predecessors(static_cast<index_t>(t)))
      succ_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(p)]++)] =
          static_cast<index_t>(t);
  }
}

simtime_t TaskGraph::total_work() const {
  simtime_t total = 0;
  for (const Task& t : tasks_) total += t.cost;
  return total;
}

std::vector<index_t> TaskGraph::topological_order() const {
  const auto n = static_cast<std::size_t>(tasks_.size());
  std::vector<index_t> indegree(n, 0);
  for (std::size_t t = 0; t < n; ++t)
    indegree[t] = static_cast<index_t>(predecessors(static_cast<index_t>(t)).size());
  std::vector<index_t> order;
  order.reserve(n);
  std::vector<index_t> ready;
  for (std::size_t t = 0; t < n; ++t)
    if (indegree[t] == 0) ready.push_back(static_cast<index_t>(t));
  while (!ready.empty()) {
    const index_t t = ready.back();
    ready.pop_back();
    order.push_back(t);
    for (const index_t s : successors(t))
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
  }
  TAMP_ENSURE(order.size() == n, "task graph contains a cycle");
  return order;
}

simtime_t TaskGraph::critical_path() const {
  TAMP_TRACE_SCOPE("taskgraph/critical_path");
  const std::vector<index_t> order = topological_order();
  std::vector<simtime_t> finish(tasks_.size(), 0);
  simtime_t best = 0;
  for (const index_t t : order) {
    simtime_t start = 0;
    for (const index_t p : predecessors(t))
      start = std::max(start, finish[static_cast<std::size_t>(p)]);
    finish[static_cast<std::size_t>(t)] =
        start + tasks_[static_cast<std::size_t>(t)].cost;
    best = std::max(best, finish[static_cast<std::size_t>(t)]);
  }
  TAMP_METRIC_GAUGE_SET("taskgraph.critical_path", best);
  return best;
}

std::string TaskGraph::to_dot(index_t max_tasks) const {
  TAMP_EXPECTS(num_tasks() <= max_tasks,
               "task graph too large for DOT rendering; raise max_tasks "
               "explicitly if intended");
  std::ostringstream os;
  os << "digraph taskgraph {\n  rankdir=TB;\n  node [shape=box, fontsize=9];\n";
  for (index_t t = 0; t < num_tasks(); ++t) {
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    os << "  t" << t << " [label=\"" << task.label() << "\""
       << (task.type == ObjectType::face ? ", peripheries=2" : "") << "];\n";
  }
  for (index_t t = 0; t < num_tasks(); ++t)
    for (const index_t p : predecessors(t))
      os << "  t" << p << " -> t" << t << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace tamp::taskgraph
