#include "taskgraph/scheme.hpp"

namespace tamp::taskgraph {

level_t TemporalScheme::top_level(index_t s) const {
  TAMP_EXPECTS(s >= 0 && s < num_subiterations(), "subiteration out of range");
  if (s == 0) return max_level();
  level_t tau = 0;
  while (is_active(static_cast<level_t>(tau + 1), s)) ++tau;
  return tau;
}

}  // namespace tamp::taskgraph
