#include "taskgraph/patch.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/hash.hpp"
#include "taskgraph/class_indexer.hpp"
#include "taskgraph/scheme.hpp"

namespace tamp::taskgraph {

namespace {

constexpr std::uint64_t pack_pair(index_t face_cls, index_t cell_cls) {
  return static_cast<std::uint64_t>(face_cls) << 32 |
         static_cast<std::uint32_t>(cell_cls);
}

/// Remove one value from a sorted id list (must be present).
void sorted_erase(std::vector<index_t>& v, index_t x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  TAMP_ENSURE(it != v.end() && *it == x,
              "patch bookkeeping lost a class-list member");
  v.erase(it);
}

/// Insert one value into a sorted id list.
void sorted_insert(std::vector<index_t>& v, index_t x) {
  v.insert(std::upper_bound(v.begin(), v.end(), x), x);
}

}  // namespace

GraphPatcher::GraphPatcher(const mesh::Mesh& mesh,
                           std::vector<part_t> domain_of_cell,
                           part_t ndomains)
    : GraphPatcher(mesh, std::move(domain_of_cell), ndomains, Options{}) {}

GraphPatcher::GraphPatcher(const mesh::Mesh& mesh,
                           std::vector<part_t> domain_of_cell,
                           part_t ndomains, Options opts)
    : opts_(opts), ndomains_(ndomains), domains_(std::move(domain_of_cell)) {
  TAMP_EXPECTS(ndomains >= 1, "need at least one domain");
  TAMP_EXPECTS(domains_.size() == static_cast<std::size_t>(mesh.num_cells()),
               "domain vector size must equal cell count");
  rebuild(mesh, nullptr);
}

void GraphPatcher::rebuild(const mesh::Mesh& mesh, const char* reason) {
  TAMP_TRACE_SCOPE("taskgraph/patch/rebuild");
  // The graph and ClassMap come from the generator itself, so the
  // rebuild path is bit-identical to a direct generate_task_graph call
  // by construction; only the diff aggregates are derived here.
  graph_ = generate_task_graph(mesh, domains_, ndomains_, opts_.generate,
                               &classes_);
  derive_aggregates(mesh);
  stats_.patched = false;
  stats_.rebuild_reason = reason == nullptr ? "initial build" : reason;
  dirty_tasks_.assign(static_cast<std::size_t>(graph_.num_tasks()), 1);
  TAMP_METRIC_COUNT("taskgraph.patch.rebuilds", 1);
}

void GraphPatcher::derive_aggregates(const mesh::Mesh& mesh) {
  const index_t ncells = mesh.num_cells();
  const index_t nfaces = mesh.num_faces();
  nlev_ = static_cast<level_t>(mesh.max_level() + 1);
  levels_ = mesh.cell_levels();

  const Classifier cf{mesh, domains_, ClassIndexer{ndomains_, nlev_}};
  const auto nclasses = static_cast<std::size_t>(cf.cls.count());

  cell_class_.resize(static_cast<std::size_t>(ncells));
  face_class_.resize(static_cast<std::size_t>(nfaces));
  cell_count_.assign(nclasses, 0);
  face_count_.assign(nclasses, 0);
  for (index_t c = 0; c < ncells; ++c) {
    const index_t k = cf.cell_class(c);
    cell_class_[static_cast<std::size_t>(c)] = k;
    ++cell_count_[static_cast<std::size_t>(k)];
  }
  pair_count_.clear();
  for (index_t f = 0; f < nfaces; ++f) {
    const index_t k = cf.face_class(f);
    face_class_[static_cast<std::size_t>(f)] = k;
    ++face_count_[static_cast<std::size_t>(k)];
    ++pair_count_[pack_pair(
        k, cell_class_[static_cast<std::size_t>(mesh.face_cell(f, 0))])];
    if (!mesh.is_boundary_face(f))
      ++pair_count_[pack_pair(
          k, cell_class_[static_cast<std::size_t>(mesh.face_cell(f, 1))])];
  }
  pair_set_changed_ = true;
  refresh_adjacency();
  dirty_classes_.assign(nclasses, 0);
}

void GraphPatcher::refresh_adjacency() {
  if (!pair_set_changed_) return;
  const ClassIndexer cls{ndomains_, nlev_};
  const auto nclasses = static_cast<std::size_t>(cls.count());

  // The deduplicated sorted pair list generate_task_graph derives from
  // its 2·F-element sort, reconstructed from the multiset keys instead.
  std::vector<std::uint64_t> pairs;
  pairs.reserve(pair_count_.size());
  for (const auto& [p, n] : pair_count_)
    if (n > 0) pairs.push_back(p);
  std::sort(pairs.begin(), pairs.end());

  f2c_xadj_.assign(nclasses + 1, 0);
  f2c_.resize(pairs.size());
  for (const std::uint64_t p : pairs)
    ++f2c_xadj_[static_cast<std::size_t>(p >> 32) + 1];
  for (std::size_t i = 0; i < nclasses; ++i) f2c_xadj_[i + 1] += f2c_xadj_[i];
  {
    std::vector<eindex_t> cursor(f2c_xadj_.begin(), f2c_xadj_.end() - 1);
    for (const std::uint64_t p : pairs)
      f2c_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(p >> 32)]++)] =
          static_cast<index_t>(p & 0xffffffffULL);
  }
  c2f_xadj_.assign(nclasses + 1, 0);
  c2f_.resize(pairs.size());
  for (const std::uint64_t p : pairs)
    ++c2f_xadj_[static_cast<std::size_t>(p & 0xffffffffULL) + 1];
  for (std::size_t i = 0; i < nclasses; ++i) c2f_xadj_[i + 1] += c2f_xadj_[i];
  {
    std::vector<eindex_t> cursor(c2f_xadj_.begin(), c2f_xadj_.end() - 1);
    for (const std::uint64_t p : pairs)
      c2f_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(p & 0xffffffffULL)]++)] =
          static_cast<index_t>(p >> 32);
  }
  pair_set_changed_ = false;
}

void GraphPatcher::recompute_ranges(const mesh::Mesh& mesh, index_t k) {
  // Verbatim mirror of generate_task_graph's contiguity detection.
  const auto sk = static_cast<std::size_t>(k);
  classes_.cell_range[sk] = {};
  classes_.face_range[sk] = {};
  const auto& cells = classes_.class_cells[sk];
  if (!cells.empty() &&
      cells.back() - cells.front() + 1 == static_cast<index_t>(cells.size()))
    classes_.cell_range[sk] = {cells.front(), cells.back() + 1};
  const auto& faces = classes_.class_faces[sk];
  if (faces.empty() || faces.back() - faces.front() + 1 !=
                           static_cast<index_t>(faces.size()))
    return;
  std::size_t ninterior = 0;
  while (ninterior < faces.size() && !mesh.is_boundary_face(faces[ninterior]))
    ++ninterior;
  bool partitioned = true;
  for (std::size_t i = ninterior; i < faces.size(); ++i)
    partitioned &= mesh.is_boundary_face(faces[i]);
  if (partitioned)
    classes_.face_range[sk] = {faces.front(),
                               faces.front() +
                                   static_cast<index_t>(ninterior),
                               faces.back() + 1};
}

void GraphPatcher::emit(const mesh::Mesh& mesh) {
  static_cast<void>(mesh);
  const ClassIndexer cls{ndomains_, nlev_};
  const TemporalScheme scheme(nlev_);
  const auto nclasses = static_cast<std::size_t>(cls.count());

  scratch_tasks_.clear();
  scratch_deps_.clear();
  classes_.task_class.clear();
  last_cell_writer_.assign(nclasses, invalid_index);
  last_face_writer_.assign(nclasses, invalid_index);

  // Algorithm 1, byte-for-byte the generator's emission loop, replayed
  // over the incrementally-maintained aggregates.
  auto emit_one = [&](index_t s, level_t tau, ObjectType type, part_t d,
                      Locality loc) {
    const index_t cid = cls.id(d, tau, loc);
    const index_t count = type == ObjectType::face
                              ? face_count_[static_cast<std::size_t>(cid)]
                              : cell_count_[static_cast<std::size_t>(cid)];
    if (count == 0) return;  // Algorithm 1 line 6: skip empty classes

    Task task;
    task.subiteration = s;
    task.level = tau;
    task.type = type;
    task.locality = loc;
    task.domain = d;
    task.num_objects = count;
    task.cost = static_cast<simtime_t>(count) *
                (type == ObjectType::face ? opts_.generate.cost.face_unit
                                          : opts_.generate.cost.cell_unit);
    const auto tid = static_cast<index_t>(scratch_tasks_.size());

    std::vector<index_t> dep;
    if (type == ObjectType::face) {
      if (last_face_writer_[static_cast<std::size_t>(cid)] != invalid_index)
        dep.push_back(last_face_writer_[static_cast<std::size_t>(cid)]);
      for (eindex_t i = f2c_xadj_[static_cast<std::size_t>(cid)];
           i < f2c_xadj_[static_cast<std::size_t>(cid) + 1]; ++i) {
        const index_t cc = f2c_[static_cast<std::size_t>(i)];
        if (last_cell_writer_[static_cast<std::size_t>(cc)] != invalid_index)
          dep.push_back(last_cell_writer_[static_cast<std::size_t>(cc)]);
      }
      last_face_writer_[static_cast<std::size_t>(cid)] = tid;
    } else {
      if (last_cell_writer_[static_cast<std::size_t>(cid)] != invalid_index)
        dep.push_back(last_cell_writer_[static_cast<std::size_t>(cid)]);
      for (eindex_t i = c2f_xadj_[static_cast<std::size_t>(cid)];
           i < c2f_xadj_[static_cast<std::size_t>(cid) + 1]; ++i) {
        const index_t fc = c2f_[static_cast<std::size_t>(i)];
        if (last_face_writer_[static_cast<std::size_t>(fc)] != invalid_index)
          dep.push_back(last_face_writer_[static_cast<std::size_t>(fc)]);
      }
      last_cell_writer_[static_cast<std::size_t>(cid)] = tid;
    }
    scratch_tasks_.push_back(task);
    scratch_deps_.push_back(std::move(dep));
    classes_.task_class.push_back(cid);
  };

  for (int iter = 0; iter < opts_.generate.num_iterations; ++iter) {
    for (index_t s = 0; s < scheme.num_subiterations(); ++s) {
      const level_t top = scheme.top_level(s);
      for (level_t tau = top;; --tau) {  // descending phases
        for (const ObjectType type : {ObjectType::face, ObjectType::cell}) {
          for (part_t d = 0; d < ndomains_; ++d) {
            emit_one(s, tau, type, d, Locality::external);
            emit_one(s, tau, type, d, Locality::internal);
          }
        }
        if (tau == 0) break;
      }
    }
  }
  graph_ = TaskGraph(std::move(scratch_tasks_), scratch_deps_);
  scratch_tasks_.clear();
}

const PatchStats& GraphPatcher::apply(
    const mesh::Mesh& mesh, const std::vector<part_t>& domain_of_cell) {
  TAMP_TRACE_SCOPE("taskgraph/patch/apply");
  const index_t ncells = mesh.num_cells();
  TAMP_EXPECTS(levels_.size() == static_cast<std::size_t>(ncells) &&
                   face_class_.size() ==
                       static_cast<std::size_t>(mesh.num_faces()),
               "GraphPatcher bound to a mesh of different topology");
  TAMP_EXPECTS(domain_of_cell.size() == static_cast<std::size_t>(ncells),
               "domain vector size must equal cell count");

  stats_ = {};
  if (static_cast<level_t>(mesh.max_level() + 1) != nlev_) {
    // The class id space itself changed; every cached class id is void.
    domains_ = domain_of_cell;
    rebuild(mesh, "temporal level count changed");
    stats_.dirty_fraction = 1.0;
    if (opts_.oracle) run_oracle(mesh);
    return stats_;
  }

  // --- diff against the mirrored inputs -----------------------------------
  std::vector<index_t> changed;
  std::vector<index_t> domain_changed;
  for (index_t c = 0; c < ncells; ++c) {
    const auto sc = static_cast<std::size_t>(c);
    const bool lev = levels_[sc] != mesh.cell_level(c);
    const bool dom = domains_[sc] != domain_of_cell[sc];
    if (lev || dom) changed.push_back(c);
    if (dom) domain_changed.push_back(c);
  }
  stats_.dirty_fraction =
      static_cast<double>(changed.size()) / static_cast<double>(ncells);
  TAMP_METRIC_GAUGE_SET("taskgraph.patch.dirty_fraction",
                        stats_.dirty_fraction);

  if (changed.empty()) {
    // Classification is a pure function of (levels, domains): nothing
    // changed, the graph is already exact.
    stats_.patched = true;
    std::fill(dirty_tasks_.begin(), dirty_tasks_.end(), char{0});
    TAMP_METRIC_COUNT("taskgraph.patch.noop", 1);
    if (opts_.oracle) run_oracle(mesh);
    return stats_;
  }
  if (stats_.dirty_fraction > opts_.max_dirty_fraction) {
    domains_ = domain_of_cell;
    rebuild(mesh, "dirty fraction above patch threshold");
    if (opts_.oracle) run_oracle(mesh);
    return stats_;
  }

  TAMP_TRACE_SCOPE("taskgraph/patch/diff");
  // --- dirty closure -------------------------------------------------------
  // Cells to reclassify: every changed cell, plus every neighbour of a
  // domain-changed cell (its locality may flip). Faces to re-derive:
  // every face incident to a reclassified cell (its own class and its
  // (face class, cell class) pairs both depend on its two cells).
  std::vector<char> cell_mark(static_cast<std::size_t>(ncells), 0);
  std::vector<index_t> dirty_cells;
  auto add_cell = [&](index_t c) {
    if (cell_mark[static_cast<std::size_t>(c)] == 0) {
      cell_mark[static_cast<std::size_t>(c)] = 1;
      dirty_cells.push_back(c);
    }
  };
  for (const index_t c : changed) add_cell(c);
  for (const index_t c : domain_changed)
    for (const index_t f : mesh.cell_faces(c)) {
      const index_t o = mesh.face_other_cell(f, c);
      if (o != invalid_index) add_cell(o);
    }
  std::vector<char> face_mark(static_cast<std::size_t>(mesh.num_faces()), 0);
  std::vector<index_t> dirty_faces;
  for (const index_t c : dirty_cells)
    for (const index_t f : mesh.cell_faces(c))
      if (face_mark[static_cast<std::size_t>(f)] == 0) {
        face_mark[static_cast<std::size_t>(f)] = 1;
        dirty_faces.push_back(f);
      }

  // --- retract the dirty contributions (old classes) -----------------------
  auto dec_pair = [&](index_t fc, index_t cc) {
    const auto it = pair_count_.find(pack_pair(fc, cc));
    TAMP_ENSURE(it != pair_count_.end() && it->second > 0,
                "patch bookkeeping lost an adjacency pair");
    if (--it->second == 0) {
      pair_count_.erase(it);
      pair_set_changed_ = true;
    }
  };
  auto inc_pair = [&](index_t fc, index_t cc) {
    if (++pair_count_[pack_pair(fc, cc)] == 1) pair_set_changed_ = true;
  };
  for (const index_t f : dirty_faces) {
    const index_t fc = face_class_[static_cast<std::size_t>(f)];
    dec_pair(fc,
             cell_class_[static_cast<std::size_t>(mesh.face_cell(f, 0))]);
    if (!mesh.is_boundary_face(f))
      dec_pair(fc,
               cell_class_[static_cast<std::size_t>(mesh.face_cell(f, 1))]);
  }

  // --- reclassify under the new (levels, domains) --------------------------
  domains_ = domain_of_cell;
  levels_ = mesh.cell_levels();
  const Classifier cf{mesh, domains_, ClassIndexer{ndomains_, nlev_}};
  std::fill(dirty_classes_.begin(), dirty_classes_.end(), char{0});
  auto touch_class = [&](index_t k) {
    dirty_classes_[static_cast<std::size_t>(k)] = 1;
  };
  for (const index_t c : dirty_cells) {
    const index_t old_k = cell_class_[static_cast<std::size_t>(c)];
    const index_t new_k = cf.cell_class(c);
    if (new_k == old_k) continue;
    --cell_count_[static_cast<std::size_t>(old_k)];
    ++cell_count_[static_cast<std::size_t>(new_k)];
    sorted_erase(classes_.class_cells[static_cast<std::size_t>(old_k)], c);
    sorted_insert(classes_.class_cells[static_cast<std::size_t>(new_k)], c);
    cell_class_[static_cast<std::size_t>(c)] = new_k;
    touch_class(old_k);
    touch_class(new_k);
  }
  for (const index_t f : dirty_faces) {
    const index_t old_k = face_class_[static_cast<std::size_t>(f)];
    const index_t new_k = cf.face_class(f);
    if (new_k != old_k) {
      --face_count_[static_cast<std::size_t>(old_k)];
      ++face_count_[static_cast<std::size_t>(new_k)];
      sorted_erase(classes_.class_faces[static_cast<std::size_t>(old_k)], f);
      sorted_insert(classes_.class_faces[static_cast<std::size_t>(new_k)], f);
      face_class_[static_cast<std::size_t>(f)] = new_k;
      touch_class(old_k);
      touch_class(new_k);
    }
    inc_pair(new_k,
             cell_class_[static_cast<std::size_t>(mesh.face_cell(f, 0))]);
    if (!mesh.is_boundary_face(f))
      inc_pair(new_k,
               cell_class_[static_cast<std::size_t>(mesh.face_cell(f, 1))]);
  }

  // --- re-derive the graph from the patched aggregates ---------------------
  refresh_adjacency();
  index_t ndirty_classes = 0;
  for (std::size_t k = 0; k < dirty_classes_.size(); ++k)
    if (dirty_classes_[k] != 0) {
      ++ndirty_classes;
      recompute_ranges(mesh, static_cast<index_t>(k));
    }
  emit(mesh);

  // Dirty-task mask at class granularity: tasks of a changed class, plus
  // tasks class-adjacent to one (their dependency lists reference its
  // last writer) — the region the race verifier re-certifies.
  std::vector<char> region(dirty_classes_.size(), 0);
  for (std::size_t k = 0; k < dirty_classes_.size(); ++k) {
    if (dirty_classes_[k] == 0) continue;
    region[k] = 1;
    for (eindex_t i = f2c_xadj_[k]; i < f2c_xadj_[k + 1]; ++i)
      region[static_cast<std::size_t>(f2c_[static_cast<std::size_t>(i)])] = 1;
    for (eindex_t i = c2f_xadj_[k]; i < c2f_xadj_[k + 1]; ++i)
      region[static_cast<std::size_t>(c2f_[static_cast<std::size_t>(i)])] = 1;
  }
  dirty_tasks_.assign(static_cast<std::size_t>(graph_.num_tasks()), 0);
  for (index_t t = 0; t < graph_.num_tasks(); ++t)
    dirty_tasks_[static_cast<std::size_t>(t)] =
        region[static_cast<std::size_t>(
            classes_.task_class[static_cast<std::size_t>(t)])];

  stats_.dirty_cells = static_cast<index_t>(dirty_cells.size());
  stats_.dirty_faces = static_cast<index_t>(dirty_faces.size());
  stats_.dirty_classes = ndirty_classes;
  stats_.patched = true;
  TAMP_METRIC_COUNT("taskgraph.patch.applied", 1);
  TAMP_METRIC_COUNT("taskgraph.patch.dirty_cells", stats_.dirty_cells);
  TAMP_METRIC_COUNT("taskgraph.patch.dirty_faces", stats_.dirty_faces);

  if (opts_.oracle) run_oracle(mesh);
  return stats_;
}

std::uint64_t GraphPatcher::fingerprint(const TaskGraph& graph,
                                        const ClassMap& classes) {
  Fnv1a h;
  const index_t ntasks = graph.num_tasks();
  h.add(ntasks);
  for (index_t t = 0; t < ntasks; ++t) {
    const Task& task = graph.task(t);
    h.add(task.subiteration)
        .add(task.level)
        .add(task.type)
        .add(task.locality)
        .add(task.domain)
        .add(task.num_objects)
        .add(task.cost);
    const auto succ = graph.successors(t);
    h.add_span(succ.data(), succ.size());
    const auto pred = graph.predecessors(t);
    h.add_span(pred.data(), pred.size());
  }
  h.add_vector(classes.task_class);
  for (const auto& v : classes.class_cells) h.add_vector(v);
  for (const auto& v : classes.class_faces) h.add_vector(v);
  for (const auto& r : classes.cell_range) h.add(r.begin).add(r.end);
  for (const auto& r : classes.face_range)
    h.add(r.begin).add(r.boundary_begin).add(r.end);
  return h.value();
}

std::uint64_t GraphPatcher::fingerprint() const {
  return fingerprint(graph_, classes_);
}

void GraphPatcher::run_oracle(const mesh::Mesh& mesh) const {
  TAMP_TRACE_SCOPE("taskgraph/patch/oracle");
  ClassMap rebuilt_map;
  const TaskGraph rebuilt = generate_task_graph(mesh, domains_, ndomains_,
                                                opts_.generate, &rebuilt_map);
  if (fingerprint(rebuilt, rebuilt_map) != fingerprint(graph_, classes_))
    throw invariant_error(
        "patched task graph diverged from the from-scratch rebuild — "
        "stale patch caught by the equivalence oracle");
}

void GraphPatcher::corrupt_aggregates_for_testing() {
  for (std::size_t k = 0; k < cell_count_.size(); ++k) {
    if (cell_count_[k] > 1) {
      --cell_count_[k];
      return;
    }
  }
  TAMP_ENSURE(false, "no populated class to corrupt");
}

}  // namespace tamp::taskgraph
