// Dense object-class indexing shared by the task-graph generator and
// the incremental patcher (taskgraph/patch.*). An object class is the
// (domain, temporal level τ, locality) triple of Algorithm 1; both the
// from-scratch build and the diff-based patch must agree on its dense
// id, so the formula lives here exactly once.
#pragma once

#include <algorithm>

#include "mesh/mesh.hpp"
#include "support/types.hpp"
#include "taskgraph/taskgraph.hpp"

namespace tamp::taskgraph {

/// Dense id of an object class: (domain, level, locality).
struct ClassIndexer {
  part_t ndomains;
  level_t nlev;

  [[nodiscard]] index_t count() const {
    return ndomains * static_cast<index_t>(nlev) * 2;
  }
  [[nodiscard]] index_t id(part_t d, level_t tau, Locality loc) const {
    return (d * static_cast<index_t>(nlev) + static_cast<index_t>(tau)) * 2 +
           static_cast<index_t>(loc);
  }
};

/// Classification formulas of §II-B, shared verbatim between
/// generate_task_graph and GraphPatcher. A cell is external when any of
/// its faces leads to another domain; a face is owned by the
/// lower-indexed adjacent domain and external when its two adjacent
/// cells live in different domains; boundary faces are internal and
/// owned by their single cell's domain.
struct Classifier {
  const mesh::Mesh& mesh;
  const std::vector<part_t>& domain_of_cell;
  ClassIndexer cls;

  [[nodiscard]] Locality cell_locality(index_t c) const {
    const part_t dc = domain_of_cell[static_cast<std::size_t>(c)];
    for (const index_t f : mesh.cell_faces(c)) {
      const index_t o = mesh.face_other_cell(f, c);
      if (o != invalid_index &&
          domain_of_cell[static_cast<std::size_t>(o)] != dc)
        return Locality::external;
    }
    return Locality::internal;
  }
  [[nodiscard]] index_t cell_class(index_t c) const {
    return cls.id(domain_of_cell[static_cast<std::size_t>(c)],
                  mesh.cell_level(c), cell_locality(c));
  }
  [[nodiscard]] part_t face_owner(index_t f) const {
    const part_t da =
        domain_of_cell[static_cast<std::size_t>(mesh.face_cell(f, 0))];
    if (mesh.is_boundary_face(f)) return da;
    const part_t db =
        domain_of_cell[static_cast<std::size_t>(mesh.face_cell(f, 1))];
    return std::min(da, db);
  }
  [[nodiscard]] Locality face_locality(index_t f) const {
    if (mesh.is_boundary_face(f)) return Locality::internal;
    const part_t da =
        domain_of_cell[static_cast<std::size_t>(mesh.face_cell(f, 0))];
    const part_t db =
        domain_of_cell[static_cast<std::size_t>(mesh.face_cell(f, 1))];
    return da == db ? Locality::internal : Locality::external;
  }
  [[nodiscard]] index_t face_class(index_t f) const {
    return cls.id(face_owner(f), mesh.face_level(f), face_locality(f));
  }
};

}  // namespace tamp::taskgraph
