// Task-graph generation from a mesh + domain decomposition — the paper's
// Algorithm 1 with the dependency rules of §II-B.
//
// Generation order (one iteration): subiterations ascending; inside a
// subiteration, phases τ = τtop(s) … 0 descending; inside a phase, faces
// before cells; per domain, the external task before the internal one.
// A task aggregates every active object of its (s, τ, type, domain,
// locality) class.
//
// Dependencies follow the paper's two rules:
//   * neighbour values — a face task reads its adjacent cells' current
//     values: it depends on the last writers of the adjacent cell
//     classes; a cell task reads the fluxes on its faces: it depends on
//     the last writers of the adjacent face classes (which, faces being
//     generated first, include this phase's face tasks);
//   * previous values — every task depends on the previous task that
//     wrote its own class (earlier subiteration or iteration).
// "Last writer at generation time" makes the DAG acyclic by construction
// and reproduces the strong inter-subiteration ordering the paper
// describes (§IV: a process with no work in a subiteration waits for its
// neighbours before entering the next one).
#pragma once

#include <vector>

#include "mesh/mesh.hpp"
#include "taskgraph/scheme.hpp"
#include "taskgraph/taskgraph.hpp"

namespace tamp::taskgraph {

/// Execution cost of one object update, in abstract work units.
/// Calibrated so a cell update (gather fluxes, update conserved state,
/// Heun stage arithmetic) costs 1 and a face flux evaluation a bit less;
/// bench/fig13 recalibrates from measured solver kernels.
struct CostModel {
  double cell_unit = 1.0;
  double face_unit = 0.4;
};

struct GenerateOptions {
  CostModel cost;
  /// Iterations to unroll (the paper evaluates single iterations; >1
  /// chains them through the previous-value dependencies).
  int num_iterations = 1;
};

/// Concrete object membership of each task, for executing real kernels:
/// tasks of the same (domain, level, locality) class share one object
/// list; `task_class[t]` indexes into the per-class lists, and the task's
/// type selects faces vs cells.
///
/// On a locality-renumbered mesh (partition/reorder.hpp) every class
/// list is one consecutive id run; the generator detects this and fills
/// the range vectors so solvers can stream `[begin, end)` instead of
/// chasing the index vector. A class whose list is not contiguous gets
/// an invalid range (begin == invalid_index) and callers fall back to
/// the list.
struct ClassMap {
  /// Contiguous cell run of one class, or invalid when scattered.
  struct CellRange {
    index_t begin = invalid_index;
    index_t end = invalid_index;
    [[nodiscard]] bool valid() const { return begin != invalid_index; }
  };
  /// Contiguous face run of one class with its boundary faces collected
  /// in the tail sub-range [boundary_begin, end), or invalid when the
  /// list is scattered or interleaves interior and boundary faces.
  struct FaceRange {
    index_t begin = invalid_index;
    index_t boundary_begin = invalid_index;
    index_t end = invalid_index;
    [[nodiscard]] bool valid() const { return begin != invalid_index; }
  };

  std::vector<index_t> task_class;               ///< per task id
  std::vector<std::vector<index_t>> class_faces; ///< face ids per class
  std::vector<std::vector<index_t>> class_cells; ///< cell ids per class
  std::vector<CellRange> cell_range;             ///< per class
  std::vector<FaceRange> face_range;             ///< per class
};

/// Generate the task DAG for `mesh` decomposed by `domain_of_cell`.
/// When `class_map` is non-null it receives the object lists.
TaskGraph generate_task_graph(const mesh::Mesh& mesh,
                              const std::vector<part_t>& domain_of_cell,
                              part_t ndomains,
                              const GenerateOptions& opts = {},
                              ClassMap* class_map = nullptr);

/// Per-subiteration aggregate workload (work units), schedule-independent:
/// the paper's observation that subiterations inject very different
/// amounts of work (Fig 4).
std::vector<simtime_t> work_per_subiteration(const TaskGraph& graph);

/// Per-(process, subiteration) workload for Fig 7b / Fig 10b:
/// result[p * nsub + s]. Requires the domain→process map.
std::vector<simtime_t> work_per_process_subiteration(
    const TaskGraph& graph, const std::vector<part_t>& domain_to_process,
    part_t nprocesses);

}  // namespace tamp::taskgraph
