// Diff-based task-graph patching — the amortization layer of the online
// repartitioning service (paper §III-A: temporal levels drift slowly, so
// rebuilding the whole DAG every iteration wastes almost all of its
// cost).
//
// The key structural fact (proved by the property tests and enforced at
// runtime by the equivalence oracle): Algorithm 1's output is a pure
// function of three per-class aggregates —
//
//   * per-class cell populations,
//   * per-class face populations,
//   * the deduplicated (face class, cell class) adjacency pair set —
//
// plus the fixed emission order. GraphPatcher maintains those aggregates
// incrementally from the dirty cell/face set (cells whose level or
// domain changed, their domain-flip neighbours, and incident faces) and
// re-emits the task/dependency arrays from them. The O(cells + faces)
// classification, the 2·F-element pair sort and the per-class object
// list rebuilds — the dominant costs of generate_task_graph — are all
// replaced by O(dirty) updates; only the O(tasks + deps) emission loop
// (a few thousand slots) reruns. The result is bit-identical to a
// from-scratch rebuild: same task order, same fields, same dependency
// CSR, same ClassMap lists and ranges.
//
// Safety net layers, outermost first:
//   1. the pipeline's IterationSnapshot fingerprint (support/hash.hpp)
//      seals whatever graph was published;
//   2. the equivalence oracle (Options::oracle or apply-time override)
//      rebuilds from scratch and throws invariant_error unless the
//      patched graph + ClassMap are bit-identical;
//   3. verify::check_races_region re-certifies the dirty region of the
//      patched graph via induced-subgraph race checking (verifier.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mesh/mesh.hpp"
#include "support/types.hpp"
#include "taskgraph/generate.hpp"
#include "taskgraph/taskgraph.hpp"

namespace tamp::taskgraph {

/// Outcome of one GraphPatcher::apply().
struct PatchStats {
  index_t dirty_cells = 0;   ///< cells reclassified (level/domain + halo)
  index_t dirty_faces = 0;   ///< faces whose class pairs were re-derived
  index_t dirty_classes = 0; ///< object classes whose aggregates changed
  double dirty_fraction = 0; ///< changed cells / total cells
  bool patched = false;      ///< true = diff path, false = full rebuild
  /// Why the full-rebuild path ran (nullptr when patched).
  const char* rebuild_reason = nullptr;
};

/// Incrementally-maintained task graph over one evolving mesh.
///
/// Construction runs generate_task_graph once and snapshots the class
/// aggregates; each apply() diffs the new (levels, domains) against the
/// stored ones and patches. The mesh topology (cells, faces, adjacency)
/// must not change across applies — only temporal levels and the domain
/// assignment may. Not thread-safe: one patcher belongs to one prep
/// stream (the pipeline's depth-1 handoff serializes applies).
class GraphPatcher {
public:
  struct Options {
    GenerateOptions generate;
    /// Dirty-cell fraction above which apply() falls back to a full
    /// rebuild (the diff bookkeeping stops paying for itself; the
    /// issue's "<~5 % of cells" premise).
    double max_dirty_fraction = 0.05;
    /// Run the equivalence oracle on every apply(): rebuild from
    /// scratch, compare bit-for-bit, throw invariant_error on mismatch.
    bool oracle = false;
  };

  GraphPatcher(const mesh::Mesh& mesh, std::vector<part_t> domain_of_cell,
               part_t ndomains, Options opts);
  /// Default Options.
  GraphPatcher(const mesh::Mesh& mesh, std::vector<part_t> domain_of_cell,
               part_t ndomains);

  /// Bring the graph up to date with `mesh`'s current levels and the new
  /// domain assignment. Returns stats for the applied diff (or rebuild).
  const PatchStats& apply(const mesh::Mesh& mesh,
                          const std::vector<part_t>& domain_of_cell);

  [[nodiscard]] const TaskGraph& graph() const { return graph_; }
  [[nodiscard]] const ClassMap& classes() const { return classes_; }
  [[nodiscard]] const PatchStats& last_stats() const { return stats_; }

  /// Per-task dirty mask of the last apply(): tasks whose class
  /// aggregates changed or that are class-adjacent to one that did —
  /// the region verify::check_races_region re-certifies. All-true after
  /// construction or a full rebuild.
  [[nodiscard]] const std::vector<char>& dirty_tasks() const {
    return dirty_tasks_;
  }

  /// Fingerprint over the task array, dependency CSR and ClassMap
  /// ranges (FNV-1a, support/hash.hpp). Equal fingerprints on a patched
  /// and a rebuilt graph is what the mutation tests assert the oracle
  /// distinguishes.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Free-standing fingerprint of any (graph, classes) pair, for
  /// comparing a patched result against an independent rebuild.
  [[nodiscard]] static std::uint64_t fingerprint(const TaskGraph& graph,
                                                 const ClassMap& classes);

  /// Test hook: corrupt one class-population aggregate so the next
  /// patched apply() produces a stale graph — the mutation tests prove
  /// the oracle (and the snapshot fingerprint) catch it.
  void corrupt_aggregates_for_testing();

private:
  void rebuild(const mesh::Mesh& mesh, const char* reason);
  void derive_aggregates(const mesh::Mesh& mesh);
  void emit(const mesh::Mesh& mesh);
  void refresh_adjacency();
  void recompute_ranges(const mesh::Mesh& mesh, index_t cls);
  void run_oracle(const mesh::Mesh& mesh) const;

  Options opts_;
  part_t ndomains_ = 0;
  level_t nlev_ = 0;

  // Mirrors of the inputs the classification depends on.
  std::vector<part_t> domains_;
  std::vector<level_t> levels_;

  // Per-object class ids and per-class aggregates.
  std::vector<index_t> cell_class_;
  std::vector<index_t> face_class_;
  std::vector<index_t> cell_count_;
  std::vector<index_t> face_count_;
  /// (face class << 32 | cell class) → multiplicity; the deduplicated
  /// pair set generate_task_graph sorts is exactly the keys with
  /// multiplicity > 0.
  std::unordered_map<std::uint64_t, index_t> pair_count_;
  bool pair_set_changed_ = true;

  // Class adjacency CSRs rebuilt from pair_count_ when the distinct
  // pair set changes (cheap: O(distinct pairs · log)).
  std::vector<eindex_t> f2c_xadj_, c2f_xadj_;
  std::vector<index_t> f2c_, c2f_;

  TaskGraph graph_;
  ClassMap classes_;
  PatchStats stats_;
  std::vector<char> dirty_classes_;  ///< scratch, per class
  std::vector<char> dirty_tasks_;

  // Emission scratch, reused across applies.
  std::vector<Task> scratch_tasks_;
  std::vector<std::vector<index_t>> scratch_deps_;
  std::vector<index_t> last_cell_writer_, last_face_writer_;
};

}  // namespace tamp::taskgraph
