// Passive scalar transport (advection–diffusion) with adaptive time
// stepping — the library's second solver.
//
// Solves ∂φ/∂t + ∇·(u φ) = D ∇²φ for a passive scalar φ carried by a
// constant velocity field u, on the same temporal-level machinery as the
// Euler solver: first-order upwind convective flux + two-point diffusive
// flux, integrated through per-side face accumulators so the scheme is
// exactly conservative and its task-parallel execution is race-free
// under the class dependencies. Boundaries are upwind inflow/outflow
// (inflow carries the configured ambient value; diffusive wall flux is
// zero), and the outflowed scalar is tracked so that
// total_scalar() + net_boundary_outflow() is an exact invariant.
//
// Why a second solver: it exercises the partitioning → task-graph →
// runtime path with a different kernel set and admits sharp analytic
// properties the Euler equations do not — a discrete maximum principle
// (upwind+diffusion create no new extrema under the CFL bound) and exact
// scalar-mass conservation, both asserted by the property tests.
#pragma once

#include <atomic>
#include <vector>

#include "mesh/mesh.hpp"
#include "runtime/runtime.hpp"
#include "solver/layout.hpp"
#include "support/simd.hpp"
#include "taskgraph/generate.hpp"

namespace tamp::solver {

struct TransportConfig {
  mesh::Vec3 velocity{1.0, 0.0, 0.0};  ///< constant advecting field
  double diffusivity = 0.0;            ///< D ≥ 0
  /// Scalar value carried by inflow boundary faces.
  double ambient = 0.0;
  /// Safety factor on the combined advective + diffusive step bound.
  double cfl = 0.2;
  level_t max_levels = 4;
  /// SIMD tier for the streaming kernels (same semantics as
  /// SolverConfig::simd: inherit → flusim --simd / TAMP_SIMD / auto).
  simd::Request simd = simd::Request::inherit;
};

class TransportSolver {
public:
  TransportSolver(mesh::Mesh& mesh, TransportConfig config = {});

  /// φ = value everywhere.
  void initialize_uniform(double value);
  /// Superimpose a Gaussian blob.
  void add_blob(mesh::Vec3 center, double radius, double amplitude);
  /// Set one cell directly.
  void set_value(index_t cell, double value);

  /// Quantise per-cell stable steps onto the level ladder and fix Δt0.
  std::vector<level_t> assign_temporal_levels();

  [[nodiscard]] double dt0() const { return dt0_; }
  [[nodiscard]] double time() const { return time_; }

  /// One iteration (2^τmax subiterations), serial reference order.
  void run_iteration();

  /// One iteration as a task graph on the threaded runtime; identical
  /// arithmetic to run_iteration().
  runtime::ExecutionReport run_iteration_tasks(
      const std::vector<part_t>& domain_of_cell, part_t ndomains,
      const std::vector<part_t>& domain_to_process,
      const runtime::RuntimeConfig& runtime_config);

  /// One iteration as a reusable (graph, body) pair — same contract as
  /// EulerSolver::make_iteration_tasks (verification, adversarial
  /// sweeps). Follow external execution with note_tasks_complete().
  struct IterationTasks {
    taskgraph::TaskGraph graph;
    runtime::TaskBody body;
  };
  IterationTasks make_iteration_tasks(
      const std::vector<part_t>& domain_of_cell, part_t ndomains);

  /// Bind a task body to a pre-built (graph, class map) pair — same
  /// contract as EulerSolver::make_iteration_body (the asynchronous
  /// pipeline's bind-at-iteration-boundary hook).
  runtime::TaskBody make_iteration_body(
      const taskgraph::TaskGraph& graph,
      std::shared_ptr<const taskgraph::ClassMap> classes);

  void note_tasks_complete();

  /// Σ V·φ corrected by in-flight accumulators (scalar pending on a
  /// boundary face counts as already departed).
  [[nodiscard]] double total_scalar() const;
  /// Cumulative scalar that crossed the boundary (outflow − inflow).
  /// total_scalar() + net_boundary_outflow() is constant to rounding.
  [[nodiscard]] double net_boundary_outflow() const {
    return boundary_net_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double value(index_t cell) const {
    return phi_[static_cast<std::size_t>(cell)];
  }
  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;
  [[nodiscard]] bool values_finite() const;

  /// The SIMD tier the streaming kernels actually run.
  [[nodiscard]] simd::Level simd_level() const { return simd_level_; }

private:
  // Per-object reference kernels (serial path, scattered-class fallback).
  void flux_face(index_t f, double dtf);
  void update_cell(index_t c);
  // Streaming range kernels over class-contiguous id runs — simd_level_
  // dispatchers, like the Euler solver's (see euler.hpp): scalar runs
  // the *_scalar bodies (bitwise the per-object kernels), sse2/avx2 run
  // the lane-transposed kernels in simd_kernels_w{2,4}.cpp.
  void flux_faces_interior(index_t begin, index_t end, double dtf);
  void flux_faces_boundary(index_t begin, index_t end, double dtf);
  void update_cells_range(index_t begin, index_t end);
  void flux_faces_interior_scalar(index_t begin, index_t end, double dtf);
  void flux_faces_boundary_scalar(index_t begin, index_t end, double dtf);
  void update_cells_range_scalar(index_t begin, index_t end);

  mesh::Mesh& mesh_;
  TransportConfig config_;
  KernelGeometry geom_;
  double dt0_ = 0;
  double time_ = 0;
  std::vector<double> phi_;
  /// Per-side face accumulators, folded into one two-column PaddedVars
  /// (column = side) so the SIMD update gather reaches either side from
  /// one base pointer: side s of face f is acc_.var(s)[f], equivalently
  /// slot f + s * stride from acc_.var(0).
  PaddedVars acc_;
  /// SIMD gather addressing (layout.hpp).
  std::vector<index_t> gather_slot_;
  std::vector<double> gather_sign_;
  simd::Level simd_level_ = simd::Level::scalar;
  /// Atomic: boundary face tasks of different classes may run
  /// concurrently and all credit the same counter.
  std::atomic<double> boundary_net_{0.0};
};

}  // namespace tamp::solver
