// Explicit compressible-Euler finite-volume solver with adaptive
// time stepping — the FLUSEPA-substitute core.
//
// Space: cell-centred finite volumes, Rusanov (local Lax–Friedrichs)
// fluxes, slip-wall boundaries. Time: the paper's temporal-level scheme —
// cell c advances with Δt·2^τ(c), an iteration spans 2^τmax subiterations,
// faces refresh at the finer neighbour's rate.
//
// Flux coupling across level interfaces uses per-side face accumulators:
// a face flux evaluation integrates F·area·Δt_face into both sides'
// accumulators; a cell update gathers and resets *its* side. This makes
// the scheme exactly conservative at the discrete level (the invariant
// Σ V·U − Σ A_side0 + Σ A_side1 is constant to rounding at every instant)
// and — together with the task graph's class dependencies — data-race-free
// under parallel task execution: every accumulator slot has exactly one
// writing task class, ordered against its readers by the DAG.
//
// The time integrator within a subiteration is forward Euler; FLUSEPA's
// Heun (second order) changes per-update cost, not task-graph structure
// (see DESIGN.md). A synchronous Heun integrator is provided for
// single-level meshes and used by the accuracy tests.
#pragma once

#include <array>
#include <vector>

#include "mesh/mesh.hpp"
#include "runtime/runtime.hpp"
#include "solver/layout.hpp"
#include "support/simd.hpp"
#include "taskgraph/generate.hpp"

namespace tamp::solver {

/// Number of conserved variables: ρ, ρu, ρv, ρw, ρE.
inline constexpr int kNumVars = 5;

using State = std::array<double, kNumVars>;

struct SolverConfig {
  double gamma = 1.4;  ///< ratio of specific heats
  /// CFL number for the per-cell time-step bound. The level-interface
  /// coupling consumes fluxes with up to one full cell-step of lag, which
  /// empirically halves the stable CFL versus synchronous integration —
  /// hence the conservative default (0.4 is stable on single-level
  /// meshes; FLUSEPA's Heun + flux-correction scheme tolerates more).
  double cfl = 0.2;
  level_t max_levels = 4;  ///< cap on the number of temporal levels
  /// SIMD tier for the streaming kernels, resolved once at construction:
  /// inherit defers to the process default (flusim --simd / TAMP_SIMD,
  /// auto when unset). `scalar` forces the bitwise oracle path.
  simd::Request simd = simd::Request::inherit;
};

class EulerSolver {
public:
  /// Binds to `mesh` (whose temporal levels assign_temporal_levels()
  /// rewrites). The mesh must outlive the solver.
  EulerSolver(mesh::Mesh& mesh, SolverConfig config = {});

  // --- state initialisation -------------------------------------------------

  /// Uniform primitive state everywhere.
  void initialize_uniform(double rho, mesh::Vec3 velocity, double pressure);

  /// Superimpose a Gaussian density/pressure pulse (isentropic-ish bump).
  void add_pulse(mesh::Vec3 center, double radius, double relative_amplitude);

  // --- temporal levels --------------------------------------------------------

  /// Quantise per-cell CFL limits onto the ×2 level ladder, write the
  /// levels into the mesh, and fix Δt0 (the finest step). Returns the
  /// level vector.
  std::vector<level_t> assign_temporal_levels();

  [[nodiscard]] double dt0() const { return dt0_; }
  [[nodiscard]] double time() const { return time_; }

  // --- execution ---------------------------------------------------------------

  /// One full iteration (2^τmax subiterations), serial reference order:
  /// subiterations ascending, phases descending, faces before cells.
  void run_iteration();

  /// One full iteration executed as a task graph on the threaded runtime.
  /// Produces bitwise the same physics as run_iteration() modulo
  /// floating-point reassociation across domains (none: object lists are
  /// deterministic, and each object is touched by exactly one task).
  runtime::ExecutionReport run_iteration_tasks(
      const std::vector<part_t>& domain_of_cell, part_t ndomains,
      const std::vector<part_t>& domain_to_process,
      const runtime::RuntimeConfig& runtime_config);

  /// One iteration as a reusable (graph, body) pair for custom execution
  /// — the race verifier, adversarial-schedule sweeps, per-subiteration
  /// slicing. Running `body` once per task in any DAG-consistent order
  /// advances this solver exactly like run_iteration_tasks(); call
  /// note_tasks_complete() afterwards to advance the clock. The body
  /// shares ownership of its object lists and stays valid as long as the
  /// solver does, independent of the struct or graph.
  struct IterationTasks {
    taskgraph::TaskGraph graph;
    runtime::TaskBody body;
  };
  IterationTasks make_iteration_tasks(
      const std::vector<part_t>& domain_of_cell, part_t ndomains);

  /// Bind a task body to a pre-built (graph, class map) pair — the
  /// asynchronous pipeline generates the graph on the prep stage and
  /// binds it here at the iteration boundary, without regenerating
  /// anything. `graph` and `*classes` must come from one
  /// generate_task_graph call on a mesh whose topology and temporal
  /// levels match this solver's mesh at bind time. Same contract as the
  /// body of make_iteration_tasks (which is implemented on top of this).
  runtime::TaskBody make_iteration_body(
      const taskgraph::TaskGraph& graph,
      std::shared_ptr<const taskgraph::ClassMap> classes);

  /// Advance the solver clock after an externally-executed iteration's
  /// tasks all ran.
  void note_tasks_complete();

  /// Synchronous second-order Heun iteration; requires a single-level
  /// mesh (used by accuracy tests).
  void run_iteration_heun();

  // --- observables ----------------------------------------------------------------

  /// Conservation invariant: Σ V·U corrected by in-flight accumulators.
  /// Exactly constant across updates for mass and energy (slip walls add
  /// momentum through wall pressure).
  [[nodiscard]] State conserved_totals() const;

  [[nodiscard]] double cell_density(index_t c) const { return u_.at(0, c); }
  /// Raw conserved state of one cell (for bitwise-equality assertions).
  [[nodiscard]] State cell_state(index_t c) const {
    return {u_.at(0, c), u_.at(1, c), u_.at(2, c), u_.at(3, c), u_.at(4, c)};
  }
  [[nodiscard]] double cell_pressure(index_t c) const;
  [[nodiscard]] mesh::Vec3 cell_velocity(index_t c) const;
  [[nodiscard]] double max_density() const;
  [[nodiscard]] bool state_is_finite() const;

  /// The SIMD tier the streaming kernels actually run (config request
  /// resolved against the CPU at construction).
  [[nodiscard]] simd::Level simd_level() const { return simd_level_; }

  // --- cost calibration -------------------------------------------------------------

  /// Measure seconds per face-flux evaluation and per cell update by
  /// timing the kernels on this mesh (used to calibrate CostModel for the
  /// production experiment, Fig 13).
  [[nodiscard]] taskgraph::CostModel measure_cost_model(int repetitions = 3);

private:
  // Per-object reference kernels (serial path, scattered-class fallback;
  // record their accesses inline when instrumented).
  void flux_face(index_t f, double dtf);
  void update_cell(index_t c, double dtc);
  // Streaming range kernels over class-contiguous id runs. These are
  // simd_level_ dispatchers: at Level::scalar they run the *_scalar
  // bodies below (identical arithmetic to the per-object kernels,
  // asserted bitwise by the layout property tests); at sse2/avx2 they
  // run the lane-transposed kernels in simd_kernels_w{2,4}.cpp, which
  // are lanewise transcriptions of the same expression trees (see
  // DESIGN.md "SIMD kernel contract"). No inline access records either
  // way — ranged task bodies record their class's ranges up front.
  void flux_faces_interior(index_t begin, index_t end, double dtf);
  void flux_faces_boundary(index_t begin, index_t end, double dtf);
  void update_cells_range(index_t begin, index_t end);
  void flux_faces_interior_scalar(index_t begin, index_t end, double dtf);
  void flux_faces_boundary_scalar(index_t begin, index_t end, double dtf);
  void update_cells_range_scalar(index_t begin, index_t end);
  State wall_flux(const State& inside, mesh::Vec3 n) const;
  State interior_flux(const State& left, const State& right,
                      mesh::Vec3 n) const;
  [[nodiscard]] double wave_speed(const State& u) const;

  /// Column of the combined accumulator holding side `s` of variable v.
  [[nodiscard]] static int acc_col(int side, int v) {
    return side * kNumVars + v;
  }

  mesh::Mesh& mesh_;
  SolverConfig config_;
  KernelGeometry geom_;
  double dt0_ = 0;
  double time_ = 0;
  /// Conserved state, padded SoA: u_.var(v)[cell].
  PaddedVars u_;
  /// Face accumulators, both sides folded into one buffer so the SIMD
  /// update gather reaches either side from one base pointer per
  /// variable: side s of variable v is column acc_col(s, v), i.e.
  /// acc_.var(acc_col(s, v))[face].
  PaddedVars acc_;
  /// SIMD gather addressing (layout.hpp): per-CSR-entry combined-buffer
  /// slot and ±1 side sign.
  std::vector<index_t> gather_slot_;
  std::vector<double> gather_sign_;
  simd::Level simd_level_ = simd::Level::scalar;
};

}  // namespace tamp::solver
