// 4-lane instantiations of the streaming kernels. CMake compiles this
// one TU with -mavx2 when the compiler accepts the flag (publishing
// TAMP_SIMD_MAVX2 so simd::level_runnable knows), making Pack<4> the
// hand-written __m256d specialisation with hardware gathers; without
// the flag it is the portable 4-lane fallback, runnable on any CPU.
// Everything ISA-sensitive here has internal linkage (see
// simd_kernels_impl.hpp) — only the _w4 wrappers are exported, and the
// dispatchers call them only when simd::Level::avx2 resolved runnable.
#include "solver/simd_kernels.hpp"
#include "solver/simd_kernels_impl.hpp"

namespace tamp::solver::simdk {

void euler_flux_interior_w4(const EulerFluxCtx& ctx, index_t begin,
                            index_t end, double dtf) {
  euler_flux_interior_t<4>(ctx, begin, end, dtf);
}

void euler_flux_boundary_w4(const EulerFluxCtx& ctx, index_t begin,
                            index_t end, double dtf) {
  euler_flux_boundary_t<4>(ctx, begin, end, dtf);
}

void euler_update_w4(const EulerUpdateCtx& ctx, index_t begin, index_t end) {
  euler_update_t<4>(ctx, begin, end);
}

void transport_flux_interior_w4(const TransportFluxCtx& ctx, index_t begin,
                                index_t end, double dtf) {
  transport_flux_interior_t<4>(ctx, begin, end, dtf);
}

double transport_flux_boundary_w4(const TransportFluxCtx& ctx, index_t begin,
                                  index_t end, double dtf) {
  return transport_flux_boundary_t<4>(ctx, begin, end, dtf);
}

void transport_update_w4(const TransportUpdateCtx& ctx, index_t begin,
                         index_t end) {
  transport_update_t<4>(ctx, begin, end);
}

}  // namespace tamp::solver::simdk
