#include "solver/layout.hpp"

#include <algorithm>
#include <limits>

#include "taskgraph/generate.hpp"
#include "verify/access.hpp"

namespace tamp::solver {

KernelGeometry build_kernel_geometry(const mesh::Mesh& mesh) {
  const index_t ncells = mesh.num_cells();
  const index_t nfaces = mesh.num_faces();
  const auto sc = static_cast<std::size_t>(ncells);
  const auto sf = static_cast<std::size_t>(nfaces);

  KernelGeometry g;
  g.face_a.resize(sf);
  g.face_b.resize(sf);
  g.nx.resize(sf);
  g.ny.resize(sf);
  g.nz.resize(sf);
  g.area.resize(sf);
  g.dist.resize(sf);
  for (index_t f = 0; f < nfaces; ++f) {
    const auto i = static_cast<std::size_t>(f);
    const index_t a = mesh.face_cell(f, 0);
    const index_t b = mesh.face_cell(f, 1);
    g.face_a[i] = a;
    g.face_b[i] = b;
    const mesh::Vec3 n = mesh.face_normal(f);
    g.nx[i] = n.x;
    g.ny[i] = n.y;
    g.nz[i] = n.z;
    g.area[i] = mesh.face_area(f);
    // The same clamped two-point distance the transport diffusive flux
    // computed inline; 1.0 at boundaries where no kernel reads it.
    g.dist[i] = b == invalid_index
                    ? 1.0
                    : std::max(distance(mesh.cell_centroid(a),
                                        mesh.cell_centroid(b)),
                               1e-300);
  }

  g.inv_vol.resize(sc);
  for (index_t c = 0; c < ncells; ++c)
    g.inv_vol[static_cast<std::size_t>(c)] = 1.0 / mesh.cell_volume(c);

  g.gather_xadj.resize(sc + 1);
  g.gather_xadj[0] = 0;
  for (index_t c = 0; c < ncells; ++c)
    g.gather_xadj[static_cast<std::size_t>(c) + 1] =
        g.gather_xadj[static_cast<std::size_t>(c)] +
        static_cast<eindex_t>(mesh.cell_faces(c).size());
  g.gather_face.resize(static_cast<std::size_t>(g.gather_xadj[sc]));
  g.gather_side.resize(g.gather_face.size());
  std::size_t k = 0;
  for (index_t c = 0; c < ncells; ++c)
    for (const index_t f : mesh.cell_faces(c)) {
      g.gather_face[k] = f;
      g.gather_side[k] = mesh.face_cell(f, 0) == c ? 0 : 1;
      ++k;
    }
  return g;
}

std::vector<index_t> build_gather_slots(const KernelGeometry& geom,
                                        eindex_t side_offset) {
  TAMP_EXPECTS(side_offset >= 0, "side offset must be non-negative");
  std::vector<index_t> slots(geom.gather_face.size());
  for (std::size_t k = 0; k < slots.size(); ++k) {
    const eindex_t slot =
        static_cast<eindex_t>(geom.gather_face[k]) +
        (geom.gather_side[k] != 0 ? side_offset : 0);
    TAMP_EXPECTS(slot <= std::numeric_limits<index_t>::max(),
                 "accumulator slot overflows 32-bit gather index");
    slots[k] = static_cast<index_t>(slot);
  }
  return slots;
}

std::vector<double> build_gather_signs(const KernelGeometry& geom) {
  std::vector<double> signs(geom.gather_side.size());
  for (std::size_t k = 0; k < signs.size(); ++k)
    signs[k] = geom.gather_side[k] == 0 ? -1.0 : 1.0;
  return signs;
}

std::vector<IdRange> compress_to_ranges(std::vector<index_t> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::vector<IdRange> runs;
  for (std::size_t i = 0; i < ids.size();) {
    std::size_t j = i + 1;
    while (j < ids.size() && ids[j] == ids[j - 1] + 1) ++j;
    runs.push_back({ids[i], ids[j - 1] + 1});
    i = j;
  }
  return runs;
}

ClassAccessTable build_class_access_ranges(
    const mesh::Mesh& mesh, const taskgraph::ClassMap& classes,
    bool boundary_writes_side1) {
  const std::size_t nclasses = classes.class_cells.size();
  TAMP_EXPECTS(classes.class_faces.size() == nclasses &&
                   classes.cell_range.size() == nclasses &&
                   classes.face_range.size() == nclasses,
               "inconsistent ClassMap");
  ClassAccessTable table;
  table.face.resize(nclasses);
  table.cell.resize(nclasses);
  std::vector<index_t> scratch;
  for (std::size_t k = 0; k < nclasses; ++k) {
    const taskgraph::ClassMap::FaceRange& fr = classes.face_range[k];
    if (fr.valid()) {
      // Face task: reads the adjacent cells, writes its faces' slots.
      ClassAccessRanges& entry = table.face[k];
      scratch.clear();
      for (index_t f = fr.begin; f < fr.end; ++f) {
        scratch.push_back(mesh.face_cell(f, 0));
        if (f < fr.boundary_begin) scratch.push_back(mesh.face_cell(f, 1));
      }
      entry.cells = compress_to_ranges(scratch);
      entry.acc[0] = {{fr.begin, fr.end}};
      const index_t side1_end = boundary_writes_side1 ? fr.end
                                                      : fr.boundary_begin;
      if (side1_end > fr.begin) entry.acc[1] = {{fr.begin, side1_end}};
    }
    const taskgraph::ClassMap::CellRange& cr = classes.cell_range[k];
    if (cr.valid()) {
      // Cell task: writes its cells, gathers-and-resets its exact side
      // of each adjacent face.
      ClassAccessRanges& entry = table.cell[k];
      entry.cells = {{cr.begin, cr.end}};
      std::array<std::vector<index_t>, 2> slots;
      for (index_t c = cr.begin; c < cr.end; ++c)
        for (const index_t f : mesh.cell_faces(c))
          slots[mesh.face_cell(f, 0) == c ? 0 : 1].push_back(f);
      entry.acc[0] = compress_to_ranges(std::move(slots[0]));
      entry.acc[1] = compress_to_ranges(std::move(slots[1]));
    }
  }
  return table;
}

void record_class_ranges(const ClassAccessRanges& ranges, bool face_task) {
  const verify::AccessMode cell_mode =
      face_task ? verify::AccessMode::read : verify::AccessMode::write;
  for (const IdRange& r : ranges.cells)
    verify::record_access_range(verify::ObjectKind::cell_state, r.begin, r.end,
                                cell_mode);
  for (const IdRange& r : ranges.acc[0])
    verify::record_write_range(verify::ObjectKind::face_acc_side0, r.begin,
                               r.end);
  for (const IdRange& r : ranges.acc[1])
    verify::record_write_range(verify::ObjectKind::face_acc_side1, r.begin,
                               r.end);
}

}  // namespace tamp::solver

