// Kernel data path for the solvers: padded structure-of-arrays state,
// a precomputed per-face/per-cell geometry pack, and the range helpers
// the streaming kernels and the range-granular race annotations share.
//
// The mesh interface (mesh::Mesh) is convenient but the wrong shape for
// a hot sweep: face_cell() re-derives offsets per call, face_normal()
// returns a Vec3 by value, cell_volume() costs a division per gather in
// update_cell, and the Vec3 arrays interleave x/y/z. KernelGeometry
// flattens everything a flux or update kernel touches into plain
// unit-stride double/index arrays, computed once per solver. The values
// are *copies* of the mesh quantities (and 1/V the exact same division
// the per-object kernels performed), so kernels reading the pack are
// bitwise identical to kernels reading the mesh.
//
// PaddedVars stores kNumVars-style multi-variable state in one buffer
// with the per-variable stride rounded up to a cache line (8 doubles):
// variable v of object i lives at data[v * stride + i]. Padding keeps
// each variable's column 64-byte aligned relative to the buffer start so
// streaming sweeps touch disjoint lines per variable, and it lets a
// vectorised tail read/write past `size` without touching a neighbour
// column.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mesh/mesh.hpp"
#include "support/check.hpp"
#include "support/types.hpp"

namespace tamp::taskgraph {
struct ClassMap;
}

namespace tamp::solver {

/// Stride quantum: 8 doubles = one 64-byte cache line.
inline constexpr std::size_t kPadDoubles = 8;

/// Smallest multiple of kPadDoubles that holds n objects.
[[nodiscard]] inline std::size_t padded_stride(index_t n) {
  const auto un = static_cast<std::size_t>(n);
  return (un + kPadDoubles - 1) / kPadDoubles * kPadDoubles;
}

/// Multi-variable state in one contiguous buffer, variable-major with a
/// padded per-variable stride. var(v) is a raw column pointer — the form
/// the streaming kernels index with a unit-stride object id.
class PaddedVars {
public:
  PaddedVars() = default;
  PaddedVars(index_t size, int num_vars)
      : size_(size), stride_(padded_stride(size)),
        data_(stride_ * static_cast<std::size_t>(num_vars), 0.0) {
    TAMP_EXPECTS(size >= 0 && num_vars >= 1, "invalid PaddedVars shape");
  }

  [[nodiscard]] index_t size() const { return size_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }

  [[nodiscard]] double* var(int v) {
    return data_.data() + static_cast<std::size_t>(v) * stride_;
  }
  [[nodiscard]] const double* var(int v) const {
    return data_.data() + static_cast<std::size_t>(v) * stride_;
  }
  [[nodiscard]] double& at(int v, index_t i) {
    return var(v)[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] double at(int v, index_t i) const {
    return var(v)[static_cast<std::size_t>(i)];
  }

  void fill(double value) { data_.assign(data_.size(), value); }

private:
  index_t size_ = 0;
  std::size_t stride_ = 0;
  std::vector<double> data_;
};

/// Everything a flux or cell-update kernel needs, as flat arrays.
///
/// Face arrays (size num_faces): adjacent cells a/b (b = invalid_index
/// at a boundary), unit normal components, area, and the clamped
/// centroid distance max(|xa − xb|, 1e-300) the diffusive flux divides
/// by (1.0 at boundaries, where it is never read).
///
/// Cell arrays: inv_vol[c] = 1.0 / V(c), plus the gather CSR — the
/// cell's adjacent faces in exactly mesh.cell_faces(c) order (the
/// accumulator gather is order-sensitive floating-point addition, so
/// this order is part of the bitwise contract) with the cell's side of
/// each face precomputed.
struct KernelGeometry {
  std::vector<index_t> face_a;
  std::vector<index_t> face_b;
  std::vector<double> nx, ny, nz;
  std::vector<double> area;
  std::vector<double> dist;
  std::vector<double> inv_vol;
  std::vector<eindex_t> gather_xadj;       ///< num_cells + 1
  std::vector<index_t> gather_face;
  std::vector<std::uint8_t> gather_side;   ///< 0 or 1, parallel to gather_face
};

[[nodiscard]] KernelGeometry build_kernel_geometry(const mesh::Mesh& mesh);

/// Flattened gather addressing for the SIMD cell-update kernels
/// (solver/simd_kernels.hpp). The solvers fold both accumulator sides
/// into one PaddedVars so a single base pointer per variable reaches
/// either side; slot[k] = gather_face[k] + gather_side[k] * side_offset
/// rewrites the CSR's (face, side) pairs into direct offsets from that
/// base. `side_offset` is num_vars * stride of the combined buffer.
/// Checked: every slot fits index_t, the 32-bit type the hardware
/// gathers index with.
[[nodiscard]] std::vector<index_t> build_gather_slots(
    const KernelGeometry& geom, eindex_t side_offset);

/// gather_side recoded as the update kernels' signed weight: -1.0 for
/// side 0 (flux leaves the cell), +1.0 for side 1.
[[nodiscard]] std::vector<double> build_gather_signs(
    const KernelGeometry& geom);

/// Boundary-face accumulator contract: a boundary face has no side-1
/// cell, so nothing ever gathers its side-1 slot — a side-1 deposit
/// there is inert. The scalar Euler kernels still write it (bitwise
/// oracle, matches the seed), while the SIMD dispatch path skips the
/// wasted store; the transport kernels never wrote it. The race
/// annotations (build_class_access_ranges with boundary_writes_side1 =
/// true) deliberately stay over-approximate — claiming a write that no
/// longer happens on the SIMD path is sound, never falsely racy,
/// because no reader of those slots exists either.

/// Nominal main-memory traffic of the streaming kernels, in bytes per
/// object update, for converting measured counter totals into bandwidth
/// context (perf attribution, flusim --execute). These are *models*, not
/// measurements: they count the doubles a kernel logically streams per
/// object assuming no cache reuse between objects, which is the upper
/// bound a perfectly-streaming sweep approaches on meshes much larger
/// than LLC. Hex meshes average 6 faces per cell.
inline constexpr double kAvgFacesPerCell = 6.0;

/// Cell update: write num_vars state doubles, read 1/V, and gather
/// num_vars accumulator doubles from each adjacent face.
[[nodiscard]] constexpr double streaming_bytes_per_cell_update(int num_vars) {
  return 8.0 * (static_cast<double>(num_vars) + 1.0 +
                kAvgFacesPerCell * static_cast<double>(num_vars));
}

/// Face flux: read both adjacent cells' num_vars state doubles and five
/// geometry doubles (normal, area, distance), write both accumulator
/// sides.
[[nodiscard]] constexpr double streaming_bytes_per_face_flux(int num_vars) {
  return 8.0 * (2.0 * static_cast<double>(num_vars) + 5.0 +
                2.0 * static_cast<double>(num_vars));
}

/// Half-open id run [begin, end).
struct IdRange {
  index_t begin = 0;
  index_t end = 0;

  friend bool operator==(const IdRange&, const IdRange&) = default;
};

/// Compress an id set into the minimal list of maximal consecutive runs
/// (sorts and deduplicates its argument first).
[[nodiscard]] std::vector<IdRange> compress_to_ranges(std::vector<index_t> ids);

/// Precomputed race-verifier annotation for one ranged task: the exact
/// object sets it touches, compressed to runs so recording costs
/// O(ranges) per task execution instead of O(objects).
///
/// For a face task: `cells` are the adjacent cells the fluxes read
/// (side 0 of every face, side 1 of interior faces) and `acc[s]` the
/// accumulator-side slots written. For a cell task: `cells` is the
/// single written run and `acc[s]` the exact side-s slots the gathers
/// reset — exact, not the class's face range, because two unordered cell
/// classes legitimately touch opposite sides of one face.
struct ClassAccessRanges {
  std::vector<IdRange> cells;
  std::array<std::vector<IdRange>, 2> acc;
};

/// Per-class annotation tables, indexed by class id. One class id names
/// both a face list and a cell list (its face task and its cell task),
/// so the two task types get separate tables.
struct ClassAccessTable {
  std::vector<ClassAccessRanges> face;
  std::vector<ClassAccessRanges> cell;
};

/// Build the annotation tables for every class whose object list is a
/// valid range in `classes`; scattered classes get empty entries (their
/// tasks fall back to per-object kernels which record inline).
/// `boundary_writes_side1` captures the solver's flux kernel semantics:
/// the Euler kernel deposits into both accumulator sides of every face
/// including boundaries, the transport kernel skips side 1 at
/// boundaries.
[[nodiscard]] ClassAccessTable build_class_access_ranges(
    const mesh::Mesh& mesh, const taskgraph::ClassMap& classes,
    bool boundary_writes_side1);

/// Record one ranged task's precomputed accesses into the active
/// verify::TaskRecordScope: `cells` as reads for a face task and as
/// writes for a cell task, accumulator slots always as writes. Callers
/// guard on verify::recording_active() so the streaming kernels stay
/// annotation-free.
void record_class_ranges(const ClassAccessRanges& ranges, bool face_task);

}  // namespace tamp::solver
