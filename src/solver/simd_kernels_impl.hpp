// Width-templated bodies of the SIMD streaming kernels. Included ONLY
// by the per-width translation units (simd_kernels_w2.cpp /
// simd_kernels_w4.cpp); everything here is in an anonymous namespace so
// each TU keeps its own copies compiled for its own -m flags (the same
// internal-linkage trick as support/simd_pack.hpp — no COMDAT merging
// of AVX2 bodies into baseline code).
//
// Equivalence contract (DESIGN.md "SIMD kernel contract"): every kernel
// is a lane-for-lane transcription of the scalar streaming kernel's
// expression tree — same association, same max/compare semantics, no
// FMA contraction, no horizontal reductions on the physics path. The
// Pack<1> instantiation of each template IS the scalar kernel, which is
// what the tail/remainder paths run, so range splits never change
// results. The two deliberate divergences, both documented at the use
// site: the Euler boundary kernel skips the inert side-1 deposit, and
// the transport boundary net is a per-range horizontal sum (tolerance
// -only diagnostic by contract).
#pragma once

#include <cstddef>

#include "solver/simd_kernels.hpp"
#include "support/simd_pack.hpp"

namespace tamp::solver::simdk {
namespace {  // NOLINT — per-TU copies, see file header

template <int W>
using Pack = tamp::simd::Pack<W>;

/// Shared lanewise pieces of the Euler physics, mirroring euler.cpp's
/// kinetic() / wave_speed() / interior_flux() shapes exactly.
template <int W>
struct EulerMath {
  using P = Pack<W>;
  P gamma, gm1, half, floor12;

  explicit EulerMath(double gamma_in)
      : gamma(P::broadcast(gamma_in)),
        gm1(P::broadcast(gamma_in - 1.0)),
        half(P::broadcast(0.5)),
        floor12(P::broadcast(1e-12)) {}

  // 0.5 * (u1*u1 + u2*u2 + u3*u3) / u0, rho unclamped as in kinetic().
  P kinetic(const P u[kEulerVars]) const {
    return (half * (((u[1] * u[1]) + (u[2] * u[2])) + (u[3] * u[3]))) / u[0];
  }

  P pressure(const P u[kEulerVars]) const {
    return max(gm1 * (u[4] - kinetic(u)), floor12);
  }

  P wave_speed(const P u[kEulerVars]) const {
    const P rho = max(u[0], floor12);
    const P p = pressure(u);
    const P c = sqrt((gamma * p) / rho);
    const P speed =
        sqrt(((u[1] * u[1]) + (u[2] * u[2])) + (u[3] * u[3])) / rho;
    return speed + c;
  }

  // physical() from interior_flux: F(u)·n with clamped rho for velocity.
  void physical(const P u[kEulerVars], P nx, P ny, P nz,
                P f_out[kEulerVars]) const {
    const P rho = max(u[0], floor12);
    const P vx = u[1] / rho;
    const P vy = u[2] / rho;
    const P vz = u[3] / rho;
    const P p = pressure(u);
    const P un = ((vx * nx) + (vy * ny)) + (vz * nz);
    f_out[0] = rho * un;
    f_out[1] = (u[1] * un) + (p * nx);
    f_out[2] = (u[2] * un) + (p * ny);
    f_out[3] = (u[3] * un) + (p * nz);
    f_out[4] = (u[4] + p) * un;
  }
};

template <int W>
void euler_flux_interior_t(const EulerFluxCtx& ctx, index_t begin,
                           index_t end, double dtf) {
  using P = Pack<W>;
  const EulerMath<W> m(ctx.gamma);
  const P dtfp = P::broadcast(dtf);
  index_t f = begin;
  for (; f + W <= end; f += W) {
    P ua[kEulerVars], ub[kEulerVars];
    for (int v = 0; v < kEulerVars; ++v) {
      ua[v] = P::gather(ctx.u[v], ctx.face_a + f);
      ub[v] = P::gather(ctx.u[v], ctx.face_b + f);
    }
    const P nx = P::load(ctx.nx + f);
    const P ny = P::load(ctx.ny + f);
    const P nz = P::load(ctx.nz + f);
    P fl[kEulerVars], fr[kEulerVars];
    m.physical(ua, nx, ny, nz, fl);
    m.physical(ub, nx, ny, nz, fr);
    // Rusanov: 0.5*(fl+fr) - (0.5*smax)*(ub-ua), as in interior_flux().
    const P hsmax = m.half * max(m.wave_speed(ua), m.wave_speed(ub));
    const P scale = P::load(ctx.area + f) * dtfp;
    for (int v = 0; v < kEulerVars; ++v) {
      const P flux = (m.half * (fl[v] + fr[v])) - (hsmax * (ub[v] - ua[v]));
      const P amount = flux * scale;
      (P::load(ctx.acc0[v] + f) + amount).store(ctx.acc0[v] + f);
      (P::load(ctx.acc1[v] + f) + amount).store(ctx.acc1[v] + f);
    }
  }
  if constexpr (W > 1)
    if (f < end) euler_flux_interior_t<1>(ctx, f, end, dtf);
}

template <int W>
void euler_flux_boundary_t(const EulerFluxCtx& ctx, index_t begin,
                           index_t end, double dtf) {
  using P = Pack<W>;
  const EulerMath<W> m(ctx.gamma);
  const P dtfp = P::broadcast(dtf);
  const P zero = P::broadcast(0.0);
  index_t f = begin;
  for (; f + W <= end; f += W) {
    P ua[kEulerVars];
    for (int v = 0; v < kEulerVars; ++v)
      ua[v] = P::gather(ctx.u[v], ctx.face_a + f);
    const P nx = P::load(ctx.nx + f);
    const P ny = P::load(ctx.ny + f);
    const P nz = P::load(ctx.nz + f);
    // Slip wall (wall_flux): only momentum feels the wall pressure.
    const P p = m.pressure(ua);
    const P flux[kEulerVars] = {zero, p * nx, p * ny, p * nz, zero};
    const P scale = P::load(ctx.area + f) * dtfp;
    // Side 0 only: the side-1 deposit of a boundary face is inert (no
    // cell gathers it — see layout.hpp) and the dispatch path skips the
    // wasted store. The scalar oracle keeps it.
    for (int v = 0; v < kEulerVars; ++v) {
      const P amount = flux[v] * scale;
      (P::load(ctx.acc0[v] + f) + amount).store(ctx.acc0[v] + f);
    }
  }
  if constexpr (W > 1)
    if (f < end) euler_flux_boundary_t<1>(ctx, f, end, dtf);
}

template <int W>
void transport_flux_interior_t(const TransportFluxCtx& ctx, index_t begin,
                               index_t end, double dtf) {
  using P = Pack<W>;
  const P vx = P::broadcast(ctx.vx);
  const P vy = P::broadcast(ctx.vy);
  const P vz = P::broadcast(ctx.vz);
  const P dtfp = P::broadcast(dtf);
  const P zero = P::broadcast(0.0);
  const P diff = P::broadcast(ctx.diffusivity);
  index_t f = begin;
  for (; f + W <= end; f += W) {
    const P nx = P::load(ctx.nx + f);
    const P ny = P::load(ctx.ny + f);
    const P nz = P::load(ctx.nz + f);
    const P un = ((vx * nx) + (vy * ny)) + (vz * nz);
    const P phi_a = P::gather(ctx.phi, ctx.face_a + f);
    const P phi_b = P::gather(ctx.phi, ctx.face_b + f);
    // un * (un >= 0 ? phi_a : phi_b): >= is the same ordered compare.
    P flux = un * P::select(ge(un, zero), phi_a, phi_b);
    if (ctx.diffusivity > 0)
      flux = flux - ((diff * (phi_b - phi_a)) / P::load(ctx.dist + f));
    const P amount = (flux * P::load(ctx.area + f)) * dtfp;
    (P::load(ctx.acc0 + f) + amount).store(ctx.acc0 + f);
    (P::load(ctx.acc1 + f) + amount).store(ctx.acc1 + f);
  }
  if constexpr (W > 1)
    if (f < end) transport_flux_interior_t<1>(ctx, f, end, dtf);
}

template <int W>
double transport_flux_boundary_t(const TransportFluxCtx& ctx, index_t begin,
                                 index_t end, double dtf) {
  using P = Pack<W>;
  const P vx = P::broadcast(ctx.vx);
  const P vy = P::broadcast(ctx.vy);
  const P vz = P::broadcast(ctx.vz);
  const P dtfp = P::broadcast(dtf);
  const P zero = P::broadcast(0.0);
  const P ambient = P::broadcast(ctx.ambient);
  P net_lanes = zero;
  double net = 0.0;
  index_t f = begin;
  for (; f + W <= end; f += W) {
    const P nx = P::load(ctx.nx + f);
    const P ny = P::load(ctx.ny + f);
    const P nz = P::load(ctx.nz + f);
    const P un = ((vx * nx) + (vy * ny)) + (vz * nz);
    const P phi_a = P::gather(ctx.phi, ctx.face_a + f);
    const P flux = un * P::select(ge(un, zero), phi_a, ambient);
    const P amount = (flux * P::load(ctx.area + f)) * dtfp;
    (P::load(ctx.acc0 + f) + amount).store(ctx.acc0 + f);
    net_lanes = net_lanes + amount;
  }
  // Horizontal sum — allowed here only because the boundary net is a
  // tolerance-compared diagnostic (see transport.cpp), never physics.
  net = net_lanes.hsum();
  if constexpr (W > 1)
    if (f < end) net += transport_flux_boundary_t<1>(ctx, f, end, dtf);
  return net;
}

/// Generic gather-CSR cell update, shared by both solvers (NV = number
/// of state/accumulator variables; transport is NV = 1). Vector path:
/// W consecutive cells with equal face counts d and contiguous CSR rows
/// form a W×d block whose slots are read with stride-d gathers; the
/// accumulator reset is fused in as scalar zero-stores (no scatter in
/// AVX2). Any cell breaking the uniform-degree pattern — and the final
/// cells of the range — runs the scalar body, which is bitwise the
/// solvers' scalar update kernel.
template <int W, int NV>
void update_cells_t(double* const* u, double* const* acc,
                    const double* inv_vol, const eindex_t* xadj,
                    const index_t* slot, const double* sign, index_t begin,
                    index_t end) {
  using P = Pack<W>;
  const auto scalar_cell = [&](index_t c) {
    const double inv_v = inv_vol[c];
    for (eindex_t k = xadj[c]; k < xadj[c + 1]; ++k) {
      const double s = sign[k];
      for (int v = 0; v < NV; ++v) {
        u[v][c] += (s * acc[v][slot[k]]) * inv_v;
        acc[v][slot[k]] = 0.0;
      }
    }
  };
  index_t c = begin;
  if constexpr (W > 1) {
    while (c + W <= end) {
      const eindex_t k0 = xadj[c];
      const eindex_t deg = xadj[c + 1] - k0;
      bool uniform = true;
      for (int l = 2; l <= W; ++l)
        if (xadj[c + l] != k0 + static_cast<eindex_t>(l) * deg) {
          uniform = false;
          break;
        }
      if (!uniform) {
        scalar_cell(c);
        ++c;
        continue;
      }
      const auto d = static_cast<std::ptrdiff_t>(deg);
      const index_t* sl = slot + k0;
      const double* sg = sign + k0;
      const P inv_v = P::load(inv_vol + c);
      P uv[NV];
      for (int v = 0; v < NV; ++v) uv[v] = P::load(u[v] + c);
      for (std::ptrdiff_t j = 0; j < d; ++j) {
        const P s = P::load_strided(sg + j, d);
        for (int v = 0; v < NV; ++v) {
          const P a = P::gather(acc[v], sl + j, d);
          // u += (sign * acc) * inv_v, per update_cells_range.
          uv[v] = uv[v] + ((s * a) * inv_v);
        }
      }
      for (int v = 0; v < NV; ++v) uv[v].store(u[v] + c);
      for (eindex_t k = k0; k < k0 + static_cast<eindex_t>(W) * deg; ++k)
        for (int v = 0; v < NV; ++v) acc[v][slot[k]] = 0.0;
      c += W;
    }
  }
  for (; c < end; ++c) scalar_cell(c);
}

template <int W>
void euler_update_t(const EulerUpdateCtx& ctx, index_t begin, index_t end) {
  update_cells_t<W, kEulerVars>(ctx.u, ctx.acc, ctx.inv_vol, ctx.xadj,
                                ctx.slot, ctx.sign, begin, end);
}

template <int W>
void transport_update_t(const TransportUpdateCtx& ctx, index_t begin,
                        index_t end) {
  double* const u[1] = {ctx.phi};
  double* const acc[1] = {ctx.acc};
  update_cells_t<W, 1>(u, acc, ctx.inv_vol, ctx.xadj, ctx.slot, ctx.sign,
                       begin, end);
}

}  // namespace
}  // namespace tamp::solver::simdk
