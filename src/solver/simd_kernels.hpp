// Per-width SIMD entry points for the solver streaming kernels.
//
// The solvers (euler.cpp, transport.cpp) dispatch their three streaming
// sweeps — interior flux, boundary flux, cell update — onto these
// `_w2` / `_w4` wrappers according to the resolved simd::Level. Each
// width lives in its own translation unit (simd_kernels_w2.cpp /
// simd_kernels_w4.cpp) so the 4-lane unit can be compiled with -mavx2
// without leaking AVX2 code into baseline objects; both instantiate the
// same templates from simd_kernels_impl.hpp, so the two widths differ
// only in lane count, never in expression shape.
//
// The Ctx structs are plain pointer bundles into solver-owned storage;
// they borrow, never own. Keep this header light: it is included from a
// TU built with wider -m flags, so anything defined here must be
// ISA-neutral (declarations and PODs only).
//
// Accumulator addressing: both solvers fold the two accumulator sides
// into one PaddedVars so the cell-update gather can pull either side
// through a single base pointer per variable. For variable v the base is
// `acc[v] = combined.var(v)` and the per-CSR-entry slot is
// `face + side * side_offset` where side_offset = num_vars * stride —
// i.e. side 1 of variable v lives in column num_vars + v. The flux
// kernels see the same buffer as per-column `acc0`/`acc1` pointers.
#pragma once

#include "support/types.hpp"

namespace tamp::solver::simdk {

/// Conserved Euler variables; static_assert'd == solver::kNumVars in
/// euler.cpp (kept local so this header needs nothing of euler.hpp).
inline constexpr int kEulerVars = 5;

/// Interior/boundary Euler flux over a face-id range.
struct EulerFluxCtx {
  const double* u[kEulerVars];   ///< cell state columns
  double* acc0[kEulerVars];      ///< side-0 accumulator columns
  double* acc1[kEulerVars];      ///< side-1 accumulator columns
  const index_t* face_a;
  const index_t* face_b;
  const double* nx;
  const double* ny;
  const double* nz;
  const double* area;
  double gamma;
};

/// Euler cell update over a cell-id range (gather CSR, see layout.hpp).
struct EulerUpdateCtx {
  double* u[kEulerVars];
  double* acc[kEulerVars];       ///< combined-buffer per-variable bases
  const double* inv_vol;
  const eindex_t* xadj;          ///< gather CSR offsets (num_cells + 1)
  const index_t* slot;           ///< face + side * side_offset per entry
  const double* sign;            ///< -1.0 (side 0) / +1.0 (side 1)
};

struct TransportFluxCtx {
  const double* phi;
  double* acc0;
  double* acc1;
  const index_t* face_a;
  const index_t* face_b;
  const double* nx;
  const double* ny;
  const double* nz;
  const double* area;
  const double* dist;
  double vx, vy, vz;             ///< advection velocity
  double diffusivity;
  double ambient;
};

struct TransportUpdateCtx {
  double* phi;
  double* acc;                   ///< combined buffer base (slot-addressed)
  const double* inv_vol;
  const eindex_t* xadj;
  const index_t* slot;
  const double* sign;
};

// 2-lane (SSE2 on x86) kernels.
void euler_flux_interior_w2(const EulerFluxCtx& ctx, index_t begin,
                            index_t end, double dtf);
void euler_flux_boundary_w2(const EulerFluxCtx& ctx, index_t begin,
                            index_t end, double dtf);
void euler_update_w2(const EulerUpdateCtx& ctx, index_t begin, index_t end);
void transport_flux_interior_w2(const TransportFluxCtx& ctx, index_t begin,
                                index_t end, double dtf);
/// Returns the boundary net outflow for this sub-range (tolerance-only
/// diagnostic; the caller adds it to the solver's atomic total).
double transport_flux_boundary_w2(const TransportFluxCtx& ctx, index_t begin,
                                  index_t end, double dtf);
void transport_update_w2(const TransportUpdateCtx& ctx, index_t begin,
                         index_t end);

// 4-lane (AVX2 when the toolchain supports -mavx2) kernels.
void euler_flux_interior_w4(const EulerFluxCtx& ctx, index_t begin,
                            index_t end, double dtf);
void euler_flux_boundary_w4(const EulerFluxCtx& ctx, index_t begin,
                            index_t end, double dtf);
void euler_update_w4(const EulerUpdateCtx& ctx, index_t begin, index_t end);
void transport_flux_interior_w4(const TransportFluxCtx& ctx, index_t begin,
                                index_t end, double dtf);
double transport_flux_boundary_w4(const TransportFluxCtx& ctx, index_t begin,
                                  index_t end, double dtf);
void transport_update_w4(const TransportUpdateCtx& ctx, index_t begin,
                         index_t end);

}  // namespace tamp::solver::simdk
