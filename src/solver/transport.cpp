#include "solver/transport.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "solver/simd_kernels.hpp"
#include "taskgraph/scheme.hpp"
#include "verify/access.hpp"

namespace tamp::solver {

using mesh::Vec3;

namespace {

/// Pointer bundles into the solver's storage for the per-width kernels.
/// Side s of face f is combined-accumulator column s: acc.var(s)[f].
simdk::TransportFluxCtx make_flux_ctx(const std::vector<double>& phi,
                                      PaddedVars& acc,
                                      const KernelGeometry& g,
                                      const TransportConfig& config) {
  simdk::TransportFluxCtx ctx;
  ctx.phi = phi.data();
  ctx.acc0 = acc.var(0);
  ctx.acc1 = acc.var(1);
  ctx.face_a = g.face_a.data();
  ctx.face_b = g.face_b.data();
  ctx.nx = g.nx.data();
  ctx.ny = g.ny.data();
  ctx.nz = g.nz.data();
  ctx.area = g.area.data();
  ctx.dist = g.dist.data();
  ctx.vx = config.velocity.x;
  ctx.vy = config.velocity.y;
  ctx.vz = config.velocity.z;
  ctx.diffusivity = config.diffusivity;
  ctx.ambient = config.ambient;
  return ctx;
}

simdk::TransportUpdateCtx make_update_ctx(std::vector<double>& phi,
                                          PaddedVars& acc,
                                          const KernelGeometry& g,
                                          const std::vector<index_t>& slot,
                                          const std::vector<double>& sign) {
  simdk::TransportUpdateCtx ctx;
  ctx.phi = phi.data();
  ctx.acc = acc.var(0);
  ctx.inv_vol = g.inv_vol.data();
  ctx.xadj = g.gather_xadj.data();
  ctx.slot = slot.data();
  ctx.sign = sign.data();
  return ctx;
}

}  // namespace

TransportSolver::TransportSolver(mesh::Mesh& mesh, TransportConfig config)
    : mesh_(mesh), config_(config), geom_(build_kernel_geometry(mesh)),
      acc_(mesh.num_faces(), 2),
      gather_slot_(
          build_gather_slots(geom_, static_cast<eindex_t>(acc_.stride()))),
      gather_sign_(build_gather_signs(geom_)),
      simd_level_(simd::resolve(config.simd)) {
  TAMP_EXPECTS(config.diffusivity >= 0, "diffusivity must be non-negative");
  TAMP_EXPECTS(config.cfl > 0 && config.cfl <= 1.0, "CFL must be in (0,1]");
  TAMP_EXPECTS(config.max_levels >= 1, "need at least one temporal level");
  phi_.assign(static_cast<std::size_t>(mesh.num_cells()), 0.0);
}

void TransportSolver::initialize_uniform(double value) {
  std::fill(phi_.begin(), phi_.end(), value);
  acc_.fill(0.0);
  boundary_net_.store(0.0, std::memory_order_relaxed);
  time_ = 0.0;
}

void TransportSolver::add_blob(Vec3 center, double radius, double amplitude) {
  TAMP_EXPECTS(radius > 0, "blob radius must be positive");
  for (index_t c = 0; c < mesh_.num_cells(); ++c) {
    const double d = distance(mesh_.cell_centroid(c), center);
    phi_[static_cast<std::size_t>(c)] +=
        amplitude * std::exp(-(d * d) / (radius * radius));
  }
}

void TransportSolver::set_value(index_t cell, double value) {
  TAMP_EXPECTS(cell >= 0 && cell < mesh_.num_cells(), "cell out of range");
  phi_[static_cast<std::size_t>(cell)] = value;
}

std::vector<level_t> TransportSolver::assign_temporal_levels() {
  const index_t n = mesh_.num_cells();
  const double speed = norm(config_.velocity);
  std::vector<double> dt_cell(static_cast<std::size_t>(n));
  double dt_min = std::numeric_limits<double>::max();
  for (index_t c = 0; c < n; ++c) {
    const double h = std::cbrt(mesh_.cell_volume(c));
    // Combined explicit bound: advective h/|u| and diffusive h²/(6D).
    double dt = std::numeric_limits<double>::max();
    if (speed > 0) dt = std::min(dt, h / speed);
    if (config_.diffusivity > 0)
      dt = std::min(dt, h * h / (6.0 * config_.diffusivity));
    TAMP_EXPECTS(dt < std::numeric_limits<double>::max(),
                 "transport needs a velocity or a diffusivity");
    dt_cell[static_cast<std::size_t>(c)] = config_.cfl * dt;
    dt_min = std::min(dt_min, dt_cell[static_cast<std::size_t>(c)]);
  }
  dt0_ = dt_min;
  std::vector<level_t> levels(static_cast<std::size_t>(n));
  for (index_t c = 0; c < n; ++c) {
    const auto raw = static_cast<int>(
        std::floor(std::log2(dt_cell[static_cast<std::size_t>(c)] / dt_min)));
    levels[static_cast<std::size_t>(c)] = static_cast<level_t>(
        std::clamp(raw, 0, static_cast<int>(config_.max_levels) - 1));
  }
  mesh_.set_cell_levels(levels);
  return levels;
}

void TransportSolver::flux_face(index_t f, double dtf) {
  const auto sf = static_cast<std::size_t>(f);
  const index_t a = mesh_.face_cell(f, 0);
  const Vec3 n = mesh_.face_normal(f);
  const double area = mesh_.face_area(f);
  const double phi_a = phi_[static_cast<std::size_t>(a)];
  const double un = dot(config_.velocity, n);
  // Race-verifier annotations (no-ops unless instrumented). boundary_net_
  // is deliberately NOT recorded: it is an atomic counter shared across
  // otherwise-unordered boundary face tasks by design.
  verify::record_read(verify::ObjectKind::cell_state, a);
  verify::record_write(verify::ObjectKind::face_acc_side0, f);

  if (mesh_.is_boundary_face(f)) {
    // Upwind inflow/outflow; no diffusive wall flux (insulated).
    const double flux = un * (un >= 0 ? phi_a : config_.ambient);
    const double amount = flux * area * dtf;
    acc_.var(0)[sf] += amount;
    boundary_net_.fetch_add(amount, std::memory_order_relaxed);
    return;
  }

  const index_t b = mesh_.face_cell(f, 1);
  verify::record_read(verify::ObjectKind::cell_state, b);
  verify::record_write(verify::ObjectKind::face_acc_side1, f);
  const double phi_b = phi_[static_cast<std::size_t>(b)];
  // Upwind convection along the face normal.
  double flux = un * (un >= 0 ? phi_a : phi_b);
  // Two-point diffusion with the centroid distance.
  if (config_.diffusivity > 0) {
    const double dist =
        std::max(distance(mesh_.cell_centroid(a), mesh_.cell_centroid(b)),
                 1e-300);
    flux -= config_.diffusivity * (phi_b - phi_a) / dist;
  }
  const double amount = flux * area * dtf;
  acc_.var(0)[sf] += amount;
  acc_.var(1)[sf] += amount;
}

void TransportSolver::update_cell(index_t c) {
  const auto sc = static_cast<std::size_t>(c);
  const double inv_v = geom_.inv_vol[sc];
  verify::record_write(verify::ObjectKind::cell_state, c);
  for (const index_t f : mesh_.cell_faces(c)) {
    const auto sf = static_cast<std::size_t>(f);
    const int side = mesh_.face_cell(f, 0) == c ? 0 : 1;
    verify::record_write(side == 0 ? verify::ObjectKind::face_acc_side0
                                   : verify::ObjectKind::face_acc_side1,
                         f);
    const double sign = side == 0 ? -1.0 : 1.0;
    phi_[sc] += sign * acc_.var(side)[sf] * inv_v;
    acc_.var(side)[sf] = 0.0;
  }
}

void TransportSolver::flux_faces_interior_scalar(index_t begin, index_t end,
                                                 double dtf) {
  const double* phi = phi_.data();
  double* acc0 = acc_.var(0);
  double* acc1 = acc_.var(1);
  const double diffusivity = config_.diffusivity;
  for (index_t f = begin; f < end; ++f) {
    const auto sf = static_cast<std::size_t>(f);
    const Vec3 n{geom_.nx[sf], geom_.ny[sf], geom_.nz[sf]};
    const double un = dot(config_.velocity, n);
    const double phi_a = phi[static_cast<std::size_t>(geom_.face_a[sf])];
    const double phi_b = phi[static_cast<std::size_t>(geom_.face_b[sf])];
    double flux = un * (un >= 0 ? phi_a : phi_b);
    if (diffusivity > 0)
      flux -= diffusivity * (phi_b - phi_a) / geom_.dist[sf];
    const double amount = flux * geom_.area[sf] * dtf;
    acc0[sf] += amount;
    acc1[sf] += amount;
  }
}

void TransportSolver::flux_faces_boundary_scalar(index_t begin, index_t end,
                                                 double dtf) {
  const double* phi = phi_.data();
  double* acc0 = acc_.var(0);
  double net = 0.0;
  for (index_t f = begin; f < end; ++f) {
    const auto sf = static_cast<std::size_t>(f);
    const Vec3 n{geom_.nx[sf], geom_.ny[sf], geom_.nz[sf]};
    const double un = dot(config_.velocity, n);
    const double phi_a = phi[static_cast<std::size_t>(geom_.face_a[sf])];
    const double flux = un * (un >= 0 ? phi_a : config_.ambient);
    const double amount = flux * geom_.area[sf] * dtf;
    acc0[sf] += amount;
    net += amount;
  }
  // One atomic add for the whole sub-range (boundary_net_ is a
  // diagnostic total, compared with tolerance, never bitwise).
  if (begin < end) boundary_net_.fetch_add(net, std::memory_order_relaxed);
}

void TransportSolver::update_cells_range_scalar(index_t begin, index_t end) {
  double* phi = phi_.data();
  double* acc[2] = {acc_.var(0), acc_.var(1)};
  for (index_t c = begin; c < end; ++c) {
    const auto sc = static_cast<std::size_t>(c);
    const double inv_v = geom_.inv_vol[sc];
    const auto kb = static_cast<std::size_t>(geom_.gather_xadj[sc]);
    const auto ke = static_cast<std::size_t>(geom_.gather_xadj[sc + 1]);
    for (std::size_t k = kb; k < ke; ++k) {
      const auto sf = static_cast<std::size_t>(geom_.gather_face[k]);
      const int side = geom_.gather_side[k];
      const double sign = side == 0 ? -1.0 : 1.0;
      phi[sc] += sign * acc[side][sf] * inv_v;
      acc[side][sf] = 0.0;
    }
  }
}

void TransportSolver::flux_faces_interior(index_t begin, index_t end,
                                          double dtf) {
  switch (simd_level_) {
    case simd::Level::avx2:
      simdk::transport_flux_interior_w4(make_flux_ctx(phi_, acc_, geom_,
                                                      config_),
                                        begin, end, dtf);
      return;
    case simd::Level::sse2:
      simdk::transport_flux_interior_w2(make_flux_ctx(phi_, acc_, geom_,
                                                      config_),
                                        begin, end, dtf);
      return;
    case simd::Level::scalar:
      flux_faces_interior_scalar(begin, end, dtf);
      return;
  }
}

void TransportSolver::flux_faces_boundary(index_t begin, index_t end,
                                          double dtf) {
  double net = 0.0;
  switch (simd_level_) {
    case simd::Level::avx2:
      net = simdk::transport_flux_boundary_w4(
          make_flux_ctx(phi_, acc_, geom_, config_), begin, end, dtf);
      break;
    case simd::Level::sse2:
      net = simdk::transport_flux_boundary_w2(
          make_flux_ctx(phi_, acc_, geom_, config_), begin, end, dtf);
      break;
    case simd::Level::scalar:
      flux_faces_boundary_scalar(begin, end, dtf);
      return;
  }
  // Same one-atomic-add-per-sub-range policy as the scalar kernel; the
  // lane partial sums make the total tolerance-only, which the
  // boundary_net_ contract already is.
  if (begin < end) boundary_net_.fetch_add(net, std::memory_order_relaxed);
}

void TransportSolver::update_cells_range(index_t begin, index_t end) {
  switch (simd_level_) {
    case simd::Level::avx2:
      simdk::transport_update_w4(
          make_update_ctx(phi_, acc_, geom_, gather_slot_, gather_sign_),
          begin, end);
      return;
    case simd::Level::sse2:
      simdk::transport_update_w2(
          make_update_ctx(phi_, acc_, geom_, gather_slot_, gather_sign_),
          begin, end);
      return;
    case simd::Level::scalar:
      update_cells_range_scalar(begin, end);
      return;
  }
}

void TransportSolver::run_iteration() {
  TAMP_EXPECTS(dt0_ > 0, "call assign_temporal_levels() first");
  const taskgraph::TemporalScheme scheme(
      static_cast<level_t>(mesh_.max_level() + 1));
  for (index_t s = 0; s < scheme.num_subiterations(); ++s) {
    for (level_t tau = scheme.top_level(s);; --tau) {
      const double dt_tau = dt0_ * std::exp2(static_cast<double>(tau));
      for (index_t f = 0; f < mesh_.num_faces(); ++f)
        if (mesh_.face_level(f) == tau) flux_face(f, dt_tau);
      for (index_t c = 0; c < mesh_.num_cells(); ++c)
        if (mesh_.cell_level(c) == tau) update_cell(c);
      if (tau == 0) break;
    }
    time_ += dt0_;
  }
}

TransportSolver::IterationTasks TransportSolver::make_iteration_tasks(
    const std::vector<part_t>& domain_of_cell, part_t ndomains) {
  auto classes = std::make_shared<taskgraph::ClassMap>();
  taskgraph::TaskGraph graph = taskgraph::generate_task_graph(
      mesh_, domain_of_cell, ndomains, {}, classes.get());
  runtime::TaskBody body = make_iteration_body(graph, std::move(classes));
  return {std::move(graph), std::move(body)};
}

runtime::TaskBody TransportSolver::make_iteration_body(
    const taskgraph::TaskGraph& graph,
    std::shared_ptr<const taskgraph::ClassMap> classes) {
  TAMP_EXPECTS(dt0_ > 0, "call assign_temporal_levels() first");
  TAMP_EXPECTS(classes != nullptr, "iteration body needs a class map");
  auto access = std::make_shared<ClassAccessTable>(build_class_access_ranges(
      mesh_, *classes, /*boundary_writes_side1=*/false));
  // Same ranged-vs-scattered plan split as the Euler solver (see
  // euler.cpp): contiguous class lists stream, the rest walk the list.
  struct Plan {
    double dt;
    index_t cls;
    bool face;
    bool ranged;
    index_t begin, mid, end;
  };
  auto plans = std::make_shared<std::vector<Plan>>();
  plans->reserve(static_cast<std::size_t>(graph.num_tasks()));
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const taskgraph::Task& task = graph.task(t);
    const index_t cls = classes->task_class[static_cast<std::size_t>(t)];
    Plan plan{dt0_ * std::exp2(static_cast<double>(task.level)), cls,
              task.type == taskgraph::ObjectType::face, false, 0, 0, 0};
    if (plan.face) {
      const auto& r = classes->face_range[static_cast<std::size_t>(cls)];
      if (r.valid())
        plan = {plan.dt, cls, true, true, r.begin, r.boundary_begin, r.end};
    } else {
      const auto& r = classes->cell_range[static_cast<std::size_t>(cls)];
      if (r.valid()) plan = {plan.dt, cls, false, true, r.begin, r.end, r.end};
    }
    plans->push_back(plan);
  }
  auto body = [this, classes, plans, access](index_t t) {
    const Plan& plan = (*plans)[static_cast<std::size_t>(t)];
    const auto scls = static_cast<std::size_t>(plan.cls);
    if (plan.face) {
      if (plan.ranged) {
        if (verify::recording_active())
          record_class_ranges(access->face[scls], /*face_task=*/true);
        flux_faces_interior(plan.begin, plan.mid, plan.dt);
        flux_faces_boundary(plan.mid, plan.end, plan.dt);
      } else {
        for (const index_t f : classes->class_faces[scls])
          flux_face(f, plan.dt);
      }
    } else {
      if (plan.ranged) {
        if (verify::recording_active())
          record_class_ranges(access->cell[scls], /*face_task=*/false);
        update_cells_range(plan.begin, plan.end);
      } else {
        for (const index_t c : classes->class_cells[scls])
          update_cell(c);
      }
    }
  };
  return body;
}

void TransportSolver::note_tasks_complete() {
  const taskgraph::TemporalScheme scheme(
      static_cast<level_t>(mesh_.max_level() + 1));
  time_ += dt0_ * static_cast<double>(scheme.num_subiterations());
}

runtime::ExecutionReport TransportSolver::run_iteration_tasks(
    const std::vector<part_t>& domain_of_cell, part_t ndomains,
    const std::vector<part_t>& domain_to_process,
    const runtime::RuntimeConfig& runtime_config) {
  const IterationTasks iter = make_iteration_tasks(domain_of_cell, ndomains);
  runtime::ExecutionReport report =
      runtime::execute(iter.graph, domain_to_process, runtime_config,
                       iter.body);
  note_tasks_complete();
  return report;
}

double TransportSolver::total_scalar() const {
  double total = 0;
  for (index_t c = 0; c < mesh_.num_cells(); ++c)
    total += mesh_.cell_volume(c) * phi_[static_cast<std::size_t>(c)];
  for (index_t f = 0; f < mesh_.num_faces(); ++f) {
    total -= acc_.at(0, f);  // side-0 pending (incl. boundary: already left)
    if (!mesh_.is_boundary_face(f)) total += acc_.at(1, f);
  }
  return total;
}

double TransportSolver::min_value() const {
  return *std::min_element(phi_.begin(), phi_.end());
}

double TransportSolver::max_value() const {
  return *std::max_element(phi_.begin(), phi_.end());
}

bool TransportSolver::values_finite() const {
  for (const double v : phi_)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace tamp::solver
