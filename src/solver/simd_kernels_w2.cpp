// 2-lane instantiations of the streaming kernels. Compiled with the
// project's baseline flags: on x86-64 that already includes SSE2, so
// Pack<2> is the hand-written __m128d specialisation; elsewhere it is
// the portable fallback. This TU also owns the Pack<1> tail bodies the
// wrappers fall into.
#include "solver/simd_kernels.hpp"
#include "solver/simd_kernels_impl.hpp"

namespace tamp::solver::simdk {

void euler_flux_interior_w2(const EulerFluxCtx& ctx, index_t begin,
                            index_t end, double dtf) {
  euler_flux_interior_t<2>(ctx, begin, end, dtf);
}

void euler_flux_boundary_w2(const EulerFluxCtx& ctx, index_t begin,
                            index_t end, double dtf) {
  euler_flux_boundary_t<2>(ctx, begin, end, dtf);
}

void euler_update_w2(const EulerUpdateCtx& ctx, index_t begin, index_t end) {
  euler_update_t<2>(ctx, begin, end);
}

void transport_flux_interior_w2(const TransportFluxCtx& ctx, index_t begin,
                                index_t end, double dtf) {
  transport_flux_interior_t<2>(ctx, begin, end, dtf);
}

double transport_flux_boundary_w2(const TransportFluxCtx& ctx, index_t begin,
                                  index_t end, double dtf) {
  return transport_flux_boundary_t<2>(ctx, begin, end, dtf);
}

void transport_update_w2(const TransportUpdateCtx& ctx, index_t begin,
                         index_t end) {
  transport_update_t<2>(ctx, begin, end);
}

}  // namespace tamp::solver::simdk
