#include "solver/euler.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "solver/simd_kernels.hpp"
#include "support/stopwatch.hpp"
#include "taskgraph/scheme.hpp"
#include "verify/access.hpp"

namespace tamp::solver {

using mesh::Vec3;

static_assert(simdk::kEulerVars == kNumVars,
              "SIMD kernel header disagrees on the Euler variable count");

namespace {

double kinetic(const State& u) {
  const double rho = u[0];
  return 0.5 * (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / rho;
}

/// Pointer bundles into the solver's storage for the per-width kernels.
/// Side s of variable v is combined-accumulator column s*kNumVars + v.
simdk::EulerFluxCtx make_flux_ctx(const PaddedVars& u, PaddedVars& acc,
                                  const KernelGeometry& g, double gamma) {
  simdk::EulerFluxCtx ctx;
  for (int v = 0; v < kNumVars; ++v) {
    ctx.u[v] = u.var(v);
    ctx.acc0[v] = acc.var(v);
    ctx.acc1[v] = acc.var(kNumVars + v);
  }
  ctx.face_a = g.face_a.data();
  ctx.face_b = g.face_b.data();
  ctx.nx = g.nx.data();
  ctx.ny = g.ny.data();
  ctx.nz = g.nz.data();
  ctx.area = g.area.data();
  ctx.gamma = gamma;
  return ctx;
}

simdk::EulerUpdateCtx make_update_ctx(PaddedVars& u, PaddedVars& acc,
                                      const KernelGeometry& g,
                                      const std::vector<index_t>& slot,
                                      const std::vector<double>& sign) {
  simdk::EulerUpdateCtx ctx;
  for (int v = 0; v < kNumVars; ++v) {
    ctx.u[v] = u.var(v);
    ctx.acc[v] = acc.var(v);
  }
  ctx.inv_vol = g.inv_vol.data();
  ctx.xadj = g.gather_xadj.data();
  ctx.slot = slot.data();
  ctx.sign = sign.data();
  return ctx;
}

}  // namespace

EulerSolver::EulerSolver(mesh::Mesh& mesh, SolverConfig config)
    : mesh_(mesh), config_(config), geom_(build_kernel_geometry(mesh)),
      u_(mesh.num_cells(), kNumVars),
      acc_(mesh.num_faces(), 2 * kNumVars),
      gather_slot_(build_gather_slots(
          geom_, static_cast<eindex_t>(kNumVars) *
                     static_cast<eindex_t>(acc_.stride()))),
      gather_sign_(build_gather_signs(geom_)),
      simd_level_(simd::resolve(config.simd)) {
  TAMP_EXPECTS(config.gamma > 1.0, "gamma must exceed 1");
  TAMP_EXPECTS(config.cfl > 0.0 && config.cfl <= 1.0, "CFL must be in (0,1]");
  TAMP_EXPECTS(config.max_levels >= 1, "need at least one temporal level");
}

void EulerSolver::initialize_uniform(double rho, Vec3 velocity,
                                     double pressure) {
  TAMP_EXPECTS(rho > 0 && pressure > 0, "density and pressure must be positive");
  const double energy =
      pressure / (config_.gamma - 1.0) +
      0.5 * rho * dot(velocity, velocity);
  for (index_t c = 0; c < mesh_.num_cells(); ++c) {
    u_.at(0, c) = rho;
    u_.at(1, c) = rho * velocity.x;
    u_.at(2, c) = rho * velocity.y;
    u_.at(3, c) = rho * velocity.z;
    u_.at(4, c) = energy;
  }
  acc_.fill(0.0);
  time_ = 0.0;
}

void EulerSolver::add_pulse(Vec3 center, double radius,
                            double relative_amplitude) {
  TAMP_EXPECTS(radius > 0, "pulse radius must be positive");
  for (index_t c = 0; c < mesh_.num_cells(); ++c) {
    const double d = distance(mesh_.cell_centroid(c), center);
    const double bump =
        relative_amplitude * std::exp(-(d * d) / (radius * radius));
    if (bump == 0.0) continue;
    // Scale density and energy together (roughly isentropic perturbation).
    const double factor = 1.0 + bump;
    u_.at(0, c) *= factor;
    u_.at(4, c) *= factor;
  }
}

double EulerSolver::wave_speed(const State& u) const {
  const double rho = std::max(u[0], 1e-12);
  const double p =
      std::max((config_.gamma - 1.0) * (u[4] - kinetic(u)), 1e-12);
  const double c = std::sqrt(config_.gamma * p / rho);
  const double speed =
      std::sqrt(u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / rho;
  return speed + c;
}

std::vector<level_t> EulerSolver::assign_temporal_levels() {
  const index_t n = mesh_.num_cells();
  std::vector<double> dt_cell(static_cast<std::size_t>(n));
  double dt_min = std::numeric_limits<double>::max();
  for (index_t c = 0; c < n; ++c) {
    const auto sc = static_cast<std::size_t>(c);
    State u{u_.at(0, c), u_.at(1, c), u_.at(2, c), u_.at(3, c), u_.at(4, c)};
    const double h = std::cbrt(mesh_.cell_volume(c));
    dt_cell[sc] = config_.cfl * h / wave_speed(u);
    dt_min = std::min(dt_min, dt_cell[sc]);
  }
  TAMP_ENSURE(dt_min > 0 && std::isfinite(dt_min), "invalid CFL time step");
  dt0_ = dt_min;
  std::vector<level_t> levels(static_cast<std::size_t>(n));
  for (index_t c = 0; c < n; ++c) {
    const auto raw = static_cast<int>(
        std::floor(std::log2(dt_cell[static_cast<std::size_t>(c)] / dt_min)));
    levels[static_cast<std::size_t>(c)] = static_cast<level_t>(
        std::clamp(raw, 0, static_cast<int>(config_.max_levels) - 1));
  }
  mesh_.set_cell_levels(levels);
  return levels;
}

State EulerSolver::interior_flux(const State& left, const State& right,
                                 Vec3 n) const {
  auto physical = [&](const State& u, double& un_out) {
    const double rho = std::max(u[0], 1e-12);
    const Vec3 vel{u[1] / rho, u[2] / rho, u[3] / rho};
    const double p =
        std::max((config_.gamma - 1.0) * (u[4] - kinetic(u)), 1e-12);
    const double un = dot(vel, n);
    un_out = un;
    return State{rho * un, u[1] * un + p * n.x, u[2] * un + p * n.y,
                 u[3] * un + p * n.z, (u[4] + p) * un};
  };
  double unl = 0, unr = 0;
  const State fl = physical(left, unl);
  const State fr = physical(right, unr);
  const double smax = std::max(wave_speed(left), wave_speed(right));
  State f;
  for (int v = 0; v < kNumVars; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    f[sv] = 0.5 * (fl[sv] + fr[sv]) - 0.5 * smax * (right[sv] - left[sv]);
  }
  return f;
}

State EulerSolver::wall_flux(const State& inside, Vec3 n) const {
  // Slip wall: no mass or energy crosses; momentum feels wall pressure.
  const double p =
      std::max((config_.gamma - 1.0) * (inside[4] - kinetic(inside)), 1e-12);
  return State{0.0, p * n.x, p * n.y, p * n.z, 0.0};
}

void EulerSolver::flux_face(index_t f, double dtf) {
  const auto sf = static_cast<std::size_t>(f);
  const index_t a = mesh_.face_cell(f, 0);
  const State ua{u_.at(0, a), u_.at(1, a), u_.at(2, a), u_.at(3, a),
                 u_.at(4, a)};
  const Vec3 n = mesh_.face_normal(f);
  // Access annotations for the race verifier (no-ops when no
  // TaskRecordScope is active): a face flux reads both adjacent cell
  // states and writes both accumulator sides of its face.
  verify::record_read(verify::ObjectKind::cell_state, a);
  verify::record_write(verify::ObjectKind::face_acc_side0, f);
  verify::record_write(verify::ObjectKind::face_acc_side1, f);
  State flux;
  if (mesh_.is_boundary_face(f)) {
    flux = wall_flux(ua, n);
  } else {
    const index_t b = mesh_.face_cell(f, 1);
    verify::record_read(verify::ObjectKind::cell_state, b);
    const State ub{u_.at(0, b), u_.at(1, b), u_.at(2, b), u_.at(3, b),
                   u_.at(4, b)};
    flux = interior_flux(ua, ub, n);
  }
  const double scale = mesh_.face_area(f) * dtf;
  for (int v = 0; v < kNumVars; ++v) {
    const double amount = flux[static_cast<std::size_t>(v)] * scale;
    acc_.var(acc_col(0, v))[sf] += amount;
    acc_.var(acc_col(1, v))[sf] += amount;
  }
}

void EulerSolver::flux_faces_interior_scalar(index_t begin, index_t end,
                                             double dtf) {
  const double* u0 = u_.var(0);
  const double* u1 = u_.var(1);
  const double* u2 = u_.var(2);
  const double* u3 = u_.var(3);
  const double* u4 = u_.var(4);
  for (index_t f = begin; f < end; ++f) {
    const auto sf = static_cast<std::size_t>(f);
    const auto sa = static_cast<std::size_t>(geom_.face_a[sf]);
    const auto sb = static_cast<std::size_t>(geom_.face_b[sf]);
    const State ua{u0[sa], u1[sa], u2[sa], u3[sa], u4[sa]};
    const State ub{u0[sb], u1[sb], u2[sb], u3[sb], u4[sb]};
    const Vec3 n{geom_.nx[sf], geom_.ny[sf], geom_.nz[sf]};
    const State flux = interior_flux(ua, ub, n);
    const double scale = geom_.area[sf] * dtf;
    for (int v = 0; v < kNumVars; ++v) {
      const double amount = flux[static_cast<std::size_t>(v)] * scale;
      acc_.var(acc_col(0, v))[sf] += amount;
      acc_.var(acc_col(1, v))[sf] += amount;
    }
  }
}

void EulerSolver::flux_faces_boundary_scalar(index_t begin, index_t end,
                                             double dtf) {
  const double* u0 = u_.var(0);
  const double* u1 = u_.var(1);
  const double* u2 = u_.var(2);
  const double* u3 = u_.var(3);
  const double* u4 = u_.var(4);
  for (index_t f = begin; f < end; ++f) {
    const auto sf = static_cast<std::size_t>(f);
    const auto sa = static_cast<std::size_t>(geom_.face_a[sf]);
    const State ua{u0[sa], u1[sa], u2[sa], u3[sa], u4[sa]};
    const Vec3 n{geom_.nx[sf], geom_.ny[sf], geom_.nz[sf]};
    const State flux = wall_flux(ua, n);
    const double scale = geom_.area[sf] * dtf;
    // Both sides, exactly like flux_face: the unconsumed side-1 deposit
    // of a boundary face is inert (no cell gathers it — the SIMD path
    // skips it; see layout.hpp).
    for (int v = 0; v < kNumVars; ++v) {
      const double amount = flux[static_cast<std::size_t>(v)] * scale;
      acc_.var(acc_col(0, v))[sf] += amount;
      acc_.var(acc_col(1, v))[sf] += amount;
    }
  }
}

void EulerSolver::flux_faces_interior(index_t begin, index_t end, double dtf) {
  switch (simd_level_) {
    case simd::Level::avx2:
      simdk::euler_flux_interior_w4(make_flux_ctx(u_, acc_, geom_,
                                                  config_.gamma),
                                    begin, end, dtf);
      return;
    case simd::Level::sse2:
      simdk::euler_flux_interior_w2(make_flux_ctx(u_, acc_, geom_,
                                                  config_.gamma),
                                    begin, end, dtf);
      return;
    case simd::Level::scalar:
      flux_faces_interior_scalar(begin, end, dtf);
      return;
  }
}

void EulerSolver::flux_faces_boundary(index_t begin, index_t end, double dtf) {
  switch (simd_level_) {
    case simd::Level::avx2:
      simdk::euler_flux_boundary_w4(make_flux_ctx(u_, acc_, geom_,
                                                  config_.gamma),
                                    begin, end, dtf);
      return;
    case simd::Level::sse2:
      simdk::euler_flux_boundary_w2(make_flux_ctx(u_, acc_, geom_,
                                                  config_.gamma),
                                    begin, end, dtf);
      return;
    case simd::Level::scalar:
      flux_faces_boundary_scalar(begin, end, dtf);
      return;
  }
}

void EulerSolver::update_cell(index_t c, double /*dtc*/) {
  const auto scell = static_cast<std::size_t>(c);
  const double inv_v = geom_.inv_vol[scell];
  // A cell update reads+writes its own state and gathers-and-resets its
  // side of every adjacent face accumulator (writes subsume the reads).
  verify::record_write(verify::ObjectKind::cell_state, c);
  for (const index_t f : mesh_.cell_faces(c)) {
    const auto sf = static_cast<std::size_t>(f);
    const int side = mesh_.face_cell(f, 0) == c ? 0 : 1;
    verify::record_write(side == 0 ? verify::ObjectKind::face_acc_side0
                                   : verify::ObjectKind::face_acc_side1,
                         f);
    const double sign = side == 0 ? -1.0 : 1.0;
    for (int v = 0; v < kNumVars; ++v) {
      double* accv = acc_.var(acc_col(side, v));
      u_.var(v)[scell] += sign * accv[sf] * inv_v;
      accv[sf] = 0.0;
    }
  }
}

void EulerSolver::update_cells_range_scalar(index_t begin, index_t end) {
  for (index_t c = begin; c < end; ++c) {
    const auto scell = static_cast<std::size_t>(c);
    const double inv_v = geom_.inv_vol[scell];
    const auto kb = static_cast<std::size_t>(geom_.gather_xadj[scell]);
    const auto ke = static_cast<std::size_t>(geom_.gather_xadj[scell + 1]);
    for (std::size_t k = kb; k < ke; ++k) {
      const auto sf = static_cast<std::size_t>(geom_.gather_face[k]);
      const int side = geom_.gather_side[k];
      const double sign = side == 0 ? -1.0 : 1.0;
      for (int v = 0; v < kNumVars; ++v) {
        double* accv = acc_.var(acc_col(side, v));
        u_.var(v)[scell] += sign * accv[sf] * inv_v;
        accv[sf] = 0.0;
      }
    }
  }
}

void EulerSolver::update_cells_range(index_t begin, index_t end) {
  switch (simd_level_) {
    case simd::Level::avx2:
      simdk::euler_update_w4(
          make_update_ctx(u_, acc_, geom_, gather_slot_, gather_sign_), begin,
          end);
      return;
    case simd::Level::sse2:
      simdk::euler_update_w2(
          make_update_ctx(u_, acc_, geom_, gather_slot_, gather_sign_), begin,
          end);
      return;
    case simd::Level::scalar:
      update_cells_range_scalar(begin, end);
      return;
  }
}

void EulerSolver::run_iteration() {
  TAMP_EXPECTS(dt0_ > 0, "call assign_temporal_levels() first");
  const taskgraph::TemporalScheme scheme(
      static_cast<level_t>(mesh_.max_level() + 1));
  for (index_t s = 0; s < scheme.num_subiterations(); ++s) {
    for (level_t tau = scheme.top_level(s);; --tau) {
      const double dt_tau = dt0_ * std::exp2(static_cast<double>(tau));
      for (index_t f = 0; f < mesh_.num_faces(); ++f)
        if (mesh_.face_level(f) == tau) flux_face(f, dt_tau);
      for (index_t c = 0; c < mesh_.num_cells(); ++c)
        if (mesh_.cell_level(c) == tau) update_cell(c, dt_tau);
      if (tau == 0) break;
    }
    time_ += dt0_;
  }
}

EulerSolver::IterationTasks EulerSolver::make_iteration_tasks(
    const std::vector<part_t>& domain_of_cell, part_t ndomains) {
  auto classes = std::make_shared<taskgraph::ClassMap>();
  taskgraph::TaskGraph graph = taskgraph::generate_task_graph(
      mesh_, domain_of_cell, ndomains, {}, classes.get());
  runtime::TaskBody body = make_iteration_body(graph, std::move(classes));
  return {std::move(graph), std::move(body)};
}

runtime::TaskBody EulerSolver::make_iteration_body(
    const taskgraph::TaskGraph& graph,
    std::shared_ptr<const taskgraph::ClassMap> classes) {
  TAMP_EXPECTS(dt0_ > 0, "call assign_temporal_levels() first");
  TAMP_EXPECTS(classes != nullptr, "iteration body needs a class map");
  auto access = std::make_shared<ClassAccessTable>(build_class_access_ranges(
      mesh_, *classes, /*boundary_writes_side1=*/true));

  // Per-task execution plan, self-contained so the body outlives both the
  // caller's structs and the graph. A task whose class list is one
  // contiguous id run carries the run and streams it; scattered classes
  // keep the per-object list walk.
  struct Plan {
    double dt;
    index_t cls;
    bool face;
    bool ranged;
    index_t begin, mid, end;  ///< faces: [begin,mid) interior, [mid,end) boundary
  };
  auto plans = std::make_shared<std::vector<Plan>>();
  plans->reserve(static_cast<std::size_t>(graph.num_tasks()));
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const taskgraph::Task& task = graph.task(t);
    const index_t cls = classes->task_class[static_cast<std::size_t>(t)];
    Plan plan{dt0_ * std::exp2(static_cast<double>(task.level)), cls,
              task.type == taskgraph::ObjectType::face, false, 0, 0, 0};
    if (plan.face) {
      const auto& r = classes->face_range[static_cast<std::size_t>(cls)];
      if (r.valid())
        plan = {plan.dt, cls, true, true, r.begin, r.boundary_begin, r.end};
    } else {
      const auto& r = classes->cell_range[static_cast<std::size_t>(cls)];
      if (r.valid()) plan = {plan.dt, cls, false, true, r.begin, r.end, r.end};
    }
    plans->push_back(plan);
  }
  auto body = [this, classes, plans, access](index_t t) {
    const Plan& plan = (*plans)[static_cast<std::size_t>(t)];
    const auto scls = static_cast<std::size_t>(plan.cls);
    if (plan.face) {
      if (plan.ranged) {
        if (verify::recording_active())
          record_class_ranges(access->face[scls], /*face_task=*/true);
        flux_faces_interior(plan.begin, plan.mid, plan.dt);
        flux_faces_boundary(plan.mid, plan.end, plan.dt);
      } else {
        for (const index_t f : classes->class_faces[scls])
          flux_face(f, plan.dt);
      }
    } else {
      if (plan.ranged) {
        if (verify::recording_active())
          record_class_ranges(access->cell[scls], /*face_task=*/false);
        update_cells_range(plan.begin, plan.end);
      } else {
        for (const index_t c : classes->class_cells[scls])
          update_cell(c, plan.dt);
      }
    }
  };
  return body;
}

void EulerSolver::note_tasks_complete() {
  const taskgraph::TemporalScheme scheme(
      static_cast<level_t>(mesh_.max_level() + 1));
  time_ += dt0_ * static_cast<double>(scheme.num_subiterations());
}

runtime::ExecutionReport EulerSolver::run_iteration_tasks(
    const std::vector<part_t>& domain_of_cell, part_t ndomains,
    const std::vector<part_t>& domain_to_process,
    const runtime::RuntimeConfig& runtime_config) {
  const IterationTasks iter = make_iteration_tasks(domain_of_cell, ndomains);
  runtime::ExecutionReport report =
      runtime::execute(iter.graph, domain_to_process, runtime_config,
                       iter.body);
  note_tasks_complete();
  return report;
}

void EulerSolver::run_iteration_heun() {
  TAMP_EXPECTS(mesh_.max_level() == 0,
               "Heun integrator requires a single-level mesh");
  TAMP_EXPECTS(dt0_ > 0, "call assign_temporal_levels() first");
  const index_t n = mesh_.num_cells();

  // L(U): net flux divergence divided by volume; synchronous evaluation.
  auto rhs = [&](const PaddedVars& state,
                 std::array<std::vector<double>, kNumVars>& out) {
    for (int v = 0; v < kNumVars; ++v)
      out[static_cast<std::size_t>(v)].assign(static_cast<std::size_t>(n), 0.0);
    for (index_t f = 0; f < mesh_.num_faces(); ++f) {
      const index_t a = mesh_.face_cell(f, 0);
      const auto sa = static_cast<std::size_t>(a);
      const State ua{state.at(0, a), state.at(1, a), state.at(2, a),
                     state.at(3, a), state.at(4, a)};
      const Vec3 nrm = mesh_.face_normal(f);
      State flux;
      std::size_t sb = 0;
      const bool interior = !mesh_.is_boundary_face(f);
      if (interior) {
        const index_t b = mesh_.face_cell(f, 1);
        sb = static_cast<std::size_t>(b);
        const State ub{state.at(0, b), state.at(1, b), state.at(2, b),
                       state.at(3, b), state.at(4, b)};
        flux = interior_flux(ua, ub, nrm);
      } else {
        flux = wall_flux(ua, nrm);
      }
      const double area = mesh_.face_area(f);
      for (int v = 0; v < kNumVars; ++v) {
        const auto sv = static_cast<std::size_t>(v);
        out[sv][sa] -= flux[sv] * area;
        if (interior) out[sv][sb] += flux[sv] * area;
      }
    }
    for (index_t c = 0; c < n; ++c) {
      const double inv_v = 1.0 / mesh_.cell_volume(c);
      for (int v = 0; v < kNumVars; ++v)
        out[static_cast<std::size_t>(v)][static_cast<std::size_t>(c)] *= inv_v;
    }
  };

  std::array<std::vector<double>, kNumVars> k1, k2;
  rhs(u_, k1);
  PaddedVars predictor(n, kNumVars);
  for (int v = 0; v < kNumVars; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    for (index_t c = 0; c < n; ++c)
      predictor.at(v, c) = u_.at(v, c) + dt0_ * k1[sv][static_cast<std::size_t>(c)];
  }
  rhs(predictor, k2);
  for (int v = 0; v < kNumVars; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    for (index_t c = 0; c < n; ++c) {
      const auto sc = static_cast<std::size_t>(c);
      u_.at(v, c) += 0.5 * dt0_ * (k1[sv][sc] + k2[sv][sc]);
    }
  }
  time_ += dt0_;
}

State EulerSolver::conserved_totals() const {
  State total{};
  for (index_t c = 0; c < mesh_.num_cells(); ++c) {
    const double vol = mesh_.cell_volume(c);
    for (int v = 0; v < kNumVars; ++v)
      total[static_cast<std::size_t>(v)] += vol * u_.at(v, c);
  }
  // In-flight flux: deposited but not yet consumed. Side 0 will subtract
  // its accumulator; side 1 will add its own.
  for (index_t f = 0; f < mesh_.num_faces(); ++f) {
    const bool interior = !mesh_.is_boundary_face(f);
    for (int v = 0; v < kNumVars; ++v) {
      total[static_cast<std::size_t>(v)] -= acc_.at(acc_col(0, v), f);
      if (interior)
        total[static_cast<std::size_t>(v)] += acc_.at(acc_col(1, v), f);
    }
  }
  return total;
}

double EulerSolver::cell_pressure(index_t c) const {
  const State u{u_.at(0, c), u_.at(1, c), u_.at(2, c), u_.at(3, c),
                u_.at(4, c)};
  return (config_.gamma - 1.0) * (u[4] - kinetic(u));
}

Vec3 EulerSolver::cell_velocity(index_t c) const {
  const double rho = std::max(u_.at(0, c), 1e-12);
  return {u_.at(1, c) / rho, u_.at(2, c) / rho, u_.at(3, c) / rho};
}

double EulerSolver::max_density() const {
  double m = 0;
  for (index_t c = 0; c < mesh_.num_cells(); ++c)
    m = std::max(m, u_.at(0, c));
  return m;
}

bool EulerSolver::state_is_finite() const {
  for (int v = 0; v < kNumVars; ++v)
    for (index_t c = 0; c < mesh_.num_cells(); ++c)
      if (!std::isfinite(u_.at(v, c))) return false;
  return true;
}

taskgraph::CostModel EulerSolver::measure_cost_model(int repetitions) {
  TAMP_EXPECTS(repetitions >= 1, "need at least one repetition");
  TAMP_EXPECTS(dt0_ > 0, "call assign_temporal_levels() first");
  const index_t nf = std::min<index_t>(mesh_.num_faces(), 200000);
  const index_t ncl = std::min<index_t>(mesh_.num_cells(), 200000);

  double face_seconds = std::numeric_limits<double>::max();
  double cell_seconds = std::numeric_limits<double>::max();
  obs::Histogram& face_hist = obs::histogram("solver.cost_model.face_pass");
  obs::Histogram& cell_hist = obs::histogram("solver.cost_model.cell_pass");
  for (int r = 0; r < repetitions; ++r) {
    {
      ScopedTimer timer(face_hist);
      for (index_t f = 0; f < nf; ++f) flux_face(f, 0.0);  // dt=0: no net effect
      face_seconds = std::min(face_seconds, timer.stop());
    }
    {
      ScopedTimer timer(cell_hist);
      for (index_t c = 0; c < ncl; ++c) update_cell(c, dt0_);
      cell_seconds = std::min(cell_seconds, timer.stop());
    }
  }
  // Cost units are relative: a cell update = 1.
  const double per_face = face_seconds / static_cast<double>(nf);
  const double per_cell = cell_seconds / static_cast<double>(ncl);
  taskgraph::CostModel cm;
  cm.cell_unit = 1.0;
  cm.face_unit = per_cell > 0 ? per_face / per_cell : 0.4;
  return cm;
}

}  // namespace tamp::solver
