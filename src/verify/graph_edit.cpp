#include "verify/graph_edit.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace tamp::verify {

std::vector<std::pair<index_t, index_t>> dependency_edges(
    const taskgraph::TaskGraph& graph) {
  std::vector<std::pair<index_t, index_t>> edges;
  edges.reserve(static_cast<std::size_t>(graph.num_dependencies()));
  for (index_t t = 0; t < graph.num_tasks(); ++t)
    for (const index_t p : graph.predecessors(t)) edges.emplace_back(p, t);
  return edges;
}

taskgraph::TaskGraph remove_dependency(const taskgraph::TaskGraph& graph,
                                       index_t from, index_t to) {
  const index_t n = graph.num_tasks();
  TAMP_EXPECTS(from >= 0 && from < n && to >= 0 && to < n,
               "task id out of range");
  std::vector<std::vector<index_t>> deps(static_cast<std::size_t>(n));
  bool found = false;
  for (index_t t = 0; t < n; ++t) {
    for (const index_t p : graph.predecessors(t)) {
      if (t == to && p == from) {
        found = true;
        continue;
      }
      deps[static_cast<std::size_t>(t)].push_back(p);
    }
  }
  TAMP_EXPECTS(found, "dependency edge not present in the graph");
  return taskgraph::TaskGraph(graph.tasks(), deps);
}

InducedSubgraph filter_tasks(const taskgraph::TaskGraph& graph,
                             const std::vector<char>& keep) {
  const index_t n = graph.num_tasks();
  TAMP_EXPECTS(keep.size() == static_cast<std::size_t>(n),
               "keep mask size must equal task count");
  InducedSubgraph out;
  std::vector<index_t> new_id(static_cast<std::size_t>(n), invalid_index);
  std::vector<taskgraph::Task> tasks;
  for (index_t t = 0; t < n; ++t) {
    if (!keep[static_cast<std::size_t>(t)]) continue;
    new_id[static_cast<std::size_t>(t)] =
        static_cast<index_t>(out.original_task.size());
    out.original_task.push_back(t);
    tasks.push_back(graph.task(t));
  }
  std::vector<std::vector<index_t>> deps(out.original_task.size());
  for (std::size_t i = 0; i < out.original_task.size(); ++i) {
    for (const index_t p : graph.predecessors(out.original_task[i])) {
      const index_t np = new_id[static_cast<std::size_t>(p)];
      if (np != invalid_index) deps[i].push_back(np);
    }
  }
  out.graph = taskgraph::TaskGraph(std::move(tasks), deps);
  return out;
}

}  // namespace tamp::verify
