#include "verify/reachability.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace tamp::verify {

Reachability::Reachability(const taskgraph::TaskGraph& graph, int num_labels,
                           std::uint64_t seed)
    : graph_(&graph), num_labels_(num_labels) {
  TAMP_EXPECTS(num_labels >= 1, "need at least one interval labelling");
  const index_t n = graph.num_tasks();
  const auto sn = static_cast<std::size_t>(n);

  const std::vector<index_t> topo = graph.topological_order();
  topo_pos_.resize(sn);
  for (std::size_t i = 0; i < sn; ++i)
    topo_pos_[static_cast<std::size_t>(topo[i])] = static_cast<index_t>(i);

  rank_.assign(static_cast<std::size_t>(num_labels) * sn, 0);
  low_.assign(static_cast<std::size_t>(num_labels) * sn, 0);
  mark_.assign(sn, -1);

  std::vector<index_t> roots;
  for (index_t t = 0; t < n; ++t)
    if (graph.predecessors(t).empty()) roots.push_back(t);

  // DFS scratch: visit state + per-node child cursor over a shuffled copy
  // of the successor list.
  std::vector<char> done(sn);
  std::vector<std::pair<index_t, std::size_t>> dfs;  // (node, next child)
  std::vector<std::vector<index_t>> children(sn);

  for (int l = 0; l < num_labels_; ++l) {
    index_t* rank = rank_.data() + static_cast<std::size_t>(l) * sn;
    index_t* low = low_.data() + static_cast<std::size_t>(l) * sn;
    Rng rng(mix_seed(seed, static_cast<std::uint64_t>(l)));

    std::fill(done.begin(), done.end(), char{0});
    std::vector<index_t> order = roots;
    rng.shuffle(order);
    index_t next_rank = 0;
    for (const index_t root : order) {
      if (done[static_cast<std::size_t>(root)]) continue;
      dfs.emplace_back(root, 0);
      done[static_cast<std::size_t>(root)] = 1;
      while (!dfs.empty()) {
        auto& [v, cursor] = dfs.back();
        const auto sv = static_cast<std::size_t>(v);
        if (cursor == 0) {
          children[sv].assign(graph.successors(v).begin(),
                              graph.successors(v).end());
          rng.shuffle(children[sv]);
        }
        if (cursor < children[sv].size()) {
          const index_t c = children[sv][cursor++];
          if (!done[static_cast<std::size_t>(c)]) {
            done[static_cast<std::size_t>(c)] = 1;
            dfs.emplace_back(c, 0);
          }
        } else {
          rank[sv] = next_rank++;
          children[sv].clear();
          children[sv].shrink_to_fit();
          dfs.pop_back();
        }
      }
    }
    TAMP_ENSURE(next_rank == n, "postorder labelling missed tasks");

    // low(v) = min rank over everything reachable from v: propagate in
    // reverse topological order so successors are final first.
    for (index_t t = 0; t < n; ++t) low[static_cast<std::size_t>(t)] = rank[t];
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const index_t v = *it;
      for (const index_t s : graph.successors(v))
        low[static_cast<std::size_t>(v)] =
            std::min(low[static_cast<std::size_t>(v)],
                     low[static_cast<std::size_t>(s)]);
    }
  }
}

bool Reachability::labels_admit(index_t from, index_t to) const {
  const auto n = static_cast<std::size_t>(graph_->num_tasks());
  for (int l = 0; l < num_labels_; ++l) {
    const index_t* rank = rank_.data() + static_cast<std::size_t>(l) * n;
    const index_t* low = low_.data() + static_cast<std::size_t>(l) * n;
    const auto sf = static_cast<std::size_t>(from);
    const auto st = static_cast<std::size_t>(to);
    if (!(low[sf] <= low[st] && rank[st] < rank[sf])) return false;
  }
  return true;
}

bool Reachability::reachable(index_t from, index_t to) const {
  const index_t n = graph_->num_tasks();
  TAMP_EXPECTS(from >= 0 && from < n && to >= 0 && to < n,
               "task id out of range");
  ++queries_;
  if (from == to) return false;  // strict: a task trivially orders itself
  if (topo_pos_[static_cast<std::size_t>(from)] >
      topo_pos_[static_cast<std::size_t>(to)])
    return false;
  if (!labels_admit(from, to)) return false;

  // Direct edge: successor lists are sorted ascending by construction.
  const auto succ = graph_->successors(from);
  if (std::binary_search(succ.begin(), succ.end(), to)) return true;

  // Labels say "maybe": settle with a pruned DFS.
  ++fallbacks_;
  ++epoch_;
  const index_t target_pos = topo_pos_[static_cast<std::size_t>(to)];
  stack_.clear();
  stack_.push_back(from);
  mark_[static_cast<std::size_t>(from)] = epoch_;
  while (!stack_.empty()) {
    const index_t v = stack_.back();
    stack_.pop_back();
    for (const index_t s : graph_->successors(v)) {
      if (s == to) return true;
      const auto ss = static_cast<std::size_t>(s);
      if (mark_[ss] == epoch_) continue;
      if (topo_pos_[ss] >= target_pos) continue;  // cannot lead to `to`
      if (!labels_admit(s, to)) continue;
      mark_[ss] = epoch_;
      stack_.push_back(s);
    }
  }
  return false;
}

}  // namespace tamp::verify
