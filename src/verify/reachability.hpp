// Interval-based DAG reachability (GRAIL-style) for the race verifier.
//
// The happens-before checker asks "is there a dependency path u ⇝ v?"
// for every conflicting access pair — far too many queries for per-query
// graph traversals and far too many nodes for a dense transitive closure.
// Interval labelling answers almost all of them in O(labels):
//
//   Each labelling assigns every task a postorder rank from one random
//   DFS over the DAG, plus low(v) = the minimum rank reachable from v.
//   If u ⇝ v then, in every labelling, [low(v), rank(v)] ⊆
//   [low(u), rank(u)] (a DAG has no back edges, so any reachable node
//   finishes — and propagates its low — before u does). The containment
//   test is therefore exact for "no": one failed labelling proves
//   unreachability. Containment in all labellings can still be a false
//   positive, so those pairs fall through to a label- and
//   topo-position-pruned DFS that settles the answer exactly.
//
// Multiple independent random labellings shrink the false-positive
// funnel; topological positions give an O(1) "no" for pairs ordered the
// wrong way around.
#pragma once

#include <cstdint>

#include "support/types.hpp"
#include "taskgraph/taskgraph.hpp"

namespace tamp::verify {

/// Reachability oracle over one TaskGraph. Not thread-safe (the DFS
/// fallback reuses an epoch-stamped scratch marking). The graph must
/// outlive the oracle.
class Reachability {
public:
  explicit Reachability(const taskgraph::TaskGraph& graph, int num_labels = 3,
                        std::uint64_t seed = 0x7ea11ab1e5ULL);

  /// Is there a (non-empty) dependency path from `from` to `to`?
  [[nodiscard]] bool reachable(index_t from, index_t to) const;

  /// Query counters, for the verifier's metrics.
  [[nodiscard]] std::size_t queries() const { return queries_; }
  [[nodiscard]] std::size_t dfs_fallbacks() const { return fallbacks_; }

private:
  [[nodiscard]] bool labels_admit(index_t from, index_t to) const;

  const taskgraph::TaskGraph* graph_;
  int num_labels_;
  std::vector<index_t> topo_pos_;  ///< position in a topological order
  /// rank_[l * n + v]: postorder rank of v in random labelling l.
  std::vector<index_t> rank_;
  /// low_[l * n + v]: min rank reachable from v in labelling l.
  std::vector<index_t> low_;

  // DFS fallback scratch (epoch-stamped visited marks).
  mutable std::vector<index_t> mark_;
  mutable std::vector<index_t> stack_;
  mutable index_t epoch_ = 0;
  mutable std::size_t queries_ = 0;
  mutable std::size_t fallbacks_ = 0;
};

}  // namespace tamp::verify
