#include "verify/access.hpp"

#include <algorithm>
#include <atomic>

namespace tamp::verify {

namespace {

std::uint64_t next_log_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread cache of the buffer registered with one specific log.
struct BufferCache {
  std::uint64_t log_id = 0;
  AccessLog::WorkerBuffers* buffer = nullptr;
};
thread_local BufferCache tl_buffer_cache;

}  // namespace

AccessLog::AccessLog(index_t num_tasks)
    : num_tasks_(num_tasks), id_(next_log_id()) {
  TAMP_EXPECTS(num_tasks >= 0, "negative task count");
}

const char* to_string(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::cell_state: return "cell_state";
    case ObjectKind::face_acc_side0: return "face_acc_side0";
    case ObjectKind::face_acc_side1: return "face_acc_side1";
  }
  return "?";
}

std::size_t AccessLog::num_records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b->accesses.size() + b->ranges.size();
  return n;
}

std::vector<Access> AccessLog::merged() const {
  std::vector<Access> all;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& b : buffers_)
      all.insert(all.end(), b->accesses.begin(), b->accesses.end());
    // Expand range records into the per-object form the checker
    // consumes: a RangeAccess is by definition its objects' accesses.
    for (const auto& b : buffers_)
      for (const RangeAccess& r : b->ranges) {
        TAMP_ENSURE(r.begin >= 0 && r.begin <= r.end,
                    "malformed range access record");
        for (index_t o = r.begin; o < r.end; ++o)
          all.push_back(Access{r.task, o, r.kind, r.mode});
      }
  }
  for (const Access& a : all)
    TAMP_ENSURE(a.task >= 0 && a.task < num_tasks_,
                "access record with task id outside the log's graph");
  std::sort(all.begin(), all.end(), [](const Access& a, const Access& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.object != b.object) return a.object < b.object;
    if (a.task != b.task) return a.task < b.task;
    return a.mode < b.mode;
  });
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::size_t AccessLog::num_worker_buffers() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return buffers_.size();
}

AccessLog::WorkerBuffers& AccessLog::thread_buffer() {
  BufferCache& cache = tl_buffer_cache;
  if (cache.log_id == id_) return *cache.buffer;
  const std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<WorkerBuffers>());
  cache = {id_, buffers_.back().get()};
  return *cache.buffer;
}

runtime::TaskBody instrument(runtime::TaskBody body, AccessLog& log) {
  return [body = std::move(body), &log](index_t t) {
    const TaskRecordScope scope(log, t);
    body(t);
  };
}

}  // namespace tamp::verify
