#include "verify/verifier.hpp"

#include <sstream>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "verify/reachability.hpp"

namespace tamp::verify {

namespace {

/// Entries of one (kind, object) group collapsed per task: a task that
/// both read and wrote keeps the write (it conflicts with everything a
/// read does, and more).
struct TaskAccess {
  index_t task;
  AccessMode mode;
};

const char* to_string(AccessMode m) {
  return m == AccessMode::write ? "write" : "read";
}

}  // namespace

RaceReport check_races(const taskgraph::TaskGraph& graph,
                       const AccessLog& log) {
  TAMP_EXPECTS(log.num_tasks() == graph.num_tasks(),
               "access log sized for a different graph");
  TAMP_TRACE_SCOPE("verify/check_races");
  RaceReport report;
  const std::vector<Access> accesses = log.merged();
  report.accesses = accesses.size();
  if (accesses.empty()) return report;

  const Reachability reach(graph);
  const auto n = static_cast<std::uint64_t>(graph.num_tasks());

  // Verdict per distinct (pair, kind): < 0 = ordered, >= 0 = index of the
  // conflict record accumulating witness counts.
  std::unordered_map<std::uint64_t, std::int64_t> verdict;
  std::vector<TaskAccess> group;

  std::size_t i = 0;
  while (i < accesses.size()) {
    // One group = one (kind, object); merged() sorted by (kind, object,
    // task, mode) with reads before writes per task.
    const ObjectKind kind = accesses[i].kind;
    const index_t object = accesses[i].object;
    group.clear();
    for (; i < accesses.size() && accesses[i].kind == kind &&
           accesses[i].object == object;
         ++i) {
      if (!group.empty() && group.back().task == accesses[i].task)
        group.back().mode = AccessMode::write;  // read+write → write
      else
        group.push_back({accesses[i].task, accesses[i].mode});
    }

    for (std::size_t a = 0; a < group.size(); ++a) {
      for (std::size_t b = a + 1; b < group.size(); ++b) {
        if (group[a].mode == AccessMode::read &&
            group[b].mode == AccessMode::read)
          continue;
        const index_t lo = group[a].task;  // group is task-sorted
        const index_t hi = group[b].task;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(kind) << 58) ^
            (static_cast<std::uint64_t>(lo) * n +
             static_cast<std::uint64_t>(hi));
        auto [it, inserted] = verdict.try_emplace(key, -1);
        if (inserted) {
          ++report.pairs_checked;
          if (!reach.reachable(lo, hi) && !reach.reachable(hi, lo)) {
            it->second = static_cast<std::int64_t>(report.conflicts.size());
            Conflict c;
            c.first = lo;
            c.second = hi;
            c.kind = kind;
            c.first_mode = group[a].mode;
            c.second_mode = group[b].mode;
            c.object = object;
            report.conflicts.push_back(c);
          }
        }
        if (it->second >= 0)
          ++report.conflicts[static_cast<std::size_t>(it->second)].occurrences;
      }
    }
  }
  report.dfs_fallbacks = reach.dfs_fallbacks();

  TAMP_METRIC_COUNT("verify.accesses",
                    static_cast<std::int64_t>(report.accesses));
  TAMP_METRIC_COUNT("verify.pairs_checked",
                    static_cast<std::int64_t>(report.pairs_checked));
  TAMP_METRIC_COUNT("verify.conflicts",
                    static_cast<std::int64_t>(report.conflicts.size()));
  TAMP_METRIC_COUNT("verify.reachability.dfs_fallbacks",
                    static_cast<std::int64_t>(report.dfs_fallbacks));
  TAMP_METRIC_GAUGE_SET("verify.clean", report.clean() ? 1.0 : 0.0);
  return report;
}

std::string RaceReport::summary(const taskgraph::TaskGraph& graph) const {
  std::ostringstream os;
  os << "race verifier: " << conflicts.size()
     << " unordered conflicting task pair(s); " << accesses << " accesses, "
     << pairs_checked << " pairs checked (" << dfs_fallbacks
     << " reachability DFS fallbacks)\n";
  for (const Conflict& c : conflicts) {
    os << "  [" << verify::to_string(c.kind) << "] t" << c.first << " "
       << graph.task(c.first).label() << " [" << to_string(c.first_mode)
       << "]  <->  t" << c.second << " " << graph.task(c.second).label()
       << " [" << to_string(c.second_mode) << "]  — witness object "
       << c.object << ", " << c.occurrences
       << " object(s) affected; missing edge t" << c.first << " -> t"
       << c.second << "\n";
  }
  return os.str();
}

void collect_serial(const taskgraph::TaskGraph& graph,
                    const runtime::TaskBody& body, AccessLog& log) {
  TAMP_EXPECTS(log.num_tasks() == graph.num_tasks(),
               "access log sized for a different graph");
  TAMP_TRACE_SCOPE("verify/collect_serial");
  for (const index_t t : graph.topological_order()) {
    const TaskRecordScope scope(log, t);
    body(t);
  }
}

std::vector<char> region_closure(const taskgraph::TaskGraph& graph,
                                 const std::vector<char>& dirty) {
  TAMP_EXPECTS(dirty.size() == static_cast<std::size_t>(graph.num_tasks()),
               "dirty mask sized for a different graph");
  std::vector<char> region(dirty.begin(), dirty.end());
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    if (dirty[static_cast<std::size_t>(t)] == 0) continue;
    for (const index_t p : graph.predecessors(t))
      region[static_cast<std::size_t>(p)] = 1;
    for (const index_t s : graph.successors(t))
      region[static_cast<std::size_t>(s)] = 1;
  }
  return region;
}

RegionReport check_races_region(const taskgraph::TaskGraph& graph,
                                const std::vector<char>& dirty,
                                const runtime::TaskBody& body) {
  TAMP_TRACE_SCOPE("verify/check_races_region");
  RegionReport report;
  const std::vector<char> region = region_closure(graph, dirty);
  for (const char d : dirty) report.dirty_tasks += d != 0 ? 1 : 0;

  // Replay only region bodies — but in the FULL graph's topological
  // order and against the full graph's reachability, so dependency
  // paths through untouched tasks still order the recorded pairs.
  AccessLog log(graph.num_tasks());
  for (const index_t t : graph.topological_order()) {
    if (region[static_cast<std::size_t>(t)] == 0) continue;
    ++report.region_tasks;
    const TaskRecordScope scope(log, t);
    body(t);
  }
  report.races = check_races(graph, log);

  TAMP_METRIC_COUNT("verify.region.dirty_tasks", report.dirty_tasks);
  TAMP_METRIC_COUNT("verify.region.replayed_tasks", report.region_tasks);
  return report;
}

}  // namespace tamp::verify
